#!/usr/bin/env bash
# Perf trajectory: run the score-sweep kernels (MatVec/MatMat) and the
# batched-ranking ablation, then emit results/BENCH_5.json with one record
# per benchmark op: {"op", "ns_per_op", "mb_per_s"}. mb_per_s is 0 for
# benchmarks that do not report throughput (the ablation measures wall-clock
# per ranking pass, not memory traffic).
#
#   scripts/bench.sh [output.json]
#
# BENCHTIME (default 3x) trades precision for CI runtime; use e.g.
# BENCHTIME=2s locally for tighter numbers.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-results/BENCH_5.json}"
benchtime="${BENCHTIME:-3x}"
raw="$(mktemp)"
trap 'rm -rf "$raw"' EXIT

echo "== kernel benchmarks (internal/vecmath) =="
go test -run '^$' -bench 'BenchmarkMatVec|BenchmarkMatMat' \
  -benchtime "$benchtime" ./internal/vecmath | tee -a "$raw"

echo "== ranking ablation (repo root) =="
go test -run '^$' -bench 'BenchmarkAblationBatchedRanking' \
  -benchtime "$benchtime" . | tee -a "$raw"

# Benchmark lines look like either of:
#   BenchmarkMatMat/d=64/q=8-8    100    12345 ns/op    9876.54 MB/s
#   BenchmarkAblationBatchedRanking/batched/500-8    3    57410274 ns/op
awk '
  /^Benchmark/ && / ns\/op/ {
    op = $1
    sub(/-[0-9]+$/, "", op)          # strip the -GOMAXPROCS suffix
    ns = 0; mb = 0
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "MB/s") mb = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"mb_per_s\": %s}", op, ns, mb
  }
  BEGIN { printf "[\n" }
  END   { printf "\n]\n" }
' "$raw" >"$out"

n="$(grep -c '"op"' "$out" || true)"
if [ "$n" -lt 1 ]; then
  echo "bench.sh FAILED: no benchmark results parsed" >&2
  exit 1
fi
echo "wrote $out ($n benchmarks)"
