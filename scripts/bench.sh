#!/usr/bin/env bash
# Perf trajectory: run the score-sweep kernels (MatVec/MatMat), the
# batched-ranking ablation, and the pruned-ranking ablation, then emit a
# JSON report with provenance metadata and one record per benchmark op:
#
#   {"meta": {"commit", "gomaxprocs", "cpu"},
#    "benchmarks": [{"op", "ns_per_op", "mb_per_s", "precision"}, ...]}
#
# mb_per_s is 0 for benchmarks that do not report throughput; precision is
# only nonzero for the pruned-ranking approx sub-benchmarks (it measures the
# approx keep set against the dense keep set — recall is 1.0 by construction,
# see DESIGN.md §10).
#
# A second report, results/BENCH_10.json, covers training throughput: the
# batched-vs-scalar gradient kernels for both objectives (DESIGN.md §14),
# with examples/s (triples/s for the sampled objective, (s,r) contexts/s for
# KvsAll) as the headline metric.
#
#   scripts/bench.sh [output.json] [training-output.json]
#
# BENCHTIME (default 3x) trades precision for CI runtime; use e.g.
# BENCHTIME=2s locally for tighter numbers. TRAIN_BENCHTIME (default 10x)
# does the same for the training report, whose iterations are whole epochs.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-results/BENCH_6.json}"
trainout="${2:-results/BENCH_10.json}"
trainbenchtime="${TRAIN_BENCHTIME:-10x}"
benchtime="${BENCHTIME:-3x}"
raw="$(mktemp)"
trap 'rm -rf "$raw"' EXIT

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
gomaxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
if [ -n "${GOMAXPROCS:-}" ]; then
  gomaxprocs="$GOMAXPROCS"
fi
cpu="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"
cpu="${cpu:-unknown}"

echo "== kernel benchmarks (internal/vecmath) =="
go test -run '^$' -bench 'BenchmarkMatVec|BenchmarkMatMat' \
  -benchtime "$benchtime" ./internal/vecmath | tee -a "$raw"

echo "== ranking ablations (repo root) =="
go test -run '^$' -bench 'BenchmarkAblationBatchedRanking|BenchmarkPrunedRanking' \
  -benchtime "$benchtime" . | tee -a "$raw"

# Benchmark lines look like any of:
#   BenchmarkMatMat/d=64/q=8-8    100    12345 ns/op    9876.54 MB/s
#   BenchmarkAblationBatchedRanking/batched/500-8    3    57410274 ns/op
#   BenchmarkPrunedRanking/d=64/top_n=100/approx-8   3    3128713 ns/op    1.000 precision
awk -v commit="$commit" -v gomaxprocs="$gomaxprocs" -v cpu="$cpu" '
  /^Benchmark/ && / ns\/op/ {
    op = $1
    sub(/-[0-9]+$/, "", op)          # strip the -GOMAXPROCS suffix
    ns = 0; mb = 0; prec = 0
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "MB/s") mb = $(i - 1)
      if ($i == "precision") prec = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "    {\"op\": \"%s\", \"ns_per_op\": %s, \"mb_per_s\": %s, \"precision\": %s}", op, ns, mb, prec
  }
  BEGIN {
    printf "{\n"
    printf "  \"meta\": {\"commit\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\"},\n", commit, gomaxprocs, cpu
    printf "  \"benchmarks\": [\n"
  }
  END   { printf "\n  ]\n}\n" }
' "$raw" >"$out"

n="$(grep -c '"op"' "$out" || true)"
if [ "$n" -lt 1 ]; then
  echo "bench.sh FAILED: no benchmark results parsed" >&2
  exit 1
fi
echo "wrote $out ($n benchmarks)"

echo "== training throughput (batched vs scalar kernels) =="
trainraw="$(mktemp)"
trap 'rm -rf "$raw" "$trainraw"' EXIT
go test -run '^$' -bench 'BenchmarkTrainingThroughput' \
  -benchtime "$trainbenchtime" . | tee "$trainraw"

# Training lines carry a custom metric:
#   BenchmarkTrainingThroughput/kvsall/batched-8   10   10594 ns/op   94.4 examples/s
awk -v commit="$commit" -v gomaxprocs="$gomaxprocs" -v cpu="$cpu" '
  /^Benchmark/ && / ns\/op/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = 0; exs = 0
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "examples/s") exs = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "    {\"op\": \"%s\", \"ns_per_op\": %s, \"examples_per_s\": %s}", op, ns, exs
  }
  BEGIN {
    printf "{\n"
    printf "  \"meta\": {\"commit\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\"},\n", commit, gomaxprocs, cpu
    printf "  \"benchmarks\": [\n"
  }
  END   { printf "\n  ]\n}\n" }
' "$trainraw" >"$trainout"

tn="$(grep -c '"op"' "$trainout" || true)"
if [ "$tn" -lt 4 ]; then
  echo "bench.sh FAILED: expected 4 training benchmarks, parsed $tn" >&2
  exit 1
fi
echo "wrote $trainout ($tn benchmarks)"
