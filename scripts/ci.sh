#!/usr/bin/env bash
# CI gate: vet, build, race-checked tests, and a training-determinism smoke
# test. The discovery ranking stage runs a concurrent group scheduler
# (internal/core.rankAll) and the evaluation protocol a grouped worker pool
# (internal/eval.Evaluate), so the race detector is mandatory, not optional,
# on every PR. The determinism gate trains the same tiny dataset at two
# worker counts under both objectives and requires byte-identical
# checkpoints — the guarantee the chunked gradient reduction provides.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== determinism smoke =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/kggen" ./cmd/kggen
go build -o "$tmp/kgtrain" ./cmd/kgtrain
"$tmp/kggen" -preset tiny -out "$tmp/data" -seed 7 >/dev/null

digest_of() { sed -n 's/.*sha256 \([0-9a-f]*\).*/\1/p' "$1"; }

for obj in negsample kvsall; do
  extra=()
  if [ "$obj" = kvsall ]; then extra=(-kvsall); fi
  for w in 1 4; do
    "$tmp/kgtrain" -data "$tmp/data" -model distmult -dim 16 -epochs 2 \
      -seed 11 -workers "$w" "${extra[@]+"${extra[@]}"}" -quiet \
      -out "$tmp/$obj-w$w.kge" >"$tmp/$obj-w$w.log"
  done
  if ! cmp -s "$tmp/$obj-w1.kge" "$tmp/$obj-w4.kge"; then
    echo "determinism smoke FAILED ($obj): workers=1 and workers=4 checkpoints differ" >&2
    exit 1
  fi
  d1="$(digest_of "$tmp/$obj-w1.log")"
  d4="$(digest_of "$tmp/$obj-w4.log")"
  if [ -z "$d1" ] || [ "$d1" != "$d4" ]; then
    echo "determinism smoke FAILED ($obj): digests '$d1' vs '$d4'" >&2
    exit 1
  fi
  echo "$obj: workers-invariant checkpoint sha256 $d1"
done

echo "CI OK"
