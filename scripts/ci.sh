#!/usr/bin/env bash
# CI gate: vet, build, and race-checked tests. The discovery ranking stage
# runs a concurrent group scheduler (internal/core.rankAll) and the
# evaluation protocol a grouped worker pool (internal/eval.Evaluate), so the
# race detector is mandatory, not optional, on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
