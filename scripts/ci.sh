#!/usr/bin/env bash
# CI gate: vet, build, race-checked tests, a serving-layer race +
# decoder-fuzz gate, a training-determinism smoke test, and a kgserve
# end-to-end smoke. The discovery ranking stage runs a concurrent group scheduler
# (internal/core.rankAll) and the evaluation protocol a grouped worker pool
# (internal/eval.Evaluate), so the race detector is mandatory, not optional,
# on every PR. The determinism gate trains the same tiny dataset at two
# worker counts under both objectives and requires byte-identical
# checkpoints — the guarantee the chunked gradient reduction provides.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== serving-layer race gate =="
# The serving layer multiplexes one model across request goroutines, a
# single-flight group, and a discovery semaphore; its suite (and the
# kgserve wiring tests) must pass under the race detector on every PR.
go test -race ./internal/serve/... ./cmd/kgserve/...

echo "== request-decoder fuzz smoke =="
go test -run '^$' -fuzz '^FuzzDecodeRequest$' -fuzztime 10s ./internal/serve

echo "== journal-decoder fuzz smoke =="
# The job journal decoder ingests whatever a crash left on disk; it must
# recover the longest valid prefix of any byte soup without panicking.
go test -run '^$' -fuzz '^FuzzJournalDecode$' -fuzztime 10s ./internal/jobs

echo "== fleet wire-decoder fuzz smoke =="
# Every coordinator endpoint ingests bytes from workers that may be killed
# mid-write or partitioned mid-retry; arbitrary bodies must never panic and
# must always produce well-formed JSON responses.
go test -run '^$' -fuzz '^FuzzFleetDecode$' -fuzztime 10s ./internal/fleet

echo "== mutation-decoder fuzz smoke =="
# The /mutate endpoint ingests client-authored batches and the mutation log
# replays whatever a crash left on disk; both decoders must survive any byte
# soup without panicking, and rejected batches must never mutate the graph.
go test -run '^$' -fuzz '^FuzzMutationDecode$' -fuzztime 10s ./internal/mutate

echo "== determinism smoke =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/kggen" ./cmd/kggen
go build -o "$tmp/kgtrain" ./cmd/kgtrain
"$tmp/kggen" -preset tiny -out "$tmp/data" -seed 7 >/dev/null

digest_of() { sed -n 's/.*sha256 \([0-9a-f]*\).*/\1/p' "$1"; }

# Both kernel modes must be workers-invariant independently: the batched
# (default) and scalar trainers define different digests, but within a mode
# workers=1 and workers=4 must produce byte-identical checkpoints.
for mode in batched scalar; do
  bk=true
  if [ "$mode" = scalar ]; then bk=false; fi
  for obj in negsample kvsall; do
    extra=()
    if [ "$obj" = kvsall ]; then extra=(-kvsall); fi
    for w in 1 4; do
      "$tmp/kgtrain" -data "$tmp/data" -model distmult -dim 16 -epochs 2 \
        -seed 11 -workers "$w" -batch_kernels="$bk" "${extra[@]+"${extra[@]}"}" -quiet \
        -out "$tmp/$mode-$obj-w$w.kge" >"$tmp/$mode-$obj-w$w.log"
    done
    if ! cmp -s "$tmp/$mode-$obj-w1.kge" "$tmp/$mode-$obj-w4.kge"; then
      echo "determinism smoke FAILED ($mode/$obj): workers=1 and workers=4 checkpoints differ" >&2
      exit 1
    fi
    d1="$(digest_of "$tmp/$mode-$obj-w1.log")"
    d4="$(digest_of "$tmp/$mode-$obj-w4.log")"
    if [ -z "$d1" ] || [ "$d1" != "$d4" ]; then
      echo "determinism smoke FAILED ($mode/$obj): digests '$d1' vs '$d4'" >&2
      exit 1
    fi
    echo "$mode/$obj: workers-invariant checkpoint sha256 $d1"
  done
done

echo "== batched-ranking byte-identity gate =="
# The relation-blocked batch scorer is a scheduling change, not a numerical
# one: every model × protocol must discover byte-identical TSVs with
# -batch=true and -batch=false. Run on the determinism smoke's tiny dataset
# so the whole matrix (6 models × 2 protocols) stays under a few seconds.
go build -o "$tmp/kgdiscover" ./cmd/kgdiscover
for m in transe distmult complex rescal hole conve; do
  "$tmp/kgtrain" -data "$tmp/data" -model "$m" -dim 16 -epochs 1 \
    -seed 11 -quiet -out "$tmp/ident-$m.kge" >/dev/null
  for filt in false true; do
    for b in true false; do
      "$tmp/kgdiscover" -data "$tmp/data" -model "$tmp/ident-$m.kge" \
        -strategy graph_degree -top_n 200 -max_candidates 200 -seed 3 \
        -limit 0 -rank_filtered="$filt" -batch="$b" \
        -out "$tmp/ident-$m-$filt-$b.tsv" >/dev/null
    done
    if ! cmp -s "$tmp/ident-$m-$filt-true.tsv" "$tmp/ident-$m-$filt-false.tsv"; then
      echo "byte-identity gate FAILED: $m (rank_filtered=$filt) batched and grouped TSVs differ" >&2
      exit 1
    fi
  done
done
echo "byte-identity gate: 6 models x 2 protocols, batched == grouped"

echo "== pruned-ranking byte-identity gate =="
# -prune=exact is a search-order change over provable score bounds, not a
# numerical one: every model × protocol must discover byte-identical TSVs
# with pruning on and off. Reuses the models trained above. top_n is small
# (20) on purpose — the tiny CI dataset has |E| = 80, and a larger top_n
# would make the frontier M ≥ |E|, forcing the per-group dense fallback
# everywhere and leaving the pruned path untested.
for m in transe distmult complex rescal hole conve; do
  for filt in false true; do
    for p in off exact; do
      "$tmp/kgdiscover" -data "$tmp/data" -model "$tmp/ident-$m.kge" \
        -strategy graph_degree -top_n 20 -max_candidates 200 -seed 3 \
        -limit 0 -rank_filtered="$filt" -prune="$p" \
        -out "$tmp/prune-$m-$filt-$p.tsv" >/dev/null
    done
    if ! cmp -s "$tmp/prune-$m-$filt-off.tsv" "$tmp/prune-$m-$filt-exact.tsv"; then
      echo "pruned byte-identity gate FAILED: $m (rank_filtered=$filt) exact and off TSVs differ" >&2
      exit 1
    fi
  done
done
echo "pruned byte-identity gate: 6 models x 2 protocols, -prune=exact == -prune=off"

echo "== pruning WAL-compat gate =="
# Checkpoints written with pruning off (including every journal that
# predates the prune layer — the OptionsHash golden test pins that digest)
# must resume under default flags, and must NOT resume under -prune=exact:
# pruned and dense runs are different run identities even though their
# outputs agree, because approx mode would not be.
waldisc() {
  "$tmp/kgdiscover" -data "$tmp/data" -model "$tmp/ident-distmult.kge" \
    -strategy graph_degree -top_n 20 -max_candidates 200 -seed 3 -limit 0 "$@"
}
waldisc -out "$tmp/walfull.tsv" >/dev/null
waldisc -checkpoint "$tmp/compat.wal" >/dev/null
waldisc -checkpoint "$tmp/compat.wal" -resume -out "$tmp/walresumed.tsv" >/dev/null
if ! cmp -s "$tmp/walfull.tsv" "$tmp/walresumed.tsv"; then
  echo "WAL-compat gate FAILED: resume with pruning off changed the output" >&2
  exit 1
fi
if waldisc -checkpoint "$tmp/compat.wal" -resume -prune=exact >"$tmp/walprune.log" 2>&1; then
  echo "WAL-compat gate FAILED: a pruning-off checkpoint resumed under -prune=exact" >&2
  exit 1
fi
if ! grep -q "options" "$tmp/walprune.log"; then
  echo "WAL-compat gate FAILED: expected an options-mismatch refusal, got:" >&2
  cat "$tmp/walprune.log" >&2
  exit 1
fi
echo "WAL-compat gate: pruning-off checkpoint resumes clean, -prune=exact resume refused"

echo "== live-mutation incremental gate =="
# Apply a mutation batch and re-discover incrementally (only the dirtied
# relations are reswept, the rest splice from the baseline checkpoint), then
# require the TSV byte-identical to a from-scratch sweep over the mutated
# graph. The mutated dataset round-trips through a LibKGE-layout dump so the
# from-scratch run keeps the entity-row alignment the model was trained with.
go build -o "$tmp/kgmutate" ./cmd/kgmutate
# entity_frequency is only sensitive to a relation's own triples, so this
# batch dirties 2 of 6 relations and the other 4 splice from the baseline —
# the gate proves the splice, not just the resweep.
mutdisc() {
  "$tmp/kgdiscover" -data "$1" -model "$tmp/ident-distmult.kge" \
    -strategy entity_frequency -top_n 200 -max_candidates 200 -seed 3 -limit 0 "${@:2}"
}
mutdisc "$tmp/data" -checkpoint "$tmp/mut-base.wal" >/dev/null
# The batch deletes the first two training triples and re-adds the first
# with its endpoints swapped — all names already interned.
awk -F'\t' 'NR<=2 {printf "%s{\"op\":\"delete\",\"s\":\"%s\",\"r\":\"%s\",\"o\":\"%s\"}", sep, $1, $2, $3; sep=","}
            NR==1 {swap=sprintf("{\"op\":\"add\",\"s\":\"%s\",\"r\":\"%s\",\"o\":\"%s\"}", $3, $2, $1)}
            END   {printf ",%s", swap}' "$tmp/data/train.txt" \
  | { printf '{"seq":1,"source":"ci","ops":['; cat; printf ']}'; } >"$tmp/batch.json"
"$tmp/kgmutate" -data "$tmp/data" -model "$tmp/ident-distmult.kge" \
  -baseline "$tmp/mut-base.wal" -batch "$tmp/batch.json" \
  -strategy entity_frequency -top_n 200 -max_candidates 200 -seed 3 -limit 0 \
  -out "$tmp/mut-inc.tsv" -dump-data "$tmp/mutdata" >"$tmp/mutate.log"
spliced="$(sed -n 's/.*spliced \([0-9][0-9]*\) from baseline.*/\1/p' "$tmp/mutate.log")"
if [ -z "$spliced" ] || [ "$spliced" -lt 1 ]; then
  echo "mutation gate FAILED: expected >=1 relation spliced from the baseline, got '$spliced'" >&2
  cat "$tmp/mutate.log" >&2
  exit 1
fi
mutdisc "$tmp/mutdata" -out "$tmp/mut-scratch.tsv" >/dev/null
if ! cmp -s "$tmp/mut-inc.tsv" "$tmp/mut-scratch.tsv"; then
  echo "mutation gate FAILED: incremental TSV differs from from-scratch sweep on the mutated graph" >&2
  exit 1
fi
echo "live-mutation gate: $(sed -n 's/^mutate: //p' "$tmp/mutate.log"), incremental == from-scratch"

echo "== kgserve end-to-end smoke =="
# Boot the real server binary on a random port over a tiny dataset, check
# health, discover the same facts twice (the second answer must come from
# the response cache, observable via /metrics), then SIGTERM and require a
# clean graceful exit.
go build -o "$tmp/kgserve" ./cmd/kgserve
"$tmp/kgserve" -data "$tmp/data" -model "$tmp/batched-negsample-w1.kge" \
  -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$tmp/serve.log" | head -n 1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "kgserve smoke FAILED: server never reported its address" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

curl -fsS "http://$addr/healthz" >/dev/null
discover_body='{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":3}'
curl -fsS -X POST -d "$discover_body" "http://$addr/discover" >"$tmp/d1.json"
curl -fsS -X POST -d "$discover_body" "http://$addr/discover" >"$tmp/d2.json"
if ! cmp -s "$tmp/d1.json" "$tmp/d2.json"; then
  echo "kgserve smoke FAILED: cached /discover body differs from the original" >&2
  exit 1
fi
hits="$(curl -fsS "http://$addr/metrics" | sed -n 's/^kgserve_cache_hits_total \([0-9][0-9]*\)$/\1/p')"
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
  echo "kgserve smoke FAILED: /metrics cache-hit counter did not increment (hits='$hits')" >&2
  exit 1
fi
# Live mutation: the batch (built by the incremental gate above) must apply,
# invalidate the cached /discover entry, and show up in the mutation
# counters; replaying the same sequence number must be refused with 409.
curl -fsS -X POST --data-binary "@$tmp/batch.json" "http://$addr/mutate" >"$tmp/mutate-resp.json"
invalidated="$(curl -fsS "http://$addr/metrics" | sed -n 's/^kgserve_cache_invalidations_total \([0-9][0-9]*\)$/\1/p')"
applied="$(curl -fsS "http://$addr/metrics" | sed -n 's/^kgserve_mutation_batches_total \([0-9][0-9]*\)$/\1/p')"
if [ "$applied" != 1 ] || [ -z "$invalidated" ] || [ "$invalidated" -lt 1 ]; then
  echo "kgserve smoke FAILED: mutation counters batches='$applied' invalidations='$invalidated' (want 1, >=1)" >&2
  cat "$tmp/mutate-resp.json" >&2
  exit 1
fi
code_replay="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary "@$tmp/batch.json" "http://$addr/mutate")"
if [ "$code_replay" != 409 ]; then
  echo "kgserve smoke FAILED: replayed sequence number gave $code_replay, want 409" >&2
  exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
  echo "kgserve smoke FAILED: server did not exit cleanly on SIGTERM" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi
echo "kgserve smoke: cache hits $hits, $invalidated cache invalidation(s) on mutate, replay 409, clean SIGTERM shutdown"

echo "== crash-resume gate =="
# SIGKILL a checkpointed discovery sweep mid-run, resume it, and require the
# final TSV byte-identical to an uninterrupted run — the durability claim of
# the job journal, proven against a real kill, not a simulated one. The graph
# is sized so each relation's sweep takes ~300ms: slow enough to kill between
# relations, fast enough for CI.
"$tmp/kggen" -entities 50000 -relations 12 -triples 300000 -seed 13 \
  -out "$tmp/crashdata" >/dev/null
"$tmp/kgtrain" -data "$tmp/crashdata" -model distmult -dim 16 -epochs 1 \
  -seed 5 -quiet -out "$tmp/crash.kge" >/dev/null
disc() {
  "$tmp/kgdiscover" -data "$tmp/crashdata" -model "$tmp/crash.kge" \
    -strategy graph_degree -top_n 4000 -max_candidates 4000 -seed 3 -limit 0 "$@"
}
disc -out "$tmp/full.tsv" >/dev/null

disc -checkpoint "$tmp/crash.wal" >"$tmp/crash.log" 2>&1 &
disc_pid=$!
killed=0
for _ in $(seq 1 600); do
  kill -0 "$disc_pid" 2>/dev/null || break
  if [ "$(grep -c '^relation ' "$tmp/crash.log" || true)" -ge 2 ]; then
    kill -9 "$disc_pid" 2>/dev/null || break
    killed=1
    break
  fi
  sleep 0.05
done
wait "$disc_pid" 2>/dev/null || true
if [ "$killed" -ne 1 ]; then
  echo "crash-resume gate FAILED: sweep finished before it could be killed; enlarge the graph" >&2
  cat "$tmp/crash.log" >&2
  exit 1
fi

disc -checkpoint "$tmp/crash.wal" -resume -out "$tmp/resumed.tsv" >"$tmp/resume.log" 2>&1
n="$(sed -n 's/^checkpoint: resumed \([0-9]*\) of [0-9]* relations.*/\1/p' "$tmp/resume.log")"
m="$(sed -n 's/^checkpoint: resumed [0-9]* of \([0-9]*\) relations.*/\1/p' "$tmp/resume.log")"
if [ -z "$n" ] || [ -z "$m" ] || [ "$n" -lt 1 ] || [ "$n" -ge "$m" ]; then
  echo "crash-resume gate FAILED: resumed '$n' of '$m' relations, want 1 <= N < M" >&2
  cat "$tmp/resume.log" >&2
  exit 1
fi
if ! cmp -s "$tmp/full.tsv" "$tmp/resumed.tsv"; then
  echo "crash-resume gate FAILED: resumed output differs from the uninterrupted run" >&2
  exit 1
fi
echo "crash-resume gate: SIGKILL mid-sweep, resumed $n of $m relations, byte-identical output"

echo "== fleet fault-tolerance gate =="
# Run the crash-resume gate's sweep through the distributed fleet: a one-shot
# coordinator and two real worker processes, one of which is SIGKILLed while
# it holds a lease. The coordinator must reassign the dead worker's units
# (observable on /metrics) and the spliced TSV must still be byte-identical
# to the single-process reference computed above ($tmp/full.tsv).
go build -o "$tmp/kgfleet" ./cmd/kgfleet
"$tmp/kgfleet" coord -data "$tmp/crashdata" -model "$tmp/crash.kge" \
  -strategy graph_degree -top_n 4000 -max_candidates 4000 -seed 3 -limit 0 \
  -unit 1 -lease 1500ms -poll 100ms -drain 2s -linger 30s \
  -out "$tmp/fleet.tsv" >"$tmp/fleet-coord.out" 2>"$tmp/fleet-coord.log" &
fleet_pid=$!
fleet_addr=""
for _ in $(seq 1 100); do
  fleet_addr="$(sed -n 's/.*coordinator listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$tmp/fleet-coord.log" | head -n 1)"
  [ -n "$fleet_addr" ] && break
  sleep 0.1
done
if [ -z "$fleet_addr" ]; then
  echo "fleet gate FAILED: coordinator never reported its address" >&2
  cat "$tmp/fleet-coord.log" >&2
  exit 1
fi

"$tmp/kgfleet" worker -coord "http://$fleet_addr" -name victim \
  -fault-sleep-per-relation 700ms >"$tmp/fleet-victim.log" 2>&1 &
victim_pid=$!
"$tmp/kgfleet" worker -coord "http://$fleet_addr" -name survivor \
  >"$tmp/fleet-survivor.log" 2>&1 &
survivor_pid=$!

# Kill the victim once it holds a lease and at least one unit is done
# anywhere — a crash mid-unit by construction (its 700ms-per-relation stall
# keeps its lease window open far longer than this poll's resolution).
fleet_killed=0
for _ in $(seq 1 600); do
  status="$(curl -fsS "http://$fleet_addr/status" 2>/dev/null || true)"
  # "|| true": pipefail would otherwise abort the script when grep matches
  # nothing, i.e. on every poll before the first unit completes.
  done_units="$(printf '%s' "$status" | grep -o '"state":"done"' | wc -l || true)"
  if [ "$done_units" -ge 1 ] && printf '%s' "$status" | grep -q '"worker":"victim"'; then
    kill -9 "$victim_pid" 2>/dev/null || break
    fleet_killed=1
    break
  fi
  sleep 0.05
done
wait "$victim_pid" 2>/dev/null || true
if [ "$fleet_killed" -ne 1 ]; then
  echo "fleet gate FAILED: sweep finished before the victim could be killed mid-lease" >&2
  cat "$tmp/fleet-coord.log" >&2
  exit 1
fi

# The sweep must still complete; the coordinator lingers so /metrics stays
# scrapeable after completion.
fleet_done=0
for _ in $(seq 1 1200); do
  if grep -q 'sweep complete:' "$tmp/fleet-coord.out"; then fleet_done=1; break; fi
  kill -0 "$fleet_pid" 2>/dev/null || break
  sleep 0.1
done
if [ "$fleet_done" -ne 1 ]; then
  echo "fleet gate FAILED: sweep never completed after the worker kill" >&2
  cat "$tmp/fleet-coord.out" "$tmp/fleet-coord.log" >&2
  exit 1
fi
reassigned="$(curl -fsS "http://$fleet_addr/metrics" | sed -n 's/^kgfleet_reassignments_total \([0-9][0-9]*\)$/\1/p' || true)"
if [ -z "$reassigned" ] || [ "$reassigned" -lt 1 ]; then
  echo "fleet gate FAILED: expected >=1 reassignment after SIGKILL, /metrics said '$reassigned'" >&2
  exit 1
fi
kill -TERM "$fleet_pid"
wait "$fleet_pid" || { echo "fleet gate FAILED: coordinator unclean exit" >&2; cat "$tmp/fleet-coord.log" >&2; exit 1; }
wait "$survivor_pid" || { echo "fleet gate FAILED: surviving worker unclean exit" >&2; cat "$tmp/fleet-survivor.log" >&2; exit 1; }
if ! cmp -s "$tmp/full.tsv" "$tmp/fleet.tsv"; then
  echo "fleet gate FAILED: fleet TSV differs from the single-process reference" >&2
  exit 1
fi
echo "fleet gate: worker SIGKILLed mid-lease, $reassigned reassignment(s), byte-identical output"

echo "== flat-checkpoint serving + hot-swap gate =="
# Serve the same trained weights from both checkpoint containers (gob decode
# vs mmap flat) and require the /discover bodies identical — facts, total,
# and mrr byte-for-byte; only the wall-clock runtime_ms field is normalized.
# Then exercise the multi-model registry on the flat server: load a second
# model at runtime, route to it by fingerprint prefix, unload the first
# (the default), and require 404s for the unloaded fingerprint while the
# second keeps serving.
go build -o "$tmp/kgconvert" ./cmd/kgconvert
"$tmp/kgconvert" -in "$tmp/batched-negsample-w1.kge" -out "$tmp/flat-a.kgf" >"$tmp/conv-a.log"
fp_a="$(sed -n 's/.*fingerprint \([0-9a-f]*\)$/\1/p' "$tmp/conv-a.log")"
"$tmp/kgtrain" -data "$tmp/data" -model distmult -dim 16 -epochs 2 \
  -seed 23 -quiet -out "$tmp/model-b.kge" >/dev/null
"$tmp/kgconvert" -in "$tmp/model-b.kge" -out "$tmp/flat-b.kgf" >"$tmp/conv-b.log"
fp_b="$(sed -n 's/.*fingerprint \([0-9a-f]*\)$/\1/p' "$tmp/conv-b.log")"
if [ -z "$fp_a" ] || [ -z "$fp_b" ] || [ "$fp_a" = "$fp_b" ]; then
  echo "hot-swap gate FAILED: bad fingerprints a='$fp_a' b='$fp_b'" >&2
  exit 1
fi

scrape_addr() {
  local a="" log="$1"
  for _ in $(seq 1 100); do
    a="$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -n 1)"
    [ -n "$a" ] && break
    sleep 0.1
  done
  echo "$a"
}

"$tmp/kgserve" -data "$tmp/data" -model "$tmp/batched-negsample-w1.kge" \
  -addr 127.0.0.1:0 >"$tmp/serve-gob.log" 2>&1 &
gob_pid=$!
"$tmp/kgserve" -data "$tmp/data" -model "$tmp/flat-a.kgf" \
  -addr 127.0.0.1:0 >"$tmp/serve-flat.log" 2>&1 &
flat_pid=$!
gob_addr="$(scrape_addr "$tmp/serve-gob.log")"
flat_addr="$(scrape_addr "$tmp/serve-flat.log")"
if [ -z "$gob_addr" ] || [ -z "$flat_addr" ]; then
  echo "hot-swap gate FAILED: a server never reported its address" >&2
  cat "$tmp/serve-gob.log" "$tmp/serve-flat.log" >&2
  exit 1
fi

swap_body='{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":3}'
curl -fsS -X POST -d "$swap_body" "http://$gob_addr/discover" \
  | sed 's/"runtime_ms":[0-9]*/"runtime_ms":0/' >"$tmp/disc-gob.json"
curl -fsS -X POST -d "$swap_body" "http://$flat_addr/discover" \
  | sed 's/"runtime_ms":[0-9]*/"runtime_ms":0/' >"$tmp/disc-flat.json"
if ! cmp -s "$tmp/disc-gob.json" "$tmp/disc-flat.json"; then
  echo "hot-swap gate FAILED: gob-served and flat-served /discover bodies differ" >&2
  diff "$tmp/disc-gob.json" "$tmp/disc-flat.json" >&2 || true
  exit 1
fi
kill -TERM "$gob_pid"
wait "$gob_pid" || { echo "hot-swap gate FAILED: gob server unclean exit" >&2; exit 1; }

curl -fsS -X POST -d "{\"path\":\"$tmp/flat-b.kgf\"}" "http://$flat_addr/models" >/dev/null
models_listed="$(curl -fsS "http://$flat_addr/models" | grep -o '"fingerprint"' | wc -l)"
if [ "$models_listed" -ne 2 ]; then
  echo "hot-swap gate FAILED: expected 2 loaded models, GET /models listed $models_listed" >&2
  exit 1
fi
curl -fsS -X POST \
  -d "{\"model\":\"${fp_b:0:12}\",\"strategy\":\"graph_degree\",\"top_n\":20,\"max_candidates\":30,\"limit\":5,\"seed\":3}" \
  "http://$flat_addr/discover" >/dev/null
curl -fsS -X DELETE "http://$flat_addr/models/$fp_a" >/dev/null
code_unloaded="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "{\"model\":\"$fp_a\",\"strategy\":\"graph_degree\",\"top_n\":20,\"max_candidates\":30,\"limit\":5,\"seed\":3}" \
  "http://$flat_addr/discover")"
code_default="$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$swap_body" \
  "http://$flat_addr/discover")"
if [ "$code_unloaded" != 404 ] || [ "$code_default" != 404 ]; then
  echo "hot-swap gate FAILED: unloaded fingerprint gave $code_unloaded, selector-less gave $code_default (want 404/404)" >&2
  exit 1
fi
curl -fsS -X POST \
  -d "{\"model\":\"${fp_b:0:12}\",\"strategy\":\"graph_degree\",\"top_n\":20,\"max_candidates\":30,\"limit\":5,\"seed\":3}" \
  "http://$flat_addr/discover" >/dev/null
kill -TERM "$flat_pid"
wait "$flat_pid" || { echo "hot-swap gate FAILED: flat server unclean exit" >&2; exit 1; }
echo "hot-swap gate: gob == flat /discover, runtime load/route/unload clean, 404 after unload"

echo "CI OK"
