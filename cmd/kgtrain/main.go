// Command kgtrain trains a knowledge graph embedding model on a TSV dataset
// directory (train.txt / valid.txt / test.txt) and writes a checkpoint.
//
//	kgtrain -data data/fb10 -model transe -dim 64 -epochs 50 -out transe.kge
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prof"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgtrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgtrain", flag.ContinueOnError)
	var (
		dataDir    = fs.String("data", "", "dataset directory (required)")
		model      = fs.String("model", "transe", "model: transe, distmult, complex, rescal, hole, conve")
		dim        = fs.Int("dim", 64, "embedding dimension")
		epochs     = fs.Int("epochs", 50, "training epochs")
		batch      = fs.Int("batch", 256, "batch size")
		negs       = fs.Int("negs", 4, "negative samples per positive")
		lr         = fs.Float64("lr", 0.05, "learning rate")
		optName    = fs.String("opt", "adam", "optimizer: adam, adagrad, sgd")
		lossName   = fs.String("loss", "", "loss: margin, logistic (default per model)")
		l2         = fs.Float64("l2", 0, "L2 regularization on touched rows")
		bernoulli  = fs.Bool("bernoulli", false, "Bernoulli negative sampling (Wang et al. 2014)")
		batchKern  = fs.Bool("batch_kernels", true, "batched gradient kernels (chunk-wide MatMat forward/backward, fused loss); false forces the scalar path and reproduces pre-batching checkpoints")
		kvsall     = fs.Bool("kvsall", false, "KvsAll (1-N) training instead of negative sampling")
		smoothing  = fs.Float64("label_smoothing", 0.1, "KvsAll label smoothing")
		seed       = fs.Int64("seed", 1, "random seed")
		workers    = fs.Int("workers", 0, "gradient-computation goroutines (0 = GOMAXPROCS); any value yields bit-identical checkpoints")
		out        = fs.String("out", "model.kge", "checkpoint output path")
		format     = fs.String("format", "gob", "checkpoint format: gob (legacy) or flat (mmap-able, served zero-copy)")
		patience   = fs.Int("patience", 0, "early-stopping patience in evals (0 = off)")
		evalEach   = fs.Int("eval_every", 5, "epochs between validation evaluations")
		quiet      = fs.Bool("quiet", false, "suppress per-epoch progress")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = fs.String("memprofile", "", "write a heap profile to this path at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	if *format != "gob" && *format != "flat" {
		return fmt.Errorf("unknown -format %q (want gob or flat)", *format)
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "kgtrain:", perr)
		}
	}()

	ds, err := kg.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s\n", ds.Metadata())

	m, err := kge.New(*model, kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          *dim,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}

	opt, err := train.OptimizerByName(*optName, float32(*lr))
	if err != nil {
		return err
	}
	var loss train.Loss
	if *lossName != "" {
		if loss, err = train.LossByName(*lossName); err != nil {
			return err
		}
	}

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	cfg := train.Config{
		Epochs:             *epochs,
		BatchSize:          *batch,
		NegSamples:         *negs,
		Loss:               loss,
		Optimizer:          opt,
		L2:                 float32(*l2),
		Workers:            effWorkers,
		Seed:               *seed,
		EvalEvery:          *evalEach,
		Patience:           *patience,
		BernoulliNegatives: *bernoulli,
		ScalarKernels:      !*batchKern,
	}
	fmt.Printf("training %s with %d workers (seed %d)\n", *model, effWorkers, *seed)
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	filter := ds.All()
	if *patience > 0 {
		cfg.Validate = func(m kge.Model) float64 {
			res := eval.Evaluate(eval.NewRanker(m, filter), ds.Valid, eval.Options{MaxTriples: 500})
			return res.MRR
		}
	}

	var hist train.History
	if *kvsall {
		hist, err = train.RunKvsAll(context.Background(), m, ds, cfg, float32(*smoothing))
	} else {
		hist, err = train.Run(context.Background(), m, ds, cfg)
	}
	if err != nil {
		return err
	}
	if hist.Stopped {
		fmt.Printf("early stopping after %d epochs (best validation %.4f)\n", len(hist.Epochs), hist.Best)
	}
	var totalExamples int
	var totalTrain time.Duration
	for _, e := range hist.Epochs {
		totalExamples += e.Examples
		totalTrain += e.Duration
	}
	if totalTrain > 0 {
		unit := "triples"
		if *kvsall {
			unit = "contexts"
		}
		fmt.Printf("trained %d epochs, %d examples in %s (%.0f %s/s)\n",
			len(hist.Epochs), totalExamples, totalTrain.Round(time.Millisecond),
			float64(totalExamples)/totalTrain.Seconds(), unit)
	}

	res := eval.Evaluate(eval.NewRanker(m, filter), ds.Test, eval.Options{})
	fmt.Printf("test MRR %.4f  MR %.1f  Hits@1 %.3f  Hits@3 %.3f  Hits@10 %.3f\n",
		res.MRR, res.MeanRank, res.Hits[1], res.Hits[3], res.Hits[10])

	switch *format {
	case "gob":
		err = kge.SaveFile(m, *out)
	case "flat":
		err = kge.SaveFlatFile(m, *out)
	default:
		return fmt.Errorf("unknown -format %q (want gob or flat)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s checkpoint %s (sha256 %s)\n", *format, *out, kge.Fingerprint(m))
	return nil
}
