package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kg"
	"repro/internal/synth"
)

func writeTinyDataset(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunTrainsAndSaves(t *testing.T) {
	dir := writeTinyDataset(t)
	out := filepath.Join(t.TempDir(), "m.kge")
	err := run([]string{"-data", dir, "-model", "distmult", "-dim", "8",
		"-epochs", "3", "-out", out, "-quiet"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("checkpoint missing or empty: %v", err)
	}
}

func TestRunWithEarlyStoppingAndLoss(t *testing.T) {
	dir := writeTinyDataset(t)
	out := filepath.Join(t.TempDir(), "m.kge")
	err := run([]string{"-data", dir, "-model", "transe", "-dim", "8",
		"-epochs", "4", "-loss", "margin", "-opt", "adagrad",
		"-patience", "2", "-eval_every", "1", "-out", out, "-quiet"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWorkersFlagDeterministic(t *testing.T) {
	dir := writeTinyDataset(t)
	checkpoint := func(workers string, kvsall bool) []byte {
		t.Helper()
		out := filepath.Join(t.TempDir(), "m.kge")
		args := []string{"-data", dir, "-model", "distmult", "-dim", "8",
			"-epochs", "2", "-seed", "11", "-workers", workers, "-out", out, "-quiet"}
		if kvsall {
			args = append(args, "-kvsall")
		}
		if err := run(args); err != nil {
			t.Fatalf("run (workers=%s, kvsall=%v): %v", workers, kvsall, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(checkpoint("1", false), checkpoint("3", false)) {
		t.Error("negative-sampling checkpoints differ between -workers 1 and -workers 3")
	}
	if !bytes.Equal(checkpoint("1", true), checkpoint("3", true)) {
		t.Error("KvsAll checkpoints differ between -workers 1 and -workers 3")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-model", "transe"}); err == nil {
		t.Error("accepted missing -data")
	}
	dir := writeTinyDataset(t)
	if err := run([]string{"-data", dir, "-model", "bogus", "-quiet"}); err == nil {
		t.Error("accepted unknown model")
	}
	if err := run([]string{"-data", dir, "-opt", "bogus", "-quiet"}); err == nil {
		t.Error("accepted unknown optimizer")
	}
	if err := run([]string{"-data", dir, "-loss", "bogus", "-quiet"}); err == nil {
		t.Error("accepted unknown loss")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("accepted missing dataset directory")
	}
}
