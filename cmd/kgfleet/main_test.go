package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := [][]string{
		nil,            // no subcommand
		{"frobnicate"}, // unknown subcommand
		{"coord"},      // one-shot without -data/-model
		{"coord", "-resume", "-data", "d", "-model", "m"}, // -resume without -checkpoint
		{"coord", "-bogus"},
		{"worker"}, // no -coord
		{"worker", "-bogus"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(ctx, args, &out, &errBuf); err == nil {
			t.Errorf("run(%q) should fail", args)
		}
	}
}

// syncBuffer lets the test read a subprocess-style log stream while the
// coordinator goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// trainArtifacts writes a tiny dataset and trained checkpoint to disk — the
// on-disk form the fleet's coordinator and workers consume.
func trainArtifacts(t *testing.T) (dataDir, modelPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := kg.LoadDataset("tiny", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  reloaded.Train.Entities.Len(),
		NumRelations: reloaded.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), m, reloaded, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	return dataDir, modelPath
}

// TestCoordWorkerEndToEnd exercises the full command wiring in one process:
// a one-shot coordinator on a random port, two workers that find it by
// scraping the coordinator's "listening on" log line, and a byte-identity
// check of the fleet TSV against a direct jobs.Run over the same inputs.
func TestCoordWorkerEndToEnd(t *testing.T) {
	dataDir, modelPath := trainArtifacts(t)
	outTSV := filepath.Join(t.TempDir(), "facts.tsv")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var stderr syncBuffer
	var stdout bytes.Buffer
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- run(ctx, []string{"coord",
			"-data", dataDir, "-model", modelPath,
			"-strategy", "graph_degree", "-top_n", "40", "-max_candidates", "30", "-seed", "7",
			"-out", outTSV, "-limit", "3",
		}, &stdout, &stderr)
	}()

	re := regexp.MustCompile(`coordinator listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("coordinator never logged its address:\n%s", stderr.String())
	}

	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i)
		go func() {
			workerErr <- run(ctx, []string{"worker",
				"-coord", "http://" + addr, "-name", name, "-max-idle", "30s",
			}, io.Discard, io.Discard)
		}()
	}

	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v\ncoordinator log:\n%s", err, stderr.String())
		}
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v\nlog:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "sweep complete:") {
		t.Errorf("stdout missing sweep summary:\n%s", stdout.String())
	}

	got, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same sweep, single-process.
	ds, err := kg.LoadDataset(dataDir, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, mapped, _, err := kge.LoadAuto(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if mapped != nil {
		defer mapped.Close()
	}
	strategy, err := core.StrategyByName("graph_degree")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := jobs.Run(ctx, jobs.Spec{
		Model: m, Graph: ds.Train, Strategy: strategy,
		Options: core.Options{TopN: 40, MaxCandidates: 30, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := kg.NewGraphWithDicts(ds.Train.Entities, ds.Train.Relations)
	for _, f := range res.Facts {
		ref.Add(f.Triple)
	}
	var want bytes.Buffer
	if err := kg.WriteTSV(ref, &want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("fleet TSV differs from single-process reference:\nfleet:\n%s\nreference:\n%s", got, want.Bytes())
	}
}
