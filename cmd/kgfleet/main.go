// Command kgfleet runs the distributed discovery fleet: a coordinator that
// shards a sweep's relations into lease-able units, and workers that pull
// units over HTTP and execute them with the local jobs engine. The spliced
// output is byte-identical to a single-process kgdiscover run with the same
// inputs — including under worker crashes, dropped heartbeats, duplicate
// deliveries, and coordinator crash-resume (see internal/fleet).
//
// One-shot sweep (coordinator exits when the sweep completes and tells the
// workers to shut down):
//
//	kgfleet coord -addr 127.0.0.1:7070 -data data/fb10 -model transe.kgf \
//	              -strategy cluster_triangles -out facts.tsv &
//	kgfleet worker -coord http://127.0.0.1:7070 -name w1 &
//	kgfleet worker -coord http://127.0.0.1:7070 -name w2 &
//
// Long-lived coordinator (submit sweeps with kgdiscover -fleet=ADDR):
//
//	kgfleet coord -addr :7070 -serve
//
// With -checkpoint the coordinator journals every accepted relation record
// to a WAL (fsync'd before the worker's delivery is acknowledged); after a
// coordinator crash, rerunning with -resume continues from the last good
// record. The fault flags on the worker subcommand exist for the
// integration harness and scripts/ci.sh; production workers leave them off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kg"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kgfleet:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: kgfleet <coord|worker> [flags] (-h for flags)")
	}
	switch args[0] {
	case "coord":
		return runCoord(ctx, args[1:], stdout, stderr)
	case "worker":
		return runWorker(ctx, args[1:], stderr)
	default:
		return fmt.Errorf("unknown subcommand %q (want coord or worker)", args[0])
	}
}

// runCoord serves the coordinator API and, unless -serve is given, submits
// one sweep built from the flags and exits once it completes.
func runCoord(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kgfleet coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "listen address")
		serveMode = fs.Bool("serve", false, "stay up accepting POST /sweep submissions instead of running one sweep and exiting")
		dataDir   = fs.String("data", "", "dataset directory (one-shot mode)")
		modelPath = fs.String("model", "", "model checkpoint (one-shot mode)")
		stratName = fs.String("strategy", "entity_frequency",
			fmt.Sprintf("sampling strategy: %v", core.StrategyNames()))
		topN       = fs.Int("top_n", 500, "max rank for a candidate to count as a fact")
		maxCand    = fs.Int("max_candidates", 500, "max candidates generated per relation")
		seed       = fs.Int64("seed", 1, "sampling seed")
		filtered   = fs.Bool("rank_filtered", false, "use the filtered ranking protocol")
		cacheW     = fs.Bool("cache_weights", false, "memoize strategy statistics across relations")
		limit      = fs.Int("limit", 50, "print at most this many facts (0 = all)")
		outTSV     = fs.String("out", "", "write all facts as TSV to this path")
		checkpoint = fs.String("checkpoint", "", "journal each accepted relation to this WAL path (crash-resumable)")
		resume     = fs.Bool("resume", false, "continue from an existing -checkpoint journal")
		unitSize   = fs.Int("unit", 1, "relations per work unit (lease and reassignment granularity)")
		leaseTTL   = fs.Duration("lease", 10*time.Second, "lease TTL: a unit unheard-from this long is reassigned")
		poll       = fs.Duration("poll", 500*time.Millisecond, "wait suggested to idle workers between lease polls")
		maxAtt     = fs.Int("max-attempts", 5, "lease attempts per unit before the sweep is failed")
		drain      = fs.Duration("drain", 5*time.Second, "after a one-shot sweep, wait at most this long for workers to poll and receive their shutdown order")
		linger     = fs.Duration("linger", 0, "keep serving this long after the sweep completes (lets tests scrape /metrics)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*serveMode && (*dataDir == "" || *modelPath == "") {
		return errors.New("-data and -model are required (or -serve for a long-lived coordinator)")
	}
	if *resume && *checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}

	logger := log.New(stderr, "", log.LstdFlags)
	coord := fleet.New(fleet.Config{
		LeaseTTL:     *leaseTTL,
		PollInterval: *poll,
		MaxAttempts:  *maxAtt,
		OneShot:      !*serveMode,
		Logf:         logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("kgfleet: coordinator listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	go coord.Run(runCtx)

	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	shutdown := func() error {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return err
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}

	if *serveMode {
		<-ctx.Done()
		logger.Printf("kgfleet: shutting down")
		return shutdown()
	}

	resp, err := coord.Submit(ctx, fleet.SweepRequest{
		Data:     *dataDir,
		Model:    *modelPath,
		Strategy: *stratName,
		Options: fleet.SweepOptions{
			TopN:          *topN,
			MaxCandidates: *maxCand,
			Seed:          *seed,
			RankFiltered:  *filtered,
			CacheWeights:  *cacheW,
		},
		Checkpoint:    *checkpoint,
		Resume:        *resume,
		UnitRelations: *unitSize,
	})
	if err != nil {
		shutdown()
		return err
	}
	if werr := printSweep(stdout, resp, *dataDir, *stratName, *checkpoint, *limit, *outTSV); werr != nil {
		shutdown()
		return werr
	}
	// Let surviving workers poll once more and receive their shutdown order
	// before the listener goes away; bounded, because a worker the harness
	// SIGKILLed mid-fleet will never poll again.
	for deadline := time.Now().Add(*drain); time.Now().Before(deadline) && !coord.WorkersDrained() && ctx.Err() == nil; {
		time.Sleep(50 * time.Millisecond)
	}
	if *linger > 0 {
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	return shutdown()
}

// printSweep renders a completed sweep in kgdiscover's output shape: the
// resumed-checkpoint line, the summary lines, the top facts, and the TSV.
func printSweep(stdout io.Writer, resp *fleet.SweepResponse, dataDir, strategy, checkpoint string, limit int, outTSV string) error {
	ds, err := kg.LoadDataset(dataDir, dataDir)
	if err != nil {
		return err
	}
	if checkpoint != "" {
		fmt.Fprintf(stdout, "checkpoint: resumed %d of %d relations (journal %s)\n",
			resp.Fleet.Resumed, resp.Fleet.TotalRelations, checkpoint)
	}
	fmt.Fprintf(stdout, "sweep complete: strategy=%s fingerprint=%.12s facts=%d generated=%d\n",
		strategy, resp.Fingerprint, len(resp.Facts), resp.Generated)
	fmt.Fprintf(stdout, "fleet: units=%d workers=%d reassigned=%d duplicates=%d retried=%d resumed=%d\n",
		resp.Fleet.Units, resp.Fleet.Workers, resp.Fleet.Reassigned,
		resp.Fleet.DuplicateRecords, resp.Fleet.RetriedUnits, resp.Fleet.Resumed)
	fmt.Fprintf(stdout, "runtime=%s (weights=%s generate=%s rank=%s sweeps=%d)\n",
		time.Duration(resp.RuntimeMS)*time.Millisecond, time.Duration(resp.WeightMS)*time.Millisecond,
		time.Duration(resp.GenerateMS)*time.Millisecond, time.Duration(resp.RankMS)*time.Millisecond,
		resp.ScoreSweeps)

	n := len(resp.Facts)
	if limit > 0 && limit < n {
		n = limit
	}
	for _, f := range resp.Facts[:n] {
		fmt.Fprintf(stdout, "rank %4d  %s\n", f.Rank, ds.Train.FormatTriple(kg.Triple{S: f.S, R: f.R, O: f.O}))
	}
	if n < len(resp.Facts) {
		fmt.Fprintf(stdout, "... and %d more\n", len(resp.Facts)-n)
	}

	if outTSV != "" {
		fobj, err := os.Create(outTSV)
		if err != nil {
			return err
		}
		if err := fleet.WriteFactsTSV(ds.Train.Entities, ds.Train.Relations, resp.Facts, fobj); err != nil {
			fobj.Close()
			return err
		}
		if err := fobj.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d facts to %s\n", len(resp.Facts), outTSV)
	}
	return nil
}

// runWorker pulls and executes units until the coordinator shuts the fleet
// down or the process is signalled.
func runWorker(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("kgfleet worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coordURL = fs.String("coord", "", "coordinator base URL, e.g. http://127.0.0.1:7070 (required)")
		name     = fs.String("name", "", "worker name in leases and /status (default worker-<pid>)")
		maxIdle  = fs.Duration("max-idle", 2*time.Minute, "exit after the coordinator has been unreachable this long")

		// Fault-injection flags for the integration harness and ci.sh.
		faultSleep = fs.Duration("fault-sleep-per-relation", 0, "fault injection: stall this long after each relation (stretches units so tests can kill mid-unit)")
		faultMute  = fs.Int("fault-mute-after", 0, "fault injection: stop heartbeating after this many completed units (0 = off)")
		faultHang  = fs.Int("fault-hang-after", 0, "fault injection: hang forever mid-unit after this many completed units (0 = off)")
		faultDup   = fs.Bool("fault-dup-complete", false, "fault injection: deliver every completed unit twice")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" {
		return errors.New("-coord is required")
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}

	logger := log.New(stderr, "", log.LstdFlags)
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator:       *coordURL,
		Name:              *name,
		MaxIdle:           *maxIdle,
		Logf:              logger.Printf,
		SleepPerRelation:  *faultSleep,
		MuteAfterUnits:    *faultMute,
		HangAfterUnits:    *faultHang,
		DuplicateComplete: *faultDup,
	})
	err := w.Run(ctx)
	if errors.Is(err, context.Canceled) {
		return nil // signalled: clean exit
	}
	return err
}
