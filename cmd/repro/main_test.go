package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// miniArgs shrinks everything so the command tests run in seconds.
func miniArgs(outDir string, rest ...string) []string {
	args := []string{
		"-scale", "400", "-dim", "8", "-epochs", "1",
		"-top_n", "20", "-max_candidates", "20",
		"-models", "distmult", "-strategies", "uniform_random",
		"-out", outDir, "-cache", "", "-quiet",
	}
	return append(args, rest...)
}

func TestRunTable1(t *testing.T) {
	outDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run(miniArgs(outDir, "table1"), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fb15k237-sim") {
		t.Error("table1 output missing dataset")
	}
	if _, err := os.Stat(filepath.Join(outDir, "table1.csv")); err != nil {
		t.Errorf("table1.csv not written: %v", err)
	}
}

func TestRunFig3AndFig5(t *testing.T) {
	outDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run(miniArgs(outDir, "fig3"), &stdout, &stderr); err != nil {
		t.Fatalf("fig3: %v", err)
	}
	if err := run(miniArgs(outDir, "fig5"), &stdout, &stderr); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	for _, f := range []string{"fig3_clustering.csv", "fig5_node_series.csv"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunSweepCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	outDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run(miniArgs(outDir, "sweep"), &stdout, &stderr); err != nil {
		t.Fatalf("sweep: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Figure 2", "Figure 4", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}

func TestRunSquaresCommand(t *testing.T) {
	outDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run(miniArgs(outDir, "squares"), &stdout, &stderr); err != nil {
		t.Fatalf("squares: %v", err)
	}
	if !strings.Contains(stdout.String(), "cluster_squares") {
		t.Error("squares output missing strategy")
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quiet"}, &stdout, &stderr); err == nil {
		t.Error("accepted missing command")
	}
	if err := run(miniArgs(t.TempDir(), "bogus"), &stdout, &stderr); err == nil {
		t.Error("accepted unknown command")
	}
}
