// Command repro regenerates every table and figure of the paper's
// evaluation section against the simulated datasets:
//
//	repro table1            Table 1   dataset metadata
//	repro fig2              Figure 2  discovery runtime per strategy/dataset
//	repro fig3              Figure 3  clustering-coefficient distributions
//	repro fig4              Figure 4  MRR of discovered facts
//	repro fig5              Figure 5  per-node triangles vs clustering coeff.
//	repro fig6              Figure 6  discovery efficiency (facts/hour)
//	repro fig7..fig10       §4.3      hyperparameter grid projections
//	repro squares           §4.3      CLUSTERING SQUARES exclusion experiment
//	repro sweep             Figures 2+4+6 from a single sweep
//	repro models            §3.2      link-prediction quality of every trained model
//	repro bias              §4.2.2    popularity-bias audit per model/dataset
//	repro recovery          §6        hidden-fact recovery protocol per strategy
//	repro all               everything above
//
// Results are printed as ASCII tables/bars and written as CSVs under -out.
// Trained models are cached under -cache so repeated invocations skip
// training.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale    = fs.Int("scale", 10, "dataset scale divisor (1 = paper-sized; larger = smaller datasets)")
		dim      = fs.Int("dim", 32, "embedding dimension")
		epochs   = fs.Int("epochs", 25, "training epochs per model")
		topN     = fs.Int("top_n", 500, "discovery quality threshold")
		topNFrac = fs.Float64("top_n_frac", 0, "override top_n with this fraction of each dataset's entity count (0 = use -top_n)")
		maxCand  = fs.Int("max_candidates", 500, "discovery candidates per relation")
		seed     = fs.Int64("seed", 1, "global random seed")
		outDir   = fs.String("out", "results", "directory for CSV outputs (empty = don't write)")
		cacheDir = fs.String("cache", "results/models", "trained-model cache directory (empty = no cache)")
		models   = fs.String("models", "", "comma-separated model subset (default: paper's five)")
		strats   = fs.String("strategies", "", "comma-separated strategy subset (default: paper's five)")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: repro [flags] {table1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|sweep|squares|models|bias|recovery|all}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one command, got %d", fs.NArg())
	}
	command := fs.Arg(0)

	cfg := harness.Config{
		Scale:         *scale,
		Dim:           *dim,
		Epochs:        *epochs,
		TopN:          *topN,
		TopNFraction:  *topNFrac,
		MaxCandidates: *maxCand,
		Seed:          *seed,
		CacheDir:      *cacheDir,
	}
	if !*quiet {
		cfg.Log = stderr
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	if *strats != "" {
		cfg.Strategies = strings.Split(*strats, ",")
	}
	r := harness.NewRunner(cfg)
	ctx := context.Background()

	needSweep := false
	needGrid := false
	switch command {
	case "fig2", "fig4", "fig6", "sweep", "all":
		needSweep = true
	}
	switch command {
	case "fig7", "fig8", "fig9", "fig10", "all":
		needGrid = true
	}

	var sweep []harness.SweepRecord
	if needSweep {
		var err error
		sweep, err = r.RunSweep(ctx)
		if err != nil {
			return err
		}
	}
	var gridTri, gridUni []harness.GridRecord
	if needGrid {
		var err error
		gridTri, err = r.RunGrid(ctx, "cluster_triangles", nil, nil)
		if err != nil {
			return err
		}
		gridUni, err = r.RunGrid(ctx, "uniform_random", nil, nil)
		if err != nil {
			return err
		}
	}

	section := func(name string) {
		fmt.Fprintf(stdout, "\n========== %s ==========\n\n", name)
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			section("Table 1")
			_, err := r.Table1(stdout, *outDir)
			return err
		case "fig2":
			section("Figure 2")
			return r.Fig2(stdout, *outDir, sweep)
		case "fig3":
			section("Figure 3")
			_, err := r.Fig3(stdout, *outDir)
			return err
		case "fig4":
			section("Figure 4")
			return r.Fig4(stdout, *outDir, sweep)
		case "fig5":
			section("Figure 5")
			_, err := r.Fig5(stdout, *outDir)
			return err
		case "fig6":
			section("Figure 6")
			return r.Fig6(stdout, *outDir, sweep)
		case "fig7":
			section("Figure 7")
			return r.Fig7(stdout, *outDir, gridTri)
		case "fig8":
			section("Figure 8")
			return r.Fig8(stdout, *outDir, gridTri)
		case "fig9", "fig10":
			section("Figures 9-10")
			if err := r.Fig9And10(stdout, *outDir, gridTri); err != nil {
				return err
			}
			return r.Fig9And10(stdout, *outDir, gridUni)
		case "sweep":
			section("Sweep (Figures 2, 4, 6)")
			if err := r.Fig2(stdout, *outDir, sweep); err != nil {
				return err
			}
			if err := r.Fig4(stdout, *outDir, sweep); err != nil {
				return err
			}
			return r.Fig6(stdout, *outDir, sweep)
		case "squares":
			section("Squares exclusion")
			_, err := r.SquaresExclusion(ctx, stdout, *outDir)
			return err
		case "models":
			section("Model quality")
			_, err := r.ModelQuality(ctx, stdout, *outDir)
			return err
		case "bias":
			section("Popularity-bias audit")
			_, err := r.BiasAudit(ctx, stdout, *outDir)
			return err
		case "recovery":
			section("Hidden-fact recovery")
			_, err := r.RecoveryProtocol(ctx, stdout, *outDir)
			return err
		default:
			return fmt.Errorf("unknown command %q", name)
		}
	}

	if command == "all" {
		for _, name := range []string{"table1", "fig3", "fig5", "sweep", "fig7", "fig8", "fig9", "squares", "models", "bias", "recovery"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(command)
}
