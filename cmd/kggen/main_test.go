package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTinyPreset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run([]string{"-preset", "tiny", "-out", dir, "-stats"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"train.txt", "valid.txt", "test.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestRunCustom(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	err := run([]string{"-entities", "60", "-relations", "4", "-triples", "500", "-out", dir})
	if err != nil {
		t.Fatalf("run custom: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-preset", "tiny"}); err == nil {
		t.Error("accepted missing -out")
	}
	if err := run([]string{"-preset", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("accepted unknown preset")
	}
	if err := run([]string{"-entities", "10", "-triples", "2", "-out", t.TempDir()}); err == nil {
		t.Error("accepted unsatisfiable config")
	}
}
