// Command kggen generates a synthetic knowledge graph dataset and writes
// the train/valid/test splits as TSV files.
//
//	kggen -preset fb15k237 -scale 10 -out data/fb10
//	kggen -entities 5000 -relations 40 -triples 60000 -out data/custom
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graphstats"
	"repro/internal/kg"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kggen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kggen", flag.ContinueOnError)
	var (
		preset    = fs.String("preset", "", "dataset preset: fb15k237, wn18rr, yago310, codexl, tiny (empty = custom)")
		scale     = fs.Int("scale", 10, "preset scale divisor")
		out       = fs.String("out", "", "output directory (required)")
		entities  = fs.Int("entities", 1000, "custom: number of entities")
		relations = fs.Int("relations", 20, "custom: number of relations")
		triples   = fs.Int("triples", 10000, "custom: number of triples")
		types     = fs.Int("types", 8, "custom: latent entity types")
		closure   = fs.Float64("closure", 0.2, "custom: triadic closure probability")
		noise     = fs.Float64("noise", 0.05, "custom: type-violation probability")
		zipf      = fs.Float64("zipf", 1.0, "custom: entity popularity Zipf exponent")
		validFrac = fs.Float64("valid", 0.05, "validation fraction")
		testFrac  = fs.Float64("test", 0.05, "test fraction")
		seed      = fs.Int64("seed", 1, "random seed")
		stats     = fs.Bool("stats", false, "print graph statistics after generation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var cfg synth.Config
	switch *preset {
	case "fb15k237":
		cfg = synth.FB15K237Sim(*scale)
	case "wn18rr":
		cfg = synth.WN18RRSim(*scale)
	case "yago310":
		cfg = synth.YAGO310Sim(*scale)
	case "codexl":
		cfg = synth.CoDExLSim(*scale)
	case "tiny":
		cfg = synth.Tiny()
	case "":
		cfg = synth.Config{
			Name:         "custom",
			NumEntities:  *entities,
			NumRelations: *relations,
			NumTriples:   *triples,
			NumTypes:     *types,
			EntityZipf:   *zipf,
			RelationZipf: 0.9,
			ClosureProb:  *closure,
			NoiseProb:    *noise,
			ValidFrac:    *validFrac,
			TestFrac:     *testFrac,
			Seed:         *seed,
		}
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	ds, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	if err := kg.SaveDataset(ds, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %s to %s\n", ds.Metadata(), *out)

	if *stats {
		u := graphstats.BuildUndirected(ds.Train)
		coeffs := u.LocalClustering(nil)
		fmt.Printf("undirected edges:               %d\n", u.NumEdges())
		fmt.Printf("average clustering coefficient: %.4f\n", graphstats.Mean(coeffs))
	}
	return nil
}
