package main

import (
	"path/filepath"
	"testing"

	"repro/internal/kg"
	"repro/internal/synth"
)

func writeTinyDataset(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunStats(t *testing.T) {
	dir := writeTinyDataset(t)
	for _, args := range [][]string{
		{"-data", dir},
		{"-data", dir, "-clustering"},
		{"-data", dir, "-clustering", "-histogram", "-squares", "-top", "3"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("accepted missing -data")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("accepted missing dataset")
	}
}
