// Command kgstats prints structural statistics of a TSV dataset: Table 1
// style metadata, degree and clustering summaries, and (optionally) the
// expensive square clustering coefficients.
//
//	kgstats -data data/fb10 -clustering -histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/graphstats"
	"repro/internal/kg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgstats:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgstats", flag.ContinueOnError)
	var (
		dataDir    = fs.String("data", "", "dataset directory (required)")
		clustering = fs.Bool("clustering", false, "compute triangle and clustering statistics")
		histogram  = fs.Bool("histogram", false, "print the clustering-coefficient histogram (Figure 3 style)")
		squares    = fs.Bool("squares", false, "compute square clustering coefficients (expensive)")
		topK       = fs.Int("top", 10, "show this many highest-degree entities")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}

	ds, err := kg.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	m := ds.Metadata()
	fmt.Printf("dataset:    %s\n", *dataDir)
	fmt.Printf("train:      %d\nvalidation: %d\ntest:       %d\nentities:   %d\nrelations:  %d\n",
		m.Train, m.Validation, m.Test, m.Entities, m.Relations)
	fmt.Printf("density:    %.2f triples/entity\n", float64(m.Train)/float64(m.Entities))

	g := ds.Train
	type ranked struct {
		e kg.EntityID
		d int64
	}
	all := make([]ranked, g.NumEntities())
	for e := range all {
		all[e] = ranked{kg.EntityID(e), g.Degree(kg.EntityID(e))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d > all[j].d })
	fmt.Printf("\ntop %d entities by degree:\n", *topK)
	for i := 0; i < *topK && i < len(all); i++ {
		fmt.Printf("  %-24s degree %d\n", g.Entities.Name(int32(all[i].e)), all[i].d)
	}

	if *clustering || *histogram || *squares {
		u := graphstats.BuildUndirected(g)
		tri := u.Triangles()
		coeffs := u.LocalClustering(tri)
		var triSum int64
		for _, t := range tri {
			triSum += t
		}
		fmt.Printf("\nundirected edges:               %d\n", u.NumEdges())
		fmt.Printf("triangles (total):              %d\n", triSum/3)
		fmt.Printf("average clustering coefficient: %.4f\n", graphstats.Mean(coeffs))

		if *histogram {
			edges, counts := graphstats.Histogram(coeffs, 20)
			fmt.Println("\nclustering coefficient histogram:")
			maxC := 0
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
			}
			for i, c := range counts {
				bar := ""
				if maxC > 0 {
					for j := 0; j < c*40/maxC; j++ {
						bar += "#"
					}
				}
				fmt.Printf("  [%.2f,%.2f) %6d %s\n", edges[i], edges[i+1], c, bar)
			}
		}
		if *squares {
			c4 := u.SquareClustering()
			fmt.Printf("average square clustering:      %.4f\n", graphstats.Mean(c4))
		}
	}
	return nil
}
