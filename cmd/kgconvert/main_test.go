package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/kge"
)

// fixture writes a gob checkpoint with scrambled weights and returns its
// path and fingerprint.
func fixture(t *testing.T) (gobPath, fingerprint string) {
	t.Helper()
	m, err := kge.New("complex", kge.Config{NumEntities: 19, NumRelations: 4, Dim: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for _, p := range m.Params().List() {
		for i := range p.M.Data {
			p.M.Data[i] = float32(rng.NormFloat64())
		}
	}
	gobPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, gobPath); err != nil {
		t.Fatal(err)
	}
	return gobPath, kge.Fingerprint(m)
}

func TestConvertRoundTrip(t *testing.T) {
	gobPath, fp := fixture(t)
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "m.kgf")
	backPath := filepath.Join(dir, "back.kge")

	if err := run([]string{"-in", gobPath, "-out", flatPath}); err != nil {
		t.Fatalf("gob→flat: %v", err)
	}
	mm, err := kge.OpenMapped(flatPath)
	if err != nil {
		t.Fatalf("open converted flat: %v", err)
	}
	defer mm.Close()
	if got := kge.Fingerprint(mm); got != fp {
		t.Fatalf("converted fingerprint %s, want %s", got, fp)
	}

	if err := run([]string{"-in", flatPath, "-out", backPath, "-to", "gob"}); err != nil {
		t.Fatalf("flat→gob: %v", err)
	}
	back, err := kge.LoadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := kge.Fingerprint(back); got != fp {
		t.Fatalf("round-tripped fingerprint %s, want %s", got, fp)
	}
}

func TestConvertErrors(t *testing.T) {
	gobPath, _ := fixture(t)
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "m.kgf")
	if err := run([]string{"-in", gobPath}); err == nil {
		t.Error("accepted missing -out")
	}
	if err := run([]string{"-in", gobPath, "-out", flatPath, "-to", "bogus"}); err == nil {
		t.Error("accepted unknown -to")
	}
	if err := run([]string{"-in", gobPath, "-out", gobPath + ".gob2", "-to", "gob"}); err == nil {
		t.Error("accepted no-op gob→gob conversion")
	}
	if err := run([]string{"-in", filepath.Join(dir, "none.kge"), "-out", flatPath}); err == nil {
		t.Error("accepted missing input")
	}
	// Existing output refused without -force, accepted with it.
	if err := run([]string{"-in", gobPath, "-out", flatPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", gobPath, "-out", flatPath}); err == nil {
		t.Error("overwrote existing output without -force")
	}
	if err := run([]string{"-in", gobPath, "-out", flatPath, "-force"}); err != nil {
		t.Errorf("-force overwrite failed: %v", err)
	}
}
