// Command kgconvert migrates model checkpoints between the legacy gob
// container and the mmap-able flat layout, verifying that the weights
// survive bit-for-bit.
//
//	kgconvert -in model.kge -out model.kgf             # gob → flat
//	kgconvert -in model.kgf -out model.kge -to gob     # flat → gob
//
// The conversion is fingerprint-checked: the output is re-opened and its
// kge.Fingerprint compared against the input's before kgconvert reports
// success, so a conversion can never silently corrupt weights.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgconvert:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgconvert", flag.ContinueOnError)
	var (
		in    = fs.String("in", "", "input checkpoint (gob or flat, sniffed; required)")
		out   = fs.String("out", "", "output checkpoint path (required)")
		to    = fs.String("to", "flat", "output format: flat or gob")
		force = fs.Bool("force", false, "overwrite an existing output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if *to != "flat" && *to != "gob" {
		return fmt.Errorf("unknown -to %q (want flat or gob)", *to)
	}
	if !*force {
		if _, err := os.Stat(*out); err == nil {
			return fmt.Errorf("%s already exists (use -force to overwrite)", *out)
		}
	}

	m, mapped, inFormat, err := kge.LoadAuto(*in)
	if err != nil {
		return fmt.Errorf("read %s: %w", *in, err)
	}
	if mapped != nil {
		defer mapped.Close()
	}
	fp := kge.Fingerprint(m)

	if inFormat == *to {
		return fmt.Errorf("%s is already a %s checkpoint", *in, inFormat)
	}
	switch *to {
	case "flat":
		err = kge.SaveFlatFile(m, *out)
	case "gob":
		err = kge.SaveFile(m, *out)
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}

	// Round-trip verification: the written file must load to the same
	// canonical weights. Catches encoder bugs and torn filesystems alike.
	check, checkMapped, _, err := kge.LoadAuto(*out)
	if err != nil {
		return fmt.Errorf("verify %s: %w", *out, err)
	}
	if checkMapped != nil {
		defer checkMapped.Close()
	}
	if got := kge.Fingerprint(check); got != fp {
		return fmt.Errorf("verify %s: fingerprint %s after conversion, want %s", *out, got, fp)
	}
	fmt.Printf("converted %s (%s) -> %s (%s), fingerprint %s\n", *in, inFormat, *out, *to, fp)
	return nil
}
