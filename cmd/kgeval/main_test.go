package main

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

// fixture writes a tiny dataset and a trained checkpoint to temp dirs.
func fixture(t *testing.T) (dataDir, modelPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	// IDs must match the TSV load order, so reload before training.
	reloaded, err := kg.LoadDataset("tiny", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  reloaded.Train.Entities.Len(),
		NumRelations: reloaded.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), m, reloaded, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	return dataDir, modelPath
}

func TestRunEvaluates(t *testing.T) {
	dataDir, modelPath := fixture(t)
	for _, args := range [][]string{
		{"-data", dataDir, "-model", modelPath},
		{"-data", dataDir, "-model", modelPath, "-filtered=false"},
		{"-data", dataDir, "-model", modelPath, "-both", "-split", "valid", "-limit", "5"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dataDir, modelPath := fixture(t)
	if err := run([]string{"-data", dataDir}); err == nil {
		t.Error("accepted missing -model")
	}
	if err := run([]string{"-model", modelPath}); err == nil {
		t.Error("accepted missing -data")
	}
	if err := run([]string{"-data", dataDir, "-model", modelPath, "-split", "bogus"}); err == nil {
		t.Error("accepted unknown split")
	}
	if err := run([]string{"-data", dataDir, "-model", filepath.Join(t.TempDir(), "none.kge")}); err == nil {
		t.Error("accepted missing checkpoint")
	}
}
