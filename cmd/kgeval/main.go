// Command kgeval evaluates a trained KGE checkpoint with the standard
// link-prediction protocol (MRR, mean rank, Hits@k) on a dataset's test
// split.
//
//	kgeval -data data/fb10 -model transe.kge -both -filtered
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgeval", flag.ContinueOnError)
	var (
		dataDir   = fs.String("data", "", "dataset directory (required)")
		modelPath = fs.String("model", "", "model checkpoint (required)")
		split     = fs.String("split", "test", "split to evaluate: test or valid")
		filtered  = fs.Bool("filtered", true, "filtered protocol (skip known true corruptions)")
		both      = fs.Bool("both", false, "rank both subject and object corruptions")
		limit     = fs.Int("limit", 0, "evaluate at most this many triples (0 = all)")
		classify  = fs.Bool("classify", false, "also run triple classification (thresholds calibrated on valid)")
		seed      = fs.Int64("seed", 1, "seed for classification negatives")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *modelPath == "" {
		return fmt.Errorf("-data and -model are required")
	}

	ds, err := kg.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	m, mapped, _, err := kge.LoadAuto(*modelPath)
	if err != nil {
		return err
	}
	if mapped != nil {
		defer mapped.Close()
	}
	if m.NumEntities() < ds.Train.Entities.Len() {
		return fmt.Errorf("model covers %d entities, dataset has %d", m.NumEntities(), ds.Train.Entities.Len())
	}

	var target *kg.Graph
	switch *split {
	case "test":
		target = ds.Test
	case "valid":
		target = ds.Valid
	default:
		return fmt.Errorf("unknown split %q", *split)
	}

	var filter *kg.Graph
	if *filtered {
		filter = ds.All()
	}
	res := eval.Evaluate(eval.NewRanker(m, filter), target, eval.Options{
		BothSides:  *both,
		MaxTriples: *limit,
	})
	protocol := "raw"
	if *filtered {
		protocol = "filtered"
	}
	fmt.Printf("model=%s split=%s protocol=%s n=%d\n", m.Name(), *split, protocol, res.N)
	fmt.Printf("MRR      %.4f\n", res.MRR)
	fmt.Printf("MeanRank %.1f\n", res.MeanRank)
	for _, k := range []int{1, 3, 10} {
		fmt.Printf("Hits@%-2d  %.4f\n", k, res.Hits[k])
	}

	if *classify {
		clf, err := eval.TrainClassifier(m, ds.Valid, ds.All(), *seed)
		if err != nil {
			return err
		}
		cls := eval.EvaluateClassifier(clf, target, ds.All(), *seed+1)
		fmt.Printf("\ntriple classification (per-relation thresholds, n=%d):\n", cls.N)
		fmt.Printf("accuracy  %.4f\nprecision %.4f\nrecall    %.4f\n", cls.Accuracy, cls.Precision, cls.Recall)
	}
	return nil
}
