package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

// testServer builds a server over a tiny trained model.
func testServer(t *testing.T) *server {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := kg.LoadDataset("tiny", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  reloaded.Train.Entities.Len(),
		NumRelations: reloaded.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), m, reloaded, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(dataDir, modelPath)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	return srv
}

func do(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("invalid JSON response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestHealthAndStats(t *testing.T) {
	h := testServer(t).routes()
	rec, body := do(t, h, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rec.Code, body)
	}
	rec, body = do(t, h, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	if body["entities"].(float64) != 80 || body["relations"].(float64) != 6 {
		t.Errorf("stats payload: %v", body)
	}
	if body["calibrated"] != true {
		t.Error("expected a fitted calibrator with a validation split present")
	}
}

func TestScoreEndpoint(t *testing.T) {
	h := testServer(t).routes()
	rec, body := do(t, h, "POST", "/score", tripleRequest{Subject: "e1", Relation: "r0", Object: "e2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("score: %d %v", rec.Code, body)
	}
	if _, ok := body["score"]; !ok {
		t.Error("missing score")
	}
	if p, ok := body["probability"].(float64); !ok || p < 0 || p > 1 {
		t.Errorf("probability = %v", body["probability"])
	}
	// Unknown entity → 404.
	rec, _ = do(t, h, "POST", "/score", tripleRequest{Subject: "ghost", Relation: "r0", Object: "e2"})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown subject: %d, want 404", rec.Code)
	}
	// Malformed JSON → 400.
	req := httptest.NewRequest("POST", "/score", bytes.NewBufferString("{"))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", rec2.Code)
	}
}

func TestRankEndpoint(t *testing.T) {
	h := testServer(t).routes()
	rec, body := do(t, h, "POST", "/rank", tripleRequest{Subject: "e1", Relation: "r0", Object: "e2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("rank: %d %v", rec.Code, body)
	}
	rank := body["rank"].(float64)
	if rank < 1 || rank > 80 {
		t.Errorf("rank %v out of [1, 80]", rank)
	}
}

func TestQueryEndpoint(t *testing.T) {
	h := testServer(t).routes()
	rec, body := do(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "r0", K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %v", rec.Code, body)
	}
	answers := body["answers"].([]any)
	if len(answers) != 5 {
		t.Fatalf("answers = %d, want 5", len(answers))
	}
	// Scores must be non-increasing.
	prev := answers[0].(map[string]any)["score"].(float64)
	for _, a := range answers[1:] {
		cur := a.(map[string]any)["score"].(float64)
		if cur > prev {
			t.Fatal("answers not sorted by score")
		}
		prev = cur
	}
	rec, _ = do(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "ghost"})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown relation: %d", rec.Code)
	}
}

func TestDiscoverEndpoint(t *testing.T) {
	h := testServer(t).routes()
	rec, body := do(t, h, "POST", "/discover", discoverRequest{
		Strategy: "graph_degree", TopN: 20, MaxCandidates: 30, Limit: 5, Seed: 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: %d %v", rec.Code, body)
	}
	facts := body["facts"].([]any)
	if len(facts) == 0 || len(facts) > 5 {
		t.Fatalf("facts = %d, want 1..5", len(facts))
	}
	first := facts[0].(map[string]any)
	for _, field := range []string{"subject", "relation", "object", "rank"} {
		if _, ok := first[field]; !ok {
			t.Errorf("fact missing %s: %v", field, first)
		}
	}
	if body["total"].(float64) < float64(len(facts)) {
		t.Error("total < returned facts")
	}
	// Relation-restricted discovery with a named relation.
	rec, body = do(t, h, "POST", "/discover", discoverRequest{
		Strategy: "uniform_random", TopN: 20, MaxCandidates: 20,
		Relations: []string{"r1"}, Limit: 3, Seed: 4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("restricted discover: %d %v", rec.Code, body)
	}
	for _, f := range body["facts"].([]any) {
		if rel := f.(map[string]any)["relation"].(string); rel != "r1" {
			t.Errorf("fact for relation %q, want r1", rel)
		}
	}
	// Unknown strategy → 400; unknown relation → 404.
	rec, _ = do(t, h, "POST", "/discover", discoverRequest{Strategy: "bogus"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown strategy: %d", rec.Code)
	}
	rec, _ = do(t, h, "POST", "/discover", discoverRequest{Relations: []string{"ghost"}})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown relation: %d", rec.Code)
	}
}
