package main

import (
	"bytes"
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/train"
)

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Error("run without -data/-model should fail")
	}
	if err := run(context.Background(), []string{"-bogus"}, &buf); err == nil {
		t.Error("run with an unknown flag should fail")
	}
	if err := run(context.Background(), []string{"-data", "x"}, &buf); err == nil {
		t.Error("run without -model should fail")
	}
}

// trainArtifacts writes a tiny dataset and trained checkpoint to disk, the
// on-disk form serve.Load consumes.
func trainArtifacts(t *testing.T) (dataDir, modelPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := kg.LoadDataset("tiny", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  reloaded.Train.Entities.Len(),
		NumRelations: reloaded.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), m, reloaded, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	return dataDir, modelPath
}

// TestServeEndToEnd exercises the wiring main performs: load artifacts from
// disk, serve over a real TCP listener, hit /healthz and /discover twice
// (the second must be a cache hit), confirm the hit shows up in /metrics,
// then cancel the context and require a clean graceful drain.
func TestServeEndToEnd(t *testing.T) {
	dataDir, modelPath := trainArtifacts(t)
	srv, err := serve.Load(dataDir, modelPath, serve.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatalf("serve.Load: %v", err)
	}
	if srv.Fingerprint() == "" {
		t.Error("empty model fingerprint")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":3}`
	post := func() (string, string) {
		resp, err := http.Post(base+"/discover", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("discover: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("discover: %d %s", resp.StatusCode, b)
		}
		return string(b), resp.Header.Get("X-Cache")
	}
	b1, c1 := post()
	b2, c2 := post()
	if c1 != "miss" || c2 != "hit" {
		t.Errorf("X-Cache sequence %q, %q; want miss, hit", c1, c2)
	}
	if b1 != b2 {
		t.Errorf("cached body differs from original:\n%s\nvs\n%s", b1, b2)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "kgserve_cache_hits_total 1") {
		t.Errorf("metrics missing cache hit counter:\n%s", mb)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain after cancel")
	}
}
