// Command kgserve exposes a trained KGE model and its knowledge graph as a
// production JSON-over-HTTP service: triple scoring (with calibrated
// probabilities), rank queries, link-prediction style object queries,
// on-demand fact discovery, and Prometheus-text metrics. The serving
// machinery — timeouts, graceful shutdown, panic recovery, body limits,
// concurrency bounding, and the fingerprint-keyed response cache — lives in
// internal/serve; this command is flag parsing and signal wiring.
//
//	kgserve -data data/fb10 -model transe.kge -addr :8080
//
//	GET  /healthz
//	GET  /stats
//	GET  /metrics
//	POST /score     {"subject":"e1","relation":"r0","object":"e2"}
//	POST /rank      {"subject":"e1","relation":"r0","object":"e2"}
//	POST /query     {"subject":"e1","relation":"r0","k":10}
//	POST /discover  {"strategy":"cluster_triangles","top_n":50,
//	                 "max_candidates":100,"relations":["r0"],"limit":25}
//	POST /mutate    {"seq":1,"source":"ingest","ops":[
//	                 {"op":"add","s":"e1","r":"r0","o":"e2"}]}
//
// /mutate applies batched live graph mutations: indexes, graph statistics,
// and the ranking filter update incrementally, and cached responses that
// depended on a mutated relation are invalidated. With -mutation-log the
// batches land in a durable WAL before applying and replay on restart.
//
// Sweeps too long to hold an HTTP request open run asynchronously:
//
//	POST   /jobs             same body as /discover → 202 + job id
//	GET    /jobs             status of every retained job
//	GET    /jobs/{id}        one job's status and per-relation progress
//	GET    /jobs/{id}/result the discovered facts once state is "done"
//	DELETE /jobs/{id}        cancel a queued or running job
//
// With -job-dir each async job journals completed relations to a WAL there,
// so resubmitting after a crash resumes instead of restarting.
//
// The server hosts any number of models over one dataset (flat checkpoints
// are memory-mapped, so N models cost N× page-cache residency, not N× heap).
// Load extras at startup with -models, or manage them live:
//
//	GET    /models      every loaded model, by weight fingerprint
//	POST   /models      {"path":"b.kgf","default":false} load a checkpoint
//	DELETE /models/{fp} unload (in-flight requests drain first)
//
// Request bodies accept an optional "model" field — a fingerprint or unique
// prefix — to route /score, /rank, /query, /discover, and /jobs per model.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/kge"
	"repro/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kgserve:", err)
		os.Exit(1)
	}
}

// run parses flags, loads the artifacts, and serves until ctx is cancelled
// or a SIGINT/SIGTERM arrives, then drains gracefully.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("kgserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataDir := fs.String("data", "", "dataset directory (required)")
	modelPath := fs.String("model", "", "default model checkpoint, gob or flat (required)")
	extraModels := fs.String("models", "", "comma-separated additional checkpoints to serve alongside the default (route with the request's \"model\" fingerprint selector)")
	addr := fs.String("addr", ":8080", "listen address")
	maxDiscover := fs.Int("max-discover", 4, "max concurrent /discover executions (excess requests get 429)")
	cacheSize := fs.Int("cache-size", 256, "response cache capacity in entries (negative disables caching)")
	requestTimeout := fs.Duration("request-timeout", 2*time.Minute, "per-request deadline (slow /discover returns 503)")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes (larger bodies get 413)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
	jobWorkers := fs.Int("job-workers", 2, "worker pool size for async /jobs discovery")
	maxJobs := fs.Int("max-jobs", 64, "finished async jobs retained before the oldest are evicted")
	jobTTL := fs.Duration("job-ttl", time.Hour, "finished async jobs older than this are evicted")
	jobDir := fs.String("job-dir", "", "journal async jobs to WALs under this directory (empty = in-memory only)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes stacks and heap contents; keep off on untrusted networks)")
	pruneMode := fs.String("prune", "off", "prescreen every discovery sweep with an IVF/int8 index: off, exact (byte-identical output), or approx")
	pruneCells := fs.Int("prune-cells", 0, "prune index cell count (0 = ceil(sqrt(|E|)))")
	pruneProbe := fs.Int("prune-probe", 0, "cells visited per query with -prune=approx (0 = ceil(cells/8))")
	mutationLog := fs.String("mutation-log", "", "durable WAL for POST /mutate batches; existing batches replay on startup (empty = mutations are in-memory only)")
	maxMutationOps := fs.Int("max-mutation-ops", 1000, "max ops per /mutate batch (larger batches get 413; negative disables the endpoint)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *modelPath == "" {
		return fmt.Errorf("-data and -model are required")
	}
	if *jobDir != "" {
		if err := os.MkdirAll(*jobDir, 0o755); err != nil {
			return err
		}
	}

	logger := log.New(stderr, "", log.LstdFlags)
	srv, err := serve.Load(*dataDir, *modelPath, serve.Config{
		Addr:            *addr,
		MaxDiscover:     *maxDiscover,
		CacheSize:       *cacheSize,
		RequestTimeout:  *requestTimeout,
		MaxBodyBytes:    *maxBody,
		ShutdownTimeout: *shutdownTimeout,
		JobWorkers:      *jobWorkers,
		MaxJobs:         *maxJobs,
		JobTTL:          *jobTTL,
		JobDir:          *jobDir,
		Logger:          logger,
		EnablePprof:     *enablePprof,
		PruneMode:       *pruneMode,
		PruneCells:      *pruneCells,
		PruneProbe:      *pruneProbe,
		MutationLog:     *mutationLog,
		MaxMutationOps:  *maxMutationOps,
		// The sidecar lives next to the checkpoint so restarts skip the
		// k-means build as long as the weights have not changed.
		PruneIndexPath: kge.SidecarPath(*modelPath),
	})
	if err != nil {
		return err
	}
	if *extraModels != "" {
		for _, path := range strings.Split(*extraModels, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			if _, err := srv.LoadModelFile(path, false); err != nil {
				return fmt.Errorf("-models %s: %w", path, err)
			}
		}
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("kgserve: model %s (fingerprint %.12s…) over %s",
		srv.Model().Name(), srv.Fingerprint(), srv.Dataset().Name)
	return srv.ListenAndServe(ctx)
}
