// Command kgserve exposes a trained KGE model and its knowledge graph as a
// small JSON-over-HTTP service: triple scoring (with calibrated
// probabilities), rank queries, link-prediction style object queries, and
// on-demand fact discovery.
//
//	kgserve -data data/fb10 -model transe.kge -addr :8080
//
//	GET  /healthz
//	GET  /stats
//	POST /score     {"subject":"e1","relation":"r0","object":"e2"}
//	POST /rank      {"subject":"e1","relation":"r0","object":"e2"}
//	POST /query     {"subject":"e1","relation":"r0","k":10}
//	POST /discover  {"strategy":"cluster_triangles","top_n":50,
//	                 "max_candidates":100,"relations":["r0"],"limit":25}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
)

func main() {
	fs := flag.NewFlagSet("kgserve", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory (required)")
	modelPath := fs.String("model", "", "model checkpoint (required)")
	addr := fs.String("addr", ":8080", "listen address")
	fs.Parse(os.Args[1:])
	if *dataDir == "" || *modelPath == "" {
		fmt.Fprintln(os.Stderr, "kgserve: -data and -model are required")
		os.Exit(1)
	}
	srv, err := newServer(*dataDir, *modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kgserve:", err)
		os.Exit(1)
	}
	log.Printf("kgserve: model %s over %s on %s", srv.model.Name(), srv.ds.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server bundles the loaded artifacts and their derived helpers.
type server struct {
	ds         *kg.Dataset
	model      kge.Trainable
	ranker     *eval.Ranker
	calibrator *eval.PlattCalibrator // nil when no validation split exists
}

func newServer(dataDir, modelPath string) (*server, error) {
	ds, err := kg.LoadDataset(dataDir, dataDir)
	if err != nil {
		return nil, err
	}
	m, err := kge.LoadFile(modelPath)
	if err != nil {
		return nil, err
	}
	if m.NumEntities() < ds.Train.Entities.Len() {
		return nil, fmt.Errorf("model covers %d entities, dataset has %d", m.NumEntities(), ds.Train.Entities.Len())
	}
	s := &server{ds: ds, model: m, ranker: eval.NewRanker(m, ds.All())}
	if ds.Valid.Len() > 0 {
		cal, err := eval.FitPlatt(m, ds.Valid, ds.All(), eval.CalibrationOptions{Seed: 1})
		if err == nil {
			s.calibrator = cal
		}
	}
	return s, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /score", s.handleScore)
	mux.HandleFunc("POST /rank", s.handleRank)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /discover", s.handleDiscover)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := s.ds.Metadata()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":    m.Name,
		"model":      s.model.Name(),
		"dim":        s.model.Dim(),
		"train":      m.Train,
		"validation": m.Validation,
		"test":       m.Test,
		"entities":   m.Entities,
		"relations":  m.Relations,
		"calibrated": s.calibrator != nil,
	})
}

// tripleRequest names a triple by its dictionary labels.
type tripleRequest struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
}

// resolve maps the request names to IDs, reporting which name is unknown.
func (s *server) resolve(req tripleRequest) (kg.Triple, error) {
	sid, ok := s.ds.Train.Entities.Lookup(req.Subject)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown subject %q", req.Subject)
	}
	rid, ok := s.ds.Train.Relations.Lookup(req.Relation)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown relation %q", req.Relation)
	}
	oid, ok := s.ds.Train.Entities.Lookup(req.Object)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown object %q", req.Object)
	}
	return kg.Triple{S: kg.EntityID(sid), R: kg.RelationID(rid), O: kg.EntityID(oid)}, nil
}

func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req tripleRequest
	if !decode(w, r, &req) {
		return
	}
	t, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	score := s.model.Score(t)
	resp := map[string]any{"score": score, "known": s.ds.All().Contains(t)}
	if s.calibrator != nil {
		resp["probability"] = s.calibrator.Prob(score)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req tripleRequest
	if !decode(w, r, &req) {
		return
	}
	t, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rank": s.ranker.RankObject(t)})
}

type queryRequest struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	K        int    `json:"k"`
}

type queryAnswer struct {
	Object string  `json:"object"`
	Score  float32 `json:"score"`
	Known  bool    `json:"known"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	sid, ok := s.ds.Train.Entities.Lookup(req.Subject)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown subject %q", req.Subject)
		return
	}
	rid, ok := s.ds.Train.Relations.Lookup(req.Relation)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown relation %q", req.Relation)
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k > s.model.NumEntities() {
		k = s.model.NumEntities()
	}
	scores := s.model.ScoreAllObjects(kg.EntityID(sid), kg.RelationID(rid), make([]float32, s.model.NumEntities()))
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	all := s.ds.All()
	answers := make([]queryAnswer, 0, k)
	for _, o := range order[:k] {
		t := kg.Triple{S: kg.EntityID(sid), R: kg.RelationID(rid), O: kg.EntityID(o)}
		answers = append(answers, queryAnswer{
			Object: s.ds.Train.Entities.Name(int32(o)),
			Score:  scores[o],
			Known:  all.Contains(t),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"answers": answers})
}

type discoverRequest struct {
	Strategy      string   `json:"strategy"`
	TopN          int      `json:"top_n"`
	MaxCandidates int      `json:"max_candidates"`
	Relations     []string `json:"relations"`
	Limit         int      `json:"limit"`
	Seed          int64    `json:"seed"`
}

type discoveredFact struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
	Rank     int    `json:"rank"`
}

func (s *server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Strategy == "" {
		req.Strategy = "entity_frequency"
	}
	strategy, err := core.ExtendedStrategyByName(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var relations []kg.RelationID
	for _, name := range req.Relations {
		rid, ok := s.ds.Train.Relations.Lookup(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown relation %q", name)
			return
		}
		relations = append(relations, kg.RelationID(rid))
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Minute)
	defer cancel()
	res, err := core.DiscoverFacts(ctx, s.model, s.ds.Train, strategy, core.Options{
		TopN:          req.TopN,
		MaxCandidates: req.MaxCandidates,
		Relations:     relations,
		Seed:          req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "discovery failed: %v", err)
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > len(res.Facts) {
		limit = len(res.Facts)
	}
	facts := make([]discoveredFact, 0, limit)
	for _, f := range res.Facts[:limit] {
		facts = append(facts, discoveredFact{
			Subject:  s.ds.Train.Entities.Name(int32(f.Triple.S)),
			Relation: s.ds.Train.Relations.Name(int32(f.Triple.R)),
			Object:   s.ds.Train.Entities.Name(int32(f.Triple.O)),
			Rank:     f.Rank,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"facts":      facts,
		"total":      len(res.Facts),
		"mrr":        res.MRR(),
		"runtime_ms": res.Stats.Total.Milliseconds(),
	})
}
