// Command kgmutate applies batched graph mutations and re-runs discovery
// incrementally: only the relations the batch actually dirtied (under the
// chosen strategy's sensitivity) are re-swept, and their fresh records are
// spliced with the baseline checkpoint's untouched ones. The output is
// byte-identical to a from-scratch kgdiscover run on the mutated graph.
//
//	kgdiscover -data data/fb10 -model transe.kge -checkpoint sweep.wal -out before.tsv
//	kgmutate   -data data/fb10 -model transe.kge -baseline sweep.wal \
//	           -batch batch.json -out after.tsv -sweep-out sweep2.wal
//
// The batch file holds one JSON mutation batch, or an array of them:
//
//	{"seq": 1, "source": "ingest", "ops":
//	  [{"op": "add", "s": "e12", "r": "works_for", "o": "e7"},
//	   {"op": "delete", "s": "e3", "r": "works_for", "o": "e9"}]}
//
// The baseline WAL's fingerprint and options hash are verified against the
// model and the pre-mutation graph, so stale or mismatched checkpoints are
// refused instead of spliced. With -log the batches are also appended to a
// durable mutation log (replaying any batches already in it first); with
// -dump-data the mutated dataset is written out in LibKGE layout, preserving
// the entity-row alignment of the trained embeddings; with -sweep-out a
// complete post-mutation checkpoint is written for the next kgmutate round.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/mutate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgmutate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgmutate", flag.ContinueOnError)
	var (
		dataDir   = fs.String("data", "", "dataset directory (required)")
		modelPath = fs.String("model", "", "model checkpoint (required)")
		baseline  = fs.String("baseline", "", "pre-mutation discovery WAL written by kgdiscover -checkpoint (required)")
		batchPath = fs.String("batch", "", "JSON file with one mutation batch or an array of batches (required)")
		logPath   = fs.String("log", "", "durable mutation log: existing batches replay first, new ones append")
		stratName = fs.String("strategy", "entity_frequency",
			fmt.Sprintf("sampling strategy: %v", core.AllStrategyNames()))
		topN     = fs.Int("top_n", 500, "max rank for a candidate to count as a fact")
		maxCand  = fs.Int("max_candidates", 500, "max candidates generated per relation")
		seed     = fs.Int64("seed", 1, "sampling seed")
		limit    = fs.Int("limit", 50, "print at most this many facts (0 = all)")
		filtered = fs.Bool("rank_filtered", false, "use the filtered ranking protocol")
		cacheW   = fs.Bool("cache_weights", false, "memoize strategy statistics across relations")
		outTSV   = fs.String("out", "", "write all post-mutation facts as TSV to this path (atomic)")
		dumpData = fs.String("dump-data", "", "write the mutated dataset to this directory in LibKGE layout")
		sweepOut = fs.String("sweep-out", "", "write a complete post-mutation checkpoint WAL to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *modelPath == "" || *baseline == "" || *batchPath == "" {
		return fmt.Errorf("-data, -model, -baseline, and -batch are required")
	}

	ds, err := kg.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	m, mapped, _, err := kge.LoadAuto(*modelPath)
	if err != nil {
		return err
	}
	if mapped != nil {
		defer mapped.Close()
	}
	strategy, err := core.ExtendedStrategyByName(*stratName)
	if err != nil {
		return err
	}
	opts := jobs.NormalizeOptions(core.Options{
		TopN:          *topN,
		MaxCandidates: *maxCand,
		Seed:          *seed,
		RankFiltered:  *filtered,
		CacheWeights:  *cacheW,
	})

	batches, err := readBatches(*batchPath)
	if err != nil {
		return err
	}

	// Replay the mutation log (if any) before checking the baseline: the
	// pre-mutation state this run splices against is dataset + logged batches.
	st := mutate.NewState(ds.Train, nil, nil)
	var mlog *mutate.Log
	if *logPath != "" {
		var logged []mutate.Batch
		mlog, logged, err = mutate.OpenLog(*logPath, ds.Name)
		if err != nil {
			return err
		}
		defer mlog.Close()
		if err := st.Replay(logged); err != nil {
			return fmt.Errorf("replaying %s: %w", *logPath, err)
		}
		if len(logged) > 0 {
			fmt.Printf("log: replayed %d batches from %s (seq now %d)\n", len(logged), *logPath, st.Seq())
		}
		st.AttachLog(mlog)
	}

	// Verify the baseline checkpoint against the model and the pre-mutation
	// graph; a complete, matching WAL is the splice source.
	data, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	hdr, prior, _ := jobs.Decode(data)
	if hdr == nil {
		return fmt.Errorf("%s is not a discovery checkpoint (no valid header)", *baseline)
	}
	if fp := kge.Fingerprint(m); hdr.Fingerprint != fp {
		return fmt.Errorf("baseline %s was written by model %.12s…, -model is %.12s…", *baseline, hdr.Fingerprint, fp)
	}
	relations := ds.Train.RelationIDs()
	if oh := jobs.OptionsHash(strategy.Name(), ds.Train, opts, relations); hdr.OptionsHash != oh {
		return fmt.Errorf("baseline %s does not match these options and this pre-mutation graph (options hash %.12s… vs %.12s…) — re-run kgdiscover -checkpoint, or pass the same strategy/seed/thresholds it used", *baseline, hdr.OptionsHash, oh)
	}
	if len(prior) != len(relations) {
		return fmt.Errorf("baseline %s covers %d of %d relations; finish the sweep (kgdiscover -resume) before mutating", *baseline, len(prior), len(relations))
	}

	// Apply the batches; each must extend the sequence.
	applied := make([]mutate.Applied, 0, len(batches))
	adds, dels := 0, 0
	for _, b := range batches {
		ap, err := st.Apply(b)
		if err != nil {
			return fmt.Errorf("batch seq %d: %w", b.Seq, err)
		}
		applied = append(applied, ap)
		adds += ap.Added
		dels += ap.Deleted
	}
	dirty := st.DirtyRelations(*stratName, applied...)
	fmt.Printf("mutate: %d batches (%d adds, %d deletes), %d/%d relations dirty under %s\n",
		len(batches), adds, dels, len(dirty), len(ds.Train.RelationIDs()), *stratName)

	start := time.Now()
	res, recs, err := mutate.IncrementalDiscover(context.Background(), jobs.Spec{
		Model:    m,
		Graph:    ds.Train,
		Strategy: strategy,
		Options:  opts,
	}, prior, dirty)
	if err != nil {
		return err
	}
	fmt.Printf("incremental: reswept %d relations in %s, spliced %d from baseline\n",
		len(dirty), time.Since(start).Round(time.Millisecond), len(recs)-len(dirty))
	fmt.Printf("strategy=%s model=%s facts=%d MRR=%.4f\n",
		strategy.Name(), m.Name(), len(res.Facts), res.MRR())

	n := len(res.Facts)
	if *limit > 0 && *limit < n {
		n = *limit
	}
	for _, f := range res.Facts[:n] {
		fmt.Printf("rank %4d  %s\n", f.Rank, ds.Train.FormatTriple(f.Triple))
	}
	if n < len(res.Facts) {
		fmt.Printf("... and %d more\n", len(res.Facts)-n)
	}

	if *outTSV != "" {
		out := kg.NewGraphWithDicts(ds.Train.Entities, ds.Train.Relations)
		for _, f := range res.Facts {
			out.Add(f.Triple)
		}
		if err := fsio.WriteAtomic(*outTSV, func(f *os.File) error {
			return kg.WriteTSV(out, f)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %d facts to %s\n", len(res.Facts), *outTSV)
	}
	if *dumpData != "" {
		if err := kg.SaveLibKGEDataset(ds, *dumpData); err != nil {
			return err
		}
		fmt.Printf("wrote mutated dataset (%d train triples) to %s\n", ds.Train.Len(), *dumpData)
	}
	if *sweepOut != "" {
		// A complete post-mutation checkpoint: header hashed against the
		// mutated graph, every relation's record present, so the next
		// kgmutate round can use it as its -baseline.
		j, err := jobs.Create(*sweepOut, jobs.Header{
			Fingerprint:    kge.Fingerprint(m),
			OptionsHash:    jobs.OptionsHash(strategy.Name(), ds.Train, opts, ds.Train.RelationIDs()),
			Strategy:       strategy.Name(),
			TotalRelations: len(recs),
		})
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if err := j.Append(rec); err != nil {
				j.Close()
				return err
			}
		}
		if err := j.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote post-mutation checkpoint (%d relations) to %s\n", len(recs), *sweepOut)
	}
	return nil
}

// readBatches decodes the batch file as either an array of batches or a
// single batch object.
func readBatches(path string) ([]mutate.Batch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var many []mutate.Batch
	if err := json.Unmarshal(data, &many); err == nil {
		return many, nil
	}
	var one mutate.Batch
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("%s: not a mutation batch or batch array: %w", path, err)
	}
	return []mutate.Batch{one}, nil
}
