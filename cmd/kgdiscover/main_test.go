package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func fixture(t *testing.T) (dataDir, modelPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := kg.LoadDataset("tiny", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("transe", kge.Config{
		NumEntities:  reloaded.Train.Entities.Len(),
		NumRelations: reloaded.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), m, reloaded, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	return dataDir, modelPath
}

func TestRunDiscovers(t *testing.T) {
	dataDir, modelPath := fixture(t)
	outTSV := filepath.Join(t.TempDir(), "facts.tsv")
	err := run([]string{"-data", dataDir, "-model", modelPath,
		"-strategy", "graph_degree", "-top_n", "20", "-max_candidates", "30",
		"-limit", "3", "-out", outTSV})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fi, err := os.Stat(outTSV); err != nil || fi.Size() == 0 {
		t.Errorf("facts TSV missing or empty: %v", err)
	}
}

func TestRunFilteredAndCached(t *testing.T) {
	dataDir, modelPath := fixture(t)
	err := run([]string{"-data", dataDir, "-model", modelPath,
		"-strategy", "cluster_triangles", "-top_n", "20", "-max_candidates", "30",
		"-rank_filtered", "-cache_weights", "-limit", "0"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dataDir, modelPath := fixture(t)
	if err := run([]string{"-data", dataDir}); err == nil {
		t.Error("accepted missing -model")
	}
	if err := run([]string{"-data", dataDir, "-model", modelPath, "-strategy", "bogus"}); err == nil {
		t.Error("accepted unknown strategy")
	}
}
