package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

func fixture(t *testing.T) (dataDir, modelPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := kg.LoadDataset("tiny", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("transe", kge.Config{
		NumEntities:  reloaded.Train.Entities.Len(),
		NumRelations: reloaded.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(context.Background(), m, reloaded, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	return dataDir, modelPath
}

func TestRunDiscovers(t *testing.T) {
	dataDir, modelPath := fixture(t)
	outTSV := filepath.Join(t.TempDir(), "facts.tsv")
	err := run([]string{"-data", dataDir, "-model", modelPath,
		"-strategy", "graph_degree", "-top_n", "20", "-max_candidates", "30",
		"-limit", "3", "-out", outTSV})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fi, err := os.Stat(outTSV); err != nil || fi.Size() == 0 {
		t.Errorf("facts TSV missing or empty: %v", err)
	}
}

func TestRunFilteredAndCached(t *testing.T) {
	dataDir, modelPath := fixture(t)
	err := run([]string{"-data", dataDir, "-model", modelPath,
		"-strategy", "cluster_triangles", "-top_n", "20", "-max_candidates", "30",
		"-rank_filtered", "-cache_weights", "-limit", "0"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dataDir, modelPath := fixture(t)
	if err := run([]string{"-data", dataDir}); err == nil {
		t.Error("accepted missing -model")
	}
	if err := run([]string{"-data", dataDir, "-model", modelPath, "-strategy", "bogus"}); err == nil {
		t.Error("accepted unknown strategy")
	}
	if err := run([]string{"-data", dataDir, "-model", modelPath, "-resume"}); err == nil {
		t.Error("accepted -resume without -checkpoint")
	}
}

// TestRunCheckpointResume exercises the WAL path end to end: a checkpointed
// run matches a plain run byte for byte, an existing journal is refused
// without -resume, and resuming — over both a complete journal and one with
// its tail chopped off mid-record (a crash stand-in) — reproduces the exact
// same TSV.
func TestRunCheckpointResume(t *testing.T) {
	dataDir, modelPath := fixture(t)
	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	argv := func(out string, extra ...string) []string {
		return append([]string{"-data", dataDir, "-model", modelPath,
			"-strategy", "graph_degree", "-top_n", "20", "-max_candidates", "30",
			"-limit", "0", "-out", out}, extra...)
	}
	tsv := func(name string) string { return filepath.Join(dir, name+".tsv") }
	read := func(path string) string {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if err := run(argv(tsv("plain"))); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := run(argv(tsv("ckpt"), "-checkpoint", wal)); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if read(tsv("ckpt")) != read(tsv("plain")) {
		t.Fatal("checkpointed output differs from plain run")
	}

	// The journal exists now; reusing it without -resume must be refused so
	// a typo'd path cannot graft one run onto another.
	if err := run(argv(tsv("clobber"), "-checkpoint", wal)); err == nil {
		t.Fatal("accepted an existing checkpoint without -resume")
	}

	// Resume over the complete journal: every relation is recovered, output
	// identical.
	if err := run(argv(tsv("resumed"), "-checkpoint", wal, "-resume")); err != nil {
		t.Fatalf("resume over complete journal: %v", err)
	}
	if read(tsv("resumed")) != read(tsv("plain")) {
		t.Fatal("resumed output differs from plain run")
	}

	// Chop the journal's tail mid-record — what a SIGKILL during an fsync'd
	// append leaves behind — and resume: the damaged tail is discarded, the
	// missing relations re-swept, and the output still byte-identical.
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, b[:len(b)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(argv(tsv("crashed"), "-checkpoint", wal, "-resume")); err != nil {
		t.Fatalf("resume over truncated journal: %v", err)
	}
	if read(tsv("crashed")) != read(tsv("plain")) {
		t.Fatal("post-crash resume output differs from plain run")
	}

	// A checkpoint written by different options must be rejected.
	if err := run(argv(tsv("foreign"), "-checkpoint", wal, "-resume", "-seed", "99")); err == nil {
		t.Fatal("accepted a checkpoint from different options")
	}
}

// TestRunFleet routes a sweep through an in-process coordinator and worker
// via -fleet and requires the TSV to be byte-identical to the local run.
func TestRunFleet(t *testing.T) {
	dataDir, modelPath := fixture(t)
	dir := t.TempDir()
	argv := func(out string, extra ...string) []string {
		return append([]string{"-data", dataDir, "-model", modelPath,
			"-strategy", "graph_degree", "-top_n", "20", "-max_candidates", "30",
			"-limit", "2", "-out", out}, extra...)
	}
	localTSV := filepath.Join(dir, "local.tsv")
	fleetTSV := filepath.Join(dir, "fleet.tsv")

	if err := run(argv(localTSV)); err != nil {
		t.Fatalf("local run: %v", err)
	}

	// Prune indexes are per-host sidecars; combining them with -fleet must
	// be refused before anything is submitted.
	if err := run(argv(fleetTSV, "-fleet", "http://127.0.0.1:1", "-prune", "exact")); err == nil {
		t.Error("accepted -prune with -fleet")
	}
	// An unreachable coordinator must surface as an error, not a hang.
	if err := run(argv(fleetTSV, "-fleet", "http://127.0.0.1:1")); err == nil {
		t.Error("accepted an unreachable coordinator")
	}

	coord := fleet.New(fleet.Config{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	w := fleet.NewWorker(fleet.WorkerConfig{Coordinator: srv.URL, Name: "w0"})
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()
	defer func() { cancel(); <-workerDone }()

	if err := run(argv(fleetTSV, "-fleet", srv.URL)); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	local, err := os.ReadFile(localTSV)
	if err != nil {
		t.Fatal(err)
	}
	viaFleet, err := os.ReadFile(fleetTSV)
	if err != nil {
		t.Fatal(err)
	}
	if string(local) != string(viaFleet) {
		t.Errorf("fleet TSV differs from local run:\nlocal:\n%s\nfleet:\n%s", local, viaFleet)
	}
}
