// Command kgdiscover runs the fact discovery algorithm (Algorithm 1 of the
// paper) with a trained checkpoint and a chosen sampling strategy, printing
// the discovered facts with their ranks.
//
//	kgdiscover -data data/fb10 -model transe.kge -strategy cluster_triangles \
//	           -top_n 500 -max_candidates 500 -limit 25
//
// With -checkpoint the sweep journals every completed relation to a WAL, so
// a killed process loses at most the relation it was mid-sweep on; rerunning
// with -resume continues from the last good record and produces output
// byte-identical to an uninterrupted run (per-relation RNG streams make the
// decomposition exact).
//
//	kgdiscover -data data/fb10 -model transe.kge -checkpoint sweep.wal -out facts.tsv
//	# ... SIGKILL ...
//	kgdiscover -data data/fb10 -model transe.kge -checkpoint sweep.wal -resume -out facts.tsv
//
// With -fleet the sweep is routed to a kgfleet coordinator (started with
// `kgfleet coord -serve`) and executed by its workers; the output — ranks,
// facts, TSV — is byte-identical to running the same sweep locally.
//
//	kgdiscover -data data/fb10 -model transe.kge -fleet http://127.0.0.1:7070 -out facts.tsv
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prof"
	"repro/internal/prune"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgdiscover:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgdiscover", flag.ContinueOnError)
	var (
		dataDir   = fs.String("data", "", "dataset directory (required)")
		modelPath = fs.String("model", "", "model checkpoint (required)")
		stratName = fs.String("strategy", "entity_frequency",
			fmt.Sprintf("sampling strategy: %v", core.StrategyNames()))
		topN       = fs.Int("top_n", 500, "max rank for a candidate to count as a fact")
		maxCand    = fs.Int("max_candidates", 500, "max candidates generated per relation")
		seed       = fs.Int64("seed", 1, "sampling seed")
		limit      = fs.Int("limit", 50, "print at most this many facts (0 = all)")
		filtered   = fs.Bool("rank_filtered", false, "use the filtered ranking protocol")
		cacheW     = fs.Bool("cache_weights", false, "memoize strategy statistics across relations (departs from Algorithm 1)")
		outTSV     = fs.String("out", "", "also write all facts as TSV to this path")
		checkpoint = fs.String("checkpoint", "", "journal each completed relation to this WAL path (crash-resumable)")
		resume     = fs.Bool("resume", false, "continue from an existing -checkpoint journal")
		fleetAddr  = fs.String("fleet", "", "route the sweep to this kgfleet coordinator URL instead of sweeping locally (output stays byte-identical)")
		batch      = fs.Bool("batch", true, "rank with relation-blocked batched sweeps (output is byte-identical either way)")
		pruneMode  = fs.String("prune", "off", "prescreen ranking sweeps with an IVF/int8 index: off, exact (byte-identical output), or approx")
		pruneCells = fs.Int("prune_cells", 0, "prune index cell count (0 = ceil(sqrt(|E|)))")
		pruneProbe = fs.Int("prune_probe", 0, "cells visited per query in -prune=approx (0 = ceil(cells/8))")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = fs.String("memprofile", "", "write a heap profile to this path at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *modelPath == "" {
		return fmt.Errorf("-data and -model are required")
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *fleetAddr != "" {
		if *pruneMode != "" && *pruneMode != core.PruneOff {
			return fmt.Errorf("-prune is a per-host sidecar optimization and cannot be combined with -fleet")
		}
		return runFleet(fleetSweep{
			coord:      *fleetAddr,
			dataDir:    *dataDir,
			modelPath:  *modelPath,
			strategy:   *stratName,
			checkpoint: *checkpoint,
			resume:     *resume,
			outTSV:     *outTSV,
			limit:      *limit,
			options: fleet.SweepOptions{
				TopN:          *topN,
				MaxCandidates: *maxCand,
				Seed:          *seed,
				RankFiltered:  *filtered,
				CacheWeights:  *cacheW,
			},
		})
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "kgdiscover:", perr)
		}
	}()

	ds, err := kg.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	m, mapped, _, err := kge.LoadAuto(*modelPath)
	if err != nil {
		return err
	}
	if mapped != nil {
		defer mapped.Close()
	}
	strategy, err := core.StrategyByName(*stratName)
	if err != nil {
		return err
	}

	var pruneIndex *prune.Index
	switch *pruneMode {
	case "", core.PruneOff:
	case core.PruneExact, core.PruneApprox:
		sw, ok := m.(kge.ObjectSweeper)
		if !ok {
			return fmt.Errorf("-prune=%s requires a sweepable model, %s is not", *pruneMode, m.Name())
		}
		// The sidecar lives next to the checkpoint; a fingerprint or shape
		// mismatch (retrained weights, different -prune_cells) rebuilds it.
		ix, loaded, err := prune.LoadOrBuild(kge.SidecarPath(*modelPath), sw, kge.Fingerprint(m),
			prune.Params{Cells: *pruneCells})
		if err != nil {
			return fmt.Errorf("building prune index: %w", err)
		}
		verb := "built"
		if loaded {
			verb = "loaded"
		}
		fmt.Printf("prune: %s index (%d cells over %d entities, sidecar %s)\n",
			verb, ix.Cells(), ix.NumEntities(), kge.SidecarPath(*modelPath))
		pruneIndex = ix
	default:
		return fmt.Errorf("unknown -prune mode %q (want off, exact, or approx)", *pruneMode)
	}

	spec := jobs.Spec{
		Model:    m,
		Graph:    ds.Train,
		Strategy: strategy,
		Options: core.Options{
			TopN:                  *topN,
			MaxCandidates:         *maxCand,
			Seed:                  *seed,
			RankFiltered:          *filtered,
			CacheWeights:          *cacheW,
			DisableBatchedRanking: !*batch,
			PruneMode:             *pruneMode,
			PruneCells:            *pruneCells,
			PruneProbe:            *pruneProbe,
			PruneIndex:            pruneIndex,
		},
		Journal: *checkpoint,
		Resume:  *resume,
		OnProgress: func(p jobs.Progress) {
			fmt.Printf("relation %d/%d %s  facts=%d sweep=%s\n",
				p.Done, p.Total, ds.Train.Relations.Name(int32(p.Relation)),
				p.Facts, p.SweepTime.Round(time.Millisecond))
		},
	}
	if *checkpoint != "" {
		// The fingerprint pins the journal to these exact weights; resuming a
		// checkpoint written by a different model or options is refused.
		spec.Fingerprint = kge.Fingerprint(m)
	}
	res, info, err := jobs.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	if *checkpoint != "" {
		fmt.Printf("checkpoint: resumed %d of %d relations (journal %s)\n",
			info.Resumed, info.TotalRelations, *checkpoint)
	}

	st := res.Stats
	fmt.Printf("strategy=%s model=%s facts=%d generated=%d MRR=%.4f\n",
		strategy.Name(), m.Name(), len(res.Facts), st.Generated, res.MRR())
	fmt.Printf("runtime=%s (weights=%s generate=%s rank=%s)  efficiency=%.0f facts/hour\n",
		st.Total.Round(time.Millisecond), st.WeightTime.Round(time.Millisecond),
		st.GenerateTime.Round(time.Millisecond), st.RankTime.Round(time.Millisecond),
		st.FactsPerHour(len(res.Facts)))
	fmt.Printf("ranking: sweeps=%d candidates=%d sweeps-saved=%d (grouped by subject-relation pair)\n",
		st.ScoreSweeps, st.GroupedCandidates, st.GroupedCandidates-st.ScoreSweeps)
	if st.BatchedSweeps > 0 {
		fmt.Printf("batching: blocks=%d rows=%d (%.1f groups per entity-matrix pass)\n",
			st.BatchedSweeps, st.BatchRows, float64(st.BatchRows)/float64(st.BatchedSweeps))
	}
	if pruneIndex != nil {
		fmt.Printf("pruning: mode=%s cells-pruned=%d prescreen-rows=%d\n",
			*pruneMode, st.CellsPruned, st.PrescreenRows)
	}

	n := len(res.Facts)
	if *limit > 0 && *limit < n {
		n = *limit
	}
	for _, f := range res.Facts[:n] {
		fmt.Printf("rank %4d  %s\n", f.Rank, ds.Train.FormatTriple(f.Triple))
	}
	if n < len(res.Facts) {
		fmt.Printf("... and %d more\n", len(res.Facts)-n)
	}

	if *outTSV != "" {
		out := kg.NewGraphWithDicts(ds.Train.Entities, ds.Train.Relations)
		for _, f := range res.Facts {
			out.Add(f.Triple)
		}
		fobj, err := os.Create(*outTSV)
		if err != nil {
			return err
		}
		if err := kg.WriteTSV(out, fobj); err != nil {
			fobj.Close()
			return err
		}
		if err := fobj.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d facts to %s\n", len(res.Facts), *outTSV)
	}
	return nil
}

// fleetSweep is everything needed to route one sweep through a coordinator.
type fleetSweep struct {
	coord      string
	dataDir    string
	modelPath  string
	strategy   string
	options    fleet.SweepOptions
	checkpoint string
	resume     bool
	outTSV     string
	limit      int
}

// runFleet submits the sweep to a kgfleet coordinator and renders the
// response exactly like a local run: resumed-checkpoint line, summary, top
// facts, TSV. The coordinator and its workers resolve -data and -model on
// their own filesystems and verify them against the pinned fingerprint and
// options hash, so a divergent copy fails loudly instead of sweeping.
func runFleet(fl fleetSweep) error {
	ds, err := kg.LoadDataset(fl.dataDir, fl.dataDir)
	if err != nil {
		return err
	}
	base := fl.coord
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	body, err := json.Marshal(fleet.SweepRequest{
		Data:       fl.dataDir,
		Model:      fl.modelPath,
		Strategy:   fl.strategy,
		Options:    fl.options,
		Checkpoint: fl.checkpoint,
		Resume:     fl.resume,
	})
	if err != nil {
		return err
	}
	// No client timeout: the request holds until the fleet finishes the
	// sweep, which for large graphs is minutes.
	httpResp, err := http.Post(strings.TrimSuffix(base, "/")+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet coordinator %s: %w", base, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("fleet coordinator %s: %s", base, e.Error)
		}
		return fmt.Errorf("fleet coordinator %s: HTTP %d: %s", base, httpResp.StatusCode, raw)
	}
	var resp fleet.SweepResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("fleet coordinator %s: decoding response: %w", base, err)
	}

	if fl.checkpoint != "" {
		fmt.Printf("checkpoint: resumed %d of %d relations (journal %s on coordinator)\n",
			resp.Fleet.Resumed, resp.Fleet.TotalRelations, fl.checkpoint)
	}
	fmt.Printf("strategy=%s fingerprint=%.12s facts=%d generated=%d\n",
		fl.strategy, resp.Fingerprint, len(resp.Facts), resp.Generated)
	fmt.Printf("fleet: coordinator=%s units=%d workers=%d reassigned=%d duplicates=%d retried=%d resumed=%d\n",
		base, resp.Fleet.Units, resp.Fleet.Workers, resp.Fleet.Reassigned,
		resp.Fleet.DuplicateRecords, resp.Fleet.RetriedUnits, resp.Fleet.Resumed)
	fmt.Printf("runtime=%s (weights=%s generate=%s rank=%s sweeps=%d)\n",
		time.Duration(resp.RuntimeMS)*time.Millisecond, time.Duration(resp.WeightMS)*time.Millisecond,
		time.Duration(resp.GenerateMS)*time.Millisecond, time.Duration(resp.RankMS)*time.Millisecond,
		resp.ScoreSweeps)

	n := len(resp.Facts)
	if fl.limit > 0 && fl.limit < n {
		n = fl.limit
	}
	for _, f := range resp.Facts[:n] {
		fmt.Printf("rank %4d  %s\n", f.Rank, ds.Train.FormatTriple(kg.Triple{S: f.S, R: f.R, O: f.O}))
	}
	if n < len(resp.Facts) {
		fmt.Printf("... and %d more\n", len(resp.Facts)-n)
	}

	if fl.outTSV != "" {
		fobj, err := os.Create(fl.outTSV)
		if err != nil {
			return err
		}
		if err := fleet.WriteFactsTSV(ds.Train.Entities, ds.Train.Relations, resp.Facts, fobj); err != nil {
			fobj.Close()
			return err
		}
		if err := fobj.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d facts to %s\n", len(resp.Facts), fl.outTSV)
	}
	return nil
}
