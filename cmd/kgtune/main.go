// Command kgtune grid-searches training hyperparameters for one model on a
// dataset — the "Model Training" stage of the paper's workflow (§3.2),
// mirroring LibKGE's grid-search facility — and writes the best checkpoint.
//
//	kgtune -data data/fb10 -model distmult \
//	       -dims 32,64 -lrs 0.01,0.05 -negs 2,4 -out best.kge
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/kg"
	"repro/internal/kge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgtune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kgtune", flag.ContinueOnError)
	var (
		dataDir = fs.String("data", "", "dataset directory (required)")
		model   = fs.String("model", "distmult", "model to tune")
		epochs  = fs.Int("epochs", 20, "epochs per grid point")
		dims    = fs.String("dims", "32", "comma-separated embedding dimensions")
		lrs     = fs.String("lrs", "0.05", "comma-separated learning rates")
		negs    = fs.String("negs", "4", "comma-separated negative-sample counts")
		losses  = fs.String("losses", "", "comma-separated losses (margin, logistic); empty = model default")
		l2s     = fs.String("l2s", "0", "comma-separated L2 coefficients")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "", "write the best checkpoint here (optional)")
		quiet   = fs.Bool("quiet", false, "suppress per-point progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}

	ds, err := kg.LoadDataset(*dataDir, *dataDir)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s\n", ds.Metadata())

	space := harness.TuneSpace{}
	if space.Dims, err = parseInts(*dims); err != nil {
		return fmt.Errorf("-dims: %w", err)
	}
	if space.LearningRates, err = parseFloats(*lrs); err != nil {
		return fmt.Errorf("-lrs: %w", err)
	}
	if space.NegSamples, err = parseInts(*negs); err != nil {
		return fmt.Errorf("-negs: %w", err)
	}
	if *losses != "" {
		space.Losses = strings.Split(*losses, ",")
	}
	if space.L2s, err = parseFloats(*l2s); err != nil {
		return fmt.Errorf("-l2s: %w", err)
	}

	var log *os.File
	if !*quiet {
		log = os.Stderr
	}
	results, best, err := harness.GridSearch(context.Background(), *model, ds, space, *epochs, *seed, log)
	if err != nil {
		return err
	}

	sort.Slice(results, func(i, j int) bool { return results[i].ValidMRR > results[j].ValidMRR })
	fmt.Printf("\n%d grid points, best first:\n", len(results))
	for i, r := range results {
		if i == 10 {
			fmt.Printf("... and %d more\n", len(results)-10)
			break
		}
		fmt.Printf("  %-50s valid MRR %.4f\n", r.Describe(), r.ValidMRR)
	}

	if *out != "" && best != nil {
		if err := kge.SaveFile(best, *out); err != nil {
			return err
		}
		fmt.Printf("wrote best checkpoint to %s\n", *out)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
