package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kg"
	"repro/internal/synth"
)

func writeTinyDataset(t *testing.T) string {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunGridSearch(t *testing.T) {
	dir := writeTinyDataset(t)
	out := filepath.Join(t.TempDir(), "best.kge")
	err := run([]string{"-data", dir, "-model", "distmult",
		"-dims", "8", "-lrs", "0.05,0.1", "-epochs", "3", "-out", out, "-quiet"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("best checkpoint missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("accepted missing -data")
	}
	dir := writeTinyDataset(t)
	if err := run([]string{"-data", dir, "-dims", "abc", "-quiet"}); err == nil {
		t.Error("accepted malformed -dims")
	}
	if err := run([]string{"-data", dir, "-lrs", "x", "-quiet"}); err == nil {
		t.Error("accepted malformed -lrs")
	}
	if err := run([]string{"-data", dir, "-model", "bogus", "-quiet"}); err == nil {
		t.Error("accepted unknown model")
	}
}
