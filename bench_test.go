package repro

// One benchmark per paper artifact (Table 1, Figures 2-10, the CLUSTERING
// SQUARES exclusion) plus ablation benchmarks for the design choices listed
// in DESIGN.md §5. The per-artifact benchmarks exercise exactly the
// computation that regenerates the artifact, at a reduced scale so `go test
// -bench=.` completes on a laptop; `cmd/repro` runs the full-scale version.

import (
	"context"
	"io"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fft"
	"repro/internal/graphstats"
	"repro/internal/harness"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prune"
	"repro/internal/sample"
	"repro/internal/synth"
	"repro/internal/train"
)

// benchScale shrinks the simulated datasets for benchmarking.
const benchScale = 150

var (
	benchOnce  sync.Once
	benchDS    *kg.Dataset
	benchModel kge.Trainable
)

// benchSetup trains one small TransE model on fb15k237-sim once per `go
// test` process; every artifact benchmark reuses it so the measured loop is
// the artifact computation, not training.
func benchSetup(b *testing.B) (*kg.Dataset, kge.Trainable) {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := synth.Generate(synth.FB15K237Sim(benchScale))
		if err != nil {
			b.Fatalf("generate: %v", err)
		}
		m, err := kge.New("transe", kge.Config{
			NumEntities:  ds.Train.Entities.Len(),
			NumRelations: ds.Train.Relations.Len(),
			Dim:          32,
			Seed:         1,
		})
		if err != nil {
			b.Fatalf("model: %v", err)
		}
		if _, err := train.Run(context.Background(), m, ds, train.Config{
			Epochs: 5, BatchSize: 256, Seed: 1,
		}); err != nil {
			b.Fatalf("train: %v", err)
		}
		benchDS, benchModel = ds, m
	})
	if benchDS == nil {
		b.Fatal("bench setup failed")
	}
	return benchDS, benchModel
}

func benchDiscover(b *testing.B, strategyName string, topN, maxCand int, cacheWeights bool) *core.Result {
	b.Helper()
	ds, m := benchSetup(b)
	strategy, err := core.StrategyByName(strategyName)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.DiscoverFacts(context.Background(), m, ds.Train, strategy, core.Options{
		TopN:          topN,
		MaxCandidates: maxCand,
		Seed:          1,
		CacheWeights:  cacheWeights,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Metadata regenerates Table 1: the four dataset presets and
// their metadata rows.
func BenchmarkTable1Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range synth.AllPresets(400) {
			ds, err := synth.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			_ = ds.Metadata()
		}
	}
}

// BenchmarkFig2Runtime measures one full discovery run per strategy group
// representative — the quantity Figure 2 plots.
func BenchmarkFig2Runtime(b *testing.B) {
	for _, strat := range []string{"uniform_random", "cluster_triangles"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchDiscover(b, strat, 100, 100, false)
			}
		})
	}
}

// BenchmarkFig3ClusteringDist measures the clustering-coefficient
// distribution computation behind Figure 3.
func BenchmarkFig3ClusteringDist(b *testing.B) {
	ds, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graphstats.BuildUndirected(ds.Train)
		coeffs := u.LocalClustering(nil)
		graphstats.Histogram(coeffs, 20)
		_ = graphstats.Mean(coeffs)
	}
}

// BenchmarkFig4MRR measures discovery plus the MRR aggregation of Figure 4.
func BenchmarkFig4MRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchDiscover(b, "entity_frequency", 100, 100, false)
		_ = res.MRR()
	}
}

// BenchmarkFig5NodeSeries measures the per-node triangle and clustering
// series (and their correlation) behind Figure 5.
func BenchmarkFig5NodeSeries(b *testing.B) {
	ds, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graphstats.BuildUndirected(ds.Train)
		tri := u.Triangles()
		coeffs := u.LocalClustering(tri)
		triF := make([]float64, len(tri))
		for j, t := range tri {
			triF[j] = float64(t)
		}
		_ = graphstats.PearsonCorrelation(triF, coeffs)
	}
}

// BenchmarkFig6Efficiency measures discovery plus the facts/hour computation
// of Figure 6.
func BenchmarkFig6Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchDiscover(b, "graph_degree", 100, 100, false)
		_ = res.Stats.FactsPerHour(len(res.Facts))
	}
}

// BenchmarkFig7RuntimeGrid measures discovery at the two extreme
// max_candidates grid values — Figure 7's x-axis (runtime is linear in it).
func BenchmarkFig7RuntimeGrid(b *testing.B) {
	for _, mc := range []int{50, 200} {
		b.Run(benchName("max_cand", mc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchDiscover(b, "cluster_triangles", 100, mc, false)
			}
		})
	}
}

// BenchmarkFig8MRRGrid measures discovery at the two extreme top_n values —
// Figure 8's x-axis (MRR falls as top_n grows; runtime does not).
func BenchmarkFig8MRRGrid(b *testing.B) {
	for _, tn := range []int{25, 200} {
		b.Run(benchName("top_n", tn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := benchDiscover(b, "cluster_triangles", tn, 100, false)
				_ = res.MRR()
			}
		})
	}
}

// BenchmarkFig9EfficiencyTopN regenerates Figure 9's series: efficiency as
// a function of top_n for CLUSTERING TRIANGLES and UNIFORM RANDOM.
func BenchmarkFig9EfficiencyTopN(b *testing.B) {
	for _, strat := range []string{"cluster_triangles", "uniform_random"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, tn := range []int{25, 100} {
					res := benchDiscover(b, strat, tn, 100, false)
					_ = res.Stats.FactsPerHour(len(res.Facts))
				}
			}
		})
	}
}

// BenchmarkFig10EfficiencyMaxCand regenerates Figure 10's series:
// efficiency as a function of max_candidates at fixed top_n.
func BenchmarkFig10EfficiencyMaxCand(b *testing.B) {
	for _, strat := range []string{"cluster_triangles", "uniform_random"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, mc := range []int{50, 150} {
					res := benchDiscover(b, strat, 100, mc, false)
					_ = res.Stats.FactsPerHour(len(res.Facts))
				}
			}
		})
	}
}

// BenchmarkSquaresClusteringCost measures the per-relation weight
// computation of every strategy including CLUSTERING SQUARES — experiment
// X1, the reason the paper excluded the squares strategy.
func BenchmarkSquaresClusteringCost(b *testing.B) {
	ds, _ := benchSetup(b)
	probe := ds.Train.RelationIDs()[0]
	for _, name := range core.StrategyNames() {
		b.Run(name, func(b *testing.B) {
			strategy, err := core.StrategyByName(name)
			if err != nil {
				b.Fatal(err)
			}
			strategy.Bind(ds.Train)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				strategy.Weights(probe)
			}
		})
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationBatchedScoring compares the ScoreAllObjects sweep with a
// per-triple scoring loop for ranking one candidate against all corruptions.
func BenchmarkAblationBatchedScoring(b *testing.B) {
	_, m := benchSetup(b)
	out := make([]float32, m.NumEntities())
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.ScoreAllObjects(1, 0, out)
		}
	})
	b.Run("per-triple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for o := 0; o < m.NumEntities(); o++ {
				out[o] = m.Score(kg.Triple{S: 1, R: 0, O: kg.EntityID(o)})
			}
		}
	})
}

// BenchmarkAblationGroupedRanking compares the discovery ranking stage's
// two schedules on a DistMult mesh grid: one RankObject (a full
// ScoreAllObjects sweep) per candidate, versus one RankObjects sweep per
// (s, r) group. The mesh grid of √max_candidates subjects × objects means
// the grouped schedule runs ~√max_candidates sweeps instead of
// max_candidates — the asymptotic win recorded in EXPERIMENTS.md.
func BenchmarkAblationGroupedRanking(b *testing.B) {
	const nEnt, nRel, dim = 2000, 4, 64
	m, err := kge.New("distmult", kge.Config{
		NumEntities: nEnt, NumRelations: nRel, Dim: dim, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ranker := eval.NewRanker(m, nil)
	for _, maxCand := range []int{100, 500, 2000} {
		k := int(math.Sqrt(float64(maxCand)))
		if k*k < maxCand {
			k++
		}
		candidates := make([]kg.Triple, 0, maxCand)
		for s := 0; s < k && len(candidates) < maxCand; s++ {
			for o := 0; o < k && len(candidates) < maxCand; o++ {
				candidates = append(candidates, kg.Triple{S: kg.EntityID(s), R: 0, O: kg.EntityID(o)})
			}
		}
		groups := make(map[kg.EntityID][]kg.EntityID, k)
		for _, t := range candidates {
			groups[t.S] = append(groups[t.S], t.O)
		}
		b.Run("per-candidate/"+strconv.Itoa(maxCand), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, t := range candidates {
					_ = ranker.RankObject(t)
				}
			}
		})
		b.Run("grouped/"+strconv.Itoa(maxCand), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for s, objects := range groups {
					_ = ranker.RankObjects(s, 0, objects)
				}
			}
			b.ReportMetric(float64(len(candidates)-len(groups)), "sweeps-saved/op")
		})
	}
}

// batchBenchModel builds the paper-scale ranking fixture once per test
// process: an untrained DistMult over 50k entities at d=64 (ranking cost
// does not depend on training, only on shapes).
var (
	batchBenchOnce  sync.Once
	batchBenchModel kge.Trainable
	batchBenchErr   error
)

func batchBench(b *testing.B) kge.Trainable {
	b.Helper()
	batchBenchOnce.Do(func() {
		batchBenchModel, batchBenchErr = kge.New("distmult", kge.Config{
			NumEntities: 50000, NumRelations: 4, Dim: 64, Seed: 1,
		})
	})
	if batchBenchErr != nil {
		b.Fatal(batchBenchErr)
	}
	return batchBenchModel
}

// BenchmarkAblationBatchedRanking is the PR-5 tentpole ablation: the grouped
// scheduler (one RankObjects sweep + one full-vocabulary sort per (s, r)
// group — the pre-batching RankTime baseline) against the relation-blocked
// batched scheduler (one RankObjectsBatch per cache-budget block: a tiled
// matrix–matrix sweep plus a counting rank pass per row). Candidates form
// the same ⌈√max_candidates⌉-subject mesh grid DiscoverFacts generates, at
// the paper's vocabulary scale (|E| = 50000, d = 64). Both schedules return
// identical ranks; the acceptance bar is batched ≥ 2× faster at
// max_candidates = 500.
func BenchmarkAblationBatchedRanking(b *testing.B) {
	m := batchBench(b)
	ranker := eval.NewRanker(m, nil)
	const rel = kg.RelationID(0)
	// Block size matches core's DefaultBatchBudgetBytes schedule:
	// 4 MiB / (4 B × 50000 entities) = 20 groups per block.
	blockRows := core.DefaultBatchBudgetBytes / (4 * 50000)
	for _, maxCand := range []int{100, 500} {
		k := int(math.Sqrt(float64(maxCand)))
		if k*k < maxCand {
			k++
		}
		groups := make([]eval.Group, 0, k)
		total := 0
		for s := 0; s < k && total < maxCand; s++ {
			g := eval.Group{S: kg.EntityID(s)}
			for o := 0; o < k && total < maxCand; o++ {
				g.Objects = append(g.Objects, kg.EntityID(o))
				total++
			}
			groups = append(groups, g)
		}
		b.Run("grouped/"+strconv.Itoa(maxCand), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range groups {
					_ = ranker.RankObjects(g.S, rel, g.Objects)
				}
			}
		})
		b.Run("batched/"+strconv.Itoa(maxCand), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < len(groups); lo += blockRows {
					hi := lo + blockRows
					if hi > len(groups) {
						hi = len(groups)
					}
					_, _ = ranker.RankObjectsBatch(rel, groups[lo:hi])
				}
			}
		})
	}
}

// BenchmarkPrunedRanking is the PR-6 tentpole ablation: the dense
// relation-blocked batch scheduler against the IVF/int8 prescreen path, at
// the paper's vocabulary scale (|E| = 50000) for d = 64 and 128. The entity
// table is overwritten with clustered synthetic vectors — Xavier-random rows
// have no cluster structure for an IVF index to exploit, while real trained
// embeddings famously do: 64 Gaussian centers with σ = 0.03 within-cluster
// noise, assigned in contiguous id ranges (entity ids follow import order,
// and imports are type-blocked, so similar entities share id ranges).
// Candidates form the same mesh grid DiscoverFacts generates at
// max_candidates = 500, with subjects and objects spread across the full id
// range, ranked at the paper's top_n = 500 and at top_n = 100 (the frontier
// size M = top_n is what pruned ranking's cost scales with). The exact
// sub-benchmark returns byte-identical ranks to off (asserted by
// TestDiscoverFactsPrunedEquivalence and the ci.sh gate, not here); approx
// reports its measured precision against the dense keep set — its recall is
// 1.0 by construction, because the capped probe budget can only under-count
// outscoring corruptions, so every dense-kept fact is also kept.
func BenchmarkPrunedRanking(b *testing.B) {
	const (
		nEnt    = 50000
		maxCand = 500
		centers = 64
	)
	for _, dim := range []int{64, 128} {
		m, err := kge.New("distmult", kge.Config{
			NumEntities: nEnt, NumRelations: 4, Dim: dim, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sw := m.(kge.ObjectSweeper)
		ent := sw.SweepEntityTable()
		rng := rand.New(rand.NewSource(17))
		centroid := make([]float32, centers*dim)
		for i := range centroid {
			centroid[i] = float32(rng.NormFloat64())
		}
		for o := 0; o < ent.Rows; o++ {
			row := ent.Row(o)
			ci := o * centers / nEnt
			c := centroid[ci*dim : (ci+1)*dim]
			for j := range row {
				row[j] = c[j] + 0.03*float32(rng.NormFloat64())
			}
		}
		ix, err := prune.Build(sw, kge.Fingerprint(m), prune.Params{})
		if err != nil {
			b.Fatal(err)
		}
		ranker := eval.NewRanker(m, nil)
		const rel = kg.RelationID(0)
		blockRows := core.DefaultBatchBudgetBytes / (4 * nEnt)

		k := int(math.Sqrt(float64(maxCand)))
		if k*k < maxCand {
			k++
		}
		groups := make([]eval.Group, 0, k)
		total := 0
		for s := 0; s < k && total < maxCand; s++ {
			g := eval.Group{S: kg.EntityID(s * (nEnt / k))}
			for o := 0; o < k && total < maxCand; o++ {
				g.Objects = append(g.Objects, kg.EntityID(o*(nEnt/k)+1))
				total++
			}
			groups = append(groups, g)
		}

		for _, topN := range []int{100, 500} {
			// Precision of the approx keep set, measured once outside the timers.
			denseRanks, _ := ranker.RankObjectsBatch(rel, groups)
			approxRanks, _, _ := ranker.RankObjectsPruned(rel, groups, topN, eval.PruneConfig{Index: ix})
			denseKept, approxKept := 0, 0
			for gi := range denseRanks {
				for i := range denseRanks[gi] {
					if denseRanks[gi][i] <= topN {
						denseKept++
					}
					if approxRanks[gi][i] <= topN {
						approxKept++
					}
				}
			}
			precision := 1.0
			if approxKept > 0 {
				precision = float64(denseKept) / float64(approxKept)
			}

			tag := "d=" + strconv.Itoa(dim) + "/top_n=" + strconv.Itoa(topN)
			b.Run(tag+"/off", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for lo := 0; lo < len(groups); lo += blockRows {
						hi := lo + blockRows
						if hi > len(groups) {
							hi = len(groups)
						}
						_, _ = ranker.RankObjectsBatch(rel, groups[lo:hi])
					}
				}
			})
			b.Run(tag+"/exact", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, _, _ = ranker.RankObjectsPruned(rel, groups, topN, eval.PruneConfig{Index: ix, Exact: true})
				}
			})
			b.Run(tag+"/approx", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, _, _ = ranker.RankObjectsPruned(rel, groups, topN, eval.PruneConfig{Index: ix})
				}
				b.ReportMetric(precision, "precision")
			})
		}
	}
}

// BenchmarkAblationSamplerAlias compares the alias method with inverse-CDF
// binary search for weighted draws.
func BenchmarkAblationSamplerAlias(b *testing.B) {
	weights := make([]float64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = rng.Float64()
	}
	alias, err := sample.NewAlias(weights)
	if err != nil {
		b.Fatal(err)
	}
	cdf, err := sample.NewCDF(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alias", func(b *testing.B) {
		r := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			alias.Draw(r)
		}
	})
	b.Run("cdf", func(b *testing.B) {
		r := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			cdf.Draw(r)
		}
	})
}

// BenchmarkAblationHolEFFT compares the FFT and naive circular correlation
// paths that HolE's scoring function can use.
func BenchmarkAblationHolEFFT(b *testing.B) {
	const dim = 128
	rng := rand.New(rand.NewSource(3))
	s := make([]float32, dim)
	o := make([]float32, dim)
	dst := make([]float32, dim)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
		o[i] = float32(rng.NormFloat64())
	}
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.CircularCorrelation(dst, s, o)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.CircularCorrelationNaive(dst, s, o)
		}
	})
}

// BenchmarkAblationFilteredRanking compares raw and filtered candidate
// ranking.
func BenchmarkAblationFilteredRanking(b *testing.B) {
	ds, m := benchSetup(b)
	t := ds.Test.Triples()[0]
	b.Run("raw", func(b *testing.B) {
		r := eval.NewRanker(m, nil)
		for i := 0; i < b.N; i++ {
			r.RankObject(t)
		}
	})
	b.Run("filtered", func(b *testing.B) {
		r := eval.NewRanker(m, ds.All())
		for i := 0; i < b.N; i++ {
			r.RankObject(t)
		}
	})
}

// BenchmarkAblationTriangleCounting compares the merge-intersection
// triangle counter with the naive neighbour-pair counter.
func BenchmarkAblationTriangleCounting(b *testing.B) {
	ds, _ := benchSetup(b)
	u := graphstats.BuildUndirected(ds.Train)
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u.Triangles()
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u.TrianglesNaive()
		}
	})
}

// BenchmarkAblationWeightCaching compares Algorithm 1's faithful
// per-relation statistic recomputation with cross-relation memoization.
func BenchmarkAblationWeightCaching(b *testing.B) {
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchDiscover(b, "cluster_triangles", 100, 50, false)
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchDiscover(b, "cluster_triangles", 100, 50, true)
		}
	})
}

// BenchmarkAblationRulePruning compares the exhaustive baseline with and
// without CHAI-style candidate pruning rules on one relation.
func BenchmarkAblationRulePruning(b *testing.B) {
	ds, m := benchSetup(b)
	rel := ds.Train.RelationIDs()[0]
	b.Run("no-rules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ExhaustiveDiscover(context.Background(), m, ds.Train, core.ExhaustiveOptions{
				TopN: 50, Relations: []kg.RelationID{rel},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rules", func(b *testing.B) {
		rules := core.DefaultRules(ds.Train)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ExhaustiveDiscover(context.Background(), m, ds.Train, core.ExhaustiveOptions{
				TopN: 50, Relations: []kg.RelationID{rel}, Rules: rules,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionStrategies measures the future-work exploration
// strategies against the paper's GRAPH DEGREE.
func BenchmarkExtensionStrategies(b *testing.B) {
	for _, name := range []string{"graph_degree", "inverse_degree", "mixed_exploration"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, m := benchSetup(b)
				strategy, err := core.ExtendedStrategyByName(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.DiscoverFacts(context.Background(), m, ds.Train, strategy, core.Options{
					TopN: 100, MaxCandidates: 100, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelScore measures single-triple scoring per model.
func BenchmarkModelScore(b *testing.B) {
	for _, name := range kge.ModelNames() {
		b.Run(name, func(b *testing.B) {
			m, err := kge.New(name, kge.Config{NumEntities: 1000, NumRelations: 20, Dim: 32, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			t := kg.Triple{S: 1, R: 2, O: 3}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Score(t)
			}
		})
	}
}

// BenchmarkTrainEpoch measures one training epoch on the tiny dataset.
func BenchmarkTrainEpoch(b *testing.B) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"transe", "distmult", "conve"} {
		b.Run(name, func(b *testing.B) {
			m, err := kge.New(name, kge.Config{
				NumEntities:  ds.Train.Entities.Len(),
				NumRelations: ds.Train.Relations.Len(),
				Dim:          16,
				Seed:         1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := train.Run(context.Background(), m, ds, train.Config{
					Epochs: 1, BatchSize: 128, Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessTable1 measures the harness path that renders Table 1.
func BenchmarkHarnessTable1(b *testing.B) {
	r := harness.NewRunner(harness.Config{Scale: 400, Dim: 8, Epochs: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table1(io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// --- Training-throughput benchmark (batched vs scalar kernels) ---

var (
	trainBenchOnce sync.Once
	trainBenchDS   *kg.Dataset
)

// trainingBenchDataset builds the throughput fixture once per process: a
// 50k-entity synthetic graph (the regime where KvsAll's per-context
// all-entity sweep dominates training) whose training split is cut down to
// 512 triples sharing the full dictionaries, so one epoch scores 512
// contexts against all 50k entities without taking minutes on the scalar
// path.
func trainingBenchDataset(b *testing.B) *kg.Dataset {
	b.Helper()
	trainBenchOnce.Do(func() {
		g, err := synth.GenerateGraph(synth.Config{
			Name: "train-bench", NumEntities: 50000, NumRelations: 12,
			NumTriples: 50000, NumTypes: 8, EntityZipf: 0.8, RelationZipf: 0.5,
			ClosureProb: 0.2, NoiseProb: 0.05, Seed: 13,
		})
		if err != nil {
			return
		}
		sub := kg.NewGraphWithDicts(g.Entities, g.Relations)
		for _, t := range g.Triples()[:512] {
			sub.Add(t)
		}
		trainBenchDS = &kg.Dataset{
			Name:  "train-bench",
			Train: sub,
			Valid: kg.NewGraphWithDicts(g.Entities, g.Relations),
			Test:  kg.NewGraphWithDicts(g.Entities, g.Relations),
		}
	})
	if trainBenchDS == nil {
		b.Fatal("training bench fixture generation failed")
	}
	return trainBenchDS
}

// BenchmarkTrainingThroughput measures one DistMult training epoch per
// iteration at |E| = 50k, d = 64, under both objectives and both kernel
// modes. The batched/scalar pairs quantify the hot-path rewrite: KvsAll as
// chunk-wide MatMat + fused BCE vs the per-entity loop, and negative
// sampling as grouped candidate sweeps vs per-triple ScoreWithContext.
// examples/s counts contexts for KvsAll and positive triples for negsample.
func BenchmarkTrainingThroughput(b *testing.B) {
	ds := trainingBenchDataset(b)
	run := func(b *testing.B, kvsall, scalar bool) {
		b.Helper()
		examples := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m, err := kge.New("distmult", kge.Config{
				NumEntities:  ds.Train.Entities.Len(),
				NumRelations: ds.Train.Relations.Len(),
				Dim:          64,
				Seed:         1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			cfg := train.Config{
				Epochs: 1, BatchSize: 128, NegSamples: 16, Seed: 7,
				Optimizer: train.NewSGD(0.05), ScalarKernels: scalar,
			}
			var hist train.History
			if kvsall {
				hist, err = train.RunKvsAll(context.Background(), m, ds, cfg, 0.1)
			} else {
				hist, err = train.Run(context.Background(), m, ds, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range hist.Epochs {
				examples += e.Examples
			}
		}
		b.ReportMetric(float64(examples)/b.Elapsed().Seconds(), "examples/s")
	}
	b.Run("kvsall/batched", func(b *testing.B) { run(b, true, false) })
	b.Run("kvsall/scalar", func(b *testing.B) { run(b, true, true) })
	b.Run("negsample/batched", func(b *testing.B) { run(b, false, false) })
	b.Run("negsample/scalar", func(b *testing.B) { run(b, false, true) })
}
