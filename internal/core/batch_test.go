package core

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
)

// TestDiscoverFactsBatchedEquivalence is the core byte-identity claim: the
// relation-blocked batched scheduler and the per-group scheduler discover
// exactly the same facts with the same ranks, under both ranking protocols.
func TestDiscoverFactsBatchedEquivalence(t *testing.T) {
	for _, filtered := range []bool{false, true} {
		base := Options{TopN: 40, MaxCandidates: 60, Seed: 21, RankFiltered: filtered}

		batched := discover(t, base)
		disabledOpts := base
		disabledOpts.DisableBatchedRanking = true
		grouped := discover(t, disabledOpts)

		if len(batched.Facts) != len(grouped.Facts) {
			t.Fatalf("filtered=%v: batched found %d facts, grouped %d",
				filtered, len(batched.Facts), len(grouped.Facts))
		}
		for i := range batched.Facts {
			if batched.Facts[i] != grouped.Facts[i] {
				t.Fatalf("filtered=%v: fact %d differs: batched %+v grouped %+v",
					filtered, i, batched.Facts[i], grouped.Facts[i])
			}
		}
		if batched.Stats.ScoreSweeps != grouped.Stats.ScoreSweeps {
			t.Errorf("filtered=%v: sweep counts differ: batched %d grouped %d",
				filtered, batched.Stats.ScoreSweeps, grouped.Stats.ScoreSweeps)
		}
	}
}

// TestDiscoverFactsBatchStats checks the batch instrumentation: with
// batching on, every group goes through a batch (BatchRows == ScoreSweeps)
// and blocks amortize at least one group each; with batching off, both
// counters stay zero.
func TestDiscoverFactsBatchStats(t *testing.T) {
	res := discover(t, Options{TopN: 40, MaxCandidates: 60, Seed: 21})
	if res.Stats.BatchRows != res.Stats.ScoreSweeps {
		t.Errorf("BatchRows = %d, want ScoreSweeps = %d", res.Stats.BatchRows, res.Stats.ScoreSweeps)
	}
	if res.Stats.BatchedSweeps < 1 || res.Stats.BatchedSweeps > res.Stats.BatchRows {
		t.Errorf("BatchedSweeps = %d, want in [1, %d]", res.Stats.BatchedSweeps, res.Stats.BatchRows)
	}
	var perRelBatched, perRelRows int
	for _, rel := range res.Stats.PerRelation {
		perRelBatched += rel.BatchedSweeps
		perRelRows += rel.BatchRows
	}
	if perRelBatched != res.Stats.BatchedSweeps || perRelRows != res.Stats.BatchRows {
		t.Errorf("per-relation batch stats (%d, %d) do not sum to totals (%d, %d)",
			perRelBatched, perRelRows, res.Stats.BatchedSweeps, res.Stats.BatchRows)
	}

	off := discover(t, Options{TopN: 40, MaxCandidates: 60, Seed: 21, DisableBatchedRanking: true})
	if off.Stats.BatchedSweeps != 0 || off.Stats.BatchRows != 0 {
		t.Errorf("disabled run recorded batch stats (%d, %d), want zero",
			off.Stats.BatchedSweeps, off.Stats.BatchRows)
	}
}

// scoreCountingModel counts Score calls, to pin down the calibrator path's
// scoring cost: with batching the sweep scores are reused, so DiscoverFacts
// must not call Score at all.
type scoreCountingModel struct {
	kge.Model
	scoreCalls atomic.Int64
}

func (m *scoreCountingModel) Score(t kg.Triple) float32 {
	m.scoreCalls.Add(1)
	return m.Model.Score(t)
}

func TestCalibratorReusesSweepScores(t *testing.T) {
	ds, inner := tinyTrained(t)
	m := &scoreCountingModel{Model: inner}
	// A calibrator that keeps everything: every kept fact needs a score.
	opts := Options{
		TopN: 40, MaxCandidates: 60, Seed: 21,
		Calibrator:     func(score float32) float64 { return 1 },
		MinProbability: 0.5,
	}
	res, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facts) == 0 {
		t.Fatal("no facts discovered")
	}
	if n := m.scoreCalls.Load(); n != 0 {
		t.Errorf("batched calibrated discovery called Score %d times, want 0 (sweep reuse)", n)
	}

	// The per-group fallback has no sweep scores and re-scores each fact
	// that passes the rank filter.
	m.scoreCalls.Store(0)
	opts.DisableBatchedRanking = true
	res2, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.scoreCalls.Load(); n < int64(len(res2.Facts)) {
		t.Errorf("grouped calibrated discovery called Score %d times, want ≥ %d", n, len(res2.Facts))
	}
}
