package core

import (
	"math"
	"testing"

	"repro/internal/kg"
)

// strategyTestGraph builds a small graph with known structure:
//
//	relation 0: a→b, a→c, d→b   (a frequent subject, b frequent object)
//	relation 1: b→c, c→a, a→b   (forms the triangle a-b-c in the projection)
//	plus pendant: e→a (relation 0)
func strategyTestGraph(t *testing.T) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.Entities.Intern(n)
	}
	g.Relations.Intern("r0")
	g.Relations.Intern("r1")
	add := func(s, r, o int) {
		g.Add(kg.Triple{S: kg.EntityID(s), R: kg.RelationID(r), O: kg.EntityID(o)})
	}
	add(0, 0, 1) // a r0 b
	add(0, 0, 2) // a r0 c
	add(3, 0, 1) // d r0 b
	add(4, 0, 0) // e r0 a
	add(1, 1, 2) // b r1 c
	add(2, 1, 0) // c r1 a
	add(0, 1, 1) // a r1 b
	return g
}

func TestStrategyByNameRoundtrip(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%s): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := StrategyByName("nope"); err == nil {
		t.Error("accepted unknown strategy name")
	}
}

func TestUniformRandomWeights(t *testing.T) {
	g := strategyTestGraph(t)
	s := NewUniformRandom()
	s.Bind(g)
	subs, sw, objs, ow := s.Weights(0)
	if len(subs) != 3 { // a, d, e
		t.Fatalf("subjects = %d, want 3", len(subs))
	}
	if len(objs) != 3 { // b, c, a
		t.Fatalf("objects = %d, want 3", len(objs))
	}
	for _, w := range sw {
		if w != sw[0] {
			t.Error("uniform subject weights differ")
		}
	}
	for _, w := range ow {
		if w != ow[0] {
			t.Error("uniform object weights differ")
		}
	}
}

func TestEntityFrequencyWeights(t *testing.T) {
	g := strategyTestGraph(t)
	s := NewEntityFrequency()
	s.Bind(g)
	subs, sw, objs, ow := s.Weights(0)
	weightOf := func(pool []kg.EntityID, ws []float64, e kg.EntityID) float64 {
		for i, p := range pool {
			if p == e {
				return ws[i]
			}
		}
		t.Fatalf("entity %d not in pool", e)
		return 0
	}
	// Subject side of r0: a appears twice, d and e once.
	if got := weightOf(subs, sw, 0); got != 2 {
		t.Errorf("weight(a as subject) = %g, want 2", got)
	}
	if got := weightOf(subs, sw, 3); got != 1 {
		t.Errorf("weight(d as subject) = %g, want 1", got)
	}
	// Object side of r0: b twice, c and a once.
	if got := weightOf(objs, ow, 1); got != 2 {
		t.Errorf("weight(b as object) = %g, want 2", got)
	}
	// Sides are weighted independently (paper's note on Equations 1-2).
	if got := weightOf(objs, ow, 0); got != 1 {
		t.Errorf("weight(a as object) = %g, want 1", got)
	}
}

func TestGraphDegreeWeights(t *testing.T) {
	g := strategyTestGraph(t)
	s := NewGraphDegree()
	s.Bind(g)
	subs, sw, _, _ := s.Weights(0)
	// Degrees (in+out over all triples): a: out 3 (2×r0 + 1×r1), in 2 → 5.
	for i, e := range subs {
		if e == 0 && sw[i] != 5 {
			t.Errorf("degree weight(a) = %g, want 5", sw[i])
		}
		if e == 4 && sw[i] != 1 {
			t.Errorf("degree weight(e) = %g, want 1", sw[i])
		}
	}
}

func TestClusteringTrianglesWeights(t *testing.T) {
	g := strategyTestGraph(t)
	s := NewClusteringTriangles()
	s.Bind(g)
	subs, sw, _, _ := s.Weights(0)
	// Triangle a-b-c exists; d, e are in none.
	for i, e := range subs {
		switch e {
		case 0: // a
			if sw[i] != 1 {
				t.Errorf("T(a) weight = %g, want 1", sw[i])
			}
		case 3, 4: // d, e
			if sw[i] != 0 {
				t.Errorf("T(%d) weight = %g, want 0", e, sw[i])
			}
		}
	}
}

func TestClusteringCoefficientWeights(t *testing.T) {
	g := strategyTestGraph(t)
	s := NewClusteringCoefficient()
	s.Bind(g)
	_, _, objs, ow := s.Weights(1)
	// Objects of r1: c, a, b — all corners of the triangle.
	// b: neighbours {a, c, d} → deg 3, 1 triangle → c = 2/(3·2) = 1/3.
	for i, e := range objs {
		if e == 1 && math.Abs(ow[i]-1.0/3) > 1e-12 {
			t.Errorf("c(b) weight = %g, want 1/3", ow[i])
		}
	}
}

func TestZeroWeightFallbackToUniform(t *testing.T) {
	// A path graph has no triangles: triangle weights are all zero and the
	// strategy must fall back to uniform rather than produce an unusable
	// all-zero distribution.
	g := kg.NewGraph()
	for _, n := range []string{"x", "y", "z"} {
		g.Entities.Intern(n)
	}
	g.Relations.Intern("r")
	g.Add(kg.Triple{S: 0, R: 0, O: 1})
	g.Add(kg.Triple{S: 1, R: 0, O: 2})
	s := NewClusteringTriangles()
	s.Bind(g)
	subs, sw, _, _ := s.Weights(0)
	if len(subs) == 0 {
		t.Fatal("no subjects")
	}
	var sum float64
	for _, w := range sw {
		sum += w
	}
	if sum <= 0 {
		t.Error("zero-weight fallback failed: weights sum to 0")
	}
}

func TestWeightCaching(t *testing.T) {
	g := strategyTestGraph(t)
	s := NewClusteringTriangles()
	s.Bind(g)
	wc, ok := s.(WeightCacher)
	if !ok {
		t.Fatal("triangles strategy does not implement WeightCacher")
	}
	// Cached and uncached weights must agree.
	_, sw1, _, ow1 := s.Weights(0)
	wc.SetCacheWeights(true)
	_, sw2, _, ow2 := s.Weights(0)
	_, sw3, _, _ := s.Weights(0) // second call hits the cache
	for i := range sw1 {
		if sw1[i] != sw2[i] || sw2[i] != sw3[i] {
			t.Fatalf("caching changed weights at %d: %g %g %g", i, sw1[i], sw2[i], sw3[i])
		}
	}
	for i := range ow1 {
		if ow1[i] != ow2[i] {
			t.Fatalf("caching changed object weights at %d", i)
		}
	}
	// Rebinding must invalidate the cache (weights reflect the new graph).
	g2 := kg.NewGraph()
	g2.Entities.Intern("p")
	g2.Entities.Intern("q")
	g2.Relations.Intern("r")
	g2.Add(kg.Triple{S: 0, R: 0, O: 1})
	s.Bind(g2)
	subs, _, _, _ := s.Weights(0)
	if len(subs) != 1 {
		t.Errorf("stale cache after rebind: %d subjects", len(subs))
	}
}

func TestUniformNormalizedProbability(t *testing.T) {
	// Equation 1: normalized sampling probability is 1/len(side pool).
	g := strategyTestGraph(t)
	s := NewUniformRandom()
	s.Bind(g)
	subs, sw, _, _ := s.Weights(0)
	var sum float64
	for _, w := range sw {
		sum += w
	}
	for i := range sw {
		if p := sw[i] / sum; math.Abs(p-1/float64(len(subs))) > 1e-12 {
			t.Fatalf("normalized probability = %g, want %g", p, 1/float64(len(subs)))
		}
	}
}
