package core

import (
	"context"
	"testing"

	"repro/internal/kg"
)

func ruleTestGraph(t *testing.T) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	for _, n := range []string{"alice", "bob", "carol", "paris", "rome"} {
		g.Entities.Intern(n)
	}
	g.Relations.Intern("knows")    // person -> person, non-functional
	g.Relations.Intern("lives_in") // person -> city, functional
	add := func(s, r, o int) {
		g.Add(kg.Triple{S: kg.EntityID(s), R: kg.RelationID(r), O: kg.EntityID(o)})
	}
	add(0, 0, 1) // alice knows bob
	add(1, 0, 2) // bob knows carol
	add(0, 1, 3) // alice lives_in paris
	add(1, 1, 4) // bob lives_in rome
	return g
}

func TestDomainRangeRule(t *testing.T) {
	g := ruleTestGraph(t)
	rule := NewDomainRangeRule(g)
	// (carol, lives_in, paris): carol never observed as lives_in subject.
	if rule.Admit(kg.Triple{S: 2, R: 1, O: 3}) {
		t.Error("admitted subject outside observed domain")
	}
	// (alice, lives_in, rome): both sides observed for lives_in.
	if !rule.Admit(kg.Triple{S: 0, R: 1, O: 4}) {
		t.Error("rejected a domain/range-consistent candidate")
	}
	// (alice, knows, paris): paris never an object of knows.
	if rule.Admit(kg.Triple{S: 0, R: 0, O: 3}) {
		t.Error("admitted object outside observed range")
	}
}

func TestNoSelfLoopRule(t *testing.T) {
	rule := NoSelfLoopRule{}
	if rule.Admit(kg.Triple{S: 1, R: 0, O: 1}) {
		t.Error("admitted a self-loop")
	}
	if !rule.Admit(kg.Triple{S: 1, R: 0, O: 2}) {
		t.Error("rejected a non-loop")
	}
}

func TestFunctionalRelationRule(t *testing.T) {
	g := ruleTestGraph(t)
	rule := NewFunctionalRelationRule(g, 1.0)
	// lives_in is functional (1 object per subject): a second city for
	// alice contradicts it.
	if rule.Admit(kg.Triple{S: 0, R: 1, O: 4}) {
		t.Error("admitted a second object for a functional relation")
	}
	// carol has no lives_in fact yet: a first object is fine.
	if !rule.Admit(kg.Triple{S: 2, R: 1, O: 3}) {
		t.Error("rejected a first object for a functional relation")
	}
	// knows also has avg 1.0 object per subject in this graph, so strict
	// tolerance treats it as functional too.
	if rule.Admit(kg.Triple{S: 0, R: 0, O: 2}) {
		t.Error("functional inference should also cover 'knows' with avg 1.0")
	}
	// Once a subject has multiple objects, the relation stops counting as
	// functional under strict tolerance and candidates pass again.
	g2 := ruleTestGraph(t)
	g2.Add(kg.Triple{S: 0, R: 0, O: 2}) // alice knows carol: avg objects 1.5
	relaxed := NewFunctionalRelationRule(g2, 1.0)
	if !relaxed.Admit(kg.Triple{S: 1, R: 0, O: 0}) {
		t.Error("non-functional relation should admit new objects")
	}
}

func TestExhaustiveDiscoverCompleteOnTinyGraph(t *testing.T) {
	ds, m := tinyTrained(t)
	rel := ds.Train.RelationIDs()[0]
	res, stats, err := ExhaustiveDiscover(context.Background(), m, ds.Train, ExhaustiveOptions{
		TopN:      20,
		Relations: []kg.RelationID{rel},
	})
	if err != nil {
		t.Fatalf("ExhaustiveDiscover: %v", err)
	}
	n := int64(ds.Train.NumEntities())
	wantComplement := n*n - int64(len(ds.Train.RelationTriples(rel)))
	if stats.ComplementSize != wantComplement {
		t.Errorf("ComplementSize = %d, want %d", stats.ComplementSize, wantComplement)
	}
	if stats.Generated != int(wantComplement) {
		t.Errorf("Generated = %d, want full complement %d with no rules", stats.Generated, wantComplement)
	}
	for _, f := range res.Facts {
		if ds.Train.Contains(f.Triple) {
			t.Fatalf("exhaustive discovery returned a known triple %v", f.Triple)
		}
		if f.Rank > 20 {
			t.Fatalf("rank %d above top_n", f.Rank)
		}
	}
}

// Exhaustive discovery is the completeness reference: every fact the
// sampling algorithm finds for a relation must also be found exhaustively
// (same model, same top_n, raw protocol).
func TestSamplingIsSubsetOfExhaustive(t *testing.T) {
	ds, m := tinyTrained(t)
	rel := ds.Train.RelationIDs()[1]
	sampled, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(), Options{
		TopN: 15, MaxCandidates: 60, Seed: 3, Relations: []kg.RelationID{rel},
	})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, _, err := ExhaustiveDiscover(context.Background(), m, ds.Train, ExhaustiveOptions{
		TopN: 15, Relations: []kg.RelationID{rel},
	})
	if err != nil {
		t.Fatal(err)
	}
	inExhaustive := make(map[kg.Triple]struct{}, len(exhaustive.Facts))
	for _, f := range exhaustive.Facts {
		inExhaustive[f.Triple] = struct{}{}
	}
	for _, f := range sampled.Facts {
		if _, ok := inExhaustive[f.Triple]; !ok {
			t.Fatalf("sampled fact %v (rank %d) missing from exhaustive result", f.Triple, f.Rank)
		}
	}
	if len(sampled.Facts) > len(exhaustive.Facts) {
		t.Error("sampling found more facts than the exhaustive sweep")
	}
}

func TestExhaustiveDiscoverRulesPrune(t *testing.T) {
	ds, m := tinyTrained(t)
	rel := ds.Train.RelationIDs()[0]
	without, statsW, err := ExhaustiveDiscover(context.Background(), m, ds.Train, ExhaustiveOptions{
		TopN: 20, Relations: []kg.RelationID{rel},
	})
	if err != nil {
		t.Fatal(err)
	}
	withRules, statsR, err := ExhaustiveDiscover(context.Background(), m, ds.Train, ExhaustiveOptions{
		TopN:      20,
		Relations: []kg.RelationID{rel},
		Rules:     DefaultRules(ds.Train),
	})
	if err != nil {
		t.Fatal(err)
	}
	if statsR.Pruned == 0 {
		t.Error("rules pruned nothing")
	}
	if statsR.Generated >= statsW.Generated {
		t.Errorf("rules did not reduce candidates: %d vs %d", statsR.Generated, statsW.Generated)
	}
	// Rule-filtered output is a subset of the unfiltered output.
	inFull := make(map[kg.Triple]struct{}, len(without.Facts))
	for _, f := range without.Facts {
		inFull[f.Triple] = struct{}{}
	}
	for _, f := range withRules.Facts {
		if _, ok := inFull[f.Triple]; !ok {
			t.Fatalf("rule-filtered fact %v not in unfiltered result", f.Triple)
		}
	}
}

func TestExhaustiveDiscoverBudgetGuard(t *testing.T) {
	ds, m := tinyTrained(t)
	_, _, err := ExhaustiveDiscover(context.Background(), m, ds.Train, ExhaustiveOptions{
		TopN:          10,
		MaxCandidates: 10, // far below the complement size
	})
	if err == nil {
		t.Fatal("expected the candidate-budget guard to fire")
	}
}

func TestExhaustiveDiscoverContextCancel(t *testing.T) {
	ds, m := tinyTrained(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ExhaustiveDiscover(ctx, m, ds.Train, ExhaustiveOptions{TopN: 10}); err == nil {
		t.Fatal("expected context error")
	}
}

func TestExtendedStrategyByName(t *testing.T) {
	for _, name := range AllStrategyNames() {
		s, err := ExtendedStrategyByName(name)
		if err != nil {
			t.Fatalf("ExtendedStrategyByName(%s): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("strategy %q reports %q", name, s.Name())
		}
	}
	if _, err := ExtendedStrategyByName("nope"); err == nil {
		t.Error("accepted unknown strategy")
	}
	// The paper's list must stay pristine: extensions are separate.
	for _, name := range StrategyNames() {
		if name == "inverse_degree" || name == "mixed_exploration" {
			t.Error("extension leaked into the paper's strategy list")
		}
	}
}

func TestInverseDegreeTargetsLongTail(t *testing.T) {
	g := ruleTestGraph(t)
	// Add a hub to create a popularity spread.
	for i := 0; i < 6; i++ {
		g.AddNamed("alice", "knows", string(rune('x'+i)))
	}
	s := NewInverseDegree()
	s.Bind(g)
	subs, sw, _, _ := s.Weights(0)
	// alice (the hub) must have the smallest subject weight.
	var aliceW, maxW float64
	for i, e := range subs {
		if g.Entities.Name(int32(e)) == "alice" {
			aliceW = sw[i]
		}
		if sw[i] > maxW {
			maxW = sw[i]
		}
	}
	if aliceW == 0 || aliceW >= maxW {
		t.Errorf("hub weight %g should be positive and the smallest (max %g)", aliceW, maxW)
	}
}

func TestMixedExplorationInterpolates(t *testing.T) {
	g := ruleTestGraph(t)
	pure := NewGraphDegree()
	pure.Bind(g)
	_, pureW, _, _ := pure.Weights(0)

	mixed0 := NewMixedExploration(0)
	mixed0.Bind(g)
	_, mixed0W, _, _ := mixed0.Weights(0)

	// ε = 0 reduces to GRAPH DEGREE up to normalization: proportionality.
	ratio := mixed0W[0] / pureW[0]
	for i := range pureW {
		if pureW[i] == 0 {
			continue
		}
		got := mixed0W[i] / pureW[i]
		if diff := got - ratio; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("ε=0 mixed weights not proportional to degree at %d", i)
		}
	}

	// ε is clamped.
	if NewMixedExploration(-1).Name() != "mixed_exploration" {
		t.Error("clamped constructor broken")
	}
	if NewMixedExploration(2).Name() != "mixed_exploration" {
		t.Error("clamped constructor broken")
	}
}
