package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prune"
	"repro/internal/sample"
)

// Options.PruneMode values.
const (
	PruneOff    = "off"
	PruneExact  = "exact"
	PruneApprox = "approx"
)

// Options parameterizes DiscoverFacts (Algorithm 1's inputs).
type Options struct {
	// TopN is the maximum rank (against object-side corruptions) a
	// candidate may have to be returned as a fact. Zero means 500, the
	// value the paper settles on in §4.3.
	TopN int
	// MaxCandidates is the maximum number of fact candidates generated per
	// relation. Zero means 500 (§4.3).
	MaxCandidates int
	// MaxIterations bounds the generation loop per relation. Zero means 5,
	// the constant from Algorithm 1.
	MaxIterations int
	// Relations restricts discovery to these relations; nil means every
	// relation present in the graph (Algorithm 1 line 3).
	Relations []kg.RelationID
	// Filter is an additional graph of "seen" triples to exclude besides
	// the training graph itself (e.g. validation and test splits).
	Filter *kg.Graph
	// RankFiltered selects the filtered ranking protocol when computing
	// candidate ranks (existing triples are skipped as corruptions).
	RankFiltered bool
	// Seed drives candidate sampling.
	Seed int64
	// Workers bounds ranking parallelism; zero means GOMAXPROCS.
	Workers int
	// CacheWeights memoizes graph-level strategy statistics across
	// relations, departing from Algorithm 1's per-relation recomputation.
	// Off by default (faithful mode); see the weight-caching ablation.
	CacheWeights bool
	// DisableBatchedRanking falls back to the per-group ranking scheduler
	// (one RankObjects sweep and one full-sweep sort per (s, r) group).
	// Batching is on by default and produces byte-identical output — the
	// batched sweep is bit-identical to the per-group sweep and the counting
	// rank pass counts the same integers as the sort — so the toggle exists
	// for the ablation harness and for triage, not correctness.
	DisableBatchedRanking bool
	// BatchBudgetBytes caps the score-matrix footprint of one relation
	// block: a block holds at most BatchBudgetBytes/(4·|E|) of a relation's
	// (s, r) groups, so a worker's batch stays within a fixed memory budget
	// regardless of vocabulary size. Zero means DefaultBatchBudgetBytes.
	BatchBudgetBytes int
	// PruneMode selects the approximate-then-exact ranking path backed by a
	// prune.Index over the entity table: "" or PruneOff runs the dense
	// sweeps; PruneExact prunes with sound score bounds and produces output
	// byte-identical to the dense path; PruneApprox additionally caps the
	// cells visited per query (PruneProbe) and filters on raw int8 estimates,
	// trading recall for speed. Any other value is an error.
	PruneMode string
	// PruneCells overrides the index's cell count (0 means ⌈√|E|⌉). It only
	// matters when the index is built here — a prebuilt PruneIndex keeps the
	// cell count it was built with.
	PruneCells int
	// PruneProbe caps the cells visited per query in PruneApprox mode; ≤ 0
	// picks ⌈cells/8⌉ of the index. Ignored in PruneExact mode.
	PruneProbe int
	// PruneIndex supplies a prebuilt index (e.g. loaded from the checkpoint
	// sidecar via prune.LoadOrBuild). Nil with pruning enabled builds one
	// in-process from the model, which costs one k-means pass up front.
	PruneIndex *prune.Index
	// Calibrator maps raw model scores to probabilities (e.g. a fitted
	// eval.PlattCalibrator's Prob method). Together with MinProbability it
	// implements Definition 2.1's original formulation — keep facts with
	// P(t) > b — on top of the rank filter. Both nil/0 by default, which is
	// the paper's evaluated rank-only behaviour.
	Calibrator     func(score float32) float64
	MinProbability float64
	// OnRelationDone, when non-nil, is invoked synchronously after each
	// relation's sweep completes (including relations that produced no
	// candidates), from the relation loop's goroutine. The durable-job
	// subsystem (internal/jobs) journals each relation through it and
	// kgdiscover prints progress lines from it. The RelationDone.Facts slice
	// aliases internal buffers and is only valid during the callback; copy
	// it if it must outlive the call.
	OnRelationDone func(RelationDone)
}

func (o *Options) setDefaults() {
	if o.TopN == 0 {
		o.TopN = 500
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 500
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 5
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchBudgetBytes == 0 {
		o.BatchBudgetBytes = DefaultBatchBudgetBytes
	}
}

// DefaultBatchBudgetBytes is the default score-matrix budget of one relation
// block (Options.BatchBudgetBytes): 4 MiB ≈ 20 query rows over a 50k-entity
// vocabulary, enough to amortize the entity-matrix traffic without a block's
// scores spilling far past the last-level cache share of one worker.
const DefaultBatchBudgetBytes = 4 << 20

// Fact is one discovered fact with its rank against corruptions.
type Fact struct {
	Triple kg.Triple
	Rank   int
}

// Stats instruments a discovery run. The paper's three evaluation
// dimensions are derived from it: runtime (Figure 2), MRR over fact ranks
// (Figure 4), and efficiency = facts per hour (Figure 6).
type Stats struct {
	// WeightTime is the time spent computing strategy weights (including
	// Prepare's graph statistics).
	WeightTime time.Duration
	// GenerateTime is the time spent sampling and building mesh grids.
	GenerateTime time.Duration
	// RankTime is the time spent ranking candidates against corruptions.
	RankTime time.Duration
	// Total is the end-to-end wall time of DiscoverFacts.
	Total time.Duration
	// Generated counts candidate triples ranked (after dedup/seen filter).
	Generated int
	// Relations counts relations iterated.
	Relations int
	// Iterations counts generation-loop iterations across all relations.
	Iterations int
	// ScoreSweeps counts full ScoreAllObjects sweeps run while ranking: one
	// per distinct (s, r) candidate group under the grouped scheduler,
	// versus one per candidate under the per-candidate protocol.
	ScoreSweeps int
	// GroupedCandidates counts candidates ranked through grouped sweeps.
	// GroupedCandidates − ScoreSweeps is the number of |E|·d sweeps the
	// grouping saved; the ablation harness reports it as sweeps-saved.
	GroupedCandidates int
	// BatchedSweeps counts relation-blocked batch dispatches: each is one
	// tiled matrix–matrix sweep (kge.ScoreAllObjectsBatch) covering a block
	// of a relation's (s, r) groups. Zero when batching is disabled.
	BatchedSweeps int
	// BatchRows counts the (s, r) query rows scored through those batches;
	// BatchRows/BatchedSweeps is the achieved amortization factor (average
	// rows per entity-matrix pass).
	BatchRows int
	// CellsPruned counts IVF cells the pruned ranking path discarded by
	// their score bound without visiting their members (zero with pruning
	// off). CellsPruned/(CellsPruned+cells visited) is the fraction of the
	// entity table the coarse index let ranking skip outright.
	CellsPruned int
	// PrescreenRows counts entity rows the pruned path evaluated with the
	// int8 filter instead of (or before) the exact float kernels.
	PrescreenRows int
	// PerRelation records each swept relation's timings and counters in
	// sweep order. It is what the durable-job journal persists per relation
	// and what progress reporting renders.
	PerRelation []RelationStats
}

// RelationStats is the per-relation slice of Stats: one relation's share of
// the weight/generate/rank time plus its candidate and fact counts.
type RelationStats struct {
	Relation      kg.RelationID
	WeightTime    time.Duration
	GenerateTime  time.Duration
	RankTime      time.Duration
	Generated     int
	Iterations    int
	ScoreSweeps   int
	BatchedSweeps int
	BatchRows     int
	CellsPruned   int
	PrescreenRows int
	Facts         int
}

// RelationDone is the payload of Options.OnRelationDone: one completed
// relation's discovered facts (already rank-filtered, in generation order)
// and its stats. Index/Total locate the relation within the sweep.
type RelationDone struct {
	Relation kg.RelationID
	Index    int // 0-based position in the swept relation list
	Total    int // number of relations in this sweep
	Facts    []Fact
	Stats    RelationStats
}

// FactsPerHour returns the discovery efficiency measure from §3.3:
// discovered facts divided by total runtime, in facts per hour.
func (s Stats) FactsPerHour(numFacts int) float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(numFacts) / s.Total.Hours()
}

// Result is the output of DiscoverFacts: the facts, their ranks (parallel
// to Facts, as in Algorithm 1's two outputs), and run statistics.
type Result struct {
	Facts []Fact
	Stats Stats
}

// Ranks returns the ranks of all discovered facts, the input to the MRR
// quality metric.
func (r *Result) Ranks() []int {
	ranks := make([]int, len(r.Facts))
	for i, f := range r.Facts {
		ranks[i] = f.Rank
	}
	return ranks
}

// MRR returns the mean reciprocal rank of the discovered facts (Equation 7).
func (r *Result) MRR() float64 { return eval.MRROfRanks(r.Ranks()) }

// DiscoverFacts is Algorithm 1. For each relation r in g it computes
// strategy weights for subject and object candidates (line 7), repeatedly
// samples ⌈√max_candidates⌉+10 entities per side and crosses them into a
// mesh grid of candidate triples (lines 8–13, at most MaxIterations
// iterations), filters out triples already in g (line 12), ranks the
// remaining candidates against their object-side corruptions with the model
// (line 14), and returns those ranked within TopN (line 15).
//
// The model must have been trained on g; the ranks returned follow the
// standard evaluation protocol (see internal/eval).
func DiscoverFacts(ctx context.Context, model kge.Model, g *kg.Graph, strategy Strategy, opts Options) (*Result, error) {
	opts.setDefaults()
	if model.NumEntities() < g.NumEntities() {
		return nil, fmt.Errorf("core: model covers %d entities but graph has %d", model.NumEntities(), g.NumEntities())
	}
	switch opts.PruneMode {
	case "", PruneOff:
		opts.PruneIndex = nil
	case PruneExact, PruneApprox:
		sw, ok := model.(kge.ObjectSweeper)
		if !ok {
			return nil, fmt.Errorf("core: model %q does not expose a sweep geometry for pruned ranking", model.Name())
		}
		if opts.PruneIndex == nil {
			tr, ok := model.(kge.Trainable)
			if !ok {
				return nil, fmt.Errorf("core: model %q cannot be fingerprinted for pruned ranking", model.Name())
			}
			ix, err := prune.Build(sw, kge.Fingerprint(tr), prune.Params{Cells: opts.PruneCells})
			if err != nil {
				return nil, fmt.Errorf("core: build prune index: %w", err)
			}
			opts.PruneIndex = ix
		} else if opts.PruneIndex.Geometry() != sw.SweepGeometry() ||
			opts.PruneIndex.NumEntities() != sw.NumEntities() {
			return nil, fmt.Errorf("core: prune index does not match the model's sweep geometry")
		}
	default:
		return nil, fmt.Errorf("core: unknown prune mode %q (want %q, %q, or %q)",
			opts.PruneMode, PruneOff, PruneExact, PruneApprox)
	}
	start := time.Now()
	res := &Result{}

	strategy.Bind(g)
	if wc, ok := strategy.(WeightCacher); ok {
		wc.SetCacheWeights(opts.CacheWeights)
	}

	relations := opts.Relations
	if relations == nil {
		relations = g.RelationIDs()
	}
	// Line 4: the mesh grid of k subjects × k objects reaches
	// max_candidates when k ≈ √max_candidates; +10 covers the candidates
	// lost to dedup and the seen-filter.
	sampleSize := int(math.Sqrt(float64(opts.MaxCandidates))) + 10

	var ranker objectRanker
	if opts.RankFiltered {
		filter := g
		if opts.Filter != nil {
			filter = kg.Merge(g, opts.Filter)
		}
		ranker = eval.NewRanker(model, filter)
	} else {
		ranker = eval.NewRanker(model, nil)
	}

	for ri, r := range relations {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Stats.Relations++
		factStart := len(res.Facts)
		rel := RelationStats{Relation: r}

		wStart := time.Now()
		subs, sw, objs, ow := strategy.Weights(r)
		rel.WeightTime = time.Since(wStart)

		if len(subs) > 0 && len(objs) > 0 {
			// Each relation draws from its own RNG stream, seeded by
			// (Seed, r): a relation's candidates do not depend on which other
			// relations the sweep covers or in what order, so a run split
			// across several Relations subsets (the durable-job resume path)
			// generates exactly the candidates of one uninterrupted run.
			rng := rand.New(rand.NewSource(relationSeed(opts.Seed, r)))

			gStart := time.Now()
			candidates, iters := generateCandidates(g, opts, r, subs, sw, objs, ow, sampleSize, rng)
			rel.GenerateTime = time.Since(gStart)
			rel.Iterations = iters
			rel.Generated = len(candidates)

			if len(candidates) > 0 {
				rStart := time.Now()
				ranks, scores, rstats, err := rankAll(ctx, ranker, candidates, model.NumEntities(), opts)
				rel.RankTime = time.Since(rStart)
				if err != nil {
					return nil, err
				}
				rel.ScoreSweeps = rstats.Sweeps
				rel.BatchedSweeps = rstats.BatchedSweeps
				rel.BatchRows = rstats.BatchRows
				rel.CellsPruned = rstats.CellsPruned
				rel.PrescreenRows = rstats.PrescreenRows
				res.Stats.GroupedCandidates += len(candidates)

				// Line 15: keep candidates within the quality threshold —
				// and, when a calibrator is configured, within Definition
				// 2.1's probability threshold P(t) > b as well. The batched
				// scheduler returns each candidate's sweep score, so the
				// calibrator reuses it instead of re-scoring per kept fact.
				for i, t := range candidates {
					if ranks[i] > opts.TopN {
						continue
					}
					if opts.Calibrator != nil && opts.MinProbability > 0 {
						var sc float32
						if scores != nil {
							sc = scores[i]
						} else {
							sc = model.Score(t)
						}
						if opts.Calibrator(sc) <= opts.MinProbability {
							continue
						}
					}
					res.Facts = append(res.Facts, Fact{Triple: t, Rank: ranks[i]})
				}
			}
		}

		rel.Facts = len(res.Facts) - factStart
		res.Stats.WeightTime += rel.WeightTime
		res.Stats.GenerateTime += rel.GenerateTime
		res.Stats.RankTime += rel.RankTime
		res.Stats.Iterations += rel.Iterations
		res.Stats.Generated += rel.Generated
		res.Stats.ScoreSweeps += rel.ScoreSweeps
		res.Stats.BatchedSweeps += rel.BatchedSweeps
		res.Stats.BatchRows += rel.BatchRows
		res.Stats.CellsPruned += rel.CellsPruned
		res.Stats.PrescreenRows += rel.PrescreenRows
		res.Stats.PerRelation = append(res.Stats.PerRelation, rel)
		if opts.OnRelationDone != nil {
			opts.OnRelationDone(RelationDone{
				Relation: r,
				Index:    ri,
				Total:    len(relations),
				Facts:    res.Facts[factStart:],
				Stats:    rel,
			})
		}
	}

	SortFactsByRank(res.Facts)
	res.Stats.Total = time.Since(start)
	return res, nil
}

// relationSeed derives the RNG seed for one relation's generation loop from
// the run seed, mixing both through splitmix64 so nearby (seed, relation)
// pairs land on unrelated streams.
func relationSeed(seed int64, r kg.RelationID) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(uint32(r)) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// SortFactsByRank orders facts best-rank-first, breaking ties by triple for
// deterministic output. It is the canonical output order of DiscoverFacts;
// internal/jobs re-sorts merged (journaled + freshly swept) facts with it so
// a resumed run renders byte-identically to an uninterrupted one.
func SortFactsByRank(facts []Fact) {
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].Rank != facts[j].Rank {
			return facts[i].Rank < facts[j].Rank
		}
		a, b := facts[i].Triple, facts[j].Triple
		if a.R != b.R {
			return a.R < b.R
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.O < b.O
	})
}

// generateCandidates runs the generation loop (Algorithm 1 lines 8–13) for
// one relation and returns the deduplicated unseen candidates plus the
// number of iterations used.
func generateCandidates(g *kg.Graph, opts Options, r kg.RelationID,
	subs []kg.EntityID, sw []float64, objs []kg.EntityID, ow []float64,
	sampleSize int, rng *rand.Rand) ([]kg.Triple, int) {

	subSampler, err := sample.NewAlias(sw)
	if err != nil {
		return nil, 0
	}
	objSampler, err := sample.NewAlias(ow)
	if err != nil {
		return nil, 0
	}

	seen := make(map[kg.Triple]struct{}, opts.MaxCandidates)
	var candidates []kg.Triple
	iters := 0
	for len(candidates) < opts.MaxCandidates && iters < opts.MaxIterations {
		iters++
		sIdx := sample.DistinctDraws(subSampler, rng, sampleSize, 0)
		oIdx := sample.DistinctDraws(objSampler, rng, sampleSize, 0)
		// Line 11: mesh grid of sampled subjects × objects.
		for _, si := range sIdx {
			s := subs[si]
			for _, oi := range oIdx {
				o := objs[oi]
				t := kg.Triple{S: s, R: r, O: o}
				if _, dup := seen[t]; dup {
					continue
				}
				seen[t] = struct{}{}
				// Line 12: filter out triples already in the KG (and any
				// extra seen split).
				if g.Contains(t) || (opts.Filter != nil && opts.Filter.Contains(t)) {
					continue
				}
				candidates = append(candidates, t)
				if len(candidates) >= opts.MaxCandidates {
					return candidates, iters
				}
			}
		}
	}
	return candidates, iters
}

// objectRanker is the ranking dependency of the discovery schedulers:
// per-candidate ranking, the grouped one-sweep-per-(s,r) form, and the
// relation-blocked batched form.
type objectRanker interface {
	RankObject(kg.Triple) int
	RankObjects(s kg.EntityID, r kg.RelationID, objects []kg.EntityID) []int
	RankObjectsBatch(rel kg.RelationID, groups []eval.Group) ([][]int, [][]float32)
}

// prunedRanker is the optional pruned-path extension of objectRanker. It is
// a separate interface (asserted at runtime, not added to objectRanker) so
// ranker substitutes that only implement the dense protocol keep working.
type prunedRanker interface {
	RankObjectsPruned(rel kg.RelationID, groups []eval.Group, topN int, cfg eval.PruneConfig) ([][]int, [][]float32, eval.PruneStats)
}

// rankStats is rankAll's instrumentation: Sweeps counts score sweeps (one
// per distinct (s, r) group, either scheduler); BatchedSweeps counts batch
// dispatches (one tiled matrix–matrix pass each) and BatchRows the query
// rows they carried. Under pruned ranking the batch counters stay zero —
// blocks are branch-and-bound searches, not matrix–matrix sweeps — and the
// prune counters report the work the index saved and spent instead.
type rankStats struct {
	Sweeps        int
	BatchedSweeps int
	BatchRows     int
	CellsPruned   int
	PrescreenRows int
}

// srGroup is one (s, r) candidate group: the candidate indexes sharing that
// subject-relation pair, in candidate order.
type srGroup struct {
	s   kg.EntityID
	r   kg.RelationID
	idx []int
}

// rankBlock is one relation block: up to blockRows (s, r) groups of a single
// relation, ranked from one shared score matrix.
type rankBlock struct {
	rel    kg.RelationID
	groups []*srGroup
}

// rankAll ranks candidates in parallel, preserving order, and returns each
// candidate's rank and sweep score (scores are nil under
// DisableBatchedRanking). Candidates are bucketed by their (s, r) pair — a
// mesh grid of k subjects × k objects collapses from k² model sweeps to k —
// and the groups of each relation are then packed into blocks sized to
// Options.BatchBudgetBytes, so a whole block is scored by one tiled
// matrix–matrix sweep (eval.RankObjectsBatch) instead of one MatVec per
// group. Blocks shrink below the cache budget when needed to keep every
// worker busy. When ctx is cancelled the partially-written ranks are
// meaningless — rank 0 would pass every TopN filter — so rankAll returns
// ctx.Err() instead of partial results.
func rankAll(ctx context.Context, ranker objectRanker, candidates []kg.Triple, numEntities int, opts Options) ([]int, []float32, rankStats, error) {
	ranks := make([]int, len(candidates))
	type srKey struct {
		s kg.EntityID
		r kg.RelationID
	}
	byKey := make(map[srKey]int, len(candidates))
	var groups []*srGroup
	for i, t := range candidates {
		k := srKey{t.S, t.R}
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, &srGroup{s: t.S, r: t.R})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}
	stats := rankStats{Sweeps: len(groups)}

	workers := opts.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}

	if opts.DisableBatchedRanking {
		if err := rankAllGrouped(ctx, ranker, candidates, groups, ranks, workers); err != nil {
			return nil, nil, rankStats{}, err
		}
		return ranks, nil, stats, nil
	}

	// Pack each relation's groups (first-appearance order) into blocks. The
	// row cap is the cache budget, tightened so there are at least as many
	// blocks as workers: smaller blocks only cost amortization, idle workers
	// cost wall-clock.
	budget := opts.BatchBudgetBytes
	if budget <= 0 {
		budget = DefaultBatchBudgetBytes
	}
	blockRows := budget / (4 * numEntities)
	if perWorker := (len(groups) + workers - 1) / workers; blockRows > perWorker {
		blockRows = perWorker
	}
	if blockRows < 1 {
		blockRows = 1
	}
	var blocks []rankBlock
	var relOrder []kg.RelationID
	relGroups := make(map[kg.RelationID][]*srGroup)
	for _, g := range groups {
		if _, ok := relGroups[g.r]; !ok {
			relOrder = append(relOrder, g.r)
		}
		relGroups[g.r] = append(relGroups[g.r], g)
	}
	// Pruned ranking replaces each block's matrix–matrix sweep with
	// branch-and-bound top-M searches; blocks remain the scheduling unit.
	pruner, _ := ranker.(prunedRanker)
	pruneOn := opts.PruneIndex != nil && pruner != nil &&
		(opts.PruneMode == PruneExact || opts.PruneMode == PruneApprox)
	pruneCfg := eval.PruneConfig{
		Index: opts.PruneIndex,
		Exact: opts.PruneMode == PruneExact,
		Probe: opts.PruneProbe,
	}

	for _, r := range relOrder {
		gs := relGroups[r]
		for lo := 0; lo < len(gs); lo += blockRows {
			hi := lo + blockRows
			if hi > len(gs) {
				hi = len(gs)
			}
			blocks = append(blocks, rankBlock{rel: r, groups: gs[lo:hi]})
			if !pruneOn {
				stats.BatchedSweeps++
				stats.BatchRows += hi - lo
			}
		}
	}

	scores := make([]float32, len(candidates))
	if workers > len(blocks) {
		workers = len(blocks)
	}
	blockCh := make(chan rankBlock)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var egroups []eval.Group
			var pst eval.PruneStats
			for b := range blockCh {
				if ctx.Err() != nil {
					return
				}
				egroups = egroups[:0]
				for _, g := range b.groups {
					objects := make([]kg.EntityID, len(g.idx))
					for j, i := range g.idx {
						objects[j] = candidates[i].O
					}
					egroups = append(egroups, eval.Group{S: g.s, Objects: objects})
				}
				var rs [][]int
				var ss [][]float32
				if pruneOn {
					var st eval.PruneStats
					rs, ss, st = pruner.RankObjectsPruned(b.rel, egroups, opts.TopN, pruneCfg)
					pst.CellsPruned += st.CellsPruned
					pst.PrescreenRows += st.PrescreenRows
				} else {
					rs, ss = ranker.RankObjectsBatch(b.rel, egroups)
				}
				for gi, g := range b.groups {
					for j, i := range g.idx {
						ranks[i] = rs[gi][j]
						scores[i] = ss[gi][j]
					}
				}
			}
			if pst != (eval.PruneStats{}) {
				mu.Lock()
				stats.CellsPruned += pst.CellsPruned
				stats.PrescreenRows += pst.PrescreenRows
				mu.Unlock()
			}
		}()
	}
feed:
	for _, b := range blocks {
		select {
		case blockCh <- b:
		case <-ctx.Done():
			break feed
		}
	}
	close(blockCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, rankStats{}, err
	}
	return ranks, scores, stats, nil
}

// rankAllGrouped is the pre-batching scheduler: whole (s, r) groups dispatch
// to workers and each is ranked by its own RankObjects sweep. It is kept as
// the ablation baseline and the DisableBatchedRanking fallback.
func rankAllGrouped(ctx context.Context, ranker objectRanker, candidates []kg.Triple, groups []*srGroup, ranks []int, workers int) error {
	groupCh := make(chan *srGroup)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var objects []kg.EntityID
			for g := range groupCh {
				if ctx.Err() != nil {
					return
				}
				objects = objects[:0]
				for _, i := range g.idx {
					objects = append(objects, candidates[i].O)
				}
				rs := ranker.RankObjects(g.s, g.r, objects)
				for j, i := range g.idx {
					ranks[i] = rs[j]
				}
			}
		}()
	}
feed:
	for _, g := range groups {
		select {
		case groupCh <- g:
		case <-ctx.Done():
			break feed
		}
	}
	close(groupCh)
	wg.Wait()
	return ctx.Err()
}
