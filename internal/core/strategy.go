// Package core implements the paper's primary contribution: the fact
// discovery algorithm (Algorithm 1, "DiscoverFacts") and the six candidate
// sampling strategies it evaluates — UNIFORM RANDOM, ENTITY FREQUENCY,
// GRAPH DEGREE, CLUSTERING COEFFICIENT, CLUSTERING TRIANGLES and
// CLUSTERING SQUARES.
//
// Given a trained KGE model M and the knowledge graph G it was trained on,
// fact discovery finds triples in the complement of G that M considers
// highly plausible, without any input queries: for each relation it samples
// candidate subjects and objects according to a strategy, builds the mesh
// grid of candidate triples, drops the ones already in G, ranks the rest
// against their object-side corruptions with M, and keeps candidates ranked
// within top_n.
package core

import (
	"fmt"

	"repro/internal/graphstats"
	"repro/internal/kg"
)

// Strategy assigns sampling weights to candidate subject and object
// entities per relation. Bind attaches the graph; Weights is then called
// once per relation, inside the discovery loop.
//
// Faithful to Algorithm 1 (line 7 sits inside the per-relation loop), the
// graph-statistic strategies recompute their statistics on every Weights
// call by default — this is precisely what makes CLUSTERING COEFFICIENT and
// CLUSTERING TRIANGLES slow in the paper's Figure 2 and what couples
// discovery runtime to the relation count. Strategies that support it can
// memoize the statistics across relations via SetCacheWeights (the
// weight-caching ablation).
type Strategy interface {
	// Name returns the canonical strategy name as used in the paper.
	Name() string
	// Bind attaches the knowledge graph the strategy will sample from.
	Bind(g *kg.Graph)
	// Weights returns, for relation r, the candidate entities on each side
	// together with their unnormalized sampling weights. Entities and
	// weights are parallel slices; weights must be non-negative. The
	// candidate pools are the unique entities observed on each side of r in
	// the graph, following AmpliGraph's discover_facts.
	Weights(r kg.RelationID) (subjects []kg.EntityID, subjectW []float64, objects []kg.EntityID, objectW []float64)
}

// WeightCacher is implemented by strategies whose graph-level statistics
// can be memoized across relations (the node-statistic strategies). Caching
// departs from Algorithm 1's per-relation recomputation; it exists for the
// ablation study.
type WeightCacher interface {
	SetCacheWeights(cache bool)
}

// StrategyNames lists the six strategies in the paper's order.
func StrategyNames() []string {
	return []string{
		"uniform_random",
		"entity_frequency",
		"graph_degree",
		"cluster_coefficient",
		"cluster_triangles",
		"cluster_squares",
	}
}

// StrategyByName constructs a strategy from its canonical name.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "uniform_random":
		return NewUniformRandom(), nil
	case "entity_frequency":
		return NewEntityFrequency(), nil
	case "graph_degree":
		return NewGraphDegree(), nil
	case "cluster_coefficient":
		return NewClusteringCoefficient(), nil
	case "cluster_triangles":
		return NewClusteringTriangles(), nil
	case "cluster_squares":
		return NewClusteringSquares(), nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q (supported: %v)", name, StrategyNames())
	}
}

// uniformRandom assigns every entity on a side equal probability
// (Equation 1). Note that an entity appearing on both sides can still end
// up with different probabilities, because the pools differ in size.
type uniformRandom struct{ g *kg.Graph }

// NewUniformRandom returns the UNIFORM RANDOM strategy — the paper's
// baseline.
func NewUniformRandom() Strategy { return &uniformRandom{} }

func (s *uniformRandom) Name() string     { return "uniform_random" }
func (s *uniformRandom) Bind(g *kg.Graph) { s.g = g }

func (s *uniformRandom) Weights(r kg.RelationID) ([]kg.EntityID, []float64, []kg.EntityID, []float64) {
	subs := s.g.SideEntities(r, kg.SubjectSide)
	objs := s.g.SideEntities(r, kg.ObjectSide)
	return subs, constWeights(len(subs)), objs, constWeights(len(objs))
}

func constWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// entityFrequency weights each entity by its occurrence count on that side
// of the relation (Equation 2): frequent entities are sampled more often.
type entityFrequency struct{ g *kg.Graph }

// NewEntityFrequency returns the ENTITY FREQUENCY strategy.
func NewEntityFrequency() Strategy { return &entityFrequency{} }

func (s *entityFrequency) Name() string     { return "entity_frequency" }
func (s *entityFrequency) Bind(g *kg.Graph) { s.g = g }

func (s *entityFrequency) Weights(r kg.RelationID) ([]kg.EntityID, []float64, []kg.EntityID, []float64) {
	subs := s.g.SideEntities(r, kg.SubjectSide)
	objs := s.g.SideEntities(r, kg.ObjectSide)
	sw := make([]float64, len(subs))
	for i, e := range subs {
		sw[i] = float64(s.g.SideCount(r, kg.SubjectSide, e))
	}
	ow := make([]float64, len(objs))
	for i, e := range objs {
		ow[i] = float64(s.g.SideCount(r, kg.ObjectSide, e))
	}
	return subs, sw, objs, ow
}

// nodeStatStrategy is the shared shape of the strategies whose weight is a
// global (side-independent) node statistic: GRAPH DEGREE, CLUSTERING
// COEFFICIENT, CLUSTERING TRIANGLES, CLUSTERING SQUARES. Per Algorithm 1,
// the statistic is recomputed on every Weights call; SetCacheWeights(true)
// memoizes it for the ablation. If every candidate on a side has zero
// weight (possible for triangle-based statistics on sparse graphs), the
// side falls back to uniform so sampling remains well defined.
type nodeStatStrategy struct {
	name string
	// compute derives the per-entity statistic. The undirected projection
	// is built lazily through the provider so degree-style statistics (the
	// paper's "linear time" group) never pay for it.
	compute func(g *kg.Graph, undirected func() *graphstats.Undirected) []float64

	g     *kg.Graph
	cache bool
	stat  []float64 // valid only when cache is set and stat != nil
}

func (s *nodeStatStrategy) Name() string { return s.name }

func (s *nodeStatStrategy) Bind(g *kg.Graph) {
	s.g = g
	s.stat = nil
}

// SetCacheWeights implements WeightCacher.
func (s *nodeStatStrategy) SetCacheWeights(cache bool) {
	s.cache = cache
	if !cache {
		s.stat = nil
	}
}

func (s *nodeStatStrategy) statistics() []float64 {
	if s.cache && s.stat != nil {
		return s.stat
	}
	g := s.g
	stat := s.compute(g, func() *graphstats.Undirected { return graphstats.BuildUndirected(g) })
	if s.cache {
		s.stat = stat
	}
	return stat
}

func (s *nodeStatStrategy) Weights(r kg.RelationID) ([]kg.EntityID, []float64, []kg.EntityID, []float64) {
	stat := s.statistics()
	subs := s.g.SideEntities(r, kg.SubjectSide)
	objs := s.g.SideEntities(r, kg.ObjectSide)
	return subs, project(stat, subs), objs, project(stat, objs)
}

func project(stat []float64, pool []kg.EntityID) []float64 {
	w := make([]float64, len(pool))
	var sum float64
	for i, e := range pool {
		if int(e) < len(stat) {
			w[i] = stat[e]
		}
		sum += w[i]
	}
	if sum == 0 {
		return constWeights(len(pool))
	}
	return w
}

// NewGraphDegree returns the GRAPH DEGREE strategy (Equation 3): weight
// proportional to total (in+out) degree, identical on both sides.
func NewGraphDegree() Strategy {
	return &nodeStatStrategy{
		name: "graph_degree",
		compute: func(g *kg.Graph, _ func() *graphstats.Undirected) []float64 {
			w := make([]float64, g.NumEntities())
			for e := range w {
				w[e] = float64(g.Degree(kg.EntityID(e)))
			}
			return w
		},
	}
}

// NewClusteringTriangles returns the CLUSTERING TRIANGLES strategy
// (Equation 4): weight proportional to the local triangle count T(v) on the
// undirected homogeneous projection.
func NewClusteringTriangles() Strategy {
	return &nodeStatStrategy{
		name: "cluster_triangles",
		compute: func(_ *kg.Graph, undirected func() *graphstats.Undirected) []float64 {
			tri := undirected().Triangles()
			w := make([]float64, len(tri))
			for i, t := range tri {
				w[i] = float64(t)
			}
			return w
		},
	}
}

// NewClusteringCoefficient returns the CLUSTERING COEFFICIENT strategy
// (Equation 5): weight proportional to the local clustering coefficient
// c(v) = 2T(v)/(deg(v)(deg(v)−1)).
func NewClusteringCoefficient() Strategy {
	return &nodeStatStrategy{
		name: "cluster_coefficient",
		compute: func(_ *kg.Graph, undirected func() *graphstats.Undirected) []float64 {
			return undirected().LocalClustering(nil)
		},
	}
}

// NewClusteringSquares returns the CLUSTERING SQUARES strategy (Equation 6):
// weight proportional to the squares clustering coefficient c₄(v). Its
// weight computation is orders of magnitude more expensive than the other
// strategies' — the reason the paper excluded it after a 54-hour run; the
// exclusion experiment (X1) measures exactly this.
func NewClusteringSquares() Strategy {
	return &nodeStatStrategy{
		name: "cluster_squares",
		compute: func(_ *kg.Graph, undirected func() *graphstats.Undirected) []float64 {
			return undirected().SquareClustering()
		},
	}
}
