package core

import (
	"repro/internal/graphstats"
	"repro/internal/kg"
)

// This file implements the first future-work direction from the paper's §6:
// "the development of new fact discovery methods and sampling strategies
// that explore the sparse areas of KGs. This resembles the exploration vs.
// exploitation dilemma always encountered in recommendation systems."
//
// Two extension strategies (not part of the paper's evaluated six; they are
// kept out of StrategyNames so the reproduction stays faithful):
//
//   - INVERSE DEGREE: pure exploration — weight inversely proportional to
//     popularity, targeting exactly the long-tail entities the paper's §6
//     observes are left out by every popularity-based strategy.
//   - MIXED EXPLORATION (ε-greedy): a (1−ε)/ε blend of GRAPH DEGREE and
//     INVERSE DEGREE probability mass — the standard explore/exploit
//     compromise from recommender systems the paper alludes to.

// ExtensionStrategyNames lists the strategies implemented beyond the
// paper's six (from its future-work section).
func ExtensionStrategyNames() []string {
	return []string{"inverse_degree", "mixed_exploration"}
}

// AllStrategyNames returns the paper's strategies followed by the
// extensions.
func AllStrategyNames() []string {
	return append(StrategyNames(), ExtensionStrategyNames()...)
}

// ExtendedStrategyByName resolves both the paper's strategies and the
// extensions. MIXED EXPLORATION uses ε = 0.3; construct NewMixedExploration
// directly for other values.
func ExtendedStrategyByName(name string) (Strategy, error) {
	switch name {
	case "inverse_degree":
		return NewInverseDegree(), nil
	case "mixed_exploration":
		return NewMixedExploration(0.3), nil
	default:
		return StrategyByName(name)
	}
}

// inverseDegreeStat computes 1/(1+deg(x)) for every entity.
func inverseDegreeStat(g *kg.Graph) []float64 {
	w := make([]float64, g.NumEntities())
	for e := range w {
		w[e] = 1 / (1 + float64(g.Degree(kg.EntityID(e))))
	}
	return w
}

// degreeStat computes deg(x) for every entity (the GRAPH DEGREE statistic).
func degreeStat(g *kg.Graph) []float64 {
	w := make([]float64, g.NumEntities())
	for e := range w {
		w[e] = float64(g.Degree(kg.EntityID(e)))
	}
	return w
}

// NewInverseDegree returns the INVERSE DEGREE exploration strategy:
// weight(x) = 1/(1 + deg(x)). Rarely-connected entities are sampled most;
// the +1 keeps every weight positive so the distribution is always well
// formed.
func NewInverseDegree() Strategy {
	return &nodeStatStrategy{
		name: "inverse_degree",
		compute: func(g *kg.Graph, _ func() *graphstats.Undirected) []float64 {
			return inverseDegreeStat(g)
		},
	}
}

// NewMixedExploration returns the ε-greedy blend: a fraction ε of the
// probability mass is distributed by INVERSE DEGREE (exploration) and the
// rest by GRAPH DEGREE (exploitation). epsilon is clamped to [0, 1].
func NewMixedExploration(epsilon float64) Strategy {
	if epsilon < 0 {
		epsilon = 0
	}
	if epsilon > 1 {
		epsilon = 1
	}
	return &nodeStatStrategy{
		name: "mixed_exploration",
		compute: func(g *kg.Graph, _ func() *graphstats.Undirected) []float64 {
			exploit := normalizeMass(degreeStat(g))
			explore := normalizeMass(inverseDegreeStat(g))
			w := make([]float64, len(exploit))
			for i := range w {
				w[i] = (1-epsilon)*exploit[i] + epsilon*explore[i]
			}
			return w
		},
	}
}

// normalizeMass scales xs to sum to 1 (no-op on a zero vector).
func normalizeMass(xs []float64) []float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return xs
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}
