package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/kg"
)

// TestRankAllCancelledReturnsError is the regression test for the
// cancellation bug: rankAll used to bail out of its workers on a cancelled
// context and silently return the zero-initialized ranks slice, and rank-0
// candidates pass every `rank <= TopN` filter, so DiscoverFacts fabricated
// Rank-0 "facts". A cancelled ranking stage must surface ctx.Err() instead.
func TestRankAllCancelledReturnsError(t *testing.T) {
	ds, m := tinyTrained(t)
	ranker := eval.NewRanker(m, nil)
	candidates := make([]kg.Triple, 0, 64)
	n := kg.EntityID(ds.Train.NumEntities())
	for s := kg.EntityID(0); s < 8 && s < n; s++ {
		for o := kg.EntityID(0); o < 8 && o < n; o++ {
			candidates = append(candidates, kg.Triple{S: s, R: 0, O: o})
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ranks, _, _, err := rankAll(ctx, ranker, candidates, m.NumEntities(), Options{Workers: 2})
	if err == nil {
		t.Fatal("rankAll on cancelled context returned nil error")
	}
	if ranks != nil {
		t.Fatalf("rankAll on cancelled context returned partial ranks %v", ranks[:4])
	}

	// And DiscoverFacts must propagate the error rather than return facts.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if res, err := DiscoverFacts(ctx2, m, ds.Train, NewUniformRandom(), Options{}); err == nil {
		for _, f := range res.Facts {
			if f.Rank == 0 {
				t.Fatal("cancelled discovery returned a rank-0 fact")
			}
		}
	}
}

// TestRankAllMatchesPerCandidate asserts the grouped scheduler assigns every
// candidate exactly the rank the per-candidate protocol would, in order.
func TestRankAllMatchesPerCandidate(t *testing.T) {
	ds, m := tinyTrained(t)
	ranker := eval.NewRanker(m, ds.All())
	var candidates []kg.Triple
	n := kg.EntityID(ds.Train.NumEntities())
	for s := kg.EntityID(0); s < 6 && s < n; s++ {
		for o := kg.EntityID(0); o < 10 && o < n; o++ {
			candidates = append(candidates, kg.Triple{S: s, R: 1, O: o})
		}
	}
	ranks, scores, rstats, err := rankAll(context.Background(), ranker, candidates, m.NumEntities(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[kg.EntityID]struct{})
	for _, c := range candidates {
		distinct[c.S] = struct{}{}
	}
	if rstats.Sweeps != len(distinct) {
		t.Errorf("sweeps = %d, want one per distinct (s, r) pair = %d", rstats.Sweeps, len(distinct))
	}
	if rstats.BatchRows != len(distinct) {
		t.Errorf("batch rows = %d, want every group batched = %d", rstats.BatchRows, len(distinct))
	}
	if rstats.BatchedSweeps < 1 || rstats.BatchedSweeps > rstats.BatchRows {
		t.Errorf("batched sweeps = %d, want in [1, %d]", rstats.BatchedSweeps, rstats.BatchRows)
	}
	if len(scores) != len(candidates) {
		t.Fatalf("scores length %d, want %d", len(scores), len(candidates))
	}
	for i, c := range candidates {
		if want := ranker.RankObject(c); ranks[i] != want {
			t.Fatalf("candidate %d (%v): grouped rank %d != per-candidate %d", i, c, ranks[i], want)
		}
	}
}

// TestDiscoverFactsGroupedStats checks the new instrumentation: the sweep
// count never exceeds the number of candidates ranked (it is the number of
// distinct (s, r) groups) and the grouped-candidate tally matches Generated.
func TestDiscoverFactsGroupedStats(t *testing.T) {
	res := discover(t, Options{TopN: 40, MaxCandidates: 60, Seed: 21})
	if res.Stats.GroupedCandidates != res.Stats.Generated {
		t.Errorf("GroupedCandidates = %d, want Generated = %d",
			res.Stats.GroupedCandidates, res.Stats.Generated)
	}
	if res.Stats.ScoreSweeps <= 0 {
		t.Fatal("ScoreSweeps not recorded")
	}
	if res.Stats.ScoreSweeps > res.Stats.GroupedCandidates {
		t.Errorf("ScoreSweeps %d > GroupedCandidates %d: grouping saved nothing",
			res.Stats.ScoreSweeps, res.Stats.GroupedCandidates)
	}
}
