package core

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

// tinyTrained trains a small DistMult model on the tiny synthetic dataset.
// Shared across tests via sync-once-like caching in the test binary.
var cachedDS *kg.Dataset
var cachedModel kge.Trainable

func tinyTrained(t *testing.T) (*kg.Dataset, kge.Trainable) {
	t.Helper()
	if cachedModel != nil {
		return cachedDS, cachedModel
	}
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          16,
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("new model: %v", err)
	}
	if _, err := train.Run(context.Background(), m, ds, train.Config{
		Epochs: 15, BatchSize: 64, Seed: 5,
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	cachedDS, cachedModel = ds, m
	return ds, m
}

func discover(t *testing.T, opts Options) *Result {
	t.Helper()
	ds, m := tinyTrained(t)
	strategy := NewEntityFrequency()
	res, err := DiscoverFacts(context.Background(), m, ds.Train, strategy, opts)
	if err != nil {
		t.Fatalf("DiscoverFacts: %v", err)
	}
	return res
}

func TestDiscoverFactsBasicInvariants(t *testing.T) {
	ds, _ := tinyTrained(t)
	res := discover(t, Options{TopN: 30, MaxCandidates: 50, Seed: 2})

	if len(res.Facts) == 0 {
		t.Fatal("no facts discovered")
	}
	for _, f := range res.Facts {
		// Line 12: discovered facts are not in the training graph.
		if ds.Train.Contains(f.Triple) {
			t.Fatalf("discovered fact %v already in G", f.Triple)
		}
		// Line 15: every returned fact respects the quality threshold.
		if f.Rank < 1 || f.Rank > 30 {
			t.Fatalf("fact rank %d outside [1, top_n]", f.Rank)
		}
	}
	// Output is sorted by rank (best first).
	for i := 1; i < len(res.Facts); i++ {
		if res.Facts[i-1].Rank > res.Facts[i].Rank {
			t.Fatal("facts not sorted by rank")
		}
	}
	if res.Stats.Relations != ds.Train.NumRelations() {
		t.Errorf("iterated %d relations, want %d", res.Stats.Relations, ds.Train.NumRelations())
	}
	if res.Stats.Total <= 0 {
		t.Error("total runtime not recorded")
	}
}

func TestDiscoverFactsRespectsMaxCandidates(t *testing.T) {
	res := discover(t, Options{TopN: 1000, MaxCandidates: 40, Seed: 3})
	ds, _ := tinyTrained(t)
	perRelation := make(map[kg.RelationID]int)
	for _, f := range res.Facts {
		perRelation[f.Triple.R]++
	}
	for r, n := range perRelation {
		if n > 40 {
			t.Errorf("relation %d produced %d facts > max_candidates 40", r, n)
		}
	}
	if res.Stats.Generated > 40*ds.Train.NumRelations() {
		t.Errorf("generated %d candidates > bound %d", res.Stats.Generated, 40*ds.Train.NumRelations())
	}
}

func TestDiscoverFactsRelationsSubset(t *testing.T) {
	res := discover(t, Options{TopN: 50, MaxCandidates: 30, Seed: 4, Relations: []kg.RelationID{0, 2}})
	for _, f := range res.Facts {
		if f.Triple.R != 0 && f.Triple.R != 2 {
			t.Fatalf("fact for unrequested relation %d", f.Triple.R)
		}
	}
	if res.Stats.Relations != 2 {
		t.Errorf("iterated %d relations, want 2", res.Stats.Relations)
	}
}

func TestDiscoverFactsDeterministicWithSeed(t *testing.T) {
	a := discover(t, Options{TopN: 40, MaxCandidates: 30, Seed: 7})
	b := discover(t, Options{TopN: 40, MaxCandidates: 30, Seed: 7})
	if len(a.Facts) != len(b.Facts) {
		t.Fatalf("same seed, different fact counts: %d vs %d", len(a.Facts), len(b.Facts))
	}
	for i := range a.Facts {
		if a.Facts[i] != b.Facts[i] {
			t.Fatalf("same seed, different facts at %d: %v vs %v", i, a.Facts[i], b.Facts[i])
		}
	}
	c := discover(t, Options{TopN: 40, MaxCandidates: 30, Seed: 8})
	same := len(a.Facts) == len(c.Facts)
	if same {
		for i := range a.Facts {
			if a.Facts[i] != c.Facts[i] {
				same = false
				break
			}
		}
	}
	if same && len(a.Facts) > 3 {
		t.Error("different seeds produced identical output (suspicious)")
	}
}

func TestDiscoverFactsTopNFiltersQuality(t *testing.T) {
	loose := discover(t, Options{TopN: 1000, MaxCandidates: 50, Seed: 5})
	tight := discover(t, Options{TopN: 5, MaxCandidates: 50, Seed: 5})
	if len(tight.Facts) > len(loose.Facts) {
		t.Error("tighter top_n produced more facts")
	}
	// Figure 8(b)'s shape: a tighter threshold yields a better (or equal) MRR.
	if len(tight.Facts) > 0 && tight.MRR() < loose.MRR() {
		t.Errorf("tight top_n MRR %.4f < loose %.4f", tight.MRR(), loose.MRR())
	}
}

func TestDiscoverFactsExtraFilter(t *testing.T) {
	ds, m := tinyTrained(t)
	// Run once without a filter, then forbid everything it found.
	base := discover(t, Options{TopN: 50, MaxCandidates: 40, Seed: 6})
	if len(base.Facts) == 0 {
		t.Skip("no facts to filter")
	}
	forbidden := kg.NewGraphWithDicts(ds.Train.Entities, ds.Train.Relations)
	for _, f := range base.Facts {
		forbidden.Add(f.Triple)
	}
	res, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(), Options{
		TopN: 50, MaxCandidates: 40, Seed: 6, Filter: forbidden,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Facts {
		if forbidden.Contains(f.Triple) {
			t.Fatalf("filtered triple %v re-discovered", f.Triple)
		}
	}
}

func TestDiscoverFactsCacheWeightsEquivalent(t *testing.T) {
	ds, m := tinyTrained(t)
	run := func(cache bool) *Result {
		res, err := DiscoverFacts(context.Background(), m, ds.Train, NewClusteringTriangles(), Options{
			TopN: 50, MaxCandidates: 30, Seed: 9, CacheWeights: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	cached := run(true)
	if len(plain.Facts) != len(cached.Facts) {
		t.Fatalf("weight caching changed results: %d vs %d facts", len(plain.Facts), len(cached.Facts))
	}
	for i := range plain.Facts {
		if plain.Facts[i] != cached.Facts[i] {
			t.Fatalf("weight caching changed fact %d", i)
		}
	}
}

func TestDiscoverFactsRankFiltered(t *testing.T) {
	ds, m := tinyTrained(t)
	res, err := DiscoverFacts(context.Background(), m, ds.Train, NewUniformRandom(), Options{
		TopN: 30, MaxCandidates: 30, Seed: 10, RankFiltered: true, Filter: kg.Merge(ds.Valid, ds.Test),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Facts {
		if f.Rank < 1 || f.Rank > 30 {
			t.Fatalf("filtered rank %d out of range", f.Rank)
		}
	}
}

func TestDiscoverFactsContextCancellation(t *testing.T) {
	ds, m := tinyTrained(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DiscoverFacts(ctx, m, ds.Train, NewUniformRandom(), Options{}); err == nil {
		t.Fatal("expected context error")
	}
}

func TestDiscoverFactsModelGraphMismatch(t *testing.T) {
	ds, _ := tinyTrained(t)
	small, err := kge.New("distmult", kge.Config{NumEntities: 2, NumRelations: 1, Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverFacts(context.Background(), small, ds.Train, NewUniformRandom(), Options{}); err == nil {
		t.Fatal("expected error for model/graph entity mismatch")
	}
}

func TestStatsFactsPerHour(t *testing.T) {
	s := Stats{Total: 30 * 60 * 1e9} // 30 minutes in nanoseconds
	if got := s.FactsPerHour(100); got != 200 {
		t.Errorf("FactsPerHour = %g, want 200", got)
	}
	var zero Stats
	if zero.FactsPerHour(5) != 0 {
		t.Error("zero-duration FactsPerHour should be 0")
	}
}

func TestResultRanksAndMRR(t *testing.T) {
	r := &Result{Facts: []Fact{{Rank: 1}, {Rank: 4}}}
	ranks := r.Ranks()
	if len(ranks) != 2 || ranks[0] != 1 || ranks[1] != 4 {
		t.Fatalf("Ranks = %v", ranks)
	}
	want := (1.0 + 0.25) / 2
	if got := r.MRR(); got != want {
		t.Errorf("MRR = %g, want %g", got, want)
	}
}

func TestDiscoverFactsProbabilityThreshold(t *testing.T) {
	ds, m := tinyTrained(t)
	// Calibrate on the validation split (Definition 2.1's P(t) > b filter).
	cal, err := eval.FitPlatt(m, ds.Valid, ds.All(), eval.CalibrationOptions{Seed: 3})
	if err != nil {
		t.Fatalf("FitPlatt: %v", err)
	}
	base, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(), Options{
		TopN: 40, MaxCandidates: 40, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(), Options{
		TopN: 40, MaxCandidates: 40, Seed: 12,
		Calibrator: cal.Prob, MinProbability: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Facts) > len(base.Facts) {
		t.Errorf("probability filter added facts: %d > %d", len(strict.Facts), len(base.Facts))
	}
	for _, f := range strict.Facts {
		if p := cal.Prob(m.Score(f.Triple)); p <= 0.5 {
			t.Fatalf("fact %v passed with probability %.3f <= 0.5", f.Triple, p)
		}
	}
	// Every strict fact must also be a base fact (pure additional filter).
	inBase := make(map[kg.Triple]struct{}, len(base.Facts))
	for _, f := range base.Facts {
		inBase[f.Triple] = struct{}{}
	}
	for _, f := range strict.Facts {
		if _, ok := inBase[f.Triple]; !ok {
			t.Fatalf("probability-filtered fact %v not in base result", f.Triple)
		}
	}
}

func TestGenerationStopsAtMaxIterations(t *testing.T) {
	// With a single possible candidate pair and a huge max_candidates, the
	// generation loop must stop after MaxIterations rather than spinning.
	g := kg.NewGraph()
	g.Entities.Intern("a")
	g.Entities.Intern("b")
	g.Entities.Intern("c")
	g.Relations.Intern("r")
	g.Add(kg.Triple{S: 0, R: 0, O: 1})
	m, err := kge.New("distmult", kge.Config{NumEntities: 3, NumRelations: 1, Dim: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverFacts(context.Background(), m, g, NewUniformRandom(), Options{
		TopN: 3, MaxCandidates: 10000, MaxIterations: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations > 5 {
		t.Errorf("iterations = %d, want <= 5", res.Stats.Iterations)
	}
}
