package core

import (
	"context"
	"testing"

	"repro/internal/kge"
	"repro/internal/prune"
)

// TestDiscoverFactsPrunedEquivalence is the end-to-end byte-identity claim
// behind -prune=exact: exact-mode pruned discovery finds exactly the facts
// (triples and ranks, in canonical order) of the dense run, under both
// ranking protocols and both with an in-process index build and a prebuilt
// index.
func TestDiscoverFactsPrunedEquivalence(t *testing.T) {
	_, m := tinyTrained(t)
	sw := m.(kge.ObjectSweeper)
	ix, err := prune.Build(sw, kge.Fingerprint(m), prune.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, filtered := range []bool{false, true} {
		base := Options{TopN: 5, MaxCandidates: 60, Seed: 21, RankFiltered: filtered}
		dense := discover(t, base)

		for _, prebuilt := range []bool{false, true} {
			opts := base
			opts.PruneMode = PruneExact
			if prebuilt {
				opts.PruneIndex = ix
			}
			pruned := discover(t, opts)

			if len(pruned.Facts) != len(dense.Facts) {
				t.Fatalf("filtered=%v prebuilt=%v: pruned found %d facts, dense %d",
					filtered, prebuilt, len(pruned.Facts), len(dense.Facts))
			}
			for i := range dense.Facts {
				if pruned.Facts[i] != dense.Facts[i] {
					t.Fatalf("filtered=%v prebuilt=%v: fact %d differs: pruned %+v dense %+v",
						filtered, prebuilt, i, pruned.Facts[i], dense.Facts[i])
				}
			}
		}
	}

	// The dense run must not report prune work, and with this small TopN the
	// pruned run should have exercised the index.
	dense := discover(t, Options{TopN: 5, MaxCandidates: 60, Seed: 21})
	if dense.Stats.CellsPruned != 0 || dense.Stats.PrescreenRows != 0 {
		t.Errorf("dense run recorded prune stats (%d, %d), want zero",
			dense.Stats.CellsPruned, dense.Stats.PrescreenRows)
	}
	pruned := discover(t, Options{TopN: 5, MaxCandidates: 60, Seed: 21, PruneMode: PruneExact, PruneIndex: ix})
	if pruned.Stats.BatchedSweeps != 0 || pruned.Stats.BatchRows != 0 {
		t.Errorf("pruned run recorded batch sweeps (%d, %d), want zero",
			pruned.Stats.BatchedSweeps, pruned.Stats.BatchRows)
	}
	// The prescreen filter runs for every visited cell once the frontier is
	// full, so zero here means the stats pipeline lost the searcher counters.
	if pruned.Stats.PrescreenRows == 0 {
		t.Error("pruned run reported zero prescreen rows — searcher stats were dropped")
	}
	var perRelCells, perRelRows int
	for _, rel := range pruned.Stats.PerRelation {
		perRelCells += rel.CellsPruned
		perRelRows += rel.PrescreenRows
	}
	if perRelCells != pruned.Stats.CellsPruned || perRelRows != pruned.Stats.PrescreenRows {
		t.Errorf("per-relation prune stats (%d, %d) do not sum to totals (%d, %d)",
			perRelCells, perRelRows, pruned.Stats.CellsPruned, pruned.Stats.PrescreenRows)
	}
}

// TestDiscoverFactsPrunedApprox pins the approximate mode's one-sided error:
// the frontier built from a capped probe budget can only under-count the
// corruptions outscoring a candidate, never over-count them, so every fact
// the dense run keeps is also kept by the approximate run (with an equal or
// better reported rank) — recall 1.0 against the dense output by
// construction, with precision the only thing the probe budget trades away.
func TestDiscoverFactsPrunedApprox(t *testing.T) {
	res := discover(t, Options{TopN: 5, MaxCandidates: 60, Seed: 21, PruneMode: PruneApprox, PruneProbe: 1})
	dense := discover(t, Options{TopN: 5, MaxCandidates: 60, Seed: 21})
	approxRank := map[[3]int32]int{}
	for _, f := range res.Facts {
		approxRank[[3]int32{int32(f.Triple.S), int32(f.Triple.R), int32(f.Triple.O)}] = f.Rank
	}
	for _, f := range dense.Facts {
		got, ok := approxRank[[3]int32{int32(f.Triple.S), int32(f.Triple.R), int32(f.Triple.O)}]
		if !ok {
			t.Fatalf("approx run lost dense fact %+v", f)
		}
		if got > f.Rank {
			t.Fatalf("approx rank %d worse than dense %d for %+v", got, f.Rank, f.Triple)
		}
	}
}

func TestDiscoverFactsPruneModeValidation(t *testing.T) {
	ds, m := tinyTrained(t)
	_, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(),
		Options{PruneMode: "sometimes"})
	if err == nil {
		t.Fatal("bogus prune mode accepted")
	}
	// "off" and "" are both the dense path.
	for _, mode := range []string{"", PruneOff} {
		if _, err := DiscoverFacts(context.Background(), m, ds.Train, NewEntityFrequency(),
			Options{TopN: 5, MaxCandidates: 20, Seed: 3, PruneMode: mode}); err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
	}
}
