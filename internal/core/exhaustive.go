package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
)

// This file implements the baseline the paper contrasts sampling against:
// exhaustive candidate generation over the complement of the KG, as assumed
// by CHAI (Borrego et al., 2019 — reference [6] in the paper), optionally
// pruned by CHAI-style rules that discard "illogical" triples before the
// expensive model inference step.
//
// The paper's introduction works out why the plain exhaustive approach
// cannot scale (|E|²·|R| − |G| candidates; thousands of years of inference
// for YAGO3-10); this implementation makes that argument measurable: it is
// correct and complete on small graphs and the benchmark suite shows the
// blow-up against sampling-based discovery.

// CandidateRule decides whether a candidate triple is worth scoring.
// Rules mirror CHAI's filtering step: cheap structural checks that discard
// obviously-unreasonable triples before model inference.
type CandidateRule interface {
	Name() string
	// Admit reports whether the candidate should be kept.
	Admit(t kg.Triple) bool
}

// DomainRangeRule admits (s, r, o) only if s has been observed as a subject
// of r and o as an object of r somewhere in the graph — the closed-world
// analogue of an ontology's rdfs:domain / rdfs:range constraint, learned
// from the data. It is the strongest cheap filter for typed KGs: a triple
// like (person, capital_of, person) never passes.
type DomainRangeRule struct {
	subjects map[kg.RelationID]map[kg.EntityID]struct{}
	objects  map[kg.RelationID]map[kg.EntityID]struct{}
}

// NewDomainRangeRule learns the per-relation subject/object vocabularies
// from g.
func NewDomainRangeRule(g *kg.Graph) *DomainRangeRule {
	r := &DomainRangeRule{
		subjects: make(map[kg.RelationID]map[kg.EntityID]struct{}),
		objects:  make(map[kg.RelationID]map[kg.EntityID]struct{}),
	}
	for _, rel := range g.RelationIDs() {
		subs := make(map[kg.EntityID]struct{})
		for _, e := range g.SideEntities(rel, kg.SubjectSide) {
			subs[e] = struct{}{}
		}
		objs := make(map[kg.EntityID]struct{})
		for _, e := range g.SideEntities(rel, kg.ObjectSide) {
			objs[e] = struct{}{}
		}
		r.subjects[rel] = subs
		r.objects[rel] = objs
	}
	return r
}

// Name implements CandidateRule.
func (r *DomainRangeRule) Name() string { return "domain_range" }

// Admit implements CandidateRule.
func (r *DomainRangeRule) Admit(t kg.Triple) bool {
	if _, ok := r.subjects[t.R][t.S]; !ok {
		return false
	}
	_, ok := r.objects[t.R][t.O]
	return ok
}

// NoSelfLoopRule discards triples whose subject equals their object.
// Reflexive facts are almost always modelling errors in benchmark KGs.
type NoSelfLoopRule struct{}

// Name implements CandidateRule.
func (NoSelfLoopRule) Name() string { return "no_self_loop" }

// Admit implements CandidateRule.
func (NoSelfLoopRule) Admit(t kg.Triple) bool { return t.S != t.O }

// FunctionalRelationRule discards new objects for relations that are
// observed to be functional (every subject has exactly one object in g):
// if (s, r, o₀) is known, a candidate (s, r, o₁) with o₁ ≠ o₀ contradicts
// functionality. Tolerance admits relations whose subjects have on average
// at most that many objects.
type FunctionalRelationRule struct {
	functional map[kg.RelationID]bool
	known      map[[2]int64]bool // (relation, subject) with an existing object
}

// NewFunctionalRelationRule learns functional relations from g. tolerance
// ≥ 1 is the maximum average objects-per-subject for a relation to count
// as functional (1.0 = strictly functional in the observed data).
func NewFunctionalRelationRule(g *kg.Graph, tolerance float64) *FunctionalRelationRule {
	if tolerance < 1 {
		tolerance = 1
	}
	r := &FunctionalRelationRule{
		functional: make(map[kg.RelationID]bool),
		known:      make(map[[2]int64]bool),
	}
	for _, rel := range g.RelationIDs() {
		subjects := g.SideEntities(rel, kg.SubjectSide)
		triples := g.RelationTriples(rel)
		if len(subjects) == 0 {
			continue
		}
		avg := float64(len(triples)) / float64(len(subjects))
		if avg <= tolerance {
			r.functional[rel] = true
			for _, t := range triples {
				r.known[[2]int64{int64(t.R), int64(t.S)}] = true
			}
		}
	}
	return r
}

// Name implements CandidateRule.
func (r *FunctionalRelationRule) Name() string { return "functional_relation" }

// Admit implements CandidateRule.
func (r *FunctionalRelationRule) Admit(t kg.Triple) bool {
	if !r.functional[t.R] {
		return true
	}
	return !r.known[[2]int64{int64(t.R), int64(t.S)}]
}

// DefaultRules returns the rule set used by the CHAI-style baseline:
// self-loop removal, learned domain/range constraints, and strict
// functionality.
func DefaultRules(g *kg.Graph) []CandidateRule {
	return []CandidateRule{
		NoSelfLoopRule{},
		NewDomainRangeRule(g),
		NewFunctionalRelationRule(g, 1.0),
	}
}

// ExhaustiveOptions parameterizes ExhaustiveDiscover.
type ExhaustiveOptions struct {
	// TopN is the same quality threshold as in sampling-based discovery.
	// Zero means 500.
	TopN int
	// Relations restricts the sweep; nil means all relations in the graph.
	Relations []kg.RelationID
	// Rules prune candidates before inference (CHAI's filtering step).
	// Nil means no pruning — the fully naive baseline.
	Rules []CandidateRule
	// MaxCandidates aborts with an error if the post-pruning candidate
	// count would exceed it — the guard that makes the paper's scale
	// argument explicit instead of OOM-ing. Zero means 10 million.
	MaxCandidates int
	// RankFiltered selects the filtered ranking protocol.
	RankFiltered bool
	// Workers bounds ranking parallelism; zero means GOMAXPROCS.
	Workers int
}

// ExhaustiveStats instruments an exhaustive run.
type ExhaustiveStats struct {
	// ComplementSize is |E|²·|R| − |G| restricted to the swept relations:
	// the number of candidates the naive baseline must consider.
	ComplementSize int64
	// Generated is the number of candidates actually scored (after rules).
	Generated int
	// Pruned counts candidates discarded by rules.
	Pruned int64
	// RankTime and Total are wall-clock measurements.
	RankTime time.Duration
	Total    time.Duration
}

// ExhaustiveDiscover enumerates every candidate (s, r, o) over the full
// entity vocabulary for each relation (the complement of g), applies the
// pruning rules, ranks the survivors with the model, and returns the facts
// within TopN. It errors out rather than attempt an infeasible enumeration;
// use it on small graphs and as the completeness reference for the
// sampling strategies.
func ExhaustiveDiscover(ctx context.Context, model kge.Model, g *kg.Graph, opts ExhaustiveOptions) (*Result, *ExhaustiveStats, error) {
	if opts.TopN == 0 {
		opts.TopN = 500
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 10_000_000
	}
	relations := opts.Relations
	if relations == nil {
		relations = g.RelationIDs()
	}
	n := int64(g.NumEntities())
	stats := &ExhaustiveStats{
		ComplementSize: n*n*int64(len(relations)) - int64(countRelationTriples(g, relations)),
	}
	start := time.Now()

	var ranker objectRanker
	if opts.RankFiltered {
		ranker = eval.NewRanker(model, g)
	} else {
		ranker = eval.NewRanker(model, nil)
	}

	// Candidates are generated, ranked and filtered one relation at a time,
	// bounding memory by one relation's complement (n² triples) rather than
	// the whole complement.
	res := &Result{}
	candidates := make([]kg.Triple, 0, n)
	var scoreSweeps, groupedCandidates, batchedSweeps, batchRows int
	rankOpts := Options{Workers: opts.Workers, BatchBudgetBytes: DefaultBatchBudgetBytes}
	for _, r := range relations {
		candidates = candidates[:0]
		for s := int64(0); s < n; s++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			for o := int64(0); o < n; o++ {
				t := kg.Triple{S: kg.EntityID(s), R: r, O: kg.EntityID(o)}
				if g.Contains(t) {
					continue
				}
				if !admitAll(opts.Rules, t) {
					stats.Pruned++
					continue
				}
				candidates = append(candidates, t)
				if stats.Generated+len(candidates) > opts.MaxCandidates {
					return nil, nil, fmt.Errorf(
						"core: exhaustive enumeration exceeds %d candidates (complement has %d); use sampling-based DiscoverFacts",
						opts.MaxCandidates, stats.ComplementSize)
				}
			}
		}
		stats.Generated += len(candidates)

		rStart := time.Now()
		ranks, _, rstats, err := rankAll(ctx, ranker, candidates, model.NumEntities(), rankOpts)
		stats.RankTime += time.Since(rStart)
		if err != nil {
			return nil, nil, err
		}
		scoreSweeps += rstats.Sweeps
		batchedSweeps += rstats.BatchedSweeps
		batchRows += rstats.BatchRows
		groupedCandidates += len(candidates)
		for i, t := range candidates {
			if ranks[i] <= opts.TopN {
				res.Facts = append(res.Facts, Fact{Triple: t, Rank: ranks[i]})
			}
		}
	}

	SortFactsByRank(res.Facts)
	stats.Total = time.Since(start)
	res.Stats = Stats{
		Total:             stats.Total,
		RankTime:          stats.RankTime,
		Generated:         stats.Generated,
		Relations:         len(relations),
		ScoreSweeps:       scoreSweeps,
		GroupedCandidates: groupedCandidates,
		BatchedSweeps:     batchedSweeps,
		BatchRows:         batchRows,
	}
	return res, stats, nil
}

func countRelationTriples(g *kg.Graph, relations []kg.RelationID) int {
	total := 0
	for _, r := range relations {
		total += len(g.RelationTriples(r))
	}
	return total
}

func admitAll(rules []CandidateRule, t kg.Triple) bool {
	for _, rule := range rules {
		if !rule.Admit(t) {
			return false
		}
	}
	return true
}
