// Package fft implements an iterative radix-2 fast Fourier transform over
// complex128 plus the circular correlation operation that HolE's scoring
// function is built on.
//
// HolE scores a triple as f = rᵀ (s ⋆ o) where ⋆ is circular correlation:
//
//	(s ⋆ o)[k] = Σ_i s[i] · o[(i+k) mod l]
//
// Computed naively this is O(l²); via the correlation theorem it is
// O(l log l): s ⋆ o = IFFT( conj(FFT(s)) ∘ FFT(o) ). Both paths are exposed
// so the ablation benchmark can compare them, and the property tests assert
// they agree.
package fft

import "math"

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place iterative radix-2 decimation-in-time transform
// of x. len(x) must be a power of two; FFT panics otherwise because callers
// are expected to have validated sizes up front.
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT computes the inverse transform of x in place, including the 1/n
// scaling.
func IFFT(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// CircularCorrelation computes s ⋆ o into dst and returns dst. It picks the
// FFT path when the length is a power of two and the naive path otherwise.
// All three slices must have equal length; dst may alias neither input.
func CircularCorrelation(dst, s, o []float32) []float32 {
	if len(s) != len(o) || len(dst) != len(s) {
		panic("fft: CircularCorrelation length mismatch")
	}
	if IsPowerOfTwo(len(s)) {
		return circularCorrelationFFT(dst, s, o)
	}
	return CircularCorrelationNaive(dst, s, o)
}

// CircularCorrelationNaive is the O(l²) definition, kept exported for the
// ablation benchmark and as the reference implementation in tests.
func CircularCorrelationNaive(dst, s, o []float32) []float32 {
	n := len(s)
	for k := 0; k < n; k++ {
		var acc float64
		for i := 0; i < n; i++ {
			acc += float64(s[i]) * float64(o[(i+k)%n])
		}
		dst[k] = float32(acc)
	}
	return dst
}

func circularCorrelationFFT(dst, s, o []float32) []float32 {
	n := len(s)
	fs := make([]complex128, n)
	fo := make([]complex128, n)
	for i := 0; i < n; i++ {
		fs[i] = complex(float64(s[i]), 0)
		fo[i] = complex(float64(o[i]), 0)
	}
	FFT(fs)
	FFT(fo)
	for i := 0; i < n; i++ {
		fs[i] = cmplxConj(fs[i]) * fo[i]
	}
	IFFT(fs)
	for i := 0; i < n; i++ {
		dst[i] = float32(real(fs[i]))
	}
	return dst
}

func cmplxConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Convolve computes the circular convolution s * o (used by HolE gradients:
// the gradient of correlation w.r.t. one argument is a convolution/
// correlation of the other two vectors).
func Convolve(dst, s, o []float32) []float32 {
	if len(s) != len(o) || len(dst) != len(s) {
		panic("fft: Convolve length mismatch")
	}
	n := len(s)
	if IsPowerOfTwo(n) {
		fs := make([]complex128, n)
		fo := make([]complex128, n)
		for i := 0; i < n; i++ {
			fs[i] = complex(float64(s[i]), 0)
			fo[i] = complex(float64(o[i]), 0)
		}
		FFT(fs)
		FFT(fo)
		for i := 0; i < n; i++ {
			fs[i] *= fo[i]
		}
		IFFT(fs)
		for i := 0; i < n; i++ {
			dst[i] = float32(real(fs[i]))
		}
		return dst
	}
	for k := 0; k < n; k++ {
		var acc float64
		for i := 0; i < n; i++ {
			acc += float64(s[i]) * float64(o[((k-i)%n+n)%n])
		}
		dst[k] = float32(acc)
	}
	return dst
}
