package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPowerOfTwo(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want bool
	}{{1, true}, {2, true}, {4, true}, {1024, true}, {0, false}, {3, false}, {-4, false}, {6, false}} {
		if got := IsPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1, 0, 0, 0] is all ones.
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("x[%d] = %v, want 1", i, v)
		}
	}
	// FFT of constant signal concentrates into bin 0.
	y := []complex128{2, 2, 2, 2}
	FFT(y)
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Errorf("y[0] = %v, want 8", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("y[%d] = %v, want 0", i, y[i])
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for length 3")
		}
	}()
	FFT(make([]complex128, 3))
}

// Property: IFFT(FFT(x)) == x.
func TestPropertyFFTRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8)) // 2..256
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval's theorem — energy is preserved up to the 1/n factor.
func TestPropertyParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		FFT(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqEnergy/float64(n)-timeEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestCircularCorrelationKnown(t *testing.T) {
	// s = [1,0,0,0]: (s ⋆ o)[k] = o[k].
	s := []float32{1, 0, 0, 0}
	o := []float32{5, 6, 7, 8}
	dst := make([]float32, 4)
	CircularCorrelation(dst, s, o)
	for i := range o {
		if math.Abs(float64(dst[i]-o[i])) > 1e-5 {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], o[i])
		}
	}
}

// Property: the FFT path agrees with the naive definition for power-of-two
// lengths.
func TestPropertyCorrelationFFTMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6)) // 2..64
		s, o := randVec(rng, n), randVec(rng, n)
		fast := CircularCorrelation(make([]float32, n), s, o)
		slow := CircularCorrelationNaive(make([]float32, n), s, o)
		for i := range fast {
			if math.Abs(float64(fast[i]-slow[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Non-power-of-two lengths take the naive path and must still work.
func TestCorrelationNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, o := randVec(rng, 7), randVec(rng, 7)
	got := CircularCorrelation(make([]float32, 7), s, o)
	want := CircularCorrelationNaive(make([]float32, 7), s, o)
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("got[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// Property: convolution is commutative; correlation is not (in general),
// but corr(s, o)[0] == conv-free dot: (s ⋆ o)[0] == s·o.
func TestPropertyCorrelationZeroLag(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		s, o := randVec(rng, n), randVec(rng, n)
		corr := CircularCorrelation(make([]float32, n), s, o)
		var dot float64
		for i := range s {
			dot += float64(s[i]) * float64(o[i])
		}
		return math.Abs(float64(corr[0])-dot) < 1e-3*(1+math.Abs(dot))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: convolution commutes: s * o == o * s.
func TestPropertyConvolutionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{8, 7} { // FFT and naive paths
			s, o := randVec(rng, n), randVec(rng, n)
			ab := Convolve(make([]float32, n), s, o)
			ba := Convolve(make([]float32, n), o, s)
			for i := range ab {
				if math.Abs(float64(ab[i]-ba[i])) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the HolE gradient identity rᵀ(s ⋆ o) == oᵀ(r * s) — the object
// sweep in internal/kge relies on it.
func TestPropertyHolEIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(5))
		s, o, r := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		corr := CircularCorrelation(make([]float32, n), s, o)
		var lhs float64
		for i := range r {
			lhs += float64(r[i]) * float64(corr[i])
		}
		conv := Convolve(make([]float32, n), r, s)
		var rhs float64
		for i := range o {
			rhs += float64(o[i]) * float64(conv[i])
		}
		return math.Abs(lhs-rhs) < 1e-3*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
