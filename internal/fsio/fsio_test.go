package fsio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteAtomicReplacesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact")
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("generation-%d", i)
		if err := WriteAtomic(path, func(f *os.File) error {
			_, err := f.WriteString(want)
			return err
		}); err != nil {
			t.Fatalf("WriteAtomic: %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if string(got) != want {
			t.Fatalf("content %q, want %q", got, want)
		}
	}
}

func TestWriteAtomicErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("write exploded")
	err := WriteAtomic(path, func(f *os.File) error {
		f.WriteString("partial garbage")
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("error %v, want the write callback's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "original" {
		t.Fatalf("target after failed write: %q, %v; want original intact", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind after failed write", e.Name())
		}
	}
}

// TestWriteAtomicConcurrent hammers one path from many goroutines: the unique
// temp names mean the final file must be exactly one writer's complete
// payload, never an interleaving of two.
func TestWriteAtomicConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := strings.Repeat(fmt.Sprintf("writer-%d|", i), 4096)
			if err := WriteAtomic(path, func(f *os.File) error {
				_, err := f.WriteString(payload)
				return err
			}); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	matched := false
	for i := 0; i < writers; i++ {
		if string(got) == strings.Repeat(fmt.Sprintf("writer-%d|", i), 4096) {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("final content is not any single writer's complete payload (len %d)", len(got))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}
