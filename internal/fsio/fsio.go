// Package fsio provides the durable-write discipline shared by every
// persistent artifact in the repo (model checkpoints, prune sidecars): a
// uniquely-named temp file in the target directory, an fsync of the file
// before the rename, and an fsync of the parent directory after it.
//
// The three steps close three distinct failure windows:
//
//   - a unique temp name (os.CreateTemp) means two processes writing the
//     same path concurrently — kgserve and kgdiscover sharing a checkpoint's
//     sidecar, say — can never interleave writes into one file and rename a
//     corrupt hybrid into place;
//   - the file fsync means the rename can never make durable a name whose
//     content is still in the page cache, so a crash just after rename
//     cannot surface an empty or torn file on journaling filesystems that
//     order metadata ahead of data;
//   - the directory fsync makes the rename itself durable, so a crash just
//     after a successful return cannot roll the path back to its previous
//     content (or to nothing).
package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
)

// WriteAtomic writes path atomically and durably: write streams the content
// into a unique temp file in path's directory, which is fsync'd, renamed
// over path, and sealed with a directory fsync. On any error the temp file
// is removed and path is untouched.
func WriteAtomic(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp opens 0600; published artifacts keep the 0644 the previous
	// os.Create path produced (modulo umask).
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making any renames inside it durable.
// Filesystems that do not support directory fsync (EINVAL/ENOTSUP) are
// treated as success: the rename is still atomic there, durability is simply
// whatever the filesystem offers.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
