package kge

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/fsio"
)

// paramRecord is one parameter table in the canonical wire format.
type paramRecord struct {
	Name       string
	Rows, Cols int
	Data       []float32
}

// snapshot is the gob wire format for a trained model: the constructor
// configuration plus every parameter table's raw data. Loading reconstructs
// the model through New (so geometry derivations rerun) and then overwrites
// the freshly initialized parameters.
//
// Two generations of the format coexist. Legacy snapshots carried the
// Params/Shapes maps, whose gob encoding followed map iteration order, so
// identical weights could serialize to different bytes from one Save to the
// next. Canonical snapshots carry ParamList instead: a name-sorted slice of
// records, making Save a pure function of the weights. Save emits only the
// canonical form; Load accepts both.
type snapshot struct {
	ModelName string
	Config    Config
	Params    map[string][]float32 // legacy map-format snapshots only
	Shapes    map[string][2]int    // legacy map-format snapshots only
	ParamList []paramRecord        // canonical format
}

// Save serializes a trained model to w. Identical model weights always
// produce identical bytes: parameters are emitted as a name-sorted list of
// records, never as gob maps.
func Save(m Trainable, w io.Writer) error {
	snap := snapshot{ModelName: m.Name()}
	cfg, err := configOf(m)
	if err != nil {
		return err
	}
	snap.Config = cfg
	for _, p := range m.Params().List() {
		data := make([]float32, len(p.M.Data))
		copy(data, p.M.Data)
		snap.ParamList = append(snap.ParamList, paramRecord{
			Name: p.Name, Rows: p.M.Rows, Cols: p.M.Cols, Data: data,
		})
	}
	sort.Slice(snap.ParamList, func(i, j int) bool {
		return snap.ParamList[i].Name < snap.ParamList[j].Name
	})
	return gob.NewEncoder(w).Encode(snap)
}

// Load reconstructs a model previously written by Save, accepting both the
// canonical record-list format and legacy map-based snapshots.
func Load(r io.Reader) (Trainable, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("kge: decode snapshot: %w", err)
	}
	m, err := New(snap.ModelName, snap.Config)
	if err != nil {
		return nil, fmt.Errorf("kge: reconstruct %q: %w", snap.ModelName, err)
	}
	if len(snap.ParamList) > 0 {
		return m, restoreFromRecords(m, snap.ParamList)
	}
	return m, restoreFromMaps(m, snap.Params, snap.Shapes)
}

func restoreFromRecords(m Trainable, records []paramRecord) error {
	byName := make(map[string]paramRecord, len(records))
	for _, rec := range records {
		byName[rec.Name] = rec
	}
	for _, p := range m.Params().List() {
		rec, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("kge: snapshot missing parameter %q", p.Name)
		}
		if rec.Rows != p.M.Rows || rec.Cols != p.M.Cols {
			return fmt.Errorf("kge: parameter %q shape [%d %d], want [%d %d]",
				p.Name, rec.Rows, rec.Cols, p.M.Rows, p.M.Cols)
		}
		if len(rec.Data) != len(p.M.Data) {
			return fmt.Errorf("kge: parameter %q has %d scalars, want %d",
				p.Name, len(rec.Data), len(p.M.Data))
		}
		copy(p.M.Data, rec.Data)
	}
	return nil
}

func restoreFromMaps(m Trainable, params map[string][]float32, shapes map[string][2]int) error {
	for _, p := range m.Params().List() {
		data, ok := params[p.Name]
		if !ok {
			return fmt.Errorf("kge: snapshot missing parameter %q", p.Name)
		}
		shape := shapes[p.Name]
		if shape[0] != p.M.Rows || shape[1] != p.M.Cols {
			return fmt.Errorf("kge: parameter %q shape %v, want [%d %d]",
				p.Name, shape, p.M.Rows, p.M.Cols)
		}
		if len(data) != len(p.M.Data) {
			return fmt.Errorf("kge: parameter %q has %d scalars, want %d",
				p.Name, len(data), len(p.M.Data))
		}
		copy(p.M.Data, data)
	}
	return nil
}

// Fingerprint returns the SHA-256 hex digest of a model's canonical
// parameter serialization: the model name followed by every parameter table
// in name order, each contributing its name, shape, and the little-endian
// IEEE-754 bits of its data. Two models fingerprint identically exactly when
// they have the same architecture and bit-identical weights, so the digest
// is the unit of comparison for training-determinism checks.
func Fingerprint(m Trainable) string {
	h := sha256.New()
	io.WriteString(h, m.Name())
	params := append([]*Param(nil), m.Params().List()...)
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })
	var hdr [8]byte
	buf := make([]byte, 0, 4096)
	for _, p := range params {
		io.WriteString(h, "\x00")
		io.WriteString(h, p.Name)
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(p.M.Rows))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(p.M.Cols))
		h.Write(hdr[:])
		buf = buf[:0]
		for _, x := range p.M.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
			if len(buf) == cap(buf) {
				h.Write(buf)
				buf = buf[:0]
			}
		}
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SidecarPath returns the canonical path of a checkpoint's pruned-ranking
// index sidecar: the checkpoint path with ".ivf" appended. The sidecar
// (written and read by internal/prune) is pinned to the checkpoint by the
// model Fingerprint stored in its header, so a stale sidecar next to
// retrained weights is detected and rebuilt rather than trusted.
func SidecarPath(modelPath string) string { return modelPath + ".ivf" }

// SaveFile writes the model to path with the durable-write discipline
// shared by every checkpoint artifact (internal/fsio): unique temp file,
// file fsync, atomic rename, directory fsync. A crash at any point leaves
// either the previous checkpoint or the complete new one, never a torn file.
func SaveFile(m Trainable, path string) error {
	return fsio.WriteAtomic(path, func(f *os.File) error { return Save(m, f) })
}

// LoadFile reads a model from path.
func LoadFile(path string) (Trainable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// configOf recovers the constructor Config from a live model.
func configOf(m Trainable) (Config, error) {
	if mm, ok := m.(*Mapped); ok {
		// Unwrap mmap-backed models so they snapshot like any other (the
		// embedded model carries the real Config; skipInit is unexported and
		// zero-valued on reconstruction, so it never leaks into a save).
		return configOf(mm.Trainable)
	}
	switch t := m.(type) {
	case *TransE:
		return t.cfg, nil
	case *DistMult:
		return t.cfg, nil
	case *ComplEx:
		return t.cfg, nil
	case *RESCAL:
		return t.cfg, nil
	case *HolE:
		return t.cfg, nil
	case *ConvE:
		return t.cfg, nil
	default:
		return Config{}, fmt.Errorf("kge: cannot snapshot model type %T", m)
	}
}
