package kge

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the gob wire format for a trained model: the constructor
// configuration plus every parameter table's raw data. Loading reconstructs
// the model through New (so geometry derivations rerun) and then overwrites
// the freshly initialized parameters.
type snapshot struct {
	ModelName string
	Config    Config
	Params    map[string][]float32
	Shapes    map[string][2]int
}

// Save serializes a trained model to w.
func Save(m Trainable, w io.Writer) error {
	snap := snapshot{
		ModelName: m.Name(),
		Params:    make(map[string][]float32),
		Shapes:    make(map[string][2]int),
	}
	cfg, err := configOf(m)
	if err != nil {
		return err
	}
	snap.Config = cfg
	for _, p := range m.Params().List() {
		data := make([]float32, len(p.M.Data))
		copy(data, p.M.Data)
		snap.Params[p.Name] = data
		snap.Shapes[p.Name] = [2]int{p.M.Rows, p.M.Cols}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reconstructs a model previously written by Save.
func Load(r io.Reader) (Trainable, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("kge: decode snapshot: %w", err)
	}
	m, err := New(snap.ModelName, snap.Config)
	if err != nil {
		return nil, fmt.Errorf("kge: reconstruct %q: %w", snap.ModelName, err)
	}
	for _, p := range m.Params().List() {
		data, ok := snap.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("kge: snapshot missing parameter %q", p.Name)
		}
		shape := snap.Shapes[p.Name]
		if shape[0] != p.M.Rows || shape[1] != p.M.Cols {
			return nil, fmt.Errorf("kge: parameter %q shape %v, want [%d %d]",
				p.Name, shape, p.M.Rows, p.M.Cols)
		}
		if len(data) != len(p.M.Data) {
			return nil, fmt.Errorf("kge: parameter %q has %d scalars, want %d",
				p.Name, len(data), len(p.M.Data))
		}
		copy(p.M.Data, data)
	}
	return m, nil
}

// SaveFile writes the model to path, creating or truncating it.
func SaveFile(m Trainable, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(m, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (Trainable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// configOf recovers the constructor Config from a live model.
func configOf(m Trainable) (Config, error) {
	switch t := m.(type) {
	case *TransE:
		return t.cfg, nil
	case *DistMult:
		return t.cfg, nil
	case *ComplEx:
		return t.cfg, nil
	case *RESCAL:
		return t.cfg, nil
	case *HolE:
		return t.cfg, nil
	case *ConvE:
		return t.cfg, nil
	default:
		return Config{}, fmt.Errorf("kge: cannot snapshot model type %T", m)
	}
}
