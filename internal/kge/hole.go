package kge

import (
	"repro/internal/fft"
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// HolE (Nickel et al., 2016) scores a triple with circular correlation,
// inspired by holographic associative memory:
//
//	f(s, r, o) = rᵀ (s ⋆ o),   (s ⋆ o)[k] = Σᵢ sᵢ · o₍ᵢ₊ₖ₎ mod l
//
// Correlation compresses the pairwise interaction matrix s·oᵀ into a single
// l-vector, giving RESCAL-like interactions at DistMult-like cost. When l
// is a power of two the internal/fft fast path computes ⋆ in O(l log l).
// HolE is equivalent to ComplEx up to a change of basis (Hayashi & Shimbo,
// 2017) — a fact the test suite exploits as a sanity property.
type HolE struct {
	cfg Config
	ps  *ParamSet
	ent *Param
	rel *Param
}

// NewHolE constructs and initializes a HolE model.
func NewHolE(cfg Config) (*HolE, error) {
	m := &HolE{cfg: cfg, ps: NewParamSet()}
	m.ent = m.ps.Add("entity", cfg.NumEntities, cfg.Dim)
	m.rel = m.ps.Add("relation", cfg.NumRelations, cfg.Dim)
	if cfg.skipInit {
		return m, nil
	}
	rng := initRNG(cfg)
	for i := 0; i < cfg.NumEntities; i++ {
		vecmath.XavierInit(rng, m.ent.M.Row(i), cfg.Dim, cfg.Dim)
	}
	for i := 0; i < cfg.NumRelations; i++ {
		vecmath.XavierInit(rng, m.rel.M.Row(i), cfg.Dim, cfg.Dim)
	}
	return m, nil
}

// Name implements Model.
func (m *HolE) Name() string { return "hole" }

// Dim implements Model.
func (m *HolE) Dim() int { return m.cfg.Dim }

// NumEntities implements Model.
func (m *HolE) NumEntities() int { return m.cfg.NumEntities }

// NumRelations implements Model.
func (m *HolE) NumRelations() int { return m.cfg.NumRelations }

// Params implements Trainable.
func (m *HolE) Params() *ParamSet { return m.ps }

// Score implements Model.
func (m *HolE) Score(t kg.Triple) float32 {
	s := m.ent.M.Row(int(t.S))
	r := m.rel.M.Row(int(t.R))
	o := m.ent.M.Row(int(t.O))
	corr := make([]float32, m.cfg.Dim)
	fft.CircularCorrelation(corr, s, o)
	return vecmath.Dot(r, corr)
}

// ScoreWithContext implements Trainable.
func (m *HolE) ScoreWithContext(t kg.Triple) (float32, GradContext) {
	return m.Score(t), nil
}

// ScoreAllObjects implements Model. f is linear in o: f = o·(r * s) where *
// is circular convolution, so q = convolve(r, s) and scores = E·q.
func (m *HolE) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	fft.Convolve(q, m.rel.M.Row(int(r)), m.ent.M.Row(int(s)))
	return vecmath.MatVec(out, m.ent.M, q)
}

// ScoreAllSubjects implements Model. f is linear in s: f = s·(r ⋆ o), so
// q = correlate(r, o) and scores = E·q.
func (m *HolE) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	fft.CircularCorrelation(q, m.rel.M.Row(int(r)), m.ent.M.Row(int(o)))
	return vecmath.MatVec(out, m.ent.M, q)
}

// AccumulateGrad implements Trainable:
//
//	∂f/∂r = s ⋆ o, ∂f/∂s = r ⋆ o, ∂f/∂o = r * s (convolution).
func (m *HolE) AccumulateGrad(t kg.Triple, _ GradContext, upstream float32, gb *GradBuffer) {
	d := m.cfg.Dim
	s := m.ent.M.Row(int(t.S))
	r := m.rel.M.Row(int(t.R))
	o := m.ent.M.Row(int(t.O))
	tmp := make([]float32, d)
	gb.Axpy("relation", int(t.R), upstream, fft.CircularCorrelation(tmp, s, o))
	gb.Axpy("entity", int(t.S), upstream, fft.CircularCorrelation(tmp, r, o))
	gb.Axpy("entity", int(t.O), upstream, fft.Convolve(tmp, r, s))
}

// PostBatch implements Trainable (no constraints).
func (m *HolE) PostBatch() {}
