package kge

import (
	"testing"

	"repro/internal/kg"
	"repro/internal/vecmath"
)

// batchTestModels builds every model over a vocabulary large enough that the
// entity table spans several MatMat row tiles with a ragged final tile (1100
// rows; the widest tile at these dims is 680 rows), so the bit-identity
// claim is exercised across tile boundaries and the Dot tail, not just
// inside one tile.
func batchTestModels(t *testing.T) []Trainable {
	t.Helper()
	var models []Trainable
	for _, name := range ModelNames() {
		cfg := Config{NumEntities: 1100, NumRelations: 3, Dim: 12, Seed: 5}
		m, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		models = append(models, m)
	}
	return models
}

// TestScoreAllObjectsBatchBitIdentical is the contract of BatchScorer: every
// row of the batched sweep must be bit-identical (==, not approximately
// equal) to the corresponding per-subject ScoreAllObjects sweep. Discovery
// output stays byte-identical under batching if and only if this holds.
func TestScoreAllObjectsBatchBitIdentical(t *testing.T) {
	// Duplicate subjects and a non-multiple-of-4 batch size included.
	ss := []kg.EntityID{7, 0, 1099, 7, 513, 42, 680}
	for _, m := range batchTestModels(t) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			if _, ok := Model(m).(BatchScorer); !ok {
				t.Fatalf("%s does not implement BatchScorer", m.Name())
			}
			n := m.NumEntities()
			out := vecmath.NewMatrix(len(ss), n)
			ScoreAllObjectsBatch(m, ss, 1, out)
			want := make([]float32, n)
			for j, s := range ss {
				m.ScoreAllObjects(s, 1, want)
				row := out.Row(j)
				for o := range want {
					if row[o] != want[o] {
						t.Fatalf("subject %d: batch[%d] = %g, sweep = %g (not bit-identical)",
							s, o, row[o], want[o])
					}
				}
			}
		})
	}
}

// TestTransEBatchNorm2 covers TransE's squared-L2 variant, which takes a
// different distance kernel than the default L1.
func TestTransEBatchNorm2(t *testing.T) {
	m, err := New("transe", Config{NumEntities: 900, NumRelations: 2, Dim: 12, Seed: 5, Norm: 2})
	if err != nil {
		t.Fatal(err)
	}
	ss := []kg.EntityID{0, 899, 450}
	out := vecmath.NewMatrix(len(ss), m.NumEntities())
	ScoreAllObjectsBatch(m, ss, 0, out)
	want := make([]float32, m.NumEntities())
	for j, s := range ss {
		m.ScoreAllObjects(s, 0, want)
		row := out.Row(j)
		for o := range want {
			if row[o] != want[o] {
				t.Fatalf("norm2 subject %d: batch[%d] = %g, sweep = %g", s, o, row[o], want[o])
			}
		}
	}
}

// plainModel wraps a Model while hiding any BatchScorer implementation, so
// the dispatcher's generic fallback is what runs.
type plainModel struct {
	inner  Model
	sweeps int
}

func (p *plainModel) Name() string              { return p.inner.Name() }
func (p *plainModel) Dim() int                  { return p.inner.Dim() }
func (p *plainModel) NumEntities() int          { return p.inner.NumEntities() }
func (p *plainModel) NumRelations() int         { return p.inner.NumRelations() }
func (p *plainModel) Score(t kg.Triple) float32 { return p.inner.Score(t) }
func (p *plainModel) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	p.sweeps++
	return p.inner.ScoreAllObjects(s, r, out)
}
func (p *plainModel) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	return p.inner.ScoreAllSubjects(r, o, out)
}

// TestScoreAllObjectsBatchFallback: a model without the BatchScorer method
// still answers batched sweeps, via one ScoreAllObjects call per subject.
func TestScoreAllObjectsBatchFallback(t *testing.T) {
	inner, err := New("distmult", Config{NumEntities: 64, NumRelations: 2, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &plainModel{inner: inner}
	ss := []kg.EntityID{3, 9, 3}
	out := vecmath.NewMatrix(len(ss), p.NumEntities())
	ScoreAllObjectsBatch(p, ss, 1, out)
	if p.sweeps != len(ss) {
		t.Errorf("fallback ran %d sweeps, want %d", p.sweeps, len(ss))
	}
	want := make([]float32, p.NumEntities())
	for j, s := range ss {
		inner.ScoreAllObjects(s, 1, want)
		row := out.Row(j)
		for o := range want {
			if row[o] != want[o] {
				t.Fatalf("fallback subject %d: batch[%d] = %g, sweep = %g", s, o, row[o], want[o])
			}
		}
	}
}

func TestScoreAllObjectsBatchBufferPanics(t *testing.T) {
	m, err := New("distmult", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong batch buffer shape")
		}
	}()
	ScoreAllObjectsBatch(m, []kg.EntityID{0, 1}, 0, vecmath.NewMatrix(2, 5))
}
