package kge

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// perturb nudges every parameter so tests exercise real weights, not just
// the seeded initialization.
func perturb(m Trainable, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params().List() {
		for i := range p.M.Data {
			p.M.Data[i] += float32(rng.NormFloat64()) * 0.01
		}
	}
}

func TestSaveDeterministicBytes(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := New(name, testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		perturb(m, 11)
		var a, b bytes.Buffer
		if err := Save(m, &a); err != nil {
			t.Fatalf("Save(%s) #1: %v", name, err)
		}
		if err := Save(m, &b); err != nil {
			t.Fatalf("Save(%s) #2: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: repeated Save produced different bytes (%d vs %d)", name, a.Len(), b.Len())
		}
	}
}

// legacySnapshot mirrors the pre-canonical wire format, where parameters
// traveled as gob maps. Load must keep reading those checkpoints.
type legacySnapshot struct {
	ModelName string
	Config    Config
	Params    map[string][]float32
	Shapes    map[string][2]int
}

func TestLoadLegacyMapSnapshot(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := New(name, testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		perturb(m, 23)
		cfg, err := configOf(m)
		if err != nil {
			t.Fatal(err)
		}
		legacy := legacySnapshot{
			ModelName: name,
			Config:    cfg,
			Params:    make(map[string][]float32),
			Shapes:    make(map[string][2]int),
		}
		for _, p := range m.Params().List() {
			data := make([]float32, len(p.M.Data))
			copy(data, p.M.Data)
			legacy.Params[p.Name] = data
			legacy.Shapes[p.Name] = [2]int{p.M.Rows, p.M.Cols}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
			t.Fatalf("encode legacy %s: %v", name, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load legacy %s: %v", name, err)
		}
		if got, want := Fingerprint(back), Fingerprint(m); got != want {
			t.Errorf("%s: legacy roundtrip changed weights: %s vs %s", name, got, want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	m, err := New("distmult", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	perturb(m, 5)
	base := Fingerprint(m)
	if again := Fingerprint(m); again != base {
		t.Errorf("fingerprint not stable: %s vs %s", base, again)
	}

	// Save/Load must preserve the digest exactly.
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(back); got != base {
		t.Errorf("roundtrip changed fingerprint: %s vs %s", got, base)
	}

	// A single-bit weight change must change the digest.
	p := m.Params().List()[0]
	p.M.Data[0] += 1e-6
	if got := Fingerprint(m); got == base {
		t.Error("fingerprint unchanged after weight modification")
	}

	// Same weights in a different architecture must not collide.
	other, err := New("transe", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(other) == base {
		t.Error("different models share a fingerprint")
	}
}
