package kge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kg"
)

// groupCandidates mixes distinct entities, a duplicate, and the shared-side
// entity itself (a self-loop candidate) to stress accumulation-order and
// aliased-row behaviour.
func groupCandidates() []kg.EntityID {
	return []kg.EntityID{4, 0, 7, 4, 1}
}

// TestGroupScoresMatchScore verifies both group sweeps against per-triple
// Score for every model (tolerance: the group path reassociates the dot).
func TestGroupScoresMatchScore(t *testing.T) {
	for _, m := range allModels(t, 8) {
		gt, ok := m.(GroupTrainable)
		if !ok {
			t.Fatalf("%s does not implement GroupTrainable", m.Name())
		}
		t.Run(m.Name(), func(t *testing.T) {
			s, r, o := kg.EntityID(1), kg.RelationID(2), kg.EntityID(3)
			cands := groupCandidates()
			out := make([]float32, len(cands))
			var scr GroupScratch

			gt.ScoreObjectsGroup(s, r, cands, out, &scr)
			for i, c := range cands {
				want := m.Score(kg.Triple{S: s, R: r, O: c})
				if d := math.Abs(float64(out[i] - want)); d > 1e-4*(1+math.Abs(float64(want))) {
					t.Errorf("objects[%d]: group %v, Score %v", i, out[i], want)
				}
			}

			gt.ScoreSubjectsGroup(r, o, cands, out, &scr)
			for i, c := range cands {
				want := m.Score(kg.Triple{S: c, R: r, O: o})
				if d := math.Abs(float64(out[i] - want)); d > 1e-4*(1+math.Abs(float64(want))) {
					t.Errorf("subjects[%d]: group %v, Score %v", i, out[i], want)
				}
			}
		})
	}
}

// TestGroupGradMatchesPerTriple verifies for both sides that the grouped
// gradient equals the sequence of per-triple AccumulateGrad calls: same row
// set exactly (sparse-optimizer semantics), values to reassociation
// tolerance. Zero upstreams must skip rows exactly as the scalar path does.
func TestGroupGradMatchesPerTriple(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range allModels(t, 8) {
		gt := m.(GroupTrainable)
		for _, side := range []string{"objects", "subjects"} {
			t.Run(m.Name()+"/"+side, func(t *testing.T) {
				s, r, o := kg.EntityID(1), kg.RelationID(2), kg.EntityID(3)
				cands := groupCandidates()
				upstream := make([]float32, len(cands))
				for i := range upstream {
					upstream[i] = float32(rng.NormFloat64())
				}
				upstream[2] = 0 // exercise the skip path

				out := make([]float32, len(cands))
				var scr GroupScratch
				grouped := NewGradBuffer(m.Params())
				reference := NewGradBuffer(m.Params())
				if side == "objects" {
					ctx := gt.ScoreObjectsGroup(s, r, cands, out, &scr)
					gt.AccumulateGradObjectsGroup(s, r, cands, ctx, upstream, grouped, &scr)
					for i, c := range cands {
						if upstream[i] == 0 {
							continue
						}
						tr := kg.Triple{S: s, R: r, O: c}
						_, tctx := m.ScoreWithContext(tr)
						m.AccumulateGrad(tr, tctx, upstream[i], reference)
					}
				} else {
					ctx := gt.ScoreSubjectsGroup(r, o, cands, out, &scr)
					gt.AccumulateGradSubjectsGroup(r, o, cands, ctx, upstream, grouped, &scr)
					for i, c := range cands {
						if upstream[i] == 0 {
							continue
						}
						tr := kg.Triple{S: c, R: r, O: o}
						_, tctx := m.ScoreWithContext(tr)
						m.AccumulateGrad(tr, tctx, upstream[i], reference)
					}
				}
				if grouped.Len() != reference.Len() {
					t.Errorf("%s/%s: grouped touches %d rows, per-triple %d",
						m.Name(), side, grouped.Len(), reference.Len())
				}
				compareGradBuffers(t, m.(Trainable), grouped, reference)
			})
		}
	}
}

// TestGroupGradAllZeroUpstreamTouchesNothing: a group whose upstreams are
// all zero must leave the gradient buffer empty — the scalar path would
// never have called AccumulateGrad at all.
func TestGroupGradAllZeroUpstreamTouchesNothing(t *testing.T) {
	for _, m := range allModels(t, 8) {
		gt := m.(GroupTrainable)
		t.Run(m.Name(), func(t *testing.T) {
			cands := groupCandidates()
			zero := make([]float32, len(cands))
			gb := NewGradBuffer(m.Params())
			gt.AccumulateGradObjectsGroup(1, 2, cands, nil, zero, gb, nil)
			gt.AccumulateGradSubjectsGroup(2, 3, cands, nil, zero, gb, nil)
			if gb.Len() != 0 {
				t.Errorf("all-zero upstream touched %d rows", gb.Len())
			}
		})
	}
}
