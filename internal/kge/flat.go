package kge

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"syscall"
	"unsafe"

	"repro/internal/fsio"
)

// The flat checkpoint format is the mmap-able sibling of the gob snapshot:
// the same canonical name-sorted parameter records, but laid out so a loader
// never decodes anything — it maps the file and points each parameter table
// at the raw pages. Layout (all integers little-endian):
//
//	magic    "KGEFLAT1" (8 bytes)
//	u32      format version (currently 1)
//	u32      headerSize: total header bytes, magic through header CRC
//	u32+str  model name
//	8 × u64  Config: NumEntities, NumRelations, Dim, Seed,
//	         Norm, ConvEHeight, ConvEWidth, ConvEFilters
//	u32      record count
//	records  (name-sorted) u32+str name, u32 rows, u32 cols,
//	         u64 data offset (64-byte aligned), u64 float32 count
//	u32      header CRC32 (IEEE) of every header byte before it
//	…zero padding to each record's aligned offset…
//	data     each record's rows×cols float32 values, raw little-endian
//	u32      file CRC32 (IEEE) of every byte before it
//
// The wire discipline mirrors the prune sidecar (internal/prune/persist.go):
// fixed magic, flat pre-sized arrays, trailing checksum so a torn write is a
// clean load error instead of silent corruption. The 64-byte record
// alignment serves two masters: unsafe float32 aliasing (which needs 4-byte
// alignment; mmap regions are page-aligned, so aligned offsets keep rows
// aligned) and cache-line-aligned sweep kernels.
const (
	flatMagic   = "KGEFLAT1"
	flatVersion = 1
	flatAlign   = 64

	// flatMaxName and flatMaxRecords bound the variable-length header
	// fields, so a corrupt length prefix cannot provoke a huge allocation.
	flatMaxName    = 1 << 10
	flatMaxRecords = 1 << 10
)

// hostLittleEndian reports whether float32 values can alias the file bytes
// directly. On a big-endian host OpenMapped falls back to a copying decode —
// correct, just without the zero-copy property.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// SaveFlat serializes a trained model to w in the flat format. Like Save it
// is a pure function of the weights: identical models always produce
// identical bytes.
func SaveFlat(m Trainable, w io.Writer) error {
	cfg, err := configOf(m)
	if err != nil {
		return err
	}
	params := append([]*Param(nil), m.Params().List()...)
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })

	// Size the header, then assign each record's aligned data offset.
	hdrSize := len(flatMagic) + 4 + 4 + 4 + len(m.Name()) + 8*8 + 4
	for _, p := range params {
		hdrSize += 4 + len(p.Name) + 4 + 4 + 8 + 8
	}
	hdrSize += 4 // header CRC
	offsets := make([]int, len(params))
	off := hdrSize
	for i, p := range params {
		off = alignUp(off, flatAlign)
		offsets[i] = off
		off += 4 * len(p.M.Data)
	}

	var hdr bytes.Buffer
	hdr.Grow(hdrSize)
	hdr.WriteString(flatMagic)
	putU32(&hdr, flatVersion)
	putU32(&hdr, uint32(hdrSize))
	putU32(&hdr, uint32(len(m.Name())))
	hdr.WriteString(m.Name())
	for _, v := range []int64{
		int64(cfg.NumEntities), int64(cfg.NumRelations), int64(cfg.Dim), cfg.Seed,
		int64(cfg.Norm), int64(cfg.ConvEHeight), int64(cfg.ConvEWidth), int64(cfg.ConvEFilters),
	} {
		putU64(&hdr, uint64(v))
	}
	putU32(&hdr, uint32(len(params)))
	for i, p := range params {
		putU32(&hdr, uint32(len(p.Name)))
		hdr.WriteString(p.Name)
		putU32(&hdr, uint32(p.M.Rows))
		putU32(&hdr, uint32(p.M.Cols))
		putU64(&hdr, uint64(offsets[i]))
		putU64(&hdr, uint64(len(p.M.Data)))
	}
	putU32(&hdr, crc32.ChecksumIEEE(hdr.Bytes()))
	if hdr.Len() != hdrSize {
		return fmt.Errorf("kge: flat header size miscomputed: wrote %d, sized %d", hdr.Len(), hdrSize)
	}

	cw := &flatCRCWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<20)
	if _, err := bw.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("kge: flat save: %w", err)
	}
	pos := hdrSize
	var chunk [4 * 16384]byte
	for i, p := range params {
		for pos < offsets[i] {
			bw.WriteByte(0)
			pos++
		}
		data := p.M.Data
		for len(data) > 0 {
			n := len(data)
			if n > len(chunk)/4 {
				n = len(chunk) / 4
			}
			for j, v := range data[:n] {
				binary.LittleEndian.PutUint32(chunk[4*j:], math.Float32bits(v))
			}
			if _, err := bw.Write(chunk[:4*n]); err != nil {
				return fmt.Errorf("kge: flat save: %w", err)
			}
			data = data[n:]
			pos += 4 * n
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kge: flat save: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("kge: flat save: %w", err)
	}
	return nil
}

// SaveFlatFile writes the model to path in the flat format with the full
// durable-write discipline: unique temp file, file fsync, atomic rename,
// directory fsync (internal/fsio).
func SaveFlatFile(m Trainable, path string) error {
	return fsio.WriteAtomic(path, func(f *os.File) error { return SaveFlat(m, f) })
}

// Mapped is a model whose parameter tables alias a memory-mapped flat
// checkpoint. The weights live in the page cache, shared with every other
// process mapping the same file, and nothing is decoded at open time.
//
// A mapped model is read-only: the pages are mapped PROT_READ, so training
// it (or anything else that writes a parameter table) faults. Scoring,
// sweeping, and fingerprinting — the serving paths — only read.
//
// Close unmaps the region. The model must not be used afterwards; callers
// that share a Mapped across goroutines (the serve registry) must refcount
// and close only after the last user is done.
type Mapped struct {
	Trainable
	data []byte // the mmap region; nil after Close or on the copying fallback

	closeOnce sync.Once
	closeErr  error
}

// MappedBytes returns the size of the live mapped region (0 when the model
// was copy-decoded on a host that cannot alias, or after Close).
func (mm *Mapped) MappedBytes() int { return len(mm.data) }

// Close releases the mapping. Idempotent.
func (mm *Mapped) Close() error {
	mm.closeOnce.Do(func() {
		if mm.data != nil {
			mm.closeErr = syscall.Munmap(mm.data)
			mm.data = nil
		}
	})
	return mm.closeErr
}

// OpenMapped maps a flat checkpoint and returns a model whose weights alias
// the mapped pages. Both checksums (header and whole-file) are verified at
// open — a sequential pass through the page cache, still far cheaper than a
// gob decode — so a truncated or torn file is a clean error, never a panic
// or a silently wrong model.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(flatMagic)+16) {
		return nil, fmt.Errorf("kge: flat open %s: file too small (%d bytes)", path, size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("kge: flat open %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("kge: flat open %s: mmap: %w", path, err)
	}
	m, aliased, err := parseFlat(data)
	if err != nil || !aliased {
		syscall.Munmap(data)
		data = nil
	}
	if err != nil {
		return nil, fmt.Errorf("kge: flat open %s: %w", path, err)
	}
	return &Mapped{Trainable: m, data: data}, nil
}

// LoadAuto opens a checkpoint in either format, sniffed by magic. For flat
// checkpoints it returns the concrete model — not the *Mapped wrapper, so
// type assertions against the optional fast-path interfaces (ObjectSweeper,
// BatchScorer) resolve exactly as they do for a gob-loaded model — plus the
// mmap handle to close after the model's last use. For gob checkpoints
// mapped is nil. format is "flat" or "gob".
func LoadAuto(path string) (m Trainable, mapped *Mapped, format string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, "", err
	}
	var magic [len(flatMagic)]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr == nil && string(magic[:]) == flatMagic {
		mm, err := OpenMapped(path)
		if err != nil {
			return nil, nil, "", err
		}
		return mm.Trainable, mm, "flat", nil
	}
	m, err = LoadFile(path)
	if err != nil {
		return nil, nil, "", err
	}
	return m, nil, "gob", nil
}

// parseFlat validates a mapped flat checkpoint and reconstructs its model.
// aliased reports whether the parameter tables point into data (true on
// little-endian hosts) or were copied out (big-endian fallback). Every read
// is bounds-checked through flatCursor: arbitrary truncation or corruption
// must surface as an error, never a panic.
func parseFlat(data []byte) (m Trainable, aliased bool, err error) {
	size := len(data)
	c := &flatCursor{b: data}

	if string(c.bytes(len(flatMagic))) != flatMagic {
		return nil, false, fmt.Errorf("bad magic (not a flat checkpoint)")
	}
	if v := c.u32(); c.err == nil && v != flatVersion {
		return nil, false, fmt.Errorf("unsupported flat version %d (want %d)", v, flatVersion)
	}
	hdrSize := int(c.u32())
	if c.err != nil {
		return nil, false, c.err
	}
	if hdrSize < len(flatMagic)+16 || hdrSize > size-4 {
		return nil, false, fmt.Errorf("implausible header size %d for %d-byte file", hdrSize, size)
	}
	// Both checksums up front: the header CRC pins the layout metadata, the
	// file CRC pins the weight bytes the header points at.
	wantHdrCRC := binary.LittleEndian.Uint32(data[hdrSize-4 : hdrSize])
	if got := crc32.ChecksumIEEE(data[:hdrSize-4]); got != wantHdrCRC {
		return nil, false, fmt.Errorf("header checksum mismatch (file %08x, computed %08x)", wantHdrCRC, got)
	}
	wantFileCRC := binary.LittleEndian.Uint32(data[size-4:])
	if got := crc32.ChecksumIEEE(data[:size-4]); got != wantFileCRC {
		return nil, false, fmt.Errorf("file checksum mismatch (file %08x, computed %08x)", wantFileCRC, got)
	}

	name := c.str(flatMaxName)
	var raw [8]int64
	for i := range raw {
		raw[i] = int64(c.u64())
	}
	cfg := Config{
		NumEntities: int(raw[0]), NumRelations: int(raw[1]), Dim: int(raw[2]), Seed: raw[3],
		Norm: int(raw[4]), ConvEHeight: int(raw[5]), ConvEWidth: int(raw[6]), ConvEFilters: int(raw[7]),
		skipInit: true,
	}
	nrec := int(c.u32())
	if c.err != nil {
		return nil, false, c.err
	}
	if nrec < 0 || nrec > flatMaxRecords {
		return nil, false, fmt.Errorf("implausible record count %d", nrec)
	}
	type rec struct {
		rows, cols int
		off, count int
	}
	recs := make(map[string]rec, nrec)
	for i := 0; i < nrec; i++ {
		rname := c.str(flatMaxName)
		rows, cols := int(c.u32()), int(c.u32())
		off, count := c.u64(), c.u64()
		if c.err != nil {
			return nil, false, c.err
		}
		if off%flatAlign != 0 || off > uint64(size-4) || count > uint64(size)/4 ||
			uint64(size-4)-off < 4*count {
			return nil, false, fmt.Errorf("record %q data [%d, +%d floats) outside the file", rname, off, count)
		}
		if rows < 0 || cols < 0 || uint64(rows)*uint64(cols) != count {
			return nil, false, fmt.Errorf("record %q shape [%d %d] does not match %d floats", rname, rows, cols, count)
		}
		if int(off) < hdrSize {
			return nil, false, fmt.Errorf("record %q data overlaps the header", rname)
		}
		if _, dup := recs[rname]; dup {
			return nil, false, fmt.Errorf("duplicate record %q", rname)
		}
		recs[rname] = rec{rows: rows, cols: cols, off: int(off), count: int(count)}
	}
	if c.off > hdrSize-4 {
		return nil, false, fmt.Errorf("header records overrun the declared header size")
	}

	m, err = New(name, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("reconstruct %q: %w", name, err)
	}
	params := m.Params().List()
	if len(params) != nrec {
		return nil, false, fmt.Errorf("checkpoint has %d records, model %q has %d parameters", nrec, name, len(params))
	}
	for _, p := range params {
		r, ok := recs[p.Name]
		if !ok {
			return nil, false, fmt.Errorf("checkpoint missing parameter %q", p.Name)
		}
		if r.rows != p.M.Rows || r.cols != p.M.Cols {
			return nil, false, fmt.Errorf("parameter %q shape [%d %d], want [%d %d]", p.Name, r.rows, r.cols, p.M.Rows, p.M.Cols)
		}
		raw := data[r.off : r.off+4*r.count]
		if hostLittleEndian {
			p.M.Data = f32view(raw, r.count)
		} else {
			dst := make([]float32, r.count)
			for i := range dst {
				dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			}
			p.M.Data = dst
		}
	}
	return m, hostLittleEndian, nil
}

// f32view reinterprets b as a float32 slice without copying. b must be
// 4-byte aligned and hold at least 4n bytes; the record alignment checks in
// parseFlat guarantee both.
func f32view(b []byte, n int) []float32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}

// flatCursor is a bounds-checked sequential reader over a byte slice. After
// any out-of-range read it parks an error and returns zero values, so
// parsing code can read a whole section and check err once.
type flatCursor struct {
	b   []byte
	off int
	err error
}

func (c *flatCursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || len(c.b)-c.off < n {
		if c.err == nil {
			c.err = fmt.Errorf("truncated header (need %d bytes at offset %d of %d)", n, c.off, len(c.b))
		}
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *flatCursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *flatCursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *flatCursor) str(max int) string {
	n := int(c.u32())
	if c.err != nil {
		return ""
	}
	if n < 0 || n > max {
		c.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	return string(c.bytes(n))
}

// flatCRCWriter forwards writes while accumulating the running file CRC.
type flatCRCWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *flatCRCWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}
