package kge

import (
	"fmt"
	"math"

	"repro/internal/kg"
	"repro/internal/vecmath"
)

// ConvE (Dettmers et al., 2018) is the convolutional model used in the
// paper's experiments. The subject and relation embeddings are reshaped to
// H×W grids, stacked into a 2H×W input image, passed through F 3×3 valid
// convolutions with ReLU, flattened, projected back to the embedding space
// by a fully connected layer with ReLU, and finally matched against the
// object embedding:
//
//	f(s, r, o) = ReLU( vec( ReLU( conv([s̄; r̄]) ) ) · W_fc ) · o + b_o
//
// Relative to the original, this implementation omits dropout and batch
// normalization (regularizers that matter for squeezing the last points of
// MRR on GPUs, not for the ranking behaviour studied here); the DESIGN.md
// substitution table records this.
//
// Because the hidden vector depends only on (s, r), ScoreAllObjects runs one
// forward pass and a single matrix-vector sweep — the 1-N scoring trick from
// the ConvE paper. ScoreAllSubjects has no such factorization and falls back
// to per-subject forwards.
type ConvE struct {
	cfg     Config
	h, w    int // reshape geometry: Dim == h·w
	filters int
	oh, ow  int // conv output geometry: (2h−2)×(w−2)
	flat    int // filters·oh·ow

	ps      *ParamSet
	ent     *Param // N×d entity embeddings
	rel     *Param // K×d relation embeddings
	conv    *Param // F×9 filter kernels (3×3 row-major)
	convB   *Param // 1×F filter biases
	fc      *Param // d×flat fully connected weight (row i produces hidden i)
	fcB     *Param // 1×d fully connected bias
	entBias *Param // N×1 per-entity output bias
}

// NewConvE constructs and initializes a ConvE model. If cfg.ConvEHeight and
// cfg.ConvEWidth are zero, the most square factorization of Dim is used;
// cfg.ConvEFilters defaults to 8.
func NewConvE(cfg Config) (*ConvE, error) {
	h, w := cfg.ConvEHeight, cfg.ConvEWidth
	if h == 0 && w == 0 {
		h, w = squarestFactors(cfg.Dim)
	}
	if h*w != cfg.Dim {
		return nil, fmt.Errorf("kge: conve: height %d × width %d != dim %d", h, w, cfg.Dim)
	}
	if 2*h < 3 || w < 3 {
		return nil, fmt.Errorf("kge: conve: stacked input %dx%d too small for 3x3 convolution", 2*h, w)
	}
	filters := cfg.ConvEFilters
	if filters == 0 {
		filters = 8
	}
	m := &ConvE{
		cfg:     cfg,
		h:       h,
		w:       w,
		filters: filters,
		oh:      2*h - 2,
		ow:      w - 2,
		ps:      NewParamSet(),
	}
	m.flat = m.filters * m.oh * m.ow
	m.ent = m.ps.Add("entity", cfg.NumEntities, cfg.Dim)
	m.rel = m.ps.Add("relation", cfg.NumRelations, cfg.Dim)
	m.conv = m.ps.Add("conv", m.filters, 9)
	m.convB = m.ps.Add("convbias", 1, m.filters)
	m.fc = m.ps.Add("fc", cfg.Dim, m.flat)
	m.fcB = m.ps.Add("fcbias", 1, cfg.Dim)
	m.entBias = m.ps.Add("entbias", cfg.NumEntities, 1)

	if cfg.skipInit {
		return m, nil
	}
	rng := initRNG(cfg)
	for i := 0; i < cfg.NumEntities; i++ {
		vecmath.XavierInit(rng, m.ent.M.Row(i), cfg.Dim, cfg.Dim)
	}
	for i := 0; i < cfg.NumRelations; i++ {
		vecmath.XavierInit(rng, m.rel.M.Row(i), cfg.Dim, cfg.Dim)
	}
	for f := 0; f < m.filters; f++ {
		vecmath.XavierInit(rng, m.conv.M.Row(f), 9, 9)
	}
	for i := 0; i < cfg.Dim; i++ {
		vecmath.XavierInit(rng, m.fc.M.Row(i), m.flat, cfg.Dim)
	}
	return m, nil
}

// squarestFactors returns the factor pair (h, w) of d with h ≤ w and h as
// large as possible.
func squarestFactors(d int) (int, int) {
	for h := int(math.Sqrt(float64(d))); h >= 1; h-- {
		if d%h == 0 {
			return h, d / h
		}
	}
	return 1, d
}

// Name implements Model.
func (m *ConvE) Name() string { return "conve" }

// Dim implements Model.
func (m *ConvE) Dim() int { return m.cfg.Dim }

// NumEntities implements Model.
func (m *ConvE) NumEntities() int { return m.cfg.NumEntities }

// NumRelations implements Model.
func (m *ConvE) NumRelations() int { return m.cfg.NumRelations }

// Params implements Trainable.
func (m *ConvE) Params() *ParamSet { return m.ps }

// conveCtx caches the forward activations needed for backprop.
type conveCtx struct {
	input  []float32 // 2h×w stacked image, row-major
	z1     []float32 // conv pre-activations, filters×oh×ow
	x      []float32 // flattened post-ReLU conv output, length flat
	z2     []float32 // fc pre-activations, length d
	hidden []float32 // post-ReLU hidden, length d
}

// forward computes the hidden vector for (s, r).
func (m *ConvE) forward(s kg.EntityID, r kg.RelationID) *conveCtx {
	d := m.cfg.Dim
	c := &conveCtx{
		input:  make([]float32, 2*d),
		z1:     make([]float32, m.flat),
		x:      make([]float32, m.flat),
		z2:     make([]float32, d),
		hidden: make([]float32, d),
	}
	copy(c.input[:d], m.ent.M.Row(int(s)))
	copy(c.input[d:], m.rel.M.Row(int(r)))

	iw := m.w
	for f := 0; f < m.filters; f++ {
		k := m.conv.M.Row(f)
		b := m.convB.M.Row(0)[f]
		base := f * m.oh * m.ow
		for i := 0; i < m.oh; i++ {
			for j := 0; j < m.ow; j++ {
				var acc float32 = b
				for u := 0; u < 3; u++ {
					inRow := (i + u) * iw
					kRow := u * 3
					for v := 0; v < 3; v++ {
						acc += k[kRow+v] * c.input[inRow+j+v]
					}
				}
				idx := base + i*m.ow + j
				c.z1[idx] = acc
				if acc > 0 {
					c.x[idx] = acc
				}
			}
		}
	}
	fcb := m.fcB.M.Row(0)
	for i := 0; i < d; i++ {
		z := vecmath.Dot(m.fc.M.Row(i), c.x) + fcb[i]
		c.z2[i] = z
		if z > 0 {
			c.hidden[i] = z
		}
	}
	return c
}

// Score implements Model.
func (m *ConvE) Score(t kg.Triple) float32 {
	c := m.forward(t.S, t.R)
	return vecmath.Dot(c.hidden, m.ent.M.Row(int(t.O))) + m.entBias.M.Row(int(t.O))[0]
}

// ScoreWithContext implements Trainable.
func (m *ConvE) ScoreWithContext(t kg.Triple) (float32, GradContext) {
	c := m.forward(t.S, t.R)
	score := vecmath.Dot(c.hidden, m.ent.M.Row(int(t.O))) + m.entBias.M.Row(int(t.O))[0]
	return score, c
}

// ScoreAllObjects implements Model via 1-N scoring: one forward pass, then
// scores = E·hidden + entity biases.
func (m *ConvE) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	c := m.forward(s, r)
	m.ent.M.MulVec(out, c.hidden)
	for o := range out {
		out[o] += m.entBias.M.Row(o)[0]
	}
	return out
}

// ScoreAllSubjects implements Model with the generic per-subject fallback:
// the convolution depends on the subject, so there is no linear sweep.
func (m *ConvE) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	return genericScoreAllSubjects(m, r, o, out)
}

// AccumulateGrad implements Trainable with full backpropagation through the
// FC and convolution layers down to the subject and relation embeddings.
func (m *ConvE) AccumulateGrad(t kg.Triple, ctx GradContext, upstream float32, gb *GradBuffer) {
	c, ok := ctx.(*conveCtx)
	if !ok || c == nil {
		c = m.forward(t.S, t.R)
	}
	oRow := m.ent.M.Row(int(t.O))

	// Output layer: score = hidden·o + b_o.
	gb.Axpy("entity", int(t.O), upstream, c.hidden)
	gb.Row("entbias", int(t.O))[0] += upstream

	// dh = upstream · o, then the shared FC+conv backward pass.
	dh := make([]float32, m.cfg.Dim)
	for i := range dh {
		dh[i] = upstream * oRow[i]
	}
	m.backpropHidden(t.S, t.R, c, dh, gb)
}

// PostBatch implements Trainable (no constraints).
func (m *ConvE) PostBatch() {}
