package kge

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kg"
	"repro/internal/vecmath"
)

// newTestSweeper builds a small randomized model of each family. Dim 8 keeps
// ConvE's reshape valid (2×4) and exercises both the 4-row MatVec blocks and
// the Dot tail (41 entities: 10 blocks + 1 tail row).
func newTestSweeper(t *testing.T, name string, norm int) ObjectSweeper {
	t.Helper()
	cfg := Config{NumEntities: 41, NumRelations: 5, Dim: 8, Seed: 11, Norm: norm}
	m, err := New(name, cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	// Perturb past initialization so tests do not depend on init symmetry.
	rng := rand.New(rand.NewSource(17))
	for _, p := range m.Params().List() {
		for i := range p.M.Data {
			p.M.Data[i] += float32(rng.NormFloat64()) * 0.1
		}
	}
	sw, ok := m.(ObjectSweeper)
	if !ok {
		t.Fatalf("%s does not implement ObjectSweeper", name)
	}
	return sw
}

func allTestSweepers(t *testing.T) map[string]ObjectSweeper {
	t.Helper()
	sweepers := map[string]ObjectSweeper{}
	for _, name := range ModelNames() {
		sweepers[name] = newTestSweeper(t, name, 0)
	}
	sweepers["transe_l2"] = newTestSweeper(t, "transe", 2)
	return sweepers
}

// rebuildSweep reconstructs the object sweep from the ObjectSweeper pieces
// using exactly the kernels pruned ranking uses: MatVecRange over aligned
// 4-row blocks for the dot family (plus the single bias add), and the
// per-row distance kernels for TransE.
func rebuildSweep(sw ObjectSweeper, s kg.EntityID, r kg.RelationID) []float32 {
	n := sw.NumEntities()
	ent := sw.SweepEntityTable()
	q := make([]float32, sw.SweepDim())
	sw.BuildObjectQuery(s, r, q)
	out := make([]float32, n)
	switch sw.SweepGeometry() {
	case SweepDot:
		for lo := 0; lo < n; lo += 4 {
			hi := lo + 4
			if hi > n {
				hi = n
			}
			vecmath.MatVecRange(out, ent, q, lo, hi)
		}
		if bias := sw.SweepBias(); bias != nil {
			for o := range out {
				out[o] += bias[o]
			}
		}
	case SweepL1:
		for o := 0; o < n; o++ {
			out[o] = -vecmath.L1Distance(q, ent.Row(o))
		}
	case SweepL2Sq:
		for o := 0; o < n; o++ {
			out[o] = -vecmath.SquaredL2Distance(q, ent.Row(o))
		}
	}
	return out
}

// TestObjectSweeperBitIdentity is the exactness contract behind -prune=exact:
// for every model the sweep reconstructed from (geometry, query, entity
// table, bias) is bit-identical to ScoreAllObjects.
func TestObjectSweeperBitIdentity(t *testing.T) {
	for name, sw := range allTestSweepers(t) {
		t.Run(name, func(t *testing.T) {
			want := make([]float32, sw.NumEntities())
			for s := 0; s < 7; s++ {
				for r := 0; r < sw.NumRelations(); r++ {
					sw.ScoreAllObjects(kg.EntityID(s), kg.RelationID(r), want)
					got := rebuildSweep(sw, kg.EntityID(s), kg.RelationID(r))
					for o := range want {
						if got[o] != want[o] {
							t.Fatalf("s=%d r=%d o=%d: rebuilt %x != sweep %x",
								s, r, o, got[o], want[o])
						}
					}
				}
			}
		})
	}
}

// TestObjectSweeperShapes sanity-checks the geometry metadata against the
// entity table.
func TestObjectSweeperShapes(t *testing.T) {
	for name, sw := range allTestSweepers(t) {
		ent := sw.SweepEntityTable()
		if ent.Rows != sw.NumEntities() {
			t.Errorf("%s: table rows %d != entities %d", name, ent.Rows, sw.NumEntities())
		}
		if ent.Cols != sw.SweepDim() {
			t.Errorf("%s: table cols %d != SweepDim %d", name, ent.Cols, sw.SweepDim())
		}
		if bias := sw.SweepBias(); bias != nil && len(bias) != sw.NumEntities() {
			t.Errorf("%s: bias length %d != entities %d", name, len(bias), sw.NumEntities())
		}
		if name == "conve" && sw.SweepBias() == nil {
			t.Error("conve: expected a sweep bias")
		}
	}
}

func TestSidecarPath(t *testing.T) {
	if got := SidecarPath("models/transe.kge"); got != "models/transe.kge.ivf" {
		t.Fatalf("SidecarPath: got %q", got)
	}
}

func ExampleSidecarPath() {
	fmt.Println(SidecarPath("transe.kge"))
	// Output: transe.kge.ivf
}
