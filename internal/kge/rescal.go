package kge

import (
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// RESCAL (Nickel et al., 2011) is the bilinear factorization model: each
// entity gets a vector and each relation a full d×d matrix Wᵣ, scored as
// f(s, r, o) = sᵀ Wᵣ o. The relation table stores each matrix flattened
// row-major as one K×d² row, so the sparse per-row optimizer updates one
// relation's whole matrix as a unit.
type RESCAL struct {
	cfg Config
	ps  *ParamSet
	ent *Param // N×d
	rel *Param // K×d² (row-major d×d matrices)
}

// NewRESCAL constructs and initializes a RESCAL model.
func NewRESCAL(cfg Config) (*RESCAL, error) {
	m := &RESCAL{cfg: cfg, ps: NewParamSet()}
	m.ent = m.ps.Add("entity", cfg.NumEntities, cfg.Dim)
	m.rel = m.ps.Add("relation", cfg.NumRelations, cfg.Dim*cfg.Dim)
	if cfg.skipInit {
		return m, nil
	}
	rng := initRNG(cfg)
	for i := 0; i < cfg.NumEntities; i++ {
		vecmath.XavierInit(rng, m.ent.M.Row(i), cfg.Dim, cfg.Dim)
	}
	for i := 0; i < cfg.NumRelations; i++ {
		vecmath.XavierInit(rng, m.rel.M.Row(i), cfg.Dim, cfg.Dim)
	}
	return m, nil
}

// Name implements Model.
func (m *RESCAL) Name() string { return "rescal" }

// Dim implements Model.
func (m *RESCAL) Dim() int { return m.cfg.Dim }

// NumEntities implements Model.
func (m *RESCAL) NumEntities() int { return m.cfg.NumEntities }

// NumRelations implements Model.
func (m *RESCAL) NumRelations() int { return m.cfg.NumRelations }

// Params implements Trainable.
func (m *RESCAL) Params() *ParamSet { return m.ps }

// relMatrix views relation r's flattened row as a d×d matrix.
func (m *RESCAL) relMatrix(r kg.RelationID) []float32 { return m.rel.M.Row(int(r)) }

// wo computes dst = Wᵣ·o.
func (m *RESCAL) wo(dst []float32, r kg.RelationID, o []float32) []float32 {
	d := m.cfg.Dim
	w := m.relMatrix(r)
	for i := 0; i < d; i++ {
		dst[i] = vecmath.Dot(w[i*d:(i+1)*d], o)
	}
	return dst
}

// wts computes dst = Wᵣᵀ·s.
func (m *RESCAL) wts(dst []float32, r kg.RelationID, s []float32) []float32 {
	d := m.cfg.Dim
	w := m.relMatrix(r)
	for j := 0; j < d; j++ {
		dst[j] = 0
	}
	for i := 0; i < d; i++ {
		vecmath.Axpy(s[i], w[i*d:(i+1)*d], dst)
	}
	return dst
}

// Score implements Model.
func (m *RESCAL) Score(t kg.Triple) float32 {
	s := m.ent.M.Row(int(t.S))
	o := m.ent.M.Row(int(t.O))
	tmp := make([]float32, m.cfg.Dim)
	m.wo(tmp, t.R, o)
	return vecmath.Dot(s, tmp)
}

// ScoreWithContext implements Trainable.
func (m *RESCAL) ScoreWithContext(t kg.Triple) (float32, GradContext) {
	return m.Score(t), nil
}

// ScoreAllObjects implements Model: q = Wᵣᵀ·s, scores = E·q via the
// blocked MatVec kernel.
func (m *RESCAL) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	m.wts(q, r, m.ent.M.Row(int(s)))
	return vecmath.MatVec(out, m.ent.M, q)
}

// ScoreAllSubjects implements Model: q = Wᵣ·o, scores = E·q.
func (m *RESCAL) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	m.wo(q, r, m.ent.M.Row(int(o)))
	return vecmath.MatVec(out, m.ent.M, q)
}

// AccumulateGrad implements Trainable:
//
//	∂f/∂s = Wᵣ·o, ∂f/∂o = Wᵣᵀ·s, ∂f/∂Wᵣ = s·oᵀ (outer product).
func (m *RESCAL) AccumulateGrad(t kg.Triple, _ GradContext, upstream float32, gb *GradBuffer) {
	d := m.cfg.Dim
	s := m.ent.M.Row(int(t.S))
	o := m.ent.M.Row(int(t.O))

	tmp := make([]float32, d)
	gb.Axpy("entity", int(t.S), upstream, m.wo(tmp, t.R, o))
	gb.Axpy("entity", int(t.O), upstream, m.wts(tmp, t.R, s))

	gw := gb.Row("relation", int(t.R))
	for i := 0; i < d; i++ {
		vecmath.Axpy(upstream*s[i], o, gw[i*d:(i+1)*d])
	}
}

// PostBatch implements Trainable (no constraints).
func (m *RESCAL) PostBatch() {}
