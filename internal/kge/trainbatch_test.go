package kge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kg"
	"repro/internal/vecmath"
)

// chunkContexts builds a small varied context chunk: repeated subjects and
// relations, plus a subject that also appears as a scored object, to
// exercise the phase-split accumulation.
func chunkContexts() ([]kg.EntityID, []kg.RelationID) {
	ss := []kg.EntityID{1, 3, 1, 7, 0}
	rs := []kg.RelationID{2, 0, 1, 2, 2}
	return ss, rs
}

func chunkUpstream(rng *rand.Rand, k, n int) *vecmath.Matrix {
	u := vecmath.NewMatrix(k, n)
	for i := range u.Data {
		u.Data[i] = float32(rng.NormFloat64())
	}
	// Sprinkle zeros to exercise the untouched-row skip path.
	for j := 0; j < k; j++ {
		row := u.Row(j)
		row[0], row[4+j] = 0, 0
	}
	return u
}

// TestScoreContextsBatchMatchesScoreAllObjects pins the forward half of the
// batched-digest contract: every row of the chunk forward is bit-identical
// to the per-context ScoreAllObjects sweep, for every model.
func TestScoreContextsBatchMatchesScoreAllObjects(t *testing.T) {
	for _, m := range allModels(t, 8) {
		bt, ok := m.(KvsAllBatchTrainable)
		if !ok {
			t.Fatalf("%s does not implement KvsAllBatchTrainable", m.Name())
		}
		t.Run(m.Name(), func(t *testing.T) {
			ss, rs := chunkContexts()
			out := vecmath.NewMatrix(len(ss), m.NumEntities())
			bt.ScoreContextsBatch(ss, rs, out)
			want := make([]float32, m.NumEntities())
			for j := range ss {
				m.ScoreAllObjects(ss[j], rs[j], want)
				row := out.Row(j)
				for o := range want {
					if math.Float32bits(row[o]) != math.Float32bits(want[o]) {
						t.Fatalf("context %d entity %d: batch %v, scalar %v (not bit-identical)",
							j, o, row[o], want[o])
					}
				}
			}
		})
	}
}

// TestKvsAllBatchGradMatchesScalarSequence checks the backward half: the
// chunk-batched gradient equals the sequence of scalar
// AccumulateGradAllObjects calls in ascending context order — the same row
// set exactly (optimizer sparse-row semantics), values to float32
// reassociation tolerance (the phase split reorders additions into rows that
// are both objects and chain-tail targets).
func TestKvsAllBatchGradMatchesScalarSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, m := range allModels(t, 8) {
		bt := m.(KvsAllBatchTrainable)
		t.Run(m.Name(), func(t *testing.T) {
			ss, rs := chunkContexts()
			upstream := chunkUpstream(rng, len(ss), m.NumEntities())

			batched := NewGradBuffer(m.Params())
			bt.AccumulateGradAllObjectsBatch(ss, rs, upstream, batched)

			reference := NewGradBuffer(m.Params())
			for j := range ss {
				bt.AccumulateGradAllObjects(ss[j], rs[j], upstream.Row(j), reference)
			}

			if batched.Len() != reference.Len() {
				t.Errorf("%s: batched touches %d rows, scalar %d", m.Name(), batched.Len(), reference.Len())
			}
			var missing int
			reference.ForEach(func(p *Param, row int, _ []float32) {
				found := false
				batched.ForEach(func(bp *Param, brow int, _ []float32) {
					if bp.Name == p.Name && brow == row {
						found = true
					}
				})
				if !found {
					missing++
					t.Errorf("%s: row %s/%d touched by scalar but not batched", m.Name(), p.Name, row)
				}
			})
			compareGradBuffers(t, m.(Trainable), batched, reference)
		})
	}
}

// TestKvsAllBatchGradSingleContextBitIdentical: with one context there is no
// cross-context interleaving, so the batched backward must reproduce the
// scalar gradient exactly, bit for bit, for every model.
func TestKvsAllBatchGradSingleContextBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, m := range allModels(t, 8) {
		bt := m.(KvsAllBatchTrainable)
		t.Run(m.Name(), func(t *testing.T) {
			upstream := chunkUpstream(rng, 1, m.NumEntities())
			s, r := kg.EntityID(2), kg.RelationID(1)

			batched := NewGradBuffer(m.Params())
			bt.AccumulateGradAllObjectsBatch([]kg.EntityID{s}, []kg.RelationID{r}, upstream, batched)
			reference := NewGradBuffer(m.Params())
			bt.AccumulateGradAllObjects(s, r, upstream.Row(0), reference)

			if batched.Len() != reference.Len() {
				t.Fatalf("row count %d vs %d", batched.Len(), reference.Len())
			}
			reference.ForEach(func(p *Param, row int, want []float32) {
				var got []float32
				batched.ForEach(func(bp *Param, brow int, g []float32) {
					if bp.Name == p.Name && brow == row {
						got = g
					}
				})
				if got == nil {
					t.Fatalf("row %s/%d missing from batched gradient", p.Name, row)
				}
				for i := range want {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("row %s/%d[%d]: batched %v, scalar %v (not bit-identical)",
							p.Name, row, i, got[i], want[i])
					}
				}
			})
		})
	}
}
