package kge

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// Chunk-batched KvsAll training: the trainer hands a whole gradient chunk of
// (s, r) contexts — relations varying per row, unlike discovery's
// relation-blocked BatchScorer — to the model at once. The forward pass is
// one query-matrix × entity-table vecmath.MatMat per chunk, and the backward
// pass tiles the entity table once across all contexts instead of sweeping
// it per context.
//
// Determinism contract (this defines the batched trainer's digests):
//
//   - Forward: row j of ScoreContextsBatch is bit-identical to
//     ScoreAllObjects(ss[j], rs[j], ...) — MatMat is a row-tiled scheduling
//     of the same per-row kernel.
//   - Backward: within one chunk, entity-table row o accumulates its
//     upstream[j][o]·qⱼ contributions in ascending context order j, and each
//     context's dqⱼ accumulates Eᵀ·upstreamⱼ in ascending entity order o —
//     the same orders the scalar path uses. What differs from the scalar
//     path is phase structure: all entity-row updates of a chunk land before
//     any subject/relation chain tail runs, so a row that is both an object
//     and some context's subject sees the two phases in a different
//     interleaving. Both schedules are fixed functions of the chunk content,
//     so every worker count produces the same bits; only the scalar-vs-
//     batched toggle changes digests.
type KvsAllBatchTrainable interface {
	KvsAllTrainable
	// ScoreContextsBatch writes score(ss[j], rs[j], o) for every entity o
	// into row j of out, which must be len(ss)×NumEntities. Row j is
	// bit-identical to ScoreAllObjects(ss[j], rs[j], ...).
	ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix)
	// AccumulateGradAllObjectsBatch accumulates the gradient of all object
	// scores for every context (ss[j], rs[j]) given the per-context
	// upstream rows. Equivalent (to float32 reassociation) to calling
	// AccumulateGradAllObjects per context in ascending j.
	AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer)
}

func checkCtxBatch(ss []kg.EntityID, rs []kg.RelationID, mat *vecmath.Matrix, n int) {
	if len(ss) != len(rs) {
		panic(fmt.Sprintf("kge: context batch has %d subjects, %d relations", len(ss), len(rs)))
	}
	checkBatchBuf(mat, len(ss), n)
}

// entityBackpropBatch is the chunk-wide version of entityBackprop: for every
// context j it applies ∂L/∂e_o += upstream[j][o]·qⱼ and accumulates
// dqⱼ = Eᵀ·upstreamⱼ, returning the k×d matrix of dq rows. If biasParam is
// non-empty, upstream[j][o] is also added to that parameter's row o (ConvE's
// per-entity bias).
//
// The entity table is walked in MatMat's L1 row tiles with contexts inner,
// so each tile of embedding rows is read once per chunk instead of once per
// context, and the upstream rows stream sequentially. The gradient lands in
// GradBuffer.Dense storage — KvsAll upstreams are dense in the entity
// axis (label smoothing makes every sigmoid residual nonzero), so per-row
// map inserts would dominate the sweep. Rows with zero upstream are never
// touched — the optimizer's sparse-row semantics see exactly the scalar
// path's row set.
func entityBackpropBatch(ent *Param, upstream, q *vecmath.Matrix, biasParam string, gb *GradBuffer) *vecmath.Matrix {
	k, n, d := upstream.Rows, upstream.Cols, q.Cols
	dq := vecmath.NewMatrix(k, d)
	tile := vecmath.MatMatTileRows(d)
	dent := gb.Dense("entity")
	var dbias *DenseGrad
	if biasParam != "" {
		dbias = gb.Dense(biasParam)
	}
	for lo := 0; lo < n; lo += tile {
		hi := min(lo+tile, n)
		for j := 0; j < k; j++ {
			u := upstream.Row(j)[lo:hi]
			qj := q.Row(j)
			dqj := dq.Row(j)
			for t, g := range u {
				if g == 0 {
					continue
				}
				o := lo + t
				vecmath.Axpy(g, qj, dent.Row(o))
				if dbias != nil {
					dbias.Row(o)[0] += g
				}
				vecmath.Axpy(g, ent.M.Row(o), dqj)
			}
		}
	}
	return dq
}

// objQueries builds the k×d matrix of KvsAll query vectors qⱼ = sⱼ∘rⱼ.
func (m *DistMult) objQueries(ss []kg.EntityID, rs []kg.RelationID) *vecmath.Matrix {
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j := range ss {
		vecmath.Hadamard(q.Row(j), m.ent.M.Row(int(ss[j])), m.rel.M.Row(int(rs[j])))
	}
	return q
}

// ScoreContextsBatch implements KvsAllBatchTrainable: one E·Qᵀ product for
// the whole chunk.
func (m *DistMult) ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix) {
	checkCtxBatch(ss, rs, out, m.cfg.NumEntities)
	vecmath.MatMat(out, m.ent.M, m.objQueries(ss, rs))
}

// AccumulateGradAllObjectsBatch implements KvsAllBatchTrainable: one tiled
// entity sweep for the chunk, then the per-context chain tails in order.
func (m *DistMult) AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer) {
	checkCtxBatch(ss, rs, upstream, m.cfg.NumEntities)
	dq := entityBackpropBatch(m.ent, upstream, m.objQueries(ss, rs), "", gb)
	for j := range ss {
		m.chainObjDQ(ss[j], rs[j], dq.Row(j), gb)
	}
}

// objQueries builds the k×2d query matrix with the conjugate-product rows of
// AccumulateGradAllObjects.
func (m *ComplEx) objQueries(ss []kg.EntityID, rs []kg.RelationID) *vecmath.Matrix {
	d := m.cfg.Dim
	q := vecmath.NewMatrix(len(ss), 2*d)
	for j := range ss {
		sre, sim := m.split(m.ent.M.Row(int(ss[j])))
		rre, rim := m.split(m.rel.M.Row(int(rs[j])))
		row := q.Row(j)
		for i := 0; i < d; i++ {
			row[i] = sre[i]*rre[i] - sim[i]*rim[i]
			row[d+i] = sim[i]*rre[i] + sre[i]*rim[i]
		}
	}
	return q
}

// ScoreContextsBatch implements KvsAllBatchTrainable.
func (m *ComplEx) ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix) {
	checkCtxBatch(ss, rs, out, m.cfg.NumEntities)
	vecmath.MatMat(out, m.ent.M, m.objQueries(ss, rs))
}

// AccumulateGradAllObjectsBatch implements KvsAllBatchTrainable.
func (m *ComplEx) AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer) {
	checkCtxBatch(ss, rs, upstream, m.cfg.NumEntities)
	dq := entityBackpropBatch(m.ent, upstream, m.objQueries(ss, rs), "", gb)
	for j := range ss {
		m.chainObjDQ(ss[j], rs[j], dq.Row(j), gb)
	}
}

// objQueries builds the k×d query matrix qⱼ = W_{rⱼ}ᵀ·sⱼ.
func (m *RESCAL) objQueries(ss []kg.EntityID, rs []kg.RelationID) *vecmath.Matrix {
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j := range ss {
		m.wts(q.Row(j), rs[j], m.ent.M.Row(int(ss[j])))
	}
	return q
}

// ScoreContextsBatch implements KvsAllBatchTrainable.
func (m *RESCAL) ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix) {
	checkCtxBatch(ss, rs, out, m.cfg.NumEntities)
	vecmath.MatMat(out, m.ent.M, m.objQueries(ss, rs))
}

// AccumulateGradAllObjectsBatch implements KvsAllBatchTrainable.
func (m *RESCAL) AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer) {
	checkCtxBatch(ss, rs, upstream, m.cfg.NumEntities)
	dq := entityBackpropBatch(m.ent, upstream, m.objQueries(ss, rs), "", gb)
	for j := range ss {
		m.chainObjDQ(ss[j], rs[j], dq.Row(j), gb)
	}
}

// objQueries builds the k×d query matrix qⱼ = rⱼ * sⱼ (circular convolution).
func (m *HolE) objQueries(ss []kg.EntityID, rs []kg.RelationID) *vecmath.Matrix {
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j := range ss {
		fft.Convolve(q.Row(j), m.rel.M.Row(int(rs[j])), m.ent.M.Row(int(ss[j])))
	}
	return q
}

// ScoreContextsBatch implements KvsAllBatchTrainable.
func (m *HolE) ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix) {
	checkCtxBatch(ss, rs, out, m.cfg.NumEntities)
	vecmath.MatMat(out, m.ent.M, m.objQueries(ss, rs))
}

// AccumulateGradAllObjectsBatch implements KvsAllBatchTrainable.
func (m *HolE) AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer) {
	checkCtxBatch(ss, rs, upstream, m.cfg.NumEntities)
	dq := entityBackpropBatch(m.ent, upstream, m.objQueries(ss, rs), "", gb)
	for j := range ss {
		m.chainObjDQ(ss[j], rs[j], dq.Row(j), gb)
	}
}

// ScoreContextsBatch implements KvsAllBatchTrainable: k forward passes build
// the hidden matrix, the output layer is one E·Hᵀ product, biases are added
// per row in ascending entity order (bit-identical to ScoreAllObjects).
func (m *ConvE) ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix) {
	checkCtxBatch(ss, rs, out, m.cfg.NumEntities)
	h := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j := range ss {
		copy(h.Row(j), m.forward(ss[j], rs[j]).hidden)
	}
	vecmath.MatMat(out, m.ent.M, h)
	for j := range ss {
		row := out.Row(j)
		for o := range row {
			row[o] += m.entBias.M.Row(o)[0]
		}
	}
}

// AccumulateGradAllObjectsBatch implements KvsAllBatchTrainable: the k
// forward contexts are recomputed (as the scalar path does), the entity and
// bias tables take one tiled sweep, and each context's dh then runs the
// shared FC/conv backward.
func (m *ConvE) AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer) {
	checkCtxBatch(ss, rs, upstream, m.cfg.NumEntities)
	ctxs := make([]*conveCtx, len(ss))
	h := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j := range ss {
		ctxs[j] = m.forward(ss[j], rs[j])
		copy(h.Row(j), ctxs[j].hidden)
	}
	dh := entityBackpropBatch(m.ent, upstream, h, "entbias", gb)
	for j := range ss {
		m.backpropHidden(ss[j], rs[j], ctxs[j], dh.Row(j), gb)
	}
}

// ScoreContextsBatch implements KvsAllBatchTrainable for TransE: no MatMat
// formulation exists for the distance sweep, so the entity table is walked
// in MatMat's row tiles with every context scoring a tile before it leaves
// cache, reusing the exact per-pair distance kernels of ScoreAllObjects.
func (m *TransE) ScoreContextsBatch(ss []kg.EntityID, rs []kg.RelationID, out *vecmath.Matrix) {
	checkCtxBatch(ss, rs, out, m.cfg.NumEntities)
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j := range ss {
		vecmath.Add(q.Row(j), m.ent.M.Row(int(ss[j])), m.rel.M.Row(int(rs[j])))
	}
	n := m.cfg.NumEntities
	tile := vecmath.MatMatTileRows(m.cfg.Dim)
	for lo := 0; lo < n; lo += tile {
		hi := min(lo+tile, n)
		for j := range ss {
			qj, dst := q.Row(j), out.Row(j)
			for o := lo; o < hi; o++ {
				row := m.ent.M.Row(o)
				var d float32
				if m.norm == 1 {
					d = vecmath.L1Distance(qj, row)
				} else {
					d = vecmath.SquaredL2Distance(qj, row)
				}
				dst[o] = -d
			}
		}
	}
}

// AccumulateGradAllObjectsBatch implements KvsAllBatchTrainable for TransE
// as the per-model scalar fallback: the distance gradient has a per-entity
// sign/residual term with no batched product form, so each context runs the
// scalar backward (which also keeps it bit-identical to the scalar path).
func (m *TransE) AccumulateGradAllObjectsBatch(ss []kg.EntityID, rs []kg.RelationID, upstream *vecmath.Matrix, gb *GradBuffer) {
	checkCtxBatch(ss, rs, upstream, m.cfg.NumEntities)
	for j := range ss {
		m.AccumulateGradAllObjects(ss[j], rs[j], upstream.Row(j), gb)
	}
}
