package kge

import (
	"repro/internal/fft"
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// KvsAll ("1-N") scoring backpropagation. LibKGE's KvsAll training type —
// and the training procedure of the original ConvE paper — scores each
// (s, r) context against every entity simultaneously and applies binary
// cross-entropy against the multi-hot vector of true objects. This needs
// the gradient of the whole ScoreAllObjects sweep, which every model here
// provides through KvsAllTrainable: given upstream[o] = ∂L/∂score(s, r, o)
// for all o, accumulate gradients into every touched parameter row.
//
// The per-model implementations factor the sweep as score_o = q(s, r)·e_o
// (plus per-entity bias for ConvE), so the shared pattern is
//
//	∂L/∂e_o += upstream[o] · q        (one row per entity)
//	∂L/∂q    = Eᵀ · upstream          (then chained into s and r)
//
// The test suite verifies each implementation against the sum of
// per-triple AccumulateGrad calls.
type KvsAllTrainable interface {
	Trainable
	// AccumulateGradAllObjects accumulates the gradient of all object
	// scores for context (s, r). upstream must have length NumEntities.
	AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer)
}

// entityBackprop applies the shared ∂L/∂e_o += upstream[o]·q step and
// returns dq = Eᵀ·upstream.
func entityBackprop(ent *Param, upstream, q []float32, gb *GradBuffer) (dq []float32) {
	dq = make([]float32, len(q))
	for o, g := range upstream {
		if g == 0 {
			continue
		}
		gb.Axpy("entity", o, g, q)
		vecmath.Axpy(g, ent.M.Row(o), dq)
	}
	return dq
}

// AccumulateGradAllObjects implements KvsAllTrainable for DistMult:
// q = s∘r, ds = dq∘r, dr = dq∘s.
func (m *DistMult) AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer) {
	checkScoreBuf(upstream, m.cfg.NumEntities)
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	q := vecmath.Hadamard(make([]float32, m.cfg.Dim), sRow, rRow)
	dq := entityBackprop(m.ent, upstream, q, gb)
	m.chainObjDQ(s, r, dq, gb)
}

// chainObjDQ chains dq = ∂L/∂q into the subject and relation rows. Shared
// by the scalar and chunk-batched KvsAll backward passes (the op order here
// is part of both digest definitions).
func (m *DistMult) chainObjDQ(s kg.EntityID, r kg.RelationID, dq []float32, gb *GradBuffer) {
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	gs := gb.Row("entity", int(s))
	gr := gb.Row("relation", int(r))
	for i := range dq {
		gs[i] += dq[i] * rRow[i]
		gr[i] += dq[i] * sRow[i]
	}
}

// AccumulateGradAllObjects implements KvsAllTrainable for ComplEx with the
// conjugate-product chain rule:
//
//	q_re = s_re∘r_re − s_im∘r_im     q_im = s_im∘r_re + s_re∘r_im
//	ds_re = dq_re∘r_re + dq_im∘r_im  ds_im = −dq_re∘r_im + dq_im∘r_re
//	dr_re = dq_re∘s_re + dq_im∘s_im  dr_im = −dq_re∘s_im + dq_im∘s_re
func (m *ComplEx) AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer) {
	checkScoreBuf(upstream, m.cfg.NumEntities)
	d := m.cfg.Dim
	sre, sim := m.split(m.ent.M.Row(int(s)))
	rre, rim := m.split(m.rel.M.Row(int(r)))
	q := make([]float32, 2*d)
	for i := 0; i < d; i++ {
		q[i] = sre[i]*rre[i] - sim[i]*rim[i]
		q[d+i] = sim[i]*rre[i] + sre[i]*rim[i]
	}
	dq := entityBackprop(m.ent, upstream, q, gb)
	m.chainObjDQ(s, r, dq, gb)
}

// chainObjDQ chains dq into the subject and relation rows with the conjugate
// chain rule above. Shared by the scalar and chunk-batched backward passes.
func (m *ComplEx) chainObjDQ(s kg.EntityID, r kg.RelationID, dq []float32, gb *GradBuffer) {
	d := m.cfg.Dim
	sre, sim := m.split(m.ent.M.Row(int(s)))
	rre, rim := m.split(m.rel.M.Row(int(r)))
	gs := gb.Row("entity", int(s))
	gr := gb.Row("relation", int(r))
	for i := 0; i < d; i++ {
		dre, dim := dq[i], dq[d+i]
		gs[i] += dre*rre[i] + dim*rim[i]
		gs[d+i] += -dre*rim[i] + dim*rre[i]
		gr[i] += dre*sre[i] + dim*sim[i]
		gr[d+i] += -dre*sim[i] + dim*sre[i]
	}
}

// AccumulateGradAllObjects implements KvsAllTrainable for RESCAL:
// q = Wᵣᵀs, ds = Wᵣ·dq, dWᵣ += s·dqᵀ.
func (m *RESCAL) AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer) {
	checkScoreBuf(upstream, m.cfg.NumEntities)
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	q := m.wts(make([]float32, d), r, sRow)
	dq := entityBackprop(m.ent, upstream, q, gb)
	m.chainObjDQ(s, r, dq, gb)
}

// chainObjDQ chains dq into the subject row (ds = Wᵣ·dq) and the relation
// matrix (dWᵣ += s·dqᵀ). Shared by the scalar and chunk-batched backward.
func (m *RESCAL) chainObjDQ(s kg.EntityID, r kg.RelationID, dq []float32, gb *GradBuffer) {
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	gb.Axpy("entity", int(s), 1, m.wo(make([]float32, d), r, dq))
	gw := gb.Row("relation", int(r))
	for i := 0; i < d; i++ {
		vecmath.Axpy(sRow[i], dq, gw[i*d:(i+1)*d])
	}
}

// AccumulateGradAllObjects implements KvsAllTrainable for HolE:
// q = r * s (convolution), ds = r ⋆ dq, dr = s ⋆ dq (correlations).
func (m *HolE) AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer) {
	checkScoreBuf(upstream, m.cfg.NumEntities)
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	q := fft.Convolve(make([]float32, d), rRow, sRow)
	dq := entityBackprop(m.ent, upstream, q, gb)
	m.chainObjDQ(s, r, dq, gb)
}

// chainObjDQ chains dq into the subject and relation rows via circular
// correlations. Shared by the scalar and chunk-batched backward passes.
func (m *HolE) chainObjDQ(s kg.EntityID, r kg.RelationID, dq []float32, gb *GradBuffer) {
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	tmp := make([]float32, d)
	gb.Axpy("entity", int(s), 1, fft.CircularCorrelation(tmp, rRow, dq))
	gb.Axpy("relation", int(r), 1, fft.CircularCorrelation(make([]float32, d), sRow, dq))
}

// AccumulateGradAllObjects implements KvsAllTrainable for TransE. The
// object sweep is not an inner product, so the chain is distance-based:
// with q = s + r and e = q − e_o,
//
//	norm 2: ∂score_o/∂q = −2e, ∂score_o/∂e_o = +2e
//	norm 1: ±sign(e) per coordinate.
func (m *TransE) AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer) {
	checkScoreBuf(upstream, m.cfg.NumEntities)
	d := m.cfg.Dim
	q := vecmath.Add(make([]float32, d), m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
	dq := make([]float32, d)
	for o := 0; o < m.cfg.NumEntities; o++ {
		g := upstream[o]
		if g == 0 {
			continue
		}
		oRow := m.ent.M.Row(o)
		gout := gb.Row("entity", o)
		for i := 0; i < d; i++ {
			e := q[i] - oRow[i]
			var de float32
			if m.norm == 1 {
				switch {
				case e > 0:
					de = 1
				case e < 0:
					de = -1
				}
			} else {
				de = 2 * e
			}
			dq[i] += -g * de
			gout[i] += g * de
		}
	}
	gb.Axpy("entity", int(s), 1, dq)
	gb.Axpy("relation", int(r), 1, dq)
}

// AccumulateGradAllObjects implements KvsAllTrainable for ConvE — the model
// the 1-N trick was invented for: one forward pass, entity-table and bias
// gradients per object, and a single backward pass through the FC and conv
// layers with dh = Eᵀ·upstream.
func (m *ConvE) AccumulateGradAllObjects(s kg.EntityID, r kg.RelationID, upstream []float32, gb *GradBuffer) {
	checkScoreBuf(upstream, m.cfg.NumEntities)
	c := m.forward(s, r)
	dh := make([]float32, m.cfg.Dim)
	for o, g := range upstream {
		if g == 0 {
			continue
		}
		gb.Axpy("entity", o, g, c.hidden)
		gb.Row("entbias", o)[0] += g
		vecmath.Axpy(g, m.ent.M.Row(o), dh)
	}
	m.backpropHidden(s, r, c, dh, gb)
}

// backpropHidden pushes a hidden-layer gradient through the FC and conv
// layers down to the subject and relation embeddings. Shared by the
// per-triple and KvsAll gradient paths.
func (m *ConvE) backpropHidden(s kg.EntityID, r kg.RelationID, c *conveCtx, dh []float32, gb *GradBuffer) {
	d := m.cfg.Dim
	dz2 := make([]float32, d)
	gfcb := gb.Row("fcbias", 0)
	for i := 0; i < d; i++ {
		if c.z2[i] > 0 && dh[i] != 0 {
			dz2[i] = dh[i]
			gfcb[i] += dz2[i]
			gb.Axpy("fc", i, dz2[i], c.x)
		}
	}
	dx := make([]float32, m.flat)
	for i := 0; i < d; i++ {
		if dz2[i] != 0 {
			vecmath.Axpy(dz2[i], m.fc.M.Row(i), dx)
		}
	}
	iw := m.w
	dinput := make([]float32, 2*d)
	gconvB := gb.Row("convbias", 0)
	for f := 0; f < m.filters; f++ {
		k := m.conv.M.Row(f)
		gk := gb.Row("conv", f)
		base := f * m.oh * m.ow
		for i := 0; i < m.oh; i++ {
			for j := 0; j < m.ow; j++ {
				idx := base + i*m.ow + j
				if c.z1[idx] <= 0 || dx[idx] == 0 {
					continue
				}
				g := dx[idx]
				gconvB[f] += g
				for u := 0; u < 3; u++ {
					inRow := (i + u) * iw
					kRow := u * 3
					for v := 0; v < 3; v++ {
						gk[kRow+v] += g * c.input[inRow+j+v]
						dinput[inRow+j+v] += g * k[kRow+v]
					}
				}
			}
		}
	}
	vecmath.Axpy(1, dinput[:d], gb.Row("entity", int(s)))
	vecmath.Axpy(1, dinput[d:], gb.Row("relation", int(r)))
}
