package kge

import (
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// DistMult (Yang et al., 2014) is the diagonal restriction of RESCAL: each
// relation is a diagonal matrix, giving the trilinear scoring function
// f(s, r, o) = sᵀ diag(r) o = Σᵢ sᵢ rᵢ oᵢ. The diagonality makes every
// relation symmetric — a known expressiveness limit the paper notes.
type DistMult struct {
	cfg Config
	ps  *ParamSet
	ent *Param
	rel *Param
}

// NewDistMult constructs and initializes a DistMult model.
func NewDistMult(cfg Config) (*DistMult, error) {
	m := &DistMult{cfg: cfg, ps: NewParamSet()}
	m.ent = m.ps.Add("entity", cfg.NumEntities, cfg.Dim)
	m.rel = m.ps.Add("relation", cfg.NumRelations, cfg.Dim)
	if cfg.skipInit {
		return m, nil
	}
	rng := initRNG(cfg)
	for i := 0; i < cfg.NumEntities; i++ {
		vecmath.XavierInit(rng, m.ent.M.Row(i), cfg.Dim, cfg.Dim)
	}
	for i := 0; i < cfg.NumRelations; i++ {
		vecmath.XavierInit(rng, m.rel.M.Row(i), cfg.Dim, cfg.Dim)
	}
	return m, nil
}

// Name implements Model.
func (m *DistMult) Name() string { return "distmult" }

// Dim implements Model.
func (m *DistMult) Dim() int { return m.cfg.Dim }

// NumEntities implements Model.
func (m *DistMult) NumEntities() int { return m.cfg.NumEntities }

// NumRelations implements Model.
func (m *DistMult) NumRelations() int { return m.cfg.NumRelations }

// Params implements Trainable.
func (m *DistMult) Params() *ParamSet { return m.ps }

// Score implements Model.
func (m *DistMult) Score(t kg.Triple) float32 {
	s := m.ent.M.Row(int(t.S))
	r := m.rel.M.Row(int(t.R))
	o := m.ent.M.Row(int(t.O))
	var f float32
	for i := range s {
		f += s[i] * r[i] * o[i]
	}
	return f
}

// ScoreWithContext implements Trainable.
func (m *DistMult) ScoreWithContext(t kg.Triple) (float32, GradContext) {
	return m.Score(t), nil
}

// ScoreAllObjects implements Model: with q = s∘r, scores = E·q via the
// blocked MatVec kernel.
func (m *DistMult) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	vecmath.Hadamard(q, m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
	return vecmath.MatVec(out, m.ent.M, q)
}

// ScoreAllSubjects implements Model: by symmetry q = r∘o, scores = E·q.
func (m *DistMult) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	vecmath.Hadamard(q, m.rel.M.Row(int(r)), m.ent.M.Row(int(o)))
	return vecmath.MatVec(out, m.ent.M, q)
}

// AccumulateGrad implements Trainable:
//
//	∂f/∂s = r∘o, ∂f/∂r = s∘o, ∂f/∂o = s∘r.
func (m *DistMult) AccumulateGrad(t kg.Triple, _ GradContext, upstream float32, gb *GradBuffer) {
	s := m.ent.M.Row(int(t.S))
	r := m.rel.M.Row(int(t.R))
	o := m.ent.M.Row(int(t.O))
	gs := gb.Row("entity", int(t.S))
	gr := gb.Row("relation", int(t.R))
	go_ := gb.Row("entity", int(t.O))
	for i := range s {
		gs[i] += upstream * r[i] * o[i]
		gr[i] += upstream * s[i] * o[i]
		go_[i] += upstream * s[i] * r[i]
	}
}

// PostBatch implements Trainable (no constraints).
func (m *DistMult) PostBatch() {}
