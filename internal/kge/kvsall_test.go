package kge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kg"
)

// TestKvsAllGradMatchesPerTriple verifies for every model that
// AccumulateGradAllObjects with upstream vector g equals the sum over
// objects of per-triple AccumulateGrad with upstream g[o] — the defining
// identity of the batched gradient.
func TestKvsAllGradMatchesPerTriple(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range allModels(t, 8) {
		kvs, ok := m.(KvsAllTrainable)
		if !ok {
			t.Fatalf("%s does not implement KvsAllTrainable", m.Name())
		}
		t.Run(m.Name(), func(t *testing.T) {
			s, r := kg.EntityID(1), kg.RelationID(2)
			upstream := make([]float32, m.NumEntities())
			for o := range upstream {
				upstream[o] = float32(rng.NormFloat64())
			}
			// Zero a few entries to exercise the skip path.
			upstream[0], upstream[5] = 0, 0

			batched := NewGradBuffer(m.Params())
			kvs.AccumulateGradAllObjects(s, r, upstream, batched)

			reference := NewGradBuffer(m.Params())
			for o := 0; o < m.NumEntities(); o++ {
				if upstream[o] == 0 {
					continue
				}
				tr := kg.Triple{S: s, R: r, O: kg.EntityID(o)}
				_, ctx := m.ScoreWithContext(tr)
				m.AccumulateGrad(tr, ctx, upstream[o], reference)
			}

			if batched.Len() == 0 {
				t.Fatal("batched gradient touched nothing")
			}
			// Compare every row the reference touched (and vice versa).
			compareGradBuffers(t, m, batched, reference)
		})
	}
}

func compareGradBuffers(t *testing.T, m Trainable, a, b *GradBuffer) {
	t.Helper()
	collect := func(gb *GradBuffer) map[string][]float32 {
		out := make(map[string][]float32)
		gb.ForEach(func(p *Param, row int, grad []float32) {
			key := p.Name + "/" + itoa(row)
			out[key] = grad
		})
		return out
	}
	am, bm := collect(a), collect(b)
	for key, ag := range am {
		bg, ok := bm[key]
		if !ok {
			// Rows touched with all-zero gradients are permitted to differ.
			if maxAbs(ag) > 1e-4 {
				t.Errorf("%s: row %s only in batched gradient (max %g)", m.Name(), key, maxAbs(ag))
			}
			continue
		}
		for i := range ag {
			diff := math.Abs(float64(ag[i] - bg[i]))
			scale := 1 + math.Abs(float64(bg[i]))
			if diff > 2e-3*scale {
				t.Errorf("%s: grad mismatch at %s[%d]: batched %g, reference %g", m.Name(), key, i, ag[i], bg[i])
				return
			}
		}
	}
	for key, bg := range bm {
		if _, ok := am[key]; !ok && maxAbs(bg) > 1e-4 {
			t.Errorf("%s: row %s only in reference gradient", m.Name(), key)
		}
	}
}

func maxAbs(xs []float32) float64 {
	var m float64
	for _, x := range xs {
		if v := math.Abs(float64(x)); v > m {
			m = v
		}
	}
	return m
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestKvsAllBufferSizePanics(t *testing.T) {
	m, err := New("distmult", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	kvs := m.(KvsAllTrainable)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong upstream length")
		}
	}()
	kvs.AccumulateGradAllObjects(0, 0, make([]float32, 3), NewGradBuffer(m.Params()))
}
