package kge

import (
	"repro/internal/fft"
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// SweepGeometry classifies the score geometry of a model's object-side
// corruption sweep. It is what the pruned-ranking index (internal/prune)
// keys its bound derivations on: inner-product sweeps admit a
// Cauchy–Schwarz cell upper bound, distance sweeps a triangle-inequality
// one ("Knowledge Graph Embedding for Link Prediction: A Comparative
// Analysis" groups the six models the same way).
type SweepGeometry int

const (
	// SweepDot: score(o) = E.Row(o)·q (+ SweepBias()[o] when non-nil).
	// DistMult, ComplEx, RESCAL, HolE, and ConvE all reduce to this.
	SweepDot SweepGeometry = iota
	// SweepL1: score(o) = −Σⱼ|qⱼ − E.Row(o)ⱼ| (TransE norm 1).
	SweepL1
	// SweepL2Sq: score(o) = −Σⱼ(qⱼ − E.Row(o)ⱼ)² (TransE norm 2).
	SweepL2Sq
)

// ObjectSweeper exposes the linear structure of a model's ScoreAllObjects
// sweep: a per-(s, r) query vector plus a fixed entity table, combined by
// one of the three geometries above. A model implementing it can be ranked
// through the prescreen-then-rerank path (internal/prune, internal/eval's
// RankObjectsPruned) instead of always paying the dense O(|E|·d) sweep.
//
// Exactness contract: BuildObjectQuery must perform the same arithmetic, in
// the same order, as the model's ScoreAllObjects query construction — then
// rescoring entity o from q with the shared kernels (vecmath.MatVecRange on
// aligned 4-row blocks for SweepDot, the per-row distance kernels for
// SweepL1/SweepL2Sq, plus the single bias add) reproduces the dense sweep's
// float32 output bit for bit. That contract is what lets exact-mode pruning
// return byte-identical discovery results.
type ObjectSweeper interface {
	Model
	// SweepGeometry returns the score family of the object sweep.
	SweepGeometry() SweepGeometry
	// SweepDim returns the width of the sweep's query and entity vectors —
	// the entity table's column count (2·Dim for ComplEx).
	SweepDim() int
	// SweepEntityTable returns the NumEntities×SweepDim table the sweep
	// scores against. Callers must treat it as read-only.
	SweepEntityTable() *vecmath.Matrix
	// SweepBias returns the per-entity additive bias applied after the dot
	// product, or nil when the model has none. Only ConvE has one.
	SweepBias() []float32
	// BuildObjectQuery writes the (s, r) object-sweep query into dst, which
	// must have length SweepDim.
	BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32)
}

func checkQueryBuf(dst []float32, d int) {
	if len(dst) != d {
		panic("kge: object-sweep query buffer has wrong length")
	}
}

// SweepGeometry implements ObjectSweeper.
func (m *DistMult) SweepGeometry() SweepGeometry { return SweepDot }

// SweepDim implements ObjectSweeper.
func (m *DistMult) SweepDim() int { return m.cfg.Dim }

// SweepEntityTable implements ObjectSweeper.
func (m *DistMult) SweepEntityTable() *vecmath.Matrix { return m.ent.M }

// SweepBias implements ObjectSweeper.
func (m *DistMult) SweepBias() []float32 { return nil }

// BuildObjectQuery implements ObjectSweeper: q = s∘r, exactly as
// ScoreAllObjects constructs it.
func (m *DistMult) BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32) {
	checkQueryBuf(dst, m.cfg.Dim)
	vecmath.Hadamard(dst, m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
}

// SweepGeometry implements ObjectSweeper.
func (m *ComplEx) SweepGeometry() SweepGeometry { return SweepDot }

// SweepDim implements ObjectSweeper: the 2·Dim storage width.
func (m *ComplEx) SweepDim() int { return 2 * m.cfg.Dim }

// SweepEntityTable implements ObjectSweeper.
func (m *ComplEx) SweepEntityTable() *vecmath.Matrix { return m.ent.M }

// SweepBias implements ObjectSweeper.
func (m *ComplEx) SweepBias() []float32 { return nil }

// BuildObjectQuery implements ObjectSweeper with ScoreAllObjects' exact
// expression order for the real and imaginary coefficient halves.
func (m *ComplEx) BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32) {
	d := m.cfg.Dim
	checkQueryBuf(dst, 2*d)
	sre, sim := m.split(m.ent.M.Row(int(s)))
	rre, rim := m.split(m.rel.M.Row(int(r)))
	for i := 0; i < d; i++ {
		dst[i] = sre[i]*rre[i] - sim[i]*rim[i]
		dst[d+i] = sim[i]*rre[i] + sre[i]*rim[i]
	}
}

// SweepGeometry implements ObjectSweeper.
func (m *RESCAL) SweepGeometry() SweepGeometry { return SweepDot }

// SweepDim implements ObjectSweeper.
func (m *RESCAL) SweepDim() int { return m.cfg.Dim }

// SweepEntityTable implements ObjectSweeper.
func (m *RESCAL) SweepEntityTable() *vecmath.Matrix { return m.ent.M }

// SweepBias implements ObjectSweeper.
func (m *RESCAL) SweepBias() []float32 { return nil }

// BuildObjectQuery implements ObjectSweeper: q = Wᵣᵀ·s via the same wts
// kernel ScoreAllObjects uses.
func (m *RESCAL) BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32) {
	checkQueryBuf(dst, m.cfg.Dim)
	m.wts(dst, r, m.ent.M.Row(int(s)))
}

// SweepGeometry implements ObjectSweeper.
func (m *HolE) SweepGeometry() SweepGeometry { return SweepDot }

// SweepDim implements ObjectSweeper.
func (m *HolE) SweepDim() int { return m.cfg.Dim }

// SweepEntityTable implements ObjectSweeper.
func (m *HolE) SweepEntityTable() *vecmath.Matrix { return m.ent.M }

// SweepBias implements ObjectSweeper.
func (m *HolE) SweepBias() []float32 { return nil }

// BuildObjectQuery implements ObjectSweeper: q = r * s (circular
// convolution), the same fft.Convolve call ScoreAllObjects makes.
func (m *HolE) BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32) {
	checkQueryBuf(dst, m.cfg.Dim)
	fft.Convolve(dst, m.rel.M.Row(int(r)), m.ent.M.Row(int(s)))
}

// SweepGeometry implements ObjectSweeper.
func (m *ConvE) SweepGeometry() SweepGeometry { return SweepDot }

// SweepDim implements ObjectSweeper.
func (m *ConvE) SweepDim() int { return m.cfg.Dim }

// SweepEntityTable implements ObjectSweeper.
func (m *ConvE) SweepEntityTable() *vecmath.Matrix { return m.ent.M }

// SweepBias implements ObjectSweeper: the per-entity output bias b_o. The
// entbias table is N×1, so its backing data is already the flat bias vector.
func (m *ConvE) SweepBias() []float32 { return m.entBias.M.Data }

// BuildObjectQuery implements ObjectSweeper: the 1-N scoring trick's hidden
// vector. The forward pass is deterministic in (s, r), so repeated calls
// produce bit-identical queries.
func (m *ConvE) BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32) {
	checkQueryBuf(dst, m.cfg.Dim)
	copy(dst, m.forward(s, r).hidden)
}

// SweepGeometry implements ObjectSweeper: TransE sweeps a distance, not a
// dot product.
func (m *TransE) SweepGeometry() SweepGeometry {
	if m.norm == 1 {
		return SweepL1
	}
	return SweepL2Sq
}

// SweepDim implements ObjectSweeper.
func (m *TransE) SweepDim() int { return m.cfg.Dim }

// SweepEntityTable implements ObjectSweeper.
func (m *TransE) SweepEntityTable() *vecmath.Matrix { return m.ent.M }

// SweepBias implements ObjectSweeper.
func (m *TransE) SweepBias() []float32 { return nil }

// BuildObjectQuery implements ObjectSweeper: q = s + r, exactly as
// ScoreAllObjects constructs it.
func (m *TransE) BuildObjectQuery(s kg.EntityID, r kg.RelationID, dst []float32) {
	checkQueryBuf(dst, m.cfg.Dim)
	vecmath.Add(dst, m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
}
