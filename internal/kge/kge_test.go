package kge

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kg"
)

func testConfig(dim int) Config {
	return Config{NumEntities: 12, NumRelations: 4, Dim: dim, Seed: 3}
}

func allModels(t *testing.T, dim int) []Trainable {
	t.Helper()
	var models []Trainable
	for _, name := range ModelNames() {
		cfg := testConfig(dim)
		if name == "transe" {
			// Use the smooth squared-L2 variant so finite differences are
			// valid everywhere; the L1 variant has its own gradient test.
			cfg.Norm = 2
		}
		m, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		models = append(models, m)
	}
	return models
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("bogus", testConfig(8)); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{NumEntities: 0, NumRelations: 1, Dim: 8},
		{NumEntities: 1, NumRelations: 0, Dim: 8},
		{NumEntities: 1, NumRelations: 1, Dim: 0},
	} {
		if _, err := New("transe", cfg); err == nil {
			t.Errorf("accepted invalid config %+v", cfg)
		}
	}
}

func TestModelIdentity(t *testing.T) {
	for _, m := range allModels(t, 8) {
		if m.NumEntities() != 12 || m.NumRelations() != 4 {
			t.Errorf("%s: vocab sizes wrong", m.Name())
		}
		if m.Dim() != 8 {
			t.Errorf("%s: Dim = %d, want 8", m.Name(), m.Dim())
		}
	}
}

func TestScoreDeterministic(t *testing.T) {
	tr := kg.Triple{S: 1, R: 2, O: 3}
	for _, name := range ModelNames() {
		a, err := New(name, testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(name, testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		if a.Score(tr) != b.Score(tr) {
			t.Errorf("%s: same seed produced different scores", name)
		}
	}
}

// TestScoreAllMatchesScore verifies the batched sweeps agree with the
// per-triple scoring function — the correctness condition for ranking.
func TestScoreAllMatchesScore(t *testing.T) {
	for _, m := range allModels(t, 8) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			out := make([]float32, m.NumEntities())
			m.ScoreAllObjects(2, 1, out)
			for o := 0; o < m.NumEntities(); o++ {
				want := m.Score(kg.Triple{S: 2, R: 1, O: kg.EntityID(o)})
				if math.Abs(float64(out[o]-want)) > 1e-3*(1+math.Abs(float64(want))) {
					t.Fatalf("ScoreAllObjects[%d] = %g, Score = %g", o, out[o], want)
				}
			}
			m.ScoreAllSubjects(1, 3, out)
			for s := 0; s < m.NumEntities(); s++ {
				want := m.Score(kg.Triple{S: kg.EntityID(s), R: 1, O: 3})
				if math.Abs(float64(out[s]-want)) > 1e-3*(1+math.Abs(float64(want))) {
					t.Fatalf("ScoreAllSubjects[%d] = %g, Score = %g", s, out[s], want)
				}
			}
		})
	}
}

// TestScoreAllOddDimensions exercises HolE's naive (non-power-of-two)
// correlation path and every model's sweep at an odd embedding size.
func TestScoreAllOddDimensions(t *testing.T) {
	for _, name := range ModelNames() {
		cfg := testConfig(7)
		if name == "conve" {
			cfg.Dim = 12 // ConvE needs a 3x3-able reshape; 12 → 3x4 stacked 6x4
		}
		m, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%s, dim=%d): %v", name, cfg.Dim, err)
		}
		out := make([]float32, m.NumEntities())
		m.ScoreAllObjects(1, 1, out)
		for o := 0; o < m.NumEntities(); o++ {
			want := m.Score(kg.Triple{S: 1, R: 1, O: kg.EntityID(o)})
			if math.Abs(float64(out[o]-want)) > 1e-3*(1+math.Abs(float64(want))) {
				t.Fatalf("%s dim=%d: sweep[%d]=%g, Score=%g", name, cfg.Dim, o, out[o], want)
			}
		}
	}
}

func TestScoreAllBufferSizePanics(t *testing.T) {
	m, err := New("distmult", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong buffer size")
		}
	}()
	m.ScoreAllObjects(0, 0, make([]float32, 3))
}

// TestGradientCheck verifies AccumulateGrad against central finite
// differences of Score for every parameter row the gradient touches. This
// is the strongest single correctness check for the training substrate.
func TestGradientCheck(t *testing.T) {
	tr := kg.Triple{S: 1, R: 2, O: 3}
	for _, m := range allModels(t, 8) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			gb := NewGradBuffer(m.Params())
			_, ctx := m.ScoreWithContext(tr)
			m.AccumulateGrad(tr, ctx, 1, gb)
			if gb.Len() == 0 {
				t.Fatal("gradient touched no parameters")
			}
			const h = 1e-2
			checked := 0
			gb.ForEach(func(p *Param, row int, grad []float32) {
				w := p.M.Row(row)
				for i := range w {
					orig := w[i]
					w[i] = orig + h
					up := float64(m.Score(tr))
					w[i] = orig - h
					down := float64(m.Score(tr))
					w[i] = orig
					fd := (up - down) / (2 * h)
					got := float64(grad[i])
					tol := 5e-2 * (1 + math.Abs(fd))
					if math.Abs(fd-got) > tol {
						t.Errorf("%s[%d][%d]: analytic %.5f, finite-diff %.5f",
							p.Name, row, i, got, fd)
					}
					checked++
				}
			})
			if checked == 0 {
				t.Fatal("no gradient entries checked")
			}
		})
	}
}

// TestGradientCheckL1TransE covers the non-smooth L1 distance variant at a
// generic point (Xavier-initialized parameters are almost surely away from
// the kinks).
func TestGradientCheckL1TransE(t *testing.T) {
	cfg := testConfig(8)
	cfg.Norm = 1
	m, err := NewTransE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := kg.Triple{S: 0, R: 1, O: 2}
	gb := NewGradBuffer(m.Params())
	m.AccumulateGrad(tr, nil, 1, gb)
	// Residuals per coordinate, to skip coordinates near the |·| kink where
	// a finite difference straddles the non-differentiable point.
	s := m.Params().Get("entity").M.Row(0)
	r := m.Params().Get("relation").M.Row(1)
	o := m.Params().Get("entity").M.Row(2)
	resid := make([]float64, len(s))
	for i := range s {
		resid[i] = float64(s[i] + r[i] - o[i])
	}
	const h = 1e-4
	gb.ForEach(func(p *Param, row int, grad []float32) {
		w := p.M.Row(row)
		for i := range w {
			if math.Abs(resid[i]) < 10*h {
				continue
			}
			orig := w[i]
			w[i] = orig + h
			up := float64(m.Score(tr))
			w[i] = orig - h
			down := float64(m.Score(tr))
			w[i] = orig
			fd := (up - down) / (2 * h)
			if math.Abs(fd-float64(grad[i])) > 5e-2 {
				t.Errorf("%s[%d][%d]: analytic %.5f, finite-diff %.5f", p.Name, row, i, grad[i], fd)
			}
		}
	})
}

func TestTransERejectsBadNorm(t *testing.T) {
	cfg := testConfig(8)
	cfg.Norm = 3
	if _, err := NewTransE(cfg); err == nil {
		t.Fatal("accepted norm 3")
	}
}

func TestDistMultIsSymmetric(t *testing.T) {
	m, err := New("distmult", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Score(kg.Triple{S: 1, R: 0, O: 5})
	b := m.Score(kg.Triple{S: 5, R: 0, O: 1})
	if a != b {
		t.Errorf("DistMult must be symmetric: f(s,r,o)=%g, f(o,r,s)=%g", a, b)
	}
}

func TestComplExBreaksSymmetry(t *testing.T) {
	m, err := New("complex", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Score(kg.Triple{S: 1, R: 0, O: 5})
	b := m.Score(kg.Triple{S: 5, R: 0, O: 1})
	if a == b {
		t.Error("randomly initialized ComplEx scored a triple symmetrically — the imaginary parts are not contributing")
	}
}

func TestTransEPostBatchProjectsToUnitBall(t *testing.T) {
	m, err := NewTransE(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	// Blow up an entity row, then project.
	row := m.Params().Get("entity").M.Row(0)
	for i := range row {
		row[i] = 10
	}
	m.PostBatch()
	var norm2 float64
	for _, v := range row {
		norm2 += float64(v) * float64(v)
	}
	if norm2 > 1+1e-5 {
		t.Errorf("entity norm² = %g after PostBatch, want <= 1", norm2)
	}
}

func TestConvERejectsBadGeometry(t *testing.T) {
	cfg := testConfig(8)
	cfg.ConvEHeight, cfg.ConvEWidth = 3, 3 // 9 != 8
	if _, err := NewConvE(cfg); err == nil {
		t.Fatal("accepted h*w != dim")
	}
	cfg = testConfig(2)
	cfg.ConvEHeight, cfg.ConvEWidth = 1, 2 // width < 3
	if _, err := NewConvE(cfg); err == nil {
		t.Fatal("accepted input too small for 3x3 conv")
	}
}

func TestSquarestFactors(t *testing.T) {
	for _, tc := range []struct{ d, h, w int }{
		{32, 4, 8}, {64, 8, 8}, {100, 10, 10}, {7, 1, 7}, {12, 3, 4},
	} {
		h, w := squarestFactors(tc.d)
		if h != tc.h || w != tc.w {
			t.Errorf("squarestFactors(%d) = (%d, %d), want (%d, %d)", tc.d, h, w, tc.h, tc.w)
		}
		if h*w != tc.d {
			t.Errorf("squarestFactors(%d) does not factor", tc.d)
		}
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	ps := NewParamSet()
	ps.Add("x", 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate parameter name")
		}
	}()
	ps.Add("x", 1, 1)
}

func TestGradBufferMerge(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 4, 3)
	a := NewGradBuffer(ps)
	b := NewGradBuffer(ps)
	a.Axpy("w", 1, 2, []float32{1, 1, 1})
	b.Axpy("w", 1, 3, []float32{1, 1, 1})
	b.Axpy("w", 2, 1, []float32{1, 0, 0})
	a.Merge(b)
	if got := a.Row("w", 1)[0]; got != 5 {
		t.Errorf("merged grad = %g, want 5", got)
	}
	if got := a.Row("w", 2)[0]; got != 1 {
		t.Errorf("merged new-row grad = %g, want 1", got)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
}

func TestGradBufferReset(t *testing.T) {
	ps := NewParamSet()
	ps.Add("w", 2, 2)
	gb := NewGradBuffer(ps)
	gb.Axpy("w", 0, 1, []float32{2, 2})
	gb.Reset()
	if got := gb.Row("w", 0)[0]; got != 0 {
		t.Errorf("after Reset grad = %g, want 0", got)
	}
}

func TestGradBufferUnknownParamPanics(t *testing.T) {
	gb := NewGradBuffer(NewParamSet())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown parameter")
		}
	}()
	gb.Row("nope", 0)
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, name := range ModelNames() {
		m, err := New(name, testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		// Perturb parameters so we are not just roundtripping the seed.
		for _, p := range m.Params().List() {
			for i := range p.M.Data {
				p.M.Data[i] += float32(rng.NormFloat64()) * 0.01
			}
		}
		var buf bytes.Buffer
		if err := Save(m, &buf); err != nil {
			t.Fatalf("Save(%s): %v", name, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if back.Name() != name {
			t.Fatalf("loaded model is %q, want %q", back.Name(), name)
		}
		for i := 0; i < 20; i++ {
			tr := kg.Triple{
				S: kg.EntityID(rng.Intn(12)),
				R: kg.RelationID(rng.Intn(4)),
				O: kg.EntityID(rng.Intn(12)),
			}
			if got, want := back.Score(tr), m.Score(tr); got != want {
				t.Fatalf("%s: loaded model scores %v as %g, original %g", name, tr, got, want)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m, err := New("transe", testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.kge"
	if err := SaveFile(m, path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	tr := kg.Triple{S: 0, R: 0, O: 1}
	if back.Score(tr) != m.Score(tr) {
		t.Error("file roundtrip changed scores")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}
