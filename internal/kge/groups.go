package kge

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// Grouped contrastive scoring: negative-sampling training evaluates, per
// positive triple, one (s, r) context against 1+K object candidates (the
// positive plus its object-side corruptions) and the same (r, o) context
// against the subject-side corruptions. Scoring them one ScoreWithContext
// call at a time recomputes the shared half of the score 1+K times —
// DistMult's s∘r, RESCAL's Wᵣᵀs, HolE's r*s convolution, and most
// expensively ConvE's whole conv+FC forward pass. GroupTrainable computes
// the shared query once per group and sweeps the candidate rows.
//
// The gradient identity is the same collapse: with uᵢ the per-candidate
// upstream, every per-triple chain into the shared side is linear in the
// candidate row, so the K subject/relation chains fold into one chain of
// w = Σᵢ uᵢ·eᵢ. Candidates with uᵢ = 0 are skipped and a group whose
// upstreams are all zero touches nothing — the optimizer's sparse row set
// is exactly the scalar path's.
//
// Grouped results are float32-reassociated relative to per-triple calls
// (tolerance-level equal, not bitwise); within one group the accumulation
// order is fixed (candidates ascending), so the batched trainer's digests
// remain worker-count-invariant.
type GroupTrainable interface {
	Trainable
	// ScoreObjectsGroup writes Score(s, r, objs[i]) into out[i] and returns
	// a context handle passed back to AccumulateGradObjectsGroup (nil for
	// models without forward state). The handle may alias scr's buffers.
	ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, scr *GroupScratch) GradContext
	// AccumulateGradObjectsGroup is equivalent to per-candidate
	// AccumulateGrad((s, r, objs[i]), ctxᵢ, upstream[i], gb) in ascending i.
	AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch)
	// ScoreSubjectsGroup writes Score(subjs[i], r, o) into out[i].
	ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, scr *GroupScratch) GradContext
	// AccumulateGradSubjectsGroup is equivalent to per-candidate
	// AccumulateGrad((subjs[i], r, o), ctxᵢ, upstream[i], gb) in ascending i.
	AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch)
}

// GroupScratch holds the reusable float buffers the GroupTrainable methods
// need (query vector, weighted sum, convolution temporaries), so the
// training hot loop stays allocation-free — the per-triple scalar path
// allocates nothing, and the grouped path must not regress that. A scratch
// is not safe for concurrent use, and because a group's GradContext may
// alias its scratch, one scratch must serve at most one group between its
// scoring and gradient calls (the trainer keeps one per side per worker).
// nil is valid and makes every Buf call allocate fresh.
type GroupScratch struct {
	bufs [3][]float32
}

// Buf returns slot i as a zeroed length-n buffer, growing it on demand.
func (s *GroupScratch) Buf(i, n int) []float32 {
	if s == nil {
		return make([]float32, n)
	}
	if cap(s.bufs[i]) < n {
		s.bufs[i] = make([]float32, n)
		return s.bufs[i]
	}
	b := s.bufs[i][:n]
	clear(b)
	return b
}

func checkGroup(ids []kg.EntityID, buf []float32) {
	if len(ids) != len(buf) {
		panic(fmt.Sprintf("kge: group of %d candidates with buffer length %d", len(ids), len(buf)))
	}
}

// dotRows writes out[i] = q · ent[ids[i]].
func dotRows(out []float32, ent *Param, ids []kg.EntityID, q []float32) {
	for i, id := range ids {
		out[i] = vecmath.Dot(q, ent.M.Row(int(id)))
	}
}

// weightedRowSum accumulates w += Σ upstream[i]·ent[ids[i]], skipping zero
// upstreams, and reports whether any candidate contributed.
func weightedRowSum(w []float32, ent *Param, ids []kg.EntityID, upstream []float32) bool {
	any := false
	for i, u := range upstream {
		if u == 0 {
			continue
		}
		any = true
		vecmath.Axpy(u, ent.M.Row(int(ids[i])), w)
	}
	return any
}

// scatterRowGrad applies ∂L/∂e_{ids[i]} += upstream[i]·q for every candidate
// with nonzero upstream.
func scatterRowGrad(gb *GradBuffer, ids []kg.EntityID, upstream, q []float32) {
	for i, u := range upstream {
		if u == 0 {
			continue
		}
		gb.Axpy("entity", int(ids[i]), u, q)
	}
}

// --- DistMult ---

// ScoreObjectsGroup implements GroupTrainable: q = s∘r once, then one dot
// per candidate row. The returned context is q for the gradient call.
func (m *DistMult) ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(objs, out)
	q := vecmath.Hadamard(scr.Buf(0, m.cfg.Dim), m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
	dotRows(out, m.ent, objs, q)
	return q
}

// AccumulateGradObjectsGroup implements GroupTrainable: ∂oᵢ = uᵢ·(s∘r),
// and with w = Σ uᵢ·oᵢ the shared chains collapse to ∂s = w∘r, ∂r = w∘s.
func (m *DistMult) AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(objs, upstream)
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	w := scr.Buf(1, m.cfg.Dim)
	if !weightedRowSum(w, m.ent, objs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = vecmath.Hadamard(scr.Buf(0, m.cfg.Dim), sRow, rRow)
	}
	scatterRowGrad(gb, objs, upstream, q)
	gs := gb.Row("entity", int(s))
	gr := gb.Row("relation", int(r))
	for i := range w {
		gs[i] += w[i] * rRow[i]
		gr[i] += w[i] * sRow[i]
	}
}

// ScoreSubjectsGroup implements GroupTrainable: by symmetry q = r∘o.
func (m *DistMult) ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(subjs, out)
	q := vecmath.Hadamard(scr.Buf(0, m.cfg.Dim), m.rel.M.Row(int(r)), m.ent.M.Row(int(o)))
	dotRows(out, m.ent, subjs, q)
	return q
}

// AccumulateGradSubjectsGroup implements GroupTrainable: ∂sᵢ = uᵢ·(r∘o) and
// with w = Σ uᵢ·sᵢ, ∂r = w∘o, ∂o = w∘r.
func (m *DistMult) AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(subjs, upstream)
	rRow := m.rel.M.Row(int(r))
	oRow := m.ent.M.Row(int(o))
	w := scr.Buf(1, m.cfg.Dim)
	if !weightedRowSum(w, m.ent, subjs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = vecmath.Hadamard(scr.Buf(0, m.cfg.Dim), rRow, oRow)
	}
	scatterRowGrad(gb, subjs, upstream, q)
	gr := gb.Row("relation", int(r))
	go_ := gb.Row("entity", int(o))
	for i := range w {
		gr[i] += w[i] * oRow[i]
		go_[i] += w[i] * rRow[i]
	}
}

// --- ComplEx ---

// objGroupQuery builds into q the coefficient of o in the score (the
// ScoreAllObjects query vector).
func (m *ComplEx) objGroupQuery(q []float32, s kg.EntityID, r kg.RelationID) []float32 {
	d := m.cfg.Dim
	sre, sim := m.split(m.ent.M.Row(int(s)))
	rre, rim := m.split(m.rel.M.Row(int(r)))
	for i := 0; i < d; i++ {
		q[i] = sre[i]*rre[i] - sim[i]*rim[i]
		q[d+i] = sim[i]*rre[i] + sre[i]*rim[i]
	}
	return q
}

// subjGroupQuery builds into q the coefficient of s in the score (the
// ScoreAllSubjects query vector).
func (m *ComplEx) subjGroupQuery(q []float32, r kg.RelationID, o kg.EntityID) []float32 {
	d := m.cfg.Dim
	rre, rim := m.split(m.rel.M.Row(int(r)))
	ore, oim := m.split(m.ent.M.Row(int(o)))
	for i := 0; i < d; i++ {
		q[i] = rre[i]*ore[i] + rim[i]*oim[i]
		q[d+i] = rre[i]*oim[i] - rim[i]*ore[i]
	}
	return q
}

// ScoreObjectsGroup implements GroupTrainable.
func (m *ComplEx) ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(objs, out)
	q := m.objGroupQuery(scr.Buf(0, 2*m.cfg.Dim), s, r)
	dotRows(out, m.ent, objs, q)
	return q
}

// AccumulateGradObjectsGroup implements GroupTrainable: ∂oᵢ = uᵢ·q and with
// w = Σ uᵢ·oᵢ the Hermitian chain gives
//
//	∂s_re = r_re∘w_re + r_im∘w_im   ∂s_im = r_re∘w_im − r_im∘w_re
//	∂r_re = s_re∘w_re + s_im∘w_im   ∂r_im = s_re∘w_im − s_im∘w_re
func (m *ComplEx) AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(objs, upstream)
	d := m.cfg.Dim
	w := scr.Buf(1, 2*d)
	if !weightedRowSum(w, m.ent, objs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = m.objGroupQuery(scr.Buf(0, 2*d), s, r)
	}
	scatterRowGrad(gb, objs, upstream, q)
	sre, sim := m.split(m.ent.M.Row(int(s)))
	rre, rim := m.split(m.rel.M.Row(int(r)))
	wre, wim := m.split(w)
	gs := gb.Row("entity", int(s))
	gr := gb.Row("relation", int(r))
	for i := 0; i < d; i++ {
		gs[i] += rre[i]*wre[i] + rim[i]*wim[i]
		gs[d+i] += rre[i]*wim[i] - rim[i]*wre[i]
		gr[i] += sre[i]*wre[i] + sim[i]*wim[i]
		gr[d+i] += sre[i]*wim[i] - sim[i]*wre[i]
	}
}

// ScoreSubjectsGroup implements GroupTrainable.
func (m *ComplEx) ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(subjs, out)
	q := m.subjGroupQuery(scr.Buf(0, 2*m.cfg.Dim), r, o)
	dotRows(out, m.ent, subjs, q)
	return q
}

// AccumulateGradSubjectsGroup implements GroupTrainable: ∂sᵢ = uᵢ·q and with
// w = Σ uᵢ·sᵢ,
//
//	∂r_re = w_re∘o_re + w_im∘o_im   ∂r_im = w_re∘o_im − w_im∘o_re
//	∂o_re = w_re∘r_re − w_im∘r_im   ∂o_im = w_im∘r_re + w_re∘r_im
func (m *ComplEx) AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(subjs, upstream)
	d := m.cfg.Dim
	w := scr.Buf(1, 2*d)
	if !weightedRowSum(w, m.ent, subjs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = m.subjGroupQuery(scr.Buf(0, 2*d), r, o)
	}
	scatterRowGrad(gb, subjs, upstream, q)
	rre, rim := m.split(m.rel.M.Row(int(r)))
	ore, oim := m.split(m.ent.M.Row(int(o)))
	wre, wim := m.split(w)
	gr := gb.Row("relation", int(r))
	go_ := gb.Row("entity", int(o))
	for i := 0; i < d; i++ {
		gr[i] += wre[i]*ore[i] + wim[i]*oim[i]
		gr[d+i] += wre[i]*oim[i] - wim[i]*ore[i]
		go_[i] += wre[i]*rre[i] - wim[i]*rim[i]
		go_[d+i] += wim[i]*rre[i] + wre[i]*rim[i]
	}
}

// --- RESCAL ---

// ScoreObjectsGroup implements GroupTrainable: q = Wᵣᵀs once.
func (m *RESCAL) ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(objs, out)
	q := m.wts(scr.Buf(0, m.cfg.Dim), r, m.ent.M.Row(int(s)))
	dotRows(out, m.ent, objs, q)
	return q
}

// AccumulateGradObjectsGroup implements GroupTrainable: ∂oᵢ = uᵢ·Wᵣᵀs and
// with w = Σ uᵢ·oᵢ, ∂s = Wᵣ·w and ∂Wᵣ = s·wᵀ.
func (m *RESCAL) AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(objs, upstream)
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	w := scr.Buf(1, d)
	if !weightedRowSum(w, m.ent, objs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = m.wts(scr.Buf(0, d), r, sRow)
	}
	scatterRowGrad(gb, objs, upstream, q)
	gb.Axpy("entity", int(s), 1, m.wo(scr.Buf(2, d), r, w))
	gw := gb.Row("relation", int(r))
	for i := 0; i < d; i++ {
		vecmath.Axpy(sRow[i], w, gw[i*d:(i+1)*d])
	}
}

// ScoreSubjectsGroup implements GroupTrainable: q = Wᵣ·o once.
func (m *RESCAL) ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(subjs, out)
	q := m.wo(scr.Buf(0, m.cfg.Dim), r, m.ent.M.Row(int(o)))
	dotRows(out, m.ent, subjs, q)
	return q
}

// AccumulateGradSubjectsGroup implements GroupTrainable: ∂sᵢ = uᵢ·Wᵣ·o and
// with w = Σ uᵢ·sᵢ, ∂o = Wᵣᵀ·w and ∂Wᵣ = w·oᵀ.
func (m *RESCAL) AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(subjs, upstream)
	d := m.cfg.Dim
	oRow := m.ent.M.Row(int(o))
	w := scr.Buf(1, d)
	if !weightedRowSum(w, m.ent, subjs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = m.wo(scr.Buf(0, d), r, oRow)
	}
	scatterRowGrad(gb, subjs, upstream, q)
	gb.Axpy("entity", int(o), 1, m.wts(scr.Buf(2, d), r, w))
	gw := gb.Row("relation", int(r))
	for i := 0; i < d; i++ {
		vecmath.Axpy(w[i], oRow, gw[i*d:(i+1)*d])
	}
}

// --- HolE ---

// ScoreObjectsGroup implements GroupTrainable: q = r * s (convolution) once.
func (m *HolE) ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(objs, out)
	q := fft.Convolve(scr.Buf(0, m.cfg.Dim), m.rel.M.Row(int(r)), m.ent.M.Row(int(s)))
	dotRows(out, m.ent, objs, q)
	return q
}

// AccumulateGradObjectsGroup implements GroupTrainable: ∂oᵢ = uᵢ·(r*s) and
// with w = Σ uᵢ·oᵢ, ∂s = r ⋆ w and ∂r = s ⋆ w (correlation is linear in o).
func (m *HolE) AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(objs, upstream)
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	w := scr.Buf(1, d)
	if !weightedRowSum(w, m.ent, objs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = fft.Convolve(scr.Buf(0, d), rRow, sRow)
	}
	scatterRowGrad(gb, objs, upstream, q)
	tmp := scr.Buf(2, d)
	gb.Axpy("entity", int(s), 1, fft.CircularCorrelation(tmp, rRow, w))
	gb.Axpy("relation", int(r), 1, fft.CircularCorrelation(tmp, sRow, w))
}

// ScoreSubjectsGroup implements GroupTrainable: q = r ⋆ o once.
func (m *HolE) ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(subjs, out)
	q := fft.CircularCorrelation(scr.Buf(0, m.cfg.Dim), m.rel.M.Row(int(r)), m.ent.M.Row(int(o)))
	dotRows(out, m.ent, subjs, q)
	return q
}

// AccumulateGradSubjectsGroup implements GroupTrainable: ∂sᵢ = uᵢ·(r ⋆ o)
// and with w = Σ uᵢ·sᵢ, ∂r = w ⋆ o and ∂o = r * w (both linear in s).
func (m *HolE) AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(subjs, upstream)
	d := m.cfg.Dim
	rRow := m.rel.M.Row(int(r))
	oRow := m.ent.M.Row(int(o))
	w := scr.Buf(1, d)
	if !weightedRowSum(w, m.ent, subjs, upstream) {
		return
	}
	q, _ := ctx.([]float32)
	if q == nil {
		q = fft.CircularCorrelation(scr.Buf(0, d), rRow, oRow)
	}
	scatterRowGrad(gb, subjs, upstream, q)
	tmp := scr.Buf(2, d)
	gb.Axpy("relation", int(r), 1, fft.CircularCorrelation(tmp, w, oRow))
	gb.Axpy("entity", int(o), 1, fft.Convolve(tmp, rRow, w))
}

// --- TransE ---

// ScoreObjectsGroup implements GroupTrainable: q = s + r once, one distance
// per candidate (the same kernels as ScoreAllObjects).
func (m *TransE) ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(objs, out)
	q := vecmath.Add(scr.Buf(0, m.cfg.Dim), m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
	for i, o := range objs {
		row := m.ent.M.Row(int(o))
		if m.norm == 1 {
			out[i] = -vecmath.L1Distance(q, row)
		} else {
			out[i] = -vecmath.SquaredL2Distance(q, row)
		}
	}
	return nil
}

// AccumulateGradObjectsGroup implements GroupTrainable. The distance
// gradient has a per-candidate sign/residual term, so each candidate is
// walked individually; only the shared ∂s = ∂r accumulation collapses. The
// residual e = s+r−o is evaluated with the scalar path's operation order,
// so the sign pattern (norm 1) is identical.
func (m *TransE) AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, _ GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(objs, upstream)
	d := m.cfg.Dim
	sRow := m.ent.M.Row(int(s))
	rRow := m.rel.M.Row(int(r))
	dq := scr.Buf(1, d)
	any := false
	for i, u := range upstream {
		if u == 0 {
			continue
		}
		any = true
		oRow := m.ent.M.Row(int(objs[i]))
		go_ := gb.Row("entity", int(objs[i]))
		for c := 0; c < d; c++ {
			e := sRow[c] + rRow[c] - oRow[c]
			g := m.distGrad(e)
			dq[c] += -g * u
			go_[c] += g * u
		}
	}
	if !any {
		return
	}
	gb.Axpy("entity", int(s), 1, dq)
	gb.Axpy("relation", int(r), 1, dq)
}

// ScoreSubjectsGroup implements GroupTrainable: d(s+r, o) = d(s, o−r), so
// q = o − r once (the same reduction as ScoreAllSubjects).
func (m *TransE) ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, scr *GroupScratch) GradContext {
	checkGroup(subjs, out)
	q := vecmath.Sub(scr.Buf(0, m.cfg.Dim), m.ent.M.Row(int(o)), m.rel.M.Row(int(r)))
	for i, s := range subjs {
		row := m.ent.M.Row(int(s))
		if m.norm == 1 {
			out[i] = -vecmath.L1Distance(row, q)
		} else {
			out[i] = -vecmath.SquaredL2Distance(row, q)
		}
	}
	return nil
}

// distGrad is ∂d/∂e for one residual coordinate.
func (m *TransE) distGrad(e float32) float32 {
	if m.norm == 1 {
		switch {
		case e > 0:
			return 1
		case e < 0:
			return -1
		}
		return 0
	}
	return 2 * e
}

// AccumulateGradSubjectsGroup implements GroupTrainable: per-candidate
// subject gradients, with the shared ∂r = −Σ and ∂o = +Σ collapsed.
func (m *TransE) AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, _ GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(subjs, upstream)
	d := m.cfg.Dim
	rRow := m.rel.M.Row(int(r))
	oRow := m.ent.M.Row(int(o))
	dsum := scr.Buf(1, d)
	any := false
	for i, u := range upstream {
		if u == 0 {
			continue
		}
		any = true
		sRow := m.ent.M.Row(int(subjs[i]))
		gs := gb.Row("entity", int(subjs[i]))
		for c := 0; c < d; c++ {
			e := sRow[c] + rRow[c] - oRow[c]
			g := m.distGrad(e)
			gs[c] += -g * u
			dsum[c] += g * u
		}
	}
	if !any {
		return
	}
	gb.Axpy("relation", int(r), -1, dsum)
	gb.Axpy("entity", int(o), 1, dsum)
}

// --- ConvE ---

// ScoreObjectsGroup implements GroupTrainable — the big win for ConvE: one
// conv+FC forward for the whole group instead of one per candidate. The
// returned context carries the forward activations into the gradient call.
func (m *ConvE) ScoreObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, out []float32, _ *GroupScratch) GradContext {
	checkGroup(objs, out)
	c := m.forward(s, r)
	for i, o := range objs {
		out[i] = vecmath.Dot(c.hidden, m.ent.M.Row(int(o))) + m.entBias.M.Row(int(o))[0]
	}
	return c
}

// AccumulateGradObjectsGroup implements GroupTrainable: per-candidate output
// gradients, then a single FC/conv backward with dh = Σ uᵢ·oᵢ (backpropHidden
// is linear in dh for the fixed activation pattern of this forward pass).
func (m *ConvE) AccumulateGradObjectsGroup(s kg.EntityID, r kg.RelationID, objs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(objs, upstream)
	c, ok := ctx.(*conveCtx)
	if !ok || c == nil {
		c = m.forward(s, r)
	}
	dh := scr.Buf(0, m.cfg.Dim)
	any := false
	for i, u := range upstream {
		if u == 0 {
			continue
		}
		any = true
		o := int(objs[i])
		gb.Axpy("entity", o, u, c.hidden)
		gb.Row("entbias", o)[0] += u
		vecmath.Axpy(u, m.ent.M.Row(o), dh)
	}
	if !any {
		return
	}
	m.backpropHidden(s, r, c, dh, gb)
}

// ScoreSubjectsGroup implements GroupTrainable. The convolution depends on
// the subject, so each candidate needs its own forward pass; the context
// carries all of them so the gradient call does not recompute.
func (m *ConvE) ScoreSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, out []float32, _ *GroupScratch) GradContext {
	checkGroup(subjs, out)
	oRow := m.ent.M.Row(int(o))
	bias := m.entBias.M.Row(int(o))[0]
	ctxs := make([]*conveCtx, len(subjs))
	for i, s := range subjs {
		ctxs[i] = m.forward(s, r)
		out[i] = vecmath.Dot(ctxs[i].hidden, oRow) + bias
	}
	return ctxs
}

// AccumulateGradSubjectsGroup implements GroupTrainable: one full backward
// per candidate (no shared structure to collapse), reusing the forward
// contexts from scoring.
func (m *ConvE) AccumulateGradSubjectsGroup(r kg.RelationID, o kg.EntityID, subjs []kg.EntityID, ctx GradContext, upstream []float32, gb *GradBuffer, scr *GroupScratch) {
	checkGroup(subjs, upstream)
	ctxs, _ := ctx.([]*conveCtx)
	oRow := m.ent.M.Row(int(o))
	dh := scr.Buf(0, m.cfg.Dim)
	for i, u := range upstream {
		if u == 0 {
			continue
		}
		var c *conveCtx
		if i < len(ctxs) {
			c = ctxs[i]
		}
		if c == nil {
			c = m.forward(subjs[i], r)
		}
		gb.Axpy("entity", int(o), u, c.hidden)
		gb.Row("entbias", int(o))[0] += u
		for j := range dh {
			dh[j] = u * oRow[j]
		}
		m.backpropHidden(subjs[i], r, c, dh, gb)
	}
}
