// Package kge implements knowledge graph embedding models from scratch:
// TransE, DistMult, ComplEx, RESCAL, HolE and ConvE — the models the paper
// defines (§2.1) and evaluates (§4). Each model learns latent vectors for
// entities and relations and exposes a scoring function f(t; Θ) expressing
// its confidence that triple t holds.
//
// The package provides:
//
//   - Model: the read-only scoring interface consumed by evaluation and by
//     the fact discovery algorithm, including batched "score this (s, r)
//     against every object" sweeps that make ranking tractable on CPU;
//   - Trainable: the gradient interface consumed by the trainer — models
//     accumulate ∂score/∂θ into a sparse GradBuffer and an optimizer in
//     internal/train applies the update;
//   - persistence: gob-based checkpoints for every model type.
package kge

import (
	"fmt"
	"math/rand"

	"repro/internal/kg"
	"repro/internal/vecmath"
)

// Model is the read-only scoring interface. Scores are comparable within a
// model only: a higher score means the model considers the triple more
// plausible. Implementations must be safe for concurrent readers.
type Model interface {
	// Name returns the canonical lowercase model name ("transe", …).
	Name() string
	// Dim returns the embedding size l.
	Dim() int
	// NumEntities and NumRelations return the vocabulary sizes the model
	// was constructed with.
	NumEntities() int
	NumRelations() int
	// Score returns f(t; Θ).
	Score(t kg.Triple) float32
	// ScoreAllObjects writes f((s, r, o')) for every entity o' into out,
	// which must have length NumEntities, and returns it. This is the hot
	// path of ranking a candidate against its object-side corruptions.
	ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32
	// ScoreAllSubjects writes f((s', r, o)) for every entity s' into out.
	ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32
}

// GradContext carries forward-pass intermediates from ScoreWithContext to
// AccumulateGrad so deep models (ConvE) need not recompute them. Models with
// cheap forward passes return nil.
type GradContext any

// Trainable is implemented by models that can be trained with the
// gradient-based trainer in internal/train.
type Trainable interface {
	Model
	// Params exposes the named parameter tables for the optimizer.
	Params() *ParamSet
	// ScoreWithContext is Score plus a reusable forward context.
	ScoreWithContext(t kg.Triple) (float32, GradContext)
	// AccumulateGrad accumulates upstream · ∂Score(t)/∂θ into gb. ctx must
	// come from a ScoreWithContext call for the same t (or be nil for
	// models that return nil contexts).
	AccumulateGrad(t kg.Triple, ctx GradContext, upstream float32, gb *GradBuffer)
	// PostBatch applies model-specific constraints after an optimizer step
	// (e.g. TransE re-normalizes entity embeddings to the unit ball).
	PostBatch()
}

// Param is one named parameter table. Row granularity is the unit of sparse
// gradient accumulation and optimizer updates: embedding tables are updated
// only in the rows a batch touched.
type Param struct {
	Name string
	M    *vecmath.Matrix
}

// ParamSet is an ordered collection of parameter tables.
type ParamSet struct {
	list   []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers a parameter table under name and returns it. Registering a
// duplicate name panics: parameter naming is a compile-time property of each
// model.
func (ps *ParamSet) Add(name string, rows, cols int) *Param {
	if _, dup := ps.byName[name]; dup {
		panic(fmt.Sprintf("kge: duplicate parameter %q", name))
	}
	p := &Param{Name: name, M: vecmath.NewMatrix(rows, cols)}
	ps.list = append(ps.list, p)
	ps.byName[name] = p
	return p
}

// Get returns the parameter named name, or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// List returns the parameters in registration order. Callers must not
// modify the slice.
func (ps *ParamSet) List() []*Param { return ps.list }

// NumScalars returns the total number of trainable scalars.
func (ps *ParamSet) NumScalars() int {
	total := 0
	for _, p := range ps.list {
		total += len(p.M.Data)
	}
	return total
}

// rowKey identifies one row of one parameter table.
type rowKey struct {
	param string
	row   int
}

// GradBuffer accumulates sparse per-row gradients for one optimizer step.
// It is not safe for concurrent use; the trainer shards batches across
// goroutines each with its own buffer and merges them.
type GradBuffer struct {
	ps    *ParamSet
	grads map[rowKey][]float32
	dense map[string]*DenseGrad
}

// DenseGrad stores one parameter's gradient as a full Rows×Cols table plus a
// touched bitmap instead of per-row map entries. Kernels that touch most
// rows of a large table (KvsAll's entity backward sweeps every entity) opt
// in via GradBuffer.Dense: a map insert per touched row becomes an array
// index, and the accumulator is one pointer-free allocation instead of
// thousands of GC-scanned slices. Untouched rows stay invisible to Len,
// Merge, and ForEach, so the optimizer's sparse-row semantics are unchanged.
type DenseGrad struct {
	m       *vecmath.Matrix
	touched []bool
	n       int
}

// Row returns the dense accumulator for row, marking it touched.
func (d *DenseGrad) Row(row int) []float32 {
	if !d.touched[row] {
		d.touched[row] = true
		d.n++
	}
	return d.m.Row(row)
}

// NewGradBuffer returns an empty gradient buffer over ps.
func NewGradBuffer(ps *ParamSet) *GradBuffer {
	return &GradBuffer{ps: ps, grads: make(map[rowKey][]float32)}
}

// Dense switches param's accumulator to dense storage and returns it.
// Rows already accumulated sparsely are folded in, so the switch is safe at
// any point, and subsequent Row(param, ...) calls transparently resolve to
// the dense table. The per-row float values and accumulation orders are
// identical either way — Dense changes where gradients live, never what the
// optimizer sees, so training digests do not depend on it.
func (gb *GradBuffer) Dense(param string) *DenseGrad {
	if d, ok := gb.dense[param]; ok {
		return d
	}
	p := gb.ps.Get(param)
	if p == nil {
		panic(fmt.Sprintf("kge: unknown parameter %q", param))
	}
	d := &DenseGrad{
		m:       vecmath.NewMatrix(p.M.Rows, p.M.Cols),
		touched: make([]bool, p.M.Rows),
	}
	for k, g := range gb.grads {
		if k.param == param {
			copy(d.Row(k.row), g)
			delete(gb.grads, k)
		}
	}
	if gb.dense == nil {
		gb.dense = make(map[string]*DenseGrad)
	}
	gb.dense[param] = d
	return d
}

// Row returns the gradient accumulator for row `row` of parameter `param`,
// creating a zeroed one on first use.
func (gb *GradBuffer) Row(param string, row int) []float32 {
	if d, ok := gb.dense[param]; ok {
		return d.Row(row)
	}
	k := rowKey{param, row}
	if g, ok := gb.grads[k]; ok {
		return g
	}
	p := gb.ps.Get(param)
	if p == nil {
		panic(fmt.Sprintf("kge: unknown parameter %q", param))
	}
	g := make([]float32, p.M.Cols)
	gb.grads[k] = g
	return g
}

// Axpy adds alpha·x into the accumulator for (param, row).
func (gb *GradBuffer) Axpy(param string, row int, alpha float32, x []float32) {
	vecmath.Axpy(alpha, x, gb.Row(param, row))
}

// Len returns the number of distinct (param, row) entries touched.
func (gb *GradBuffer) Len() int {
	n := len(gb.grads)
	for _, d := range gb.dense {
		n += d.n
	}
	return n
}

// Reset clears all accumulated gradients, retaining allocations where
// possible (map entries are zeroed and kept, dense tables unmarked).
func (gb *GradBuffer) Reset() {
	for _, g := range gb.grads {
		for i := range g {
			g[i] = 0
		}
	}
	for _, d := range gb.dense {
		clear(d.m.Data)
		clear(d.touched)
		d.n = 0
	}
}

// Merge adds other's accumulated gradients into gb.
func (gb *GradBuffer) Merge(other *GradBuffer) {
	for name, od := range other.dense {
		d := gb.Dense(name)
		for row, t := range od.touched {
			if t {
				vecmath.Axpy(1, od.m.Row(row), d.Row(row))
			}
		}
	}
	for k, g := range other.grads {
		vecmath.Axpy(1, g, gb.Row(k.param, k.row))
	}
}

// ForEach visits every accumulated (param, row, grad) entry. Iteration order
// is unspecified; optimizers must be order-independent (they are: per-row
// updates commute).
func (gb *GradBuffer) ForEach(fn func(param *Param, row int, grad []float32)) {
	for name, d := range gb.dense {
		p := gb.ps.Get(name)
		for row, t := range d.touched {
			if t {
				fn(p, row, d.m.Row(row))
			}
		}
	}
	for k, g := range gb.grads {
		fn(gb.ps.Get(k.param), k.row, g)
	}
}

// Config carries the constructor arguments shared by all models plus
// model-specific knobs.
type Config struct {
	NumEntities  int
	NumRelations int
	// Dim is the embedding size l. ComplEx interprets Dim as the number of
	// complex components (storage 2·Dim); ConvE requires Dim == H·W.
	Dim  int
	Seed int64

	// Norm selects TransE's distance: 1 (L1) or 2 (squared L2). 0 means 1.
	Norm int

	// ConvE geometry: entity/relation embeddings are reshaped to
	// Height×Width (Dim = Height·Width), stacked to 2Height×Width, and run
	// through Filters 3×3 convolutions. Zero values pick defaults derived
	// from Dim.
	ConvEHeight  int
	ConvEWidth   int
	ConvEFilters int

	// skipInit skips the random parameter initialization in the
	// constructors, leaving every table zeroed. Only checkpoint loaders set
	// it (the loaded weights overwrite — or, for mmap-backed checkpoints,
	// replace — the tables anyway, so initializing them is pure wasted
	// work). Unexported on purpose: it is invisible to gob and callers
	// outside the package, so a snapshot's Config can never carry it.
	skipInit bool
}

func (c Config) validate() error {
	switch {
	case c.NumEntities < 1:
		return fmt.Errorf("kge: NumEntities must be >= 1, got %d", c.NumEntities)
	case c.NumRelations < 1:
		return fmt.Errorf("kge: NumRelations must be >= 1, got %d", c.NumRelations)
	case c.Dim < 1:
		return fmt.Errorf("kge: Dim must be >= 1, got %d", c.Dim)
	}
	return nil
}

// ModelNames lists the supported model names in the order the paper's
// conclusion enumerates its experiments (plus HolE from the preliminaries).
func ModelNames() []string {
	return []string{"transe", "distmult", "complex", "rescal", "conve", "hole"}
}

// New constructs a model by name.
func New(name string, cfg Config) (Trainable, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch name {
	case "transe":
		return NewTransE(cfg)
	case "distmult":
		return NewDistMult(cfg)
	case "complex":
		return NewComplEx(cfg)
	case "rescal":
		return NewRESCAL(cfg)
	case "hole":
		return NewHolE(cfg)
	case "conve":
		return NewConvE(cfg)
	default:
		return nil, fmt.Errorf("kge: unknown model %q (supported: %v)", name, ModelNames())
	}
}

// genericScoreAllObjects is the fallback batched sweep for models without a
// linear-algebra fast path.
func genericScoreAllObjects(m Model, s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	for o := range out {
		out[o] = m.Score(kg.Triple{S: s, R: r, O: kg.EntityID(o)})
	}
	return out
}

// genericScoreAllSubjects mirrors genericScoreAllObjects for the subject side.
func genericScoreAllSubjects(m Model, r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	for s := range out {
		out[s] = m.Score(kg.Triple{S: kg.EntityID(s), R: r, O: o})
	}
	return out
}

// initRNG builds the deterministic generator models initialize from.
func initRNG(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

func checkScoreBuf(out []float32, n int) {
	if len(out) != n {
		panic(fmt.Sprintf("kge: score buffer length %d, want %d entities", len(out), n))
	}
}
