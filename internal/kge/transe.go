package kge

import (
	"fmt"

	"repro/internal/kg"
	"repro/internal/vecmath"
)

// TransE is the translation-based model of Bordes et al. (2013): a relation
// is a translation in embedding space and the scoring function is the
// negated distance f(s, r, o) = −d(s + r, o). Norm 1 uses the L1 distance;
// norm 2 uses the squared L2 distance (smooth, so the gradient is exact
// everywhere).
type TransE struct {
	cfg  Config
	norm int
	ps   *ParamSet
	ent  *Param // N×d entity embeddings
	rel  *Param // K×d relation embeddings
}

// NewTransE constructs and initializes a TransE model.
func NewTransE(cfg Config) (*TransE, error) {
	norm := cfg.Norm
	if norm == 0 {
		norm = 1
	}
	if norm != 1 && norm != 2 {
		return nil, fmt.Errorf("kge: transe: norm must be 1 or 2, got %d", cfg.Norm)
	}
	m := &TransE{cfg: cfg, norm: norm, ps: NewParamSet()}
	m.ent = m.ps.Add("entity", cfg.NumEntities, cfg.Dim)
	m.rel = m.ps.Add("relation", cfg.NumRelations, cfg.Dim)
	if cfg.skipInit {
		return m, nil
	}
	rng := initRNG(cfg)
	for i := 0; i < cfg.NumEntities; i++ {
		vecmath.XavierInit(rng, m.ent.M.Row(i), cfg.Dim, cfg.Dim)
		vecmath.NormalizeL2(m.ent.M.Row(i))
	}
	for i := 0; i < cfg.NumRelations; i++ {
		vecmath.XavierInit(rng, m.rel.M.Row(i), cfg.Dim, cfg.Dim)
	}
	return m, nil
}

// Name implements Model.
func (m *TransE) Name() string { return "transe" }

// Dim implements Model.
func (m *TransE) Dim() int { return m.cfg.Dim }

// NumEntities implements Model.
func (m *TransE) NumEntities() int { return m.cfg.NumEntities }

// NumRelations implements Model.
func (m *TransE) NumRelations() int { return m.cfg.NumRelations }

// Params implements Trainable.
func (m *TransE) Params() *ParamSet { return m.ps }

// Score implements Model: −d(s + r, o).
func (m *TransE) Score(t kg.Triple) float32 {
	s := m.ent.M.Row(int(t.S))
	r := m.rel.M.Row(int(t.R))
	o := m.ent.M.Row(int(t.O))
	var d float32
	if m.norm == 1 {
		for i := range s {
			v := s[i] + r[i] - o[i]
			if v < 0 {
				v = -v
			}
			d += v
		}
	} else {
		for i := range s {
			v := s[i] + r[i] - o[i]
			d += v * v
		}
	}
	return -d
}

// ScoreWithContext implements Trainable.
func (m *TransE) ScoreWithContext(t kg.Triple) (float32, GradContext) {
	return m.Score(t), nil
}

// ScoreAllObjects implements Model. With q = s + r the object sweep scores
// −d(q, o') for every entity row o'.
func (m *TransE) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	vecmath.Add(q, m.ent.M.Row(int(s)), m.rel.M.Row(int(r)))
	for o := 0; o < m.cfg.NumEntities; o++ {
		row := m.ent.M.Row(o)
		var d float32
		if m.norm == 1 {
			d = vecmath.L1Distance(q, row)
		} else {
			d = vecmath.SquaredL2Distance(q, row)
		}
		out[o] = -d
	}
	return out
}

// ScoreAllSubjects implements Model. d(s + r, o) = d(s, o − r), so with
// q = o − r the subject sweep is symmetric to the object sweep.
func (m *TransE) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	q := make([]float32, m.cfg.Dim)
	vecmath.Sub(q, m.ent.M.Row(int(o)), m.rel.M.Row(int(r)))
	for s := 0; s < m.cfg.NumEntities; s++ {
		row := m.ent.M.Row(s)
		var d float32
		if m.norm == 1 {
			d = vecmath.L1Distance(row, q)
		} else {
			d = vecmath.SquaredL2Distance(row, q)
		}
		out[s] = -d
	}
	return out
}

// AccumulateGrad implements Trainable. With e = s + r − o:
//
//	norm 1: ∂f/∂s = −sign(e), ∂f/∂r = −sign(e), ∂f/∂o = +sign(e)
//	norm 2: ∂f/∂s = −2e,      ∂f/∂r = −2e,      ∂f/∂o = +2e
func (m *TransE) AccumulateGrad(t kg.Triple, _ GradContext, upstream float32, gb *GradBuffer) {
	s := m.ent.M.Row(int(t.S))
	r := m.rel.M.Row(int(t.R))
	o := m.ent.M.Row(int(t.O))
	gs := gb.Row("entity", int(t.S))
	gr := gb.Row("relation", int(t.R))
	go_ := gb.Row("entity", int(t.O))
	for i := range s {
		e := s[i] + r[i] - o[i]
		var g float32
		if m.norm == 1 {
			switch {
			case e > 0:
				g = 1
			case e < 0:
				g = -1
			}
		} else {
			g = 2 * e
		}
		gs[i] += -g * upstream
		gr[i] += -g * upstream
		go_[i] += g * upstream
	}
}

// PostBatch implements Trainable: project entity embeddings back onto the
// unit L2 ball, the constraint from the original TransE training procedure.
func (m *TransE) PostBatch() {
	for i := 0; i < m.cfg.NumEntities; i++ {
		row := m.ent.M.Row(i)
		if vecmath.SquaredL2Norm(row) > 1 {
			vecmath.NormalizeL2(row)
		}
	}
}
