package kge

import (
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// ComplEx (Trouillon et al., 2016) extends DistMult to complex-valued
// embeddings, scoring with the real part of the Hermitian trilinear product:
//
//	f(s, r, o) = Re(⟨s, r, conj(o)⟩)
//	           = Σₖ s_re·r_re·o_re + s_im·r_re·o_im + s_re·r_im·o_im − s_im·r_im·o_re
//
// The asymmetry introduced by the conjugate lets ComplEx model antisymmetric
// relations, which DistMult cannot. Storage: each embedding is a single
// float32 vector of length 2·Dim, real components first, imaginary second.
type ComplEx struct {
	cfg Config
	ps  *ParamSet
	ent *Param // N×2d
	rel *Param // K×2d
}

// NewComplEx constructs and initializes a ComplEx model. cfg.Dim is the
// number of complex components; the storage width is 2·Dim.
func NewComplEx(cfg Config) (*ComplEx, error) {
	m := &ComplEx{cfg: cfg, ps: NewParamSet()}
	m.ent = m.ps.Add("entity", cfg.NumEntities, 2*cfg.Dim)
	m.rel = m.ps.Add("relation", cfg.NumRelations, 2*cfg.Dim)
	if cfg.skipInit {
		return m, nil
	}
	rng := initRNG(cfg)
	for i := 0; i < cfg.NumEntities; i++ {
		vecmath.XavierInit(rng, m.ent.M.Row(i), 2*cfg.Dim, 2*cfg.Dim)
	}
	for i := 0; i < cfg.NumRelations; i++ {
		vecmath.XavierInit(rng, m.rel.M.Row(i), 2*cfg.Dim, 2*cfg.Dim)
	}
	return m, nil
}

// Name implements Model.
func (m *ComplEx) Name() string { return "complex" }

// Dim implements Model (the number of complex components).
func (m *ComplEx) Dim() int { return m.cfg.Dim }

// NumEntities implements Model.
func (m *ComplEx) NumEntities() int { return m.cfg.NumEntities }

// NumRelations implements Model.
func (m *ComplEx) NumRelations() int { return m.cfg.NumRelations }

// Params implements Trainable.
func (m *ComplEx) Params() *ParamSet { return m.ps }

// split views a 2d-length storage row as (real, imaginary) halves.
func (m *ComplEx) split(row []float32) (re, im []float32) {
	d := m.cfg.Dim
	return row[:d], row[d:]
}

// Score implements Model.
func (m *ComplEx) Score(t kg.Triple) float32 {
	sre, sim := m.split(m.ent.M.Row(int(t.S)))
	rre, rim := m.split(m.rel.M.Row(int(t.R)))
	ore, oim := m.split(m.ent.M.Row(int(t.O)))
	var f float32
	for i := range sre {
		f += sre[i]*rre[i]*ore[i] +
			sim[i]*rre[i]*oim[i] +
			sre[i]*rim[i]*oim[i] -
			sim[i]*rim[i]*ore[i]
	}
	return f
}

// ScoreWithContext implements Trainable.
func (m *ComplEx) ScoreWithContext(t kg.Triple) (float32, GradContext) {
	return m.Score(t), nil
}

// ScoreAllObjects implements Model. The score is linear in o, with
//
//	q_re = s_re∘r_re − s_im∘r_im   (coefficient of o_re)
//	q_im = s_im∘r_re + s_re∘r_im   (coefficient of o_im)
//
// so the object sweep is a single matrix-vector product over the 2d storage.
func (m *ComplEx) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	d := m.cfg.Dim
	sre, sim := m.split(m.ent.M.Row(int(s)))
	rre, rim := m.split(m.rel.M.Row(int(r)))
	q := make([]float32, 2*d)
	for i := 0; i < d; i++ {
		q[i] = sre[i]*rre[i] - sim[i]*rim[i]
		q[d+i] = sim[i]*rre[i] + sre[i]*rim[i]
	}
	return vecmath.MatVec(out, m.ent.M, q)
}

// ScoreAllSubjects implements Model: linear in s with
//
//	q_re = r_re∘o_re + r_im∘o_im
//	q_im = r_re∘o_im − r_im∘o_re
func (m *ComplEx) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	checkScoreBuf(out, m.cfg.NumEntities)
	d := m.cfg.Dim
	rre, rim := m.split(m.rel.M.Row(int(r)))
	ore, oim := m.split(m.ent.M.Row(int(o)))
	q := make([]float32, 2*d)
	for i := 0; i < d; i++ {
		q[i] = rre[i]*ore[i] + rim[i]*oim[i]
		q[d+i] = rre[i]*oim[i] - rim[i]*ore[i]
	}
	return vecmath.MatVec(out, m.ent.M, q)
}

// AccumulateGrad implements Trainable with the partial derivatives of the
// four-term score expansion.
func (m *ComplEx) AccumulateGrad(t kg.Triple, _ GradContext, upstream float32, gb *GradBuffer) {
	d := m.cfg.Dim
	sre, sim := m.split(m.ent.M.Row(int(t.S)))
	rre, rim := m.split(m.rel.M.Row(int(t.R)))
	ore, oim := m.split(m.ent.M.Row(int(t.O)))
	gs := gb.Row("entity", int(t.S))
	gr := gb.Row("relation", int(t.R))
	go_ := gb.Row("entity", int(t.O))
	for i := 0; i < d; i++ {
		gs[i] += upstream * (rre[i]*ore[i] + rim[i]*oim[i])
		gs[d+i] += upstream * (rre[i]*oim[i] - rim[i]*ore[i])
		gr[i] += upstream * (sre[i]*ore[i] + sim[i]*oim[i])
		gr[d+i] += upstream * (sre[i]*oim[i] - sim[i]*ore[i])
		go_[i] += upstream * (sre[i]*rre[i] - sim[i]*rim[i])
		go_[d+i] += upstream * (sim[i]*rre[i] + sre[i]*rim[i])
	}
}

// PostBatch implements Trainable (no constraints).
func (m *ComplEx) PostBatch() {}
