package kge

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// flatTestConfig returns a small but non-degenerate config for name.
func flatTestConfig(name string) Config {
	cfg := Config{NumEntities: 23, NumRelations: 5, Dim: 12, Seed: 9}
	if name == "conve" {
		cfg.Dim = 12 // 3×4 reshape, exercises the geometry fields
	}
	return cfg
}

// scrambleWeights makes the freshly initialized weights distinguishable from
// any re-initialization, so a loader that silently re-inits instead of
// restoring would change the fingerprint.
func scrambleWeights(m Trainable, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params().List() {
		for i := range p.M.Data {
			p.M.Data[i] = float32(rng.NormFloat64())
		}
	}
}

// TestFlatRoundTripFingerprint is the core contract of the flat format:
// for every model the paper defines, gob-save → load, flat-save → mmap-open,
// and the original in-memory model all fingerprint identically.
func TestFlatRoundTripFingerprint(t *testing.T) {
	for _, name := range ModelNames() {
		t.Run(name, func(t *testing.T) {
			m, err := New(name, flatTestConfig(name))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			scrambleWeights(m, 42)
			want := Fingerprint(m)

			dir := t.TempDir()
			gobPath := filepath.Join(dir, "m.kge")
			flatPath := filepath.Join(dir, "m.kgf")
			if err := SaveFile(m, gobPath); err != nil {
				t.Fatalf("SaveFile: %v", err)
			}
			if err := SaveFlatFile(m, flatPath); err != nil {
				t.Fatalf("SaveFlatFile: %v", err)
			}

			fromGob, err := LoadFile(gobPath)
			if err != nil {
				t.Fatalf("LoadFile: %v", err)
			}
			if got := Fingerprint(fromGob); got != want {
				t.Errorf("gob round-trip fingerprint %s, want %s", got, want)
			}

			mm, err := OpenMapped(flatPath)
			if err != nil {
				t.Fatalf("OpenMapped: %v", err)
			}
			defer mm.Close()
			if got := Fingerprint(mm); got != want {
				t.Errorf("flat round-trip fingerprint %s, want %s", got, want)
			}
			if mm.Name() != m.Name() || mm.Dim() != m.Dim() ||
				mm.NumEntities() != m.NumEntities() || mm.NumRelations() != m.NumRelations() {
				t.Errorf("mapped model geometry differs from original")
			}

			// Scoring must agree bit-for-bit with the original: the mapped
			// tables alias the exact bytes SaveFlat wrote.
			out1 := m.ScoreAllObjects(1, 0, make([]float32, m.NumEntities()))
			out2 := mm.ScoreAllObjects(1, 0, make([]float32, mm.NumEntities()))
			for i := range out1 {
				if out1[i] != out2[i] {
					t.Fatalf("score[%d] %v (heap) != %v (mapped)", i, out1[i], out2[i])
				}
			}
		})
	}
}

// TestFlatSaveDeterministic pins the pure-function property: two saves of
// the same model are byte-identical.
func TestFlatSaveDeterministic(t *testing.T) {
	m, err := New("distmult", flatTestConfig("distmult"))
	if err != nil {
		t.Fatal(err)
	}
	scrambleWeights(m, 7)
	var a, b bytes.Buffer
	if err := SaveFlat(m, &a); err != nil {
		t.Fatal(err)
	}
	if err := SaveFlat(m, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two SaveFlat calls produced different bytes")
	}
}

// TestFlatTruncationNeverPanics simulates a crash mid-write: every prefix
// length of a valid flat checkpoint (sampled densely in the header, sparsely
// through the data) must produce a clean error — never a panic, never a
// silently wrong model.
func TestFlatTruncationNeverPanics(t *testing.T) {
	m, err := New("complex", flatTestConfig("complex"))
	if err != nil {
		t.Fatal(err)
	}
	scrambleWeights(m, 3)
	var buf bytes.Buffer
	if err := SaveFlat(m, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	dir := t.TempDir()
	path := filepath.Join(dir, "torn.kgf")
	cuts := []int{}
	for n := 0; n < 256 && n < len(full); n++ {
		cuts = append(cuts, n)
	}
	for n := 256; n < len(full); n += 97 {
		cuts = append(cuts, n)
	}
	cuts = append(cuts, len(full)-1)
	for _, n := range cuts {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		mm, err := OpenMapped(path)
		if err == nil {
			mm.Close()
			t.Fatalf("OpenMapped accepted a checkpoint truncated to %d of %d bytes", n, len(full))
		}
	}
}

// TestFlatBitflipDetected flips single bytes in the header and in the data
// region: the CRCs must reject both.
func TestFlatBitflipDetected(t *testing.T) {
	m, err := New("transe", flatTestConfig("transe"))
	if err != nil {
		t.Fatal(err)
	}
	scrambleWeights(m, 5)
	var buf bytes.Buffer
	if err := SaveFlat(m, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	path := filepath.Join(t.TempDir(), "flip.kgf")
	for _, pos := range []int{12, 40, len(full) / 2, len(full) - 8} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0x40
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if mm, err := OpenMapped(path); err == nil {
			mm.Close()
			t.Fatalf("OpenMapped accepted a checkpoint with byte %d flipped", pos)
		}
	}
}

// TestLoadAutoSniffsBothFormats verifies format detection: the same weights
// load from either container with identical fingerprints, and the format tag
// reports which path ran.
func TestLoadAutoSniffsBothFormats(t *testing.T) {
	m, err := New("hole", flatTestConfig("hole"))
	if err != nil {
		t.Fatal(err)
	}
	scrambleWeights(m, 11)
	want := Fingerprint(m)
	dir := t.TempDir()

	gobPath := filepath.Join(dir, "m.kge")
	flatPath := filepath.Join(dir, "m.kgf")
	if err := SaveFile(m, gobPath); err != nil {
		t.Fatal(err)
	}
	if err := SaveFlatFile(m, flatPath); err != nil {
		t.Fatal(err)
	}

	g, mapped, format, err := LoadAuto(gobPath)
	if err != nil || format != "gob" || mapped != nil {
		t.Fatalf("LoadAuto(gob): format=%q mapped=%v err=%v", format, mapped, err)
	}
	if got := Fingerprint(g); got != want {
		t.Errorf("gob fingerprint %s, want %s", got, want)
	}

	fm, mapped, format, err := LoadAuto(flatPath)
	if err != nil || format != "flat" || mapped == nil {
		t.Fatalf("LoadAuto(flat): format=%q mapped=%v err=%v", format, mapped, err)
	}
	defer mapped.Close()
	if got := Fingerprint(fm); got != want {
		t.Errorf("flat fingerprint %s, want %s", got, want)
	}
	if mapped.MappedBytes() == 0 {
		t.Errorf("flat load reports no mapped bytes on a little-endian host")
	}
	// LoadAuto must return the concrete model, not the *Mapped wrapper: the
	// optional fast-path interfaces (batched sweeps, pruned ranking) are
	// discovered by type assertion, and wrapping the model in an interface
	// embed would hide them — every sweep over a flat checkpoint would
	// silently take the slow generic path and -prune would refuse the model.
	if _, isWrapper := fm.(*Mapped); isWrapper {
		t.Fatalf("LoadAuto(flat) returned the *Mapped wrapper as the model")
	}
	if _, ok := fm.(ObjectSweeper); !ok {
		t.Errorf("flat-loaded %T lost the ObjectSweeper fast path", fm)
	}
	if _, ok := fm.(BatchScorer); !ok {
		t.Errorf("flat-loaded %T lost the BatchScorer fast path", fm)
	}
}

// TestMappedCloseIdempotent double-closes a mapping.
func TestMappedCloseIdempotent(t *testing.T) {
	m, err := New("distmult", flatTestConfig("distmult"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.kgf")
	if err := SaveFlatFile(m, path); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := mm.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// BenchmarkColdStartGob and BenchmarkColdStartFlat measure the serving
// cold-start cost the flat format exists to kill: time from "checkpoint on
// disk" to "scorable model". Results are recorded in EXPERIMENTS.md.
func benchmarkColdStart(b *testing.B, save func(Trainable, string) error, load func(string) error) {
	m, err := New("distmult", Config{NumEntities: 20000, NumRelations: 50, Dim: 128, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	scrambleWeights(m, 1)
	path := filepath.Join(b.TempDir(), "bench.ckpt")
	if err := save(m, path); err != nil {
		b.Fatal(err)
	}
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := load(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdStartGob(b *testing.B) {
	benchmarkColdStart(b, SaveFile, func(path string) error {
		_, err := LoadFile(path)
		return err
	})
}

func BenchmarkColdStartFlat(b *testing.B) {
	benchmarkColdStart(b, SaveFlatFile, func(path string) error {
		mm, err := OpenMapped(path)
		if err != nil {
			return err
		}
		return mm.Close()
	})
}
