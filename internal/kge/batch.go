package kge

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/kg"
	"repro/internal/vecmath"
)

// BatchScorer is the relation-blocked extension of Model's object sweep:
// scoring k subjects that share one relation as a single tiled
// matrix–matrix product (or an equivalently tiled sweep) instead of k
// independent ScoreAllObjects calls. Every bilinear model builds a k×d
// query matrix and runs one vecmath.MatMat against the entity table; ConvE
// runs k hidden-vector forward passes and batches only the output layer.
//
// Row j of the output must be bit-identical to
// ScoreAllObjects(ss[j], r, ...): the batch path is a scheduling change,
// not a numerical one, which is what keeps discovery output byte-identical
// whether or not batching is enabled.
type BatchScorer interface {
	Model
	// ScoreAllObjectsBatch writes f((ss[j], r, o')) for every entity o'
	// into row j of out, which must be len(ss)×NumEntities.
	ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix)
}

// ScoreAllObjectsBatch runs the batched object sweep for any model: models
// implementing BatchScorer use their tiled fast path, everything else falls
// back to one ScoreAllObjects sweep per subject. The fallback keeps Model
// implementable without the batch method while letting callers schedule
// uniformly by relation block.
func ScoreAllObjectsBatch(m Model, ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.NumEntities())
	if bs, ok := m.(BatchScorer); ok {
		bs.ScoreAllObjectsBatch(ss, r, out)
		return
	}
	for j, s := range ss {
		m.ScoreAllObjects(s, r, out.Row(j))
	}
}

func checkBatchBuf(out *vecmath.Matrix, rows, n int) {
	if out.Rows != rows || out.Cols != n {
		panic(fmt.Sprintf("kge: batch score buffer is %dx%d, want %dx%d", out.Rows, out.Cols, rows, n))
	}
}

// ScoreAllObjectsBatch implements BatchScorer: the k query vectors
// qⱼ = sⱼ∘r form a k×d matrix and the whole block is one E·Qᵀ product.
func (m *DistMult) ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.cfg.NumEntities)
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	rRow := m.rel.M.Row(int(r))
	for j, s := range ss {
		vecmath.Hadamard(q.Row(j), m.ent.M.Row(int(s)), rRow)
	}
	vecmath.MatMat(out, m.ent.M, q)
}

// ScoreAllObjectsBatch implements BatchScorer with the same 2d-wide query
// construction as ScoreAllObjects, batched into one E·Qᵀ product.
func (m *ComplEx) ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.cfg.NumEntities)
	d := m.cfg.Dim
	rre, rim := m.split(m.rel.M.Row(int(r)))
	q := vecmath.NewMatrix(len(ss), 2*d)
	for j, s := range ss {
		sre, sim := m.split(m.ent.M.Row(int(s)))
		row := q.Row(j)
		for i := 0; i < d; i++ {
			row[i] = sre[i]*rre[i] - sim[i]*rim[i]
			row[d+i] = sim[i]*rre[i] + sre[i]*rim[i]
		}
	}
	vecmath.MatMat(out, m.ent.M, q)
}

// ScoreAllObjectsBatch implements BatchScorer: qⱼ = Wᵣᵀ·sⱼ per subject,
// then one E·Qᵀ product. The k Wᵣᵀ·s products also reuse Wᵣ while it is
// cache-hot, which the per-group path re-reads per subject.
func (m *RESCAL) ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.cfg.NumEntities)
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j, s := range ss {
		m.wts(q.Row(j), r, m.ent.M.Row(int(s)))
	}
	vecmath.MatMat(out, m.ent.M, q)
}

// ScoreAllObjectsBatch implements BatchScorer: qⱼ = r * sⱼ (circular
// convolution) per subject, then one E·Qᵀ product.
func (m *HolE) ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.cfg.NumEntities)
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	rRow := m.rel.M.Row(int(r))
	for j, s := range ss {
		fft.Convolve(q.Row(j), rRow, m.ent.M.Row(int(s)))
	}
	vecmath.MatMat(out, m.ent.M, q)
}

// ScoreAllObjectsBatch implements BatchScorer: k convolution+FC forward
// passes produce a k×d hidden matrix, the output layer becomes one E·Hᵀ
// product, and the per-entity biases are added row by row in the same
// ascending order as ScoreAllObjects.
func (m *ConvE) ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.cfg.NumEntities)
	h := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	for j, s := range ss {
		copy(h.Row(j), m.forward(s, r).hidden)
	}
	vecmath.MatMat(out, m.ent.M, h)
	for j := range ss {
		row := out.Row(j)
		for o := range row {
			row[o] += m.entBias.M.Row(o)[0]
		}
	}
}

// ScoreAllObjectsBatch implements BatchScorer. TransE's sweep is a distance,
// not a dot product, so there is no MatMat formulation that preserves the
// accumulation order; instead the entity table is walked in MatMat's row
// tiles with every query scoring a tile before it leaves cache, reusing the
// exact per-pair distance kernels of ScoreAllObjects.
func (m *TransE) ScoreAllObjectsBatch(ss []kg.EntityID, r kg.RelationID, out *vecmath.Matrix) {
	checkBatchBuf(out, len(ss), m.cfg.NumEntities)
	q := vecmath.NewMatrix(len(ss), m.cfg.Dim)
	rRow := m.rel.M.Row(int(r))
	for j, s := range ss {
		vecmath.Add(q.Row(j), m.ent.M.Row(int(s)), rRow)
	}
	n := m.cfg.NumEntities
	tile := vecmath.MatMatTileRows(m.cfg.Dim)
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		for j := range ss {
			qj, dst := q.Row(j), out.Row(j)
			for o := lo; o < hi; o++ {
				row := m.ent.M.Row(o)
				var d float32
				if m.norm == 1 {
					d = vecmath.L1Distance(qj, row)
				} else {
					d = vecmath.SquaredL2Distance(qj, row)
				}
				dst[o] = -d
			}
		}
	}
}
