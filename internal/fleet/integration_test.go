package fleet_test

// Multi-process integration harness for the discovery fleet: boots a real
// coordinator and real worker processes (built from this tree), runs a
// 50k-entity sweep through them, and asserts the spliced TSV is
// byte-identical to a single-process kgdiscover run — in the clean case and
// under every injected fault: a worker SIGKILLed mid-unit, a worker that
// stops heartbeating, duplicate unit delivery, a worker that hangs forever,
// and a coordinator SIGKILL resumed from its WAL.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
)

// Sweep parameters shared by every scenario and the single-process
// reference. The model is deliberately untrained: scores from seeded random
// embeddings are as deterministic as trained ones and make the 50k-entity
// fixture cheap to build.
// With untrained (seeded random) embeddings a candidate's rank is roughly
// uniform over the 50k entities, so TopN has to be generous for the sweep
// to keep a meaningful number of facts (~4% of 200 candidates/relation).
const (
	sweepStrategy = "graph_degree"
	sweepTopN     = "2000"
	sweepMaxCand  = "200"
	sweepSeed     = "7"
	numRelations  = 12
)

var arts struct {
	once      sync.Once
	err       error
	dataDir   string
	modelPath string
	refTSV    string
	ref       []byte
}

// artifacts builds the shared fixture once per test process: a 50k-entity
// dataset, a flat checkpoint, and the single-process reference TSV produced
// by the kgdiscover binary with the exact sweep options the fleet runs.
func artifacts(t *testing.T) (dataDir, modelPath string, ref []byte) {
	t.Helper()
	arts.once.Do(func() {
		dir, err := os.MkdirTemp("", "fleet-arts-")
		if err != nil {
			arts.err = err
			return
		}
		ds, err := synth.Generate(synth.Config{
			Name:         "fleet50k",
			NumEntities:  50000,
			NumRelations: numRelations,
			NumTriples:   150000,
			NumTypes:     8,
			EntityZipf:   1.0,
			RelationZipf: 0.9,
			ClosureProb:  0.2,
			NoiseProb:    0.05,
			ValidFrac:    0.02,
			TestFrac:     0.02,
			Seed:         11,
		})
		if err != nil {
			arts.err = fmt.Errorf("generate: %w", err)
			return
		}
		arts.dataDir = filepath.Join(dir, "ds")
		if err := kg.SaveDataset(ds, arts.dataDir); err != nil {
			arts.err = err
			return
		}
		m, err := kge.New("distmult", kge.Config{
			NumEntities:  ds.Train.Entities.Len(),
			NumRelations: ds.Train.Relations.Len(),
			Dim:          16,
			Seed:         3,
		})
		if err != nil {
			arts.err = err
			return
		}
		arts.modelPath = filepath.Join(dir, "model.kge")
		if err := kge.SaveFile(m, arts.modelPath); err != nil {
			arts.err = err
			return
		}

		bin, err := harness.TryBuildCmd("kgdiscover")
		if err != nil {
			arts.err = err
			return
		}
		arts.refTSV = filepath.Join(dir, "reference.tsv")
		cmd := refCmd(bin, arts.refTSV)
		if msg, err := cmd.CombinedOutput(); err != nil {
			arts.err = fmt.Errorf("reference kgdiscover: %v\n%s", err, msg)
			return
		}
		arts.ref, arts.err = os.ReadFile(arts.refTSV)
		if arts.err == nil && len(arts.ref) == 0 {
			arts.err = fmt.Errorf("reference sweep discovered no facts")
		}
	})
	if arts.err != nil {
		t.Fatalf("building fleet fixture: %v", arts.err)
	}
	return arts.dataDir, arts.modelPath, arts.ref
}

// workerSpec describes one worker process in a scenario.
type workerSpec struct {
	name  string
	extra []string // fault-injection flags
}

// fleetScenario is one row of the fault matrix.
type fleetScenario struct {
	name       string
	lease      string
	workers    []workerSpec
	coordExtra []string
	// during runs while the fleet executes — this is where workers get
	// SIGKILLed. It may be nil.
	during func(t *testing.T, r *fleetRun)
	// waitWorkers names the workers expected to exit 0 on their own
	// (faulty ones are killed by cleanup instead).
	waitWorkers []string
	// Exact accounting asserted against the coordinator's final summary.
	wantReassignedMin int
	wantReassignedMax int
	wantDuplicatesMin int
	wantDuplicatesMax int
	scrapeMetrics     bool
}

// fleetRun is a live scenario: the processes plus the coordinator address.
type fleetRun struct {
	addr    string
	coord   *harness.Proc
	workers map[string]*harness.Proc
	outTSV  string
}

func (r *fleetRun) status(t *testing.T) fleet.StatusResponse {
	t.Helper()
	var st fleet.StatusResponse
	resp, err := http.Get("http://" + r.addr + "/status")
	if err != nil {
		return st // coordinator mid-restart: empty snapshot
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status decode: %v", err)
	}
	return st
}

func workerUnitsDone(st fleet.StatusResponse, name string) int {
	for _, w := range st.Workers {
		if w.Name == name {
			return w.UnitsDone
		}
	}
	return 0
}

func hasLeaseTo(st fleet.StatusResponse, name string) bool {
	for _, sw := range st.Sweeps {
		for _, u := range sw.Units {
			if u.State == "leased" && u.Worker == name {
				return true
			}
		}
	}
	return false
}

func totalUnitsDone(st fleet.StatusResponse) int {
	n := 0
	for _, sw := range st.Sweeps {
		for _, u := range sw.Units {
			if u.State == "done" {
				n++
			}
		}
	}
	return n
}

// killMidUnit blocks until the sweep is demonstrably under way (some unit
// delivered) and worker name currently holds a lease, then SIGKILLs it — a
// crash mid-unit by construction (the worker's per-relation sleep keeps its
// lease window wide). The "some unit done" gate is deliberately fleet-wide,
// not per-victim: the fast workers can drain every other unit before the
// slow victim finishes its first, so waiting for the victim itself to
// deliver could starve forever.
func killMidUnit(t *testing.T, r *fleetRun, name string) {
	t.Helper()
	ok := harness.PollUntil(90*time.Second, func() bool {
		st := r.status(t)
		return totalUnitsDone(st) >= 1 && hasLeaseTo(st, name)
	})
	if !ok {
		t.Fatalf("worker %s never observed mid-unit\ncoordinator log:\n%s", name, r.coord.Log())
	}
	r.workers[name].Kill()
}

var summaryRE = regexp.MustCompile(`fleet: units=(\d+) workers=(\d+) reassigned=(\d+) duplicates=(\d+) retried=(\d+) resumed=(\d+)`)

// runScenario boots the fleet described by sc, waits for the one-shot
// coordinator to finish, and returns the parsed accounting summary.
func runScenario(t *testing.T, sc fleetScenario) (reassigned, duplicates, resumed int) {
	t.Helper()
	dataDir, modelPath, ref := artifacts(t)
	bin := harness.BuildCmd(t, "kgfleet")
	dir := t.TempDir()
	outTSV := filepath.Join(dir, "facts.tsv")

	lease := sc.lease
	if lease == "" {
		lease = "1500ms"
	}
	coordArgs := append([]string{"coord", "-addr", "127.0.0.1:0",
		"-data", dataDir, "-model", modelPath,
		"-strategy", sweepStrategy, "-top_n", sweepTopN, "-max_candidates", sweepMaxCand, "-seed", sweepSeed,
		"-out", outTSV, "-limit", "0", "-unit", "1",
		"-lease", lease, "-poll", "100ms", "-drain", "1s"}, sc.coordExtra...)
	coord := harness.StartProc(t, filepath.Join(dir, "coord.log"), bin, coordArgs...)
	addr := coord.MustWaitLine(t, `coordinator listening on (\S+)`, 30*time.Second)

	r := &fleetRun{addr: addr, coord: coord, workers: map[string]*harness.Proc{}, outTSV: outTSV}
	for _, ws := range sc.workers {
		args := append([]string{"worker", "-coord", "http://" + addr,
			"-name", ws.name, "-max-idle", "120s"}, ws.extra...)
		r.workers[ws.name] = harness.StartProc(t, filepath.Join(dir, ws.name+".log"), bin, args...)
	}

	if sc.during != nil {
		sc.during(t, r)
	}

	if sc.scrapeMetrics {
		coord.MustWaitLine(t, `sweep complete:`, 3*time.Minute)
		assertMetrics(t, r, sc)
		if err := coord.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM coordinator: %v", err)
		}
	}
	if err := coord.Wait(3 * time.Minute); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for _, name := range sc.waitWorkers {
		if err := r.workers[name].Wait(60 * time.Second); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}

	got, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatalf("fleet TSV: %v\ncoordinator log:\n%s", err, coord.Log())
	}
	if string(got) != string(ref) {
		t.Errorf("fleet TSV differs from single-process reference (%d vs %d bytes)\ncoordinator log:\n%s",
			len(got), len(ref), coord.Log())
	}

	m := summaryRE.FindStringSubmatch(coord.Log())
	if m == nil {
		t.Fatalf("coordinator printed no fleet summary:\n%s", coord.Log())
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	reassigned, duplicates, resumed = atoi(m[3]), atoi(m[4]), atoi(m[6])
	return reassigned, duplicates, resumed
}

func assertMetrics(t *testing.T, r *fleetRun, sc fleetScenario) {
	t.Helper()
	resp, err := http.Get("http://" + r.addr + "/metrics")
	if err != nil {
		t.Fatalf("/metrics during linger: %v", err)
	}
	defer resp.Body.Close()
	var body [1 << 16]byte
	n, _ := resp.Body.Read(body[:])
	text := string(body[:n])
	metric := func(name string) int {
		m := regexp.MustCompile(name + ` (\d+)`).FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("metric %s missing:\n%s", name, text)
		}
		v, _ := strconv.Atoi(m[1])
		return v
	}
	if v := metric("kgfleet_reassignments_total"); v < sc.wantReassignedMin {
		t.Errorf("kgfleet_reassignments_total = %d, want >= %d", v, sc.wantReassignedMin)
	}
	// Exactly one accepted record per relation, ever: the dedup layer makes
	// double-splicing structurally impossible, and this pins it.
	if v := metric("kgfleet_records_total"); v != numRelations {
		t.Errorf("kgfleet_records_total = %d, want exactly %d", v, numRelations)
	}
}

// TestFleetFaultMatrix is the table-driven fault-injection matrix: every row
// must produce byte-identical output and exact unit accounting.
func TestFleetFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet harness")
	}
	scenarios := []fleetScenario{
		{
			name: "clean",
			// Generous lease: under -race on a loaded single-core host the
			// instrumented test binary can starve the (uninstrumented)
			// children for over a second, and a tight lease would read that
			// scheduling hiccup as a dead worker. Zero reassignments must
			// mean zero faults, not zero load.
			lease: "10s",
			workers: []workerSpec{
				{name: "w0", extra: []string{"-fault-sleep-per-relation", "50ms"}},
				{name: "w1", extra: []string{"-fault-sleep-per-relation", "50ms"}},
			},
			waitWorkers:       []string{"w0", "w1"},
			wantReassignedMax: 0,
			wantDuplicatesMax: 0,
		},
		{
			name: "worker-sigkill-mid-unit",
			workers: []workerSpec{
				{name: "w0", extra: []string{"-fault-sleep-per-relation", "800ms"}},
				{name: "w1", extra: []string{"-fault-sleep-per-relation", "100ms"}},
				{name: "w2", extra: []string{"-fault-sleep-per-relation", "100ms"}},
			},
			during:            func(t *testing.T, r *fleetRun) { killMidUnit(t, r, "w0") },
			waitWorkers:       []string{"w1", "w2"},
			wantReassignedMin: 1,
			wantDuplicatesMax: numRelations,
			scrapeMetrics:     true,
			coordExtra:        []string{"-linger", "30s"},
		},
		{
			name: "dropped-heartbeats",
			workers: []workerSpec{
				// w0 heartbeats for its first unit, then goes silent while
				// still sweeping (2.5s per relation vs a 1.5s lease): its
				// leases expire, its late deliveries are deduped. w1 is
				// slowed too so pending units remain once w0 goes mute.
				{name: "w0", extra: []string{"-fault-mute-after", "1", "-fault-sleep-per-relation", "2500ms"}},
				{name: "w1", extra: []string{"-fault-sleep-per-relation", "600ms"}},
			},
			waitWorkers:       []string{"w1"},
			wantReassignedMin: 1,
			wantDuplicatesMax: numRelations,
		},
		{
			name: "duplicate-delivery",
			workers: []workerSpec{
				{name: "w0", extra: []string{"-fault-dup-complete", "-fault-sleep-per-relation", "100ms"}},
				{name: "w1", extra: []string{"-fault-sleep-per-relation", "100ms"}},
			},
			waitWorkers:       []string{"w0", "w1"},
			wantReassignedMax: 0,
			wantDuplicatesMin: 1,
			wantDuplicatesMax: numRelations,
		},
		{
			name: "worker-hang-mid-unit",
			workers: []workerSpec{
				// w0 wedges forever (alive, silent) one relation into its
				// second unit; the lease expires and the unit moves on.
				{name: "w0", extra: []string{"-fault-hang-after", "1", "-fault-sleep-per-relation", "100ms"}},
				{name: "w1", extra: []string{"-fault-sleep-per-relation", "100ms"}},
			},
			waitWorkers:       []string{"w1"},
			wantReassignedMin: 1,
			wantDuplicatesMax: numRelations,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			reassigned, duplicates, resumed := runScenario(t, sc)
			if reassigned < sc.wantReassignedMin {
				t.Errorf("reassigned = %d, want >= %d", reassigned, sc.wantReassignedMin)
			}
			if sc.wantReassignedMin == 0 && reassigned > sc.wantReassignedMax {
				t.Errorf("reassigned = %d, want <= %d", reassigned, sc.wantReassignedMax)
			}
			if duplicates < sc.wantDuplicatesMin {
				t.Errorf("duplicates = %d, want >= %d", duplicates, sc.wantDuplicatesMin)
			}
			if duplicates > sc.wantDuplicatesMax {
				t.Errorf("duplicates = %d, want <= %d", duplicates, sc.wantDuplicatesMax)
			}
			if resumed != 0 {
				t.Errorf("resumed = %d, want 0 (no checkpoint in this scenario)", resumed)
			}
		})
	}
}

// TestFleetCoordinatorCrashResume SIGKILLs the coordinator mid-sweep and
// restarts it on the same port with -resume: the WAL replays the already
// accepted relations, surviving workers reattach, and the final TSV is
// byte-identical to the single-process reference.
func TestFleetCoordinatorCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet harness")
	}
	dataDir, modelPath, ref := artifacts(t)
	bin := harness.BuildCmd(t, "kgfleet")
	dir := t.TempDir()
	outTSV := filepath.Join(dir, "facts.tsv")
	wal := filepath.Join(dir, "sweep.wal")

	coordArgs := func(addr string, extra ...string) []string {
		return append([]string{"coord", "-addr", addr,
			"-data", dataDir, "-model", modelPath,
			"-strategy", sweepStrategy, "-top_n", sweepTopN, "-max_candidates", sweepMaxCand, "-seed", sweepSeed,
			"-out", outTSV, "-limit", "0", "-unit", "1",
			"-lease", "1500ms", "-poll", "100ms", "-drain", "2s",
			"-checkpoint", wal}, extra...)
	}
	coord := harness.StartProc(t, filepath.Join(dir, "coord1.log"), bin, coordArgs("127.0.0.1:0")...)
	addr := coord.MustWaitLine(t, `coordinator listening on (\S+)`, 30*time.Second)

	r := &fleetRun{addr: addr, coord: coord, workers: map[string]*harness.Proc{}}
	for _, name := range []string{"w0", "w1"} {
		r.workers[name] = harness.StartProc(t, filepath.Join(dir, name+".log"), bin,
			"worker", "-coord", "http://"+addr, "-name", name, "-max-idle", "120s",
			"-fault-sleep-per-relation", "300ms")
	}

	// Let the fleet journal a few relations, then pull the plug.
	ok := harness.PollUntil(90*time.Second, func() bool {
		st := r.status(t)
		return len(st.Sweeps) == 1 && st.Sweeps[0].DoneRelations >= 3 &&
			st.Sweeps[0].DoneRelations < numRelations
	})
	if !ok {
		t.Fatalf("sweep never reached the kill window\ncoordinator log:\n%s", coord.Log())
	}
	coord.Kill()

	// Same port, same WAL, -resume: the workers' retry loops reattach to
	// the new incarnation without restarting.
	coord2 := harness.StartProc(t, filepath.Join(dir, "coord2.log"), bin,
		coordArgs(addr, "-resume")...)
	if err := coord2.Wait(3 * time.Minute); err != nil {
		t.Fatalf("resumed coordinator: %v", err)
	}
	for name, p := range r.workers {
		if err := p.Wait(60 * time.Second); err != nil {
			t.Errorf("worker %s after coordinator restart: %v", name, err)
		}
	}

	resumed, err := coord2.WaitLine(`checkpoint: resumed (\d+) of \d+ relations`, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := strconv.Atoi(resumed); n < 3 {
		t.Errorf("resumed %s relations from the WAL, want >= 3\nlog:\n%s", resumed, coord2.Log())
	}

	got, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatalf("fleet TSV: %v\nresumed coordinator log:\n%s", err, coord2.Log())
	}
	if string(got) != string(ref) {
		t.Errorf("post-crash fleet TSV differs from single-process reference (%d vs %d bytes)\nlog:\n%s",
			len(got), len(ref), coord2.Log())
	}
}

// refCmd builds the single-process reference command; split out so the
// fixture's sweep options visibly match the fleet scenarios'.
func refCmd(bin, out string) *exec.Cmd {
	return exec.Command(bin,
		"-data", arts.dataDir, "-model", arts.modelPath,
		"-strategy", sweepStrategy, "-top_n", sweepTopN, "-max_candidates", sweepMaxCand,
		"-seed", sweepSeed, "-limit", "0", "-out", out)
}
