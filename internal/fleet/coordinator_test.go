package fleet

// White-box tests of the coordinator's lease/reassignment state machine:
// a fake-clock walk through expiry, reassignment, dedup, and the attempt
// cap, plus a concurrent protocol hammer meant to run under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
)

// tinyArtifacts saves a tiny dataset and an untrained (but seeded, hence
// deterministic) checkpoint for coordinator tests.
func tinyArtifacts(t testing.TB) (dataDir, modelPath string) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(t.TempDir(), "ds")
	if err := kg.SaveDataset(ds, dataDir); err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(t.TempDir(), "m.kge")
	if err := kge.SaveFile(m, modelPath); err != nil {
		t.Fatal(err)
	}
	return dataDir, modelPath
}

func testRequest(dataDir, modelPath string) SweepRequest {
	return SweepRequest{
		Data:     dataDir,
		Model:    modelPath,
		Strategy: "graph_degree",
		Options:  SweepOptions{TopN: 40, MaxCandidates: 30, Seed: 7},
	}
}

// post drives one coordinator endpoint through the full HTTP mux.
func post(t testing.TB, c *Coordinator, path string, body any, into any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("POST %s: response %q is not JSON: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// TestLeaseExpiryReassignmentAndDedup walks the state machine with a fake
// clock: a worker leases a unit and vanishes, the lease expires, the unit is
// reassigned and completed by someone else, and the zombie's late delivery
// is detected as a duplicate — never double-spliced.
func TestLeaseExpiryReassignmentAndDedup(t *testing.T) {
	dataDir, modelPath := tinyArtifacts(t)
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	now := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock }
	advance := func(d time.Duration) { clockMu.Lock(); clock = clock.Add(d); clockMu.Unlock() }

	c := New(Config{LeaseTTL: 10 * time.Second, now: now})
	sw, err := c.addSweep(testRequest(dataDir, modelPath))
	if err != nil {
		t.Fatal(err)
	}

	var lease LeaseResponse
	post(t, c, "/lease", LeaseRequest{Worker: "a"}, &lease)
	if lease.Status != StatusUnit {
		t.Fatalf("lease: %+v", lease)
	}
	u := lease.Unit

	var hb HeartbeatResponse
	post(t, c, "/heartbeat", HeartbeatRequest{Worker: "a", SweepID: u.SweepID, UnitID: u.UnitID}, &hb)
	if hb.Status != StatusOK {
		t.Fatalf("live heartbeat: %+v", hb)
	}

	// Worker a goes silent past the TTL; the next lease poll (worker b)
	// expires it and is handed the same relations.
	advance(11 * time.Second)
	var lease2 LeaseResponse
	post(t, c, "/lease", LeaseRequest{Worker: "b"}, &lease2)
	if lease2.Status != StatusUnit {
		t.Fatalf("reassigned lease: %+v", lease2)
	}
	if lease2.Unit.Relations[0] != u.Relations[0] {
		// Unit scan order is deterministic, so b gets a's expired unit first.
		t.Fatalf("worker b got unit %d (relation %v), want a's expired unit %d (relation %v)",
			lease2.Unit.UnitID, lease2.Unit.Relations, u.UnitID, u.Relations)
	}
	if got := c.reassignedTotal; got != 1 {
		t.Errorf("reassignedTotal = %d, want 1", got)
	}

	// The original worker's heartbeat now reports abandonment.
	post(t, c, "/heartbeat", HeartbeatRequest{Worker: "a", SweepID: u.SweepID, UnitID: u.UnitID}, &hb)
	if hb.Status != StatusAbandon {
		t.Fatalf("zombie heartbeat: %+v", hb)
	}

	// b completes the unit; a's late duplicate delivery is counted and
	// dropped, not spliced a second time.
	rec := jobs.RelationRecord{Relation: u.Relations[0]}
	var comp CompleteResponse
	post(t, c, "/complete", CompleteRequest{Worker: "b", SweepID: u.SweepID, UnitID: lease2.Unit.UnitID,
		Records: []jobs.RelationRecord{rec}}, &comp)
	if comp.Status != StatusOK || comp.Accepted != 1 || comp.Duplicates != 0 {
		t.Fatalf("complete by b: %+v", comp)
	}
	post(t, c, "/complete", CompleteRequest{Worker: "a", SweepID: u.SweepID, UnitID: u.UnitID,
		Records: []jobs.RelationRecord{rec}}, &comp)
	if comp.Status != StatusOK || comp.Accepted != 0 || comp.Duplicates != 1 {
		t.Fatalf("zombie complete: %+v", comp)
	}
	if len(sw.records) != 1 {
		t.Fatalf("sweep spliced %d records for one relation", len(sw.records))
	}

	// Unknown sweep IDs are answered, not crashed on.
	post(t, c, "/complete", CompleteRequest{Worker: "x", SweepID: "nope", UnitID: 0,
		Records: []jobs.RelationRecord{rec}}, &comp)
	if comp.Status != StatusUnknown {
		t.Fatalf("unknown sweep complete: %+v", comp)
	}
	post(t, c, "/heartbeat", HeartbeatRequest{Worker: "x", SweepID: "nope"}, &hb)
	if hb.Status != StatusUnknown {
		t.Fatalf("unknown sweep heartbeat: %+v", hb)
	}
}

// TestFailReturnsUnitAndAttemptCapFailsSweep exercises the explicit-failure
// path and the retry bound: a unit leased MaxAttempts times fails the whole
// sweep rather than retrying forever.
func TestFailReturnsUnitAndAttemptCapFailsSweep(t *testing.T) {
	dataDir, modelPath := tinyArtifacts(t)
	c := New(Config{LeaseTTL: time.Hour, MaxAttempts: 2})
	sw, err := c.addSweep(testRequest(dataDir, modelPath))
	if err != nil {
		t.Fatal(err)
	}

	var lease LeaseResponse
	post(t, c, "/lease", LeaseRequest{Worker: "a"}, &lease)
	u := lease.Unit
	var fail FailResponse
	post(t, c, "/fail", FailRequest{Worker: "a", SweepID: u.SweepID, UnitID: u.UnitID, Error: "boom"}, &fail)
	if fail.Status != StatusOK {
		t.Fatalf("fail: %+v", fail)
	}
	if c.retriedTotal != 1 {
		t.Errorf("retriedTotal = %d, want 1", c.retriedTotal)
	}

	// Attempt 2 leases the same unit again; its failure exhausts the cap,
	// so the next lease scan fails the sweep.
	post(t, c, "/lease", LeaseRequest{Worker: "b"}, &lease)
	if lease.Status != StatusUnit || lease.Unit.UnitID != u.UnitID {
		t.Fatalf("retry lease: %+v", lease)
	}
	post(t, c, "/fail", FailRequest{Worker: "b", SweepID: u.SweepID, UnitID: u.UnitID, Error: "boom again"}, &fail)
	post(t, c, "/lease", LeaseRequest{Worker: "c"}, &lease)

	select {
	case <-sw.doneCh:
	default:
		t.Fatal("sweep still running after the attempt cap")
	}
	if sw.err == nil {
		t.Fatal("sweep failed with nil error")
	}
}

// TestCoordinatorConcurrentProtocol hammers the full protocol concurrently —
// three in-process workers (one of which stops heartbeating and overruns its
// lease) plus a rogue client sending junk heartbeats, completions, and
// failure reports — and requires the spliced result to exactly match a
// single-process jobs.Run. Run with -race, this is the lease state machine's
// data-race gate.
func TestCoordinatorConcurrentProtocol(t *testing.T) {
	dataDir, modelPath := tinyArtifacts(t)
	c := New(Config{LeaseTTL: 500 * time.Millisecond, PollInterval: 20 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cfg := WorkerConfig{Coordinator: srv.URL, Name: fmt.Sprintf("w%d", i), MaxIdle: time.Minute}
		if i == 0 {
			// Overrun the 500ms lease silently: forces expiry, reassignment,
			// and duplicate-delivery reconciliation mid-hammer.
			cfg.MuteAfterUnits = 1
			cfg.SleepPerRelation = 700 * time.Millisecond
		}
		w := NewWorker(cfg)
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Run(ctx) }()
	}

	// Rogue client: junk registrations, heartbeats for random units,
	// completions for random sweeps, failure reports. None of it may
	// corrupt state or race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		// t.Fatal is off-limits in a goroutine, so fire and forget.
		fire := func(path string, body any) {
			b, _ := json.Marshal(body)
			req := httptest.NewRequest("POST", path, bytes.NewReader(b))
			c.Handler().ServeHTTP(httptest.NewRecorder(), req)
		}
		rng := rand.New(rand.NewSource(42))
		for ctx.Err() == nil {
			switch rng.Intn(4) {
			case 0:
				fire("/register", RegisterRequest{Worker: "rogue"})
			case 1:
				fire("/heartbeat", HeartbeatRequest{Worker: "rogue", SweepID: "bogus", UnitID: rng.Intn(10)})
			case 2:
				fire("/complete", CompleteRequest{Worker: "rogue", SweepID: "bogus",
					Records: []jobs.RelationRecord{{Relation: kg.RelationID(rng.Intn(10))}}})
			case 3:
				fire("/fail", FailRequest{Worker: "rogue", SweepID: "bogus", UnitID: rng.Intn(10), Error: "junk"})
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	req := testRequest(dataDir, modelPath)
	resp, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancel()
	wg.Wait()

	// Reference: the identical sweep, single-process.
	ds, err := kg.LoadDataset(dataDir, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	m, mapped, _, err := kge.LoadAuto(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if mapped != nil {
		defer mapped.Close()
	}
	strategy, err := core.StrategyByName(req.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := jobs.Run(context.Background(), jobs.Spec{
		Model: m, Graph: ds.Train, Strategy: strategy, Options: req.Options.CoreOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Facts) != len(res.Facts) {
		t.Fatalf("fleet found %d facts, single-process %d", len(resp.Facts), len(res.Facts))
	}
	for i, f := range res.Facts {
		got := resp.Facts[i]
		if got.S != f.Triple.S || got.R != f.Triple.R || got.O != f.Triple.O || got.Rank != f.Rank {
			t.Fatalf("fact %d: fleet %+v, single-process %+v", i, got, f)
		}
	}
	if resp.Fleet.TotalRelations != len(ds.Train.RelationIDs()) {
		t.Errorf("TotalRelations = %d, want %d", resp.Fleet.TotalRelations, len(ds.Train.RelationIDs()))
	}
}

// TestSubmitJoinsIdenticalSweep: two concurrent submissions of the same
// request share one sweep (and one result) instead of sweeping twice.
func TestSubmitJoinsIdenticalSweep(t *testing.T) {
	dataDir, modelPath := tinyArtifacts(t)
	c := New(Config{PollInterval: 20 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "w0", MaxIdle: time.Minute})
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	defer func() { cancel(); <-done }()

	req := testRequest(dataDir, modelPath)
	results := make(chan *SweepResponse, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := c.Submit(ctx, req)
			if err != nil {
				t.Errorf("Submit: %v", err)
			}
			results <- resp
		}()
	}
	r1, r2 := <-results, <-results
	if r1 == nil || r2 == nil {
		t.Fatal("nil result")
	}
	if r1.SweepID != r2.SweepID {
		t.Errorf("sweep IDs differ: %s vs %s", r1.SweepID, r2.SweepID)
	}
	c.mu.Lock()
	n := len(c.sweeps)
	c.mu.Unlock()
	if n != 1 {
		t.Errorf("%d sweeps for identical submissions, want 1", n)
	}
}
