package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/kge"
)

// fuzzEndpoints are every coordinator endpoint that decodes a request body.
var fuzzEndpoints = []string{
	"/register", "/lease", "/heartbeat", "/complete", "/fail", "/sweep",
}

// FuzzFleetDecode throws arbitrary bytes at every wire-decoding coordinator
// endpoint: malformed JSON, truncated bodies, type confusion, and absurd
// values must never panic, and every response — success or error — must be
// well-formed JSON with a sane status code. (/sweep validation rejects
// fuzzed artifact paths long before anything blocks on a fleet.)
func FuzzFleetDecode(f *testing.F) {
	f.Add(0, []byte(`{"worker":"w1"}`))
	f.Add(1, []byte(`{"worker":"w1"}`))
	f.Add(2, []byte(`{"worker":"w1","sweep_id":"abc","unit_id":0}`))
	f.Add(3, []byte(`{"worker":"w1","sweep_id":"abc","unit_id":0,"records":[{"relation":2,"facts":[{"s":1,"r":2,"o":3,"rank":4}]}]}`))
	f.Add(3, []byte(`{"worker":"w1","sweep_id":"abc","unit_id":0,"records":[{"relation":`)) // truncated mid-record
	f.Add(4, []byte(`{"worker":"w1","sweep_id":"abc","unit_id":9,"error":"x","permanent":true}`))
	f.Add(5, []byte(`{"data":"/nonexistent","model":"/nonexistent","strategy":"graph_degree"}`))
	f.Add(5, []byte(`{"data":"","model":"","strategy":""}`))
	f.Add(5, []byte(`{"data":"d","model":"m","strategy":"s","unit_relations":-5}`))
	f.Add(2, []byte(`null`))
	f.Add(0, []byte(``))
	f.Add(1, []byte(`[1,2,3]`))
	f.Add(3, []byte(`{"records":"not-an-array"}`))

	c := New(Config{})
	h := c.Handler()
	f.Fuzz(func(t *testing.T, which int, body []byte) {
		path := fuzzEndpoints[((which%len(fuzzEndpoints))+len(fuzzEndpoints))%len(fuzzEndpoints)]
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusInternalServerError:
		default:
			t.Fatalf("POST %s %q: unexpected status %d", path, body, rec.Code)
		}
		var any interface{}
		if err := json.Unmarshal(rec.Body.Bytes(), &any); err != nil {
			t.Fatalf("POST %s %q: response %q is not JSON: %v", path, body, rec.Body.String(), err)
		}
	})
}

// TestOversizedBodyRejected pins the body-limit error path the fuzzer cannot
// cheaply reach: a control message over 1MiB gets 413, as JSON.
func TestOversizedBodyRejected(t *testing.T) {
	c := New(Config{})
	// A single huge JSON string: syntactically valid, so the decoder keeps
	// reading until MaxBytesReader cuts it off (garbage bytes would 400 on
	// the first byte without ever reaching the limit).
	big := append([]byte(`{"worker":"`), bytes.Repeat([]byte("a"), controlBodyLimit+1)...)
	big = append(big, `"}`...)
	req := httptest.NewRequest("POST", "/lease", bytes.NewReader(big))
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("413 body %q is not a JSON error: %v", rec.Body.String(), err)
	}
}

// TestWorkerRejectsFingerprintMismatch pins the worker-side integrity gate:
// a unit whose pinned fingerprint does not match the checkpoint the worker
// opens is reported as a permanent failure, never swept.
func TestWorkerRejectsFingerprintMismatch(t *testing.T) {
	dataDir, modelPath := tinyArtifacts(t)
	w := NewWorker(WorkerConfig{Coordinator: "http://unused", Name: "w"})
	err := w.ensureArtifacts(&Unit{
		Data:        dataDir,
		Model:       modelPath,
		Fingerprint: "deadbeef",
		Options:     SweepOptions{TopN: 40, MaxCandidates: 30, Seed: 7},
	})
	if err == nil {
		t.Fatal("worker accepted a checkpoint with a mismatched fingerprint")
	}
	w.closeArtifacts()
}

// TestWorkerRejectsOptionsHashMismatch: right fingerprint, wrong pinned
// options hash — the sweep identity diverges, the worker refuses.
func TestWorkerRejectsOptionsHashMismatch(t *testing.T) {
	dataDir, modelPath := tinyArtifacts(t)
	m, mapped, _, err := kge.LoadAuto(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	fp := kge.Fingerprint(m)
	if mapped != nil {
		mapped.Close()
	}
	w := NewWorker(WorkerConfig{Coordinator: "http://unused", Name: "w"})
	defer w.closeArtifacts()
	err = w.ensureArtifacts(&Unit{
		Data:        dataDir,
		Model:       modelPath,
		Fingerprint: fp,
		OptionsHash: "not-the-real-hash",
		Options:     SweepOptions{TopN: 40, MaxCandidates: 30, Seed: 7},
	})
	if err == nil {
		t.Fatal("worker accepted a unit with a mismatched options hash")
	}
}
