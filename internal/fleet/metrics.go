package fleet

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// StatusResponse is the coordinator's introspection snapshot, consumed by
// the integration harness (exact unit accounting) and by humans debugging a
// fleet. It is JSON, not Prometheus text, because tests assert on structure.
type StatusResponse struct {
	Sweeps           []SweepStatus  `json:"sweeps"`
	Workers          []WorkerStatus `json:"workers"`
	Reassigned       uint64         `json:"reassigned"`
	DuplicateRecords uint64         `json:"duplicate_records"`
	RetriedUnits     uint64         `json:"retried_units"`
}

// SweepStatus reports one sweep's progress.
type SweepStatus struct {
	ID             string       `json:"id"`
	State          string       `json:"state"`
	Strategy       string       `json:"strategy"`
	TotalRelations int          `json:"total_relations"`
	DoneRelations  int          `json:"done_relations"`
	Resumed        int          `json:"resumed"`
	Reassigned     int          `json:"reassigned"`
	Duplicates     int          `json:"duplicates"`
	RetriedUnits   int          `json:"retried_units"`
	Units          []UnitStatus `json:"units"`
	Error          string       `json:"error,omitempty"`
}

// UnitStatus reports one unit's lease state.
type UnitStatus struct {
	ID        int    `json:"id"`
	State     string `json:"state"`
	Worker    string `json:"worker,omitempty"`
	Attempts  int    `json:"attempts"`
	Relations int    `json:"relations"`
}

// WorkerStatus reports one registered worker.
type WorkerStatus struct {
	Name      string `json:"name"`
	UnitsDone int    `json:"units_done"`
	LastSeen  string `json:"last_seen"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := StatusResponse{
		Reassigned:       c.reassignedTotal,
		DuplicateRecords: c.duplicatesTotal,
		RetriedUnits:     c.retriedTotal,
	}
	for _, id := range c.order {
		sw := c.sweeps[id]
		ss := SweepStatus{
			ID:             sw.id,
			State:          sw.state,
			Strategy:       sw.req.Strategy,
			TotalRelations: len(sw.relations),
			DoneRelations:  len(sw.done),
			Resumed:        sw.resumed,
			Reassigned:     sw.reassigned,
			Duplicates:     sw.duplicates,
			RetriedUnits:   sw.retriedUnits,
		}
		if sw.err != nil {
			ss.Error = sw.err.Error()
		}
		for _, u := range sw.units {
			ss.Units = append(ss.Units, UnitStatus{
				ID: u.id, State: u.state, Worker: u.worker,
				Attempts: u.attempts, Relations: len(u.relations),
			})
		}
		resp.Sweeps = append(resp.Sweeps, ss)
	}
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ws := c.workers[n]
		resp.Workers = append(resp.Workers, WorkerStatus{
			Name: ws.name, UnitsDone: ws.unitsDone, LastSeen: ws.lastSeen.Format("15:04:05.000"),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the fleet gauges and counters in the same stdlib
// Prometheus text style internal/serve uses.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeMetricsLocked(w)
}

func (c *Coordinator) writeMetricsLocked(w io.Writer) {
	now := c.cfg.now()
	live := 0
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= 3*c.cfg.LeaseTTL {
			live++
		}
	}
	fmt.Fprintln(w, "# HELP kgfleet_workers Workers heard from within three lease TTLs.")
	fmt.Fprintln(w, "# TYPE kgfleet_workers gauge")
	fmt.Fprintf(w, "kgfleet_workers %d\n", live)

	units := map[string]int{unitPending: 0, unitLeased: 0, unitDone: 0}
	sweeps := map[string]int{sweepRunning: 0, sweepDone: 0, sweepFailed: 0}
	for _, sw := range c.sweeps {
		sweeps[sw.state]++
		for _, u := range sw.units {
			units[u.state]++
		}
	}
	fmt.Fprintln(w, "# HELP kgfleet_units Work units across all sweeps, by lease state.")
	fmt.Fprintln(w, "# TYPE kgfleet_units gauge")
	for _, st := range []string{unitDone, unitLeased, unitPending} {
		fmt.Fprintf(w, "kgfleet_units{state=%q} %d\n", st, units[st])
	}
	fmt.Fprintln(w, "# HELP kgfleet_sweeps Sweeps hosted by this coordinator, by state.")
	fmt.Fprintln(w, "# TYPE kgfleet_sweeps gauge")
	for _, st := range []string{sweepDone, sweepFailed, sweepRunning} {
		fmt.Fprintf(w, "kgfleet_sweeps{state=%q} %d\n", st, sweeps[st])
	}

	scalar := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	scalar("kgfleet_leases_total", "Unit leases granted to workers.", c.leasesTotal)
	scalar("kgfleet_reassignments_total", "Units returned to the pending queue after a lease expired without heartbeats.", c.reassignedTotal)
	scalar("kgfleet_unit_retries_total", "Units returned to the pending queue by an explicit worker failure report.", c.retriedTotal)
	scalar("kgfleet_duplicate_records_total", "Relation records dropped because the relation was already complete (reassignment or duplicate delivery).", c.duplicatesTotal)
	scalar("kgfleet_mismatched_records_total", "Relation records dropped because the relation does not belong to the sweep.", c.mismatchedTotal)
	scalar("kgfleet_records_total", "Relation records accepted, journaled, and spliced.", c.recordsTotal)
	scalar("kgfleet_unknown_completes_total", "Unit completions for sweeps this coordinator does not know (e.g. delivered across a restart).", c.completesUnknown)
	scalar("kgfleet_sweeps_submitted_total", "Sweeps ever submitted to this coordinator.", c.sweepsSubmitted)
}
