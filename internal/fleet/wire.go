package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
)

// Lease/heartbeat/complete response status values.
const (
	// StatusUnit means the lease response carries a unit to execute.
	StatusUnit = "unit"
	// StatusWait means no unit is available right now; poll again.
	StatusWait = "wait"
	// StatusShutdown means every sweep is finished and the worker should
	// exit (one-shot coordinators only; serve-mode coordinators never
	// shut workers down).
	StatusShutdown = "shutdown"
	// StatusOK acknowledges a heartbeat, completion, or failure report.
	StatusOK = "ok"
	// StatusAbandon tells a heartbeating worker its unit has been
	// reassigned (its lease expired); it should cancel the sweep.
	StatusAbandon = "abandon"
	// StatusUnknown means the coordinator does not know the sweep or unit
	// (e.g. it was restarted with different unit boundaries); the worker
	// drops the result and polls for fresh work.
	StatusUnknown = "unknown"
)

// Body size limits for the coordinator's endpoints. Control messages are
// tiny; completions carry every fact a unit discovered.
const (
	controlBodyLimit  = 1 << 20
	completeBodyLimit = 64 << 20
)

// SweepOptions is the serializable, output-affecting subset of core.Options
// a fleet sweep supports. Calibrators (functions) and prune indexes
// (per-host sidecars) are deliberately excluded: a fleet run must be a pure
// function of what crosses the wire.
type SweepOptions struct {
	TopN          int   `json:"top_n"`
	MaxCandidates int   `json:"max_candidates"`
	MaxIterations int   `json:"max_iterations,omitempty"`
	Seed          int64 `json:"seed"`
	RankFiltered  bool  `json:"rank_filtered,omitempty"`
	CacheWeights  bool  `json:"cache_weights,omitempty"`
}

// CoreOptions expands the wire options into core.Options with the same
// defaulting jobs.Run applies, so the options hash computed from them is
// identical on the coordinator and on every worker.
func (o SweepOptions) CoreOptions() core.Options {
	opts := core.Options{
		TopN:          o.TopN,
		MaxCandidates: o.MaxCandidates,
		MaxIterations: o.MaxIterations,
		Seed:          o.Seed,
		RankFiltered:  o.RankFiltered,
		CacheWeights:  o.CacheWeights,
	}
	if opts.TopN == 0 {
		opts.TopN = 500
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 500
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 5
	}
	return opts
}

// SweepRequest submits one distributed discovery sweep. Data and Model are
// filesystem paths valid on the coordinator and on every worker (the fleet
// assumes a shared filesystem or pre-distributed artifacts; workers verify
// what they open against the coordinator's fingerprint and options hash, so
// a stale or divergent copy is refused, never silently swept).
type SweepRequest struct {
	Data     string       `json:"data"`
	Model    string       `json:"model"`
	Strategy string       `json:"strategy"`
	Options  SweepOptions `json:"options"`
	// Checkpoint is the coordinator-side WAL path; empty disables crash
	// resume. Resume permits continuing an existing WAL, exactly like
	// jobs.Spec.
	Checkpoint string `json:"checkpoint,omitempty"`
	Resume     bool   `json:"resume,omitempty"`
	// UnitRelations is the number of relations per work unit (the shard
	// granularity). Zero means 1: maximum reassignment granularity.
	UnitRelations int `json:"unit_relations,omitempty"`
}

// Validate rejects a request that cannot identify a sweep.
func (r SweepRequest) Validate() error {
	if r.Data == "" || r.Model == "" {
		return errors.New("fleet: sweep request requires data and model paths")
	}
	if r.Strategy == "" {
		return errors.New("fleet: sweep request requires a strategy")
	}
	if r.Resume && r.Checkpoint == "" {
		return errors.New("fleet: resume requires a checkpoint path")
	}
	if r.UnitRelations < 0 {
		return fmt.Errorf("fleet: unit_relations must be >= 0, got %d", r.UnitRelations)
	}
	return nil
}

// FleetInfo summarizes how a sweep executed across the fleet.
type FleetInfo struct {
	Units            int `json:"units"`
	Workers          int `json:"workers"` // distinct workers that completed records
	Reassigned       int `json:"reassigned"`
	DuplicateRecords int `json:"duplicate_records"`
	RetriedUnits     int `json:"retried_units"`
	Resumed          int `json:"resumed"` // relations recovered from the coordinator WAL
	TotalRelations   int `json:"total_relations"`
}

// SweepResponse is the completed sweep: the spliced facts (byte-identical,
// after TSV rendering, to a single-process jobs.Run with the same inputs)
// plus aggregate stats and fleet accounting.
type SweepResponse struct {
	SweepID     string            `json:"sweep_id"`
	Fingerprint string            `json:"fingerprint"`
	Facts       []jobs.FactRecord `json:"facts"`
	Generated   int               `json:"generated"`
	ScoreSweeps int               `json:"score_sweeps"`
	RuntimeMS   int64             `json:"runtime_ms"`
	WeightMS    int64             `json:"weight_ms"`
	GenerateMS  int64             `json:"generate_ms"`
	RankMS      int64             `json:"rank_ms"`
	Fleet       FleetInfo         `json:"fleet"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Worker string `json:"worker"`
	PID    int    `json:"pid,omitempty"`
}

// RegisterResponse acknowledges registration and tells the worker the
// coordinator's cadence.
type RegisterResponse struct {
	Status  string `json:"status"`
	LeaseMS int64  `json:"lease_ms"`
	PollMS  int64  `json:"poll_ms"`
}

// LeaseRequest asks for one unit of work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Unit is one leased shard of a sweep: which relations to sweep, and
// everything needed to reproduce the coordinator's exact run identity —
// artifact paths, the model fingerprint, the options, and the full sweep
// relation list so the worker can recompute and verify the options hash.
type Unit struct {
	SweepID        string          `json:"sweep_id"`
	UnitID         int             `json:"unit_id"`
	Data           string          `json:"data"`
	Model          string          `json:"model"`
	Fingerprint    string          `json:"fingerprint"`
	OptionsHash    string          `json:"options_hash"`
	Strategy       string          `json:"strategy"`
	Options        SweepOptions    `json:"options"`
	Relations      []kg.RelationID `json:"relations"`
	SweepRelations []kg.RelationID `json:"sweep_relations"`
	LeaseMS        int64           `json:"lease_ms"`
}

// LeaseResponse grants a unit, asks the worker to wait, or shuts it down.
type LeaseResponse struct {
	Status  string `json:"status"` // StatusUnit, StatusWait, StatusShutdown
	Unit    *Unit  `json:"unit,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
}

// HeartbeatRequest extends a unit's lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	SweepID string `json:"sweep_id"`
	UnitID  int    `json:"unit_id"`
}

// HeartbeatResponse is StatusOK while the lease holds, StatusAbandon once
// the unit has been reassigned (or finished elsewhere), StatusUnknown if
// the coordinator no longer knows the sweep.
type HeartbeatResponse struct {
	Status string `json:"status"`
}

// CompleteRequest delivers a unit's per-relation records. Records are the
// same wire format the job WAL journals, so the coordinator can fsync each
// one before acknowledging.
type CompleteRequest struct {
	Worker  string                `json:"worker"`
	SweepID string                `json:"sweep_id"`
	UnitID  int                   `json:"unit_id"`
	Records []jobs.RelationRecord `json:"records"`
}

// CompleteResponse acknowledges a delivery with exact accounting: how many
// records were accepted (journaled and spliced) and how many were dropped
// as duplicates of already-completed relations. A reassigned unit's second
// delivery is all duplicates — detected, counted, never double-spliced.
type CompleteResponse struct {
	Status     string `json:"status"` // StatusOK or StatusUnknown
	Accepted   int    `json:"accepted"`
	Duplicates int    `json:"duplicates"`
}

// FailRequest reports that a worker could not finish a unit. Permanent
// marks errors retrying cannot fix on this worker (fingerprint or options
// hash mismatch — the worker's artifact copies diverge).
type FailRequest struct {
	Worker    string `json:"worker"`
	SweepID   string `json:"sweep_id"`
	UnitID    int    `json:"unit_id"`
	Error     string `json:"error"`
	Permanent bool   `json:"permanent,omitempty"`
}

// FailResponse acknowledges a failure report.
type FailResponse struct {
	Status string `json:"status"`
}

// errorResponse is the JSON body of every non-2xx coordinator answer.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeJSON unmarshals a request body capped at limit bytes, writing a
// well-formed JSON error (413 for an oversized body, 400 for malformed
// JSON) when it cannot. Handlers bail out when it reports false.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// WriteFactsTSV renders fact records through the dataset's dictionaries in
// their given (rank-sorted) order — the exact path kgdiscover uses for its
// -out file, so a fleet TSV and a single-process TSV can be compared with
// cmp.
func WriteFactsTSV(entities, relations *kg.Dict, facts []jobs.FactRecord, w io.Writer) error {
	g := kg.NewGraphWithDicts(entities, relations)
	for _, f := range facts {
		g.Add(kg.Triple{S: f.S, R: f.R, O: f.O})
	}
	return kg.WriteTSV(g, w)
}
