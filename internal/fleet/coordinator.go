// Package fleet distributes the paper's Algorithm 1 sweep across a fleet of
// worker processes. A coordinator shards a sweep's relations into lease-able
// units; stateless workers pull units over HTTP, run the existing jobs.Run
// locally against the shared checkpoint (verified by kge.Fingerprint and the
// jobs options hash before a single candidate is scored), and ship back the
// same per-relation records the job WAL journals. Because every relation's
// sweep is a pure function of its inputs (per-relation splitmix64 streams),
// the coordinator can splice records arriving in any order, from any worker,
// after any number of crashes and reassignments, into output byte-identical
// to a single-process run — duplicates are detected by relation and deduped,
// never double-counted.
//
// Robustness is first-class: units carry lease deadlines extended by worker
// heartbeats; an expired lease returns its unit to the pending queue and a
// reassigned worker re-derives the identical stream. The coordinator
// journals every accepted record to its own jobs WAL (fsync'd before the
// completion is acknowledged), so a coordinator SIGKILL resumes from the
// longest valid prefix with the same fingerprint + options-hash pinning a
// single-node resume enjoys.
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
)

// Config parameterizes a Coordinator.
type Config struct {
	// LeaseTTL is how long a leased unit may go without a heartbeat before
	// it is reassigned. Zero means 10s.
	LeaseTTL time.Duration
	// PollInterval is the wait the coordinator suggests to idle workers.
	// Zero means 500ms.
	PollInterval time.Duration
	// MaxAttempts bounds how many times one unit may be leased before the
	// sweep is failed (a unit that kills every worker it touches must not
	// retry forever). Zero means 5.
	MaxAttempts int
	// OneShot makes the coordinator answer StatusShutdown to lease requests
	// once at least one sweep has been submitted and all are terminal —
	// the lifecycle of `kgfleet coord -data ... -model ...`. Serve-mode
	// coordinators leave it false and keep workers polling.
	OneShot bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)

	// now overrides the clock for tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Unit lifecycle states.
const (
	unitPending = "pending"
	unitLeased  = "leased"
	unitDone    = "done"
)

// Sweep lifecycle states.
const (
	sweepRunning = "running"
	sweepDone    = "done"
	sweepFailed  = "failed"
)

// unit is one lease-able shard of a sweep.
type unit struct {
	id        int
	relations []kg.RelationID
	state     string
	worker    string
	deadline  time.Time
	attempts  int
}

// sweep is one distributed discovery run.
type sweep struct {
	id           string
	req          SweepRequest
	fingerprint  string
	optionsHash  string
	relations    []kg.RelationID // full sweep list, graph order
	relSet       map[kg.RelationID]bool
	units        []*unit
	done         map[kg.RelationID]bool
	doneBy       map[string]bool // workers whose records were accepted
	records      []jobs.RelationRecord
	journal      *jobs.Journal
	resumed      int
	state        string
	err          error
	doneCh       chan struct{} // closed on done or failed
	start        time.Time
	result       *SweepResponse
	reassigned   int
	duplicates   int
	retriedUnits int
}

// workerState tracks one registered worker.
type workerState struct {
	name      string
	lastSeen  time.Time
	unitsDone int
	released  bool // was told to shut down (one-shot mode)
}

// Coordinator shards sweeps across workers and splices their results. All
// mutable state sits behind one mutex: the request rates involved (unit
// leases and completions, not per-candidate work) make contention a
// non-issue, and the lease/reassignment state machine stays obviously
// race-free.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	sweeps  map[string]*sweep
	order   []string // sweep IDs in submission order, for deterministic lease scans
	workers map[string]*workerState

	// Monotonic counters, exposed on /metrics.
	leasesTotal      uint64
	reassignedTotal  uint64
	duplicatesTotal  uint64
	retriedTotal     uint64
	mismatchedTotal  uint64
	recordsTotal     uint64
	sweepsSubmitted  uint64
	completesUnknown uint64
}

// New builds a Coordinator; Handler exposes its HTTP API.
func New(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:     cfg.withDefaults(),
		sweeps:  make(map[string]*sweep),
		workers: make(map[string]*workerState),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", c.handleRegister)
	mux.HandleFunc("POST /lease", c.handleLease)
	mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /complete", c.handleComplete)
	mux.HandleFunc("POST /fail", c.handleFail)
	mux.HandleFunc("POST /sweep", c.handleSweep)
	mux.HandleFunc("GET /status", c.handleStatus)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	c.mux = mux
	return c
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Run expires stale leases on a ticker until ctx is cancelled. Leases are
// also expired lazily on every /lease request, so Run is a liveness aid
// (reassignment happens even while no worker is polling for work), not a
// correctness requirement.
func (c *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(c.cfg.now())
			c.mu.Unlock()
		}
	}
}

// SweepID derives the deterministic sweep identity from the two values that
// pin a run: the model fingerprint and the canonical options hash. The same
// sweep re-submitted (or resumed after a coordinator crash) maps to the same
// ID, which is what lets zombie workers from a previous incarnation deliver
// usable records.
func SweepID(fingerprint, optionsHash string) string {
	sum := sha256.Sum256([]byte(fingerprint + ":" + optionsHash))
	return hex.EncodeToString(sum[:6])
}

// Submit registers a sweep and blocks until the fleet completes it (or ctx
// is cancelled — the sweep itself keeps running; a journaled sweep is
// re-joinable by submitting the same request again). Identical concurrent
// submissions join the same sweep, single-flight style.
func (c *Coordinator) Submit(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	sw, err := c.addSweep(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-sw.doneCh:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sw.err != nil {
		return nil, sw.err
	}
	return sw.result, nil
}

// addSweep validates the request, loads just enough of the artifacts to pin
// the run identity (dictionaries and graph shape for the options hash, the
// checkpoint for its fingerprint), recovers the WAL when resuming, and
// schedules the remaining relations as units.
func (c *Coordinator) addSweep(req SweepRequest) (*sweep, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	strategy, err := core.StrategyByName(req.Strategy)
	if err != nil {
		return nil, err
	}
	ds, err := kg.LoadDataset(req.Data, req.Data)
	if err != nil {
		return nil, fmt.Errorf("fleet: loading dataset: %w", err)
	}
	m, mapped, _, err := kge.LoadAuto(req.Model)
	if err != nil {
		return nil, fmt.Errorf("fleet: loading model: %w", err)
	}
	fingerprint := kge.Fingerprint(m)
	if mapped != nil {
		// The coordinator needs only the fingerprint; workers map their own
		// copies.
		mapped.Close()
	}

	opts := req.Options.CoreOptions()
	relations := ds.Train.RelationIDs()
	optionsHash := jobs.OptionsHash(strategy.Name(), ds.Train, opts, relations)
	id := SweepID(fingerprint, optionsHash)

	c.mu.Lock()
	defer c.mu.Unlock()
	if sw, ok := c.sweeps[id]; ok && sw.state != sweepFailed {
		return sw, nil // join the in-flight (or finished) identical sweep
	}

	sw := &sweep{
		id:          id,
		req:         req,
		fingerprint: fingerprint,
		optionsHash: optionsHash,
		relations:   relations,
		relSet:      make(map[kg.RelationID]bool, len(relations)),
		done:        make(map[kg.RelationID]bool, len(relations)),
		doneBy:      make(map[string]bool),
		state:       sweepRunning,
		doneCh:      make(chan struct{}),
		start:       c.cfg.now(),
	}
	for _, r := range relations {
		sw.relSet[r] = true
	}

	if req.Checkpoint != "" {
		hdr := jobs.Header{
			Fingerprint:    fingerprint,
			OptionsHash:    optionsHash,
			Strategy:       strategy.Name(),
			TotalRelations: len(relations),
		}
		var recovered []jobs.RelationRecord
		if req.Resume {
			sw.journal, recovered, err = jobs.Recover(req.Checkpoint, hdr)
		} else {
			sw.journal, err = jobs.Create(req.Checkpoint, hdr)
		}
		if err != nil {
			return nil, err
		}
		for _, rec := range recovered {
			if sw.relSet[rec.Relation] && !sw.done[rec.Relation] {
				sw.done[rec.Relation] = true
				sw.records = append(sw.records, rec)
				sw.resumed++
			}
		}
	}

	// Shard the not-yet-done relations into units. After a crash-resume the
	// boundaries differ from the first incarnation's; completions from
	// zombie workers are reconciled per relation, so that is fine.
	unitSize := req.UnitRelations
	if unitSize == 0 {
		unitSize = 1
	}
	var pendingRels []kg.RelationID
	for _, r := range relations {
		if !sw.done[r] {
			pendingRels = append(pendingRels, r)
		}
	}
	for off := 0; off < len(pendingRels); off += unitSize {
		end := off + unitSize
		if end > len(pendingRels) {
			end = len(pendingRels)
		}
		sw.units = append(sw.units, &unit{
			id:        len(sw.units),
			relations: append([]kg.RelationID(nil), pendingRels[off:end]...),
			state:     unitPending,
		})
	}

	c.sweeps[id] = sw
	c.order = append(c.order, id)
	c.sweepsSubmitted++
	c.cfg.Logf("fleet: sweep %s submitted: %d relations in %d units (resumed %d), fingerprint %.12s",
		id, len(relations), len(sw.units), sw.resumed, fingerprint)
	if len(sw.done) == len(sw.relations) {
		c.completeSweepLocked(sw) // fully recovered from the WAL
	}
	return sw, nil
}

// touchWorkerLocked records that a worker was just heard from.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) *workerState {
	if name == "" {
		name = "anonymous"
	}
	ws, ok := c.workers[name]
	if !ok {
		ws = &workerState{name: name}
		c.workers[name] = ws
		c.cfg.Logf("fleet: worker %s registered", name)
	}
	ws.lastSeen = now
	return ws
}

// expireLocked returns every overdue leased unit to the pending queue.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.state != sweepRunning {
			continue
		}
		for _, u := range sw.units {
			if u.state == unitLeased && now.After(u.deadline) {
				c.cfg.Logf("fleet: lease expired: sweep %s unit %d (worker %s, attempt %d) — reassigning",
					sw.id, u.id, u.worker, u.attempts)
				u.state = unitPending
				u.worker = ""
				sw.reassigned++
				c.reassignedTotal++
			}
		}
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeJSON(w, r, controlBodyLimit, &req) {
		return
	}
	c.mu.Lock()
	c.touchWorkerLocked(req.Worker, c.cfg.now())
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, RegisterResponse{
		Status:  StatusOK,
		LeaseMS: c.cfg.LeaseTTL.Milliseconds(),
		PollMS:  c.cfg.PollInterval.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, controlBodyLimit, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	ws := c.touchWorkerLocked(req.Worker, now)
	c.expireLocked(now)

	anyRunning := false
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.state != sweepRunning {
			continue
		}
		anyRunning = true
		u := c.leaseUnitLocked(sw, req.Worker, now)
		if sw.state != sweepRunning {
			continue // leaseUnitLocked failed the sweep (attempt cap)
		}
		if u == nil {
			continue
		}
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusUnit, Unit: &Unit{
			SweepID:        sw.id,
			UnitID:         u.id,
			Data:           sw.req.Data,
			Model:          sw.req.Model,
			Fingerprint:    sw.fingerprint,
			OptionsHash:    sw.optionsHash,
			Strategy:       sw.req.Strategy,
			Options:        sw.req.Options,
			Relations:      append([]kg.RelationID(nil), u.relations...),
			SweepRelations: sw.relations,
			LeaseMS:        c.cfg.LeaseTTL.Milliseconds(),
		}})
		return
	}

	if !anyRunning && c.cfg.OneShot && c.sweepsSubmitted > 0 {
		ws.released = true
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusShutdown})
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusWait, RetryMS: c.cfg.PollInterval.Milliseconds()})
}

// leaseUnitLocked finds sweep sw's next pending unit and leases it to
// worker. It trims relations other deliveries already covered, retires
// empty units, and fails the sweep when a unit exhausts its attempts.
func (c *Coordinator) leaseUnitLocked(sw *sweep, worker string, now time.Time) *unit {
	for _, u := range sw.units {
		if u.state != unitPending {
			continue
		}
		var rem []kg.RelationID
		for _, r := range u.relations {
			if !sw.done[r] {
				rem = append(rem, r)
			}
		}
		if len(rem) == 0 {
			u.state = unitDone
			continue
		}
		if u.attempts >= c.cfg.MaxAttempts {
			c.failSweepLocked(sw, fmt.Errorf("fleet: unit %d failed %d times (last worker %s); giving up",
				u.id, u.attempts, u.worker))
			return nil
		}
		u.relations = rem
		u.state = unitLeased
		u.worker = worker
		u.deadline = now.Add(c.cfg.LeaseTTL)
		u.attempts++
		c.leasesTotal++
		return u
	}
	return nil
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, controlBodyLimit, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.touchWorkerLocked(req.Worker, now)
	sw, ok := c.sweeps[req.SweepID]
	if !ok {
		writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusUnknown})
		return
	}
	u := sw.unitByID(req.UnitID)
	if sw.state == sweepRunning && u != nil && u.state == unitLeased && u.worker == req.Worker {
		u.deadline = now.Add(c.cfg.LeaseTTL)
		writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusOK})
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusAbandon})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, completeBodyLimit, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	ws := c.touchWorkerLocked(req.Worker, now)
	sw, ok := c.sweeps[req.SweepID]
	if !ok || sw.state != sweepRunning {
		c.completesUnknown++
		writeJSON(w, http.StatusOK, CompleteResponse{Status: StatusUnknown})
		return
	}

	accepted, dups := 0, 0
	for _, rec := range req.Records {
		switch {
		case !sw.relSet[rec.Relation]:
			c.mismatchedTotal++
		case sw.done[rec.Relation]:
			dups++
		default:
			if sw.journal != nil {
				if err := sw.journal.Append(rec); err != nil {
					c.failSweepLocked(sw, fmt.Errorf("fleet: journaling unit %d: %w", req.UnitID, err))
					writeError(w, http.StatusInternalServerError, "journal append failed: %v", err)
					return
				}
			}
			sw.done[rec.Relation] = true
			sw.records = append(sw.records, rec)
			accepted++
		}
	}
	sw.duplicates += dups
	c.duplicatesTotal += uint64(dups)
	c.recordsTotal += uint64(accepted)
	if accepted > 0 {
		sw.doneBy[ws.name] = true
	}

	if u := sw.unitByID(req.UnitID); u != nil && u.state == unitLeased && u.worker == req.Worker {
		u.state = unitDone
		ws.unitsDone++
	}
	// Retire any unit whose relations are now fully covered (a zombie's
	// delivery can complete a unit leased to someone else; the someone
	// else's heartbeat then reports abandon).
	for _, u := range sw.units {
		if u.state == unitDone {
			continue
		}
		covered := true
		for _, rel := range u.relations {
			if !sw.done[rel] {
				covered = false
				break
			}
		}
		if covered {
			u.state = unitDone
		}
	}

	c.cfg.Logf("fleet: sweep %s unit %d complete: worker=%s accepted=%d duplicates=%d (%d/%d relations done)",
		sw.id, req.UnitID, ws.name, accepted, dups, len(sw.done), len(sw.relations))
	if len(sw.done) == len(sw.relations) {
		c.completeSweepLocked(sw)
	}
	writeJSON(w, http.StatusOK, CompleteResponse{Status: StatusOK, Accepted: accepted, Duplicates: dups})
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decodeJSON(w, r, controlBodyLimit, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker, c.cfg.now())
	if sw, ok := c.sweeps[req.SweepID]; ok && sw.state == sweepRunning {
		if u := sw.unitByID(req.UnitID); u != nil && u.state == unitLeased && u.worker == req.Worker {
			c.cfg.Logf("fleet: sweep %s unit %d failed on worker %s (attempt %d, permanent=%t): %s",
				sw.id, u.id, req.Worker, u.attempts, req.Permanent, req.Error)
			u.state = unitPending
			u.worker = ""
			sw.retriedUnits++
			c.retriedTotal++
		}
	}
	writeJSON(w, http.StatusOK, FailResponse{Status: StatusOK})
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeJSON(w, r, controlBodyLimit, &req) {
		return
	}
	sw, err := c.addSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	select {
	case <-sw.doneCh:
	case <-r.Context().Done():
		return // client gone; the sweep keeps running
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sw.err != nil {
		writeError(w, http.StatusInternalServerError, "%v", sw.err)
		return
	}
	writeJSON(w, http.StatusOK, sw.result)
}

// WorkersDrained reports whether every worker this coordinator has heard
// from has been handed its shutdown order (one-shot mode). A one-shot
// command waits for this — bounded, since a worker that died mid-fleet
// never polls again — before tearing down the listener, so surviving
// workers exit cleanly instead of hitting connection-refused.
func (c *Coordinator) WorkersDrained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.workers {
		if !ws.released {
			return false
		}
	}
	return true
}

func (sw *sweep) unitByID(id int) *unit {
	if id < 0 || id >= len(sw.units) {
		return nil
	}
	return sw.units[id]
}

// completeSweepLocked splices the records and publishes the result.
func (c *Coordinator) completeSweepLocked(sw *sweep) {
	if sw.state != sweepRunning {
		return
	}
	if sw.journal != nil {
		sw.journal.Close()
		sw.journal = nil
	}
	// Records accumulate in completion order; sort by relation so the
	// response (and its aggregate stats fold) is deterministic regardless
	// of which worker won which unit.
	sort.Slice(sw.records, func(i, j int) bool { return sw.records[i].Relation < sw.records[j].Relation })
	res := jobs.MergeRecords(sw.records)
	facts := make([]jobs.FactRecord, len(res.Facts))
	for i, f := range res.Facts {
		facts[i] = jobs.FactRecord{S: f.Triple.S, R: f.Triple.R, O: f.Triple.O, Rank: f.Rank}
	}
	sw.result = &SweepResponse{
		SweepID:     sw.id,
		Fingerprint: sw.fingerprint,
		Facts:       facts,
		Generated:   res.Stats.Generated,
		ScoreSweeps: res.Stats.ScoreSweeps,
		RuntimeMS:   c.cfg.now().Sub(sw.start).Milliseconds(),
		WeightMS:    res.Stats.WeightTime.Milliseconds(),
		GenerateMS:  res.Stats.GenerateTime.Milliseconds(),
		RankMS:      res.Stats.RankTime.Milliseconds(),
		Fleet: FleetInfo{
			Units:            len(sw.units),
			Workers:          len(sw.doneBy),
			Reassigned:       sw.reassigned,
			DuplicateRecords: sw.duplicates,
			RetriedUnits:     sw.retriedUnits,
			Resumed:          sw.resumed,
			TotalRelations:   len(sw.relations),
		},
	}
	sw.state = sweepDone
	close(sw.doneCh)
	c.cfg.Logf("fleet: sweep %s complete: %d facts from %d relations (workers=%d reassigned=%d duplicates=%d resumed=%d)",
		sw.id, len(facts), len(sw.relations), len(sw.doneBy), sw.reassigned, sw.duplicates, sw.resumed)
}

func (c *Coordinator) failSweepLocked(sw *sweep, err error) {
	if sw.state != sweepRunning {
		return
	}
	if sw.journal != nil {
		sw.journal.Close()
		sw.journal = nil
	}
	sw.state = sweepFailed
	sw.err = err
	close(sw.doneCh)
	c.cfg.Logf("fleet: sweep %s FAILED: %v", sw.id, err)
}
