package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://127.0.0.1:7070".
	Coordinator string
	// Name identifies this worker in leases, logs, and /status.
	Name string
	// Client overrides the HTTP client (tests); nil uses a 30s-timeout client.
	Client *http.Client
	// MaxIdle bounds how long the worker keeps retrying an unreachable
	// coordinator before giving up — long enough to ride out a coordinator
	// crash-and-resume, short enough that an orphaned worker eventually
	// exits. Zero means 2 minutes.
	MaxIdle time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)

	// Fault-injection hooks for the integration harness. They exist so the
	// multi-process tests (and scripts/ci.sh) can script failures that are
	// otherwise timing-dependent; production deployments leave them zero.
	//
	// SleepPerRelation stalls that long after each relation completes,
	// stretching a unit so a test can SIGKILL the process mid-unit.
	SleepPerRelation time.Duration
	// MuteAfterUnits > 0 stops heartbeats once that many units have
	// completed; the worker keeps sweeping, so its lease expires and its
	// next delivery duplicates a reassigned unit. Zero disables.
	MuteAfterUnits int
	// HangAfterUnits > 0 hangs the worker forever (heartbeats muted) after
	// the first relation of the unit following that many completions —
	// a worker that is alive but wedged past its lease. Zero disables.
	HangAfterUnits int
	// DuplicateComplete delivers every completed unit twice.
	DuplicateComplete bool
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Name == "" {
		c.Name = "worker"
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.MaxIdle <= 0 {
		c.MaxIdle = 2 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker pulls units from a coordinator and executes them with the local
// jobs.Run. It is stateless across units apart from an artifact cache: the
// dataset and the mmap'd checkpoint are opened once and reused while
// consecutive units name the same paths and fingerprint.
type Worker struct {
	cfg     WorkerConfig
	leaseMS int64
	pollMS  int64

	// Artifact cache.
	dataDir     string
	ds          *kg.Dataset
	modelPath   string
	fingerprint string
	model       kge.Model
	mapped      *kge.Mapped

	unitsDone int
	muted     atomic.Bool // heartbeats suppressed (fault injection); read by the heartbeat goroutine
}

// NewWorker builds a Worker; Run drives it until shutdown.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults(), pollMS: 500}
}

// Run registers with the coordinator and processes units until the
// coordinator shuts the fleet down (returns nil), ctx is cancelled, or the
// coordinator stays unreachable past MaxIdle (returns an error). Transient
// coordinator outages — including a crash-and-resume — are ridden out with
// exponential backoff.
func (w *Worker) Run(ctx context.Context) error {
	defer w.closeArtifacts()
	if err := w.register(ctx); err != nil {
		return err
	}
	lastContact := time.Now()
	backoff := 100 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var resp LeaseResponse
		err := w.post(ctx, "/lease", LeaseRequest{Worker: w.cfg.Name}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if time.Since(lastContact) > w.cfg.MaxIdle {
				return fmt.Errorf("fleet: coordinator unreachable for %s: %w", w.cfg.MaxIdle, err)
			}
			w.cfg.Logf("fleet: lease request failed (retrying in %s): %v", backoff, err)
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		lastContact = time.Now()
		backoff = 100 * time.Millisecond
		switch resp.Status {
		case StatusShutdown:
			w.cfg.Logf("fleet: coordinator reports all sweeps finished; shutting down after %d units", w.unitsDone)
			return nil
		case StatusUnit:
			w.execute(ctx, resp.Unit)
		default: // StatusWait or anything unrecognized
			wait := time.Duration(resp.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = 500 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	deadline := time.Now().Add(w.cfg.MaxIdle)
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		err := w.post(ctx, "/register", RegisterRequest{Worker: w.cfg.Name}, &resp)
		if err == nil {
			w.leaseMS = resp.LeaseMS
			if resp.PollMS > 0 {
				w.pollMS = resp.PollMS
			}
			w.cfg.Logf("fleet: registered with %s (lease %dms)", w.cfg.Coordinator, w.leaseMS)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: could not register with %s: %w", w.cfg.Coordinator, err)
		}
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// execute runs one unit: verify artifacts, sweep with heartbeats, deliver.
func (w *Worker) execute(ctx context.Context, u *Unit) {
	if u == nil {
		return
	}
	if w.cfg.MuteAfterUnits > 0 && w.unitsDone >= w.cfg.MuteAfterUnits && !w.muted.Load() {
		w.cfg.Logf("fleet: fault: muting heartbeats after %d units", w.unitsDone)
		w.muted.Store(true)
	}
	strategy, err := core.StrategyByName(u.Strategy)
	if err != nil {
		w.fail(ctx, u, err, true)
		return
	}
	if err := w.ensureArtifacts(u); err != nil {
		w.fail(ctx, u, err, true)
		return
	}

	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := w.startHeartbeats(unitCtx, u, cancel)
	defer func() { cancel(); <-hbDone }()

	opts := u.Options.CoreOptions()
	opts.Relations = u.Relations
	var records []jobs.RelationRecord
	relsDone := 0
	_, _, err = jobs.Run(unitCtx, jobs.Spec{
		Model:    w.model,
		Graph:    w.ds.Train,
		Strategy: strategy,
		Options:  opts,
		OnRelation: func(rec jobs.RelationRecord) {
			records = append(records, rec)
			relsDone++
			if w.cfg.HangAfterUnits > 0 && w.unitsDone >= w.cfg.HangAfterUnits {
				w.muted.Store(true)
				w.cfg.Logf("fleet: fault: hanging forever mid-unit %d (%d relations in)", u.UnitID, relsDone)
				select {} // wedged: alive, silent, never finishes
			}
			if w.cfg.SleepPerRelation > 0 {
				sleepCtx(unitCtx, w.cfg.SleepPerRelation)
			}
		},
	})
	if err != nil {
		w.fail(ctx, u, err, false)
		return
	}

	if err := w.complete(ctx, u, records); err != nil {
		// Not fatal: the lease will expire and the unit will be reassigned;
		// the records are a pure function of the unit, so nothing is lost.
		w.cfg.Logf("fleet: could not deliver unit %d: %v", u.UnitID, err)
		return
	}
	if w.cfg.DuplicateComplete {
		w.cfg.Logf("fleet: fault: delivering unit %d a second time", u.UnitID)
		if err := w.complete(ctx, u, records); err != nil {
			w.cfg.Logf("fleet: duplicate delivery of unit %d failed: %v", u.UnitID, err)
		}
	}
	w.unitsDone++
	w.cfg.Logf("fleet: unit %d delivered: %d relations, %d facts",
		u.UnitID, len(records), countFacts(records))
}

// ensureArtifacts opens (or reuses) the dataset and checkpoint a unit names
// and verifies both pins: the checkpoint's canonical fingerprint and the
// sweep's options hash recomputed from the local graph. Either mismatch
// means this worker's copy of the artifacts diverged from the
// coordinator's; executing anyway would splice facts from different inputs
// into one output, so the unit is refused permanently instead.
func (w *Worker) ensureArtifacts(u *Unit) error {
	if w.ds == nil || w.dataDir != u.Data {
		ds, err := kg.LoadDataset(u.Data, u.Data)
		if err != nil {
			return fmt.Errorf("fleet: loading dataset: %w", err)
		}
		w.ds, w.dataDir = ds, u.Data
	}
	if w.model == nil || w.modelPath != u.Model || w.fingerprint != u.Fingerprint {
		w.closeModel()
		m, mapped, _, err := kge.LoadAuto(u.Model)
		if err != nil {
			return fmt.Errorf("fleet: loading model: %w", err)
		}
		fp := kge.Fingerprint(m)
		if fp != u.Fingerprint {
			if mapped != nil {
				mapped.Close()
			}
			return fmt.Errorf("fleet: checkpoint fingerprint mismatch: coordinator pinned %.12s, %s has %.12s",
				u.Fingerprint, u.Model, fp)
		}
		w.model, w.mapped, w.modelPath, w.fingerprint = m, mapped, u.Model, fp
		w.cfg.Logf("fleet: opened %s (fingerprint %.12s)", u.Model, fp)
	}
	gotHash := jobs.OptionsHash(u.Strategy, w.ds.Train, u.Options.CoreOptions(), u.SweepRelations)
	if gotHash != u.OptionsHash {
		return fmt.Errorf("fleet: options hash mismatch: coordinator pinned %.12s, local dataset/options give %.12s (dataset drift?)",
			u.OptionsHash, gotHash)
	}
	return nil
}

// startHeartbeats extends the unit's lease every leaseTTL/3 until ctx is
// cancelled. StatusAbandon cancels the unit: the coordinator reassigned it,
// so finishing the sweep would only produce duplicate records. The returned
// channel closes when the goroutine exits.
func (w *Worker) startHeartbeats(ctx context.Context, u *Unit, cancel context.CancelFunc) <-chan struct{} {
	interval := time.Duration(u.LeaseMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			if w.muted.Load() {
				continue
			}
			var resp HeartbeatResponse
			err := w.post(ctx, "/heartbeat", HeartbeatRequest{
				Worker: w.cfg.Name, SweepID: u.SweepID, UnitID: u.UnitID,
			}, &resp)
			if err != nil {
				continue // lease expiry is the coordinator's problem to detect
			}
			if resp.Status == StatusAbandon {
				w.cfg.Logf("fleet: unit %d abandoned by coordinator; cancelling local sweep", u.UnitID)
				cancel()
				return
			}
		}
	}()
	return done
}

// complete delivers a unit's records, retrying transient transport errors.
func (w *Worker) complete(ctx context.Context, u *Unit, records []jobs.RelationRecord) error {
	req := CompleteRequest{Worker: w.cfg.Name, SweepID: u.SweepID, UnitID: u.UnitID, Records: records}
	var lastErr error
	for attempt, backoff := 0, 200*time.Millisecond; attempt < 5; attempt, backoff = attempt+1, backoff*2 {
		var resp CompleteResponse
		if lastErr = w.post(ctx, "/complete", req, &resp); lastErr == nil {
			if resp.Status == StatusUnknown {
				w.cfg.Logf("fleet: coordinator does not know unit %d (restarted?); dropping delivery", u.UnitID)
			} else if resp.Duplicates > 0 {
				w.cfg.Logf("fleet: unit %d delivery: %d accepted, %d duplicates deduped", u.UnitID, resp.Accepted, resp.Duplicates)
			}
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
	}
	return lastErr
}

// fail reports a unit failure, best-effort.
func (w *Worker) fail(ctx context.Context, u *Unit, cause error, permanent bool) {
	w.cfg.Logf("fleet: unit %d failed (permanent=%t): %v", u.UnitID, permanent, cause)
	var resp FailResponse
	_ = w.post(ctx, "/fail", FailRequest{
		Worker: w.cfg.Name, SweepID: u.SweepID, UnitID: u.UnitID,
		Error: cause.Error(), Permanent: permanent,
	}, &resp)
	if permanent {
		// Back off so a misconfigured worker cannot hot-loop leasing and
		// permanently failing the same unit through the attempt budget.
		sleepCtx(ctx, time.Duration(w.pollMS)*time.Millisecond)
	}
}

// post sends one JSON request to the coordinator and decodes the reply.
// Non-2xx answers surface the coordinator's JSON error message.
func (w *Worker) post(ctx context.Context, path string, body, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, completeBodyLimit))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("fleet: %s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("fleet: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, into)
}

func (w *Worker) closeModel() {
	if w.mapped != nil {
		w.mapped.Close()
		w.mapped = nil
	}
	w.model, w.modelPath, w.fingerprint = nil, "", ""
}

func (w *Worker) closeArtifacts() {
	w.closeModel()
	w.ds, w.dataDir = nil, ""
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

func countFacts(records []jobs.RelationRecord) int {
	n := 0
	for _, rec := range records {
		n += len(rec.Facts)
	}
	return n
}
