package prune

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/fsio"
	"repro/internal/kge"
	"repro/internal/vecmath"
)

// The sidecar wire format is a flat little-endian layout: a fixed magic, the
// fingerprint, the shape scalars, then each array back to back in a fixed
// order, closed by a CRC32 (IEEE) of everything before it. Flat arrays keep
// Load a handful of large reads into pre-sized slices — mmap-friendly and
// free of per-element decoding — and the trailing checksum turns a torn
// write into a clean rebuild instead of a corrupt index.
const sidecarMagic = "KGPIVF1\n"

// Save writes the index to w in the sidecar format.
func (ix *Index) Save(w io.Writer) error {
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	bw := bufio.NewWriterSize(cw, 1<<20)

	bw.WriteString(sidecarMagic)
	writeU32(bw, uint32(len(ix.fingerprint)))
	bw.WriteString(ix.fingerprint)
	bw.WriteByte(byte(ix.geom))
	writeU32(bw, uint32(ix.dim))
	writeU32(bw, uint32(ix.qdim))
	writeU32(bw, uint32(ix.n))
	writeU32(bw, uint32(ix.cells))

	writeF32s(bw, ix.centroids.Data)
	writeF64s(bw, ix.radL2)
	writeF64s(bw, ix.radL1)
	writeI32s(bw, ix.cellStart)
	writeI32s(bw, ix.members)
	writeI8s(bw, ix.codes)
	if ix.geom == kge.SweepDot {
		writeF32s(bw, ix.scale)
		writeF32s(bw, ix.codeL1)
	} else {
		writeF64(bw, ix.gscale)
	}
	writeF64(bw, ix.maxRowL2)
	writeF64(bw, ix.maxRowL1)

	if err := bw.Flush(); err != nil {
		return fmt.Errorf("prune: save: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("prune: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save, verifying the checksum.
func Load(r io.Reader) (*Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20), crc: crc32.NewIEEE()}

	magic := make([]byte, len(sidecarMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if string(magic) != sidecarMagic {
		return nil, fmt.Errorf("prune: load: bad magic %q", magic)
	}

	fplen, err := readU32(cr)
	if err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if fplen > 1<<10 {
		return nil, fmt.Errorf("prune: load: implausible fingerprint length %d", fplen)
	}
	fp := make([]byte, fplen)
	if _, err := io.ReadFull(cr, fp); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	var geomByte [1]byte
	if _, err := io.ReadFull(cr, geomByte[:]); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}

	ix := &Index{fingerprint: string(fp), geom: kge.SweepGeometry(geomByte[0])}
	for _, dst := range []*int{&ix.dim, &ix.qdim, &ix.n, &ix.cells} {
		v, err := readU32(cr)
		if err != nil {
			return nil, fmt.Errorf("prune: load: %w", err)
		}
		*dst = int(v)
	}
	const maxSide = 1 << 28 // ~268M entities/cells: far past any supported graph
	if ix.dim <= 0 || ix.qdim < ix.dim || ix.n <= 0 || ix.cells <= 0 ||
		ix.n > maxSide || ix.cells > ix.n || ix.qdim > maxSide {
		return nil, fmt.Errorf("prune: load: implausible shape dim=%d qdim=%d n=%d cells=%d",
			ix.dim, ix.qdim, ix.n, ix.cells)
	}

	ix.centroids = vecmath.NewMatrix(ix.cells, ix.qdim)
	ix.radL2 = make([]float64, ix.cells)
	ix.radL1 = make([]float64, ix.cells)
	ix.cellStart = make([]int32, ix.cells+1)
	ix.members = make([]int32, ix.n)
	ix.codes = make([]int8, ix.n*ix.qdim)

	if err := readF32s(cr, ix.centroids.Data); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if err := readF64s(cr, ix.radL2); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if err := readF64s(cr, ix.radL1); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if err := readI32s(cr, ix.cellStart); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if err := readI32s(cr, ix.members); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if err := readI8s(cr, ix.codes); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if ix.geom == kge.SweepDot {
		ix.scale = make([]float32, ix.n)
		ix.codeL1 = make([]float32, ix.n)
		if err := readF32s(cr, ix.scale); err != nil {
			return nil, fmt.Errorf("prune: load: %w", err)
		}
		if err := readF32s(cr, ix.codeL1); err != nil {
			return nil, fmt.Errorf("prune: load: %w", err)
		}
	} else {
		if ix.gscale, err = readF64(cr); err != nil {
			return nil, fmt.Errorf("prune: load: %w", err)
		}
	}
	if ix.maxRowL2, err = readF64(cr); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	if ix.maxRowL1, err = readF64(cr); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}

	want := cr.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return nil, fmt.Errorf("prune: load: checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("prune: load: checksum mismatch (file %08x, computed %08x)", got, want)
	}

	if err := ix.validate(); err != nil {
		return nil, fmt.Errorf("prune: load: %w", err)
	}
	return ix, nil
}

// validate checks the structural invariants Load cannot express as shapes.
func (ix *Index) validate() error {
	if ix.cellStart[0] != 0 || int(ix.cellStart[ix.cells]) != ix.n {
		return fmt.Errorf("cell offsets do not cover the entity range")
	}
	for c := 0; c < ix.cells; c++ {
		if ix.cellStart[c+1] < ix.cellStart[c] {
			return fmt.Errorf("cell %d has negative extent", c)
		}
	}
	seen := make([]bool, ix.n)
	for _, o := range ix.members {
		if o < 0 || int(o) >= ix.n || seen[o] {
			return fmt.Errorf("members is not a permutation of entity ids")
		}
		seen[o] = true
	}
	return nil
}

// SaveFile writes the index to path with the shared durable-write discipline
// (internal/fsio): unique temp file, file fsync, atomic rename, directory
// fsync. The unique temp name makes concurrent savers of the same path safe
// (last rename wins with a complete file), and the fsyncs ensure a crash
// shortly after SaveFile returns cannot resurrect a stale or empty sidecar.
func (ix *Index) SaveFile(path string) error {
	return fsio.WriteAtomic(path, func(f *os.File) error { return ix.Save(f) })
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadOrBuild returns a usable index for sw: the sidecar at path when it
// exists, parses, and matches the model's fingerprint, shape, and requested
// cell count; otherwise a fresh Build. loaded reports whether the sidecar was
// reused. A missing, corrupt, or stale sidecar is never an error — it is
// simply rebuilt — so callers need no cleanup logic when weights are
// retrained in place.
//
// Persistence is deliberately asymmetric. A rebuild caused by a missing or
// invalid sidecar is written back to path (best effort); a rebuild caused
// only by a cell-count mismatch is NOT. Two processes serving the same
// checkpoint with different Cells settings would otherwise overwrite each
// other's sidecar on every start — an unbounded rebuild/overwrite thrash in
// which neither process ever loads from disk. Instead the on-disk sidecar is
// left alone whenever it is valid for the model, and the differently-shaped
// index lives only in memory.
func LoadOrBuild(path string, sw kge.ObjectSweeper, fingerprint string, p Params) (ix *Index, loaded bool, err error) {
	wantCells := p.withDefaults(sw.NumEntities()).Cells
	diskValid := false
	if path != "" {
		if cached, lerr := LoadFile(path); lerr == nil && cached.Matches(sw, fingerprint) {
			if cached.cells == wantCells {
				return cached, true, nil
			}
			diskValid = true
		}
	}
	ix, err = Build(sw, fingerprint, p)
	if err != nil {
		return nil, false, err
	}
	if path != "" && !diskValid {
		// Best effort: a read-only checkpoint directory only costs a rebuild
		// next run.
		_ = ix.SaveFile(path)
	}
	return ix, false, nil
}

type crcWriter struct {
	w   io.Writer
	crc hash32
}

type hash32 interface {
	io.Writer
	Sum32() uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeF64(w io.Writer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.Write(b[:])
}

func readF64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func writeF32s(w *bufio.Writer, vs []float32) {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		w.Write(b[:])
	}
}

func readF32s(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

func writeF64s(w *bufio.Writer, vs []float64) {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		w.Write(b[:])
	}
}

func readF64s(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

func writeI32s(w *bufio.Writer, vs []int32) {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		w.Write(b[:])
	}
}

func readI32s(r io.Reader, dst []int32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

func writeI8s(w *bufio.Writer, vs []int8) {
	for _, v := range vs {
		w.WriteByte(byte(v))
	}
}

func readI8s(r io.Reader, dst []int8) error {
	buf := make([]byte, len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int8(buf[i])
	}
	return nil
}
