package prune

import (
	"math/rand"

	"repro/internal/vecmath"
)

// kmeansChunkRows bounds the transient dot-product matrix of one assignment
// chunk (chunk × cells float32s): 4096 rows keeps it a few MiB even at large
// cell counts while leaving MatMat long enough runs to amortize its tiling.
const kmeansChunkRows = 4096

// kmeans runs deterministic Lloyd iterations over the rows of a float32
// matrix and returns the k×d centroid matrix plus each row's cell
// assignment. Everything is fixed-order and seeded, so the same (rows, k,
// iters, seed) always produces the same index: initialization samples k
// distinct rows from a seeded permutation, assignment breaks distance ties
// toward the lower cell id, centroid updates accumulate in float64 in row
// order, and a cell that loses all members keeps its previous centroid
// (its radius collapses to zero and the search loop skips empty cells).
func kmeans(rows *vecmath.Matrix, k, iters int, seed int64) (*vecmath.Matrix, []int32) {
	n, d := rows.Rows, rows.Cols
	centroids := vecmath.NewMatrix(k, d)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		copy(centroids.Row(c), rows.Row(perm[c]))
	}

	assign := make([]int32, n)
	rowSq := make([]float64, n)
	for o := 0; o < n; o++ {
		var s float64
		for _, v := range rows.Row(o) {
			s += float64(v) * float64(v)
		}
		rowSq[o] = s
	}
	cenSq := make([]float64, k)
	sums := make([]float64, k*d)
	counts := make([]int64, k)
	dots := vecmath.NewMatrix(kmeansChunkRows, k)

	for it := 0; it < iters; it++ {
		for c := 0; c < k; c++ {
			var s float64
			for _, v := range centroids.Row(c) {
				s += float64(v) * float64(v)
			}
			cenSq[c] = s
		}
		// Assignment: argmin ‖e−c‖² = ‖e‖² − 2e·c + ‖c‖², with the e·c terms
		// of a whole chunk computed as one tiled matrix–matrix product.
		for lo := 0; lo < n; lo += kmeansChunkRows {
			hi := lo + kmeansChunkRows
			if hi > n {
				hi = n
			}
			chunk := &vecmath.Matrix{Rows: hi - lo, Cols: d, Data: rows.Data[lo*d : hi*d]}
			dm := &vecmath.Matrix{Rows: hi - lo, Cols: k, Data: dots.Data[:(hi-lo)*k]}
			vecmath.MatMat(dm, centroids, chunk)
			for o := lo; o < hi; o++ {
				dr := dm.Row(o - lo)
				best, bestDist := int32(0), rowSq[o]-2*float64(dr[0])+cenSq[0]
				for c := 1; c < k; c++ {
					dist := rowSq[o] - 2*float64(dr[c]) + cenSq[c]
					if dist < bestDist {
						best, bestDist = int32(c), dist
					}
				}
				assign[o] = best
			}
		}
		// Update.
		for i := range sums {
			sums[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for o := 0; o < n; o++ {
			c := int(assign[o])
			counts[c]++
			base := c * d
			row := rows.Row(o)
			for j := 0; j < d; j++ {
				sums[base+j] += float64(row[j])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			cen := centroids.Row(c)
			base := c * d
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				cen[j] = float32(sums[base+j] * inv)
			}
		}
	}

	// Final assignment against the last centroid update, so the stored radii
	// and memberships describe the centroids actually persisted.
	for c := 0; c < k; c++ {
		var s float64
		for _, v := range centroids.Row(c) {
			s += float64(v) * float64(v)
		}
		cenSq[c] = s
	}
	for lo := 0; lo < n; lo += kmeansChunkRows {
		hi := lo + kmeansChunkRows
		if hi > n {
			hi = n
		}
		chunk := &vecmath.Matrix{Rows: hi - lo, Cols: d, Data: rows.Data[lo*d : hi*d]}
		dm := &vecmath.Matrix{Rows: hi - lo, Cols: k, Data: dots.Data[:(hi-lo)*k]}
		vecmath.MatMat(dm, centroids, chunk)
		for o := lo; o < hi; o++ {
			dr := dm.Row(o - lo)
			best, bestDist := int32(0), rowSq[o]-2*float64(dr[0])+cenSq[0]
			for c := 1; c < k; c++ {
				dist := rowSq[o] - 2*float64(dr[c]) + cenSq[c]
				if dist < bestDist {
					best, bestDist = int32(c), dist
				}
			}
			assign[o] = best
		}
	}
	return centroids, assign
}
