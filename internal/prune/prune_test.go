package prune

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
)

// testModel builds a small randomized model of one family and returns its
// sweeper and fingerprint. 41 entities exercises the non-multiple-of-4 tail;
// dim 8 keeps ConvE's reshape valid.
func testModel(t testing.TB, name string, norm int, seed int64) (kge.ObjectSweeper, string) {
	t.Helper()
	cfg := kge.Config{NumEntities: 41, NumRelations: 5, Dim: 8, Seed: 11, Norm: norm}
	m, err := kge.New(name, cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params().List() {
		for i := range p.M.Data {
			p.M.Data[i] += float32(rng.NormFloat64()) * 0.3
		}
	}
	sw, ok := m.(kge.ObjectSweeper)
	if !ok {
		t.Fatalf("%s does not implement ObjectSweeper", name)
	}
	return sw, kge.Fingerprint(m)
}

// allModels yields every family plus the L2 TransE variant, covering all
// three sweep geometries.
func allModels(t testing.TB, seed int64) map[string]struct {
	sw kge.ObjectSweeper
	fp string
} {
	t.Helper()
	out := map[string]struct {
		sw kge.ObjectSweeper
		fp string
	}{}
	for _, name := range kge.ModelNames() {
		sw, fp := testModel(t, name, 0, seed)
		out[name] = struct {
			sw kge.ObjectSweeper
			fp string
		}{sw, fp}
	}
	sw, fp := testModel(t, "transe", 2, seed)
	out["transe_l2"] = struct {
		sw kge.ObjectSweeper
		fp string
	}{sw, fp}
	return out
}

func denseSweep(sw kge.ObjectSweeper, s kg.EntityID, r kg.RelationID) []float32 {
	out := make([]float32, sw.NumEntities())
	sw.ScoreAllObjects(s, r, out)
	return out
}

// TestTopMExactIsTrueTopM is the core exactness property: in exact mode the
// TopM result is, value for value, the true top-M multiset of the dense
// sweep's computed float32 scores — for every family and both protocols'
// typical M values.
func TestTopMExactIsTrueTopM(t *testing.T) {
	for name, tm := range allModels(t, 17) {
		t.Run(name, func(t *testing.T) {
			ix, err := Build(tm.sw, tm.fp, Params{Cells: 6})
			if err != nil {
				t.Fatal(err)
			}
			sr, err := NewSearcher(ix, tm.sw, tm.fp)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []int{1, 3, 10, 25, 40} {
				for s := 0; s < 7; s++ {
					for r := 0; r < tm.sw.NumRelations(); r++ {
						dense := denseSweep(tm.sw, kg.EntityID(s), kg.RelationID(r))
						slices.Sort(dense)
						slices.Reverse(dense)
						want := dense[:m]

						got, ok := sr.TopM(kg.EntityID(s), kg.RelationID(r), m, false, 0)
						if !ok {
							t.Fatalf("m=%d s=%d r=%d: unexpected fallback", m, s, r)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("m=%d s=%d r=%d: top-M mismatch\n got %v\nwant %v", m, s, r, got, want)
						}
					}
				}
			}
			if _, ok := sr.TopM(0, 0, tm.sw.NumEntities(), false, 0); ok {
				t.Fatal("m == n should refuse and fall back")
			}
		})
	}
}

// TestSearcherScoreBitIdentity checks that post-TopM exact rescoring (the
// path targets and filtered corruptions take) reproduces the dense sweep
// bit for bit for every entity.
func TestSearcherScoreBitIdentity(t *testing.T) {
	for name, tm := range allModels(t, 23) {
		t.Run(name, func(t *testing.T) {
			ix, err := Build(tm.sw, tm.fp, Params{})
			if err != nil {
				t.Fatal(err)
			}
			sr, err := NewSearcher(ix, tm.sw, tm.fp)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < 5; s++ {
				for r := 0; r < tm.sw.NumRelations(); r++ {
					dense := denseSweep(tm.sw, kg.EntityID(s), kg.RelationID(r))
					if _, ok := sr.TopM(kg.EntityID(s), kg.RelationID(r), 5, false, 0); !ok {
						t.Fatal("unexpected fallback")
					}
					for o := range dense {
						if got := sr.Score(kg.EntityID(o)); got != dense[o] {
							t.Fatalf("s=%d r=%d o=%d: Score %x != dense %x", s, r, o, got, dense[o])
						}
					}
				}
			}
		})
	}
}

// TestBoundSoundness is the property test behind the exactness claim: over
// randomized models of every family, every cell upper bound dominates the
// computed score of each member, and the exact-mode int8 prescreen bound
// dominates the computed score of each entity. Trials multiply across
// models, subjects, relations, and entities; the aggregate comfortably
// exceeds the thousand-trial bar.
func TestBoundSoundness(t *testing.T) {
	seeds := []int64{101, 202, 303}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for name, tm := range allModels(t, seed) {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				ix, err := Build(tm.sw, tm.fp, Params{Cells: 5})
				if err != nil {
					t.Fatal(err)
				}
				sr, err := NewSearcher(ix, tm.sw, tm.fp)
				if err != nil {
					t.Fatal(err)
				}
				n := tm.sw.NumEntities()
				for s := 0; s < 6; s++ {
					for r := 0; r < tm.sw.NumRelations(); r++ {
						dense := denseSweep(tm.sw, kg.EntityID(s), kg.RelationID(r))
						sr.setQuery(kg.EntityID(s), kg.RelationID(r))
						sr.boundCells()
						for c := 0; c < ix.cells; c++ {
							for _, o := range ix.members[ix.cellStart[c]:ix.cellStart[c+1]] {
								if ub := sr.cellUB[c]; ub < float64(dense[o]) {
									t.Fatalf("s=%d r=%d cell=%d o=%d: cell UB %v < score %v",
										s, r, c, o, ub, dense[o])
								}
							}
						}
						for o := 0; o < n; o++ {
							if ub := sr.prescreenUB(o, false); ub < float64(dense[o]) {
								t.Fatalf("s=%d r=%d o=%d: int8 UB %v < score %v",
									s, r, o, ub, dense[o])
							}
						}
					}
				}
			})
		}
	}
}

// TestTopMTieHeavy puts masses of exactly tied scores at the prune boundary:
// an entity table with only three distinct rows means huge score ties, and
// the exact top-M multiset must still come back value for value.
func TestTopMTieHeavy(t *testing.T) {
	sw, _ := testModel(t, "distmult", 0, 31)
	ent := sw.SweepEntityTable()
	for o := 0; o < ent.Rows; o++ {
		copy(ent.Row(o), ent.Row(o%3))
	}
	fp := "tie-heavy-rebuild" // fingerprint changed with the table; any tag works for Build
	ix, err := Build(sw, fp, Params{Cells: 4})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewSearcher(ix, sw, fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 10, 39} {
		for r := 0; r < sw.NumRelations(); r++ {
			dense := denseSweep(sw, 1, kg.RelationID(r))
			slices.Sort(dense)
			slices.Reverse(dense)
			got, ok := sr.TopM(1, kg.RelationID(r), m, false, 0)
			if !ok {
				t.Fatalf("m=%d: unexpected fallback", m)
			}
			if !reflect.DeepEqual(got, dense[:m]) {
				t.Fatalf("m=%d r=%d: tie-heavy top-M mismatch\n got %v\nwant %v", m, r, got, dense[:m])
			}
		}
	}
}

// TestApproxModeRuns sanity-checks the approx path: bounded probes, results
// drawn from real computed scores, and descending order.
func TestApproxModeRuns(t *testing.T) {
	for name, tm := range allModels(t, 41) {
		sw := tm.sw
		ix, err := Build(sw, tm.fp, Params{Cells: 8})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewSearcher(ix, sw, tm.fp)
		if err != nil {
			t.Fatal(err)
		}
		dense := denseSweep(sw, 2, 1)
		got, ok := sr.TopM(2, 1, 10, true, 2)
		if !ok {
			t.Fatalf("%s: unexpected fallback", name)
		}
		if len(got) > 10 {
			t.Fatalf("%s: approx returned %d > m values", name, len(got))
		}
		for i, v := range got {
			if i > 0 && got[i-1] < v {
				t.Fatalf("%s: approx result not descending", name)
			}
			if !slices.Contains(dense, v) {
				t.Fatalf("%s: approx value %v not a real score", name, v)
			}
		}
		st := sr.TakeStats()
		if st.CellsVisited > 2 {
			t.Fatalf("%s: visited %d cells with probe=2", name, st.CellsVisited)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for name, tm := range allModels(t, 53) {
		t.Run(name, func(t *testing.T) {
			ix, err := Build(tm.sw, tm.fp, Params{Cells: 6})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ix) {
				t.Fatal("loaded index differs from saved index")
			}

			// A flipped byte anywhere in the body must fail the checksum (or a
			// structural check), never load silently.
			raw := append([]byte(nil), buf.Bytes()...)
			raw[len(raw)/2] ^= 0x40
			if _, err := Load(bytes.NewReader(raw)); err == nil {
				t.Fatal("corrupt sidecar loaded without error")
			}
			if _, err := Load(bytes.NewReader(raw[:len(raw)-3])); err == nil {
				t.Fatal("truncated sidecar loaded without error")
			}
		})
	}
}

func TestLoadOrBuild(t *testing.T) {
	sw, fp := testModel(t, "complex", 0, 61)
	path := filepath.Join(t.TempDir(), "model.kge.ivf")

	ix1, loaded, err := LoadOrBuild(path, sw, fp, Params{Cells: 5})
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("first call claims a cached sidecar")
	}
	ix2, loaded, err := LoadOrBuild(path, sw, fp, Params{Cells: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("second call rebuilt instead of loading the sidecar")
	}
	if !reflect.DeepEqual(ix1, ix2) {
		t.Fatal("cached index differs from built index")
	}

	// A different cell count must not reuse the sidecar.
	_, loaded, err = LoadOrBuild(path, sw, fp, Params{Cells: 9})
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("sidecar with wrong cell count was reused")
	}

	// A stale fingerprint (retrained weights) must trigger a rebuild.
	_, loaded, err = LoadOrBuild(path, sw, "other-weights", Params{Cells: 9})
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("stale sidecar was reused across fingerprints")
	}

	// Corruption must degrade to a rebuild, not an error.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, loaded, err = LoadOrBuild(path, sw, fp, Params{Cells: 5})
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("corrupt sidecar was reused")
	}
}

// TestBuildDeterminism: same weights, same params → byte-identical sidecars.
func TestBuildDeterminism(t *testing.T) {
	sw, fp := testModel(t, "transe", 1, 71)
	a, err := Build(sw, fp, Params{Cells: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sw, fp, Params{Cells: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := a.Save(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("two builds of the same weights produced different sidecars")
	}
}

func TestNewSearcherRejectsMismatch(t *testing.T) {
	sw, fp := testModel(t, "distmult", 0, 83)
	ix, err := Build(sw, fp, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(ix, sw, "not-the-fingerprint"); err == nil {
		t.Fatal("searcher accepted a mismatched fingerprint")
	}
	other, _ := testModel(t, "transe", 1, 83)
	if _, err := NewSearcher(ix, other, fp); err == nil {
		t.Fatal("searcher accepted a mismatched geometry")
	}
}

func TestStatsAccounting(t *testing.T) {
	sw, fp := testModel(t, "distmult", 0, 97)
	ix, err := Build(sw, fp, Params{Cells: 8})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewSearcher(ix, sw, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sr.TopM(0, 0, 3, false, 0); !ok {
		t.Fatal("unexpected fallback")
	}
	st := sr.TakeStats()
	if st.ExactRows == 0 {
		t.Fatal("no exact rows counted")
	}
	if st.CellsVisited == 0 {
		t.Fatal("no cells visited")
	}
	if st.CellsVisited+st.CellsPruned > ix.Cells() {
		t.Fatalf("visited %d + pruned %d exceeds %d cells", st.CellsVisited, st.CellsPruned, ix.Cells())
	}
	if got := sr.TakeStats(); got != (Stats{}) {
		t.Fatalf("TakeStats did not reset: %+v", got)
	}
}
