// Package prune implements the approximate-then-exact ranking index behind
// core.Options.PruneMode: a per-model coarse quantizer over the entity table
// that turns the exact O(|E|·d) corruption sweep into prescreen-then-rerank.
//
// Two cooperating structures are built once per model checkpoint (keyed by
// kge.Fingerprint) from the model's kge.ObjectSweeper geometry:
//
//   - an IVF cell index: k ≈ √|E| k-means centroids partition the entity
//     rows, and each cell stores residual-norm radii that turn a centroid
//     score into a sound per-cell score bound — max inner product via
//     q·c + ‖q‖₂·r (Cauchy–Schwarz), min distance via d(q, c) − r (triangle
//     inequality) for TransE;
//   - an int8 symmetric-quantized copy of the entity table, swept with the
//     widening vecmath kernels (DotI8, L1DistI8, L2SqDistI8) as a cheap
//     second-stage filter inside cells the bounds could not discard.
//
// A Searcher runs the per-query branch-and-bound: visit cells in descending
// upper bound, maintain the top-M exact scores, stop when no remaining cell
// can beat the frontier, and rescore survivors with the exact float kernels
// on aligned 4-row blocks so every exact score is bit-identical to the dense
// sweep. All bounds are computed in float64 and inflated by a kernel-rounding
// slack, so they hold for the float32 scores the kernels actually compute,
// not just for real arithmetic — pruning only ever skips provably losing
// work, which is what makes -prune=exact byte-identical to -prune=off
// (DESIGN.md §10 gives the derivations).
package prune

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/kge"
	"repro/internal/vecmath"
)

// Params controls index construction.
type Params struct {
	// Cells is the number of k-means cells; 0 means ⌈√N⌉.
	Cells int
	// Iters is the number of Lloyd iterations; 0 means 8.
	Iters int
}

func (p Params) withDefaults(n int) Params {
	if p.Cells <= 0 {
		p.Cells = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if p.Cells > n {
		p.Cells = n
	}
	if p.Cells < 1 {
		p.Cells = 1
	}
	if p.Iters <= 0 {
		p.Iters = 8
	}
	return p
}

// quantInflate compensates the float64 evaluation of the quantization error
// terms themselves (scales stored as float32, codes produced by float
// division): a hair of multiplicative headroom on top of the analytic bound.
const quantInflate = 1 + 1e-6

// radiusInflate guards the per-cell residual radii the same way: they are
// accumulated in float64 from float32 data, so a relative margin of 1e-7
// strictly dominates the accumulation error at any dimension used here.
const radiusInflate = 1 + 1e-7

// Index is the per-checkpoint pruning structure. It is immutable after
// Build/Load and safe for concurrent Searchers.
type Index struct {
	fingerprint string
	geom        kge.SweepGeometry
	dim         int // sweep width (entity-table columns)
	qdim        int // quantized width: dim, or dim+1 with the bias folded in
	n           int
	cells       int

	centroids *vecmath.Matrix // cells×qdim
	radL2     []float64       // per cell: max ‖e' − c‖₂ over members
	radL1     []float64       // per cell: max ‖e' − c‖₁ over members
	cellStart []int32         // cells+1 prefix offsets into members
	members   []int32         // entity ids grouped by cell, ascending within

	codes  []int8    // n×qdim symmetric-quantized entity rows
	scale  []float32 // per-row dequant scale (dot geometry)
	codeL1 []float32 // per-row Σ|code| (dot geometry error bound)
	gscale float64   // global dequant scale (distance geometries)

	maxRowL2 float64 // max augmented-row norms, for the kernel-rounding slack
	maxRowL1 float64
}

// Fingerprint returns the kge.Fingerprint the index was built for.
func (ix *Index) Fingerprint() string { return ix.fingerprint }

// Cells returns the number of IVF cells.
func (ix *Index) Cells() int { return ix.cells }

// NumEntities returns the entity count the index covers.
func (ix *Index) NumEntities() int { return ix.n }

// Geometry returns the sweep geometry the index was built over.
func (ix *Index) Geometry() kge.SweepGeometry { return ix.geom }

// Matches reports whether the index fits sweeper's geometry and fingerprint
// — the precondition for NewSearcher.
func (ix *Index) Matches(sw kge.ObjectSweeper, fingerprint string) bool {
	return ix.fingerprint == fingerprint &&
		ix.geom == sw.SweepGeometry() &&
		ix.dim == sw.SweepDim() &&
		ix.n == sw.NumEntities()
}

// buildSeed derives the deterministic k-means seed from the fingerprint and
// cell count, so the same checkpoint always builds the same index.
func buildSeed(fingerprint string, cells int) int64 {
	h := fnv.New64a()
	h.Write([]byte(fingerprint))
	fmt.Fprintf(h, "/cells=%d", cells)
	return int64(h.Sum64())
}

// augmentedRows returns the table the index quantizes: the sweep entity
// table, with the per-entity bias appended as an extra column when the model
// has one (ConvE). Folding the bias makes the dot-family bound exact for the
// full score q'·[e; b] with q' = [q; 1], with no special cases downstream.
func augmentedRows(sw kge.ObjectSweeper) (*vecmath.Matrix, int) {
	ent := sw.SweepEntityTable()
	bias := sw.SweepBias()
	if bias == nil {
		return ent, ent.Cols
	}
	qdim := ent.Cols + 1
	aug := vecmath.NewMatrix(ent.Rows, qdim)
	for o := 0; o < ent.Rows; o++ {
		row := aug.Row(o)
		copy(row, ent.Row(o))
		row[ent.Cols] = bias[o]
	}
	return aug, qdim
}

// Build constructs the index for sweeper's entity table. fingerprint must be
// the model's kge.Fingerprint; it pins the index to the exact weights.
func Build(sw kge.ObjectSweeper, fingerprint string, p Params) (*Index, error) {
	n := sw.NumEntities()
	if n < 1 {
		return nil, fmt.Errorf("prune: model has no entities")
	}
	p = p.withDefaults(n)
	rows, qdim := augmentedRows(sw)

	ix := &Index{
		fingerprint: fingerprint,
		geom:        sw.SweepGeometry(),
		dim:         sw.SweepDim(),
		qdim:        qdim,
		n:           n,
		cells:       p.Cells,
	}

	centroids, assign := kmeans(rows, p.Cells, p.Iters, buildSeed(fingerprint, p.Cells))
	ix.centroids = centroids

	// Cell membership: counting sort by cell keeps members ascending within
	// each cell (rows are visited in ascending entity order).
	counts := make([]int32, p.Cells)
	for _, c := range assign {
		counts[c]++
	}
	ix.cellStart = make([]int32, p.Cells+1)
	for c := 0; c < p.Cells; c++ {
		ix.cellStart[c+1] = ix.cellStart[c] + counts[c]
	}
	next := append([]int32(nil), ix.cellStart[:p.Cells]...)
	ix.members = make([]int32, n)
	for o := 0; o < n; o++ {
		c := assign[o]
		ix.members[next[c]] = int32(o)
		next[c]++
	}

	// Residual radii, accumulated in float64 and inflated so they dominate
	// their own rounding.
	ix.radL2 = make([]float64, p.Cells)
	ix.radL1 = make([]float64, p.Cells)
	for o := 0; o < n; o++ {
		row, cen := rows.Row(o), centroids.Row(int(assign[o]))
		var l1, l2 float64
		for j := range row {
			d := float64(row[j]) - float64(cen[j])
			l2 += d * d
			l1 += math.Abs(d)
		}
		l2 = math.Sqrt(l2)
		c := assign[o]
		if l2 > ix.radL2[c] {
			ix.radL2[c] = l2
		}
		if l1 > ix.radL1[c] {
			ix.radL1[c] = l1
		}
	}
	for c := range ix.radL2 {
		ix.radL2[c] *= radiusInflate
		ix.radL1[c] *= radiusInflate
	}

	ix.quantize(rows)
	return ix, nil
}

// quantize fills the int8 copy of the (augmented) entity table. The dot
// geometry quantizes per row (scales differ by orders of magnitude across
// entities, and the error bound needs per-row Δ anyway); the distance
// geometries share one global scale so that code differences remain
// meaningful across rows.
func (ix *Index) quantize(rows *vecmath.Matrix) {
	n, qdim := ix.n, ix.qdim
	ix.codes = make([]int8, n*qdim)
	var maxL1, maxL2 float64
	for o := 0; o < n; o++ {
		row := rows.Row(o)
		var l1, l2 float64
		for _, v := range row {
			f := math.Abs(float64(v))
			l1 += f
			l2 += float64(v) * float64(v)
		}
		l2 = math.Sqrt(l2)
		if l1 > maxL1 {
			maxL1 = l1
		}
		if l2 > maxL2 {
			maxL2 = l2
		}
	}
	ix.maxRowL1 = maxL1 * radiusInflate
	ix.maxRowL2 = maxL2 * radiusInflate

	if ix.geom == kge.SweepDot {
		ix.scale = make([]float32, n)
		ix.codeL1 = make([]float32, n)
		for o := 0; o < n; o++ {
			row := rows.Row(o)
			var maxAbs float64
			for _, v := range row {
				if f := math.Abs(float64(v)); f > maxAbs {
					maxAbs = f
				}
			}
			delta := maxAbs / 127
			ix.scale[o] = float32(delta)
			code := ix.codes[o*qdim : (o+1)*qdim]
			var cl1 float64
			for j, v := range row {
				c := quantOne(float64(v), delta)
				code[j] = c
				cl1 += math.Abs(float64(c))
			}
			ix.codeL1[o] = float32(cl1)
		}
		return
	}

	// Distance geometries: one global scale over every entity component.
	var maxAbs float64
	for _, v := range rows.Data {
		if f := math.Abs(float64(v)); f > maxAbs {
			maxAbs = f
		}
	}
	ix.gscale = maxAbs / 127
	for o := 0; o < n; o++ {
		row := rows.Row(o)
		code := ix.codes[o*qdim : (o+1)*qdim]
		for j, v := range row {
			code[j] = quantOne(float64(v), ix.gscale)
		}
	}
}

// quantOne rounds v/delta to the nearest int8 step, clamped to ±127. With
// delta ≥ |v|/127 the clamp never engages; it guards callers that quantize
// out-of-range values (queries in the distance geometries).
func quantOne(v, delta float64) int8 {
	if delta == 0 {
		return 0
	}
	c := math.Round(v / delta)
	if c > 127 {
		c = 127
	}
	if c < -127 {
		c = -127
	}
	return int8(c)
}

// kernelSlack returns the float-soundness margin added to every upper bound:
// an over-estimate of how far above the real score the float32 kernels'
// computed score can land through rounding. magnitude must bound the sum of
// absolute term magnitudes of the kernel's accumulation (‖q‖₂·‖e‖₂ for dot
// sweeps, ‖q‖₁+‖e‖₁ for L1, (‖q‖₂+‖e‖₂)² for squared L2); the naive-sum
// error bound is ≈ d·2⁻²⁴·magnitude and the factor 4 is headroom for the
// bound's own float64 evaluation and the quantized estimate path.
func kernelSlack(d int, magnitude float64) float64 {
	return 4 * float64(d) * (1.0 / (1 << 24)) * magnitude
}
