package prune

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/vecmath"
)

// Stats counts the work one or more TopM calls did and saved. Counters
// accumulate across calls; TakeStats reads and resets them.
type Stats struct {
	// CellsPruned counts IVF cells discarded without visiting their members:
	// their score upper bound could not beat the running top-M frontier (or,
	// in approx mode, they fell beyond the probe budget).
	CellsPruned int
	// PrescreenRows counts entity rows evaluated by the int8 filter inside
	// visited cells while the frontier was full — each row the filter
	// rejects skips an exact block rescore.
	PrescreenRows int
	// ExactRows counts entity rows scored by the exact float kernels
	// (aligned 4-row blocks, so shortlist neighbors are included).
	ExactRows int
	// CellsVisited counts cells whose members were swept.
	CellsVisited int
}

// Searcher runs pruned top-M corruption sweeps against one Index. It is a
// per-goroutine working set (not safe for concurrent use); the Index it
// wraps is shared and read-only. Create one per worker and reuse it — all
// buffers are allocated once.
type Searcher struct {
	ix *Index
	sw kge.ObjectSweeper

	q  []float32 // raw sweep query (dim)
	qa []float32 // augmented query (qdim); aliases q when no bias is folded
	cq []int8    // quantized query (qdim)

	// Per-query bound constants (float64): the query's norms, quantization
	// step, exact quantization residual norms (distance geometries), and the
	// kernel-rounding slack.
	dq, qL1, qL2, eqL1, eqL2, slack float64

	scores   []float32 // sparse exact scores, valid where blockGen == gen
	blockGen []uint32
	gen      uint32

	cellUB  []float64
	cellOrd []int32
	heap    []float32 // min-heap over the running top-M computed scores

	stats Stats
}

// NewSearcher returns a Searcher over ix for sw. The index must have been
// built for this exact model (fingerprint, geometry, and shape).
func NewSearcher(ix *Index, sw kge.ObjectSweeper, fingerprint string) (*Searcher, error) {
	if !ix.Matches(sw, fingerprint) {
		return nil, fmt.Errorf("prune: index (fingerprint %.12s…, geom %d, dim %d, n %d) does not match model (fingerprint %.12s…, geom %d, dim %d, n %d)",
			ix.fingerprint, ix.geom, ix.dim, ix.n,
			fingerprint, sw.SweepGeometry(), sw.SweepDim(), sw.NumEntities())
	}
	s := &Searcher{
		ix:       ix,
		sw:       sw,
		q:        make([]float32, ix.dim),
		cq:       make([]int8, ix.qdim),
		scores:   make([]float32, ix.n),
		blockGen: make([]uint32, (ix.n+3)/4),
		cellUB:   make([]float64, ix.cells),
		cellOrd:  make([]int32, ix.cells),
	}
	if ix.qdim == ix.dim {
		s.qa = s.q
	} else {
		s.qa = make([]float32, ix.qdim)
	}
	return s, nil
}

// Index returns the index the searcher was built over.
func (s *Searcher) Index() *Index { return s.ix }

// TakeStats returns the accumulated work counters and resets them.
func (s *Searcher) TakeStats() Stats {
	st := s.stats
	s.stats = Stats{}
	return st
}

// TopM computes the M largest computed sweep scores of the (sub, rel)
// object sweep, in descending order, via branch-and-bound over the IVF
// cells. ok=false means M ≥ |E| and the caller should run the dense sweep
// instead. The returned slice aliases an internal buffer valid until the
// next TopM call.
//
// In exact mode (approx=false) the result is the true top-M multiset of the
// float32 scores the exact kernels compute: every entity whose computed
// score exceeds the returned minimum was exact-scored and is represented,
// because cells and rows are only skipped when a float-sound upper bound
// says they cannot reach the frontier. In approx mode at most probe cells
// are visited (probe ≤ 0 picks ⌈cells/8⌉) and the int8 filter drops rows on
// its raw estimate, trading recall for speed.
//
// After TopM returns, Score answers exact per-entity scores for the same
// query (candidate targets, filtered corruptions).
func (s *Searcher) TopM(sub kg.EntityID, rel kg.RelationID, m int, approx bool, probe int) ([]float32, bool) {
	ix := s.ix
	if m >= ix.n || m <= 0 {
		return nil, false
	}
	s.setQuery(sub, rel)
	s.boundCells()
	if approx && probe <= 0 {
		probe = (ix.cells + 7) / 8
	}

	s.heap = s.heap[:0]
	visited := 0
	for _, ci := range s.cellOrd {
		lo, hi := ix.cellStart[ci], ix.cellStart[ci+1]
		if lo == hi {
			continue // empty cell: no bound, no members
		}
		full := len(s.heap) == m
		if full && s.cellUB[ci] < float64(s.heap[0]) {
			// Cells are ordered by descending upper bound: nothing after
			// this one can beat the frontier either.
			s.stats.CellsPruned += s.remainingNonEmpty(ci)
			break
		}
		if approx && visited >= probe {
			s.stats.CellsPruned += s.remainingNonEmpty(ci)
			break
		}
		visited++
		s.stats.CellsVisited++
		for _, o := range ix.members[lo:hi] {
			if len(s.heap) == m {
				threshold := float64(s.heap[0])
				if s.prescreenUB(int(o), approx) < threshold {
					continue
				}
				v := s.Score(kg.EntityID(o))
				if v > s.heap[0] {
					s.heap[0] = v
					s.siftDown()
				}
			} else {
				s.heapPush(s.Score(kg.EntityID(o)))
			}
		}
	}

	vals := s.heap
	slices.Sort(vals)
	slices.Reverse(vals)
	return vals, true
}

// remainingNonEmpty counts the not-yet-visited non-empty cells from the
// position of cell ci in the visit order (inclusive).
func (s *Searcher) remainingNonEmpty(ci int32) int {
	// cellOrd is a permutation; find ci's position lazily by scanning from
	// the end would be O(cells). Instead callers only break once per query,
	// so a linear pass over the order suffices.
	count := 0
	seen := false
	for _, c := range s.cellOrd {
		if c == ci {
			seen = true
		}
		if seen && s.ix.cellStart[c] != s.ix.cellStart[c+1] {
			count++
		}
	}
	return count
}

// Score returns the exact computed sweep score of entity o for the current
// query, rescoring o's aligned 4-row block with the exact kernels on first
// touch. For the dot geometry the block alignment makes the result
// bit-identical to the dense MatVec sweep; the distance kernels are per-row
// and trivially identical.
func (s *Searcher) Score(o kg.EntityID) float32 {
	b := int(o) >> 2
	if s.blockGen[b] != s.gen {
		s.scoreBlock(b)
	}
	return s.scores[o]
}

func (s *Searcher) scoreBlock(b int) {
	ix := s.ix
	lo := b * 4
	hi := lo + 4
	if hi > ix.n {
		hi = ix.n
	}
	ent := s.sw.SweepEntityTable()
	switch ix.geom {
	case kge.SweepDot:
		vecmath.MatVecRange(s.scores, ent, s.q, lo, hi)
		if bias := s.sw.SweepBias(); bias != nil {
			for o := lo; o < hi; o++ {
				s.scores[o] += bias[o]
			}
		}
	case kge.SweepL1:
		for o := lo; o < hi; o++ {
			s.scores[o] = -vecmath.L1Distance(s.q, ent.Row(o))
		}
	case kge.SweepL2Sq:
		for o := lo; o < hi; o++ {
			s.scores[o] = -vecmath.SquaredL2Distance(s.q, ent.Row(o))
		}
	}
	s.blockGen[b] = s.gen
	s.stats.ExactRows += hi - lo
}

// setQuery builds the (sub, rel) query, its augmented/quantized forms, and
// the per-query bound constants, and invalidates all cached block scores.
func (s *Searcher) setQuery(sub kg.EntityID, rel kg.RelationID) {
	ix := s.ix
	s.gen++
	if s.gen == 0 { // uint32 wrap: reset stamps once every 4B queries
		clear(s.blockGen)
		s.gen = 1
	}
	s.sw.BuildObjectQuery(sub, rel, s.q)
	if len(s.qa) != len(s.q) {
		copy(s.qa, s.q)
		s.qa[len(s.qa)-1] = 1 // the bias column's coefficient
	}

	var l1, l2, maxAbs float64
	for _, v := range s.qa {
		f := math.Abs(float64(v))
		l1 += f
		l2 += float64(v) * float64(v)
		if f > maxAbs {
			maxAbs = f
		}
	}
	s.qL1, s.qL2 = l1, math.Sqrt(l2)

	switch ix.geom {
	case kge.SweepDot:
		s.dq = maxAbs / 127
		for j, v := range s.qa {
			s.cq[j] = quantOne(float64(v), s.dq)
		}
		s.slack = kernelSlack(ix.qdim, s.qL2*ix.maxRowL2)
	case kge.SweepL1:
		s.quantizeDistQuery()
		s.slack = kernelSlack(ix.dim, s.qL1+ix.maxRowL1)
	case kge.SweepL2Sq:
		s.quantizeDistQuery()
		mag := s.qL2 + ix.maxRowL2
		s.slack = kernelSlack(ix.dim, mag*mag)
	}
}

// quantizeDistQuery quantizes the query with the entities' global scale and
// records the exact residual norms: queries (s + r) can fall outside the
// entity range, so the clamp can engage and the residual must be measured,
// not assumed ≤ Δ/2.
func (s *Searcher) quantizeDistQuery() {
	ix := s.ix
	s.dq = ix.gscale
	var el1, el2 float64
	for j, v := range s.qa {
		c := quantOne(float64(v), s.dq)
		s.cq[j] = c
		e := float64(v) - s.dq*float64(c)
		el1 += math.Abs(e)
		el2 += e * e
	}
	s.eqL1, s.eqL2 = el1, math.Sqrt(el2)
}

// boundCells computes every cell's score upper bound for the current query
// and sorts the visit order by descending bound (ties toward the lower cell
// id, keeping runs deterministic).
func (s *Searcher) boundCells() {
	ix := s.ix
	for c := 0; c < ix.cells; c++ {
		cen := ix.centroids.Row(c)
		switch ix.geom {
		case kge.SweepDot:
			var dot float64
			for j, v := range s.qa {
				dot += float64(v) * float64(cen[j])
			}
			s.cellUB[c] = dot + s.qL2*ix.radL2[c] + s.slack
		case kge.SweepL1:
			var d float64
			for j, v := range s.qa {
				d += math.Abs(float64(v) - float64(cen[j]))
			}
			d -= ix.radL1[c]
			if d < 0 {
				d = 0
			}
			s.cellUB[c] = -d + s.slack
		case kge.SweepL2Sq:
			var d float64
			for j, v := range s.qa {
				diff := float64(v) - float64(cen[j])
				d += diff * diff
			}
			d = math.Sqrt(d) - ix.radL2[c]
			if d < 0 {
				d = 0
			}
			s.cellUB[c] = -(d * d) + s.slack
		}
		s.cellOrd[c] = int32(c)
	}
	sort.Slice(s.cellOrd, func(i, j int) bool {
		a, b := s.cellOrd[i], s.cellOrd[j]
		if s.cellUB[a] != s.cellUB[b] {
			return s.cellUB[a] > s.cellUB[b]
		}
		return a < b
	})
}

// prescreenUB returns the int8 filter's score upper bound for entity o (or,
// in approx mode, its raw estimate). Exact-mode bounds hold for the computed
// float32 kernel score: the dequantization error terms and the kernel slack
// are added on top of the widening-integer estimate.
func (s *Searcher) prescreenUB(o int, approx bool) float64 {
	ix := s.ix
	s.stats.PrescreenRows++
	code := ix.codes[o*ix.qdim : (o+1)*ix.qdim]
	switch ix.geom {
	case kge.SweepDot:
		delta := float64(ix.scale[o])
		est := delta * s.dq * float64(vecmath.DotI8(s.cq, code))
		if approx {
			return est
		}
		err := delta * ((s.dq/2)*float64(ix.codeL1[o]) + s.qL1/2) * quantInflate
		return est + err + s.slack
	case kge.SweepL1:
		di := s.dq * float64(vecmath.L1DistI8(s.cq, code))
		if approx {
			return -di
		}
		d := di - s.eqL1 - (s.dq/2)*float64(ix.qdim)*quantInflate
		if d < 0 {
			d = 0
		}
		return -d + s.slack
	default: // SweepL2Sq
		di := s.dq * math.Sqrt(float64(vecmath.L2SqDistI8(s.cq, code)))
		if approx {
			return -(di * di)
		}
		d := di - s.eqL2 - (s.dq/2)*math.Sqrt(float64(ix.qdim))*quantInflate
		if d < 0 {
			d = 0
		}
		return -(d * d) + s.slack
	}
}

// heapPush inserts v into the min-heap.
func (s *Searcher) heapPush(v float32) {
	s.heap = append(s.heap, v)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] <= s.heap[i] {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

// siftDown restores the heap after the root was replaced.
func (s *Searcher) siftDown() {
	n := len(s.heap)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.heap[l] < s.heap[smallest] {
			smallest = l
		}
		if r < n && s.heap[r] < s.heap[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}
