package prune

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestSaveFileConcurrentSavers is the regression test for the fixed-temp-name
// race: two concurrent SaveFile calls on the same path used to share
// path+".tmp", so one saver could rename the other's half-written file into
// place. With unique temp names the final sidecar must always be a complete,
// loadable index.
func TestSaveFileConcurrentSavers(t *testing.T) {
	sw, fp := testModel(t, "distmult", 0, 97)
	ixA, err := Build(sw, fp, Params{Cells: 5})
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := Build(sw, fp, Params{Cells: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.kge.ivf")

	const rounds = 20
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := ixA.SaveFile(path); err != nil {
				t.Errorf("saver A: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := ixB.SaveFile(path); err != nil {
				t.Errorf("saver B: %v", err)
			}
		}()
	}
	wg.Wait()

	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("sidecar after concurrent saves is unloadable: %v", err)
	}
	if !reflect.DeepEqual(got, ixA) && !reflect.DeepEqual(got, ixB) {
		t.Fatal("final sidecar is neither saver's complete index")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

// TestLoadOrBuildCellsMismatchKeepsSidecar is the regression test for sidecar
// thrash: when the on-disk sidecar is valid for the model but was built with
// a different cell count, LoadOrBuild must build the requested shape in
// memory WITHOUT overwriting the disk copy. Before the fix, two servers with
// different Cells settings sharing one checkpoint rebuilt and clobbered the
// sidecar on every start, and neither ever got a cache hit.
func TestLoadOrBuildCellsMismatchKeepsSidecar(t *testing.T) {
	sw, fp := testModel(t, "transe", 0, 101)
	path := filepath.Join(t.TempDir(), "model.kge.ivf")

	if _, _, err := LoadOrBuild(path, sw, fp, Params{Cells: 5}); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated second process asking for a different cell count.
	ix9, loaded, err := LoadOrBuild(path, sw, fp, Params{Cells: 9})
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("cells-mismatched sidecar reported as loaded")
	}
	if ix9.cells != 9 {
		t.Fatalf("in-memory index has %d cells, want the requested 9", ix9.cells)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(onDisk) {
		t.Fatal("cells mismatch overwrote a valid sidecar (thrash regression)")
	}

	// The original process still gets its cache hit.
	_, loaded, err = LoadOrBuild(path, sw, fp, Params{Cells: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("valid sidecar no longer loads after a cells-mismatched call")
	}
}

// TestLoadOrBuildInvalidSidecarIsReplaced pins the asymmetry: an invalid
// sidecar (corrupt, or stale fingerprint) IS overwritten by the rebuild, so
// the no-overwrite rule above never preserves garbage.
func TestLoadOrBuildInvalidSidecarIsReplaced(t *testing.T) {
	sw, fp := testModel(t, "distmult", 0, 103)
	path := filepath.Join(t.TempDir(), "model.kge.ivf")
	if err := os.WriteFile(path, []byte("torn write debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, loaded, err := LoadOrBuild(path, sw, fp, Params{Cells: 5}); err != nil || loaded {
		t.Fatalf("corrupt sidecar: loaded=%v err=%v", loaded, err)
	}
	// The rebuild must have replaced the debris with a loadable sidecar.
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("rebuild did not persist over corrupt sidecar: %v", err)
	}
}
