package eval

import (
	"sort"

	"repro/internal/kg"
)

// This file implements an evaluation protocol for fact discovery — the
// paper's §6 notes that none exists: the train/valid/test protocol of link
// prediction does not transfer because (a) discovery is not exhaustive and
// (b) a triple missing from the test set is not necessarily false.
//
// The protocol here is hidden-fact recovery: hide a known-true subset H of
// the graph before training, run discovery on the remainder, and score the
// discovered set D against H. Because candidates outside H are unknown
// rather than false, the report separates three quantities instead of
// forcing a precision number: recall of H, the known-true fraction of D,
// and the rank-ordered recovery curve (how early in the ranked output the
// hidden facts appear).

// DiscoveryReport scores a discovered fact set against hidden ground truth.
type DiscoveryReport struct {
	// Discovered is |D|, the number of facts evaluated.
	Discovered int
	// Hidden is |H|, the number of held-out true facts.
	Hidden int
	// Recovered is |D ∩ H|.
	Recovered int
	// Recall is |D ∩ H| / |H| (0 when H is empty).
	Recall float64
	// KnownTrueRate is |D ∩ H| / |D| — a lower bound on precision: the
	// remaining discoveries are unknown, not false.
	KnownTrueRate float64
	// RecallAt maps k to the recall achieved by the k best-ranked
	// discoveries (keys: 10, 50, 100, and |D|).
	RecallAt map[int]float64
}

// RankedFact pairs a candidate triple with its rank, ordered input for
// EvaluateDiscovery (best rank first; ties arbitrary).
type RankedFact struct {
	Triple kg.Triple
	Rank   int
}

// EvaluateDiscovery scores ranked discoveries against the hidden graph.
func EvaluateDiscovery(facts []RankedFact, hidden *kg.Graph) DiscoveryReport {
	rep := DiscoveryReport{
		Discovered: len(facts),
		Hidden:     hidden.Len(),
		RecallAt:   make(map[int]float64),
	}
	if rep.Hidden == 0 {
		return rep
	}
	ordered := make([]RankedFact, len(facts))
	copy(ordered, facts)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Rank < ordered[j].Rank })

	cutoffs := []int{10, 50, 100, len(ordered)}
	recoveredAt := make([]int, 0, len(ordered))
	recovered := 0
	for _, f := range ordered {
		if hidden.Contains(f.Triple) {
			recovered++
		}
		recoveredAt = append(recoveredAt, recovered)
	}
	rep.Recovered = recovered
	rep.Recall = float64(recovered) / float64(rep.Hidden)
	if rep.Discovered > 0 {
		rep.KnownTrueRate = float64(recovered) / float64(rep.Discovered)
	}
	for _, k := range cutoffs {
		if k <= 0 {
			continue
		}
		idx := k
		if idx > len(recoveredAt) {
			idx = len(recoveredAt)
		}
		if idx == 0 {
			rep.RecallAt[k] = 0
			continue
		}
		rep.RecallAt[k] = float64(recoveredAt[idx-1]) / float64(rep.Hidden)
	}
	return rep
}

// HideFacts splits g into (visible, hidden): a deterministic pseudo-random
// fraction of triples is withheld as the recovery target. Entities and
// relations referenced only by hidden triples are kept out of the hidden
// set (they would be untrainable), mirroring the no-unseen split rule.
func HideFacts(g *kg.Graph, fraction float64, seed int64) (visible, hidden *kg.Graph) {
	visible = kg.NewGraphWithDicts(g.Entities, g.Relations)
	hidden = kg.NewGraphWithDicts(g.Entities, g.Relations)
	if fraction <= 0 {
		for _, t := range g.Triples() {
			visible.Add(t)
		}
		return visible, hidden
	}
	if fraction > 0.9 {
		fraction = 0.9
	}
	// Deterministic selection via a cheap hash of (triple, seed) — avoids
	// pulling in math/rand state and stays stable across runs.
	threshold := uint64(fraction * float64(1<<32))
	degree := make(map[kg.EntityID]int)
	for _, t := range g.Triples() {
		degree[t.S]++
		degree[t.O]++
	}
	for _, t := range g.Triples() {
		h := tripleHash(t, seed)
		// Keep a triple visible if hiding it would orphan an entity.
		if h%(1<<32) < threshold && degree[t.S] > 1 && degree[t.O] > 1 {
			hidden.Add(t)
			degree[t.S]--
			degree[t.O]--
		} else {
			visible.Add(t)
		}
	}
	return visible, hidden
}

// tripleHash is a splitmix64-style mix of the triple's components and seed.
func tripleHash(t kg.Triple, seed int64) uint64 {
	x := uint64(seed)
	for _, v := range [3]uint64{uint64(uint32(t.S)), uint64(uint32(t.R)), uint64(uint32(t.O))} {
		x ^= v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}
