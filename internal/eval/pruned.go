package eval

import (
	"sort"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prune"
)

// PruneConfig selects the pruned ranking path for a relation block.
type PruneConfig struct {
	// Index is the prebuilt prune.Index over the model's entity table. It
	// must match the Ranker's model (same weights, geometry, and shape) —
	// callers pin it with kge.Fingerprint at build/load time.
	Index *prune.Index
	// Exact selects the exact mode: results are guaranteed identical to the
	// dense path (falling back per group when a bound is inconclusive).
	// Otherwise the approximate mode trades recall for speed: at most Probe
	// cells are visited and the int8 filter drops rows on its raw estimate.
	Exact bool
	// Probe caps the cells visited per query in approximate mode; ≤ 0 picks
	// ⌈cells/8⌉. Ignored in exact mode.
	Probe int
}

// PruneStats reports what the pruned path did for one relation block.
type PruneStats struct {
	// CellsPruned counts IVF cells discarded by their score bound (or the
	// probe budget) without visiting their members.
	CellsPruned int
	// PrescreenRows counts entity rows evaluated by the int8 filter.
	PrescreenRows int
	// ExactRows counts entity rows scored by the exact float kernels.
	ExactRows int
	// Fallbacks counts groups that fell back to the dense batched sweep —
	// because the top-M frontier would cover the whole entity set, the index
	// did not match, or (exact mode) a target score tied the frontier minimum
	// exactly, where the pruned equal-count would be a lower bound only.
	Fallbacks int
}

func (s *PruneStats) add(o prune.Stats) {
	s.CellsPruned += o.CellsPruned
	s.PrescreenRows += o.PrescreenRows
	s.ExactRows += o.ExactRows
}

// RankObjectsPruned ranks every group of a relation block like
// RankObjectsBatch, but replaces each group's dense O(|E|·d) sweep with a
// branch-and-bound top-M search over cfg.Index (M = topN + |filtered(s, r)|),
// exact-scoring only the shortlist the bounds could not discard.
//
// The contract against the dense path is rank-threshold equivalence at topN.
// With cfg.Exact, for every candidate either:
//
//   - its exact score beats the frontier minimum s_M: the returned rank and
//     score are identical to RankObjectsBatch's (the top-M multiset is exact
//     and filtered corrections subtract only frontier members), or
//   - its exact score falls below s_M: its true rank provably exceeds topN
//     (at least M frontier scores beat it and filtered corrections remove at
//     most |filtered| of them), and the sentinel rank topN+1 is returned, or
//   - its exact score ties s_M exactly: the tie count is inconclusive and the
//     whole group falls back to RankObjectsBatch.
//
// So a candidate is kept at threshold topN by this path exactly when the
// dense path keeps it, with an identical rank and score whenever it is kept —
// which is what makes -prune=exact output byte-identical. Scores are exact
// (bit-identical to the dense sweep) in both modes; approximate mode can only
// misjudge ranks, not scores.
func (r *Ranker) RankObjectsPruned(rel kg.RelationID, groups []Group, topN int, cfg PruneConfig) (ranks [][]int, scores [][]float32, st PruneStats) {
	// Named returns: the deferred TakeStats below must fold the searcher's
	// counters into the st the caller actually receives.
	ranks = make([][]int, len(groups))
	scores = make([][]float32, len(groups))
	if len(groups) == 0 {
		return ranks, scores, st
	}

	sw, _ := r.model.(kge.ObjectSweeper)
	var sr *prune.Searcher
	if sw != nil && cfg.Index != nil {
		if pooled, _ := r.prunePool.Get().(*prune.Searcher); pooled != nil && pooled.Index() == cfg.Index {
			sr = pooled
		} else if s, err := prune.NewSearcher(cfg.Index, sw, cfg.Index.Fingerprint()); err == nil {
			sr = s
		}
	}
	if sr == nil {
		// Defensive: a model without a sweeper geometry or a mismatched index
		// cannot be pruned; the dense path is always correct.
		ranks, scores = r.RankObjectsBatch(rel, groups)
		st.Fallbacks += len(groups)
		return ranks, scores, st
	}
	defer func() {
		st.add(sr.TakeStats())
		r.prunePool.Put(sr)
	}()

	for gi, g := range groups {
		var filtered []kg.EntityID
		if r.filter != nil {
			filtered = r.filter.ObjectsOf(g.S, rel)
		}
		m := topN + len(filtered)

		vals, ok := sr.TopM(g.S, rel, m, !cfg.Exact, cfg.Probe)
		if ok && cfg.Exact {
			// Inconclusive frontier: some target score ties s_M exactly.
			sM := vals[len(vals)-1]
			for _, o := range g.Objects {
				if sr.Score(o) == sM {
					ok = false
					break
				}
			}
		}
		if !ok || len(vals) == 0 {
			rs, sc := r.RankObjectsBatch(rel, groups[gi:gi+1])
			ranks[gi], scores[gi] = rs[0], sc[0]
			st.Fallbacks++
			continue
		}

		sM := vals[len(vals)-1]
		gr := make([]int, len(g.Objects))
		sc := make([]float32, len(g.Objects))
		for i, o := range g.Objects {
			t := sr.Score(o)
			sc[i] = t
			if t < sM {
				gr[i] = topN + 1
				continue
			}
			// vals is sorted descending: prefix > t, then the t-ties.
			greater := sort.Search(len(vals), func(j int) bool { return vals[j] <= t })
			geq := sort.Search(len(vals), func(j int) bool { return vals[j] < t })
			equal := geq - greater - 1 // minus the target itself
			for _, f := range filtered {
				if f == o {
					continue
				}
				switch fs := sr.Score(f); {
				case fs > t:
					greater--
				case fs == t:
					equal--
				}
			}
			gr[i] = 1 + greater + equal/2
		}
		ranks[gi], scores[gi] = gr, sc
	}
	return ranks, scores, st
}
