package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prune"
)

// prunedFixture builds one model of each family (plus L2 TransE), its
// fingerprint, and its prune index.
type prunedFixture struct {
	name  string
	model kge.Model
	index *prune.Index
}

func prunedFixtures(t *testing.T, nEnt, nRel, dim int) []prunedFixture {
	t.Helper()
	var out []prunedFixture
	build := func(name string, norm int, tag string) {
		model, err := kge.New(name, kge.Config{
			NumEntities: nEnt, NumRelations: nRel, Dim: dim, Seed: 3, Norm: norm,
		})
		if err != nil {
			t.Fatalf("new %s: %v", name, err)
		}
		rng := rand.New(rand.NewSource(7))
		for _, p := range model.Params().List() {
			for i := range p.M.Data {
				p.M.Data[i] += float32(rng.NormFloat64()) * 0.2
			}
		}
		sw, ok := model.(kge.ObjectSweeper)
		if !ok {
			t.Fatalf("%s does not implement ObjectSweeper", name)
		}
		ix, err := prune.Build(sw, kge.Fingerprint(model), prune.Params{Cells: 6})
		if err != nil {
			t.Fatalf("build index for %s: %v", name, err)
		}
		out = append(out, prunedFixture{tag, model, ix})
	}
	for _, name := range kge.ModelNames() {
		build(name, 0, name)
	}
	build("transe", 2, "transe_l2")
	return out
}

func testFilter(nEnt, nRel, triples int, seed int64) *kg.Graph {
	filter := kg.NewGraph()
	for i := 0; i < nEnt; i++ {
		filter.Entities.Intern(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < nRel; i++ {
		filter.Relations.Intern(fmt.Sprintf("r%d", i))
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < triples; i++ {
		filter.Add(kg.Triple{
			S: kg.EntityID(rng.Intn(nEnt)),
			R: kg.RelationID(rng.Intn(nRel)),
			O: kg.EntityID(rng.Intn(nEnt)),
		})
	}
	return filter
}

// checkThresholdEquivalence asserts the RankObjectsPruned exact-mode
// contract against the dense path: identical keep/discard decisions at topN,
// identical ranks for everything kept, and bit-identical scores throughout.
func checkThresholdEquivalence(t *testing.T, tag string, topN int,
	pruned, dense [][]int, prunedScores, denseScores [][]float32) {
	t.Helper()
	for gi := range dense {
		for i := range dense[gi] {
			dr, pr := dense[gi][i], pruned[gi][i]
			if dr <= topN || pr <= topN {
				if dr != pr {
					t.Fatalf("%s: group %d cand %d: pruned rank %d != dense %d (topN %d)",
						tag, gi, i, pr, dr, topN)
				}
			}
			if prunedScores[gi][i] != denseScores[gi][i] {
				t.Fatalf("%s: group %d cand %d: pruned score %x != dense %x",
					tag, gi, i, prunedScores[gi][i], denseScores[gi][i])
			}
		}
	}
}

// TestRankObjectsPrunedExactEquivalence is the eval-layer half of the
// exactness property: for all six model families under both protocols,
// exact-mode pruned ranking keeps exactly the candidates the dense path
// keeps, with identical ranks and scores for everything kept.
func TestRankObjectsPrunedExactEquivalence(t *testing.T) {
	const (
		nEnt = 60
		nRel = 4
		dim  = 8
		topN = 7
	)
	filter := testFilter(nEnt, nRel, 250, 11)
	allObjects := make([]kg.EntityID, nEnt)
	for o := range allObjects {
		allObjects[o] = kg.EntityID(o)
	}

	for _, fx := range prunedFixtures(t, nEnt, nRel, dim) {
		t.Run(fx.name, func(t *testing.T) {
			for _, tc := range []struct {
				protocol string
				filter   *kg.Graph
			}{
				{"raw", nil},
				{"filtered", filter},
			} {
				ranker := NewRanker(fx.model, tc.filter)
				for r := 0; r < nRel; r++ {
					groups := []Group{
						{S: 0, Objects: allObjects},
						{S: 1, Objects: []kg.EntityID{3, 7, 7, 0}},
						{S: 2, Objects: allObjects[:9]},
						{S: 0, Objects: []kg.EntityID{59}},
					}
					rel := kg.RelationID(r)
					dense, denseScores := ranker.RankObjectsBatch(rel, groups)
					pruned, prunedScores, st := ranker.RankObjectsPruned(rel, groups, topN,
						PruneConfig{Index: fx.index, Exact: true})
					tag := fmt.Sprintf("%s/%s/r=%d", fx.name, tc.protocol, r)
					if st.Fallbacks > len(groups) {
						t.Fatalf("%s: %d fallbacks for %d groups", tag, st.Fallbacks, len(groups))
					}
					// Any group that did not fall back built its frontier with
					// the exact kernels; zero here means the searcher stats
					// were dropped (e.g. the deferred TakeStats missing the
					// returned value).
					if st.Fallbacks < len(groups) && st.ExactRows == 0 {
						t.Fatalf("%s: pruned path ran (%d/%d groups) but reported zero exact rows",
							tag, len(groups)-st.Fallbacks, len(groups))
					}
					checkThresholdEquivalence(t, tag, topN, pruned, dense, prunedScores, denseScores)
				}
			}
		})
	}
}

// TestRankObjectsPrunedTieHeavy forces masses of exact score ties at the
// prune boundary: with only three distinct entity rows the frontier minimum
// is tied by many candidates, so groups must detect the inconclusive bound
// and fall back — and still agree with the dense path everywhere.
func TestRankObjectsPrunedTieHeavy(t *testing.T) {
	const (
		nEnt = 48
		nRel = 2
		dim  = 8
		topN = 5
	)
	model, err := kge.New("distmult", kge.Config{
		NumEntities: nEnt, NumRelations: nRel, Dim: dim, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := model.(kge.ObjectSweeper)
	ent := sw.SweepEntityTable()
	for o := 0; o < ent.Rows; o++ {
		copy(ent.Row(o), ent.Row(o%3))
	}
	ix, err := prune.Build(sw, kge.Fingerprint(model), prune.Params{Cells: 4})
	if err != nil {
		t.Fatal(err)
	}

	allObjects := make([]kg.EntityID, nEnt)
	for o := range allObjects {
		allObjects[o] = kg.EntityID(o)
	}
	filter := testFilter(nEnt, nRel, 120, 13)
	for _, f := range []*kg.Graph{nil, filter} {
		ranker := NewRanker(model, f)
		groups := []Group{{S: 0, Objects: allObjects}, {S: 1, Objects: allObjects[:6]}}
		dense, denseScores := ranker.RankObjectsBatch(0, groups)
		pruned, prunedScores, st := ranker.RankObjectsPruned(0, groups, topN,
			PruneConfig{Index: ix, Exact: true})
		if st.Fallbacks == 0 {
			t.Error("tie-heavy block produced no fallbacks — boundary ties were not detected")
		}
		checkThresholdEquivalence(t, "tie-heavy", topN, pruned, dense, prunedScores, denseScores)
	}
}

// TestRankObjectsPrunedFallbacks covers the paths that must degrade to the
// dense sweep: a frontier covering the whole entity set, and a model without
// a sweeper geometry.
func TestRankObjectsPrunedFallbacks(t *testing.T) {
	const nEnt = 40
	fx := prunedFixtures(t, nEnt, 2, 8)[0]
	ranker := NewRanker(fx.model, nil)
	groups := []Group{{S: 0, Objects: []kg.EntityID{1, 2, 3}}}

	// topN ≥ |E|: TopM refuses, the group falls back, results match dense.
	dense, _ := ranker.RankObjectsBatch(0, groups)
	pruned, _, st := ranker.RankObjectsPruned(0, groups, nEnt+10, PruneConfig{Index: fx.index, Exact: true})
	if st.Fallbacks != len(groups) {
		t.Errorf("want %d fallbacks, got %d", len(groups), st.Fallbacks)
	}
	for i := range dense[0] {
		if dense[0][i] != pruned[0][i] {
			t.Errorf("fallback rank %d != dense %d", pruned[0][i], dense[0][i])
		}
	}

	// A model with no sweeper geometry prunes nothing but still answers.
	stub := &stubModel{n: 8, k: 1, table: []float32{0.5, 0.9, 0.5, 0.1, 0.5, 0.9, 0.5, 0.5}}
	sr := NewRanker(stub, nil)
	objects := []kg.EntityID{0, 1, 2, 3, 4}
	want, _ := sr.RankObjectsBatch(0, []Group{{S: 0, Objects: objects}})
	got, _, st2 := sr.RankObjectsPruned(0, []Group{{S: 0, Objects: objects}}, 3,
		PruneConfig{Index: fx.index, Exact: true})
	if st2.Fallbacks != 1 {
		t.Errorf("stub model: want 1 fallback, got %d", st2.Fallbacks)
	}
	for i := range want[0] {
		if want[0][i] != got[0][i] {
			t.Errorf("stub fallback rank %d != dense %d", got[0][i], want[0][i])
		}
	}
}

// TestRankObjectsPrunedApprox sanity-checks the approximate mode: it runs,
// returns exact scores (approximation affects ranks only), and prunes more
// aggressively than exact mode under a tight probe budget.
func TestRankObjectsPrunedApprox(t *testing.T) {
	const (
		nEnt = 60
		topN = 5
	)
	fx := prunedFixtures(t, nEnt, 2, 8)[1] // distmult
	ranker := NewRanker(fx.model, nil)
	allObjects := make([]kg.EntityID, nEnt)
	for o := range allObjects {
		allObjects[o] = kg.EntityID(o)
	}
	groups := []Group{{S: 0, Objects: allObjects}}
	_, denseScores := ranker.RankObjectsBatch(0, groups)
	ranks, scores, _ := ranker.RankObjectsPruned(0, groups, topN,
		PruneConfig{Index: fx.index, Probe: 1})
	for i := range denseScores[0] {
		if scores[0][i] != denseScores[0][i] {
			t.Fatalf("approx score %x != dense %x", scores[0][i], denseScores[0][i])
		}
		if ranks[0][i] < 1 {
			t.Fatalf("approx rank %d < 1", ranks[0][i])
		}
	}
}

// TestBatchBufsShrink is the regression test for the pooled score matrix
// release policy: a skewed workload — one hub relation block far larger than
// everything after it — must not pin the hub-sized buffer forever.
func TestBatchBufsShrink(t *testing.T) {
	var b batchBufs

	// The hub block allocates past the release floor.
	hubRows := 3 * batchShrinkFloor / 1000
	b.matrix(hubRows, 1000)
	hubCap := cap(b.data)
	if hubCap < batchShrinkFloor {
		t.Fatalf("hub buffer %d below the release floor %d — test mis-sized", hubCap, batchShrinkFloor)
	}

	// Small blocks under-use it; within the streak window nothing changes.
	for i := 0; i < batchShrinkStreak-1; i++ {
		b.matrix(4, 100)
		if cap(b.data) != hubCap {
			t.Fatalf("buffer released after only %d under-used calls", i+1)
		}
	}
	// One occasional large block resets the streak.
	b.matrix(hubRows, 1000)
	for i := 0; i < batchShrinkStreak-1; i++ {
		b.matrix(4, 100)
	}
	if cap(b.data) != hubCap {
		t.Fatal("streak not reset by an interleaved large block")
	}
	// A full streak of small blocks releases the hub-sized backing.
	for i := 0; i < batchShrinkStreak; i++ {
		b.matrix(4, 100)
	}
	if cap(b.data) >= hubCap {
		t.Fatalf("buffer still %d floats after sustained small blocks (hub %d)", cap(b.data), hubCap)
	}

	// Small buffers below the floor are never churned.
	var small batchBufs
	small.matrix(64, 64)
	smallCap := cap(small.data)
	for i := 0; i < 4*batchShrinkStreak; i++ {
		small.matrix(1, 4)
	}
	if cap(small.data) != smallCap {
		t.Fatal("sub-floor buffer was released — pure churn")
	}
}

// TestBatchBufsShrinkEndToEnd drives the policy through RankObjectsBatch on
// a skewed synthetic graph: one hub subject with a huge candidate block,
// then a long tail of tiny blocks, single-threaded so the same pooled bufs
// are reused.
func TestBatchBufsShrinkEndToEnd(t *testing.T) {
	nEnt := 2 * batchShrinkFloor / 100 // hub block of 100 groups crosses the floor
	m := &stubModel{n: nEnt, k: 1, table: make([]float32, nEnt)}
	rng := rand.New(rand.NewSource(5))
	for i := range m.table {
		m.table[i] = rng.Float32()
	}
	r := NewRanker(m, nil)

	hub := make([]Group, 100)
	for i := range hub {
		hub[i] = Group{S: kg.EntityID(i % nEnt), Objects: []kg.EntityID{0, 1, 2}}
	}
	r.RankObjectsBatch(0, hub)
	bufs := r.batchPool.Get().(*batchBufs)
	hubCap := cap(bufs.data)
	r.batchPool.Put(bufs)
	if hubCap < batchShrinkFloor {
		t.Fatalf("hub block capacity %d below floor — test mis-sized", hubCap)
	}

	tail := []Group{{S: 1, Objects: []kg.EntityID{0, 1}}}
	for i := 0; i < 4*batchShrinkStreak; i++ {
		r.RankObjectsBatch(0, tail)
	}
	bufs = r.batchPool.Get().(*batchBufs)
	defer r.batchPool.Put(bufs)
	if cap(bufs.data) >= hubCap {
		t.Fatalf("pooled buffer still %d floats after the tail (hub %d)", cap(bufs.data), hubCap)
	}
}
