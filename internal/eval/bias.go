package eval

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/kg"
	"repro/internal/kge"
)

// This file implements the popularity-bias diagnostic the paper discusses
// in §4.2.2: "popularity bias refers to a phenomenon where the score of
// triples containing popular entities and relations is amplified way more
// than necessary … it indicates that the model fails to capture the
// real-world semantics within the KG." The paper hypothesizes popularity
// bias to explain ENTITY FREQUENCY's outsized MRR with ConvE.
//
// The diagnostic: for a sample of (subject, relation) contexts drawn from
// the graph, score every entity as the object and rank-correlate those
// scores with the entities' global popularity (degree). A strongly positive
// mean correlation means the model prefers popular entities regardless of
// context — popularity bias.

// BiasReport summarizes the popularity-bias measurement.
type BiasReport struct {
	// MeanSpearman is the mean Spearman rank correlation between object
	// scores and object popularity over the sampled contexts, in [-1, 1].
	MeanSpearman float64
	// Contexts is the number of (s, r) contexts sampled.
	Contexts int
}

// PopularityBias measures the model's popularity bias on graph g using
// `contexts` sampled (subject, relation) pairs. Determinism follows from
// seed.
func PopularityBias(m kge.Model, g *kg.Graph, contexts int, seed int64) BiasReport {
	if contexts <= 0 {
		contexts = 50
	}
	triples := g.Triples()
	if len(triples) == 0 {
		return BiasReport{}
	}
	rng := rand.New(rand.NewSource(seed))

	popularity := make([]float64, g.NumEntities())
	for e := range popularity {
		popularity[e] = float64(g.Degree(kg.EntityID(e)))
	}
	popRanks := rankVector(popularity)

	scores := make([]float32, m.NumEntities())
	var sum float64
	n := 0
	for i := 0; i < contexts; i++ {
		t := triples[rng.Intn(len(triples))]
		m.ScoreAllObjects(t.S, t.R, scores)
		s64 := make([]float64, g.NumEntities())
		for e := range s64 {
			s64[e] = float64(scores[e])
		}
		rho := pearson(rankVector(s64), popRanks)
		if !math.IsNaN(rho) {
			sum += rho
			n++
		}
	}
	if n == 0 {
		return BiasReport{}
	}
	return BiasReport{MeanSpearman: sum / float64(n), Contexts: n}
}

// rankVector converts values to average ranks (ties share the mean rank),
// the standard preprocessing for Spearman correlation.
func rankVector(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
