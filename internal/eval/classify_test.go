package eval

import (
	"testing"

	"repro/internal/kg"
)

func TestBestThreshold(t *testing.T) {
	// Separable: negatives at 0, positives at 1 — any threshold in (0, 1).
	xs := []scoredExample{{0, false}, {0, false}, {1, true}, {1, true}}
	th := bestThreshold(xs)
	if th <= 0 || th >= 1 {
		t.Errorf("threshold %g outside separating interval (0,1)", th)
	}
	// Empty input.
	if got := bestThreshold(nil); got != 0 {
		t.Errorf("empty threshold = %g, want 0", got)
	}
	// Inseparable with majority negatives: threshold above everything
	// (classify all as false) is optimal.
	xs2 := []scoredExample{{0.5, false}, {0.5, false}, {0.5, false}, {0.5, true}}
	th2 := bestThreshold(xs2)
	if th2 <= 0.5 {
		t.Errorf("majority-negative threshold %g should exceed 0.5", th2)
	}
}

func TestTrainClassifierOnSeparableModel(t *testing.T) {
	g := calibrationGraph(t)
	m := &separableModel{n: g.NumEntities(), k: 1, g: g}
	c, err := TrainClassifier(m, g, g, 1)
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	// Every true triple classifies as +1, every corruption as −1.
	for _, tr := range g.Triples() {
		if c.Classify(tr) != 1 {
			t.Fatalf("true triple %v classified as false", tr)
		}
	}
	fake := kg.Triple{S: 0, R: 0, O: 0}
	if g.Contains(fake) {
		t.Skip("fixture collision")
	}
	if c.Classify(fake) != -1 {
		t.Error("false triple classified as true")
	}
	res := EvaluateClassifier(c, g, g, 2)
	if res.Accuracy < 0.99 {
		t.Errorf("separable accuracy = %.3f, want ≈ 1", res.Accuracy)
	}
	if res.Precision < 0.99 || res.Recall < 0.99 {
		t.Errorf("precision/recall = %.3f/%.3f, want ≈ 1", res.Precision, res.Recall)
	}
}

func TestClassifierGlobalFallback(t *testing.T) {
	g := calibrationGraph(t)
	m := &separableModel{n: g.NumEntities(), k: 2, g: g}
	c, err := TrainClassifier(m, g, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Relation 1 was never calibrated: Threshold must fall back to global.
	if th := c.Threshold(kg.RelationID(1)); th != c.global {
		t.Errorf("fallback threshold = %g, want global %g", th, c.global)
	}
}

func TestTrainClassifierEmptyHeldout(t *testing.T) {
	g := calibrationGraph(t)
	m := &separableModel{n: g.NumEntities(), k: 1, g: g}
	if _, err := TrainClassifier(m, kg.NewGraph(), g, 1); err == nil {
		t.Fatal("expected error for empty held-out graph")
	}
}
