package eval

import (
	"testing"

	"repro/internal/kg"
)

// popularityModel scores objects purely by their global popularity — the
// maximally popularity-biased model.
type popularityModel struct {
	n   int
	pop []float32
}

func (m *popularityModel) Name() string              { return "popbias" }
func (m *popularityModel) Dim() int                  { return 1 }
func (m *popularityModel) NumEntities() int          { return m.n }
func (m *popularityModel) NumRelations() int         { return 1 }
func (m *popularityModel) Score(t kg.Triple) float32 { return m.pop[t.O] }

func (m *popularityModel) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	copy(out, m.pop)
	return out
}

func (m *popularityModel) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	for i := range out {
		out[i] = m.pop[o]
	}
	return out
}

// antiPopularityModel inverts the scores.
type antiPopularityModel struct{ popularityModel }

func (m *antiPopularityModel) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	for i := range out {
		out[i] = -m.pop[i]
	}
	return out
}

func biasGraph(t *testing.T) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	for i := 0; i < 12; i++ {
		g.Entities.Intern(string(rune('a' + i)))
	}
	g.Relations.Intern("r")
	// Entity 0 is the hub: high degree.
	for i := 1; i < 12; i++ {
		g.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: 0})
	}
	g.Add(kg.Triple{S: 1, R: 0, O: 2})
	g.Add(kg.Triple{S: 3, R: 0, O: 4})
	return g
}

func popVector(g *kg.Graph) []float32 {
	pop := make([]float32, g.NumEntities())
	for e := range pop {
		pop[e] = float32(g.Degree(kg.EntityID(e)))
	}
	return pop
}

func TestPopularityBiasDetectsBiasedModel(t *testing.T) {
	g := biasGraph(t)
	m := &popularityModel{n: g.NumEntities(), pop: popVector(g)}
	rep := PopularityBias(m, g, 20, 1)
	if rep.Contexts == 0 {
		t.Fatal("no contexts sampled")
	}
	if rep.MeanSpearman < 0.9 {
		t.Errorf("perfectly biased model scored %.3f, want ≈ 1", rep.MeanSpearman)
	}
}

func TestPopularityBiasDetectsAntiBias(t *testing.T) {
	g := biasGraph(t)
	m := &antiPopularityModel{popularityModel{n: g.NumEntities(), pop: popVector(g)}}
	rep := PopularityBias(m, g, 20, 1)
	if rep.MeanSpearman > -0.9 {
		t.Errorf("anti-biased model scored %.3f, want ≈ -1", rep.MeanSpearman)
	}
}

func TestPopularityBiasEmptyGraph(t *testing.T) {
	g := kg.NewGraph()
	m := &popularityModel{n: 1, pop: []float32{0}}
	rep := PopularityBias(m, g, 10, 1)
	if rep.Contexts != 0 {
		t.Errorf("empty graph produced %d contexts", rep.Contexts)
	}
}
