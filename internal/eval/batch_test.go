package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
)

// TestRankObjectsBatchMatchesGrouped asserts the relation-blocked path is
// exactly equivalent to per-group RankObjects (and hence, transitively, to
// per-candidate RankObject) across all six model types under both protocols,
// and that the returned scores are the candidates' sweep scores. Group sizes
// mix the ≤4 linear path and the counting path.
func TestRankObjectsBatchMatchesGrouped(t *testing.T) {
	const (
		nEnt = 40
		nRel = 4
		dim  = 12
	)
	filter := kg.NewGraph()
	for i := 0; i < nEnt; i++ {
		filter.Entities.Intern(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < nRel; i++ {
		filter.Relations.Intern(fmt.Sprintf("r%d", i))
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		filter.Add(kg.Triple{
			S: kg.EntityID(rng.Intn(nEnt)),
			R: kg.RelationID(rng.Intn(nRel)),
			O: kg.EntityID(rng.Intn(nEnt)),
		})
	}

	allObjects := make([]kg.EntityID, nEnt)
	for o := range allObjects {
		allObjects[o] = kg.EntityID(o)
	}

	for _, name := range kge.ModelNames() {
		t.Run(name, func(t *testing.T) {
			model, err := kge.New(name, kge.Config{
				NumEntities: nEnt, NumRelations: nRel, Dim: dim, Seed: 3,
			})
			if err != nil {
				t.Fatalf("new %s: %v", name, err)
			}
			for _, tc := range []struct {
				protocol string
				filter   *kg.Graph
			}{
				{"raw", nil},
				{"filtered", filter},
			} {
				ranker := NewRanker(model, tc.filter)
				for r := 0; r < nRel; r++ {
					// One block per relation: full-vocabulary groups (counting
					// path), small groups (linear path), and a duplicate
					// subject.
					groups := []Group{
						{S: 0, Objects: allObjects},
						{S: 1, Objects: []kg.EntityID{3, 7, 7, 0}},
						{S: 2, Objects: allObjects[:7]},
						{S: 0, Objects: []kg.EntityID{39}},
					}
					ranks, scores := ranker.RankObjectsBatch(kg.RelationID(r), groups)
					if len(ranks) != len(groups) || len(scores) != len(groups) {
						t.Fatalf("%s: got %d rank groups, %d score groups, want %d",
							tc.protocol, len(ranks), len(scores), len(groups))
					}
					for gi, g := range groups {
						want := ranker.RankObjects(g.S, kg.RelationID(r), g.Objects)
						sweep := model.ScoreAllObjects(g.S, kg.RelationID(r), make([]float32, nEnt))
						for i, o := range g.Objects {
							if ranks[gi][i] != want[i] {
								t.Fatalf("%s/%s: rank(s=%d, r=%d, o=%d) batch=%d grouped=%d",
									name, tc.protocol, g.S, r, o, ranks[gi][i], want[i])
							}
							if scores[gi][i] != sweep[o] {
								t.Fatalf("%s/%s: score(s=%d, r=%d, o=%d) batch=%g sweep=%g",
									name, tc.protocol, g.S, r, o, scores[gi][i], sweep[o])
							}
						}
					}
				}
			}
		})
	}
}

// TestRankObjectsBatchTies drives the counting pass through a tie-heavy
// score table, raw and filtered: tied targets share distinct-value buckets,
// which is where the suffix-sum bookkeeping is easiest to get wrong.
func TestRankObjectsBatchTies(t *testing.T) {
	m := &stubModel{n: 8, k: 1, table: []float32{0.5, 0.9, 0.5, 0.1, 0.5, 0.9, 0.5, 0.5}}
	filter := kg.NewGraph()
	for i := 0; i < 8; i++ {
		filter.Entities.Intern(string(rune('a' + i)))
	}
	filter.Relations.Intern("r")
	filter.Add(kg.Triple{S: 0, R: 0, O: 1})
	filter.Add(kg.Triple{S: 0, R: 0, O: 2})

	objects := []kg.EntityID{0, 1, 2, 3, 4, 5, 6, 7}
	for _, ranker := range []*Ranker{NewRanker(m, nil), NewRanker(m, filter)} {
		ranks, _ := ranker.RankObjectsBatch(0, []Group{{S: 0, Objects: objects}})
		want := ranker.RankObjects(0, 0, objects)
		for i, o := range objects {
			if ranks[0][i] != want[i] {
				t.Errorf("o=%d: batch rank %d != grouped %d", o, ranks[0][i], want[i])
			}
		}
	}

	// Hand-checked filtered tie (same case as the grouped test): target o=0
	// at 0.5 with one 0.9 and one 0.5 filter-skipped → rank 3. The group
	// carries 5 objects so the counting path, not the linear path, answers.
	ranks, _ := NewRanker(m, filter).RankObjectsBatch(0, []Group{
		{S: 0, Objects: []kg.EntityID{0, 3, 4, 6, 7}},
	})
	if ranks[0][0] != 3 {
		t.Errorf("hand-computed filtered tie rank = %d, want 3", ranks[0][0])
	}
}

// TestRankObjectsBatchFallback: stubModel does not implement
// kge.BatchScorer, so the block is scored by the generic per-subject
// fallback — ranks must still match the grouped path exactly.
func TestRankObjectsBatchFallback(t *testing.T) {
	m := &stubModel{n: 8, k: 1, table: []float32{0.5, 0.9, 0.5, 0.1, 0.5, 0.9, 0.5, 0.5}}
	if _, ok := kge.Model(m).(kge.BatchScorer); ok {
		t.Fatal("stubModel unexpectedly implements BatchScorer")
	}
	ranker := NewRanker(m, nil)
	objects := []kg.EntityID{0, 1, 2, 3, 4, 5, 6}
	ranks, scores := ranker.RankObjectsBatch(0, []Group{
		{S: 0, Objects: objects},
		{S: 3, Objects: objects},
	})
	for gi, s := range []kg.EntityID{0, 3} {
		want := ranker.RankObjects(s, 0, objects)
		for i, o := range objects {
			if ranks[gi][i] != want[i] {
				t.Errorf("s=%d o=%d: batch rank %d != grouped %d", s, o, ranks[gi][i], want[i])
			}
			if wantScore := m.Score(kg.Triple{S: s, R: 0, O: o}); scores[gi][i] != wantScore {
				t.Errorf("s=%d o=%d: batch score %g != Score %g", s, o, scores[gi][i], wantScore)
			}
		}
	}
}

// TestRankObjectsBatchDegenerate covers empty blocks, empty groups, and
// pooled-buffer reuse across calls of different block shapes.
func TestRankObjectsBatchDegenerate(t *testing.T) {
	m := &stubModel{n: 4, k: 1, table: []float32{0.1, 0.5, 0.9, 0.3}}
	r := NewRanker(m, nil)
	if ranks, scores := r.RankObjectsBatch(0, nil); len(ranks) != 0 || len(scores) != 0 {
		t.Errorf("empty block returned %v, %v", ranks, scores)
	}
	ranks, _ := r.RankObjectsBatch(0, []Group{{S: 0, Objects: nil}, {S: 1, Objects: []kg.EntityID{1}}})
	if len(ranks[0]) != 0 {
		t.Errorf("empty group returned %v", ranks[0])
	}
	if ranks[1][0] != 2 {
		t.Errorf("singleton group rank = %d, want 2", ranks[1][0])
	}
	// A second, larger call reuses (and grows) the pooled buffers.
	big := []Group{{S: 0, Objects: []kg.EntityID{0, 1, 2, 3, 0}}, {S: 2, Objects: []kg.EntityID{3, 2}}}
	ranks2, _ := r.RankObjectsBatch(0, big)
	for gi, g := range big {
		want := r.RankObjects(g.S, 0, g.Objects)
		for i := range g.Objects {
			if ranks2[gi][i] != want[i] {
				t.Errorf("reuse: group %d rank %d != %d", gi, ranks2[gi][i], want[i])
			}
		}
	}
}
