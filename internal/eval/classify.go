package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/kg"
	"repro/internal/kge"
)

// This file implements triple classification, the other standard KGE
// evaluation task the paper's §2.1 describes: "These models can be used to
// predict whether a triple is true or false … label it by {−1, 1}" by
// thresholding the score. Following Socher et al.'s protocol, a per-relation
// score threshold is chosen on a validation set (positives vs sampled
// corruptions) to maximize accuracy, then applied to the test set.

// Classifier labels triples true/false using per-relation thresholds, with
// a global fallback for relations unseen during calibration.
type Classifier struct {
	model     kge.Model
	threshold map[kg.RelationID]float32
	global    float32
}

// Classify returns the predicted label of t (+1 true, −1 false).
func (c *Classifier) Classify(t kg.Triple) int {
	th, ok := c.threshold[t.R]
	if !ok {
		th = c.global
	}
	if c.model.Score(t) > th {
		return 1
	}
	return -1
}

// Threshold returns the decision threshold used for relation r.
func (c *Classifier) Threshold(r kg.RelationID) float32 {
	if th, ok := c.threshold[r]; ok {
		return th
	}
	return c.global
}

// TrainClassifier calibrates per-relation thresholds on heldout (typically
// the validation split): for each positive a corruption absent from filter
// is sampled, and the threshold midpoint that maximizes accuracy over the
// relation's scored pairs is chosen.
func TrainClassifier(m kge.Model, heldout, filter *kg.Graph, seed int64) (*Classifier, error) {
	if heldout.Len() == 0 {
		return nil, fmt.Errorf("eval: empty held-out graph for classifier calibration")
	}
	rng := rand.New(rand.NewSource(seed))

	byRel := make(map[kg.RelationID][]scoredExample)
	var all []scoredExample
	for _, t := range heldout.Triples() {
		pos := scoredExample{score: m.Score(t), label: true}
		neg := scoredExample{score: m.Score(corruptUnseen(t, m.NumEntities(), filter, rng)), label: false}
		byRel[t.R] = append(byRel[t.R], pos, neg)
		all = append(all, pos, neg)
	}

	c := &Classifier{model: m, threshold: make(map[kg.RelationID]float32)}
	c.global = bestThreshold(all)
	for r, xs := range byRel {
		c.threshold[r] = bestThreshold(xs)
	}
	return c, nil
}

// scoredExample is one calibration observation: a raw model score with its
// true/false label.
type scoredExample struct {
	score float32
	label bool
}

// bestThreshold returns the threshold maximizing accuracy for "score >
// threshold ⇒ true" over the labeled scores. Candidate thresholds are the
// midpoints between consecutive distinct scores plus sentinels.
func bestThreshold(xs []scoredExample) float32 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].score < xs[j].score })
	totalPos := 0
	for _, x := range xs {
		if x.label {
			totalPos++
		}
	}
	// Sweeping the threshold from below the minimum upward: predictions
	// flip from "all true" to progressively more "false". Track correct =
	// (positives above threshold) + (negatives at or below threshold).
	bestAcc := -1
	bestTh := xs[0].score - 1
	posAbove := totalPos
	negBelow := 0
	consider := func(th float32, acc int) {
		if acc > bestAcc {
			bestAcc = acc
			bestTh = th
		}
	}
	consider(bestTh, posAbove+negBelow)
	for i := 0; i < len(xs); i++ {
		if xs[i].label {
			posAbove--
		} else {
			negBelow++
		}
		// Threshold between this score and the next distinct one.
		var th float32
		if i+1 < len(xs) {
			if xs[i+1].score == xs[i].score {
				continue
			}
			th = (xs[i].score + xs[i+1].score) / 2
		} else {
			th = xs[i].score + 1
		}
		consider(th, posAbove+negBelow)
	}
	if math.IsNaN(float64(bestTh)) {
		return 0
	}
	return bestTh
}

// ClassificationResult aggregates triple-classification accuracy.
type ClassificationResult struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	N         int
}

// EvaluateClassifier labels every test triple (positive) and one sampled
// corruption each (negative) and reports accuracy, precision and recall of
// the positive class.
func EvaluateClassifier(c *Classifier, test, filter *kg.Graph, seed int64) ClassificationResult {
	rng := rand.New(rand.NewSource(seed))
	var tp, tn, fp, fn int
	for _, t := range test.Triples() {
		if c.Classify(t) == 1 {
			tp++
		} else {
			fn++
		}
		neg := corruptUnseen(t, c.model.NumEntities(), filter, rng)
		if c.Classify(neg) == 1 {
			fp++
		} else {
			tn++
		}
	}
	n := tp + tn + fp + fn
	res := ClassificationResult{N: n}
	if n > 0 {
		res.Accuracy = float64(tp+tn) / float64(n)
	}
	if tp+fp > 0 {
		res.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.Recall = float64(tp) / float64(tp+fn)
	}
	return res
}
