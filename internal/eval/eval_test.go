package eval

import (
	"math"
	"testing"

	"repro/internal/kg"
)

// stubModel scores triples by a fixed per-entity table: score(s, r, o) =
// table[o] + rowBias[s] (object ranking then depends only on the table).
type stubModel struct {
	n     int
	k     int
	table []float32
}

func (m *stubModel) Name() string      { return "stub" }
func (m *stubModel) Dim() int          { return 1 }
func (m *stubModel) NumEntities() int  { return m.n }
func (m *stubModel) NumRelations() int { return m.k }

func (m *stubModel) Score(t kg.Triple) float32 { return m.table[t.O] + 0.001*float32(t.S) }

func (m *stubModel) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	for o := range out {
		out[o] = m.Score(kg.Triple{S: s, R: r, O: kg.EntityID(o)})
	}
	return out
}

func (m *stubModel) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	for s := range out {
		out[s] = m.Score(kg.Triple{S: kg.EntityID(s), R: r, O: o})
	}
	return out
}

func TestRankObjectRawProtocol(t *testing.T) {
	// Entity scores: e0=0.1, e1=0.5, e2=0.9, e3=0.3.
	m := &stubModel{n: 4, k: 1, table: []float32{0.1, 0.5, 0.9, 0.3}}
	r := NewRanker(m, nil)
	// Target o=1 (0.5): only e2 scores higher → rank 2.
	if got := r.RankObject(kg.Triple{S: 0, R: 0, O: 1}); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	// Best entity ranks 1.
	if got := r.RankObject(kg.Triple{S: 0, R: 0, O: 2}); got != 1 {
		t.Errorf("rank of best = %d, want 1", got)
	}
	// Worst entity ranks 4.
	if got := r.RankObject(kg.Triple{S: 0, R: 0, O: 0}); got != 4 {
		t.Errorf("rank of worst = %d, want 4", got)
	}
}

func TestRankObjectFilteredProtocol(t *testing.T) {
	m := &stubModel{n: 4, k: 1, table: []float32{0.1, 0.5, 0.9, 0.3}}
	filter := kg.NewGraph()
	for i := 0; i < 4; i++ {
		filter.Entities.Intern(string(rune('a' + i)))
	}
	filter.Relations.Intern("r")
	// (0, r, 2) is a known true triple: it must be skipped when ranking
	// (0, r, 1), promoting it to rank 1.
	filter.Add(kg.Triple{S: 0, R: 0, O: 2})
	r := NewRanker(m, filter)
	if got := r.RankObject(kg.Triple{S: 0, R: 0, O: 1}); got != 1 {
		t.Errorf("filtered rank = %d, want 1", got)
	}
	// A different subject is unaffected by the filter entry.
	if got := r.RankObject(kg.Triple{S: 1, R: 0, O: 1}); got != 2 {
		t.Errorf("filtered rank for other subject = %d, want 2", got)
	}
}

func TestRankObjectTiesUseMeanPolicy(t *testing.T) {
	m := &stubModel{n: 5, k: 1, table: []float32{0.5, 0.5, 0.5, 0.5, 0.5}}
	r := NewRanker(m, nil)
	// All five entities tie: greater=0, equal=4 → rank = 1 + 0 + 2 = 3.
	if got := r.RankObject(kg.Triple{S: 0, R: 0, O: 2}); got != 3 {
		t.Errorf("tie rank = %d, want 3 (mean policy)", got)
	}
}

func TestRankSubject(t *testing.T) {
	// Make subject ranking depend on s: score = table[o] + 0.001*s, so
	// higher s wins.
	m := &stubModel{n: 4, k: 1, table: []float32{0, 0, 0, 0}}
	r := NewRanker(m, nil)
	if got := r.RankSubject(kg.Triple{S: 3, R: 0, O: 0}); got != 1 {
		t.Errorf("subject rank of best = %d, want 1", got)
	}
	if got := r.RankSubject(kg.Triple{S: 0, R: 0, O: 0}); got != 4 {
		t.Errorf("subject rank of worst = %d, want 4", got)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	m := &stubModel{n: 10, k: 1, table: []float32{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0}}
	test := kg.NewGraph()
	for i := 0; i < 10; i++ {
		test.Entities.Intern(string(rune('a' + i)))
	}
	test.Relations.Intern("r")
	// Targets e0 (rank 1) and e1 (rank 2).
	test.Add(kg.Triple{S: 2, R: 0, O: 0})
	test.Add(kg.Triple{S: 3, R: 0, O: 1})
	res := Evaluate(NewRanker(m, nil), test, Options{})
	if res.N != 2 {
		t.Fatalf("N = %d, want 2", res.N)
	}
	wantMRR := (1.0 + 0.5) / 2
	if math.Abs(res.MRR-wantMRR) > 1e-12 {
		t.Errorf("MRR = %g, want %g", res.MRR, wantMRR)
	}
	if res.MeanRank != 1.5 {
		t.Errorf("MeanRank = %g, want 1.5", res.MeanRank)
	}
	if res.Hits[1] != 0.5 || res.Hits[3] != 1 || res.Hits[10] != 1 {
		t.Errorf("Hits = %v", res.Hits)
	}
}

func TestEvaluateBothSides(t *testing.T) {
	m := &stubModel{n: 5, k: 1, table: []float32{0.1, 0.2, 0.3, 0.4, 0.5}}
	test := kg.NewGraph()
	for i := 0; i < 5; i++ {
		test.Entities.Intern(string(rune('a' + i)))
	}
	test.Relations.Intern("r")
	test.Add(kg.Triple{S: 1, R: 0, O: 2})
	res := Evaluate(NewRanker(m, nil), test, Options{BothSides: true})
	if res.N != 2 {
		t.Errorf("BothSides N = %d, want 2 (object + subject rank)", res.N)
	}
}

func TestEvaluateMaxTriples(t *testing.T) {
	m := &stubModel{n: 5, k: 1, table: []float32{1, 2, 3, 4, 5}}
	test := kg.NewGraph()
	for i := 0; i < 5; i++ {
		test.Entities.Intern(string(rune('a' + i)))
	}
	test.Relations.Intern("r")
	for i := 0; i < 4; i++ {
		test.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: kg.EntityID((i + 1) % 5)})
	}
	res := Evaluate(NewRanker(m, nil), test, Options{MaxTriples: 2})
	if res.N != 2 {
		t.Errorf("MaxTriples N = %d, want 2", res.N)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := &stubModel{n: 3, k: 1, table: []float32{1, 2, 3}}
	test := kg.NewGraph()
	res := Evaluate(NewRanker(m, nil), test, Options{})
	if res.N != 0 || res.MRR != 0 {
		t.Errorf("empty evaluation: %+v", res)
	}
}

func TestAggregate(t *testing.T) {
	res := Aggregate([]int{1, 2, 4}, []int{1, 3})
	wantMRR := (1 + 0.5 + 0.25) / 3
	if math.Abs(res.MRR-wantMRR) > 1e-12 {
		t.Errorf("MRR = %g, want %g", res.MRR, wantMRR)
	}
	if res.Hits[1] != 1.0/3 {
		t.Errorf("Hits@1 = %g", res.Hits[1])
	}
	if res.Hits[3] != 2.0/3 {
		t.Errorf("Hits@3 = %g", res.Hits[3])
	}
}

func TestMRROfRanks(t *testing.T) {
	if got := MRROfRanks(nil); got != 0 {
		t.Errorf("MRR of empty = %g", got)
	}
	if got := MRROfRanks([]int{1}); got != 1 {
		t.Errorf("MRR of rank 1 = %g", got)
	}
	if got := MRROfRanks([]int{2, 2}); got != 0.5 {
		t.Errorf("MRR = %g, want 0.5", got)
	}
}

func TestTheoreticalMRRThresholdFromPaper(t *testing.T) {
	// §4.2.2: "top_n = 500 sets a theoretical MRR threshold of 0.002 in the
	// case where all discovered facts are exactly ranked 500."
	ranks := make([]int, 100)
	for i := range ranks {
		ranks[i] = 500
	}
	if got := MRROfRanks(ranks); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("MRR of all-rank-500 = %g, want 0.002", got)
	}
}
