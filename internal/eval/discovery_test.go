package eval

import (
	"math"
	"testing"

	"repro/internal/kg"
)

func hiddenGraph(t *testing.T, triples ...kg.Triple) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	for i := 0; i < 10; i++ {
		g.Entities.Intern(string(rune('a' + i)))
	}
	g.Relations.Intern("r")
	for _, tr := range triples {
		g.Add(tr)
	}
	return g
}

func TestEvaluateDiscoveryBasic(t *testing.T) {
	hidden := hiddenGraph(t,
		kg.Triple{S: 0, R: 0, O: 1},
		kg.Triple{S: 2, R: 0, O: 3},
		kg.Triple{S: 4, R: 0, O: 5},
		kg.Triple{S: 6, R: 0, O: 7},
	)
	facts := []RankedFact{
		{Triple: kg.Triple{S: 0, R: 0, O: 1}, Rank: 1},  // hit
		{Triple: kg.Triple{S: 9, R: 0, O: 8}, Rank: 2},  // unknown
		{Triple: kg.Triple{S: 2, R: 0, O: 3}, Rank: 5},  // hit
		{Triple: kg.Triple{S: 8, R: 0, O: 9}, Rank: 10}, // unknown
	}
	rep := EvaluateDiscovery(facts, hidden)
	if rep.Recovered != 2 {
		t.Errorf("Recovered = %d, want 2", rep.Recovered)
	}
	if rep.Recall != 0.5 {
		t.Errorf("Recall = %g, want 0.5", rep.Recall)
	}
	if rep.KnownTrueRate != 0.5 {
		t.Errorf("KnownTrueRate = %g, want 0.5", rep.KnownTrueRate)
	}
	// RecallAt |D| equals total recall.
	if got := rep.RecallAt[len(facts)]; got != rep.Recall {
		t.Errorf("RecallAt[|D|] = %g, want %g", got, rep.Recall)
	}
}

func TestEvaluateDiscoveryRecallCurveIsMonotone(t *testing.T) {
	hidden := hiddenGraph(t,
		kg.Triple{S: 0, R: 0, O: 1},
		kg.Triple{S: 2, R: 0, O: 3},
	)
	facts := []RankedFact{
		{Triple: kg.Triple{S: 5, R: 0, O: 6}, Rank: 1},
		{Triple: kg.Triple{S: 0, R: 0, O: 1}, Rank: 2},
		{Triple: kg.Triple{S: 2, R: 0, O: 3}, Rank: 3},
	}
	rep := EvaluateDiscovery(facts, hidden)
	if rep.RecallAt[10] < rep.RecallAt[len(facts)] {
		// With |D| = 3 < 10 the two cutoffs coincide.
		t.Errorf("recall curve not monotone: %v", rep.RecallAt)
	}
	if rep.Recall != 1 {
		t.Errorf("Recall = %g, want 1", rep.Recall)
	}
}

func TestEvaluateDiscoveryEmptyInputs(t *testing.T) {
	hidden := hiddenGraph(t)
	rep := EvaluateDiscovery(nil, hidden)
	if rep.Recall != 0 || rep.Recovered != 0 {
		t.Errorf("empty: %+v", rep)
	}
	hidden2 := hiddenGraph(t, kg.Triple{S: 0, R: 0, O: 1})
	rep2 := EvaluateDiscovery(nil, hidden2)
	if rep2.Recall != 0 || rep2.Hidden != 1 {
		t.Errorf("no facts: %+v", rep2)
	}
}

func TestHideFactsPartition(t *testing.T) {
	g := kg.NewGraph()
	for i := 0; i < 30; i++ {
		g.Entities.Intern(string(rune('A' + i)))
	}
	g.Relations.Intern("r")
	for i := 0; i < 29; i++ {
		g.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: kg.EntityID(i + 1)})
		g.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: kg.EntityID((i + 5) % 30)})
	}
	visible, hidden := HideFacts(g, 0.3, 7)
	if visible.Len()+hidden.Len() != g.Len() {
		t.Fatalf("partition loses triples: %d + %d != %d", visible.Len(), hidden.Len(), g.Len())
	}
	if hidden.Len() == 0 {
		t.Fatal("nothing hidden at fraction 0.3")
	}
	for _, tr := range hidden.Triples() {
		if visible.Contains(tr) {
			t.Fatalf("triple %v in both partitions", tr)
		}
		if !g.Contains(tr) {
			t.Fatalf("hidden triple %v not from g", tr)
		}
	}
	// No entity may be orphaned in the visible graph.
	for e := 0; e < g.NumEntities(); e++ {
		if g.Degree(kg.EntityID(e)) > 0 && visible.Degree(kg.EntityID(e)) == 0 {
			t.Errorf("entity %d orphaned by hiding", e)
		}
	}
}

func TestHideFactsDeterministic(t *testing.T) {
	g := kg.NewGraph()
	for i := 0; i < 20; i++ {
		g.Entities.Intern(string(rune('A' + i)))
	}
	g.Relations.Intern("r")
	for i := 0; i < 19; i++ {
		g.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: kg.EntityID(i + 1)})
		g.Add(kg.Triple{S: kg.EntityID((i * 3) % 20), R: 0, O: kg.EntityID((i*7 + 1) % 20)})
	}
	_, h1 := HideFacts(g, 0.25, 9)
	_, h2 := HideFacts(g, 0.25, 9)
	if h1.Len() != h2.Len() {
		t.Fatalf("non-deterministic hide: %d vs %d", h1.Len(), h2.Len())
	}
	for _, tr := range h1.Triples() {
		if !h2.Contains(tr) {
			t.Fatal("same seed hid different triples")
		}
	}
}

func TestHideFactsZeroFraction(t *testing.T) {
	g := kg.NewGraph()
	g.Entities.Intern("a")
	g.Entities.Intern("b")
	g.Relations.Intern("r")
	g.Add(kg.Triple{S: 0, R: 0, O: 1})
	visible, hidden := HideFacts(g, 0, 1)
	if hidden.Len() != 0 || visible.Len() != 1 {
		t.Errorf("zero fraction: visible=%d hidden=%d", visible.Len(), hidden.Len())
	}
}

func TestRankVector(t *testing.T) {
	ranks := rankVector([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
	// Ties share the mean rank.
	tied := rankVector([]float64{5, 5, 1})
	if tied[2] != 1 || tied[0] != 2.5 || tied[1] != 2.5 {
		t.Errorf("tied ranks = %v, want [2.5 2.5 1]", tied)
	}
}

func TestPearsonHelper(t *testing.T) {
	if got := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Errorf("pearson = %g, want 1", got)
	}
	if got := pearson([]float64{1, 2, 3}, []float64{5, 5, 5}); !math.IsNaN(got) {
		t.Errorf("constant series should give NaN, got %g", got)
	}
}
