package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
)

// TestRankObjectsMatchesRankObject asserts the grouped one-sweep ranking
// path is exactly equivalent to per-candidate RankObject across all six
// model types, under both the raw and the filtered protocol. Freshly
// initialized (untrained) models give arbitrary but deterministic scores,
// which is all rank equivalence needs.
func TestRankObjectsMatchesRankObject(t *testing.T) {
	const (
		nEnt = 40
		nRel = 4
		dim  = 12
	)
	// A filter graph dense enough that several corruptions of the probed
	// (s, r) pairs are filter-skipped.
	filter := kg.NewGraph()
	for i := 0; i < nEnt; i++ {
		filter.Entities.Intern(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < nRel; i++ {
		filter.Relations.Intern(fmt.Sprintf("r%d", i))
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		filter.Add(kg.Triple{
			S: kg.EntityID(rng.Intn(nEnt)),
			R: kg.RelationID(rng.Intn(nRel)),
			O: kg.EntityID(rng.Intn(nEnt)),
		})
	}

	for _, name := range kge.ModelNames() {
		t.Run(name, func(t *testing.T) {
			model, err := kge.New(name, kge.Config{
				NumEntities: nEnt, NumRelations: nRel, Dim: dim, Seed: 3,
			})
			if err != nil {
				t.Fatalf("new %s: %v", name, err)
			}
			for _, tc := range []struct {
				protocol string
				filter   *kg.Graph
			}{
				{"raw", nil},
				{"filtered", filter},
			} {
				ranker := NewRanker(model, tc.filter)
				for s := 0; s < 5; s++ {
					for r := 0; r < nRel; r++ {
						// Rank every entity as a candidate object so the
						// group covers filter-contained objects and the
						// extremes of the score range.
						objects := make([]kg.EntityID, nEnt)
						for o := range objects {
							objects[o] = kg.EntityID(o)
						}
						grouped := ranker.RankObjects(kg.EntityID(s), kg.RelationID(r), objects)
						for i, o := range objects {
							want := ranker.RankObject(kg.Triple{S: kg.EntityID(s), R: kg.RelationID(r), O: o})
							if grouped[i] != want {
								t.Fatalf("%s/%s: rank(s=%d, r=%d, o=%d) grouped=%d per-candidate=%d",
									name, tc.protocol, s, r, o, grouped[i], want)
							}
						}
					}
				}
			}
		})
	}
}

// TestRankObjectsTiesAndFilteredTies drives the mean tie policy and the
// filter corrections through a score table with heavy ties, where the
// sorted-sweep binary-search path is easiest to get wrong.
func TestRankObjectsTiesAndFilteredTies(t *testing.T) {
	// Scores by object: 0.5 appears five times, 0.9 twice, 0.1 once.
	m := &stubModel{n: 8, k: 1, table: []float32{0.5, 0.9, 0.5, 0.1, 0.5, 0.9, 0.5, 0.5}}
	filter := kg.NewGraph()
	for i := 0; i < 8; i++ {
		filter.Entities.Intern(string(rune('a' + i)))
	}
	filter.Relations.Intern("r")
	// Skip one of the 0.9s and one of the 0.5s for subject 0.
	filter.Add(kg.Triple{S: 0, R: 0, O: 1})
	filter.Add(kg.Triple{S: 0, R: 0, O: 2})

	objects := []kg.EntityID{0, 1, 2, 3, 4, 5, 6, 7}
	for _, ranker := range []*Ranker{NewRanker(m, nil), NewRanker(m, filter)} {
		grouped := ranker.RankObjects(0, 0, objects)
		for i, o := range objects {
			want := ranker.RankObject(kg.Triple{S: 0, R: 0, O: o})
			if grouped[i] != want {
				t.Errorf("o=%d: grouped rank %d != per-candidate %d", o, grouped[i], want)
			}
		}
	}

	// Spot-check the filtered mean-policy arithmetic by hand: for target
	// o=0 (score 0.5) with o=1 (0.9) and o=2 (0.5) filter-skipped,
	// greater = 1 (the remaining 0.9), equal = 3 → rank 1 + 1 + 1 = 3.
	if got := NewRanker(m, filter).RankObjects(0, 0, []kg.EntityID{0})[0]; got != 3 {
		t.Errorf("hand-computed filtered tie rank = %d, want 3", got)
	}
}

// TestRankObjectsEmptyAndSingle covers the degenerate group sizes the
// scheduler can produce.
func TestRankObjectsEmptyAndSingle(t *testing.T) {
	m := &stubModel{n: 4, k: 1, table: []float32{0.1, 0.5, 0.9, 0.3}}
	r := NewRanker(m, nil)
	if got := r.RankObjects(0, 0, nil); len(got) != 0 {
		t.Errorf("empty group returned %v", got)
	}
	if got := r.RankObjects(0, 0, []kg.EntityID{1}); got[0] != 2 {
		t.Errorf("singleton group rank = %d, want 2", got[0])
	}
}
