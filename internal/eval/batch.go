package eval

import (
	"slices"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/vecmath"
)

// Group is one (subject, relation) candidate group inside a relation block:
// the relation is shared by the whole block, so only the subject and its
// candidate objects are carried per group.
type Group struct {
	S       kg.EntityID
	Objects []kg.EntityID
}

// batchBufs is the pooled working set of one RankObjectsBatch call. data
// backs the k×|E| score matrix; the small scratch slices back the
// counting-rank pass and are sized by the largest group.
//
// data is grown on demand and released again when it stays oversized: one
// skewed relation block (a single subject hub with thousands of groups) would
// otherwise pin a block-sized buffer in the pool for the rest of the process,
// multiplied per concurrent worker. The policy is hysteretic so steady
// mixed-size workloads do not thrash: only after batchShrinkStreak
// consecutive calls that use less than 1/batchShrinkFactor of the capacity
// (and only above a floor worth reclaiming) is the backing array dropped and
// reallocated at the current need.
type batchBufs struct {
	data      []float32
	smallUses int // consecutive matrix() calls using < cap/batchShrinkFactor
	vals      []float32
	eq        []int
	between   []int
	greater   []int
}

const (
	// batchShrinkFactor is the under-use ratio that counts toward release:
	// a call needing less than cap/4 flags the buffer as oversized.
	batchShrinkFactor = 4
	// batchShrinkStreak is how many consecutive under-used calls trigger the
	// release — one oversized block per streak window is tolerated for free.
	batchShrinkStreak = 8
	// batchShrinkFloor is the capacity (in float32s, 256 KiB) below which the
	// buffer is never released: reclaiming less is churn, not savings.
	batchShrinkFloor = 1 << 16
)

func (b *batchBufs) matrix(rows, cols int) *vecmath.Matrix {
	need := rows * cols
	switch {
	case cap(b.data) < need:
		b.data = make([]float32, need)
		b.smallUses = 0
	case cap(b.data) > batchShrinkFloor && need < cap(b.data)/batchShrinkFactor:
		b.smallUses++
		if b.smallUses >= batchShrinkStreak {
			b.data = make([]float32, need)
			b.smallUses = 0
		}
	default:
		b.smallUses = 0
	}
	return &vecmath.Matrix{Rows: rows, Cols: cols, Data: b.data[:need]}
}

func (b *batchBufs) scratch(k int) {
	if cap(b.vals) < k {
		b.vals = make([]float32, k)
		b.eq = make([]int, k)
		b.greater = make([]int, k)
		b.between = make([]int, k+1)
	}
}

// RankObjectsBatch ranks every group of a relation block from one shared
// score matrix: the block's subjects are scored by a single
// kge.ScoreAllObjectsBatch call (a tiled matrix–matrix sweep for models
// implementing kge.BatchScorer), then each group's ranks are read off its
// row. It is exactly equivalent to calling RankObjects per group — same mean
// tie policy, same filtered-protocol corrections — and, because the batched
// sweep is bit-identical to ScoreAllObjects, it returns identical ranks.
//
// Alongside the ranks it returns each candidate's sweep score (parallel to
// ranks), so callers that need the kept facts' scores (the calibrator path
// in internal/core) can reuse the sweep instead of re-scoring per fact.
//
// Per row, ranks are answered by a target-side counting pass instead of the
// full-sweep sort RankObjects uses: the group's k target scores are sorted
// and deduplicated into u ≤ k distinct values, one pass over the |E| sweep
// classifies every score into "equal to vals[i]" or "strictly between
// vals[i-1] and vals[i]" via a u-way binary search, and suffix sums turn the
// class counts into strictly-greater counts per distinct value. That is
// O(|E|·log u) per row against O(|E|·log|E|) for the sort, and it is what
// makes the batched path cheaper even when the score sweep itself is
// compute-bound. Both paths count the same integers, so ranks are identical.
func (r *Ranker) RankObjectsBatch(rel kg.RelationID, groups []Group) ([][]int, [][]float32) {
	ranks := make([][]int, len(groups))
	scores := make([][]float32, len(groups))
	if len(groups) == 0 {
		return ranks, scores
	}
	n := r.model.NumEntities()

	bufs, _ := r.batchPool.Get().(*batchBufs)
	if bufs == nil {
		bufs = &batchBufs{}
	}
	defer r.batchPool.Put(bufs)

	ss := make([]kg.EntityID, len(groups))
	maxK := 0
	for gi, g := range groups {
		ss[gi] = g.S
		if len(g.Objects) > maxK {
			maxK = len(g.Objects)
		}
	}
	mat := bufs.matrix(len(groups), n)
	kge.ScoreAllObjectsBatch(r.model, ss, rel, mat)
	bufs.scratch(maxK)

	for gi, g := range groups {
		row := mat.Row(gi)
		var filtered []kg.EntityID
		if r.filter != nil {
			filtered = r.filter.ObjectsOf(g.S, rel)
		}
		ranks[gi] = r.rankRow(row, g.Objects, filtered, bufs)
		sc := make([]float32, len(g.Objects))
		for i, o := range g.Objects {
			sc[i] = row[o]
		}
		scores[gi] = sc
	}
	return ranks, scores
}

// rankRow ranks one group's objects against a completed score sweep. The
// small-group linear path is the same one RankObjects takes; larger groups
// go through the counting pass.
func (r *Ranker) rankRow(scores []float32, objects, filtered []kg.EntityID, bufs *batchBufs) []int {
	ranks := make([]int, len(objects))
	if len(objects) == 0 {
		return ranks
	}
	if len(objects) <= 4 {
		for i, o := range objects {
			target := scores[o]
			greater, equal := 0, 0
			for _, sc := range scores {
				switch {
				case sc > target:
					greater++
				case sc == target:
					equal++
				}
			}
			equal-- // the target scored equal to itself
			for _, f := range filtered {
				if f == o {
					continue
				}
				switch fs := scores[f]; {
				case fs > target:
					greater--
				case fs == target:
					equal--
				}
			}
			ranks[i] = 1 + greater + equal/2
		}
		return ranks
	}

	// Distinct target values, ascending.
	vals := bufs.vals[:0]
	for _, o := range objects {
		vals = append(vals, scores[o])
	}
	slices.Sort(vals)
	vals = slices.Compact(vals)
	u := len(vals)

	// Classify every sweep score against the distinct targets: eq[i] counts
	// scores equal to vals[i]; between[i] counts scores strictly between
	// vals[i-1] and vals[i] (between[u]: above vals[u-1]).
	eq := bufs.eq[:u]
	between := bufs.between[:u+1]
	for i := range eq {
		eq[i] = 0
	}
	for i := range between {
		between[i] = 0
	}
	for _, sc := range scores {
		// Lower bound: first i with vals[i] >= sc, comparing with < only so
		// the classification agrees bit-for-bit with the == / > tests below.
		lo, hi := 0, u
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if vals[mid] < sc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < u && vals[lo] == sc {
			eq[lo]++
		} else {
			between[lo]++
		}
	}

	// greater[j] = |{scores strictly above vals[j]}|, by suffix sum.
	greater := bufs.greater[:u]
	acc := between[u]
	for j := u - 1; j >= 0; j-- {
		greater[j] = acc
		acc += eq[j] + between[j]
	}

	for i, o := range objects {
		target := scores[o]
		// The target's index among the distinct values, by the same lower
		// bound (it is always present).
		lo, hi := 0, u
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if vals[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		g := greater[lo]
		equal := eq[lo] - 1 // minus the target itself
		for _, f := range filtered {
			if f == o {
				continue
			}
			switch fs := scores[f]; {
			case fs > target:
				g--
			case fs == target:
				equal--
			}
		}
		ranks[i] = 1 + g + equal/2
	}
	return ranks
}
