package eval

import (
	"math"
	"testing"

	"repro/internal/kg"
)

// separableModel gives positives (triples of the graph) high scores and
// everything else low scores — perfectly separable calibration data.
type separableModel struct {
	n, k int
	g    *kg.Graph
}

func (m *separableModel) Name() string      { return "separable" }
func (m *separableModel) Dim() int          { return 1 }
func (m *separableModel) NumEntities() int  { return m.n }
func (m *separableModel) NumRelations() int { return m.k }

func (m *separableModel) Score(t kg.Triple) float32 {
	if m.g.Contains(t) {
		return 3
	}
	return -3
}

func (m *separableModel) ScoreAllObjects(s kg.EntityID, r kg.RelationID, out []float32) []float32 {
	for o := range out {
		out[o] = m.Score(kg.Triple{S: s, R: r, O: kg.EntityID(o)})
	}
	return out
}

func (m *separableModel) ScoreAllSubjects(r kg.RelationID, o kg.EntityID, out []float32) []float32 {
	for s := range out {
		out[s] = m.Score(kg.Triple{S: kg.EntityID(s), R: r, O: o})
	}
	return out
}

func calibrationGraph(t *testing.T) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	for i := 0; i < 30; i++ {
		g.Entities.Intern(string(rune('a' + i)))
	}
	g.Relations.Intern("r")
	for i := 0; i < 29; i++ {
		g.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: kg.EntityID(i + 1)})
		g.Add(kg.Triple{S: kg.EntityID(i), R: 0, O: kg.EntityID((i * 7) % 30)})
	}
	return g
}

func TestFitPlattSeparatesClasses(t *testing.T) {
	g := calibrationGraph(t)
	m := &separableModel{n: g.NumEntities(), k: 1, g: g}
	cal, err := FitPlatt(m, g, g, CalibrationOptions{Seed: 1})
	if err != nil {
		t.Fatalf("FitPlatt: %v", err)
	}
	pPos := cal.Prob(3)
	pNeg := cal.Prob(-3)
	if pPos <= 0.8 {
		t.Errorf("positive-score probability = %.3f, want > 0.8", pPos)
	}
	if pNeg >= 0.2 {
		t.Errorf("negative-score probability = %.3f, want < 0.2", pNeg)
	}
	if pPos <= pNeg {
		t.Error("calibrator not monotone in score")
	}
}

func TestPlattProbMonotone(t *testing.T) {
	cal := &PlattCalibrator{A: 2, C: -1}
	prev := -1.0
	for s := float32(-5); s <= 5; s += 0.5 {
		p := cal.Prob(s)
		if p <= prev {
			t.Fatalf("Prob not strictly increasing at %g", s)
		}
		if p < 0 || p > 1 {
			t.Fatalf("Prob(%g) = %g outside [0,1]", s, p)
		}
		prev = p
	}
}

func TestPlattNegativeSlope(t *testing.T) {
	// A model whose scores are inverted yields a negative A — the
	// calibrator must still produce valid monotone-decreasing probabilities.
	cal := &PlattCalibrator{A: -1, C: 0}
	if cal.Prob(-2) <= cal.Prob(2) {
		t.Error("negative slope not respected")
	}
}

func TestFitPlattEmptyHeldout(t *testing.T) {
	g := calibrationGraph(t)
	m := &separableModel{n: g.NumEntities(), k: 1, g: g}
	if _, err := FitPlatt(m, kg.NewGraph(), g, CalibrationOptions{}); err == nil {
		t.Fatal("expected error for empty held-out graph")
	}
}

func TestFitPlattDeterministic(t *testing.T) {
	g := calibrationGraph(t)
	m := &separableModel{n: g.NumEntities(), k: 1, g: g}
	a, err := FitPlatt(m, g, g, CalibrationOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitPlatt(m, g, g, CalibrationOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.A-b.A) > 1e-12 || math.Abs(a.C-b.C) > 1e-12 {
		t.Errorf("same seed produced different calibrators: %+v vs %+v", a, b)
	}
}
