// Package eval implements the standard link-prediction evaluation protocol
// for knowledge graph embeddings (Bordes et al., 2013): each test triple is
// ranked against its corruptions — every triple obtained by substituting the
// object (and optionally the subject) with every other entity — and the
// ranks are aggregated into MRR, mean rank, and Hits@k. Both the raw and the
// filtered settings are supported; in the filtered setting corruptions that
// are themselves true triples (of train ∪ valid ∪ test) are skipped.
//
// The same per-triple ranking primitive is what the fact discovery algorithm
// (internal/core) uses to decide whether a candidate passes the top_n
// quality threshold.
package eval

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/kg"
	"repro/internal/kge"
)

// Ranker ranks triples against their corruptions for a fixed model and
// (optional) filter graph. A nil filter selects the raw protocol. Rankers
// are safe for concurrent use; per-call score buffers are pooled.
type Ranker struct {
	model  kge.Model
	filter *kg.Graph
	pool   sync.Pool
}

// NewRanker returns a Ranker over model. filter may be nil (raw protocol).
func NewRanker(model kge.Model, filter *kg.Graph) *Ranker {
	r := &Ranker{model: model, filter: filter}
	n := model.NumEntities()
	r.pool.New = func() any {
		buf := make([]float32, n)
		return &buf
	}
	return r
}

// Model returns the model being ranked against.
func (r *Ranker) Model() kge.Model { return r.model }

// RankObject returns the rank of t among its object-side corruptions
// (s, r, o') for all entities o'. Rank 1 is best. Ties are resolved by the
// "mean" policy: rank = 1 + |{o' : f(o') > f(o)}| + ⌊|{o' ≠ o : f(o') = f(o)}| / 2⌋,
// which avoids both optimistic and pessimistic bias. In the filtered
// setting, corruptions present in the filter graph are skipped.
func (r *Ranker) RankObject(t kg.Triple) int {
	bufp := r.pool.Get().(*[]float32)
	defer r.pool.Put(bufp)
	scores := r.model.ScoreAllObjects(t.S, t.R, *bufp)
	target := scores[t.O]
	greater, equal := 0, 0
	for o, sc := range scores {
		if kg.EntityID(o) == t.O {
			continue
		}
		if r.filter != nil && r.filter.Contains(kg.Triple{S: t.S, R: t.R, O: kg.EntityID(o)}) {
			continue
		}
		switch {
		case sc > target:
			greater++
		case sc == target:
			equal++
		}
	}
	return 1 + greater + equal/2
}

// RankSubject mirrors RankObject for subject-side corruptions (s', r, o).
func (r *Ranker) RankSubject(t kg.Triple) int {
	bufp := r.pool.Get().(*[]float32)
	defer r.pool.Put(bufp)
	scores := r.model.ScoreAllSubjects(t.R, t.O, *bufp)
	target := scores[t.S]
	greater, equal := 0, 0
	for s, sc := range scores {
		if kg.EntityID(s) == t.S {
			continue
		}
		if r.filter != nil && r.filter.Contains(kg.Triple{S: kg.EntityID(s), R: t.R, O: t.O}) {
			continue
		}
		switch {
		case sc > target:
			greater++
		case sc == target:
			equal++
		}
	}
	return 1 + greater + equal/2
}

// Options controls Evaluate.
type Options struct {
	// BothSides additionally ranks subject-side corruptions (the full
	// Bordes protocol); default ranks objects only, matching the paper's
	// §2.1 description and the discovery algorithm's usage.
	BothSides bool
	// HitsAt lists the k values for Hits@k; nil means {1, 3, 10}.
	HitsAt []int
	// MaxTriples, when > 0, evaluates only the first MaxTriples triples —
	// used for fast validation during training.
	MaxTriples int
	// Workers bounds parallelism; zero means GOMAXPROCS.
	Workers int
}

// Result aggregates ranks over an evaluation set.
type Result struct {
	// MRR is the mean reciprocal rank Σ 1/rankᵢ / |Q| (Equation 7).
	MRR float64
	// MeanRank is the arithmetic mean rank.
	MeanRank float64
	// Hits maps k to the fraction of ranks ≤ k.
	Hits map[int]float64
	// N is the number of ranks aggregated.
	N int
}

// Evaluate ranks every triple of test and aggregates the metrics.
func Evaluate(ranker *Ranker, test *kg.Graph, opts Options) Result {
	triples := test.Triples()
	if opts.MaxTriples > 0 && opts.MaxTriples < len(triples) {
		triples = triples[:opts.MaxTriples]
	}
	hitsAt := opts.HitsAt
	if hitsAt == nil {
		hitsAt = []int{1, 3, 10}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(triples) {
		workers = len(triples)
	}
	if workers < 1 {
		workers = 1
	}

	ranksCh := make(chan int, 256)
	var wg sync.WaitGroup
	per := (len(triples) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(triples) {
			hi = len(triples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(chunk []kg.Triple) {
			defer wg.Done()
			for _, t := range chunk {
				ranksCh <- ranker.RankObject(t)
				if opts.BothSides {
					ranksCh <- ranker.RankSubject(t)
				}
			}
		}(triples[lo:hi])
	}
	go func() {
		wg.Wait()
		close(ranksCh)
	}()

	var ranks []int
	for rk := range ranksCh {
		ranks = append(ranks, rk)
	}
	return Aggregate(ranks, hitsAt)
}

// Aggregate computes the metrics over a set of ranks.
func Aggregate(ranks []int, hitsAt []int) Result {
	res := Result{Hits: make(map[int]float64), N: len(ranks)}
	if len(ranks) == 0 {
		return res
	}
	var sumRR, sumRank float64
	hitCounts := make(map[int]int)
	for _, rk := range ranks {
		sumRR += 1 / float64(rk)
		sumRank += float64(rk)
		for _, k := range hitsAt {
			if rk <= k {
				hitCounts[k]++
			}
		}
	}
	res.MRR = sumRR / float64(len(ranks))
	res.MeanRank = sumRank / float64(len(ranks))
	for _, k := range hitsAt {
		res.Hits[k] = float64(hitCounts[k]) / float64(len(ranks))
	}
	return res
}

// MRROfRanks is the bare Equation 7 over integer ranks (used to score
// discovered fact sets).
func MRROfRanks(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var sum float64
	for _, rk := range ranks {
		sum += 1 / float64(rk)
	}
	mrr := sum / float64(len(ranks))
	if math.IsNaN(mrr) || math.IsInf(mrr, 0) {
		return 0
	}
	return mrr
}
