// Package eval implements the standard link-prediction evaluation protocol
// for knowledge graph embeddings (Bordes et al., 2013): each test triple is
// ranked against its corruptions — every triple obtained by substituting the
// object (and optionally the subject) with every other entity — and the
// ranks are aggregated into MRR, mean rank, and Hits@k. Both the raw and the
// filtered settings are supported; in the filtered setting corruptions that
// are themselves true triples (of train ∪ valid ∪ test) are skipped.
//
// The same per-triple ranking primitive is what the fact discovery algorithm
// (internal/core) uses to decide whether a candidate passes the top_n
// quality threshold.
package eval

import (
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"repro/internal/kg"
	"repro/internal/kge"
)

// Ranker ranks triples against their corruptions for a fixed model and
// (optional) filter graph. A nil filter selects the raw protocol. Rankers
// are safe for concurrent use; per-call sweep buffers are pooled, so steady
// state holds one scores + one sorted buffer per concurrent caller.
type Ranker struct {
	model  kge.Model
	filter *kg.Graph
	pool   sync.Pool
	// batchPool holds *batchBufs for RankObjectsBatch (see batch.go); its
	// score matrices are sized per relation block, so it is separate from the
	// fixed-size sweep pool above.
	batchPool sync.Pool
	// prunePool holds *prune.Searcher working sets for RankObjectsPruned
	// (see pruned.go); searchers are pinned to one index, so entries built
	// for a stale index are dropped rather than reused.
	prunePool sync.Pool
}

// sweepBufs is the per-call working set: the raw score sweep and a sorted
// copy that grouped ranking answers rank queries against.
type sweepBufs struct {
	scores []float32
	sorted []float32
}

// NewRanker returns a Ranker over model. filter may be nil (raw protocol).
func NewRanker(model kge.Model, filter *kg.Graph) *Ranker {
	r := &Ranker{model: model, filter: filter}
	n := model.NumEntities()
	r.pool.New = func() any {
		return &sweepBufs{scores: make([]float32, n), sorted: make([]float32, n)}
	}
	if filter != nil {
		// Force the filter's lazy (s, r) adjacency now so concurrent
		// RankObjects calls only read it.
		filter.BuildIndexes()
	}
	return r
}

// Model returns the model being ranked against.
func (r *Ranker) Model() kge.Model { return r.model }

// RankObject returns the rank of t among its object-side corruptions
// (s, r, o') for all entities o'. Rank 1 is best. Ties are resolved by the
// "mean" policy: rank = 1 + |{o' : f(o') > f(o)}| + ⌊|{o' ≠ o : f(o') = f(o)}| / 2⌋,
// which avoids both optimistic and pessimistic bias. In the filtered
// setting, corruptions present in the filter graph are skipped.
func (r *Ranker) RankObject(t kg.Triple) int {
	bufs := r.pool.Get().(*sweepBufs)
	defer r.pool.Put(bufs)
	scores := r.model.ScoreAllObjects(t.S, t.R, bufs.scores)
	target := scores[t.O]
	greater, equal := 0, 0
	for o, sc := range scores {
		if kg.EntityID(o) == t.O {
			continue
		}
		if r.filter != nil && r.filter.Contains(kg.Triple{S: t.S, R: t.R, O: kg.EntityID(o)}) {
			continue
		}
		switch {
		case sc > target:
			greater++
		case sc == target:
			equal++
		}
	}
	return 1 + greater + equal/2
}

// RankSubject mirrors RankObject for subject-side corruptions (s', r, o).
func (r *Ranker) RankSubject(t kg.Triple) int {
	bufs := r.pool.Get().(*sweepBufs)
	defer r.pool.Put(bufs)
	scores := r.model.ScoreAllSubjects(t.R, t.O, bufs.scores)
	target := scores[t.S]
	greater, equal := 0, 0
	for s, sc := range scores {
		if kg.EntityID(s) == t.S {
			continue
		}
		if r.filter != nil && r.filter.Contains(kg.Triple{S: kg.EntityID(s), R: t.R, O: t.O}) {
			continue
		}
		switch {
		case sc > target:
			greater++
		case sc == target:
			equal++
		}
	}
	return 1 + greater + equal/2
}

// RankObjects ranks many object-side candidates that share a (s, r) pair
// from one ScoreAllObjects sweep, returning ranks parallel to objects. It is
// exactly equivalent to calling RankObject on each (s, r, oᵢ) — same mean
// tie policy, same filtered-protocol skips — but runs one model sweep per
// group instead of one per candidate.
//
// After sorting a copy of the sweep once, each object's counts of
// strictly-greater and tied corruptions come from two binary searches, and
// the filtered protocol is applied as a per-group correction using the
// filter graph's (s, r) adjacency instead of |E| Contains probes:
// O(|E|·d + |E|log|E| + k·(log|E| + |Fₛᵣ|)) per group, versus
// O(k·|E|·(d + 1)) for k per-candidate calls.
func (r *Ranker) RankObjects(s kg.EntityID, rel kg.RelationID, objects []kg.EntityID) []int {
	ranks := make([]int, len(objects))
	if len(objects) == 0 {
		return ranks
	}
	bufs := r.pool.Get().(*sweepBufs)
	defer r.pool.Put(bufs)
	scores := r.model.ScoreAllObjects(s, rel, bufs.scores)

	var filtered []kg.EntityID
	if r.filter != nil {
		filtered = r.filter.ObjectsOf(s, rel)
	}

	// For tiny groups a linear count per object is cheaper than sorting the
	// sweep (k·|E| < |E|·log|E|); both paths count identically.
	if len(objects) <= 4 {
		for i, o := range objects {
			target := scores[o]
			greater, equal := 0, 0
			for _, sc := range scores {
				switch {
				case sc > target:
					greater++
				case sc == target:
					equal++
				}
			}
			equal-- // the target scored equal to itself
			for _, f := range filtered {
				if f == o {
					continue
				}
				switch fs := scores[f]; {
				case fs > target:
					greater--
				case fs == target:
					equal--
				}
			}
			ranks[i] = 1 + greater + equal/2
		}
		return ranks
	}

	sorted := bufs.sorted
	copy(sorted, scores)
	slices.Sort(sorted)

	n := len(sorted)
	for i, o := range objects {
		target := scores[o]
		// First index with score ≥ target and first with score > target:
		// everything above hi is strictly greater, [lo, hi) are the ties
		// (including the target itself).
		lo := sort.Search(n, func(j int) bool { return sorted[j] >= target })
		hi := sort.Search(n, func(j int) bool { return sorted[j] > target })
		greater := n - hi
		equal := hi - lo - 1
		// Filtered protocol: discount corruptions that are known true
		// triples. The target is never discounted — it is excluded from its
		// own corruption set already.
		for _, f := range filtered {
			if f == o {
				continue
			}
			switch fs := scores[f]; {
			case fs > target:
				greater--
			case fs == target:
				equal--
			}
		}
		ranks[i] = 1 + greater + equal/2
	}
	return ranks
}

// Options controls Evaluate.
type Options struct {
	// BothSides additionally ranks subject-side corruptions (the full
	// Bordes protocol); default ranks objects only, matching the paper's
	// §2.1 description and the discovery algorithm's usage.
	BothSides bool
	// HitsAt lists the k values for Hits@k; nil means {1, 3, 10}.
	HitsAt []int
	// MaxTriples, when > 0, evaluates only the first MaxTriples triples —
	// used for fast validation during training.
	MaxTriples int
	// Workers bounds parallelism; zero means GOMAXPROCS.
	Workers int
}

// Result aggregates ranks over an evaluation set.
type Result struct {
	// MRR is the mean reciprocal rank Σ 1/rankᵢ / |Q| (Equation 7).
	MRR float64
	// MeanRank is the arithmetic mean rank.
	MeanRank float64
	// Hits maps k to the fraction of ranks ≤ k.
	Hits map[int]float64
	// N is the number of ranks aggregated.
	N int
}

// Evaluate ranks every triple of test and aggregates the metrics.
func Evaluate(ranker *Ranker, test *kg.Graph, opts Options) Result {
	triples := test.Triples()
	if opts.MaxTriples > 0 && opts.MaxTriples < len(triples) {
		triples = triples[:opts.MaxTriples]
	}
	hitsAt := opts.HitsAt
	if hitsAt == nil {
		hitsAt = []int{1, 3, 10}
	}
	// Object-side queries are grouped by (s, r): every triple of a group is
	// ranked from one shared score sweep. Subject-side ranks (BothSides)
	// remain per-triple. The rank slice is preallocated at its known final
	// size — object ranks land at the triple's index, subject ranks at
	// len(triples)+index — so no append/channel funnel is needed.
	type srKey struct {
		s kg.EntityID
		r kg.RelationID
	}
	type srGroup struct {
		s   kg.EntityID
		r   kg.RelationID
		idx []int
	}
	byKey := make(map[srKey]int, len(triples))
	var groups []*srGroup
	for i, t := range triples {
		k := srKey{t.S, t.R}
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, &srGroup{s: t.S, r: t.R})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}

	total := len(triples)
	if opts.BothSides {
		total *= 2
	}
	ranks := make([]int, total)

	groupCh := make(chan *srGroup)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var objects []kg.EntityID
			for g := range groupCh {
				objects = objects[:0]
				for _, i := range g.idx {
					objects = append(objects, triples[i].O)
				}
				rs := ranker.RankObjects(g.s, g.r, objects)
				for j, i := range g.idx {
					ranks[i] = rs[j]
				}
				if opts.BothSides {
					for _, i := range g.idx {
						ranks[len(triples)+i] = ranker.RankSubject(triples[i])
					}
				}
			}
		}()
	}
	for _, g := range groups {
		groupCh <- g
	}
	close(groupCh)
	wg.Wait()
	return Aggregate(ranks, hitsAt)
}

// Aggregate computes the metrics over a set of ranks.
func Aggregate(ranks []int, hitsAt []int) Result {
	res := Result{Hits: make(map[int]float64), N: len(ranks)}
	if len(ranks) == 0 {
		return res
	}
	var sumRR, sumRank float64
	hitCounts := make(map[int]int)
	for _, rk := range ranks {
		sumRR += 1 / float64(rk)
		sumRank += float64(rk)
		for _, k := range hitsAt {
			if rk <= k {
				hitCounts[k]++
			}
		}
	}
	res.MRR = sumRR / float64(len(ranks))
	res.MeanRank = sumRank / float64(len(ranks))
	for _, k := range hitsAt {
		res.Hits[k] = float64(hitCounts[k]) / float64(len(ranks))
	}
	return res
}

// MRROfRanks is the bare Equation 7 over integer ranks (used to score
// discovered fact sets).
func MRROfRanks(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var sum float64
	for _, rk := range ranks {
		sum += 1 / float64(rk)
	}
	mrr := sum / float64(len(ranks))
	if math.IsNaN(mrr) || math.IsInf(mrr, 0) {
		return 0
	}
	return mrr
}
