package eval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kg"
	"repro/internal/kge"
)

// This file turns raw KGE scores into probabilities. The paper's problem
// statement (Definition 2.1) is phrased in terms of a probability
// threshold — "find triples t with P(t) > b" — while the implementation it
// evaluates (AmpliGraph's discover_facts) uses a rank threshold top_n. A
// calibrator bridges the two: Platt scaling fits a sigmoid
// P(t) = σ(a·f(t) + c) on held-out positives versus sampled negatives, so
// threshold-based discovery (core.Options.MinProbability) becomes possible
// alongside the paper's rank-based filter.

// PlattCalibrator maps raw scores to probabilities via σ(a·score + c).
type PlattCalibrator struct {
	A float64
	C float64
}

// Prob returns the calibrated probability for a raw model score.
func (p *PlattCalibrator) Prob(score float32) float64 {
	return 1 / (1 + math.Exp(-(p.A*float64(score) + p.C)))
}

// CalibrationOptions controls FitPlatt.
type CalibrationOptions struct {
	// NegativesPerPositive is the number of corruptions sampled per
	// positive (default 1).
	NegativesPerPositive int
	// MaxPositives bounds the calibration set (default 2000).
	MaxPositives int
	// Iterations of gradient descent (default 200).
	Iterations int
	// LearningRate for the two parameters (default 0.1).
	LearningRate float64
	// Seed drives negative sampling.
	Seed int64
}

func (o *CalibrationOptions) setDefaults() {
	if o.NegativesPerPositive == 0 {
		o.NegativesPerPositive = 1
	}
	if o.MaxPositives == 0 {
		o.MaxPositives = 2000
	}
	if o.Iterations == 0 {
		o.Iterations = 200
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
}

// FitPlatt fits a Platt calibrator for model on a held-out graph (typically
// the validation split): positives are the graph's triples, negatives are
// uniform corruptions not present in filter (pass train ∪ valid ∪ test).
func FitPlatt(m kge.Model, heldout, filter *kg.Graph, opts CalibrationOptions) (*PlattCalibrator, error) {
	opts.setDefaults()
	triples := heldout.Triples()
	if len(triples) == 0 {
		return nil, fmt.Errorf("eval: empty held-out graph for calibration")
	}
	if len(triples) > opts.MaxPositives {
		triples = triples[:opts.MaxPositives]
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var scores []float64
	var labels []float64
	for _, t := range triples {
		scores = append(scores, float64(m.Score(t)))
		labels = append(labels, 1)
		for k := 0; k < opts.NegativesPerPositive; k++ {
			neg := corruptUnseen(t, m.NumEntities(), filter, rng)
			scores = append(scores, float64(m.Score(neg)))
			labels = append(labels, 0)
		}
	}

	// Standardize scores for a well-conditioned fit; fold the affine
	// transform back into (A, C) afterwards.
	mean, std := meanStd(scores)
	if std == 0 {
		std = 1
	}

	a, c := 1.0, 0.0
	n := float64(len(scores))
	for it := 0; it < opts.Iterations; it++ {
		var ga, gc float64
		for i, s := range scores {
			z := (s - mean) / std
			p := 1 / (1 + math.Exp(-(a*z + c)))
			d := p - labels[i]
			ga += d * z
			gc += d
		}
		a -= opts.LearningRate * ga / n
		c -= opts.LearningRate * gc / n
	}
	return &PlattCalibrator{A: a / std, C: c - a*mean/std}, nil
}

func corruptUnseen(t kg.Triple, numEntities int, filter *kg.Graph, rng *rand.Rand) kg.Triple {
	for attempt := 0; attempt < 64; attempt++ {
		c := t
		if rng.Intn(2) == 0 {
			c.S = kg.EntityID(rng.Intn(numEntities))
		} else {
			c.O = kg.EntityID(rng.Intn(numEntities))
		}
		if c == t {
			continue
		}
		if filter != nil && filter.Contains(c) {
			continue
		}
		return c
	}
	// Fall back to any distinct corruption.
	c := t
	c.O = kg.EntityID((int(t.O) + 1) % numEntities)
	return c
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
