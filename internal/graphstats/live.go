package graphstats

import (
	"sort"

	"repro/internal/kg"
)

// Live maintains the undirected projection of a mutating knowledge graph
// incrementally: sorted neighbour lists, per-edge triple multiplicities, and
// per-node triangle counts T(v), updated by local work around the touched
// edge instead of a full BuildUndirected + Triangles rebuild.
//
// Two triple-level facts make the bookkeeping subtle and are handled here so
// callers never see them: the projection drops self-loops, and it collapses
// parallel edges — (a, r1, b), (b, r2, a) and (a, r1, b) again all project to
// the single undirected edge {a, b}. Live therefore counts the *multiplicity*
// of each undirected edge (how many triples currently project onto it) and
// only mutates the structure — and triangle counts — on 0↔1 transitions.
type Live struct {
	adj  [][]kg.EntityID
	mult map[edgeKey]int32
	tri  []int64
}

// edgeKey is an undirected edge with a < b (self-loops never become keys).
type edgeKey struct{ a, b kg.EntityID }

func keyOf(a, b kg.EntityID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// EdgeDelta reports the structural effect of projecting one triple-level
// mutation. When Structural is false the undirected graph did not change
// (the triple was a self-loop, or a parallel edge remained). When it is true:
//
//   - Touched holds every node whose degree, T(v) or local clustering c(v)
//     may have changed: the two endpoints plus their common neighbours
//     (each completed or broken triangle's third corner).
//   - Square holds every node whose square clustering c₄(v) may have
//     changed: {a, b} ∪ N(a) ∪ N(b). c₄(v) depends only on v's neighbour
//     set, its neighbours' degrees, and common neighbours of neighbour
//     pairs; inserting or removing {a, b} leaves all three untouched for
//     any v at distance ≥ 2 from both endpoints, so this superset is sound.
//
// Both sets are computed with the edge in place (just after an insertion,
// just before a removal), so they cover the "before" and "after" worlds.
type EdgeDelta struct {
	Structural bool
	Touched    []kg.EntityID
	Square     []kg.EntityID
}

// NewLive builds the live projection of g's current triples.
func NewLive(g *kg.Graph) *Live {
	u := BuildUndirected(g)
	l := &Live{adj: u.adj, tri: u.Triangles(), mult: make(map[edgeKey]int32, g.Len())}
	for _, t := range g.Triples() {
		if t.S != t.O {
			l.mult[keyOf(t.S, t.O)]++
		}
	}
	return l
}

// Undirected returns a snapshot view over the live adjacency. The view
// aliases Live's internal state: it is valid until the next AddTriple or
// RemoveTriple call and must not be retained across mutations.
func (l *Live) Undirected() *Undirected { return &Undirected{adj: l.adj} }

// TriangleCounts returns the maintained T(v) slice. The caller must not
// modify it; it aliases internal state like Undirected.
func (l *Live) TriangleCounts() []int64 { return l.tri }

// grow extends the node arrays to cover entity IDs interned after NewLive.
func (l *Live) grow(v kg.EntityID) {
	for int(v) >= len(l.adj) {
		l.adj = append(l.adj, nil)
		l.tri = append(l.tri, 0)
	}
}

// AddTriple projects the insertion of triple (s, _, o) and returns the delta.
func (l *Live) AddTriple(s, o kg.EntityID) EdgeDelta {
	if s == o {
		return EdgeDelta{}
	}
	l.grow(s)
	l.grow(o)
	k := keyOf(s, o)
	l.mult[k]++
	if l.mult[k] > 1 {
		return EdgeDelta{}
	}
	a, b := k.a, k.b
	commons := l.commonNeighbors(a, b)
	for _, w := range commons {
		l.tri[a]++
		l.tri[b]++
		l.tri[w]++
	}
	l.adj[a] = insertNeighbor(l.adj[a], b)
	l.adj[b] = insertNeighbor(l.adj[b], a)
	return EdgeDelta{
		Structural: true,
		Touched:    append([]kg.EntityID{a, b}, commons...),
		Square:     l.squareSet(a, b),
	}
}

// RemoveTriple projects the removal of triple (s, _, o) and returns the
// delta. The caller must only remove triples it previously added.
func (l *Live) RemoveTriple(s, o kg.EntityID) EdgeDelta {
	if s == o {
		return EdgeDelta{}
	}
	k := keyOf(s, o)
	l.mult[k]--
	if l.mult[k] > 0 {
		return EdgeDelta{}
	}
	delete(l.mult, k)
	a, b := k.a, k.b
	square := l.squareSet(a, b)
	l.adj[a] = removeNeighbor(l.adj[a], b)
	l.adj[b] = removeNeighbor(l.adj[b], a)
	commons := l.commonNeighbors(a, b)
	for _, w := range commons {
		l.tri[a]--
		l.tri[b]--
		l.tri[w]--
	}
	return EdgeDelta{
		Structural: true,
		Touched:    append([]kg.EntityID{a, b}, commons...),
		Square:     square,
	}
}

// commonNeighbors merge-intersects the sorted neighbour lists of a and b.
// It is called with the edge {a, b} absent from the adjacency, so the result
// is exactly the set of third corners of triangles through that edge.
func (l *Live) commonNeighbors(a, b kg.EntityID) []kg.EntityID {
	la, lb := l.adj[a], l.adj[b]
	var out []kg.EntityID
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			out = append(out, la[i])
			i++
			j++
		}
	}
	return out
}

// squareSet returns {a, b} ∪ N(a) ∪ N(b), deduplicated.
func (l *Live) squareSet(a, b kg.EntityID) []kg.EntityID {
	out := make([]kg.EntityID, 0, 2+len(l.adj[a])+len(l.adj[b]))
	out = append(out, a, b)
	out = append(out, l.adj[a]...)
	out = append(out, l.adj[b]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, v := range out[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func insertNeighbor(s []kg.EntityID, e kg.EntityID) []kg.EntityID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

func removeNeighbor(s []kg.EntityID, e kg.EntityID) []kg.EntityID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	if i >= len(s) || s[i] != e {
		return s
	}
	return append(s[:i], s[i+1:]...)
}
