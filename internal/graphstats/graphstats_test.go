package graphstats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kg"
)

// buildGraph creates a kg.Graph from undirected edge pairs (one arbitrary
// relation, one direction per edge — the projection must undirect it).
func buildGraph(t *testing.T, n int, edges [][2]int) *kg.Graph {
	t.Helper()
	g := kg.NewGraph()
	for i := 0; i < n; i++ {
		g.Entities.Intern(string(rune('a' + i)))
	}
	g.Relations.Intern("r")
	for _, e := range edges {
		g.Add(kg.Triple{S: kg.EntityID(e[0]), R: 0, O: kg.EntityID(e[1])})
	}
	return g
}

func TestBuildUndirectedBasics(t *testing.T) {
	// a→b, b→a (parallel, must collapse), a→a (self-loop, dropped), b→c.
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 0}, {0, 0}, {1, 2}})
	u := BuildUndirected(g)
	if u.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", u.NumNodes())
	}
	if u.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (parallel collapsed, self-loop dropped)", u.NumEdges())
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(1, 0) {
		t.Error("edge {a,b} missing or asymmetric")
	}
	if u.HasEdge(0, 0) {
		t.Error("self-loop survived the projection")
	}
	if u.Degree(1) != 2 {
		t.Errorf("Degree(b) = %d, want 2", u.Degree(1))
	}
}

// triangleGraph: a 3-clique {0,1,2} plus a pendant node 3 attached to 0.
func triangleGraph(t *testing.T) *Undirected {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	return BuildUndirected(g)
}

func TestTrianglesKnownGraph(t *testing.T) {
	u := triangleGraph(t)
	tri := u.Triangles()
	want := []int64{1, 1, 1, 0}
	for v, w := range want {
		if tri[v] != w {
			t.Errorf("T(%d) = %d, want %d", v, tri[v], w)
		}
	}
}

func TestLocalClusteringKnownGraph(t *testing.T) {
	u := triangleGraph(t)
	c := u.LocalClustering(nil)
	// Node 0: deg 3, 1 triangle → 2·1/(3·2) = 1/3.
	// Nodes 1,2: deg 2, 1 triangle → 2·1/(2·1) = 1.
	// Node 3: deg 1 → 0 (convention).
	want := []float64{1.0 / 3, 1, 1, 0}
	for v, w := range want {
		if math.Abs(c[v]-w) > 1e-12 {
			t.Errorf("c(%d) = %g, want %g", v, c[v], w)
		}
	}
}

func TestClusteringStarGraphIsZero(t *testing.T) {
	// Star: hub 0 connected to 1..4. The paper's §4.2.2 example — popular
	// by degree, clustering coefficient 0.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	u := BuildUndirected(g)
	c := u.LocalClustering(nil)
	for v, cv := range c {
		if cv != 0 {
			t.Errorf("c(%d) = %g, want 0 in a star graph", v, cv)
		}
	}
}

func TestCompleteGraphClusteringIsOne(t *testing.T) {
	var edges [][2]int
	const n = 6
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	u := BuildUndirected(buildGraph(t, n, edges))
	tri := u.Triangles()
	// Each node of K6 is in C(5,2) = 10 triangles.
	for v, tv := range tri {
		if tv != 10 {
			t.Errorf("T(%d) = %d, want 10 in K6", v, tv)
		}
	}
	for v, cv := range u.LocalClustering(tri) {
		if math.Abs(cv-1) > 1e-12 {
			t.Errorf("c(%d) = %g, want 1 in K6", v, cv)
		}
	}
}

func TestSquareClusteringCycle4(t *testing.T) {
	// C4: every node is in exactly one square and no potential others.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	u := BuildUndirected(g)
	c4 := u.SquareClustering()
	for v, cv := range c4 {
		if math.Abs(cv-1) > 1e-12 {
			t.Errorf("c4(%d) = %g, want 1 on a 4-cycle", v, cv)
		}
	}
}

func TestSquareClusteringTriangleIsZero(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	u := BuildUndirected(g)
	for v, cv := range u.SquareClustering() {
		if cv != 0 {
			t.Errorf("c4(%d) = %g, want 0 on a triangle", v, cv)
		}
	}
}

func TestSquareClusteringCompleteBipartite(t *testing.T) {
	// K_{3,3}: for every node and neighbour pair, all potential squares are
	// realized (each pair shares exactly the two other opposite-side nodes
	// and has no further neighbours), so c4 = 1 — matching NetworkX.
	var edges [][2]int
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	u := BuildUndirected(buildGraph(t, 6, edges))
	for v, cv := range u.SquareClustering() {
		if math.Abs(cv-1) > 1e-12 {
			t.Errorf("c4(%d) = %g, want 1 in K33", v, cv)
		}
	}
}

// Property: optimized triangle counting agrees with the naive reference on
// random graphs.
func TestPropertyTrianglesMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := kg.NewGraph()
		for i := 0; i < n; i++ {
			g.Entities.Intern(string(rune('A' + i)))
		}
		g.Relations.Intern("r")
		for _, e := range edges {
			g.Add(kg.Triple{S: kg.EntityID(e[0]), R: 0, O: kg.EntityID(e[1])})
		}
		u := BuildUndirected(g)
		fast := u.Triangles()
		slow := u.TrianglesNaive()
		for v := range fast {
			if fast[v] != slow[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the sum of T(v) over all nodes is three times the number of
// triangles, hence divisible by 3.
func TestPropertyTriangleSumDivisibleBy3(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		g := kg.NewGraph()
		for i := 0; i < n; i++ {
			g.Entities.Intern(string(rune('A' + i)))
		}
		g.Relations.Intern("r")
		for i := 0; i < n*3; i++ {
			g.Add(kg.Triple{S: kg.EntityID(rng.Intn(n)), R: 0, O: kg.EntityID(rng.Intn(n))})
		}
		u := BuildUndirected(g)
		var sum int64
		for _, tv := range u.Triangles() {
			sum += tv
		}
		return sum%3 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: clustering coefficients lie in [0, 1].
func TestPropertyClusteringInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		g := kg.NewGraph()
		for i := 0; i < n; i++ {
			g.Entities.Intern(string(rune('A' + i)))
		}
		g.Relations.Intern("r")
		for i := 0; i < n*2; i++ {
			g.Add(kg.Triple{S: kg.EntityID(rng.Intn(n)), R: 0, O: kg.EntityID(rng.Intn(n))})
		}
		u := BuildUndirected(g)
		for _, c := range u.LocalClustering(nil) {
			if c < 0 || c > 1 {
				return false
			}
		}
		for _, c := range u.SquareClustering() {
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	edges, counts := Histogram(xs, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("edges %v counts %v", edges, counts)
	}
	if counts[0]+counts[1] != len(xs) {
		t.Errorf("histogram loses mass: %v", counts)
	}
	// Bins over [0, 1]: [0, 0.5) and [0.5, 1]; 0.5 belongs to the second.
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("counts = %v, want [3 3]", counts)
	}
	if e, c := Histogram(nil, 3); e != nil || c != nil {
		t.Error("Histogram(nil) should return nils")
	}
	// Degenerate constant input must not divide by zero.
	if _, c := Histogram([]float64{5, 5, 5}, 4); c == nil || sum(c) != 3 {
		t.Error("constant-input histogram broken")
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := PearsonCorrelation(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g, want 1", got)
	}
	y := []float64{4, 3, 2, 1}
	if got := PearsonCorrelation(x, y); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %g, want -1", got)
	}
	if got := PearsonCorrelation(x, []float64{7, 7, 7, 7}); got != 0 {
		t.Errorf("constant series correlation = %g, want 0", got)
	}
	if got := PearsonCorrelation(x, []float64{1}); got != 0 {
		t.Errorf("length mismatch correlation = %g, want 0", got)
	}
}
