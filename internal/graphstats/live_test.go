package graphstats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/kg"
)

// TestLiveMatchesRebuild drives a random triple mutation stream — adds,
// deletes, self-loops, parallel edges, and forced delete-then-readd of the
// same edge — through both a Live projection and from-scratch rebuilds, and
// checks after every step that adjacency, Triangles, and LocalClustering
// agree exactly. It also validates the EdgeDelta affected sets: any node
// outside delta.Touched must keep its exact degree/T(v)/c(v), and any node
// outside delta.Square must keep its exact c₄(v) — that soundness is what
// lets the mutate layer skip clean relations.
func TestLiveMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nEnt, nRel = 18, 3

	g := kg.NewGraph()
	for e := 0; e < nEnt; e++ {
		g.Entities.Intern(string(rune('A' + e)))
	}
	for r := 0; r < nRel; r++ {
		g.Relations.Intern(string(rune('p' + r)))
	}
	live := NewLive(g)

	var present []kg.Triple
	var lastDeleted kg.Triple
	haveDeleted := false

	check := func(step int, delta EdgeDelta, preTri []int64, preDeg []int, preC, preC4 []float64) {
		u := BuildUndirected(g)
		lu := live.Undirected()
		for v := 0; v < nEnt; v++ {
			if !reflect.DeepEqual(normNb(lu.Neighbors(kg.EntityID(v))), normNb(u.Neighbors(kg.EntityID(v)))) {
				t.Fatalf("step %d: adjacency of %d: live %v scratch %v",
					step, v, lu.Neighbors(kg.EntityID(v)), u.Neighbors(kg.EntityID(v)))
			}
		}
		wantTri := u.Triangles()
		gotTri := live.TriangleCounts()
		for v := 0; v < nEnt; v++ {
			if gotTri[v] != wantTri[v] {
				t.Fatalf("step %d: T(%d): live %d scratch %d", step, v, gotTri[v], wantTri[v])
			}
		}
		wantC := u.LocalClustering(wantTri)
		gotC := lu.LocalClustering(gotTri)
		for v := 0; v < nEnt; v++ {
			if gotC[v] != wantC[v] {
				t.Fatalf("step %d: c(%d): live %g scratch %g", step, v, gotC[v], wantC[v])
			}
		}
		// Soundness of the affected sets: nodes outside them must be
		// byte-for-byte unchanged from before the mutation.
		touched := toSet(delta.Touched)
		square := toSet(delta.Square)
		c4 := u.SquareClustering()
		for v := 0; v < nEnt; v++ {
			id := kg.EntityID(v)
			if _, in := touched[id]; !in {
				if u.Degree(id) != preDeg[v] || wantTri[v] != preTri[v] || wantC[v] != preC[v] {
					t.Fatalf("step %d: node %d outside Touched changed: deg %d→%d T %d→%d c %g→%g",
						step, v, preDeg[v], u.Degree(id), preTri[v], wantTri[v], preC[v], wantC[v])
				}
			}
			if _, in := square[id]; !in {
				if math.Abs(c4[v]-preC4[v]) > 0 {
					t.Fatalf("step %d: node %d outside Square changed c4 %g→%g", step, v, preC4[v], c4[v])
				}
			}
		}
	}

	snapshot := func() ([]int64, []int, []float64, []float64) {
		u := BuildUndirected(g)
		tri := u.Triangles()
		deg := make([]int, nEnt)
		for v := 0; v < nEnt; v++ {
			deg[v] = u.Degree(kg.EntityID(v))
		}
		return tri, deg, u.LocalClustering(tri), u.SquareClustering()
	}

	for step := 0; step < 220; step++ {
		preTri, preDeg, preC, preC4 := snapshot()
		var delta EdgeDelta
		switch {
		case haveDeleted && step%11 == 0 && !g.Contains(lastDeleted):
			// Delete-then-readd of the same edge.
			g.Add(lastDeleted)
			delta = live.AddTriple(lastDeleted.S, lastDeleted.O)
			present = append(present, lastDeleted)
		case len(present) > 4 && rng.Intn(3) == 0:
			i := rng.Intn(len(present))
			tr := present[i]
			g.Delete(tr)
			delta = live.RemoveTriple(tr.S, tr.O)
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
			lastDeleted, haveDeleted = tr, true
		default:
			tr := kg.Triple{
				S: kg.EntityID(rng.Intn(nEnt)),
				R: kg.RelationID(rng.Intn(nRel)),
				O: kg.EntityID(rng.Intn(nEnt)),
			}
			if rng.Intn(10) == 0 {
				tr.O = tr.S // force self-loops into the stream
			}
			if !g.Add(tr) {
				continue
			}
			delta = live.AddTriple(tr.S, tr.O)
			present = append(present, tr)
		}
		check(step, delta, preTri, preDeg, preC, preC4)
	}
}

// TestLiveParallelEdges checks that only 0↔1 multiplicity transitions are
// structural: a second triple over the same undirected edge (other relation,
// or reversed direction) must report a non-structural delta and leave the
// projection untouched.
func TestLiveParallelEdges(t *testing.T) {
	g := kg.NewGraph()
	t1 := g.AddNamed("a", "r1", "b")
	live := NewLive(g)

	t2 := g.AddNamed("b", "r2", "a") // reversed duplicate of the same edge
	if d := live.AddTriple(t2.S, t2.O); d.Structural {
		t.Fatal("parallel edge reported structural")
	}
	if d := live.RemoveTriple(t1.S, t1.O); d.Structural {
		t.Fatal("removing one of two parallel triples reported structural")
	}
	g.Delete(t1)
	if !live.Undirected().HasEdge(0, 1) {
		t.Fatal("edge vanished while one parallel triple remains")
	}
	g.Delete(t2)
	if d := live.RemoveTriple(t2.S, t2.O); !d.Structural {
		t.Fatal("removing the last parallel triple was not structural")
	}
	if live.Undirected().HasEdge(0, 1) {
		t.Fatal("edge survived removal of its last triple")
	}
}

func normNb(s []kg.EntityID) []kg.EntityID {
	if len(s) == 0 {
		return nil
	}
	return s
}

func toSet(s []kg.EntityID) map[kg.EntityID]struct{} {
	m := make(map[kg.EntityID]struct{}, len(s))
	for _, v := range s {
		m[v] = struct{}{}
	}
	return m
}
