// Package graphstats computes the structural node statistics that drive the
// paper's sampling strategies and figures: degrees, local triangle counts
// T(v), local clustering coefficients c(v) (Watts–Strogatz), and square
// clustering coefficients c₄(v) (Zhang et al.), all computed — as the paper
// specifies — on the homogeneous undirected projection of the knowledge
// graph (relation labels and edge directions dropped, self-loops and
// parallel edges collapsed).
package graphstats

import (
	"math"
	"sort"

	"repro/internal/kg"
)

// Undirected is the homogeneous undirected projection of a knowledge graph:
// node v's neighbours are every entity connected to v by at least one triple
// in either direction, excluding v itself. Neighbour lists are sorted, which
// the triangle counter exploits for merge-style intersections.
type Undirected struct {
	adj [][]kg.EntityID
}

// BuildUndirected projects g. Nodes are all interned entities (0..N-1),
// including isolated ones.
func BuildUndirected(g *kg.Graph) *Undirected {
	n := g.NumEntities()
	sets := make([]map[kg.EntityID]struct{}, n)
	addEdge := func(a, b kg.EntityID) {
		if a == b {
			return
		}
		if sets[a] == nil {
			sets[a] = make(map[kg.EntityID]struct{})
		}
		sets[a][b] = struct{}{}
	}
	for _, t := range g.Triples() {
		addEdge(t.S, t.O)
		addEdge(t.O, t.S)
	}
	u := &Undirected{adj: make([][]kg.EntityID, n)}
	for v, set := range sets {
		nb := make([]kg.EntityID, 0, len(set))
		for w := range set {
			nb = append(nb, w)
		}
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		u.adj[v] = nb
	}
	return u
}

// NumNodes returns the node count.
func (u *Undirected) NumNodes() int { return len(u.adj) }

// Neighbors returns v's sorted neighbour list. The caller must not modify it.
func (u *Undirected) Neighbors(v kg.EntityID) []kg.EntityID { return u.adj[v] }

// Degree returns the simple undirected degree of v.
func (u *Undirected) Degree(v kg.EntityID) int { return len(u.adj[v]) }

// HasEdge reports whether {a, b} is an edge, via binary search on a's list.
func (u *Undirected) HasEdge(a, b kg.EntityID) bool {
	nb := u.adj[a]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= b })
	return i < len(nb) && nb[i] == b
}

// NumEdges returns the number of undirected edges.
func (u *Undirected) NumEdges() int {
	total := 0
	for _, nb := range u.adj {
		total += len(nb)
	}
	return total / 2
}

// Triangles returns T(v) for every node: the number of edges among v's
// neighbours, i.e. the number of triangles through v. Each triangle
// {u, v, w} contributes exactly 1 to each of its three corners.
//
// Implementation: for every edge (a, b) with a < b, intersect the neighbour
// lists of a and b considering only common neighbours w > b; every such w
// closes a triangle counted exactly once, credited to all three corners.
func (u *Undirected) Triangles() []int64 {
	tri := make([]int64, len(u.adj))
	for a := range u.adj {
		av := kg.EntityID(a)
		for _, b := range u.adj[a] {
			if b <= av {
				continue
			}
			// Merge-intersect adj[a] and adj[b], keeping w > b.
			la, lb := u.adj[a], u.adj[b]
			i := sort.Search(len(la), func(i int) bool { return la[i] > b })
			j := sort.Search(len(lb), func(i int) bool { return lb[i] > b })
			for i < len(la) && j < len(lb) {
				switch {
				case la[i] < lb[j]:
					i++
				case la[i] > lb[j]:
					j++
				default:
					w := la[i]
					tri[av]++
					tri[b]++
					tri[w]++
					i++
					j++
				}
			}
		}
	}
	return tri
}

// TrianglesNaive is the O(Σ deg³)-ish reference used by tests and the
// ablation benchmark: for each node, test every neighbour pair for an edge.
func (u *Undirected) TrianglesNaive() []int64 {
	tri := make([]int64, len(u.adj))
	for v := range u.adj {
		nb := u.adj[v]
		var count int64
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if u.HasEdge(nb[i], nb[j]) {
					count++
				}
			}
		}
		tri[v] = count
	}
	return tri
}

// LocalClustering returns c(v) = 2·T(v) / (deg(v)·(deg(v)−1)) for every
// node, with c(v) = 0 when deg(v) < 2 (the NetworkX convention). tri may be
// nil, in which case Triangles is computed internally.
func (u *Undirected) LocalClustering(tri []int64) []float64 {
	if tri == nil {
		tri = u.Triangles()
	}
	c := make([]float64, len(u.adj))
	for v := range u.adj {
		d := len(u.adj[v])
		if d < 2 {
			continue
		}
		c[v] = 2 * float64(tri[v]) / (float64(d) * float64(d-1))
	}
	return c
}

// SquareClustering returns the squares clustering coefficient c₄(v) of every
// node per Zhang et al. (2008), matching NetworkX's square_clustering:
//
//	c₄(v) = Σ_{u<w ∈ N(v)} q_v(u,w) / Σ_{u<w ∈ N(v)} [a_v(u,w) + q_v(u,w)]
//
// where q_v(u,w) is the number of common neighbours of u and w other than v
// (actual squares) and a_v(u,w) counts the potential squares. This is the
// deliberately expensive statistic the paper excluded from its main
// experiments after a 54-hour run; the complexity lives here so the
// exclusion experiment (repro squares / X1) can measure it.
func (u *Undirected) SquareClustering() []float64 {
	c := make([]float64, len(u.adj))
	for v := range u.adj {
		nb := u.adj[v]
		var squares, potential float64
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				a, b := nb[i], nb[j]
				q := u.commonNeighborsExcluding(a, b, kg.EntityID(v))
				squares += float64(q)
				degm := q + 1
				if u.HasEdge(a, b) {
					degm++
				}
				potential += float64(len(u.adj[a])-degm) + float64(len(u.adj[b])-degm) + float64(q)
			}
		}
		if potential > 0 {
			c[v] = squares / potential
		}
	}
	return c
}

func (u *Undirected) commonNeighborsExcluding(a, b, excl kg.EntityID) int {
	la, lb := u.adj[a], u.adj[b]
	i, j, count := 0, 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			if la[i] != excl {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// Mean returns the arithmetic mean of xs (0 for empty input). The paper's
// Figure 3 reports the average local clustering coefficient per dataset.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Histogram buckets xs into bins equal-width bins over [min, max] and
// returns the bin edges (len bins+1) and counts (len bins). Used to render
// Figure 3's distributions.
func Histogram(xs []float64, bins int) (edges []float64, counts []int) {
	if bins <= 0 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	counts = make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	return edges, counts
}

// PearsonCorrelation returns the sample Pearson correlation of xs and ys.
// Figure 5's argument is the *lack* of correlation between triangle counts
// and clustering coefficients; we quantify it.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}
