package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func randomVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float32{1, 1, 1}
	Axpy(2, []float32{1, 2, 3}, y)
	want := []float32{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestHadamardAddSub(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	dst := make([]float32, 3)
	Hadamard(dst, a, b)
	if dst[0] != 4 || dst[1] != 10 || dst[2] != 18 {
		t.Errorf("Hadamard = %v", dst)
	}
	Add(dst, a, b)
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 9 {
		t.Errorf("Add = %v", dst)
	}
	Sub(dst, a, b)
	if dst[0] != -3 || dst[1] != -3 || dst[2] != -3 {
		t.Errorf("Sub = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	v := []float32{3, -4}
	if got := L1Norm(v); got != 7 {
		t.Errorf("L1Norm = %g, want 7", got)
	}
	if got := L2Norm(v); got != 5 {
		t.Errorf("L2Norm = %g, want 5", got)
	}
	if got := SquaredL2Norm(v); got != 25 {
		t.Errorf("SquaredL2Norm = %g, want 25", got)
	}
}

func TestDistances(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{4, -2}
	if got := L1Distance(a, b); got != 7 {
		t.Errorf("L1Distance = %g, want 7", got)
	}
	if got := L2Distance(a, b); got != 5 {
		t.Errorf("L2Distance = %g, want 5", got)
	}
}

func TestNormalizeL2(t *testing.T) {
	v := []float32{3, 4}
	NormalizeL2(v)
	if !almostEqual(L2Norm(v), 1, 1e-6) {
		t.Errorf("norm after NormalizeL2 = %g", L2Norm(v))
	}
	zero := []float32{0, 0}
	NormalizeL2(zero) // must not NaN
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("NormalizeL2 perturbed the zero vector: %v", zero)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 1000)
	XavierInit(rng, v, 50, 50)
	bound := float32(math.Sqrt(6.0 / 100))
	for i, x := range v {
		if x < -bound || x > bound {
			t.Fatalf("v[%d] = %g outside ±%g", i, x, bound)
		}
	}
	// Not all zero.
	if SquaredL2Norm(v) == 0 {
		t.Error("XavierInit produced all zeros")
	}
}

func TestMatrixRowsAndMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Row(0), []float32{1, 2, 3})
	copy(m.Row(1), []float32{4, 5, 6})
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.Row(0)[0] != 9 {
		t.Error("Set did not write through to Row")
	}
	m.Set(0, 0, 1)

	dst := make([]float32, 2)
	m.MulVec(dst, []float32{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec = %v", dst)
	}
	dstT := make([]float32, 3)
	m.MulVecT(dstT, []float32{1, 1})
	if dstT[0] != 5 || dstT[1] != 7 || dstT[2] != 9 {
		t.Errorf("MulVecT = %v", dstT)
	}
}

// Property: MulVec and MulVecT are adjoint: yᵀ(Mx) == (Mᵀy)ᵀx.
func TestMatrixPropertyAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 3+rng.Intn(5), 2+rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
		}
		x := randomVec(rng, cols)
		y := randomVec(rng, rows)
		mx := m.MulVec(make([]float32, rows), x)
		mty := m.MulVecT(make([]float32, cols), y)
		return almostEqual(Dot(y, mx), Dot(mty, x), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float32, 500)
	UniformInit(rng, v, -0.25, 0.75)
	for i, x := range v {
		if x < -0.25 || x > 0.75 {
			t.Fatalf("v[%d] = %g outside [-0.25, 0.75]", i, x)
		}
	}
}

func TestNormalInitMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float32, 20000)
	NormalInit(rng, v, 2, 0.5)
	var mean float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("sample mean %g, want ≈ 2", mean)
	}
	var varAcc float64
	for _, x := range v {
		d := float64(x) - mean
		varAcc += d * d
	}
	std := math.Sqrt(varAcc / float64(len(v)))
	if math.Abs(std-0.5) > 0.05 {
		t.Errorf("sample std %g, want ≈ 0.5", std)
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 7)
	c := m.Clone()
	m.Set(0, 0, 9)
	if c.At(0, 0) != 7 {
		t.Error("Clone shares storage with the original")
	}
	if c.Rows != 2 || c.Cols != 2 {
		t.Error("Clone lost dimensions")
	}
}

func TestAxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Axpy(1, []float32{1}, []float32{1, 2})
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(Sigmoid(0), 0.5, 1e-6) {
		t.Errorf("Sigmoid(0) = %g", Sigmoid(0))
	}
	if Sigmoid(30) < 0.999 || Sigmoid(-30) > 0.001 {
		t.Error("Sigmoid tails wrong")
	}
}

func TestSoftplusStable(t *testing.T) {
	if got := Softplus(100); got != 100 {
		t.Errorf("Softplus(100) = %g, want 100 (linear regime)", got)
	}
	if got := Softplus(-100); got < 0 || got > 1e-30 {
		t.Errorf("Softplus(-100) = %g, want ~0", got)
	}
	if !almostEqual(Softplus(0), float32(math.Ln2), 1e-6) {
		t.Errorf("Softplus(0) = %g, want ln 2", Softplus(0))
	}
}

// Property: softplus'(x) == sigmoid(x) (finite-difference check), the
// identity both logistic-loss gradients rely on.
func TestPropertySoftplusDerivativeIsSigmoid(t *testing.T) {
	f := func(x float32) bool {
		if x > 20 || x < -20 {
			x = float32(math.Mod(float64(x), 20))
		}
		const h = 1e-3
		fd := (Softplus(x+h) - Softplus(x-h)) / (2 * h)
		return almostEqual(fd, Sigmoid(x), 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the Cauchy–Schwarz inequality |a·b| ≤ ‖a‖‖b‖ holds.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a, b := randomVec(rng, n), randomVec(rng, n)
		lhs := math.Abs(float64(Dot(a, b)))
		rhs := float64(L2Norm(a)) * float64(L2Norm(b))
		return lhs <= rhs*(1+1e-4)+1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
