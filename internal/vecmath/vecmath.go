// Package vecmath provides the small float32 linear-algebra substrate that
// the KGE models are built on: dot products, saxpy, norms, Hadamard
// products, and parameter initialization. The paper's authors trained on a
// GPU through LibKGE/PyTorch; this package is the CPU substitute — simple,
// allocation-conscious loops that the Go compiler vectorizes reasonably
// well, sufficient for the embedding sizes used in this reproduction.
package vecmath

import (
	"math"
	"math/rand"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the hot loop of every bilinear scoring function, so the
// check is a debug-style panic rather than an error return.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Hadamard stores a∘b into dst and returns dst. dst may alias a or b.
func Hadamard(dst, a, b []float32) []float32 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: Hadamard length mismatch")
	}
	for i := range a {
		dst[i] = a[i] * b[i]
	}
	return dst
}

// Add stores a+b into dst and returns dst.
func Add(dst, a, b []float32) []float32 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a−b into dst and returns dst.
func Sub(dst, a, b []float32) []float32 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// L1Norm returns Σ|xᵢ|.
func L1Norm(x []float32) float32 {
	var s float32
	for _, v := range x {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}

// L2Norm returns the Euclidean norm ‖x‖₂.
func L2Norm(x []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2Norm(x))))
}

// SquaredL2Norm returns Σxᵢ².
func SquaredL2Norm(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v * v
	}
	return s
}

// L1Distance returns Σ|aᵢ−bᵢ|.
func L1Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: L1Distance length mismatch")
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// L2Distance returns ‖a−b‖₂.
func L2Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: L2Distance length mismatch")
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return float32(math.Sqrt(float64(s)))
}

// NormalizeL2 rescales x to unit Euclidean norm in place. Vectors with norm
// below 1e-12 are left untouched to avoid amplifying noise.
func NormalizeL2(x []float32) {
	n := L2Norm(x)
	if n < 1e-12 {
		return
	}
	Scale(1/n, x)
}

// XavierInit fills x with samples from U(−b, b) with b = sqrt(6/(fanIn+fanOut)),
// the Glorot/Xavier uniform initialization used by LibKGE's defaults.
func XavierInit(rng *rand.Rand, x []float32, fanIn, fanOut int) {
	b := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range x {
		x[i] = float32((rng.Float64()*2 - 1) * b)
	}
}

// UniformInit fills x with samples from U(lo, hi).
func UniformInit(rng *rand.Rand, x []float32, lo, hi float64) {
	for i := range x {
		x[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// NormalInit fills x with samples from N(mean, std²).
func NormalInit(rng *rand.Rand, x []float32, mean, std float64) {
	for i := range x {
		x[i] = float32(mean + rng.NormFloat64()*std)
	}
}

// Matrix is a dense row-major float32 matrix. It is the layout behind every
// embedding table: row i is the embedding of entity/relation i, so batched
// "score against all entities" operations are row sweeps with good locality.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns the mutable slice backing row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// MulVec computes dst = M·x (dst has length Rows, x length Cols).
func (m *Matrix) MulVec(dst, x []float32) []float32 {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("vecmath: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// MulVecT computes dst = Mᵀ·x (dst has length Cols, x length Rows).
func (m *Matrix) MulVecT(dst, x []float32) []float32 {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("vecmath: MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
	return dst
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sigmoid returns 1/(1+e^(−x)) computed stably in float64.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Softplus returns log(1+e^x) computed stably: for large x it approaches x,
// for very negative x it approaches e^x.
func Softplus(x float32) float32 {
	v := float64(x)
	if v > 30 {
		return x
	}
	if v < -30 {
		return float32(math.Exp(v))
	}
	return float32(math.Log1p(math.Exp(v)))
}
