// Package vecmath provides the small float32 linear-algebra substrate that
// the KGE models are built on: dot products, saxpy, norms, Hadamard
// products, and parameter initialization. The paper's authors trained on a
// GPU through LibKGE/PyTorch; this package is the CPU substitute — simple,
// allocation-conscious loops that the Go compiler vectorizes reasonably
// well, sufficient for the embedding sizes used in this reproduction.
package vecmath

import (
	"math"
	"math/rand"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the hot loop of every bilinear scoring function, so the
// check is a debug-style panic rather than an error return. The loop is
// 4-way unrolled with independent accumulators, breaking the loop-carried
// dependency so the adds pipeline (and letting the compiler keep four FMA
// chains in flight). Summation order therefore differs from the naive loop
// by float re-association.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha*x in place, 4-way unrolled. Element updates are
// independent, so unlike Dot the result is bit-identical to the naive loop.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: Axpy length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Hadamard stores a∘b into dst and returns dst. dst may alias a or b.
func Hadamard(dst, a, b []float32) []float32 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: Hadamard length mismatch")
	}
	for i := range a {
		dst[i] = a[i] * b[i]
	}
	return dst
}

// Add stores a+b into dst and returns dst.
func Add(dst, a, b []float32) []float32 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a−b into dst and returns dst.
func Sub(dst, a, b []float32) []float32 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// L1Norm returns Σ|xᵢ|.
func L1Norm(x []float32) float32 {
	var s float32
	for _, v := range x {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}

// L2Norm returns the Euclidean norm ‖x‖₂.
func L2Norm(x []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2Norm(x))))
}

// SquaredL2Norm returns Σxᵢ².
func SquaredL2Norm(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v * v
	}
	return s
}

// L1Distance returns Σ|aᵢ−bᵢ|, 4-way unrolled with independent
// accumulators (TransE's norm-1 corruption-sweep kernel).
func L1Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: L1Distance length mismatch")
	}
	abs := func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += abs(a[i] - b[i])
		s1 += abs(a[i+1] - b[i+1])
		s2 += abs(a[i+2] - b[i+2])
		s3 += abs(a[i+3] - b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += abs(a[i] - b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredL2Distance returns Σ(aᵢ−bᵢ)², 4-way unrolled with independent
// accumulators. It is the hot kernel of TransE's norm-2 corruption sweeps.
func SquaredL2Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: SquaredL2Distance length mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// L2Distance returns ‖a−b‖₂.
func L2Distance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: L2Distance length mismatch")
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return float32(math.Sqrt(float64(s)))
}

// NormalizeL2 rescales x to unit Euclidean norm in place. Vectors with norm
// below 1e-12 are left untouched to avoid amplifying noise.
func NormalizeL2(x []float32) {
	n := L2Norm(x)
	if n < 1e-12 {
		return
	}
	Scale(1/n, x)
}

// XavierInit fills x with samples from U(−b, b) with b = sqrt(6/(fanIn+fanOut)),
// the Glorot/Xavier uniform initialization used by LibKGE's defaults.
func XavierInit(rng *rand.Rand, x []float32, fanIn, fanOut int) {
	b := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range x {
		x[i] = float32((rng.Float64()*2 - 1) * b)
	}
}

// UniformInit fills x with samples from U(lo, hi).
func UniformInit(rng *rand.Rand, x []float32, lo, hi float64) {
	for i := range x {
		x[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// NormalInit fills x with samples from N(mean, std²).
func NormalInit(rng *rand.Rand, x []float32, mean, std float64) {
	for i := range x {
		x[i] = float32(mean + rng.NormFloat64()*std)
	}
}

// Matrix is a dense row-major float32 matrix. It is the layout behind every
// embedding table: row i is the embedding of entity/relation i, so batched
// "score against all entities" operations are row sweeps with good locality.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns the mutable slice backing row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// MulVec computes dst = M·x (dst has length Rows, x length Cols).
func (m *Matrix) MulVec(dst, x []float32) []float32 {
	return MatVec(dst, m, x)
}

// MatVec computes dst = M·x with a fused 4-row kernel: each loaded x[j]
// feeds four independent dot-product chains, amortizing the query-vector
// traffic and loop overhead across rows. This is the kernel behind every
// "score one (s, r) query against all entities" sweep — M is the N×d
// entity table and x the query vector — so its throughput bounds ranking
// cost for all bilinear models. Two accumulators per row break the
// dependency chains; like Dot, summation order differs from the naive loop
// by float re-association.
func MatVec(dst []float32, m *Matrix, x []float32) []float32 {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("vecmath: MatVec dimension mismatch")
	}
	matVecRange(dst, m, x, 0, m.Rows)
	return dst
}

// MatVecRange is MatVec restricted to rows [lo, hi): dst[i] = M.Row(i)·x for
// i in the range (other dst entries are untouched; dst must still have
// length ≥ hi). It is the rescoring kernel of pruned ranking
// (internal/prune), which scores only the aligned 4-row blocks containing
// shortlisted entities.
//
// Bit-identity contract: when lo is a multiple of 4 and hi is either a
// multiple of 4 or equal to M.Rows, every dst[i] is bit-identical to the
// whole-matrix MatVec — the 4-row blocks (and the final Dot tail, when
// hi == M.Rows) land on exactly the row indices a full sweep uses, with the
// same accumulation order. MatMat's tiling and prune's block rescoring both
// rely on this.
func MatVecRange(dst []float32, m *Matrix, x []float32, lo, hi int) {
	if len(x) != m.Cols || lo < 0 || hi > m.Rows || len(dst) < hi {
		panic("vecmath: MatVecRange dimension mismatch")
	}
	matVecRange(dst, m, x, lo, hi)
}

// matVecRange is MatVec restricted to rows [lo, hi): dst[i] = M.Row(i)·x for
// i in the range. When lo is a multiple of 4 the per-row accumulation is the
// same as a whole-matrix MatVec — the 4-row blocks land on the same row
// indices — which is the property MatMat's tiling relies on for bit-identity.
func matVecRange(dst []float32, m *Matrix, x []float32, lo, hi int) {
	d := m.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := m.Data[i*d : i*d+d : i*d+d]
		r1 := m.Data[(i+1)*d : (i+1)*d+d : (i+1)*d+d]
		r2 := m.Data[(i+2)*d : (i+2)*d+d : (i+2)*d+d]
		r3 := m.Data[(i+3)*d : (i+3)*d+d : (i+3)*d+d]
		var s0a, s0b, s1a, s1b, s2a, s2b, s3a, s3b float32
		j := 0
		for ; j+2 <= d; j += 2 {
			xa, xb := x[j], x[j+1]
			s0a += r0[j] * xa
			s0b += r0[j+1] * xb
			s1a += r1[j] * xa
			s1b += r1[j+1] * xb
			s2a += r2[j] * xa
			s2b += r2[j+1] * xb
			s3a += r3[j] * xa
			s3b += r3[j+1] * xb
		}
		if j < d {
			xa := x[j]
			s0a += r0[j] * xa
			s1a += r1[j] * xa
			s2a += r2[j] * xa
			s3a += r3[j] * xa
		}
		dst[i] = s0a + s0b
		dst[i+1] = s1a + s1b
		dst[i+2] = s2a + s2b
		dst[i+3] = s3a + s3b
	}
	for ; i < hi; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// matMatTileBytes is the row-tile footprint MatMat targets: one tile of M's
// rows should fit the L1 data cache with room left for the query rows and
// the destination slices, so every query of a block reads the tile from
// cache instead of RAM.
const matMatTileBytes = 32 << 10

// MatMatTileRows returns the row-tile height MatMat uses for a matrix with
// cols columns: the largest multiple of 4 whose float32 footprint fits
// matMatTileBytes, and at least 4. It is exported so callers that tile
// non-dot-product sweeps the same way (TransE's distance sweeps) stay
// consistent with MatMat's blocking.
func MatMatTileRows(cols int) int {
	rows := matMatTileBytes / (4 * cols)
	rows -= rows % 4
	if rows < 4 {
		rows = 4
	}
	return rows
}

// MatMat computes dst = Q·Mᵀ: dst.Row(j) = M·Q.Row(j) for every query row j.
// M is streamed in L1-sized row tiles and each tile is swept by every query
// before moving on, so the |M| memory traffic of Q.Rows MatVec calls is paid
// once per tile instead of once per query — the batching that makes
// relation-blocked ranking cheaper than per-group sweeps wherever the sweep
// is memory-bound. (A fused multi-query microkernel was measured slower
// here: the extra accumulator chains spill out of registers under Go's
// scalar codegen, costing more than the shared row loads save.)
//
// Every dst row is bit-identical to MatVec(dst.Row(j), m, q.Row(j)): tile
// boundaries are multiples of 4 (MatMatTileRows), so each tile's 4-row
// blocks and final Dot tail fall on exactly the row indices a whole-matrix
// MatVec would use, and the per-(row, query) accumulation order is unchanged.
func MatMat(dst, m, q *Matrix) *Matrix {
	if q.Cols != m.Cols || dst.Rows != q.Rows || dst.Cols != m.Rows {
		panic("vecmath: MatMat dimension mismatch")
	}
	tile := MatMatTileRows(m.Cols)
	for lo := 0; lo < m.Rows; lo += tile {
		hi := lo + tile
		if hi > m.Rows {
			hi = m.Rows
		}
		for j := 0; j < q.Rows; j++ {
			matVecRange(dst.Row(j), m, q.Row(j), lo, hi)
		}
	}
	return dst
}

// MulVecT computes dst = Mᵀ·x (dst has length Cols, x length Rows).
func (m *Matrix) MulVecT(dst, x []float32) []float32 {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("vecmath: MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
	return dst
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sigmoid returns 1/(1+e^(−x)) computed stably in float64.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Softplus returns log(1+e^x) computed stably: for large x it approaches x,
// for very negative x it approaches e^x.
func Softplus(x float32) float32 {
	v := float64(x)
	if v > 30 {
		return x
	}
	if v < -30 {
		return float32(math.Exp(v))
	}
	return float32(math.Log1p(math.Exp(v)))
}
