package vecmath

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// MatMat's contract is bit-identity, not approximate equality: every dst row
// must be exactly the float32 result MatVec produces for that query. The
// shapes cover every tiling regime: fewer rows than one 4-block, rows not a
// multiple of 4 (Dot tail), rows landing exactly on a tile boundary, and
// rows crossing several tiles with a ragged final tile.
func TestMatMatBitIdenticalToMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cols := range []int{1, 3, 5, 16, 33, 64} {
		tile := MatMatTileRows(cols)
		for _, rows := range []int{1, 2, 3, 4, 7, 8, tile, tile + 1, tile + 5, 3*tile + 3} {
			for _, qRows := range []int{1, 2, 5} {
				m := randomMatrix(rng, rows, cols)
				q := randomMatrix(rng, qRows, cols)
				dst := NewMatrix(qRows, rows)
				MatMat(dst, m, q)
				want := make([]float32, rows)
				for j := 0; j < qRows; j++ {
					MatVec(want, m, q.Row(j))
					for i, v := range want {
						if dst.At(j, i) != v {
							t.Fatalf("rows=%d cols=%d q=%d: dst[%d][%d] = %g, MatVec = %g (not bit-identical)",
								rows, cols, qRows, j, i, dst.At(j, i), v)
						}
					}
				}
			}
		}
	}
}

func TestMatMatTileRows(t *testing.T) {
	for _, cols := range []int{1, 2, 16, 64, 128, 1 << 20} {
		rows := MatMatTileRows(cols)
		if rows < 4 {
			t.Errorf("cols=%d: tile rows %d < 4", cols, rows)
		}
		if rows%4 != 0 {
			t.Errorf("cols=%d: tile rows %d not a multiple of 4", cols, rows)
		}
	}
	// Small embedding dims must stay within the L1 budget.
	if rows := MatMatTileRows(64); rows*64*4 > matMatTileBytes {
		t.Errorf("cols=64: tile footprint %d exceeds budget", rows*64*4)
	}
}

func TestMatMatDimensionMismatchPanics(t *testing.T) {
	m := NewMatrix(8, 4)
	for _, tc := range []struct {
		name   string
		dst, q *Matrix
	}{
		{"cols", NewMatrix(2, 8), NewMatrix(2, 5)},
		{"dstRows", NewMatrix(3, 8), NewMatrix(2, 4)},
		{"dstCols", NewMatrix(2, 7), NewMatrix(2, 4)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			MatMat(tc.dst, m, tc.q)
		}()
	}
}

// BenchmarkMatVec measures the per-query sweep MatMat is compared against.
// SetBytes counts the entity-matrix traffic of one sweep, so the MB/s column
// is directly comparable with BenchmarkMatMat's per-query effective rate.
func BenchmarkMatVec(b *testing.B) {
	for _, d := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=50000/d=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			m := randomMatrix(rng, 50000, d)
			x := randomVec(rng, d)
			dst := make([]float32, m.Rows)
			b.SetBytes(int64(m.Rows) * int64(d) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatVec(dst, m, x)
			}
		})
	}
}

// BenchmarkMatMat sweeps the same entity matrix with a block of queries per
// op. SetBytes counts rows·cols·4·queries — the traffic the same work costs
// as independent MatVec calls — so MB/s directly exposes the amortization.
func BenchmarkMatMat(b *testing.B) {
	for _, d := range []int{64, 128} {
		for _, k := range []int{8, 32} {
			b.Run(fmt.Sprintf("n=50000/d=%d/q=%d", d, k), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				m := randomMatrix(rng, 50000, d)
				q := randomMatrix(rng, k, d)
				dst := NewMatrix(k, m.Rows)
				b.SetBytes(int64(m.Rows) * int64(d) * 4 * int64(k))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMat(dst, m, q)
				}
			})
		}
	}
}
