package vecmath

// This file holds the widening int8 kernels behind the prescreen stage of
// pruned ranking (internal/prune). Entity rows are stored symmetric-quantized
// to int8 and candidate groups first sweep the quantized copy — 4× less
// memory traffic than float32 — before the surviving shortlist is rescored
// with the exact float kernels. All three kernels accumulate in int32, which
// is exact: |a|,|b| ≤ 127 bounds every product by 16129 and every per-element
// distance term by 65025, so sums stay far from overflow for any embedding
// width this codebase uses (d < 2¹⁵).

// DotI8 returns Σ aᵢ·bᵢ over int8 inputs with exact int32 accumulation,
// 4-way unrolled like Dot. Integer addition is associative, so unlike the
// float kernels the unrolling does not change the result.
func DotI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: DotI8 length mismatch")
	}
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// L1DistI8 returns Σ |aᵢ−bᵢ| over int8 inputs with exact int32 accumulation
// (the quantized form of TransE's norm-1 sweep).
func L1DistI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: L1DistI8 length mismatch")
	}
	var s0, s1, s2, s3 int32
	abs := func(v int32) int32 {
		if v < 0 {
			return -v
		}
		return v
	}
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += abs(int32(a[i]) - int32(b[i]))
		s1 += abs(int32(a[i+1]) - int32(b[i+1]))
		s2 += abs(int32(a[i+2]) - int32(b[i+2]))
		s3 += abs(int32(a[i+3]) - int32(b[i+3]))
	}
	for ; i < len(a); i++ {
		s0 += abs(int32(a[i]) - int32(b[i]))
	}
	return s0 + s1 + s2 + s3
}

// L2SqDistI8 returns Σ (aᵢ−bᵢ)² over int8 inputs with exact int32
// accumulation (the quantized form of TransE's norm-2 sweep).
func L2SqDistI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: L2SqDistI8 length mismatch")
	}
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := int32(a[i]) - int32(b[i])
		d1 := int32(a[i+1]) - int32(b[i+1])
		d2 := int32(a[i+2]) - int32(b[i+2])
		d3 := int32(a[i+3]) - int32(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := int32(a[i]) - int32(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}
