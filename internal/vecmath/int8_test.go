package vecmath

import (
	"math/rand"
	"testing"
)

func randI8(rng *rand.Rand, n int) []int8 {
	v := make([]int8, n)
	for i := range v {
		v[i] = int8(rng.Intn(255) - 127)
	}
	return v
}

// naive int64 references: the kernels must match them exactly (integer
// arithmetic is associative, so unrolling may not change anything).
func TestInt8KernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 16, 31, 64, 129} {
		a, b := randI8(rng, n), randI8(rng, n)
		var dot, l1, l2 int64
		for i := range a {
			ai, bi := int64(a[i]), int64(b[i])
			dot += ai * bi
			d := ai - bi
			if d < 0 {
				l1 -= d
			} else {
				l1 += d
			}
			l2 += d * d
		}
		if got := DotI8(a, b); int64(got) != dot {
			t.Errorf("DotI8 n=%d: got %d want %d", n, got, dot)
		}
		if got := L1DistI8(a, b); int64(got) != l1 {
			t.Errorf("L1DistI8 n=%d: got %d want %d", n, got, l1)
		}
		if got := L2SqDistI8(a, b); int64(got) != l2 {
			t.Errorf("L2SqDistI8 n=%d: got %d want %d", n, got, l2)
		}
	}
}

func TestInt8KernelsExtremes(t *testing.T) {
	// All-extreme inputs at a realistic width: no int32 overflow.
	n := 1024
	a, b := make([]int8, n), make([]int8, n)
	for i := range a {
		a[i], b[i] = 127, -127
	}
	if got, want := DotI8(a, b), int32(-127*127*n); got != want {
		t.Errorf("DotI8 extremes: got %d want %d", got, want)
	}
	if got, want := L1DistI8(a, b), int32(254*n); got != want {
		t.Errorf("L1DistI8 extremes: got %d want %d", got, want)
	}
	if got, want := L2SqDistI8(a, b), int32(254*254*n); got != want {
		t.Errorf("L2SqDistI8 extremes: got %d want %d", got, want)
	}
}

func TestInt8KernelsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotI8 length mismatch did not panic")
		}
	}()
	DotI8(make([]int8, 3), make([]int8, 4))
}

// TestMatVecRangeBitIdentity pins the contract prune's block rescoring
// depends on: aligned partial ranges reproduce the whole-matrix MatVec
// bit for bit, including the Dot tail when the range ends at M.Rows.
func TestMatVecRangeBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{5, 8, 11, 50, 103} {
		for _, cols := range []int{3, 8, 17, 64} {
			m := NewMatrix(rows, cols)
			x := make([]float32, cols)
			for i := range m.Data {
				m.Data[i] = rng.Float32()*2 - 1
			}
			for i := range x {
				x[i] = rng.Float32()*2 - 1
			}
			want := make([]float32, rows)
			MatVec(want, m, x)

			got := make([]float32, rows)
			// Score one aligned 4-block at a time, exactly as prune does.
			for lo := 0; lo < rows; lo += 4 {
				hi := lo + 4
				if hi > rows {
					hi = rows
				}
				MatVecRange(got, m, x, lo, hi)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rows=%d cols=%d: row %d differs: %x vs %x",
						rows, cols, i, got[i], want[i])
				}
			}
		}
	}
}
