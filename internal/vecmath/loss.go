package vecmath

import "math"

// Training-grade transcendental kernels. The exact Sigmoid/Softplus in
// vecmath.go go through math.Exp/math.Log1p in float64 — correct to the last
// ulp, but at |E|·2 transcendentals per KvsAll context they are a fixed ~30%
// of the scalar trainer's epoch time. The Fast* family below is the float32
// polynomial substitute used by the batched training hot path: ~1e-7
// relative error (a handful of float32 ulps), severalfold faster, and —
// critically for the determinism contract — still a pure per-element
// function, so any accumulation built on it is bit-reproducible. Ranking,
// calibration and the scalar trainer path keep the exact functions; the
// batched trainer's digests are defined over the Fast* values.
//
// The vector kernels (SigmoidVec, SoftplusVec, BCEFusedGrad) interleave four
// lanes through the polynomial so the serial Horner dependency chains of
// neighboring elements overlap; per element every lane runs exactly the
// scalar FastSigmoid/FastSoftplus operation sequence, so vector and scalar
// results are bit-identical — the interleave is scheduling, not math.

const (
	expLog2e = 1.44269504088896341
	expLn2Hi = 6.93359375e-1
	expLn2Lo = -2.12194440e-4
	// expLower/expUpper clamp the argument so the 2^n exponent-bit scale in
	// fastExpCore stays in normal float32 range. Outside, e^x saturates:
	// 1.2e−38 below, 1.65e38 above (callers that need ±Inf semantics must
	// handle them before the core).
	expLower = -87.3
	expUpper = 88.0
	// expRoundBias makes round-to-nearest branchless: t+(0.5+bias) is
	// positive for every in-range t, so int32 truncation floors it.
	expRoundBias = 192

	oneBits = 0x3F800000 // math.Float32bits(1)

	// log1pSwitch is √2−1, the upper end of the log polynomial's native
	// range: below it ln(1+z) is evaluated directly on z (preserving tiny
	// z exactly — forming 1+z in float32 first would discard z's low bits),
	// above it 1+z is formed and reduced through FastLog, where the rounding
	// of the addition is benign relative to ln(1+z) ≥ 0.34.
	log1pSwitch = 0.41421356
)

func absf(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

// negMask returns all-ones if x has its sign bit set (x < 0 or x = −0), else
// zero — the branchless select mask for sign-dependent formulas.
func negMask(x float32) uint32 {
	return uint32(int32(math.Float32bits(x)) >> 31)
}

// reluf returns max(x, 0) branchlessly (−0 maps to +0).
func reluf(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ negMask(x))
}

func clampExpLower(x float32) float32 {
	if x < expLower {
		return expLower
	}
	return x
}

// fastExpCore returns e^x for x ∈ [expLower, expUpper] with ≈1 ulp relative
// error, using the classic Cephes expf reduction: x = n·ln2 + r with
// |r| ≤ ln2/2, a degree-6 polynomial for e^r, and an exponent-bits scale by
// 2^n. Inputs must be pre-clamped; NaN propagates.
func fastExpCore(x float32) float32 {
	t := x * expLog2e
	n := int32(t+(0.5+expRoundBias)) - expRoundBias
	fn := float32(n)
	// r = x − n·ln2 in two steps so the reduction itself stays accurate.
	r := x - fn*expLn2Hi
	r -= fn * expLn2Lo
	// e^r on |r| ≤ ln2/2 (Cephes single-precision minimax coefficients).
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	y := p*r*r + r + 1
	// Scale by 2^n via the exponent bits; n ∈ [−126, 127] after the clamps,
	// so the bias never over/underflows.
	return y * math.Float32frombits(uint32(n+127)<<23)
}

// fastExp4 is fastExpCore over four lanes with the reduction steps
// interleaved, hiding the per-lane Horner latency. Per lane the operation
// sequence is exactly fastExpCore's, so each output is bit-identical to the
// scalar call.
func fastExp4(x0, x1, x2, x3 float32) (y0, y1, y2, y3 float32) {
	t0 := x0 * expLog2e
	t1 := x1 * expLog2e
	t2 := x2 * expLog2e
	t3 := x3 * expLog2e
	n0 := int32(t0+(0.5+expRoundBias)) - expRoundBias
	n1 := int32(t1+(0.5+expRoundBias)) - expRoundBias
	n2 := int32(t2+(0.5+expRoundBias)) - expRoundBias
	n3 := int32(t3+(0.5+expRoundBias)) - expRoundBias
	fn0, fn1, fn2, fn3 := float32(n0), float32(n1), float32(n2), float32(n3)
	r0 := x0 - fn0*expLn2Hi
	r1 := x1 - fn1*expLn2Hi
	r2 := x2 - fn2*expLn2Hi
	r3 := x3 - fn3*expLn2Hi
	r0 -= fn0 * expLn2Lo
	r1 -= fn1 * expLn2Lo
	r2 -= fn2 * expLn2Lo
	r3 -= fn3 * expLn2Lo
	p0 := float32(1.9875691500e-4)
	p1, p2, p3 := p0, p0, p0
	p0 = p0*r0 + 1.3981999507e-3
	p1 = p1*r1 + 1.3981999507e-3
	p2 = p2*r2 + 1.3981999507e-3
	p3 = p3*r3 + 1.3981999507e-3
	p0 = p0*r0 + 8.3334519073e-3
	p1 = p1*r1 + 8.3334519073e-3
	p2 = p2*r2 + 8.3334519073e-3
	p3 = p3*r3 + 8.3334519073e-3
	p0 = p0*r0 + 4.1665795894e-2
	p1 = p1*r1 + 4.1665795894e-2
	p2 = p2*r2 + 4.1665795894e-2
	p3 = p3*r3 + 4.1665795894e-2
	p0 = p0*r0 + 1.6666665459e-1
	p1 = p1*r1 + 1.6666665459e-1
	p2 = p2*r2 + 1.6666665459e-1
	p3 = p3*r3 + 1.6666665459e-1
	p0 = p0*r0 + 5.0000001201e-1
	p1 = p1*r1 + 5.0000001201e-1
	p2 = p2*r2 + 5.0000001201e-1
	p3 = p3*r3 + 5.0000001201e-1
	y0 = (p0*r0*r0 + r0 + 1) * math.Float32frombits(uint32(n0+127)<<23)
	y1 = (p1*r1*r1 + r1 + 1) * math.Float32frombits(uint32(n1+127)<<23)
	y2 = (p2*r2*r2 + r2 + 1) * math.Float32frombits(uint32(n2+127)<<23)
	y3 = (p3*r3*r3 + r3 + 1) * math.Float32frombits(uint32(n3+127)<<23)
	return
}

// FastExp returns e^x as float32 with ≈1 ulp relative error over
// [expLower, expUpper]; outside it saturates to the clamp values (≈1.2e−38
// and ≈1.65e38) rather than 0/+Inf. NaN propagates.
func FastExp(x float32) float32 {
	if x != x {
		return x
	}
	if x > expUpper {
		x = expUpper
	}
	return fastExpCore(clampExpLower(x))
}

// logPoly evaluates ln(1+z) for z ∈ (√½−1, √2−1) with the Cephes logf
// minimax polynomial: z + z³·P(z) − z²/2.
func logPoly(z float32) float32 {
	p := float32(7.0376836292e-2)
	p = p*z - 1.1514610310e-1
	p = p*z + 1.1676998740e-1
	p = p*z - 1.2420140846e-1
	p = p*z + 1.4249322787e-1
	p = p*z - 1.6668057665e-1
	p = p*z + 2.0000714765e-1
	p = p*z - 2.4999993993e-1
	p = p*z + 3.3333331174e-1
	zz := z * z
	return z + (p*z*zz - 0.5*zz)
}

// logPoly4 is logPoly over four lanes, interleaved; per lane bit-identical
// to the scalar call.
func logPoly4(z0, z1, z2, z3 float32) (l0, l1, l2, l3 float32) {
	p0 := float32(7.0376836292e-2)
	p1, p2, p3 := p0, p0, p0
	p0 = p0*z0 - 1.1514610310e-1
	p1 = p1*z1 - 1.1514610310e-1
	p2 = p2*z2 - 1.1514610310e-1
	p3 = p3*z3 - 1.1514610310e-1
	p0 = p0*z0 + 1.1676998740e-1
	p1 = p1*z1 + 1.1676998740e-1
	p2 = p2*z2 + 1.1676998740e-1
	p3 = p3*z3 + 1.1676998740e-1
	p0 = p0*z0 - 1.2420140846e-1
	p1 = p1*z1 - 1.2420140846e-1
	p2 = p2*z2 - 1.2420140846e-1
	p3 = p3*z3 - 1.2420140846e-1
	p0 = p0*z0 + 1.4249322787e-1
	p1 = p1*z1 + 1.4249322787e-1
	p2 = p2*z2 + 1.4249322787e-1
	p3 = p3*z3 + 1.4249322787e-1
	p0 = p0*z0 - 1.6668057665e-1
	p1 = p1*z1 - 1.6668057665e-1
	p2 = p2*z2 - 1.6668057665e-1
	p3 = p3*z3 - 1.6668057665e-1
	p0 = p0*z0 + 2.0000714765e-1
	p1 = p1*z1 + 2.0000714765e-1
	p2 = p2*z2 + 2.0000714765e-1
	p3 = p3*z3 + 2.0000714765e-1
	p0 = p0*z0 - 2.4999993993e-1
	p1 = p1*z1 - 2.4999993993e-1
	p2 = p2*z2 - 2.4999993993e-1
	p3 = p3*z3 - 2.4999993993e-1
	p0 = p0*z0 + 3.3333331174e-1
	p1 = p1*z1 + 3.3333331174e-1
	p2 = p2*z2 + 3.3333331174e-1
	p3 = p3*z3 + 3.3333331174e-1
	zz0, zz1, zz2, zz3 := z0*z0, z1*z1, z2*z2, z3*z3
	l0 = z0 + (p0*z0*zz0 - 0.5*zz0)
	l1 = z1 + (p1*z1*zz1 - 0.5*zz1)
	l2 = z2 + (p2*z2*zz2 - 0.5*zz2)
	l3 = z3 + (p3*z3*zz3 - 0.5*zz3)
	return
}

// FastLog returns ln(x) for x > 0 with ≈1 ulp relative error: mantissa
// reduction to [√½, √2), the logPoly core, and a two-step e·ln2
// recombination. Non-positive and special inputs are the callers' problem —
// the training kernels only ever pass 1+z ≥ 1.
func FastLog(x float32) float32 {
	bits := math.Float32bits(x)
	e := int32(bits>>23) - 126
	m := math.Float32frombits(bits&0x007FFFFF | 0x3F000000) // mantissa ∈ [½, 1)
	if m < 0.70710678 {
		m *= 2
		e--
	}
	return logPoly(m-1) + float32(e)*expLn2Lo + float32(e)*expLn2Hi
}

// FastLog1p returns ln(1+z) for z ≥ 0, exact where it matters: tiny z skips
// the precision-destroying 1+z float32 addition entirely.
func FastLog1p(z float32) float32 {
	if z < log1pSwitch {
		return logPoly(z)
	}
	return FastLog(1 + z)
}

// sigmoidFromZ finishes a sigmoid given z = e^(−|x|): 1/(1+z) for x ≥ 0 and
// its reflection z/(1+z) for x < 0, selected branchlessly by x's sign bit.
// Working from e^(−|x|) keeps the exponential in (0, 1] — no overflow branch
// — and lets softplus share the same exp.
func sigmoidFromZ(x, z float32) float32 {
	m := negMask(x)
	num := math.Float32frombits(math.Float32bits(z)&m | oneBits&^m)
	return num / (1 + z)
}

// FastSigmoid returns 1/(1+e^(−x)) built on the Fast* kernels: ~1e−7
// relative error, saturating cleanly to 0 and 1 at the extremes.
func FastSigmoid(x float32) float32 {
	return sigmoidFromZ(x, fastExpCore(clampExpLower(-absf(x))))
}

// FastSoftplus returns ln(1+e^x) as max(x,0) + log1p(e^(−|x|)): the
// decomposition needs no large-x branch (the correction underflows to 0 by
// itself) and keeps full precision for very negative x, where the answer is
// e^x and a float32 1+e^x would round it away.
func FastSoftplus(x float32) float32 {
	return reluf(x) + FastLog1p(fastExpCore(clampExpLower(-absf(x))))
}

// SigmoidVec writes FastSigmoid(x[i]) into dst[i], four lanes at a time.
// dst may alias x. Every element is bit-identical to the scalar call.
func SigmoidVec(dst, x []float32) {
	if len(dst) != len(x) {
		panic("vecmath: SigmoidVec length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		z0, z1, z2, z3 := fastExp4(
			clampExpLower(-absf(x0)), clampExpLower(-absf(x1)),
			clampExpLower(-absf(x2)), clampExpLower(-absf(x3)))
		dst[i] = sigmoidFromZ(x0, z0)
		dst[i+1] = sigmoidFromZ(x1, z1)
		dst[i+2] = sigmoidFromZ(x2, z2)
		dst[i+3] = sigmoidFromZ(x3, z3)
	}
	for ; i < len(x); i++ {
		dst[i] = FastSigmoid(x[i])
	}
}

// log1p4 applies FastLog1p to four lanes: the common all-small case runs the
// interleaved polynomial, mixed lanes fall back to scalar calls (bit-equal
// either way).
func log1p4(z0, z1, z2, z3 float32) (l0, l1, l2, l3 float32) {
	if z0 < log1pSwitch && z1 < log1pSwitch && z2 < log1pSwitch && z3 < log1pSwitch {
		return logPoly4(z0, z1, z2, z3)
	}
	return FastLog1p(z0), FastLog1p(z1), FastLog1p(z2), FastLog1p(z3)
}

// SoftplusVec writes FastSoftplus(x[i]) into dst[i], four lanes at a time.
// dst may alias x. Every element is bit-identical to the scalar call.
func SoftplusVec(dst, x []float32) {
	if len(dst) != len(x) {
		panic("vecmath: SoftplusVec length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		z0, z1, z2, z3 := fastExp4(
			clampExpLower(-absf(x0)), clampExpLower(-absf(x1)),
			clampExpLower(-absf(x2)), clampExpLower(-absf(x3)))
		l0, l1, l2, l3 := log1p4(z0, z1, z2, z3)
		dst[i] = reluf(x0) + l0
		dst[i+1] = reluf(x1) + l1
		dst[i+2] = reluf(x2) + l2
		dst[i+3] = reluf(x3) + l3
	}
	for ; i < len(x); i++ {
		dst[i] = FastSoftplus(x[i])
	}
}

// sigmoidSoftplusVec computes sig[i] = FastSigmoid(x[i]) and
// sp[i] = FastSoftplus(x[i]) from a single shared e^(−|x|) per element —
// both formulas are built on the same exponential, so fusing them halves
// the transcendental work of the BCE kernel. Bit-identical per element to
// the two scalar calls.
func sigmoidSoftplusVec(sig, sp, x []float32) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		z0, z1, z2, z3 := fastExp4(
			clampExpLower(-absf(x0)), clampExpLower(-absf(x1)),
			clampExpLower(-absf(x2)), clampExpLower(-absf(x3)))
		l0, l1, l2, l3 := log1p4(z0, z1, z2, z3)
		sig[i] = sigmoidFromZ(x0, z0)
		sig[i+1] = sigmoidFromZ(x1, z1)
		sig[i+2] = sigmoidFromZ(x2, z2)
		sig[i+3] = sigmoidFromZ(x3, z3)
		sp[i] = reluf(x0) + l0
		sp[i+1] = reluf(x1) + l1
		sp[i+2] = reluf(x2) + l2
		sp[i+3] = reluf(x3) + l3
	}
	for ; i < len(x); i++ {
		z := fastExpCore(clampExpLower(-absf(x[i])))
		sig[i] = sigmoidFromZ(x[i], z)
		sp[i] = reluf(x[i]) + FastLog1p(z)
	}
}

// bceTile is the element block BCEFusedGrad processes per pass: big enough
// to amortize loop overhead, small enough that the two scratch tiles live on
// the stack and in L1.
const bceTile = 512

// BCEFusedGrad is the fused binary-cross-entropy forward/gradient kernel of
// KvsAll training. For every index o it selects the target
//
//	y = posY if o ∈ positives else negY,
//
// accumulates the BCE loss softplus(scores[o]) − y·scores[o] in float64, and
// writes the upstream gradient (σ(scores[o]) − y)·gradScale into upstream[o].
// positives must be sorted ascending and duplicate-free (KvsAll object lists
// are); membership is a two-pointer merge, replacing the per-context hash
// map the scalar loop allocated in training's hottest loop.
//
// Determinism contract: the kernel is defined as per-element
// FastSigmoid/FastSoftplus with the float64 loss sum in ascending index
// order. The tiled, lane-interleaved, shared-exponential evaluation is pure
// scheduling — bit-identical to that scalar composition for any tile size,
// which the property test in loss_test.go pins to 0 ulps. It is *not*
// bit-identical to the exact Sigmoid/Softplus path (the Fast* kernels differ
// by ~1e−7 relative); the scalar trainer keeps the exact path and its
// original digests, the batched trainer's digests are defined over this
// kernel.
func BCEFusedGrad(upstream, scores []float32, positives []int32, posY, negY, gradScale float32) float64 {
	if len(upstream) != len(scores) {
		panic("vecmath: BCEFusedGrad length mismatch")
	}
	var sig, sp [bceTile]float32
	var loss float64
	pi := 0
	for lo := 0; lo < len(scores); lo += bceTile {
		hi := lo + bceTile
		if hi > len(scores) {
			hi = len(scores)
		}
		tile := scores[lo:hi]
		sigmoidSoftplusVec(sig[:len(tile)], sp[:len(tile)], tile)
		for i, x := range tile {
			y := negY
			if pi < len(positives) && int(positives[pi]) == lo+i {
				y = posY
				pi++
			}
			loss += float64(sp[i] - y*x)
			upstream[lo+i] = (sig[i] - y) * gradScale
		}
	}
	return loss
}
