package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// relErr returns |got−want|/max(|want|, tiny).
func relErr(got float32, want float64) float64 {
	d := math.Abs(float64(got) - want)
	den := math.Abs(want)
	if den < 1e-30 {
		den = 1e-30
	}
	return d / den
}

func TestFastExpAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		x := float32((rng.Float64()*2 - 1) * 87)
		if err := relErr(FastExp(x), math.Exp(float64(x))); err > 1e-6 {
			t.Fatalf("FastExp(%g) = %g, want %g (rel err %g)", x, FastExp(x), math.Exp(float64(x)), err)
		}
	}
}

func TestFastExpEdgeCases(t *testing.T) {
	if got := FastExp(0); got != 1 {
		t.Errorf("FastExp(0) = %g, want exactly 1", got)
	}
	// Out-of-range arguments saturate at the clamp values rather than
	// overflowing the exponent-bit scale.
	if got, want := FastExp(200), FastExp(88); got != want || math.IsInf(float64(got), 0) || got < 1e38 {
		t.Errorf("FastExp(200) = %g, want finite saturation %g", got, want)
	}
	if got, want := FastExp(-200), FastExp(-87.3); got != want || got == 0 || got > 2e-38 {
		t.Errorf("FastExp(-200) = %g, want tiny saturation %g", got, want)
	}
	if got := FastExp(float32(math.NaN())); !math.IsNaN(float64(got)) {
		t.Errorf("FastExp(NaN) = %g, want NaN", got)
	}
}

func TestFastLogAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		// Log-uniform over (1e−30, 1e30).
		x := float32(math.Exp((rng.Float64()*2 - 1) * 69))
		if err := relErr(FastLog(x), math.Log(float64(x))); err > 1e-6 {
			t.Fatalf("FastLog(%g) rel err %g", x, err)
		}
	}
}

func TestFastLog1pAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		// Log-uniform z over (e^−40, e^5): covers the tiny-z regime where
		// forming 1+z in float32 would destroy all precision.
		z := float32(math.Exp(rng.Float64()*45 - 40))
		if err := relErr(FastLog1p(z), math.Log1p(float64(z))); err > 1e-6 {
			t.Fatalf("FastLog1p(%g) = %g, want %g (rel err %g)", z, FastLog1p(z), math.Log1p(float64(z)), err)
		}
	}
}

func TestFastSigmoidAndSoftplusVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		x := float32((rng.Float64()*2 - 1) * 60)
		want := 1 / (1 + math.Exp(-float64(x)))
		if err := relErr(FastSigmoid(x), want); err > 1e-5 {
			t.Fatalf("FastSigmoid(%g) rel err %g", x, err)
		}
		wantSp := math.Log1p(math.Exp(float64(x)))
		if float64(x) > 30 {
			wantSp = float64(x)
		}
		if err := relErr(FastSoftplus(x), wantSp); err > 1e-5 {
			t.Fatalf("FastSoftplus(%g) = %g, want %g (rel err %g)", x, FastSoftplus(x), wantSp, err)
		}
	}
}

func TestSigmoidSoftplusVecMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float32, 1337)
	for i := range x {
		x[i] = float32((rng.Float64()*2 - 1) * 50)
	}
	sig := make([]float32, len(x))
	sp := make([]float32, len(x))
	SigmoidVec(sig, x)
	SoftplusVec(sp, x)
	for i, v := range x {
		if sig[i] != FastSigmoid(v) {
			t.Fatalf("SigmoidVec[%d] = %v, scalar %v", i, sig[i], FastSigmoid(v))
		}
		if sp[i] != FastSoftplus(v) {
			t.Fatalf("SoftplusVec[%d] = %v, scalar %v", i, sp[i], FastSoftplus(v))
		}
	}
}

// TestBCEFusedGradZeroUlp pins the kernel's determinism contract: for any
// input, loss and every upstream element are bit-identical to the scalar
// composition the kernel is defined as — per-element FastSigmoid/FastSoftplus,
// positive lookup by membership, float64 loss accumulation in ascending
// index order. The fused tiling and the two-pointer merge must be pure
// scheduling, 0 ulps apart from the reference.
func TestBCEFusedGradZeroUlp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4000) // crosses several bceTile boundaries
		scores := make([]float32, n)
		for i := range scores {
			scores[i] = float32(rng.NormFloat64() * 5)
		}
		// Random sorted duplicate-free positive list (possibly empty, possibly all).
		posSet := make(map[int]bool)
		var positives []int32
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.1 {
				posSet[i] = true
				positives = append(positives, int32(i))
			}
		}
		posY := float32(0.9 + rng.Float64()*0.1)
		negY := float32(rng.Float64() * 0.01)
		gradScale := float32(1 / float64(n))

		got := make([]float32, n)
		gotLoss := BCEFusedGrad(got, scores, positives, posY, negY, gradScale)

		var wantLoss float64
		for o, x := range scores {
			y := negY
			if posSet[o] {
				y = posY
			}
			wantLoss += float64(FastSoftplus(x) - y*x)
			wantUp := (FastSigmoid(x) - y) * gradScale
			if math.Float32bits(got[o]) != math.Float32bits(wantUp) {
				t.Fatalf("trial %d: upstream[%d] = %v (bits %x), want %v (bits %x)",
					trial, o, got[o], math.Float32bits(got[o]), wantUp, math.Float32bits(wantUp))
			}
		}
		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("trial %d: loss = %v, want %v (not bit-identical)", trial, gotLoss, wantLoss)
		}
	}
}

// The fused kernel must track the exact float64 BCE path closely even though
// it is not bit-identical to it (that path stays the scalar trainer's).
func TestBCEFusedGradVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	scores := make([]float32, n)
	for i := range scores {
		scores[i] = float32(rng.NormFloat64() * 8)
	}
	positives := []int32{3, 77, 2048, 4999}
	posSet := map[int]bool{3: true, 77: true, 2048: true, 4999: true}
	const posY, negY, scale = 0.95, 0.005, 1.0 / 5000

	up := make([]float32, n)
	loss := BCEFusedGrad(up, scores, positives, posY, negY, scale)

	var wantLoss float64
	for o, x := range scores {
		y := float64(negY)
		if posSet[o] {
			y = float64(posY)
		}
		sp := math.Log1p(math.Exp(float64(x)))
		if float64(x) > 30 {
			sp = float64(x)
		}
		wantLoss += sp - y*float64(x)
		wantUp := (1/(1+math.Exp(-float64(x))) - y) * scale
		if d := math.Abs(float64(up[o]) - wantUp); d > 1e-9 {
			t.Fatalf("upstream[%d] = %v, exact %v (abs diff %g)", o, up[o], wantUp, d)
		}
	}
	if d := math.Abs(loss-wantLoss) / math.Abs(wantLoss); d > 1e-5 {
		t.Fatalf("loss = %v, exact %v (rel diff %g)", loss, wantLoss, d)
	}
}

func BenchmarkSigmoidExact(b *testing.B) {
	x := benchInputs(4096)
	b.SetBytes(4096 * 4)
	for i := 0; i < b.N; i++ {
		var s float32
		for _, v := range x {
			s += Sigmoid(v)
		}
		sink = s
	}
}

func BenchmarkSigmoidVecFast(b *testing.B) {
	x := benchInputs(4096)
	dst := make([]float32, len(x))
	b.SetBytes(4096 * 4)
	for i := 0; i < b.N; i++ {
		SigmoidVec(dst, x)
	}
	sink = dst[0]
}

func BenchmarkBCEFusedGrad(b *testing.B) {
	x := benchInputs(50000)
	up := make([]float32, len(x))
	positives := []int32{5, 1000, 20000, 49999}
	b.SetBytes(50000 * 4)
	for i := 0; i < b.N; i++ {
		BCEFusedGrad(up, x, positives, 0.95, 0.005, 1e-4)
	}
}

var sink float32

func benchInputs(n int) []float32 {
	rng := rand.New(rand.NewSource(8))
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64() * 4)
	}
	return x
}
