package train

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/prof"
	"repro/internal/vecmath"
)

// Config parameterizes a training run.
type Config struct {
	// Epochs is the maximum number of passes over the training triples.
	Epochs int
	// BatchSize is the number of positive triples per optimizer step.
	BatchSize int
	// NegSamples is the number of corruptions per positive.
	NegSamples int
	// Loss defaults to DefaultLossFor(model.Name()).
	Loss Loss
	// Optimizer defaults to Adam with LearningRate.
	Optimizer Optimizer
	// LearningRate is used when Optimizer is nil; zero means 0.05.
	LearningRate float32
	// L2 is the weight-decay coefficient applied (sparsely) to every
	// parameter row a batch touches.
	L2 float32
	// Workers is the gradient-computation parallelism; zero means
	// GOMAXPROCS. Training output is bit-identical for any value: the unit
	// of work is the fixed-size gradient chunk, not the worker shard, so
	// the float accumulation order never depends on Workers.
	Workers int
	// Seed drives shuffling and negative sampling.
	Seed int64
	// FilteredNegatives re-draws corruptions that are true training triples.
	FilteredNegatives bool
	// BernoulliNegatives fits per-relation corruption-side probabilities
	// (Wang et al., 2014) instead of the uniform 50/50 side choice.
	BernoulliNegatives bool
	// ScalarKernels forces the pre-batching scalar gradient path: exact
	// float64 transcendentals and one ScoreWithContext/AccumulateGrad call
	// per triple (or per entity for KvsAll). The zero value uses the batched
	// kernels — chunk-wide MatMat forwards, fused float32 loss kernels, and
	// grouped backward passes. Both paths are bit-deterministic for any
	// worker count, but they define different digests: flipping this toggle
	// changes checkpoints, flipping Workers never does. Scalar mode
	// reproduces the digests of the pre-batching trainer exactly, which is
	// what makes before/after benchmarks honest.
	ScalarKernels bool

	// Validate, when non-nil, is called every EvalEvery epochs with the
	// current model; it returns a metric where higher is better (e.g.
	// validation MRR). Training stops early when the metric has not
	// improved for Patience consecutive evaluations (Patience 0 disables
	// early stopping).
	Validate  func(m kge.Model) float64
	EvalEvery int
	Patience  int

	// Progress, when non-nil, receives one line per epoch.
	Progress func(format string, args ...any)
}

func (c *Config) setDefaults(model kge.Trainable) {
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 128
	}
	if c.NegSamples == 0 {
		c.NegSamples = 4
	}
	if c.Loss == nil {
		c.Loss = DefaultLossFor(model.Name())
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Optimizer == nil {
		c.Optimizer = NewAdam(c.LearningRate)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 5
	}
}

// EpochStats records one epoch of training for the returned history.
type EpochStats struct {
	Epoch      int
	Loss       float64 // mean loss per positive triple
	Duration   time.Duration
	Validation float64 // metric from Config.Validate; NaN-free: 0 when unset
	// Examples is the number of training examples this epoch processed:
	// positive triples for the sampled objective, (s, r) contexts for
	// KvsAll. Examples/Duration is the epoch throughput.
	Examples int
}

// Throughput returns the epoch's examples per second (0 for a zero duration).
func (s EpochStats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Examples) / s.Duration.Seconds()
}

// History is the per-epoch record of a training run.
type History struct {
	Epochs []EpochStats
	// Best is the best validation metric seen (0 when Validate is unset).
	Best float64
	// Stopped reports whether early stopping triggered.
	Stopped bool
}

// Run trains model on ds.Train per cfg. It returns the training history.
// The model is mutated in place; with early stopping the parameters from
// the best validation epoch are restored before returning.
func Run(ctx context.Context, model kge.Trainable, ds *kg.Dataset, cfg Config) (History, error) {
	cfg.setDefaults(model)
	if ds.Train.Len() == 0 {
		return History{}, fmt.Errorf("train: empty training graph")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	triples := make([]kg.Triple, ds.Train.Len())
	copy(triples, ds.Train.Triples())

	sampler := &NegativeSampler{
		NumEntities: model.NumEntities(),
		Filtered:    cfg.FilteredNegatives,
		Filter:      ds.Train,
	}
	if cfg.BernoulliNegatives {
		sampler.FitBernoulli(ds.Train)
	}

	var hist History
	var best float64
	var bestParams map[string][]float32
	sinceBest := 0

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return hist, err
		}
		start := time.Now()
		rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })

		var epochLoss float64
		for lo := 0; lo < len(triples); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(triples) {
				hi = len(triples)
			}
			batch := triples[lo:hi]
			loss := runBatch(model, batch, sampler, cfg, rng.Int63())
			epochLoss += loss
		}
		epochLoss /= float64(len(triples))

		stats := EpochStats{
			Epoch: epoch, Loss: epochLoss, Duration: time.Since(start),
			Examples: len(triples),
		}

		if cfg.Validate != nil && epoch%cfg.EvalEvery == 0 {
			metric := cfg.Validate(model)
			stats.Validation = metric
			if metric > best {
				best = metric
				sinceBest = 0
				bestParams = snapshotParams(model, bestParams)
			} else {
				sinceBest++
			}
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				hist.Epochs = append(hist.Epochs, stats)
				hist.Stopped = true
				break
			}
		}
		hist.Epochs = append(hist.Epochs, stats)
		if cfg.Progress != nil {
			cfg.Progress("epoch %3d  loss %.5f  valid %.4f  (%s, %.0f triples/s)",
				epoch, stats.Loss, stats.Validation,
				stats.Duration.Round(time.Millisecond), stats.Throughput())
		}
	}
	hist.Best = best
	if bestParams != nil {
		restoreParams(model, bestParams)
	}
	return hist, nil
}

// gradChunkSize is the fixed number of examples per gradient chunk. The
// chunk, not the worker shard, is the unit of scheduling: every batch is
// split into ⌈len/gradChunkSize⌉ chunks regardless of Config.Workers, each
// chunk accumulates into its own GradBuffer with an RNG stream derived from
// (batchSeed, chunkIndex), and the buffers merge in ascending chunk order
// after the barrier. Float accumulation order is therefore a function of
// the batch alone, which is what makes training bit-identical for any
// worker count.
const gradChunkSize = 16

// chunkResult is one chunk's accumulated gradients and summed loss.
type chunkResult struct {
	gb   *kge.GradBuffer
	loss float64
}

// splitmix64 is a tiny deterministic rand.Source64 used for per-chunk
// negative-sampling streams. Chunks are small and numerous, so stream setup
// must be O(1): seeding math/rand's default source walks a ~12k-multiply
// warmup, which would dominate a 16-example chunk's gradient work.
type splitmix64 uint64

func (s *splitmix64) Uint64() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix64) Seed(seed int64) { *s = splitmix64(seed) }

// chunkRNG returns the deterministic generator for one chunk, its stream a
// pure function of (batchSeed, chunkIndex) and decorrelated from
// neighboring chunks by the splitmix64 golden-ratio increment.
func chunkRNG(src *splitmix64, batchSeed int64, chunk int) *rand.Rand {
	*src = splitmix64(uint64(batchSeed) + uint64(chunk+1)*0x9E3779B97F4A7C15)
	return rand.New(src)
}

// runChunks splits n examples into fixed-size chunks and processes them on
// up to `workers` goroutines pulling chunk indices from a shared counter.
// newWorker runs once per goroutine and returns the per-chunk closure,
// letting workers reuse scratch buffers across the chunks they pull. Each
// chunk writes into its own result slot, so callers can reduce the returned
// slice in a worker-count-independent order.
// The phase string labels the workers' CPU-profile samples (prof.Do), so
// profiles split by hot path, e.g. "negsample/batched" vs "kvsall/scalar".
func runChunks(phase string, n, workers int, newWorker func() func(chunk, lo, hi int) chunkResult) []chunkResult {
	chunks := (n + gradChunkSize - 1) / gradChunkSize
	if workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]chunkResult, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prof.Do(phase, func() {
				do := newWorker()
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					lo, hi := c*gradChunkSize, (c+1)*gradChunkSize
					if hi > n {
						hi = n
					}
					results[c] = do(c, lo, hi)
				}
			})
		}()
	}
	wg.Wait()
	return results
}

// mergeChunks folds per-chunk gradients and losses in ascending chunk
// order. Merging into the first chunk's buffer keeps the per-row addition
// sequence identical to a serial pass over the chunks.
func mergeChunks(results []chunkResult) (*kge.GradBuffer, float64) {
	var merged *kge.GradBuffer
	var loss float64
	for _, r := range results {
		if r.gb == nil {
			continue
		}
		loss += r.loss
		if merged == nil {
			merged = r.gb
		} else {
			merged.Merge(r.gb)
		}
	}
	return merged, loss
}

// runBatch computes gradients for one batch (chunked across workers),
// applies L2 regularization on touched rows, and takes one optimizer step.
// It returns the summed loss over the batch.
//
// The batched path (ScalarKernels false, model implements GroupTrainable)
// gathers each positive's candidates into at most two groups — the (s, r)
// context against [positive object | object-side corruptions] and the (r, o)
// context against the subject-side corruptions — and scores/backprops each
// group with one GroupTrainable call. RNG consumption (CorruptN per positive
// in batch order) and the per-triple loss evaluation are identical to the
// scalar path, so the negative draws and reported losses match; only the
// float accumulation order inside a group differs.
func runBatch(model kge.Trainable, batch []kg.Triple, sampler *NegativeSampler, cfg Config, seed int64) float64 {
	invBatch := 1 / float32(len(batch))
	gt, grouped := model.(kge.GroupTrainable)
	if cfg.ScalarKernels {
		grouped = false
	}
	newWorker := func() func(chunk, lo, hi int) chunkResult {
		negs := make([]kg.Triple, 0, cfg.NegSamples)
		negScores := make([]float32, cfg.NegSamples)
		gradNegs := make([]float32, cfg.NegSamples)
		negCtxs := make([]kge.GradContext, cfg.NegSamples)
		var src splitmix64
		return func(chunk, lo, hi int) chunkResult {
			gb := kge.NewGradBuffer(model.Params())
			rng := chunkRNG(&src, seed, chunk)
			var loss float64
			for _, pos := range batch[lo:hi] {
				posScore, posCtx := model.ScoreWithContext(pos)
				negs = sampler.CorruptN(negs, pos, cfg.NegSamples, rng)
				for i, n := range negs {
					negScores[i], negCtxs[i] = model.ScoreWithContext(n)
				}
				var gradPos float32
				loss += float64(cfg.Loss.Eval(posScore, negScores[:len(negs)], &gradPos, gradNegs[:len(negs)]))
				if gradPos != 0 {
					model.AccumulateGrad(pos, posCtx, gradPos*invBatch, gb)
				}
				for i, n := range negs {
					if gradNegs[i] != 0 {
						model.AccumulateGrad(n, negCtxs[i], gradNegs[i]*invBatch, gb)
					}
				}
			}
			return chunkResult{gb: gb, loss: loss}
		}
	}
	phase := "negsample/scalar"
	if grouped {
		phase = "negsample/batched"
		newWorker = func() func(chunk, lo, hi int) chunkResult {
			negs := make([]kg.Triple, 0, cfg.NegSamples)
			negScores := make([]float32, cfg.NegSamples)
			gradNegs := make([]float32, cfg.NegSamples)
			// Group scratch: objs[0] is always the positive object; the slot
			// arrays map draw order i -> position in its side's group.
			objs := make([]kg.EntityID, 0, 1+cfg.NegSamples)
			subjs := make([]kg.EntityID, 0, cfg.NegSamples)
			objSlot := make([]int, cfg.NegSamples)
			subjSlot := make([]int, cfg.NegSamples)
			objScores := make([]float32, 1+cfg.NegSamples)
			subjScores := make([]float32, cfg.NegSamples)
			objUp := make([]float32, 1+cfg.NegSamples)
			subjUp := make([]float32, cfg.NegSamples)
			// One scratch per side: a group's ctx may alias its scratch, and
			// both groups' ctxs are alive between scoring and backprop.
			var objScr, subjScr kge.GroupScratch
			var src splitmix64
			return func(chunk, lo, hi int) chunkResult {
				gb := kge.NewGradBuffer(model.Params())
				rng := chunkRNG(&src, seed, chunk)
				var loss float64
				for _, pos := range batch[lo:hi] {
					negs = sampler.CorruptN(negs, pos, cfg.NegSamples, rng)
					objs = append(objs[:0], pos.O)
					subjs = subjs[:0]
					for i, n := range negs {
						// Corrupt guarantees the corrupted entity differs from
						// the original, so n.O != pos.O iff the object side
						// was corrupted — unambiguous even for self-loops.
						if n.O != pos.O {
							objSlot[i] = len(objs)
							objs = append(objs, n.O)
						} else {
							objSlot[i] = -1
							subjSlot[i] = len(subjs)
							subjs = append(subjs, n.S)
						}
					}
					objCtx := gt.ScoreObjectsGroup(pos.S, pos.R, objs, objScores[:len(objs)], &objScr)
					var subjCtx kge.GradContext
					if len(subjs) > 0 {
						subjCtx = gt.ScoreSubjectsGroup(pos.R, pos.O, subjs, subjScores[:len(subjs)], &subjScr)
					}
					for i := range negs {
						if s := objSlot[i]; s >= 0 {
							negScores[i] = objScores[s]
						} else {
							negScores[i] = subjScores[subjSlot[i]]
						}
					}
					var gradPos float32
					loss += float64(cfg.Loss.Eval(objScores[0], negScores[:len(negs)], &gradPos, gradNegs[:len(negs)]))
					objUp[0] = gradPos * invBatch
					for i := range negs {
						if s := objSlot[i]; s >= 0 {
							objUp[s] = gradNegs[i] * invBatch
						} else {
							subjUp[subjSlot[i]] = gradNegs[i] * invBatch
						}
					}
					gt.AccumulateGradObjectsGroup(pos.S, pos.R, objs, objCtx, objUp[:len(objs)], gb, &objScr)
					if len(subjs) > 0 {
						gt.AccumulateGradSubjectsGroup(pos.R, pos.O, subjs, subjCtx, subjUp[:len(subjs)], gb, &subjScr)
					}
				}
				return chunkResult{gb: gb, loss: loss}
			}
		}
	}
	results := runChunks(phase, len(batch), cfg.Workers, newWorker)

	merged, totalLoss := mergeChunks(results)
	if merged == nil {
		return 0
	}

	if cfg.L2 > 0 {
		merged.ForEach(func(p *kge.Param, row int, grad []float32) {
			vecmath.Axpy(cfg.L2, p.M.Row(row), grad)
		})
	}
	cfg.Optimizer.Step(merged)
	model.PostBatch()
	return totalLoss
}

// snapshotParams copies the model's parameters, reusing prev's buffers when
// shapes match so repeated best-epoch snapshots stop re-allocating the full
// parameter set (which for a large model dwarfs the epoch's gradient churn).
func snapshotParams(model kge.Trainable, prev map[string][]float32) map[string][]float32 {
	snap := prev
	if snap == nil {
		snap = make(map[string][]float32)
	}
	for _, p := range model.Params().List() {
		data := snap[p.Name]
		if len(data) != len(p.M.Data) {
			data = make([]float32, len(p.M.Data))
		}
		copy(data, p.M.Data)
		snap[p.Name] = data
	}
	return snap
}

func restoreParams(model kge.Trainable, snap map[string][]float32) {
	for _, p := range model.Params().List() {
		if data, ok := snap[p.Name]; ok && len(data) == len(p.M.Data) {
			copy(p.M.Data, data)
		}
	}
}
