// Package train implements the machinery that fits a kge.Trainable to a
// knowledge graph: negative sampling, pairwise and pointwise loss functions,
// sparse-update optimizers (SGD, Adagrad, Adam — the paper trains everything
// with Adam), and a goroutine-parallel mini-batch trainer with optional
// early stopping on a validation metric.
package train

import (
	"fmt"

	"repro/internal/vecmath"
)

// Loss scores one positive triple against its sampled negatives and reports
// the gradient of the loss with respect to each raw model score. gradNegs
// must have the same length as negs. The return value is the loss for
// monitoring; the gradients are what training consumes.
type Loss interface {
	Name() string
	Eval(pos float32, negs []float32, gradPos *float32, gradNegs []float32) float32
}

// MarginRanking is the pairwise hinge loss from the original TransE paper:
// L = Σᵢ max(0, γ − f(pos) + f(negᵢ)).
type MarginRanking struct {
	// Margin is γ; zero means 1.
	Margin float32
}

// Name implements Loss.
func (l MarginRanking) Name() string { return "margin_ranking" }

// Eval implements Loss.
func (l MarginRanking) Eval(pos float32, negs []float32, gradPos *float32, gradNegs []float32) float32 {
	margin := l.Margin
	if margin == 0 {
		margin = 1
	}
	var loss float32
	*gradPos = 0
	for i, neg := range negs {
		gradNegs[i] = 0
		if v := margin - pos + neg; v > 0 {
			loss += v
			*gradPos--
			gradNegs[i] = 1
		}
	}
	return loss
}

// Logistic is the pointwise logistic (negative log-likelihood) loss used to
// train ComplEx and DistMult: L = softplus(−f(pos)) + Σᵢ softplus(f(negᵢ)).
// It is identical to binary cross-entropy on sigmoid outputs with labels
// 1 / 0, which is also how ConvE is trained.
type Logistic struct{}

// Name implements Loss.
func (Logistic) Name() string { return "logistic" }

// Eval implements Loss.
func (Logistic) Eval(pos float32, negs []float32, gradPos *float32, gradNegs []float32) float32 {
	loss := vecmath.Softplus(-pos)
	*gradPos = -vecmath.Sigmoid(-pos) // d softplus(−x)/dx = −σ(−x)
	for i, neg := range negs {
		loss += vecmath.Softplus(neg)
		gradNegs[i] = vecmath.Sigmoid(neg)
	}
	return loss
}

// LossByName resolves a loss from its CLI name.
func LossByName(name string) (Loss, error) {
	switch name {
	case "margin", "margin_ranking":
		return MarginRanking{}, nil
	case "logistic", "bce":
		return Logistic{}, nil
	default:
		return nil, fmt.Errorf("train: unknown loss %q (supported: margin, logistic)", name)
	}
}

// DefaultLossFor returns the conventional loss for a model: margin ranking
// for the translation/correlation models trained that way in the original
// papers, logistic for the (bi)linear and convolutional models.
func DefaultLossFor(model string) Loss {
	switch model {
	case "transe", "hole":
		return MarginRanking{Margin: 1}
	default:
		return Logistic{}
	}
}
