package train

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/vecmath"
)

// KvsAll ("1-N") training, LibKGE's KvsAll train type and the procedure of
// the original ConvE paper: instead of contrasting each positive against k
// sampled corruptions, every distinct (s, r) context in the training graph
// is scored against all entities at once and optimized with binary
// cross-entropy against the multi-hot vector of its true objects. One
// forward/backward pass per context covers N implicit negatives, which is
// what makes ConvE trainable in practice.

// kvsContext is one training example: a context and its true objects.
type kvsContext struct {
	s       kg.EntityID
	r       kg.RelationID
	objects []kg.EntityID
}

// buildKvsContexts groups the training triples by (s, r). The result is
// sorted by (s, r) — and each context's object list by object ID — so batch
// composition depends only on Config.Seed, never on the grouping map's
// iteration order.
func buildKvsContexts(g *kg.Graph) []kvsContext {
	type key struct {
		s kg.EntityID
		r kg.RelationID
	}
	grouped := make(map[key][]kg.EntityID)
	for _, t := range g.Triples() {
		k := key{t.S, t.R}
		grouped[k] = append(grouped[k], t.O)
	}
	out := make([]kvsContext, 0, len(grouped))
	for k, objs := range grouped {
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		out = append(out, kvsContext{s: k.s, r: k.r, objects: objs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].s != out[j].s {
			return out[i].s < out[j].s
		}
		return out[i].r < out[j].r
	})
	return out
}

// RunKvsAll trains model with the KvsAll objective. The model must
// implement kge.KvsAllTrainable (all six models here do). cfg fields
// NegSamples, Loss, FilteredNegatives and BernoulliNegatives are ignored —
// the objective replaces negative sampling entirely. LabelSmoothing (e.g.
// 0.1, the ConvE paper's value) smooths the multi-hot targets.
func RunKvsAll(ctx context.Context, model kge.Trainable, ds *kg.Dataset, cfg Config, labelSmoothing float32) (History, error) {
	kvs, ok := model.(kge.KvsAllTrainable)
	if !ok {
		return History{}, fmt.Errorf("train: model %s does not support KvsAll training", model.Name())
	}
	cfg.setDefaults(model)
	if ds.Train.Len() == 0 {
		return History{}, fmt.Errorf("train: empty training graph")
	}
	if labelSmoothing < 0 || labelSmoothing >= 1 {
		return History{}, fmt.Errorf("train: label smoothing %g outside [0, 1)", labelSmoothing)
	}

	contexts := buildKvsContexts(ds.Train)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := model.NumEntities()

	var hist History
	var best float64
	var bestParams map[string][]float32
	sinceBest := 0

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return hist, err
		}
		start := time.Now()
		rng.Shuffle(len(contexts), func(i, j int) { contexts[i], contexts[j] = contexts[j], contexts[i] })

		var epochLoss float64
		for lo := 0; lo < len(contexts); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(contexts) {
				hi = len(contexts)
			}
			epochLoss += runKvsBatch(kvs, contexts[lo:hi], n, cfg, labelSmoothing)
		}
		epochLoss /= float64(len(contexts))

		stats := EpochStats{
			Epoch: epoch, Loss: epochLoss, Duration: time.Since(start),
			Examples: len(contexts),
		}
		if cfg.Validate != nil && epoch%cfg.EvalEvery == 0 {
			metric := cfg.Validate(model)
			stats.Validation = metric
			if metric > best {
				best = metric
				sinceBest = 0
				bestParams = snapshotParams(model, bestParams)
			} else {
				sinceBest++
			}
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				hist.Epochs = append(hist.Epochs, stats)
				hist.Stopped = true
				break
			}
		}
		hist.Epochs = append(hist.Epochs, stats)
		if cfg.Progress != nil {
			cfg.Progress("epoch %3d  loss %.5f  valid %.4f  (%s, %.0f contexts/s)",
				epoch, stats.Loss, stats.Validation,
				stats.Duration.Round(time.Millisecond), stats.Throughput())
		}
	}
	hist.Best = best
	if bestParams != nil {
		restoreParams(model, bestParams)
	}
	return hist, nil
}

// runKvsBatch processes one batch of contexts (chunked across workers, same
// deterministic reduction as runBatch) and applies a single optimizer step.
// Returns the summed mean-per-entity BCE loss over the batch.
//
// The batched path (ScalarKernels false, model implements
// KvsAllBatchTrainable) scores a whole chunk as one query-matrix × entity-
// table MatMat, runs the fused BCE loss/gradient kernel per context row, and
// backprops the chunk with one AccumulateGradAllObjectsBatch call.
func runKvsBatch(model kge.KvsAllTrainable, batch []kvsContext, n int, cfg Config, smoothing float32) float64 {
	invBatch := 1 / float32(len(batch))
	invN := 1 / float32(n)
	// Multi-hot targets with label smoothing.
	posLabel := (1-smoothing)*1 + smoothing*invN
	negLabel := smoothing * invN

	bt, batched := model.(kge.KvsAllBatchTrainable)
	if cfg.ScalarKernels {
		batched = false
	}
	newWorker := func() func(chunk, lo, hi int) chunkResult {
		scores := make([]float32, n)
		upstream := make([]float32, n)
		return func(chunk, lo, hi int) chunkResult {
			gb := kge.NewGradBuffer(model.Params())
			var loss float64
			for _, c := range batch[lo:hi] {
				model.ScoreAllObjects(c.s, c.r, scores)
				var ctxLoss float64
				pi := 0
				for o := 0; o < n; o++ {
					y := negLabel
					// Two-pointer merge over the sorted object list replaces
					// the per-context positives map; the float ops and their
					// order are unchanged, so scalar digests are preserved.
					if pi < len(c.objects) && c.objects[pi] == kg.EntityID(o) {
						y = posLabel
						for pi < len(c.objects) && c.objects[pi] == kg.EntityID(o) {
							pi++
						}
					}
					p := vecmath.Sigmoid(scores[o])
					// BCE loss and its gradient w.r.t. the raw score.
					ctxLoss += bce(scores[o], y)
					upstream[o] = (p - y) * invBatch * invN
				}
				loss += ctxLoss * float64(invN)
				model.AccumulateGradAllObjects(c.s, c.r, upstream, gb)
			}
			return chunkResult{gb: gb, loss: loss}
		}
	}
	phase := "kvsall/scalar"
	if batched {
		phase = "kvsall/batched"
		gradScale := invBatch * invN
		newWorker = func() func(chunk, lo, hi int) chunkResult {
			scores := vecmath.NewMatrix(gradChunkSize, n)
			upstream := vecmath.NewMatrix(gradChunkSize, n)
			ss := make([]kg.EntityID, gradChunkSize)
			rs := make([]kg.RelationID, gradChunkSize)
			var positives []int32
			return func(chunk, lo, hi int) chunkResult {
				gb := kge.NewGradBuffer(model.Params())
				k := hi - lo
				for j, c := range batch[lo:hi] {
					ss[j], rs[j] = c.s, c.r
				}
				scoresK := &vecmath.Matrix{Rows: k, Cols: n, Data: scores.Data[:k*n]}
				upstreamK := &vecmath.Matrix{Rows: k, Cols: n, Data: upstream.Data[:k*n]}
				bt.ScoreContextsBatch(ss[:k], rs[:k], scoresK)
				var loss float64
				for j, c := range batch[lo:hi] {
					positives = positives[:0]
					for _, o := range c.objects {
						positives = append(positives, int32(o))
					}
					ctxLoss := vecmath.BCEFusedGrad(upstreamK.Row(j), scoresK.Row(j),
						positives, posLabel, negLabel, gradScale)
					loss += ctxLoss * float64(invN)
				}
				bt.AccumulateGradAllObjectsBatch(ss[:k], rs[:k], upstreamK, gb)
				return chunkResult{gb: gb, loss: loss}
			}
		}
	}
	results := runChunks(phase, len(batch), cfg.Workers, newWorker)

	merged, totalLoss := mergeChunks(results)
	if merged == nil {
		return 0
	}
	if cfg.L2 > 0 {
		merged.ForEach(func(p *kge.Param, row int, grad []float32) {
			vecmath.Axpy(cfg.L2, p.M.Row(row), grad)
		})
	}
	cfg.Optimizer.Step(merged)
	model.PostBatch()
	return totalLoss
}

// bce is the numerically stable binary cross-entropy on a raw score:
// softplus(score) − y·score.
func bce(score, y float32) float64 {
	return float64(vecmath.Softplus(score) - y*score)
}
