package train

import (
	"context"
	"math"
	"testing"

	"repro/internal/kge"
)

// The batched kernels reassociate float32 accumulation and swap the exact
// float64 transcendentals for the Fast* float32 ones, so batched and scalar
// digests legitimately differ. These tests pin the toggle to *numerical*
// equivalence: after a short training run the two parameter sets must agree
// element-wise within a scale-relative tolerance. SGD + Logistic keeps the
// comparison well-conditioned — Adam's per-element second-moment rescaling
// amplifies ulp-level kernel differences, and margin losses flip hinge
// activations on score ties, neither of which is a kernel bug.

const equivTol = 2e-3

func compareModelParams(t *testing.T, name string, a, b kge.Trainable) {
	t.Helper()
	bp := make(map[string][]float32)
	for _, p := range b.Params().List() {
		bp[p.Name] = p.M.Data
	}
	for _, p := range a.Params().List() {
		other, ok := bp[p.Name]
		if !ok || len(other) != len(p.M.Data) {
			t.Fatalf("%s: parameter %s missing or shape-mismatched in scalar run", name, p.Name)
		}
		bad := 0
		for i, v := range p.M.Data {
			ref := float64(other[i])
			if d := math.Abs(float64(v) - ref); d > equivTol*(1+math.Abs(ref)) {
				if bad < 3 {
					t.Errorf("%s: %s[%d] batched %v vs scalar %v", name, p.Name, i, v, other[i])
				}
				bad++
			}
		}
		if bad > 3 {
			t.Errorf("%s: %s has %d further mismatches", name, p.Name, bad-3)
		}
	}
}

// TestRunBatchedMatchesScalar trains every model under the sampled objective
// with kernels on and off and requires tolerance-equal parameters.
func TestRunBatchedMatchesScalar(t *testing.T) {
	ds := tinyDataset(t)
	for _, name := range kge.ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			train := func(scalar bool) kge.Trainable {
				m := determinismModel(t, name, ds)
				_, err := Run(context.Background(), m, ds, Config{
					Epochs: 2, BatchSize: 64, NegSamples: 2, Seed: 17, Workers: 2,
					Loss: Logistic{}, Optimizer: NewSGD(0.05), ScalarKernels: scalar,
				})
				if err != nil {
					t.Fatalf("train %s (scalar=%v): %v", name, scalar, err)
				}
				return m
			}
			compareModelParams(t, name, train(false), train(true))
		})
	}
}

// TestRunKvsAllBatchedMatchesScalar is the KvsAll counterpart: the MatMat
// forward, fused BCE kernel, and chunk-batched backward must land within
// tolerance of the exact per-entity scalar loop.
func TestRunKvsAllBatchedMatchesScalar(t *testing.T) {
	ds := tinyDataset(t)
	for _, name := range kge.ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			train := func(scalar bool) kge.Trainable {
				m := determinismModel(t, name, ds)
				_, err := RunKvsAll(context.Background(), m, ds, Config{
					Epochs: 2, BatchSize: 32, Seed: 17, Workers: 2,
					Optimizer: NewSGD(0.05), ScalarKernels: scalar,
				}, 0.1)
				if err != nil {
					t.Fatalf("KvsAll train %s (scalar=%v): %v", name, scalar, err)
				}
				return m
			}
			compareModelParams(t, name, train(false), train(true))
		})
	}
}
