package train

import (
	"fmt"
	"math"

	"repro/internal/kge"
	"repro/internal/vecmath"
)

// Optimizer applies one accumulated sparse gradient step to a model's
// parameters. Implementations keep per-parameter state keyed by row, so only
// the rows a batch touched pay any cost ("lazy" updates, the standard
// approach for embedding tables).
type Optimizer interface {
	Name() string
	Step(gb *kge.GradBuffer)
}

// NewSGD returns plain stochastic gradient descent with learning rate lr.
func NewSGD(lr float32) Optimizer { return &sgd{lr: lr} }

type sgd struct{ lr float32 }

func (s *sgd) Name() string { return "sgd" }

func (s *sgd) Step(gb *kge.GradBuffer) {
	gb.ForEach(func(p *kge.Param, row int, grad []float32) {
		vecmath.Axpy(-s.lr, grad, p.M.Row(row))
	})
}

// NewAdagrad returns Adagrad (Duchi et al., 2011) with learning rate lr.
func NewAdagrad(lr float32) Optimizer {
	return &adagrad{lr: lr, eps: 1e-8, accum: map[string][]float32{}}
}

type adagrad struct {
	lr    float32
	eps   float32
	accum map[string][]float32 // per parameter: squared-gradient accumulator
}

func (a *adagrad) Name() string { return "adagrad" }

func (a *adagrad) Step(gb *kge.GradBuffer) {
	gb.ForEach(func(p *kge.Param, row int, grad []float32) {
		acc, ok := a.accum[p.Name]
		if !ok {
			acc = make([]float32, len(p.M.Data))
			a.accum[p.Name] = acc
		}
		w := p.M.Row(row)
		base := row * p.M.Cols
		for i, g := range grad {
			acc[base+i] += g * g
			w[i] -= a.lr * g / (float32(math.Sqrt(float64(acc[base+i]))) + a.eps)
		}
	})
}

// NewAdam returns Adam (Kingma & Ba, 2014) with the given learning rate and
// the standard β₁=0.9, β₂=0.999, ε=1e-8. This is the optimizer the paper
// uses for all models. Bias correction is tracked per row, which is the
// correct "lazy Adam" treatment for sparsely updated embedding tables.
func NewAdam(lr float32) Optimizer {
	return &adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: map[string][]float32{}, v: map[string][]float32{}, t: map[string][]int32{},
	}
}

type adam struct {
	lr, beta1, beta2, eps float32

	m map[string][]float32 // first-moment estimates
	v map[string][]float32 // second-moment estimates
	t map[string][]int32   // per-row step counts for bias correction
}

func (a *adam) Name() string { return "adam" }

func (a *adam) Step(gb *kge.GradBuffer) {
	gb.ForEach(func(p *kge.Param, row int, grad []float32) {
		m, ok := a.m[p.Name]
		if !ok {
			m = make([]float32, len(p.M.Data))
			a.m[p.Name] = m
			a.v[p.Name] = make([]float32, len(p.M.Data))
			a.t[p.Name] = make([]int32, p.M.Rows)
		}
		v := a.v[p.Name]
		a.t[p.Name][row]++
		t := float64(a.t[p.Name][row])
		c1 := float32(1 - math.Pow(float64(a.beta1), t))
		c2 := float32(1 - math.Pow(float64(a.beta2), t))

		w := p.M.Row(row)
		base := row * p.M.Cols
		for i, g := range grad {
			m[base+i] = a.beta1*m[base+i] + (1-a.beta1)*g
			v[base+i] = a.beta2*v[base+i] + (1-a.beta2)*g*g
			mh := m[base+i] / c1
			vh := v[base+i] / c2
			w[i] -= a.lr * mh / (float32(math.Sqrt(float64(vh))) + a.eps)
		}
	})
}

// OptimizerByName resolves an optimizer from its CLI name.
func OptimizerByName(name string, lr float32) (Optimizer, error) {
	switch name {
	case "adam":
		return NewAdam(lr), nil
	case "adagrad":
		return NewAdagrad(lr), nil
	case "sgd":
		return NewSGD(lr), nil
	default:
		return nil, fmt.Errorf("train: unknown optimizer %q (supported: adam, adagrad, sgd)", name)
	}
}
