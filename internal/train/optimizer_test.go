package train

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
)

func mustTinyDataset(t *testing.T) *kg.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatalf("generate tiny dataset: %v", err)
	}
	return ds
}

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// quadSetup builds a 1-parameter "model" whose loss is (w-target)²,
// minimized by gradient descent through the optimizer under test.
func quadSetup() (*kge.ParamSet, *kge.Param) {
	ps := kge.NewParamSet()
	p := ps.Add("w", 1, 1)
	p.M.Data[0] = 5
	return ps, p
}

// descend runs n optimizer steps on the quadratic (w − target)².
func descend(opt Optimizer, ps *kge.ParamSet, p *kge.Param, target float32, n int) {
	for i := 0; i < n; i++ {
		gb := kge.NewGradBuffer(ps)
		grad := 2 * (p.M.Data[0] - target)
		gb.Row("w", 0)[0] = grad
		opt.Step(gb)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	ps, p := quadSetup()
	descend(NewSGD(0.1), ps, p, 2, 200)
	if math.Abs(float64(p.M.Data[0])-2) > 1e-3 {
		t.Errorf("SGD converged to %g, want 2", p.M.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	ps, p := quadSetup()
	descend(NewAdam(0.1), ps, p, 2, 500)
	if math.Abs(float64(p.M.Data[0])-2) > 1e-2 {
		t.Errorf("Adam converged to %g, want 2", p.M.Data[0])
	}
}

func TestAdagradConvergesOnQuadratic(t *testing.T) {
	ps, p := quadSetup()
	descend(NewAdagrad(0.5), ps, p, 2, 2000)
	if math.Abs(float64(p.M.Data[0])-2) > 5e-2 {
		t.Errorf("Adagrad converged to %g, want 2", p.M.Data[0])
	}
}

func TestSGDStepIsExact(t *testing.T) {
	ps := kge.NewParamSet()
	p := ps.Add("w", 2, 2)
	gb := kge.NewGradBuffer(ps)
	gb.Row("w", 1)[0] = 4
	NewSGD(0.25).Step(gb)
	if p.M.Row(1)[0] != -1 {
		t.Errorf("w[1][0] = %g, want -1", p.M.Row(1)[0])
	}
	// Untouched rows stay untouched.
	if p.M.Row(0)[0] != 0 {
		t.Errorf("untouched row modified: %g", p.M.Row(0)[0])
	}
}

func TestAdamFirstStepIsLearningRateSized(t *testing.T) {
	// With bias correction, Adam's first step is ≈ lr regardless of
	// gradient magnitude.
	ps := kge.NewParamSet()
	p := ps.Add("w", 1, 1)
	gb := kge.NewGradBuffer(ps)
	gb.Row("w", 0)[0] = 1000
	NewAdam(0.1).Step(gb)
	if math.Abs(float64(p.M.Data[0])+0.1) > 1e-3 {
		t.Errorf("first Adam step = %g, want ≈ -0.1", p.M.Data[0])
	}
}

func TestAdamSparseRowsHaveIndependentState(t *testing.T) {
	// Row 0 gets many updates, row 1 gets its first late: row 1's bias
	// correction must treat it as step 1, not step N (lazy Adam).
	ps := kge.NewParamSet()
	p := ps.Add("w", 2, 1)
	opt := NewAdam(0.1)
	for i := 0; i < 10; i++ {
		gb := kge.NewGradBuffer(ps)
		gb.Row("w", 0)[0] = 1
		opt.Step(gb)
	}
	gb := kge.NewGradBuffer(ps)
	gb.Row("w", 1)[0] = 1
	opt.Step(gb)
	if math.Abs(float64(p.M.Row(1)[0])+0.1) > 1e-3 {
		t.Errorf("late row's first step = %g, want ≈ -0.1 (per-row bias correction)", p.M.Row(1)[0])
	}
}

func TestOptimizerByName(t *testing.T) {
	for _, name := range []string{"adam", "adagrad", "sgd"} {
		opt, err := OptimizerByName(name, 0.01)
		if err != nil {
			t.Fatalf("OptimizerByName(%s): %v", name, err)
		}
		if opt.Name() != name {
			t.Errorf("optimizer %q reports %q", name, opt.Name())
		}
	}
	if _, err := OptimizerByName("lion", 0.01); err == nil {
		t.Error("accepted unknown optimizer")
	}
}

func TestNegativeSamplerProducesCorruptions(t *testing.T) {
	ds := mustTinyDataset(t)
	ns := &NegativeSampler{NumEntities: ds.Train.Entities.Len()}
	rng := newTestRNG(11)
	pos := ds.Train.Triples()[0]
	subjectChanged, objectChanged := false, false
	for i := 0; i < 200; i++ {
		c := ns.Corrupt(pos, rng)
		if c == pos {
			t.Fatal("corruption equals the positive")
		}
		if c.R != pos.R {
			t.Fatal("corruption changed the relation")
		}
		if c.S != pos.S {
			subjectChanged = true
			if c.O != pos.O {
				t.Fatal("corruption changed both sides")
			}
		}
		if c.O != pos.O {
			objectChanged = true
		}
	}
	if !subjectChanged || !objectChanged {
		t.Error("sampler never corrupted one of the sides")
	}
}

func TestNegativeSamplerFiltered(t *testing.T) {
	ds := mustTinyDataset(t)
	ns := &NegativeSampler{
		NumEntities: ds.Train.Entities.Len(),
		Filtered:    true,
		Filter:      ds.Train,
	}
	rng := newTestRNG(13)
	misses := 0
	for i := 0; i < 500; i++ {
		pos := ds.Train.Triples()[i%ds.Train.Len()]
		c := ns.Corrupt(pos, rng)
		if ds.Train.Contains(c) {
			misses++
		}
	}
	// The bounded retry allows rare leaks; they must be rare.
	if misses > 5 {
		t.Errorf("%d/500 filtered corruptions were true triples", misses)
	}
}

func TestNegativeSamplerSubjectProb(t *testing.T) {
	ds := mustTinyDataset(t)
	ns := &NegativeSampler{NumEntities: ds.Train.Entities.Len(), SubjectProb: 1.0}
	rng := newTestRNG(17)
	pos := ds.Train.Triples()[0]
	for i := 0; i < 100; i++ {
		if c := ns.Corrupt(pos, rng); c.O != pos.O {
			t.Fatal("SubjectProb=1 corrupted the object")
		}
	}
}

func TestBernoulliNegativeSampling(t *testing.T) {
	// Build a graph with a strongly one-to-many relation: one head, many
	// tails. tph >> hpt, so Bernoulli corruption should mostly replace the
	// subject.
	g := kg.NewGraph()
	for i := 0; i < 30; i++ {
		g.Entities.Intern(string(rune('a' + i)))
	}
	g.Relations.Intern("one2many")
	for o := 1; o < 25; o++ {
		g.Add(kg.Triple{S: 0, R: 0, O: kg.EntityID(o)})
	}
	ns := &NegativeSampler{NumEntities: g.NumEntities()}
	ns.FitBernoulli(g)
	rng := newTestRNG(23)
	pos := g.Triples()[0]
	subjectCorruptions := 0
	const draws = 400
	for i := 0; i < draws; i++ {
		if c := ns.Corrupt(pos, rng); c.S != pos.S {
			subjectCorruptions++
		}
	}
	// tph = 24, hpt = 1 → P(subject) = 24/25 = 0.96.
	if frac := float64(subjectCorruptions) / draws; frac < 0.85 {
		t.Errorf("subject corruption fraction %.2f, want ≈ 0.96 for a one-to-many relation", frac)
	}
}

func TestBernoulliViaTrainerConfig(t *testing.T) {
	ds := mustTinyDataset(t)
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), m, ds, Config{
		Epochs: 2, BatchSize: 64, Seed: 3, BernoulliNegatives: true,
	}); err != nil {
		t.Fatalf("training with Bernoulli negatives: %v", err)
	}
}

func TestCorruptN(t *testing.T) {
	ds := mustTinyDataset(t)
	ns := &NegativeSampler{NumEntities: ds.Train.Entities.Len()}
	rng := newTestRNG(19)
	out := ns.CorruptN(nil, ds.Train.Triples()[0], 7, rng)
	if len(out) != 7 {
		t.Fatalf("CorruptN returned %d, want 7", len(out))
	}
	// Reusing the buffer must not grow it.
	out2 := ns.CorruptN(out, ds.Train.Triples()[1], 3, rng)
	if len(out2) != 3 {
		t.Fatalf("CorruptN reuse returned %d, want 3", len(out2))
	}
}
