package train

import (
	"math/rand"

	"repro/internal/kg"
)

// NegativeSampler produces corrupted triples for contrastive training: given
// a positive (s, r, o) it replaces the subject or object with a random
// entity. With Filtered set, corruptions that happen to be true triples of
// the training graph are re-drawn (up to a bounded number of attempts —
// sampling must never loop forever on pathological graphs).
type NegativeSampler struct {
	// NumEntities is the entity vocabulary size to draw replacements from.
	NumEntities int
	// Filtered re-draws corruptions that exist in the filter graph.
	Filtered bool
	// Filter is the graph consulted when Filtered is set (usually train).
	Filter *kg.Graph
	// SubjectProb is the probability of corrupting the subject side
	// (0.5 by default via zero value handling in Corrupt).
	SubjectProb float64
	// bernoulli holds per-relation subject-corruption probabilities when
	// FitBernoulli has been called; it overrides SubjectProb.
	bernoulli map[kg.RelationID]float64
}

// FitBernoulli computes per-relation corruption-side probabilities from g
// using the Bernoulli scheme of Wang et al. (2014): for relation r with
// tph = mean tails per head and hpt = mean heads per tail, the subject is
// corrupted with probability tph / (tph + hpt). One-to-many relations thus
// mostly corrupt subjects and many-to-one relations mostly corrupt objects,
// which reduces false negatives.
func (ns *NegativeSampler) FitBernoulli(g *kg.Graph) {
	ns.bernoulli = make(map[kg.RelationID]float64)
	for _, r := range g.RelationIDs() {
		heads := len(g.SideEntities(r, kg.SubjectSide))
		tails := len(g.SideEntities(r, kg.ObjectSide))
		triples := len(g.RelationTriples(r))
		if heads == 0 || tails == 0 || triples == 0 {
			continue
		}
		tph := float64(triples) / float64(heads)
		hpt := float64(triples) / float64(tails)
		ns.bernoulli[r] = tph / (tph + hpt)
	}
}

// Corrupt returns one corruption of t.
func (ns *NegativeSampler) Corrupt(t kg.Triple, rng *rand.Rand) kg.Triple {
	p := ns.SubjectProb
	if bp, ok := ns.bernoulli[t.R]; ok {
		p = bp
	}
	if p == 0 {
		p = 0.5
	}
	side := kg.ObjectSide
	if rng.Float64() < p {
		side = kg.SubjectSide
	}
	const maxAttempts = 32
	for attempt := 0; attempt < maxAttempts; attempt++ {
		e := kg.EntityID(rng.Intn(ns.NumEntities))
		c := t.Corrupted(side, e)
		if c == t {
			continue
		}
		if ns.Filtered && ns.Filter != nil && ns.Filter.Contains(c) {
			continue
		}
		return c
	}
	// Give up on filtering; return any distinct corruption.
	for {
		e := kg.EntityID(rng.Intn(ns.NumEntities))
		if c := t.Corrupted(side, e); c != t {
			return c
		}
	}
}

// CorruptN fills dst with n corruptions of t and returns it.
func (ns *NegativeSampler) CorruptN(dst []kg.Triple, t kg.Triple, n int, rng *rand.Rand) []kg.Triple {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, ns.Corrupt(t, rng))
	}
	return dst
}
