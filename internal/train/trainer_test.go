package train

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
)

// trainTinyModel trains the given model type briefly on the tiny synthetic
// dataset and returns the test MRR alongside the random-guessing baseline.
func trainTinyModel(t *testing.T, modelName string) (mrr, baseline float64) {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatalf("generate tiny dataset: %v", err)
	}
	m, err := kge.New(modelName, kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          16,
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("new %s: %v", modelName, err)
	}
	_, err = Run(context.Background(), m, ds, Config{
		Epochs:     30,
		BatchSize:  64,
		NegSamples: 4,
		Seed:       42,
	})
	if err != nil {
		t.Fatalf("train %s: %v", modelName, err)
	}
	ranker := eval.NewRanker(m, ds.All())
	res := eval.Evaluate(ranker, ds.Test, eval.Options{})
	// Random guessing over N entities has expected MRR ≈ ln(N)/N.
	n := float64(ds.Train.Entities.Len())
	return res.MRR, harmonicMean(n)
}

func harmonicMean(n float64) float64 {
	var h float64
	for i := 1.0; i <= n; i++ {
		h += 1 / i
	}
	return h / n
}

func TestTrainingBeatsRandomBaseline(t *testing.T) {
	for _, model := range []string{"transe", "distmult", "complex", "rescal", "hole", "conve"} {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			mrr, baseline := trainTinyModel(t, model)
			t.Logf("%s: test MRR %.4f (random baseline %.4f)", model, mrr, baseline)
			if mrr < 2*baseline {
				t.Errorf("%s: MRR %.4f did not beat 2x random baseline %.4f", model, mrr, baseline)
			}
		})
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          16,
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	hist, err := Run(context.Background(), m, ds, Config{Epochs: 20, BatchSize: 64, Seed: 9})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	first := hist.Epochs[0].Loss
	last := hist.Epochs[len(hist.Epochs)-1].Loss
	if last >= first {
		t.Errorf("loss did not decrease: first %.5f, last %.5f", first, last)
	}
}

func TestTrainingEarlyStopping(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	hist, err := Run(context.Background(), m, ds, Config{
		Epochs:    100,
		BatchSize: 64,
		Seed:      3,
		EvalEvery: 1,
		Patience:  2,
		// A metric that never improves forces stopping after Patience evals.
		Validate: func(kge.Model) float64 { calls++; return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hist.Stopped {
		t.Error("early stopping did not trigger")
	}
	if len(hist.Epochs) >= 100 {
		t.Errorf("trained all %d epochs despite a flat metric", len(hist.Epochs))
	}
	if calls < 2 {
		t.Errorf("Validate called %d times, want >= 2", calls)
	}
}

func TestTrainingRestoresBestParams(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Metric peaks at the 2nd evaluation then collapses: the returned model
	// must carry the epoch-2 parameters, which we fingerprint via a score.
	var peakScore float32
	calls := 0
	probe := ds.Train.Triples()[0]
	_, err = Run(context.Background(), m, ds, Config{
		Epochs:    6,
		BatchSize: 64,
		Seed:      3,
		EvalEvery: 1,
		Validate: func(model kge.Model) float64 {
			calls++
			if calls == 2 {
				peakScore = model.Score(probe)
				return 1.0
			}
			return 0.1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(probe) != peakScore {
		t.Errorf("best parameters not restored: score %g, want %g", m.Score(probe), peakScore)
	}
}

func TestTrainingEmptyGraphErrors(t *testing.T) {
	ds := &kg.Dataset{Name: "empty", Train: kg.NewGraph(), Valid: kg.NewGraph(), Test: kg.NewGraph()}
	m, err := kge.New("distmult", kge.Config{NumEntities: 2, NumRelations: 1, Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), m, ds, Config{Epochs: 1}); err == nil {
		t.Fatal("expected error for empty training graph")
	}
}

func TestTrainingContextCancelled(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, m, ds, Config{Epochs: 5}); err == nil {
		t.Fatal("expected context error")
	}
}

func TestTrainingDeterministicSingleWorker(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	score := func() float32 {
		m, err := kge.New("distmult", kge.Config{
			NumEntities:  ds.Train.Entities.Len(),
			NumRelations: ds.Train.Relations.Len(),
			Dim:          8,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), m, ds, Config{
			Epochs: 3, BatchSize: 64, Seed: 21, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
		return m.Score(ds.Train.Triples()[0])
	}
	if a, b := score(), score(); a != b {
		t.Errorf("single-worker training not deterministic: %g vs %g", a, b)
	}
}
