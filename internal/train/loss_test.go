package train

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMarginRankingKnownValues(t *testing.T) {
	l := MarginRanking{Margin: 1}
	var gradPos float32
	gradNegs := make([]float32, 2)

	// pos far above both negatives: no violation, zero loss and gradients.
	loss := l.Eval(5, []float32{1, 2}, &gradPos, gradNegs)
	if loss != 0 || gradPos != 0 || gradNegs[0] != 0 || gradNegs[1] != 0 {
		t.Errorf("satisfied margin: loss=%g gradPos=%g gradNegs=%v", loss, gradPos, gradNegs)
	}

	// pos=1, neg=1: violation of exactly the margin.
	loss = l.Eval(1, []float32{1, -5}, &gradPos, gradNegs)
	if loss != 1 {
		t.Errorf("loss = %g, want 1", loss)
	}
	if gradPos != -1 {
		t.Errorf("gradPos = %g, want -1", gradPos)
	}
	if gradNegs[0] != 1 || gradNegs[1] != 0 {
		t.Errorf("gradNegs = %v, want [1 0]", gradNegs)
	}
}

func TestMarginDefaultsToOne(t *testing.T) {
	l := MarginRanking{}
	var gradPos float32
	gradNegs := make([]float32, 1)
	if loss := l.Eval(0, []float32{0}, &gradPos, gradNegs); loss != 1 {
		t.Errorf("zero-margin default broken: loss = %g, want 1", loss)
	}
}

func TestLogisticKnownValues(t *testing.T) {
	l := Logistic{}
	var gradPos float32
	gradNegs := make([]float32, 1)
	loss := l.Eval(0, []float32{0}, &gradPos, gradNegs)
	want := 2 * math.Ln2 // softplus(0) twice
	if math.Abs(float64(loss)-want) > 1e-5 {
		t.Errorf("loss = %g, want %g", loss, want)
	}
	if math.Abs(float64(gradPos)+0.5) > 1e-5 {
		t.Errorf("gradPos = %g, want -0.5", gradPos)
	}
	if math.Abs(float64(gradNegs[0])-0.5) > 1e-5 {
		t.Errorf("gradNeg = %g, want 0.5", gradNegs[0])
	}
}

// Property: logistic loss decreases in pos and increases in neg, and its
// gradients have the corresponding signs everywhere.
func TestPropertyLogisticMonotone(t *testing.T) {
	l := Logistic{}
	f := func(pos, neg float32) bool {
		if pos > 20 || pos < -20 || neg > 20 || neg < -20 {
			return true // avoid saturated regions where float32 rounds to 0
		}
		var gradPos float32
		gradNegs := make([]float32, 1)
		l.Eval(pos, []float32{neg}, &gradPos, gradNegs)
		return gradPos <= 0 && gradNegs[0] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: margin loss is non-negative and gradients appear only for
// violated pairs.
func TestPropertyMarginNonNegative(t *testing.T) {
	l := MarginRanking{Margin: 2}
	f := func(pos float32, negs [3]float32) bool {
		var gradPos float32
		gradNegs := make([]float32, 3)
		loss := l.Eval(pos, negs[:], &gradPos, gradNegs)
		if loss < 0 {
			return false
		}
		for i, n := range negs {
			violated := 2-pos+n > 0
			if violated != (gradNegs[i] != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLossByName(t *testing.T) {
	for _, name := range []string{"margin", "margin_ranking", "logistic", "bce"} {
		if _, err := LossByName(name); err != nil {
			t.Errorf("LossByName(%s): %v", name, err)
		}
	}
	if _, err := LossByName("hinge-of-doom"); err == nil {
		t.Error("accepted unknown loss")
	}
}

func TestDefaultLossFor(t *testing.T) {
	if _, ok := DefaultLossFor("transe").(MarginRanking); !ok {
		t.Error("transe default should be margin ranking")
	}
	if _, ok := DefaultLossFor("hole").(MarginRanking); !ok {
		t.Error("hole default should be margin ranking")
	}
	if _, ok := DefaultLossFor("complex").(Logistic); !ok {
		t.Error("complex default should be logistic")
	}
	if _, ok := DefaultLossFor("conve").(Logistic); !ok {
		t.Error("conve default should be logistic")
	}
}
