package train

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/kge"
	"repro/internal/synth"
)

func TestKvsAllTrainingBeatsRandom(t *testing.T) {
	for _, modelName := range []string{"distmult", "conve"} {
		modelName := modelName
		t.Run(modelName, func(t *testing.T) {
			t.Parallel()
			ds, err := synth.Generate(synth.Tiny())
			if err != nil {
				t.Fatal(err)
			}
			m, err := kge.New(modelName, kge.Config{
				NumEntities:  ds.Train.Entities.Len(),
				NumRelations: ds.Train.Relations.Len(),
				Dim:          16,
				Seed:         1,
			})
			if err != nil {
				t.Fatal(err)
			}
			hist, err := RunKvsAll(context.Background(), m, ds, Config{
				Epochs:       30,
				BatchSize:    32,
				LearningRate: 0.05,
				Seed:         4,
			}, 0.1)
			if err != nil {
				t.Fatalf("RunKvsAll: %v", err)
			}
			if len(hist.Epochs) == 0 {
				t.Fatal("no epochs recorded")
			}
			first, last := hist.Epochs[0].Loss, hist.Epochs[len(hist.Epochs)-1].Loss
			if last >= first {
				t.Errorf("KvsAll loss did not decrease: %.5f -> %.5f", first, last)
			}
			res := eval.Evaluate(eval.NewRanker(m, ds.All()), ds.Test, eval.Options{})
			baseline := harmonicMean(float64(ds.Train.Entities.Len()))
			t.Logf("%s KvsAll: test MRR %.4f (random %.4f)", modelName, res.MRR, baseline)
			if res.MRR < 2*baseline {
				t.Errorf("KvsAll-trained %s MRR %.4f did not beat 2x random %.4f", modelName, res.MRR, baseline)
			}
		})
	}
}

func TestKvsAllRejectsBadInput(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunKvsAll(context.Background(), m, ds, Config{Epochs: 1}, 1.5); err == nil {
		t.Error("accepted label smoothing >= 1")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunKvsAll(ctx, m, ds, Config{Epochs: 2}, 0); err == nil {
		t.Error("ignored cancelled context")
	}
}

func TestBuildKvsContextsGroups(t *testing.T) {
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	contexts := buildKvsContexts(ds.Train)
	total := 0
	for _, c := range contexts {
		if len(c.objects) == 0 {
			t.Fatal("context with no objects")
		}
		total += len(c.objects)
	}
	if total != ds.Train.Len() {
		t.Errorf("grouped %d objects, want %d triples", total, ds.Train.Len())
	}
	if len(contexts) >= ds.Train.Len() {
		t.Log("every (s,r) context unique — acceptable for a tiny random graph")
	}
}
