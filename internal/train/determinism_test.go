package train

import (
	"context"
	"sort"
	"testing"

	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
)

// Training must be bit-deterministic for any worker count: the unit of
// gradient accumulation is the fixed-size chunk, so -workers 1 and
// -workers 4 walk the same float addition order. These tests train every
// model under both objectives at different worker counts and require
// byte-identical parameters via kge.Fingerprint.

func tinyDataset(t *testing.T) *kg.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatalf("generate tiny dataset: %v", err)
	}
	return ds
}

func determinismModel(t *testing.T, name string, ds *kg.Dataset) kge.Trainable {
	t.Helper()
	m, err := kge.New(name, kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          16,
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("new %s: %v", name, err)
	}
	return m
}

// kernelModes names both trainer hot paths; worker-count invariance must
// hold for each independently (the two modes define different digests).
var kernelModes = []struct {
	name   string
	scalar bool
}{
	{"batched", false},
	{"scalar", true},
}

func TestRunWorkerCountInvariant(t *testing.T) {
	ds := tinyDataset(t)
	for _, mode := range kernelModes {
		for _, name := range kge.ModelNames() {
			name, mode := name, mode
			t.Run(mode.name+"/"+name, func(t *testing.T) {
				t.Parallel()
				train := func(workers int) string {
					m := determinismModel(t, name, ds)
					_, err := Run(context.Background(), m, ds, Config{
						Epochs: 2, BatchSize: 64, NegSamples: 2, Seed: 17,
						Workers: workers, ScalarKernels: mode.scalar,
					})
					if err != nil {
						t.Fatalf("train %s (workers=%d): %v", name, workers, err)
					}
					return kge.Fingerprint(m)
				}
				w1, w4, w4b := train(1), train(4), train(4)
				if w1 != w4 {
					t.Errorf("%s: workers=1 digest %s != workers=4 digest %s", name, w1, w4)
				}
				if w4 != w4b {
					t.Errorf("%s: repeated workers=4 runs diverged: %s vs %s", name, w4, w4b)
				}
			})
		}
	}
}

func TestRunKvsAllWorkerCountInvariant(t *testing.T) {
	ds := tinyDataset(t)
	for _, mode := range kernelModes {
		for _, name := range kge.ModelNames() {
			name, mode := name, mode
			t.Run(mode.name+"/"+name, func(t *testing.T) {
				t.Parallel()
				train := func(workers int) string {
					m := determinismModel(t, name, ds)
					_, err := RunKvsAll(context.Background(), m, ds, Config{
						Epochs: 2, BatchSize: 32, Seed: 17,
						Workers: workers, ScalarKernels: mode.scalar,
					}, 0.1)
					if err != nil {
						t.Fatalf("KvsAll train %s (workers=%d): %v", name, workers, err)
					}
					return kge.Fingerprint(m)
				}
				if w1, w4 := train(1), train(4); w1 != w4 {
					t.Errorf("%s: KvsAll workers=1 digest %s != workers=4 digest %s", name, w1, w4)
				}
			})
		}
	}
}

func TestBuildKvsContextsSorted(t *testing.T) {
	ds := tinyDataset(t)
	contexts := buildKvsContexts(ds.Train)
	ordered := sort.SliceIsSorted(contexts, func(i, j int) bool {
		if contexts[i].s != contexts[j].s {
			return contexts[i].s < contexts[j].s
		}
		return contexts[i].r < contexts[j].r
	})
	if !ordered {
		t.Error("contexts not sorted by (s, r)")
	}
	for _, c := range contexts {
		if !sort.SliceIsSorted(c.objects, func(i, j int) bool { return c.objects[i] < c.objects[j] }) {
			t.Errorf("objects of (%d, %d) not sorted", c.s, c.r)
		}
	}
	// Two builds over the same graph must agree element-for-element.
	again := buildKvsContexts(ds.Train)
	if len(again) != len(contexts) {
		t.Fatalf("rebuild produced %d contexts, want %d", len(again), len(contexts))
	}
	for i := range contexts {
		a, b := contexts[i], again[i]
		if a.s != b.s || a.r != b.r || len(a.objects) != len(b.objects) {
			t.Fatalf("context %d differs between builds: %+v vs %+v", i, a, b)
		}
		for j := range a.objects {
			if a.objects[j] != b.objects[j] {
				t.Fatalf("context %d object %d differs: %d vs %d", i, j, a.objects[j], b.objects[j])
			}
		}
	}
}
