package mutate

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

var testArtifacts struct {
	once sync.Once
	ds   *kg.Dataset
	m    kge.Trainable
	err  error
}

func testModel(t testing.TB) (*kg.Dataset, kge.Trainable) {
	t.Helper()
	testArtifacts.once.Do(func() {
		ds, err := synth.Generate(synth.Tiny())
		if err != nil {
			testArtifacts.err = err
			return
		}
		m, err := kge.New("distmult", kge.Config{
			NumEntities:  ds.Train.Entities.Len(),
			NumRelations: ds.Train.Relations.Len(),
			Dim:          8,
			Seed:         1,
		})
		if err != nil {
			testArtifacts.err = err
			return
		}
		if _, err := train.Run(context.Background(), m, ds, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
			testArtifacts.err = err
			return
		}
		testArtifacts.ds, testArtifacts.m = ds, m
	})
	if testArtifacts.err != nil {
		t.Fatalf("building test artifacts: %v", testArtifacts.err)
	}
	return testArtifacts.ds, testArtifacts.m
}

// cloneDataset deep-copies the mutable splits so tests can mutate one copy
// and compare against a pristine one; the dictionaries stay shared.
func cloneDataset(ds *kg.Dataset) *kg.Dataset {
	return &kg.Dataset{
		Name:  ds.Name,
		Train: ds.Train.Clone(),
		Valid: ds.Valid.Clone(),
		Test:  ds.Test.Clone(),
	}
}

// testBatch builds a batch from existing triples: it deletes a few and adds
// fresh triples over known vocabulary, plus one transient add+delete pair.
func testBatch(g *kg.Graph, seq int64) Batch {
	name := func(e kg.EntityID) string { return g.Entities.Name(int32(e)) }
	rname := func(r kg.RelationID) string { return g.Relations.Name(int32(r)) }
	ts := g.Triples()
	b := Batch{Seq: seq, Source: "test", Timestamp: "2026-08-08T00:00:00Z"}
	// Delete two existing triples.
	for _, i := range []int{3, len(ts) / 2} {
		t := ts[i]
		b.Ops = append(b.Ops, Op{Kind: OpDelete, S: name(t.S), R: rname(t.R), O: name(t.O)})
	}
	// Add two fresh edges over known vocabulary (dedup against the graph).
	added := 0
	for s := 0; s < g.NumEntities() && added < 2; s++ {
		for o := g.NumEntities() - 1; o >= 0 && added < 2; o-- {
			t := kg.Triple{S: kg.EntityID(s), R: ts[0].R, O: kg.EntityID(o)}
			if s != o && !g.Contains(t) {
				b.Ops = append(b.Ops, Op{Kind: OpAdd, S: name(t.S), R: rname(t.R), O: name(t.O)})
				added++
			}
		}
	}
	// A transient: add then delete the same novel triple. Nets to nothing.
	tr := ts[1]
	b.Ops = append(b.Ops,
		Op{Kind: OpDelete, S: name(tr.S), R: rname(tr.R), O: name(tr.O)},
		Op{Kind: OpAdd, S: name(tr.S), R: rname(tr.R), O: name(tr.O)},
	)
	return b
}

func TestApplyValidationAndSequencing(t *testing.T) {
	ds, _ := testModel(t)
	d := cloneDataset(ds)
	frozen := kg.Merge(d.Valid, d.Test)
	filter := kg.Merge(d.Train, d.Valid, d.Test)
	st := NewState(d.Train, filter, frozen)

	before := d.Train.Len()
	tr := d.Train.Triples()[0]
	name := func(e kg.EntityID) string { return d.Train.Entities.Name(int32(e)) }
	rn := d.Train.Relations.Name(int32(tr.R))

	if _, err := st.Apply(Batch{Seq: 2, Ops: []Op{{Kind: OpDelete, S: name(tr.S), R: rn, O: name(tr.O)}}}); err == nil {
		t.Fatal("sequence gap accepted")
	} else {
		var gap *SequenceGapError
		if !errors.As(err, &gap) || gap.Want != 1 || gap.Got != 2 {
			t.Fatalf("wrong gap error: %v", err)
		}
	}
	if _, err := st.Apply(Batch{Seq: 1}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: got %v", err)
	}
	// A batch with one valid op and one unknown entity must not apply at all.
	if _, err := st.Apply(Batch{Seq: 1, Ops: []Op{
		{Kind: OpDelete, S: name(tr.S), R: rn, O: name(tr.O)},
		{Kind: OpAdd, S: "never-interned", R: rn, O: name(tr.O)},
	}}); err == nil {
		t.Fatal("unknown entity accepted")
	}
	if _, err := st.Apply(Batch{Seq: 1, Ops: []Op{
		{Kind: "upsert", S: name(tr.S), R: rn, O: name(tr.O)},
	}}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	if d.Train.Len() != before || !d.Train.Contains(tr) || st.Seq() != 0 {
		t.Fatal("rejected batches mutated state")
	}

	ap, err := st.Apply(Batch{Seq: 1, Ops: []Op{{Kind: OpDelete, S: name(tr.S), R: rn, O: name(tr.O)}}})
	if err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	if ap.Deleted != 1 || d.Train.Contains(tr) || st.Seq() != 1 {
		t.Fatal("delete did not apply")
	}
	if !ap.Effective() || len(ap.NetRels) != 1 || ap.NetRels[0] != tr.R {
		t.Fatalf("NetRels: got %v", ap.NetRels)
	}
}

func TestApplyMaintainsFilter(t *testing.T) {
	ds, _ := testModel(t)
	d := cloneDataset(ds)
	frozen := kg.Merge(d.Valid, d.Test)
	filter := kg.Merge(d.Train, d.Valid, d.Test)
	st := NewState(d.Train, filter, frozen)

	if _, err := st.Apply(testBatch(d.Train, 1)); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// Delete a triple that is also in valid∪test (if any): the filter must
	// keep it. Then compare the whole filter against a from-scratch union.
	for _, tr := range append([]kg.Triple(nil), d.Train.Triples()...) {
		if frozen.Contains(tr) {
			b := Batch{Seq: 2, Ops: []Op{{
				Kind: OpDelete,
				S:    d.Train.Entities.Name(int32(tr.S)),
				R:    d.Train.Relations.Name(int32(tr.R)),
				O:    d.Train.Entities.Name(int32(tr.O)),
			}}}
			if _, err := st.Apply(b); err != nil {
				t.Fatalf("apply overlap delete: %v", err)
			}
			if !filter.Contains(tr) {
				t.Fatal("filter lost a triple still asserted by valid/test")
			}
			break
		}
	}
	want := kg.Merge(d.Train, d.Valid, d.Test)
	if filter.Len() != want.Len() {
		t.Fatalf("filter length %d, from-scratch union %d", filter.Len(), want.Len())
	}
	for _, tr := range want.Triples() {
		if !filter.Contains(tr) {
			t.Fatalf("filter missing %v", tr)
		}
	}
}

// TestIncrementalMatchesScratch is the core guarantee: after a mutation
// batch, IncrementalDiscover over the dirty relations splices with the prior
// sweep to exactly the facts a from-scratch DiscoverFacts produces on the
// mutated graph — for every strategy, including the extension strategies and
// the rank-filtered protocol.
func TestIncrementalMatchesScratch(t *testing.T) {
	ds, m := testModel(t)
	names := append(core.StrategyNames(), core.ExtensionStrategyNames()...)
	for _, sname := range names {
		sname := sname
		t.Run(sname, func(t *testing.T) {
			strategy, err := core.ExtendedStrategyByName(sname)
			if err != nil {
				t.Fatal(err)
			}
			d := cloneDataset(ds)
			frozen := kg.Merge(d.Valid, d.Test)
			filter := kg.Merge(d.Train, d.Valid, d.Test)
			st := NewState(d.Train, filter, frozen)
			opts := core.Options{TopN: 30, MaxCandidates: 25, Seed: 11, RankFiltered: true}

			// Baseline sweep on the pre-mutation graph, records collected.
			var prior []jobs.RelationRecord
			if _, _, err := jobs.Run(context.Background(), jobs.Spec{
				Model: m, Graph: d.Train, Strategy: strategy, Options: opts,
				OnRelation: func(rec jobs.RelationRecord) { prior = append(prior, rec) },
			}); err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			ap, err := st.Apply(testBatch(d.Train, 1))
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			dirty := st.DirtyRelations(sname, ap)
			if len(dirty) == 0 {
				t.Fatal("test batch produced no dirty relations")
			}
			inc, recs, err := IncrementalDiscover(context.Background(), jobs.Spec{
				Model: m, Graph: d.Train, Strategy: strategy, Options: opts,
			}, prior, dirty)
			if err != nil {
				t.Fatalf("incremental: %v", err)
			}

			scratch, err := core.DiscoverFacts(context.Background(), m, d.Train, strategy, opts)
			if err != nil {
				t.Fatalf("scratch: %v", err)
			}
			if !reflect.DeepEqual(inc.Facts, scratch.Facts) {
				t.Fatalf("incremental facts differ from scratch: %d vs %d facts (dirty=%d/%d)",
					len(inc.Facts), len(scratch.Facts), len(dirty), len(d.Train.RelationIDs()))
			}
			if len(recs) != len(d.Train.RelationIDs()) {
				t.Fatalf("record set covers %d relations, graph has %d", len(recs), len(d.Train.RelationIDs()))
			}
			if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Relation < recs[j].Relation }) {
				t.Fatal("records not sorted by relation")
			}
		})
	}
}

// TestTransientBatchDirtiesNothing: an add-then-delete of the same novel
// triple restores the graph exactly, so no relation is dirty for any
// strategy and the batch reports itself ineffective.
func TestTransientBatchDirtiesNothing(t *testing.T) {
	ds, _ := testModel(t)
	d := cloneDataset(ds)
	st := NewState(d.Train, nil, nil)
	g := d.Train
	ts := g.Triples()
	var novel kg.Triple
	found := false
	for s := 0; s < g.NumEntities() && !found; s++ {
		t := kg.Triple{S: kg.EntityID(s), R: ts[0].R, O: ts[0].O}
		if s != int(ts[0].O) && !g.Contains(t) {
			novel, found = t, true
		}
	}
	if !found {
		t.Skip("no novel triple available")
	}
	name := func(e kg.EntityID) string { return g.Entities.Name(int32(e)) }
	rn := g.Relations.Name(int32(novel.R))
	ap, err := st.Apply(Batch{Seq: 1, Ops: []Op{
		{Kind: OpAdd, S: name(novel.S), R: rn, O: name(novel.O)},
		{Kind: OpDelete, S: name(novel.S), R: rn, O: name(novel.O)},
	}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if ap.Effective() {
		t.Fatalf("transient batch reported effective: %+v", ap)
	}
	for _, sname := range append(core.StrategyNames(), append(core.ExtensionStrategyNames(), "")...) {
		if dirty := st.DirtyRelations(sname, ap); len(dirty) != 0 {
			t.Fatalf("strategy %q: transient batch dirtied %v", sname, dirty)
		}
	}
}

func TestLogReplayAndRecovery(t *testing.T) {
	ds, _ := testModel(t)
	path := filepath.Join(t.TempDir(), "mutations.wal")

	d1 := cloneDataset(ds)
	st1 := NewState(d1.Train, nil, nil)
	log1, batches, err := OpenLog(path, "tiny")
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(batches) != 0 {
		t.Fatalf("fresh log returned %d batches", len(batches))
	}
	st1.AttachLog(log1)
	b1 := testBatch(d1.Train, 1)
	if _, err := st1.Apply(b1); err != nil {
		t.Fatalf("apply 1: %v", err)
	}
	b2 := testBatch(d1.Train, 2)
	if _, err := st1.Apply(b2); err != nil {
		t.Fatalf("apply 2: %v", err)
	}
	log1.Close()

	// Reopen: base dataset + log replays to the identical graph and seq.
	d2 := cloneDataset(ds)
	st2 := NewState(d2.Train, nil, nil)
	log2, recovered, err := OpenLog(path, "tiny")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer log2.Close()
	if len(recovered) != 2 || recovered[0].Seq != 1 || recovered[1].Seq != 2 {
		t.Fatalf("recovered %d batches %+v", len(recovered), recovered)
	}
	if recovered[0].Source != "test" || recovered[0].Timestamp != "2026-08-08T00:00:00Z" {
		t.Fatalf("provenance not preserved: %+v", recovered[0])
	}
	if err := st2.Replay(recovered); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st2.Seq() != 2 {
		t.Fatalf("replayed seq %d", st2.Seq())
	}
	if d2.Train.Len() != d1.Train.Len() {
		t.Fatalf("replayed graph has %d triples, live one %d", d2.Train.Len(), d1.Train.Len())
	}
	for _, tr := range d1.Train.Triples() {
		if !d2.Train.Contains(tr) {
			t.Fatalf("replayed graph missing %v", tr)
		}
	}
}

func TestLogTruncatedTail(t *testing.T) {
	ds, _ := testModel(t)
	path := filepath.Join(t.TempDir(), "mutations.wal")
	d := cloneDataset(ds)
	st := NewState(d.Train, nil, nil)
	log, _, err := OpenLog(path, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLog(log)
	if _, err := st.Apply(testBatch(d.Train, 1)); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// Append garbage (a torn write) and reopen: the valid prefix survives,
	// the tail is truncated, and appends continue cleanly.
	appendBytes(t, path, []byte(`{"crc":1,"rec":{"batch"`))
	log2, recovered, err := OpenLog(path, "tiny")
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d batches, want 1", len(recovered))
	}
	d2 := cloneDataset(ds)
	st2 := NewState(d2.Train, nil, nil)
	if err := st2.Replay(recovered); err != nil {
		t.Fatal(err)
	}
	st2.AttachLog(log2)
	if _, err := st2.Apply(testBatch(d2.Train, 2)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	log2.Close()

	_, recovered, err = OpenLog(path, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("after recovery+append: %d batches, want 2", len(recovered))
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
