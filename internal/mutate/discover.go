package mutate

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
)

// IncrementalDiscover re-runs discovery for the dirty relations only and
// splices the clean relations' results from the prior sweep's records,
// producing a result byte-identical to a from-scratch core.DiscoverFacts run
// on the mutated graph with the same options.
//
// Three properties make the splice exact:
//
//   - each relation's sweep is a pure function of that relation's candidate
//     pools and the strategy's node statistics (core seeds a per-relation
//     RNG stream with relationSeed(seed, r)),
//   - the dirty set is sound: every relation whose pools or statistics
//     changed is in it (DirtyRelations), so every kept record is the exact
//     output a fresh sweep of that relation would produce,
//   - jobs.MergeRecords orders the merged facts with core.SortFactsByRank,
//     the same canonical total order DiscoverFacts itself applies.
//
// prior records for relations that no longer exist in g are dropped (such
// relations necessarily had a net change, so they are dirty); dirty relations
// with no surviving triples simply vanish from the output, exactly as a
// from-scratch run would omit them.
//
// It returns the merged result plus the complete per-relation record set
// (kept and fresh, sorted by relation), which callers can journal as the
// baseline for the next increment.
func IncrementalDiscover(ctx context.Context, spec jobs.Spec, prior []jobs.RelationRecord, dirty []kg.RelationID) (*core.Result, []jobs.RelationRecord, error) {
	relations := spec.Options.Relations
	if relations == nil {
		relations = spec.Graph.RelationIDs()
	}
	dirtySet := make(map[kg.RelationID]bool, len(dirty))
	for _, r := range dirty {
		dirtySet[r] = true
	}
	priorByRel := make(map[kg.RelationID]jobs.RelationRecord, len(prior))
	for _, rec := range prior {
		priorByRel[rec.Relation] = rec
	}

	var kept []jobs.RelationRecord
	var resweep []kg.RelationID
	for _, r := range relations {
		rec, hasPrior := priorByRel[r]
		if hasPrior && !dirtySet[r] {
			kept = append(kept, rec)
		} else {
			resweep = append(resweep, r)
		}
	}

	all := kept
	if len(resweep) > 0 {
		runSpec := spec
		runSpec.Journal = "" // journaling a partial sweep would checkpoint only the dirty slice
		runSpec.Options.Relations = resweep
		prevOnRelation := spec.OnRelation
		runSpec.OnRelation = func(rec jobs.RelationRecord) {
			all = append(all, rec)
			if prevOnRelation != nil {
				prevOnRelation(rec)
			}
		}
		if _, _, err := jobs.Run(ctx, runSpec); err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Relation < all[j].Relation })
	return jobs.MergeRecords(all), all, nil
}
