package mutate

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/kg"
)

// fuzzGraph builds a tiny fixed graph for exercising Apply on decoded
// batches; names e0..e3 and r0..r1 are interned so some fuzzed batches
// validate and actually apply.
func fuzzGraph() *kg.Graph {
	g := kg.NewGraph()
	g.AddNamed("e0", "r0", "e1")
	g.AddNamed("e1", "r0", "e2")
	g.AddNamed("e2", "r1", "e3")
	g.AddNamed("e3", "r1", "e0")
	g.BuildIndexes()
	return g
}

// FuzzMutationDecode throws arbitrary bytes at both mutation decoders: the
// /mutate request body (JSON into Batch, then a full Apply against a fresh
// state) and the mutation-log frame decoder. The log is whatever a crash
// left on disk and the request body is whatever a client sent, so the
// invariants are absolute: never panic, never claim a prefix longer than
// the input, keep the claimed prefix stable under re-decode, and reject
// without mutating state.
func FuzzMutationDecode(f *testing.F) {
	// Seed corpus: a healthy log, truncations, corruptions, and plain
	// request bodies.
	var healthy bytes.Buffer
	for _, rec := range []logRecord{
		{Header: &LogHeader{Version: logVersion, Dataset: "tiny"}},
		{Batch: &Batch{Seq: 1, Source: "s", Ops: []Op{{Kind: OpAdd, S: "e0", R: "r1", O: "e2"}}}},
		{Batch: &Batch{Seq: 2, Ops: []Op{{Kind: OpDelete, S: "e0", R: "r0", O: "e1"}}}},
	} {
		line, err := encodeLogLine(rec)
		if err != nil {
			f.Fatal(err)
		}
		healthy.Write(line)
	}
	hb := healthy.Bytes()
	f.Add(hb)
	f.Add(hb[:len(hb)/2])
	f.Add(hb[:len(hb)-1])
	f.Add(append(append([]byte{}, hb...), []byte("{\"crc\":0,\"rec\":{}}\n")...))
	corrupted := append([]byte{}, hb...)
	corrupted[len(corrupted)/3] ^= 0x20
	f.Add(corrupted)
	f.Add([]byte(`{"seq":1,"ops":[{"op":"add","s":"e0","r":"r0","o":"e3"}]}`))
	f.Add([]byte(`{"seq":1,"ops":[{"op":"upsert","s":"e0","r":"r0","o":"e3"}]}`))
	f.Add([]byte(`{"seq":9,"ops":[]}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Request-body path: decode, then apply to a fresh state. A batch
		// that fails validation must leave the graph untouched.
		var b Batch
		if err := json.Unmarshal(data, &b); err == nil {
			g := fuzzGraph()
			before := g.Len()
			st := NewState(g, nil, nil)
			if ap, err := st.Apply(b); err != nil {
				if g.Len() != before || st.Seq() != 0 {
					t.Fatalf("rejected batch mutated state: len %d->%d seq %d", before, g.Len(), st.Seq())
				}
			} else if ap.Seq != b.Seq || st.Seq() != b.Seq {
				t.Fatalf("applied batch seq mismatch: %d vs %d", ap.Seq, st.Seq())
			}
		}

		// Log path: longest-valid-prefix invariants.
		hdr, batches, valid := DecodeLog(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if hdr == nil && len(batches) > 0 {
			t.Fatal("batches without a header")
		}
		for i, b := range batches {
			if b.Seq != int64(i)+1 {
				t.Fatalf("batch %d has seq %d, prefix not contiguous", i, b.Seq)
			}
		}
		hdr2, batches2, valid2 := DecodeLog(data[:valid])
		if valid2 != valid || len(batches2) != len(batches) || (hdr == nil) != (hdr2 == nil) {
			t.Fatalf("prefix unstable: %d/%d bytes, %d/%d batches", valid, valid2, len(batches), len(batches2))
		}
		if hdr != nil && *hdr != *hdr2 {
			t.Fatalf("prefix unstable: header %+v then %+v", hdr, hdr2)
		}
		// Garbage after a line-terminated valid prefix must not extend it.
		if valid == 0 || data[valid-1] == '\n' {
			garbled := append(append([]byte{}, data[:valid]...), []byte("!corrupt tail")...)
			_, batches3, valid3 := DecodeLog(garbled)
			if valid3 != valid || len(batches3) != len(batches) {
				t.Fatalf("garbage tail changed prefix: %d/%d bytes", valid3, valid)
			}
		}
	})
}
