// Package mutate is the live-ingestion layer: batched ADD/DELETE mutations
// against a serving knowledge graph, applied atomically with per-batch
// provenance (source, sequence number, caller-supplied timestamp), durably
// recorded in an fsync'd CRC-framed mutation log, and propagated exactly —
// not approximately — into every derived artifact that discovery and ranking
// read:
//
//   - the kg.Graph triple set, by-relation index and per-relation side
//     tables (via Graph.Add/Graph.Delete incremental maintenance),
//   - the undirected projection's degree/triangle/clustering state
//     (via graphstats.Live local delta updates),
//   - the (s, r) filter adjacency used by eval.Ranker for filtered ranking
//     (the train ∪ valid ∪ test union graph, co-maintained here).
//
// Because each relation's sweep in core.DiscoverFacts is a pure function of
// that relation's candidate pools and the strategy's node statistics, a batch
// also yields a per-strategy *dirty relation set*: the relations whose sweep
// output could differ on the mutated graph. IncrementalDiscover re-sweeps
// only those and splices the rest from the prior run's records, byte-identical
// to a from-scratch discovery on the mutated graph.
package mutate

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graphstats"
	"repro/internal/kg"
)

// OpKind discriminates mutation operations.
type OpKind string

const (
	OpAdd    OpKind = "add"
	OpDelete OpKind = "delete"
)

// Op is one triple-level mutation, addressed by names so batches are
// meaningful independent of any particular interning order.
type Op struct {
	Kind OpKind `json:"op"`
	S    string `json:"s"`
	R    string `json:"r"`
	O    string `json:"o"`
}

// Batch is the atomic unit of mutation: it either applies in full (after
// validating every op) or not at all. Seq must be exactly one past the last
// applied batch — a gap means the caller and server disagree about history.
// Source and Timestamp are caller-supplied provenance, recorded verbatim in
// the mutation log; the server deliberately never stamps its own clock so
// logs replay bit-identically.
type Batch struct {
	Seq       int64  `json:"seq"`
	Source    string `json:"source,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
	Ops       []Op   `json:"ops"`
}

// SequenceGapError reports a batch whose Seq is not the next expected value.
type SequenceGapError struct {
	Want int64 // the sequence number the state expects next
	Got  int64
}

func (e *SequenceGapError) Error() string {
	return fmt.Sprintf("mutate: sequence gap: expected batch seq %d, got %d", e.Want, e.Got)
}

// ValidationError reports a batch rejected before any op was applied.
type ValidationError struct {
	Index  int // offending op index, -1 for batch-level problems
	Reason string
}

func (e *ValidationError) Error() string {
	if e.Index < 0 {
		return "mutate: invalid batch: " + e.Reason
	}
	return fmt.Sprintf("mutate: invalid op %d: %s", e.Index, e.Reason)
}

// ErrEmptyBatch rejects batches with no ops; an empty batch has no meaning
// but would still consume a sequence number.
var ErrEmptyBatch = errors.New("mutate: batch has no ops")

// State owns the mutable graph artifacts. It is not safe for concurrent use;
// the serving layer serializes writers and excludes readers during Apply.
type State struct {
	// Graph is the mutable split (train: the graph discovery samples from).
	Graph *kg.Graph
	// Filter is the train ∪ valid ∪ test union used for filtered ranking;
	// nil when the caller does not maintain one.
	Filter *kg.Graph
	// frozen holds the valid ∪ test triples: a train delete must not remove
	// a filter triple that another split still asserts.
	frozen *kg.Graph

	live *graphstats.Live
	log  *Log
	seq  int64
}

// NewState wraps a dataset's mutable train graph. filter (train∪valid∪test)
// may be nil; frozen (valid∪test) may be nil when filter is.
func NewState(train, filter, frozen *kg.Graph) *State {
	train.BuildIndexes()
	return &State{
		Graph:  train,
		Filter: filter,
		frozen: frozen,
		live:   graphstats.NewLive(train),
	}
}

// AttachLog makes the state durable: every subsequently applied batch is
// appended (and fsync'd) to log before it mutates any in-memory structure.
func (s *State) AttachLog(log *Log) { s.log = log }

// Seq returns the sequence number of the last applied batch (0 initially).
func (s *State) Seq() int64 { return s.seq }

// Replay applies batches recovered from a mutation log. It is Apply without
// the log append (the batches are already durable).
func (s *State) Replay(batches []Batch) error {
	for _, b := range batches {
		if _, err := s.apply(b, false); err != nil {
			return fmt.Errorf("mutate: replaying batch seq %d: %w", b.Seq, err)
		}
	}
	return nil
}

// Applied reports what one batch actually changed, in terms precise enough
// to drive exact invalidation downstream. All slices are sorted.
type Applied struct {
	Seq     int64
	Added   int // ops that inserted a triple not previously present
	Deleted int // ops that removed a present triple

	// NetRels are the relations with a net triple change: some triple of
	// theirs is present after the batch but not before, or vice versa. A
	// transient (add-then-delete inside one batch) nets out to nothing.
	// The candidate pools, pool counts, membership set and (s,r) adjacency
	// of every other relation are bit-identical to before the batch.
	NetRels []kg.RelationID
	// DegreeEntities are the entities whose directed degree (subject count
	// plus object count) net-changed — exactly the entities whose
	// graph_degree / inverse_degree / mixed_exploration statistic moved.
	DegreeEntities []kg.EntityID
	// ClusterEntities is a sound superset of the entities whose undirected
	// degree, triangle count T(v), or local clustering c(v) changed.
	ClusterEntities []kg.EntityID
	// SquareEntities is a sound superset of the entities whose square
	// clustering c₄(v) changed.
	SquareEntities []kg.EntityID
}

// Effective reports whether the batch changed the graph at all. A batch of
// no-ops (or of transients that net out) leaves every derived artifact
// bit-identical, so nothing needs invalidation.
func (a Applied) Effective() bool { return len(a.NetRels) > 0 }

// Apply validates, durably logs, and applies one batch. On any validation
// error (unknown entity or relation name, bad op kind, sequence gap, empty
// batch) the state is untouched. Entity and relation names must already be
// interned: a trained model has no embedding row for a novel entity, so new
// vocabulary is a model-retraining event, not a mutation.
func (s *State) Apply(b Batch) (Applied, error) {
	return s.apply(b, true)
}

func (s *State) apply(b Batch, logIt bool) (Applied, error) {
	if b.Seq != s.seq+1 {
		return Applied{}, &SequenceGapError{Want: s.seq + 1, Got: b.Seq}
	}
	if len(b.Ops) == 0 {
		return Applied{}, ErrEmptyBatch
	}
	resolved := make([]kg.Triple, len(b.Ops))
	for i, op := range b.Ops {
		if op.Kind != OpAdd && op.Kind != OpDelete {
			return Applied{}, &ValidationError{Index: i, Reason: fmt.Sprintf("unknown op kind %q", op.Kind)}
		}
		sid, ok := s.Graph.Entities.Lookup(op.S)
		if !ok {
			return Applied{}, &ValidationError{Index: i, Reason: fmt.Sprintf("unknown entity %q (new vocabulary requires retraining)", op.S)}
		}
		oid, ok := s.Graph.Entities.Lookup(op.O)
		if !ok {
			return Applied{}, &ValidationError{Index: i, Reason: fmt.Sprintf("unknown entity %q (new vocabulary requires retraining)", op.O)}
		}
		rid, ok := s.Graph.Relations.Lookup(op.R)
		if !ok {
			return Applied{}, &ValidationError{Index: i, Reason: fmt.Sprintf("unknown relation %q", op.R)}
		}
		resolved[i] = kg.Triple{S: kg.EntityID(sid), R: kg.RelationID(rid), O: kg.EntityID(oid)}
	}
	if logIt && s.log != nil {
		if err := s.log.Append(b); err != nil {
			return Applied{}, fmt.Errorf("mutate: mutation log append: %w", err)
		}
	}

	ap := Applied{Seq: b.Seq}
	initial := make(map[kg.Triple]bool) // presence before the batch, first touch wins
	cluster := make(map[kg.EntityID]struct{})
	square := make(map[kg.EntityID]struct{})
	for i, t := range resolved {
		if _, seen := initial[t]; !seen {
			initial[t] = s.Graph.Contains(t)
		}
		var delta graphstats.EdgeDelta
		switch b.Ops[i].Kind {
		case OpAdd:
			if !s.Graph.Add(t) {
				continue // already present: idempotent no-op
			}
			ap.Added++
			delta = s.live.AddTriple(t.S, t.O)
			if s.Filter != nil {
				s.Filter.Add(t)
			}
		case OpDelete:
			if !s.Graph.Delete(t) {
				continue // already absent: idempotent no-op
			}
			ap.Deleted++
			delta = s.live.RemoveTriple(t.S, t.O)
			if s.Filter != nil && (s.frozen == nil || !s.frozen.Contains(t)) {
				s.Filter.Delete(t)
			}
		}
		if delta.Structural {
			for _, e := range delta.Touched {
				cluster[e] = struct{}{}
			}
			for _, e := range delta.Square {
				square[e] = struct{}{}
			}
		}
	}
	s.seq = b.Seq

	netRels := make(map[kg.RelationID]struct{})
	degDelta := make(map[kg.EntityID]int64)
	for t, was := range initial {
		if s.Graph.Contains(t) == was {
			continue
		}
		netRels[t.R] = struct{}{}
		if was {
			degDelta[t.S]--
			degDelta[t.O]--
		} else {
			degDelta[t.S]++
			degDelta[t.O]++
		}
	}
	for r := range netRels {
		ap.NetRels = append(ap.NetRels, r)
	}
	sort.Slice(ap.NetRels, func(i, j int) bool { return ap.NetRels[i] < ap.NetRels[j] })
	for e, d := range degDelta {
		if d != 0 {
			ap.DegreeEntities = append(ap.DegreeEntities, e)
		}
	}
	sort.Slice(ap.DegreeEntities, func(i, j int) bool { return ap.DegreeEntities[i] < ap.DegreeEntities[j] })
	ap.ClusterEntities = sortedEntitySet(cluster)
	ap.SquareEntities = sortedEntitySet(square)
	return ap, nil
}

func sortedEntitySet(m map[kg.EntityID]struct{}) []kg.EntityID {
	if len(m) == 0 {
		return nil
	}
	out := make([]kg.EntityID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyRelations returns the relations whose discovery output under the
// named strategy could differ on the post-batch graph, merged across the
// given batches, in ascending ID order. The set is exact for the pool-driven
// strategies and for the degree-statistic strategies, and a sound superset
// for the clustering strategies (whose affected sets are collected per
// structural edge transition, so a transient can over-dirty but never
// under-dirty). Re-sweeping only these relations and splicing the rest from
// a pre-batch run reproduces a from-scratch sweep byte for byte.
//
// Strategy sensitivity, derived from how core computes weights:
//
//   - uniform_random, entity_frequency: weights read only the relation's own
//     candidate pools and side counts → NetRels.
//   - graph_degree, inverse_degree: per-entity statistics deg(e) and
//     1/(1+deg(e)) → NetRels plus relations whose pools contain an entity
//     with a net degree change.
//   - cluster_triangles, cluster_coefficient: statistics T(v) and c(v) on
//     the undirected projection → NetRels plus relations whose pools contain
//     a ClusterEntities member.
//   - cluster_squares: c₄(v) → NetRels plus relations whose pools contain a
//     SquareEntities member.
//   - mixed_exploration: normalizes both degree statistics by their global
//     mass, so one net degree change anywhere moves every entity's weight →
//     all relations (when any degree changed; otherwise NetRels).
//   - anything else (unknown strategies): all relations, the trivially sound
//     answer.
//
// The empty strategy name "" asks for the union over all known strategies —
// what a cache that serves every strategy must consider dirty.
func (s *State) DirtyRelations(strategy string, batches ...Applied) []kg.RelationID {
	net := make(map[kg.RelationID]struct{})
	degreeChanged := false
	for _, b := range batches {
		for _, r := range b.NetRels {
			net[r] = struct{}{}
		}
		if len(b.DegreeEntities) > 0 {
			degreeChanged = true
		}
	}
	if len(net) == 0 {
		// No triple net-changed, so the graph — and every statistic derived
		// from it — is bit-identical to before: nothing is dirty, for any
		// strategy. (Transients may have populated the entity supersets, but
		// their effects were undone.)
		return nil
	}

	ents := make(map[kg.EntityID]struct{})
	collect := func(pick func(Applied) []kg.EntityID) {
		for _, b := range batches {
			for _, e := range pick(b) {
				ents[e] = struct{}{}
			}
		}
	}
	allRels := false
	switch strategy {
	case "uniform_random", "entity_frequency":
		// pool-only: nothing beyond NetRels
	case "graph_degree", "inverse_degree":
		collect(func(b Applied) []kg.EntityID { return b.DegreeEntities })
	case "cluster_triangles", "cluster_coefficient":
		collect(func(b Applied) []kg.EntityID { return b.ClusterEntities })
	case "cluster_squares":
		collect(func(b Applied) []kg.EntityID { return b.SquareEntities })
	case "mixed_exploration":
		allRels = degreeChanged
	case "":
		// Union over all known strategies. mixed_exploration's global
		// normalization dominates whenever any degree moved; otherwise the
		// graph may still have been rewired degree-preservingly, so the
		// cluster/square supersets remain necessary.
		if degreeChanged {
			allRels = true
		} else {
			collect(func(b Applied) []kg.EntityID { return b.ClusterEntities })
			collect(func(b Applied) []kg.EntityID { return b.SquareEntities })
		}
	default:
		// Unknown strategy: no sensitivity model, so every relation is
		// suspect. Re-sweeping everything is trivially output-identical.
		allRels = true
	}

	if allRels {
		return s.Graph.RelationIDs()
	}
	out := make([]kg.RelationID, 0, len(net))
	for _, r := range s.Graph.RelationIDs() {
		if _, dirty := net[r]; dirty {
			out = append(out, r)
			continue
		}
		if poolContainsAny(s.Graph, r, ents) {
			out = append(out, r)
		}
	}
	return out
}

// poolContainsAny reports whether any entity of ents appears in relation r's
// subject or object candidate pool.
func poolContainsAny(g *kg.Graph, r kg.RelationID, ents map[kg.EntityID]struct{}) bool {
	for e := range ents {
		if g.SideCount(r, kg.SubjectSide, e) > 0 || g.SideCount(r, kg.ObjectSide, e) > 0 {
			return true
		}
	}
	return false
}
