package mutate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// The mutation log uses the same durable framing as the discovery WAL in
// internal/jobs: one JSON envelope per line carrying the serialized record
// and its IEEE CRC32, appended and fsync'd record by record, recovered by
// taking the longest valid prefix and truncating the rest. The base dataset
// plus the log replays to exactly the current graph, so a restarted server
// resumes at the same sequence number with bit-identical state.

// logVersion is the wire-format version; a bump invalidates old logs rather
// than risking a wrong replay.
const logVersion = 1

// LogHeader is the first record of every mutation log.
type LogHeader struct {
	Version int `json:"version"`
	// Dataset is a free-form label of the base dataset the log applies to.
	Dataset string `json:"dataset,omitempty"`
}

// logRecord is the tagged union written inside each log line.
type logRecord struct {
	Header *LogHeader `json:"header,omitempty"`
	Batch  *Batch     `json:"batch,omitempty"`
}

type logEnvelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

func encodeLogLine(rec logRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(logEnvelope{CRC: crc32.ChecksumIEEE(body), Rec: body})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

func decodeLogLine(line []byte) (logRecord, bool) {
	var env logEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return logRecord{}, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return logRecord{}, false
	}
	var rec logRecord
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return logRecord{}, false
	}
	if (rec.Header == nil) == (rec.Batch == nil) {
		return logRecord{}, false
	}
	return rec, true
}

// DecodeLog scans mutation-log bytes and returns the longest valid prefix:
// the header (nil if even the first line is unusable), the batches that
// follow, and the byte length of the prefix. It never fails and never panics.
// Beyond framing and checksums, the prefix must be semantically coherent: a
// second header, a batch before the header, or a batch whose Seq is not
// exactly one past the previous batch's ends the prefix (the writer never
// produces any of these, so their presence means the tail is untrustworthy).
func DecodeLog(data []byte) (hdr *LogHeader, batches []Batch, validLen int) {
	off := 0
	var lastSeq int64
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		var line []byte
		lineEnd := 0
		if nl < 0 {
			line = data[off:]
			lineEnd = len(data)
		} else {
			line = data[off : off+nl]
			lineEnd = off + nl + 1
		}
		rec, ok := decodeLogLine(line)
		if !ok {
			return hdr, batches, off
		}
		switch {
		case rec.Header != nil:
			if hdr != nil {
				return hdr, batches, off
			}
			hdr = rec.Header
		case rec.Batch != nil:
			if hdr == nil || rec.Batch.Seq != lastSeq+1 {
				return hdr, batches, off
			}
			lastSeq = rec.Batch.Seq
			batches = append(batches, *rec.Batch)
		}
		off = lineEnd
	}
	return hdr, batches, off
}

// Log appends framed mutation batches to a WAL file, fsyncing after every
// append so an acknowledged batch survives any crash.
type Log struct {
	f *os.File
}

// OpenLog opens (or creates) the mutation log at path. A fresh file gets a
// header naming the base dataset; an existing file is recovered — the header
// is version-checked, the longest valid prefix decoded, any corrupt tail
// truncated — and its batches are returned for the caller to Replay.
func OpenLog(path, dataset string) (*Log, []Batch, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		f, cerr := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if cerr != nil {
			return nil, nil, cerr
		}
		l := &Log{f: f}
		if aerr := l.append(logRecord{Header: &LogHeader{Version: logVersion, Dataset: dataset}}); aerr != nil {
			f.Close()
			os.Remove(path)
			return nil, nil, aerr
		}
		return l, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	hdr, batches, valid := DecodeLog(data)
	if hdr == nil {
		return nil, nil, fmt.Errorf("mutate: %s is not a mutation log (no valid header)", path)
	}
	if hdr.Version != logVersion {
		return nil, nil, fmt.Errorf("mutate: %s: log version %d, this build writes %d", path, hdr.Version, logVersion)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f}, batches, nil
}

// Append durably records one batch: the line is written and the file fsync'd
// before Append returns, so the batch is on disk before it is applied.
func (l *Log) Append(b Batch) error {
	return l.append(logRecord{Batch: &b})
}

func (l *Log) append(rec logRecord) error {
	line, err := encodeLogLine(rec)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(line); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
