package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
)

func TestHealthAndStats(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	rec, body := doReq(t, h, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rec.Code, body)
	}
	rec, body = doReq(t, h, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	if body["entities"].(float64) != 80 || body["relations"].(float64) != 6 {
		t.Errorf("stats payload: %v", body)
	}
	if body["calibrated"] != true {
		t.Error("expected a fitted calibrator with a validation split present")
	}
	if body["fingerprint"] != srv.Fingerprint() {
		t.Errorf("stats fingerprint %v, want %s", body["fingerprint"], srv.Fingerprint())
	}
}

func TestScoreEndpoint(t *testing.T) {
	h := newTestServer(t, nil).Handler()
	rec, body := doReq(t, h, "POST", "/score", tripleRequest{Subject: "e1", Relation: "r0", Object: "e2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("score: %d %v", rec.Code, body)
	}
	if _, ok := body["score"]; !ok {
		t.Error("missing score")
	}
	if p, ok := body["probability"].(float64); !ok || p < 0 || p > 1 {
		t.Errorf("probability = %v", body["probability"])
	}
}

func TestRankEndpoint(t *testing.T) {
	h := newTestServer(t, nil).Handler()
	rec, body := doReq(t, h, "POST", "/rank", tripleRequest{Subject: "e1", Relation: "r0", Object: "e2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("rank: %d %v", rec.Code, body)
	}
	rank := body["rank"].(float64)
	if rank < 1 || rank > 80 {
		t.Errorf("rank %v out of [1, 80]", rank)
	}
}

func TestQueryEndpoint(t *testing.T) {
	h := newTestServer(t, nil).Handler()
	rec, body := doReq(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "r0", K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %v", rec.Code, body)
	}
	answers := body["answers"].([]any)
	if len(answers) != 5 {
		t.Fatalf("answers = %d, want 5", len(answers))
	}
	// Scores must be non-increasing.
	prev := answers[0].(map[string]any)["score"].(float64)
	for _, a := range answers[1:] {
		cur := a.(map[string]any)["score"].(float64)
		if cur > prev {
			t.Fatal("answers not sorted by score")
		}
		prev = cur
	}
	// Zero k falls back to the default of 10.
	rec, body = doReq(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "r0"})
	if rec.Code != http.StatusOK || len(body["answers"].([]any)) != 10 {
		t.Errorf("default k: %d, %d answers, want 200 with 10", rec.Code, len(body["answers"].([]any)))
	}
}

func TestDiscoverEndpoint(t *testing.T) {
	h := newTestServer(t, nil).Handler()
	rec, body := doReq(t, h, "POST", "/discover", discoverRequest{
		Strategy: "graph_degree", TopN: 20, MaxCandidates: 30, Limit: 5, Seed: 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: %d %v", rec.Code, body)
	}
	facts := body["facts"].([]any)
	if len(facts) == 0 || len(facts) > 5 {
		t.Fatalf("facts = %d, want 1..5", len(facts))
	}
	first := facts[0].(map[string]any)
	for _, field := range []string{"subject", "relation", "object", "rank"} {
		if _, ok := first[field]; !ok {
			t.Errorf("fact missing %s: %v", field, first)
		}
	}
	if body["total"].(float64) < float64(len(facts)) {
		t.Error("total < returned facts")
	}
	// Relation-restricted discovery with a named relation.
	rec, body = doReq(t, h, "POST", "/discover", discoverRequest{
		Strategy: "uniform_random", TopN: 20, MaxCandidates: 20,
		Relations: []string{"r1"}, Limit: 3, Seed: 4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("restricted discover: %d %v", rec.Code, body)
	}
	for _, f := range body["facts"].([]any) {
		if rel := f.(map[string]any)["relation"].(string); rel != "r1" {
			t.Errorf("fact for relation %q, want r1", rel)
		}
	}
}

// TestHandlerErrorPaths is the table-driven error matrix over every
// endpoint: each row must produce the expected status and, for non-2xx,
// a well-formed {"error": ...} JSON body.
func TestHandlerErrorPaths(t *testing.T) {
	h := newTestServer(t, nil).Handler()
	tests := []struct {
		name string
		path string
		body string
		want int
	}{
		{"score malformed JSON", "/score", "{", http.StatusBadRequest},
		{"score empty body", "/score", "", http.StatusBadRequest},
		{"score unknown subject", "/score", `{"subject":"ghost","relation":"r0","object":"e2"}`, http.StatusNotFound},
		{"score unknown object", "/score", `{"subject":"e1","relation":"r0","object":"ghost"}`, http.StatusNotFound},
		{"rank malformed JSON", "/rank", `{"subject":`, http.StatusBadRequest},
		{"rank unknown relation", "/rank", `{"subject":"e1","relation":"ghost","object":"e2"}`, http.StatusNotFound},
		{"query malformed JSON", "/query", "not json", http.StatusBadRequest},
		{"query unknown subject", "/query", `{"subject":"ghost","relation":"r0"}`, http.StatusNotFound},
		{"query unknown relation", "/query", `{"subject":"e1","relation":"ghost"}`, http.StatusNotFound},
		{"query negative k", "/query", `{"subject":"e1","relation":"r0","k":-1}`, http.StatusBadRequest},
		{"query zero k ok", "/query", `{"subject":"e1","relation":"r0","k":0}`, http.StatusOK},
		{"discover malformed JSON", "/discover", `{"strategy"`, http.StatusBadRequest},
		{"discover unknown strategy", "/discover", `{"strategy":"bogus"}`, http.StatusBadRequest},
		{"discover unknown relation", "/discover", `{"relations":["ghost"]}`, http.StatusNotFound},
		{"discover negative top_n", "/discover", `{"top_n":-5}`, http.StatusBadRequest},
		{"discover negative max_candidates", "/discover", `{"max_candidates":-1}`, http.StatusBadRequest},
		{"discover negative limit", "/discover", `{"limit":-2}`, http.StatusBadRequest},
		{"discover zero params ok", "/discover", `{"strategy":"graph_degree","top_n":20,"max_candidates":30,"seed":9}`, http.StatusOK},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec, body := doReq(t, h, "POST", tt.path, tt.body)
			if rec.Code != tt.want {
				t.Fatalf("code %d, want %d (body %v)", rec.Code, tt.want, body)
			}
			if rec.Code >= 300 {
				msg, ok := body["error"].(string)
				if !ok || msg == "" {
					t.Fatalf("non-2xx without error JSON: %q", rec.Body.String())
				}
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q", ct)
			}
		})
	}
}

// TestOversizedBody trips the body-limit middleware on every POST endpoint.
func TestOversizedBody(t *testing.T) {
	h := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 64 }).Handler()
	big := `{"subject":"` + strings.Repeat("x", 200) + `"}`
	for _, path := range []string{"/score", "/rank", "/query", "/discover"} {
		rec, body := doReq(t, h, "POST", path, big)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: code %d, want 413", path, rec.Code)
		}
		if msg, ok := body["error"].(string); !ok || msg == "" {
			t.Errorf("%s: 413 without error JSON: %q", path, rec.Body.String())
		}
	}
}

// TestDiscoverDeadline covers the request-deadline path with a discover
// stub that honors cancellation the way core.DiscoverFacts does: the
// response must be a 503 JSON error with no partial facts.
func TestDiscoverDeadline(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.RequestTimeout = 20 * time.Millisecond })
	srv.discover = func(ctx context.Context, _ kge.Model, _ *kg.Graph, _ core.Strategy, _ core.Options) (*core.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	rec, body := doReq(t, srv.Handler(), "POST", "/discover", discoverBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503 (body %v)", rec.Code, body)
	}
	if msg, ok := body["error"].(string); !ok || msg == "" {
		t.Fatalf("503 without error JSON: %q", rec.Body.String())
	}
	if _, ok := body["facts"]; ok {
		t.Fatal("timed-out discovery leaked partial facts into the response")
	}
}

// TestDiscoverDeadlineRealSweep is the regression companion for the rankAll
// cancellation fix from PR 1: the real core.DiscoverFacts under an
// already-expired deadline must propagate the context error — never return
// partial (bogus rank-0) facts — and the handler must render it as a 503.
func TestDiscoverDeadlineRealSweep(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	rec, body := doReq(t, srv.Handler(), "POST", "/discover", discoverBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503 (body %v)", rec.Code, body)
	}
	if _, ok := body["facts"]; ok {
		t.Fatal("timed-out discovery leaked partial facts into the response")
	}
}

// TestQueryCache exercises the /query cache path: miss then hit with
// byte-identical bodies.
func TestQueryCache(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	rec1, _ := doReq(t, h, "POST", "/query", queryRequest{Subject: "e3", Relation: "r2", K: 4})
	rec2, _ := doReq(t, h, "POST", "/query", queryRequest{Subject: "e3", Relation: "r2", K: 4})
	if rec1.Code != http.StatusOK || rec2.Code != http.StatusOK {
		t.Fatalf("codes %d, %d", rec1.Code, rec2.Code)
	}
	if rec1.Header().Get("X-Cache") != "miss" || rec2.Header().Get("X-Cache") != "hit" {
		t.Errorf("X-Cache %q, %q; want miss, hit", rec1.Header().Get("X-Cache"), rec2.Header().Get("X-Cache"))
	}
	if rec1.Body.String() != rec2.Body.String() {
		t.Error("cache hit body differs from original")
	}
}

// TestCacheEviction bounds the LRU at one entry and confirms the eviction
// counter moves and evicted keys recompute.
func TestCacheEviction(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.CacheSize = 1 })
	h := srv.Handler()
	doReq(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "r0", K: 3})
	doReq(t, h, "POST", "/query", queryRequest{Subject: "e2", Relation: "r1", K: 3}) // evicts the first
	_, _, evictions, _, _ := srv.metrics.snapshotCounters()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	rec, _ := doReq(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "r0", K: 3})
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("evicted key served as %q, want miss", got)
	}
	if srv.cache.Len() != 1 {
		t.Errorf("cache len %d, want 1", srv.cache.Len())
	}
}

// TestCacheDisabled verifies a negative CacheSize turns caching off without
// breaking the endpoints.
func TestCacheDisabled(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.CacheSize = -1 })
	h := srv.Handler()
	for i := 0; i < 2; i++ {
		rec, _ := doReq(t, h, "POST", "/query", queryRequest{Subject: "e1", Relation: "r0", K: 3})
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
		if got := rec.Header().Get("X-Cache"); got != "miss" {
			t.Errorf("request %d X-Cache %q, want miss with caching disabled", i, got)
		}
	}
}
