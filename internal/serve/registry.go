package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kge"
	"repro/internal/prune"
)

// The multi-model registry. A Server hosts any number of models over one
// shared dataset, keyed by canonical weight fingerprint (kge.Fingerprint).
// Requests carry an optional "model" selector — a fingerprint or unique
// fingerprint prefix — and fall back to the default model, so a single-model
// deployment never has to mention fingerprints at all.
//
//	GET    /models      → every live model
//	POST   /models      → load a checkpoint from disk ({"path": ..., "default": bool})
//	DELETE /models/{fp} → unload (in-flight requests finish first)
//
// Unloading is refcounted rather than immediate: mmap-backed models
// (kge.OpenMapped) alias kernel pages, so munmapping while a scoring sweep
// reads the tables would fault the process. Every request path acquires the
// model before touching weights and releases when done; DELETE retires the
// entry (no new acquisitions) and the last release munmaps.

// servedModel bundles one model's weights with the per-model derived
// artifacts: ranker, calibrator, prune index, and load provenance.
type servedModel struct {
	model       kge.Trainable
	mapped      *kge.Mapped // non-nil iff the weights alias an mmap'd checkpoint
	ranker      *eval.Ranker
	calibrator  *eval.PlattCalibrator // nil when no validation split exists
	pruneIndex  *prune.Index          // non-nil iff cfg.PruneMode enables pruning
	fingerprint string
	format      string // "gob", "flat", or "memory" (constructed in process)
	path        string // checkpoint path, "" for in-memory models
	loadTime    time.Duration

	mu      sync.Mutex
	refs    int
	retired bool
}

// release drops one reference; the last release of a retired model unmaps it.
func (sm *servedModel) release() {
	sm.mu.Lock()
	sm.refs--
	last := sm.retired && sm.refs == 0
	sm.mu.Unlock()
	if last && sm.mapped != nil {
		sm.mapped.Close()
	}
}

// retire marks the model unavailable for new acquisitions and unmaps it once
// no request holds it. Callers must have already removed it from the registry
// map (under the registry write lock), so no acquisition can race this.
func (sm *servedModel) retire() {
	sm.mu.Lock()
	sm.retired = true
	last := sm.refs == 0
	sm.mu.Unlock()
	if last && sm.mapped != nil {
		sm.mapped.Close()
	}
}

// acquireModel resolves a request's model selector to a live model and takes
// a reference on it. The empty selector means the default model. The caller
// must release() exactly once.
func (s *Server) acquireModel(selector string) (*servedModel, error) {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	fp := selector
	if fp == "" {
		if s.defaultFP == "" {
			return nil, fmt.Errorf("no default model is loaded (select one by fingerprint)")
		}
		fp = s.defaultFP
	}
	sm, ok := s.models[fp]
	if !ok {
		// Unique-prefix match: fingerprints are 64 hex chars, so letting
		// clients send a short prefix keeps hand-typed requests humane.
		var hits []*servedModel
		for cand, m := range s.models {
			if strings.HasPrefix(cand, fp) {
				hits = append(hits, m)
			}
		}
		switch len(hits) {
		case 1:
			sm = hits[0]
		case 0:
			return nil, fmt.Errorf("no loaded model matches %q", selector)
		default:
			return nil, fmt.Errorf("model selector %q is ambiguous (%d matches)", selector, len(hits))
		}
	}
	// Incrementing under the registry read lock pairs with retire() running
	// strictly after removal under the write lock: a model found in the map
	// here cannot have been retired yet, so the reference is always taken on
	// a live mapping.
	sm.mu.Lock()
	sm.refs++
	sm.mu.Unlock()
	s.metrics.incModelRequest(sm.fingerprint)
	return sm, nil
}

// addModel builds the per-model artifacts for m and registers it. sidecar is
// the prune-index sidecar path ("" builds in memory); makeDefault routes
// selector-less requests to it. Re-adding a fingerprint that is already live
// is not an error: the existing entry is kept (its sidecar and cache entries
// stay warm) and only the default flag is applied.
func (s *Server) addModel(m kge.Trainable, mapped *kge.Mapped, format, path string, loadTime time.Duration, sidecar string, makeDefault bool) (*servedModel, error) {
	if m.NumEntities() < s.ds.Train.Entities.Len() {
		return nil, fmt.Errorf("serve: model covers %d entities, dataset has %d", m.NumEntities(), s.ds.Train.Entities.Len())
	}
	fp := kge.Fingerprint(m)

	s.regMu.RLock()
	existing, ok := s.models[fp]
	s.regMu.RUnlock()
	if ok {
		if makeDefault {
			s.regMu.Lock()
			s.defaultFP = fp
			s.regMu.Unlock()
		}
		if mapped != nil {
			mapped.Close() // duplicate mapping of weights already served
		}
		return existing, nil
	}

	// The ranker and calibrator read the shared filter union, which mutations
	// rewrite in place: hold the graph read-lock while they are built so a
	// hot-loaded model never derives artifacts from a half-applied batch.
	s.kgMu.RLock()
	ranker := eval.NewRanker(m, s.all)
	s.kgMu.RUnlock()
	sm := &servedModel{
		model:       m,
		mapped:      mapped,
		ranker:      ranker,
		fingerprint: fp,
		format:      format,
		path:        path,
		loadTime:    loadTime,
	}
	switch s.cfg.PruneMode {
	case "", core.PruneOff:
		// Dense sweeps; no index.
	case core.PruneExact, core.PruneApprox:
		sw, ok := m.(kge.ObjectSweeper)
		if !ok {
			return nil, fmt.Errorf("serve: prune mode %q requires a sweepable model, %T is not", s.cfg.PruneMode, m)
		}
		// One index per model serves every request against it: DiscoverFacts
		// sees a prebuilt PruneIndex and skips its own per-call build.
		// LoadOrBuild falls back to an in-memory build on any sidecar
		// problem, so loading only fails on a truly unusable model.
		ix, loaded, err := prune.LoadOrBuild(sidecar, sw, fp, prune.Params{Cells: s.cfg.PruneCells})
		if err != nil {
			return nil, fmt.Errorf("serve: building prune index: %w", err)
		}
		if sidecar != "" {
			verb := "built"
			if loaded {
				verb = "loaded"
			}
			s.cfg.Logger.Printf("kgserve: %s prune index (%d cells) for sidecar %s", verb, ix.Cells(), sidecar)
		}
		sm.pruneIndex = ix
	default:
		return nil, fmt.Errorf("serve: unknown prune mode %q (want off, exact, or approx)", s.cfg.PruneMode)
	}
	if s.ds.Valid.Len() > 0 {
		s.kgMu.RLock()
		cal, err := eval.FitPlatt(m, s.ds.Valid, s.all, eval.CalibrationOptions{Seed: 1})
		s.kgMu.RUnlock()
		if err == nil {
			sm.calibrator = cal
		}
	}

	s.regMu.Lock()
	if prior, ok := s.models[fp]; ok {
		// Lost a load race for the same weights; keep the winner.
		if makeDefault {
			s.defaultFP = fp
		}
		s.regMu.Unlock()
		if mapped != nil {
			mapped.Close()
		}
		return prior, nil
	}
	s.models[fp] = sm
	if makeDefault || s.defaultFP == "" {
		s.defaultFP = fp
	}
	s.regMu.Unlock()
	return sm, nil
}

// LoadModelFile reads a checkpoint (flat or gob, sniffed) from disk and
// registers it. The prune sidecar lives next to the checkpoint
// (kge.SidecarPath). Used by kgserve's -models flag and POST /models.
func (s *Server) LoadModelFile(path string, makeDefault bool) (*servedModel, error) {
	start := time.Now()
	m, mapped, format, err := kge.LoadAuto(path)
	if err != nil {
		return nil, err
	}
	sm, err := s.addModel(m, mapped, format, path, time.Since(start), kge.SidecarPath(path), makeDefault)
	if err != nil && mapped != nil {
		mapped.Close()
	}
	return sm, err
}

// unloadModel removes the model matching selector (exact fingerprint or
// unique prefix) from the registry and retires it. Unloading the default
// clears the default: subsequent selector-less requests fail until another
// model is made default.
func (s *Server) unloadModel(selector string) (string, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	sm, ok := s.models[selector]
	fp := selector
	if !ok {
		var hits []string
		for cand := range s.models {
			if strings.HasPrefix(cand, selector) {
				hits = append(hits, cand)
			}
		}
		switch len(hits) {
		case 1:
			fp = hits[0]
			sm = s.models[fp]
		case 0:
			return "", fmt.Errorf("no loaded model matches %q", selector)
		default:
			return "", fmt.Errorf("model selector %q is ambiguous (%d matches)", selector, len(hits))
		}
	}
	delete(s.models, fp)
	if s.defaultFP == fp {
		s.defaultFP = ""
	}
	sm.retire()
	return fp, nil
}

// defaultModel returns the current default entry, or nil. It takes no
// reference; callers that score through it must acquireModel instead.
func (s *Server) defaultModel() *servedModel {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.models[s.defaultFP]
}

// modelView is the wire form of one registry entry.
type modelView struct {
	Fingerprint string  `json:"fingerprint"`
	Model       string  `json:"model"`
	Dim         int     `json:"dim"`
	Format      string  `json:"format"`
	Path        string  `json:"path,omitempty"`
	Default     bool    `json:"default"`
	Calibrated  bool    `json:"calibrated"`
	Pruned      bool    `json:"pruned"`
	MappedBytes int     `json:"mapped_bytes,omitempty"`
	LoadMS      float64 `json:"load_ms"`
	InFlight    int     `json:"in_flight"`
}

func (s *Server) viewOf(sm *servedModel, isDefault bool) modelView {
	v := modelView{
		Fingerprint: sm.fingerprint,
		Model:       sm.model.Name(),
		Dim:         sm.model.Dim(),
		Format:      sm.format,
		Path:        sm.path,
		Default:     isDefault,
		Calibrated:  sm.calibrator != nil,
		Pruned:      sm.pruneIndex != nil,
		LoadMS:      float64(sm.loadTime.Microseconds()) / 1000,
	}
	if sm.mapped != nil {
		v.MappedBytes = sm.mapped.MappedBytes()
	}
	sm.mu.Lock()
	v.InFlight = sm.refs
	sm.mu.Unlock()
	return v
}

// modelViews snapshots every live model, fingerprint-sorted.
func (s *Server) modelViews() []modelView {
	s.regMu.RLock()
	sms := make([]*servedModel, 0, len(s.models))
	for _, sm := range s.models {
		sms = append(sms, sm)
	}
	defaultFP := s.defaultFP
	s.regMu.RUnlock()
	sort.Slice(sms, func(i, j int) bool { return sms[i].fingerprint < sms[j].fingerprint })
	out := make([]modelView, len(sms))
	for i, sm := range sms {
		out[i] = s.viewOf(sm, sm.fingerprint == defaultFP)
	}
	return out
}

func (s *Server) handleModelList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.modelViews()})
}

// modelLoadRequest asks the server to serve a checkpoint from its local
// filesystem. This is an operator-facing admin endpoint: the server reads
// whatever path it is told to, so deployments that expose it beyond
// localhost should front it with their own authorization.
type modelLoadRequest struct {
	Path    string `json:"path"`
	Default bool   `json:"default"`
}

func (s *Server) handleModelLoad(w http.ResponseWriter, r *http.Request) {
	var req modelLoadRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "path is required")
		return
	}
	sm, err := s.LoadModelFile(req.Path, req.Default)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "load %s: %v", req.Path, err)
		return
	}
	s.cfg.Logger.Printf("kgserve: loaded model %s (%s, %s) from %s in %s",
		sm.fingerprint[:12], sm.model.Name(), sm.format, req.Path, sm.loadTime.Round(time.Microsecond))
	s.regMu.RLock()
	isDefault := s.defaultFP == sm.fingerprint
	s.regMu.RUnlock()
	writeJSON(w, http.StatusCreated, s.viewOf(sm, isDefault))
}

func (s *Server) handleModelUnload(w http.ResponseWriter, r *http.Request) {
	sel := r.PathValue("fp")
	fp, err := s.unloadModel(sel)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.cfg.Logger.Printf("kgserve: unloaded model %s", fp[:12])
	writeJSON(w, http.StatusOK, map[string]any{"unloaded": fp})
}
