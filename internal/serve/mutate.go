package serve

import (
	"errors"
	"net/http"

	"repro/internal/mutate"
)

// POST /mutate applies one batched graph mutation. The request body is a
// mutate.Batch:
//
//	{"seq": 1, "source": "ingest", "timestamp": "...", "ops":
//	  [{"op": "add", "s": "...", "r": "...", "o": "..."},
//	   {"op": "delete", ...}]}
//
// Batches apply atomically under the graph write lock and are appended to
// the mutation log (when configured) before any in-memory structure changes.
// Responses report what the batch net-changed and how many cache entries it
// invalidated; a sequence gap returns 409 with the expected sequence number
// so an out-of-sync client can resynchronize.
type mutateResponse struct {
	Seq     int64 `json:"seq"`
	Added   int   `json:"added"`
	Deleted int   `json:"deleted"`
	// DirtyRelations are the relations with a net triple change, by name.
	DirtyRelations []string `json:"dirty_relations"`
	// Invalidated counts response-cache entries dropped by this batch.
	Invalidated int `json:"invalidated"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxMutationOps < 0 {
		writeError(w, http.StatusServiceUnavailable, "mutations are disabled on this server")
		return
	}
	var b mutate.Batch
	if !s.decode(w, r, &b) {
		return
	}
	if len(b.Ops) > s.cfg.MaxMutationOps {
		s.metrics.incMutationRejected()
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch has %d ops, limit is %d", len(b.Ops), s.cfg.MaxMutationOps)
		return
	}

	s.kgMu.Lock()
	ap, err := s.mut.Apply(b)
	var invalidated int
	if err == nil && ap.Effective() {
		// Invalidate under the same write-lock hold: readers acquiring the
		// lock after this batch can never see a pre-batch cache entry whose
		// relations the batch touched.
		invalidated = s.cache.InvalidateRelations(ap.NetRels)
	}
	s.kgMu.Unlock()

	if err != nil {
		s.metrics.incMutationRejected()
		var gap *mutate.SequenceGapError
		var invalid *mutate.ValidationError
		switch {
		case errors.As(err, &gap):
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":        err.Error(),
				"expected_seq": gap.Want,
			})
		case errors.As(err, &invalid), errors.Is(err, mutate.ErrEmptyBatch):
			writeError(w, http.StatusBadRequest, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "mutation failed: %v", err)
		}
		return
	}

	s.metrics.observeMutation(ap.Added, ap.Deleted, invalidated)
	names := make([]string, len(ap.NetRels))
	for i, rid := range ap.NetRels {
		names[i] = s.ds.Train.Relations.Name(int32(rid))
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Seq:            ap.Seq,
		Added:          ap.Added,
		Deleted:        ap.Deleted,
		DirtyRelations: names,
		Invalidated:    invalidated,
	})
}

// MutationSeq returns the sequence number of the last applied batch; tests
// and the CLI use it to resynchronize.
func (s *Server) MutationSeq() int64 {
	s.kgMu.RLock()
	defer s.kgMu.RUnlock()
	return s.mut.Seq()
}
