package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeDiscoverCached measures the hot serving path: identical
// /discover requests answered from the LRU cache, hammered from parallel
// goroutines the way production traffic would arrive.
func BenchmarkServeDiscoverCached(b *testing.B) {
	srv := newTestServer(b, nil)
	h := srv.Handler()
	// Prime the cache with one cold run.
	req := httptest.NewRequest("POST", "/discover", strings.NewReader(discoverBody))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("prime: %d %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/discover", strings.NewReader(discoverBody))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("code %d", rec.Code)
			}
		}
	})
}

// BenchmarkServeDiscoverCold measures the same endpoint with caching
// disabled and a fresh seed per request, so every iteration pays for a full
// Algorithm 1 sweep.
func BenchmarkServeDiscoverCold(b *testing.B) {
	srv := newTestServer(b, func(c *Config) { c.CacheSize = -1 })
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":%d}`, i)
		req := httptest.NewRequest("POST", "/discover", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d: %s", rec.Code, rec.Body.String())
		}
	}
}
