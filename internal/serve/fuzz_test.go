package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
)

// fuzzPaths are the four JSON request decoders under test.
var fuzzPaths = []string{"/score", "/rank", "/query", "/discover"}

// FuzzDecodeRequest drives arbitrary bodies through every POST decoder and
// asserts the error contract: handlers never panic (a panic would either
// crash the test process or surface as a 5xx through the recovery
// middleware), no input produces a 5xx, and every non-2xx response is
// well-formed {"error": ...} JSON. Discovery itself is stubbed so the fuzzer
// exercises decoding and validation, not embedding sweeps.
func FuzzDecodeRequest(f *testing.F) {
	srv := newTestServer(f, nil)
	srv.discover = func(context.Context, kge.Model, *kg.Graph, core.Strategy, core.Options) (*core.Result, error) {
		return stubResult(), nil
	}
	h := srv.Handler()

	// Seed corpus: the table-driven error cases plus one valid body per
	// endpoint.
	seeds := []struct {
		which uint8
		body  string
	}{
		{0, `{"subject":"e1","relation":"r0","object":"e2"}`},
		{0, `{"subject":"ghost","relation":"r0","object":"e2"}`},
		{0, "{"},
		{0, ""},
		{1, `{"subject":"e1","relation":"ghost","object":"e2"}`},
		{1, `{"subject":`},
		{2, `{"subject":"e1","relation":"r0","k":5}`},
		{2, `{"subject":"e1","relation":"r0","k":-1}`},
		{2, "not json"},
		{3, `{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":3}`},
		{3, `{"strategy":"bogus"}`},
		{3, `{"relations":["ghost"]}`},
		{3, `{"top_n":-5}`},
		{3, `{"max_candidates":-1,"limit":-2}`},
		{3, `{"strategy"`},
		{3, `{"seed":9223372036854775807,"k":null}`},
	}
	for _, s := range seeds {
		f.Add(s.which, []byte(s.body))
	}

	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		path := fuzzPaths[int(which)%len(fuzzPaths)]
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		if rec.Code >= 500 {
			t.Fatalf("%s with body %q: server error %d: %s", path, body, rec.Code, rec.Body.String())
		}
		if rec.Code < 200 || rec.Code >= 300 {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("%s with body %q: non-2xx %d without error JSON: %q", path, body, rec.Code, rec.Body.String())
			}
		} else if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s with body %q: 2xx with invalid JSON body: %q", path, body, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s with body %q: Content-Type %q", path, body, ct)
		}
	})
}
