package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/kg"
)

// lruCache is a mutex-guarded LRU over rendered response bodies. Values are
// the exact bytes previously written to a client, so a hit replays a
// byte-identical response. A nil *lruCache (caching disabled) is a valid
// receiver: Get always misses and Add is a no-op.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	onEvict func()
}

// lruEntry tags each cached body with the relations it depends on, under a
// precise contract: a non-nil rels slice asserts the response is a function
// of the model weights (pinned by the key's fingerprint) and the *per-
// relation* data of exactly those relations — pools, counts, membership,
// (s,r) adjacency. Such entries survive a mutation batch unless one of their
// relations had a net triple change. rels == nil makes no such claim, so the
// entry is dropped on any effective mutation.
type lruEntry struct {
	key  string
	body []byte
	rels []kg.RelationID
}

// newLRUCache returns a cache holding at most capacity entries. onEvict, if
// non-nil, is called once per evicted entry (used for the eviction counter).
func newLRUCache(capacity int, onEvict func()) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element, capacity),
		onEvict: onEvict,
	}
}

func (c *lruCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Add caches body under key with the given relation tag (see lruEntry for
// the tag contract; nil means "invalidate on any effective mutation").
func (c *lruCache) Add(key string, body []byte, rels []kg.RelationID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.body = body
		e.rels = rels
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body, rels: rels})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// InvalidateRelations drops every entry a mutation batch could have staled:
// entries with a nil tag, and tagged entries whose relations intersect dirty
// (the batch's net-changed relations). It returns how many entries were
// dropped. Callers only invoke it for effective batches (dirty non-empty).
func (c *lruCache) InvalidateRelations(dirty []kg.RelationID) int {
	if c == nil {
		return 0
	}
	dirtySet := make(map[kg.RelationID]struct{}, len(dirty))
	for _, r := range dirty {
		dirtySet[r] = struct{}{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*lruEntry)
		stale := e.rels == nil
		for _, r := range e.rels {
			if _, ok := dirtySet[r]; ok {
				stale = true
				break
			}
		}
		if stale {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

func (c *lruCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightCall is one in-flight execution that concurrent duplicate requests
// wait on instead of re-running.
type flightCall struct {
	wg   sync.WaitGroup
	body []byte
	err  error
}

// flightGroup is a minimal single-flight implementation (the stdlib has none
// outside x/sync): concurrent Do calls with the same key run fn exactly once
// and all receive its result.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
	// waiting counts callers currently blocked on another caller's
	// execution; tests use it to know when every concurrent request has
	// coalesced before releasing the leader.
	waiting atomic.Int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers. joined reports whether
// this caller attached to an execution started by another request — the
// single-flight dedup count is the number of joined callers.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (body []byte, err error, joined bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.waiting.Add(1)
		c.wg.Wait()
		g.waiting.Add(-1)
		return c.body, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.body, c.err, false
}
