package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
)

// waitJob polls GET /jobs/{id} until the job reaches want, failing if it
// settles in any other terminal state first.
func waitJob(t testing.TB, h http.Handler, id string, want jobs.State) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec, body := doReq(t, h, "GET", "/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: code %d: %v", id, rec.Code, body)
		}
		state, _ := body["state"].(string)
		if state == string(want) {
			return body
		}
		if jobs.State(state).Finished() {
			t.Fatalf("job %s finished as %q (error: %v), want %q", id, state, body["error"], want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q waiting for %q", id, state, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycleMatchesDiscover runs the same sweep synchronously through
// /discover and asynchronously through /jobs and requires identical result
// bodies (up to the wall-clock runtime_ms field): the async path is a
// transport change, not an algorithm change.
func TestJobLifecycleMatchesDiscover(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()

	rec, submitted := doReq(t, h, "POST", "/jobs", discoverBody)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs: code %d, want 202: %v", rec.Code, submitted)
	}
	id, _ := submitted["id"].(string)
	if id == "" {
		t.Fatalf("POST /jobs: no id in %v", submitted)
	}
	if loc := rec.Header().Get("Location"); loc != "/jobs/"+id {
		t.Fatalf("Location = %q, want %q", loc, "/jobs/"+id)
	}

	status := waitJob(t, h, id, jobs.StateDone)
	if status["result_url"] != "/jobs/"+id+"/result" {
		t.Fatalf("done status missing result_url: %v", status)
	}
	total := int(status["total_relations"].(float64))
	done := int(status["done_relations"].(float64))
	if total == 0 || done != total {
		t.Fatalf("done job reports %d/%d relations", done, total)
	}

	asyncRec, asyncBody := doReq(t, h, "GET", "/jobs/"+id+"/result", nil)
	if asyncRec.Code != http.StatusOK {
		t.Fatalf("GET result: code %d: %v", asyncRec.Code, asyncBody)
	}
	syncRec, syncBody := doReq(t, h, "POST", "/discover", discoverBody)
	if syncRec.Code != http.StatusOK {
		t.Fatalf("POST /discover: code %d: %v", syncRec.Code, syncBody)
	}
	// runtime_ms is wall clock; everything else must match exactly.
	delete(asyncBody, "runtime_ms")
	delete(syncBody, "runtime_ms")
	a, _ := json.Marshal(asyncBody)
	b, _ := json.Marshal(syncBody)
	if string(a) != string(b) {
		t.Fatalf("async result differs from synchronous /discover:\n%s\nvs\n%s", a, b)
	}

	// ?limit= overrides the submission's limit on the result endpoint.
	rec, body := doReq(t, h, "GET", "/jobs/"+id+"/result?limit=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET result?limit=1: code %d", rec.Code)
	}
	if facts, _ := body["facts"].([]any); len(facts) != 1 {
		t.Fatalf("limit=1 returned %d facts", len(facts))
	}
	rec, _ = doReq(t, h, "GET", "/jobs/"+id+"/result?limit=bogus", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus limit: code %d, want 400", rec.Code)
	}

	// The job shows up in the listing.
	rec, listing := doReq(t, h, "GET", "/jobs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs: code %d", rec.Code)
	}
	if js, _ := listing["jobs"].([]any); len(js) != 1 {
		t.Fatalf("GET /jobs listed %d jobs, want 1", len(js))
	}
}

// TestJobCancel walks the cancellation state machine over HTTP: a running
// job cancels with 200, a finished one refuses with 409, an unknown id is
// 404, and the result endpoint reports 409 for the cancelled job.
func TestJobCancel(t *testing.T) {
	srv := newTestServer(t, nil)
	entered := make(chan struct{})
	srv.discover = func(ctx context.Context, _ kge.Model, _ *kg.Graph, _ core.Strategy, _ core.Options) (*core.Result, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	h := srv.Handler()

	rec, submitted := doReq(t, h, "POST", "/jobs", discoverBody)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs: code %d", rec.Code)
	}
	id := submitted["id"].(string)
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started executing")
	}

	rec, body := doReq(t, h, "DELETE", "/jobs/"+id, nil)
	if rec.Code != http.StatusOK || body["cancelled"] != true {
		t.Fatalf("DELETE running job: code %d body %v", rec.Code, body)
	}
	waitJob(t, h, id, jobs.StateCancelled)

	rec, body = doReq(t, h, "GET", "/jobs/"+id+"/result", nil)
	if rec.Code != http.StatusConflict || body["state"] != string(jobs.StateCancelled) {
		t.Fatalf("result of cancelled job: code %d body %v, want 409/cancelled", rec.Code, body)
	}
	rec, body = doReq(t, h, "DELETE", "/jobs/"+id, nil)
	if rec.Code != http.StatusConflict || body["cancelled"] != false {
		t.Fatalf("DELETE finished job: code %d body %v, want 409", rec.Code, body)
	}
	rec, _ = doReq(t, h, "DELETE", "/jobs/no-such-job", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: code %d, want 404", rec.Code)
	}
	rec, _ = doReq(t, h, "GET", "/jobs/no-such-job", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown job: code %d, want 404", rec.Code)
	}
	rec, _ = doReq(t, h, "GET", "/jobs/no-such-job/result", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown result: code %d, want 404", rec.Code)
	}
}

// TestJobSubmitValidation mirrors the synchronous /discover validation on
// the async path.
func TestJobSubmitValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad JSON", `{`, http.StatusBadRequest},
		{"negative top_n", `{"top_n":-1}`, http.StatusBadRequest},
		{"unknown strategy", `{"strategy":"astrology"}`, http.StatusBadRequest},
		{"unknown relation", `{"relations":["no_such_relation"]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		rec, body := doReq(t, h, "POST", "/jobs", tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: code %d, want %d (%v)", tc.name, rec.Code, tc.code, body)
		}
	}
	if _, counters := srv.jobs.Snapshot(); counters.Submitted != 0 {
		t.Fatalf("invalid submissions reached the manager: %+v", counters)
	}
}

// TestJobQueueFull fills the single worker and the whole queue with blocked
// jobs and requires the next submission to bounce with 429 + Retry-After.
func TestJobQueueFull(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.JobWorkers = 1 })
	srv.discover = func(ctx context.Context, _ kge.Model, _ *kg.Graph, _ core.Strategy, _ core.Options) (*core.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	h := srv.Handler()

	// One job occupies the worker — wait until it actually dequeues, so the
	// queue slot it held is free again — then QueueDepth (manager default
	// 256) more fill the queue. Distinct seeds only for readability — jobs
	// never dedupe.
	rec0, first := doReq(t, h, "POST", "/jobs", `{"top_n":5,"seed":0}`)
	if rec0.Code != http.StatusAccepted {
		t.Fatalf("first submission: code %d body %v", rec0.Code, first)
	}
	waitJob(t, h, first["id"].(string), jobs.StateRunning)
	for i := 1; i < 1+256; i++ {
		rec, body := doReq(t, h, "POST", "/jobs", fmt.Sprintf(`{"top_n":5,"seed":%d}`, i))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submission %d: code %d body %v", i, rec.Code, body)
		}
	}
	rec, _ := doReq(t, h, "POST", "/jobs", `{"top_n":5}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: code %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestJobMetrics completes one job and requires the /metrics scrape to carry
// the job-state gauge and lifecycle counters.
func TestJobMetrics(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	rec, submitted := doReq(t, h, "POST", "/jobs", discoverBody)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs: code %d", rec.Code)
	}
	waitJob(t, h, submitted["id"].(string), jobs.StateDone)

	scrape := httptest.NewRecorder()
	h.ServeHTTP(scrape, httptest.NewRequest("GET", "/metrics", nil))
	if scrape.Code != http.StatusOK {
		t.Fatalf("GET /metrics: code %d", scrape.Code)
	}
	text := scrape.Body.String()
	for _, want := range []string{
		`kgserve_jobs{state="done"} 1`,
		`kgserve_jobs{state="running"} 0`,
		"kgserve_jobs_submitted_total 1",
		"kgserve_jobs_completed_total 1",
		"kgserve_jobs_failed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}
