package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
)

// The async discovery API. A full-dataset sweep is the paper's headline
// cost; /discover holds the HTTP request open for all of it, which caps
// practical sweep size at the request deadline. /jobs runs the same sweep on
// the jobs.Manager worker pool instead: submission returns 202 immediately,
// progress is observable per relation, and (when the server is started with
// a journal directory) a crash loses nothing — completed relations are
// re-read from the WAL on resubmission.
//
//	POST   /jobs             → 202 {"id": "job-000001", ...}
//	GET    /jobs             → every retained job's status
//	GET    /jobs/{id}        → one job's status and progress
//	GET    /jobs/{id}/result → the discovered facts once state is "done"
//	DELETE /jobs/{id}        → cancel a queued or running job

// jobStatusView is the wire form of jobs.Status: times flattened to RFC3339
// (zero times omitted) plus the HTTP paths for the next actions.
type jobStatusView struct {
	ID       string     `json:"id"`
	Label    string     `json:"label,omitempty"`
	State    jobs.State `json:"state"`
	Error    string     `json:"error,omitempty"`
	Resumed  int        `json:"resumed_relations"`
	Done     int        `json:"done_relations"`
	Total    int        `json:"total_relations"`
	Facts    int        `json:"facts"`
	Created  string     `json:"created,omitempty"`
	Started  string     `json:"started,omitempty"`
	Finished string     `json:"finished,omitempty"`
	URL      string     `json:"url"`
	Result   string     `json:"result_url,omitempty"`
}

func jobView(st jobs.Status) jobStatusView {
	v := jobStatusView{
		ID: st.ID, Label: st.Label, State: st.State, Error: st.Error,
		Resumed: st.Resumed, Done: st.Done, Total: st.Total, Facts: st.Facts,
		URL: "/jobs/" + st.ID,
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	v.Created, v.Started, v.Finished = stamp(st.Created), stamp(st.Started), stamp(st.Finished)
	if st.State == jobs.StateDone {
		v.Result = "/jobs/" + st.ID + "/result"
	}
	return v
}

// jobLimits remembers each submission's requested result limit. Entries are
// pruned opportunistically against the manager's retained set, so eviction
// there bounds this map too.
type jobLimits struct {
	mu sync.Mutex
	m  map[string]int
}

func (l *jobLimits) set(id string, limit int) {
	l.mu.Lock()
	if l.m == nil {
		l.m = make(map[string]int)
	}
	l.m[id] = limit
	l.mu.Unlock()
}

func (l *jobLimits) get(id string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m[id]
}

func (l *jobLimits) prune(retained []jobs.Status) {
	keep := make(map[string]bool, len(retained))
	for _, st := range retained {
		keep[st.ID] = true
	}
	l.mu.Lock()
	for id := range l.m {
		if !keep[id] {
			delete(l.m, id)
		}
	}
	l.mu.Unlock()
}

// handleJobSubmit validates a discover-shaped request and queues it as an
// async job. 202 Accepted with the job's status; the Location header points
// at the status URL.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.TopN < 0 || req.MaxCandidates < 0 || req.Limit < 0 {
		writeError(w, http.StatusBadRequest,
			"top_n, max_candidates, and limit must be non-negative, got %d/%d/%d",
			req.TopN, req.MaxCandidates, req.Limit)
		return
	}
	if req.Strategy == "" {
		req.Strategy = "entity_frequency"
	}
	strategy, err := core.ExtendedStrategyByName(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The job holds a reference on the model for its whole (asynchronous)
	// lifetime: OnFinish fires at the terminal state — including jobs
	// cancelled while queued — so a model unloaded mid-job stays mapped
	// until the sweep ends.
	sm, err := s.acquireModel(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	var relations []kg.RelationID
	for _, name := range req.Relations {
		rid, ok := s.ds.Train.Relations.Lookup(name)
		if !ok {
			sm.release()
			writeError(w, http.StatusNotFound, "unknown relation %q", name)
			return
		}
		relations = append(relations, kg.RelationID(rid))
	}

	opts := core.Options{
		TopN:          req.TopN,
		MaxCandidates: req.MaxCandidates,
		Relations:     relations,
		Seed:          req.Seed,
	}
	s.applyPruneOptions(sm, &opts)
	job, err := s.jobs.Submit(jobs.Spec{
		Model:       sm.model,
		Graph:       s.ds.Train,
		Strategy:    strategy,
		Options:     opts,
		Fingerprint: sm.fingerprint,
		Label:       "discover strategy=" + req.Strategy,
		OnFinish:    func(jobs.State) { sm.release() },
	})
	if err == jobs.ErrQueueFull {
		sm.release()
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "job queue is full, retry shortly")
		return
	}
	if err != nil {
		sm.release()
		writeError(w, http.StatusInternalServerError, "submit failed: %v", err)
		return
	}
	s.limits.set(job.ID(), req.Limit)
	s.limits.prune(s.jobs.List())
	w.Header().Set("Location", "/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, jobView(job.Status()))
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	statuses := s.jobs.List()
	views := make([]jobStatusView, len(statuses))
	for i, st := range statuses {
		views[i] = jobView(st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jobView(job.Status()))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res, done := job.Result()
	if !done {
		st := job.Status()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "job has no result in state " + string(st.State),
			"state": st.State,
			"job":   jobView(st),
		})
		return
	}
	limit := s.limits.get(job.ID())
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", q)
			return
		}
		limit = n
	}
	body, err := s.renderResult(res, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render failed: %v", err)
		return
	}
	writeJSONBody(w, http.StatusOK, body)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.jobs.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":     "job already finished",
			"cancelled": false,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": true, "id": id})
}

// renderResult renders a discovery result body (shared by the synchronous
// /discover path and /jobs/{id}/result, so the two stay wire-compatible).
func (s *Server) renderResult(res *core.Result, limit int) ([]byte, error) {
	if limit <= 0 || limit > len(res.Facts) {
		limit = len(res.Facts)
	}
	facts := make([]discoveredFact, 0, limit)
	for _, f := range res.Facts[:limit] {
		facts = append(facts, discoveredFact{
			Subject:  s.ds.Train.Entities.Name(int32(f.Triple.S)),
			Relation: s.ds.Train.Relations.Name(int32(f.Triple.R)),
			Object:   s.ds.Train.Entities.Name(int32(f.Triple.O)),
			Rank:     f.Rank,
		})
	}
	return json.Marshal(map[string]any{
		"facts":      facts,
		"total":      len(res.Facts),
		"mrr":        res.MRR(),
		"runtime_ms": res.Stats.Total.Milliseconds(),
	})
}
