package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// runtimeMS matches the one wall-clock field in a /discover response; it is
// the only part of the body that may legitimately differ between two runs.
var runtimeMS = regexp.MustCompile(`"runtime_ms":\d+`)

// TestServePrunedDiscoverIdentical: a server configured with -prune=exact
// must serve byte-identical /discover responses to a dense server over the
// same weights — the HTTP layer inherits the kernel-level identity claim.
// Byte identity covers everything deterministic (facts, ranks, mrr, total);
// runtime_ms is masked before comparing.
func TestServePrunedDiscoverIdentical(t *testing.T) {
	dense := newTestServer(t, nil)
	pruned := newTestServer(t, func(c *Config) { c.PruneMode = core.PruneExact })
	if pruned.defaultModel().pruneIndex == nil {
		t.Fatal("exact-mode server built no prune index")
	}

	body := map[string]any{"top_n": 5, "max_candidates": 60, "seed": 21}
	recDense, _ := doReq(t, dense.Handler(), "POST", "/discover", body)
	recPruned, _ := doReq(t, pruned.Handler(), "POST", "/discover", body)
	if recDense.Code != http.StatusOK || recPruned.Code != http.StatusOK {
		t.Fatalf("discover codes: dense %d, pruned %d", recDense.Code, recPruned.Code)
	}
	denseBody := runtimeMS.ReplaceAllString(recDense.Body.String(), `"runtime_ms":0`)
	prunedBody := runtimeMS.ReplaceAllString(recPruned.Body.String(), `"runtime_ms":0`)
	if denseBody != prunedBody {
		t.Errorf("pruned /discover body differs from dense:\ndense:  %s\npruned: %s",
			denseBody, prunedBody)
	}

	// The pruned sweep must surface in /metrics. On an 80-entity model the
	// cell bounds are loose enough that the early break (cells_pruned) may
	// never fire, but every visited cell with a full frontier runs the int8
	// prescreen, so that counter must move.
	scrape := httptest.NewRecorder()
	pruned.Handler().ServeHTTP(scrape, httptest.NewRequest("GET", "/metrics", nil))
	out := scrape.Body.String()
	for _, name := range []string{
		"kgserve_ranking_pruned_cells_total",
		"kgserve_ranking_pruned_prescreen_rows_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
	if strings.Contains(out, "kgserve_ranking_pruned_prescreen_rows_total 0\n") {
		t.Error("kgserve_ranking_pruned_prescreen_rows_total still zero after a pruned sweep")
	}
}

// TestServePrunedJob runs an async job on a pruning server and checks the
// job-side Options injection: the run completes and its prune counters reach
// /metrics through the manager's observeDiscovery forwarding.
func TestServePrunedJob(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.PruneMode = core.PruneExact })
	h := srv.Handler()

	rec, out := doReq(t, h, "POST", "/jobs", map[string]any{
		"top_n": 5, "max_candidates": 60, "seed": 21,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs: code %d body %v", rec.Code, out)
	}
	id, _ := out["id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, out = doReq(t, h, "GET", "/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: code %d body %v", id, rec.Code, out)
		}
		if st, _ := out["state"].(string); st == "done" {
			break
		} else if st == "failed" || st == "cancelled" {
			t.Fatalf("job ended in state %q: %v", st, out)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not complete in time: %v", id, out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	scrape := httptest.NewRecorder()
	h.ServeHTTP(scrape, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(scrape.Body.String(), "kgserve_ranking_pruned_prescreen_rows_total 0\n") {
		t.Error("pruned job left kgserve_ranking_pruned_prescreen_rows_total at zero")
	}
}

// TestServePruneSidecar: with PruneIndexPath set, startup persists the index
// sidecar so the next process skips the k-means build.
func TestServePruneSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.kge.ivf")
	newTestServer(t, func(c *Config) {
		c.PruneMode = core.PruneApprox
		c.PruneIndexPath = path
	})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("sidecar not persisted: %v", err)
	}
	// Second construction must accept (and reuse) the sidecar it just wrote.
	srv2 := newTestServer(t, func(c *Config) {
		c.PruneMode = core.PruneApprox
		c.PruneIndexPath = path
	})
	if srv2.defaultModel().pruneIndex == nil {
		t.Fatal("second server built no prune index from sidecar")
	}
}

func TestServePruneModeValidation(t *testing.T) {
	ds, m := testModel(t)
	if _, err := New(ds, m, Config{PruneMode: "sometimes"}); err == nil {
		t.Fatal("bogus prune mode accepted")
	}
	// "off" must be equivalent to the zero value.
	srv, err := New(ds, m, Config{PruneMode: core.PruneOff})
	if err != nil {
		t.Fatalf("PruneMode off: %v", err)
	}
	defer srv.Close()
	if srv.defaultModel().pruneIndex != nil {
		t.Error("off-mode server built a prune index")
	}
}
