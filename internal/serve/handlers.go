package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/kg"
)

// errOverloaded reports that the discovery semaphore is full; the handler
// maps it to 429 + Retry-After.
var errOverloaded = errors.New("serve: discovery concurrency limit reached")

// decode unmarshals the request body, translating the two decode failure
// classes to their status codes: 413 when the body-limit middleware tripped
// and 400 for malformed JSON (including an empty body).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := s.ds.Metadata()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":     m.Name,
		"model":       s.model.Name(),
		"dim":         s.model.Dim(),
		"fingerprint": s.fingerprint,
		"train":       m.Train,
		"validation":  m.Validation,
		"test":        m.Test,
		"entities":    m.Entities,
		"relations":   m.Relations,
		"calibrated":  s.calibrator != nil,
	})
}

// tripleRequest names a triple by its dictionary labels.
type tripleRequest struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
}

// resolve maps the request names to IDs, reporting which name is unknown.
func (s *Server) resolve(req tripleRequest) (kg.Triple, error) {
	sid, ok := s.ds.Train.Entities.Lookup(req.Subject)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown subject %q", req.Subject)
	}
	rid, ok := s.ds.Train.Relations.Lookup(req.Relation)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown relation %q", req.Relation)
	}
	oid, ok := s.ds.Train.Entities.Lookup(req.Object)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown object %q", req.Object)
	}
	return kg.Triple{S: kg.EntityID(sid), R: kg.RelationID(rid), O: kg.EntityID(oid)}, nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req tripleRequest
	if !s.decode(w, r, &req) {
		return
	}
	t, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	score := s.model.Score(t)
	resp := map[string]any{"score": score, "known": s.ds.All().Contains(t)}
	if s.calibrator != nil {
		resp["probability"] = s.calibrator.Prob(score)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req tripleRequest
	if !s.decode(w, r, &req) {
		return
	}
	t, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rank": s.ranker.RankObject(t)})
}

type queryRequest struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	K        int    `json:"k"`
}

type queryAnswer struct {
	Object string  `json:"object"`
	Score  float32 `json:"score"`
	Known  bool    `json:"known"`
}

// queryKey is the canonicalized form of a query request: resolved IDs and
// the effective k, so label aliases and default-k spellings share one cache
// entry.
type queryKey struct {
	S kg.EntityID   `json:"s"`
	R kg.RelationID `json:"r"`
	K int           `json:"k"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, "k must be non-negative, got %d", req.K)
		return
	}
	sid, ok := s.ds.Train.Entities.Lookup(req.Subject)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown subject %q", req.Subject)
		return
	}
	rid, ok := s.ds.Train.Relations.Lookup(req.Relation)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown relation %q", req.Relation)
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k > s.model.NumEntities() {
		k = s.model.NumEntities()
	}
	key := s.cacheKey("query", queryKey{S: kg.EntityID(sid), R: kg.RelationID(rid), K: k})
	if body, ok := s.cache.Get(key); ok {
		s.metrics.incCacheHit()
		w.Header().Set("X-Cache", "hit")
		writeJSONBody(w, http.StatusOK, body)
		return
	}
	s.metrics.incCacheMiss()
	body, err, joined := s.flight.Do(key, func() ([]byte, error) {
		b, err := s.runQuery(kg.EntityID(sid), kg.RelationID(rid), k)
		if err == nil {
			s.cache.Add(key, b)
		}
		return b, err
	})
	if joined {
		s.metrics.incDedup()
		w.Header().Set("X-Cache", "dedup")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	writeJSONBody(w, http.StatusOK, body)
}

// runQuery performs one full object sweep for (s, r) and renders the top-k
// answer body.
func (s *Server) runQuery(sid kg.EntityID, rid kg.RelationID, k int) ([]byte, error) {
	scores := s.model.ScoreAllObjects(sid, rid, make([]float32, s.model.NumEntities()))
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	all := s.ds.All()
	answers := make([]queryAnswer, 0, k)
	for _, o := range order[:k] {
		t := kg.Triple{S: sid, R: rid, O: kg.EntityID(o)}
		answers = append(answers, queryAnswer{
			Object: s.ds.Train.Entities.Name(int32(o)),
			Score:  scores[o],
			Known:  all.Contains(t),
		})
	}
	return json.Marshal(map[string]any{"answers": answers})
}

type discoverRequest struct {
	Strategy      string   `json:"strategy"`
	TopN          int      `json:"top_n"`
	MaxCandidates int      `json:"max_candidates"`
	Relations     []string `json:"relations"`
	Limit         int      `json:"limit"`
	Seed          int64    `json:"seed"`
}

// discoverKey is the canonicalized form of a discover request: the strategy
// name normalized, relation labels resolved to IDs, defaults applied. Its
// JSON rendering (fixed field order) plus the weight fingerprint is the
// cache key.
type discoverKey struct {
	Strategy      string          `json:"strategy"`
	TopN          int             `json:"top_n"`
	MaxCandidates int             `json:"max_candidates"`
	Relations     []kg.RelationID `json:"relations"`
	Limit         int             `json:"limit"`
	Seed          int64           `json:"seed"`
}

type discoveredFact struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
	Rank     int    `json:"rank"`
}

// cacheKey derives the response-cache key: endpoint, the canonical weight
// fingerprint (so a model swap can never serve stale answers), and the
// canonicalized request.
func (s *Server) cacheKey(endpoint string, canonical any) string {
	b, _ := json.Marshal(canonical)
	return endpoint + "\x00" + s.fingerprint + "\x00" + string(b)
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.TopN < 0 || req.MaxCandidates < 0 || req.Limit < 0 {
		writeError(w, http.StatusBadRequest,
			"top_n, max_candidates, and limit must be non-negative, got %d/%d/%d",
			req.TopN, req.MaxCandidates, req.Limit)
		return
	}
	if req.Strategy == "" {
		req.Strategy = "entity_frequency"
	}
	strategy, err := core.ExtendedStrategyByName(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var relations []kg.RelationID
	for _, name := range req.Relations {
		rid, ok := s.ds.Train.Relations.Lookup(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown relation %q", name)
			return
		}
		relations = append(relations, kg.RelationID(rid))
	}

	key := s.cacheKey("discover", discoverKey{
		Strategy:      req.Strategy,
		TopN:          req.TopN,
		MaxCandidates: req.MaxCandidates,
		Relations:     relations,
		Limit:         req.Limit,
		Seed:          req.Seed,
	})
	if body, ok := s.cache.Get(key); ok {
		s.metrics.incCacheHit()
		w.Header().Set("X-Cache", "hit")
		writeJSONBody(w, http.StatusOK, body)
		return
	}
	s.metrics.incCacheMiss()
	body, err, joined := s.flight.Do(key, func() ([]byte, error) {
		b, err := s.runDiscover(strategy, relations, req)
		if err == nil {
			s.cache.Add(key, b)
		}
		return b, err
	})
	if joined {
		s.metrics.incDedup()
		w.Header().Set("X-Cache", "dedup")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	switch {
	case err == nil:
		writeJSONBody(w, http.StatusOK, body)
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server is at its discovery concurrency limit, retry shortly")
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// Never partial facts: DiscoverFacts propagates cancellation as an
		// error instead of returning a truncated result set.
		writeError(w, http.StatusServiceUnavailable, "discovery timed out after %s", s.cfg.RequestTimeout)
	default:
		writeError(w, http.StatusInternalServerError, "discovery failed: %v", err)
	}
}

// runDiscover executes one discovery sweep under the concurrency semaphore
// and renders the response body. It runs on a server-scoped context (with
// the same deadline as any request) rather than the leader request's
// context, so a single client disconnect cannot cancel a sweep that other
// coalesced requests are waiting on.
func (s *Server) runDiscover(strategy core.Strategy, relations []kg.RelationID, req discoverRequest) ([]byte, error) {
	select {
	case s.discoverSem <- struct{}{}:
	default:
		s.metrics.incRejected()
		return nil, errOverloaded
	}
	defer func() { <-s.discoverSem }()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	opts := core.Options{
		TopN:          req.TopN,
		MaxCandidates: req.MaxCandidates,
		Relations:     relations,
		Seed:          req.Seed,
	}
	s.applyPruneOptions(&opts)
	res, err := s.discover(ctx, s.model, s.ds.Train, strategy, opts)
	if err != nil {
		return nil, err
	}
	s.metrics.observeDiscovery(res.Stats)
	return s.renderResult(res, req.Limit)
}
