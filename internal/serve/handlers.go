package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/kg"
)

// errOverloaded reports that the discovery semaphore is full; the handler
// maps it to 429 + Retry-After.
var errOverloaded = errors.New("serve: discovery concurrency limit reached")

// decode unmarshals the request body, translating the two decode failure
// classes to their status codes: 413 when the body-limit middleware tripped
// and 400 for malformed JSON (including an empty body).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := s.ds.Metadata()
	resp := map[string]any{
		"dataset":    m.Name,
		"train":      m.Train,
		"validation": m.Validation,
		"test":       m.Test,
		"entities":   m.Entities,
		"relations":  m.Relations,
	}
	s.regMu.RLock()
	resp["models"] = len(s.models)
	s.regMu.RUnlock()
	if sm := s.defaultModel(); sm != nil {
		resp["model"] = sm.model.Name()
		resp["dim"] = sm.model.Dim()
		resp["fingerprint"] = sm.fingerprint
		resp["calibrated"] = sm.calibrator != nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// tripleRequest names a triple by its dictionary labels. Model optionally
// selects a registry entry by fingerprint (or unique prefix); empty routes
// to the default model.
type tripleRequest struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
	Model    string `json:"model"`
}

// resolve maps the request names to IDs, reporting which name is unknown.
func (s *Server) resolve(req tripleRequest) (kg.Triple, error) {
	sid, ok := s.ds.Train.Entities.Lookup(req.Subject)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown subject %q", req.Subject)
	}
	rid, ok := s.ds.Train.Relations.Lookup(req.Relation)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown relation %q", req.Relation)
	}
	oid, ok := s.ds.Train.Entities.Lookup(req.Object)
	if !ok {
		return kg.Triple{}, fmt.Errorf("unknown object %q", req.Object)
	}
	return kg.Triple{S: kg.EntityID(sid), R: kg.RelationID(rid), O: kg.EntityID(oid)}, nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req tripleRequest
	if !s.decode(w, r, &req) {
		return
	}
	sm, err := s.acquireModel(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer sm.release()
	t, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	score := sm.model.Score(t)
	s.kgMu.RLock()
	known := s.all.Contains(t)
	s.kgMu.RUnlock()
	resp := map[string]any{"score": score, "known": known}
	if sm.calibrator != nil {
		resp["probability"] = sm.calibrator.Prob(score)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req tripleRequest
	if !s.decode(w, r, &req) {
		return
	}
	sm, err := s.acquireModel(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer sm.release()
	t, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// The ranker reads the shared filter graph's (s, r) adjacency.
	s.kgMu.RLock()
	rank := sm.ranker.RankObject(t)
	s.kgMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"rank": rank})
}

type queryRequest struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	K        int    `json:"k"`
	Model    string `json:"model"`
}

type queryAnswer struct {
	Object string  `json:"object"`
	Score  float32 `json:"score"`
	Known  bool    `json:"known"`
}

// queryKey is the canonicalized form of a query request: resolved IDs and
// the effective k, so label aliases and default-k spellings share one cache
// entry.
type queryKey struct {
	S kg.EntityID   `json:"s"`
	R kg.RelationID `json:"r"`
	K int           `json:"k"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, "k must be non-negative, got %d", req.K)
		return
	}
	sm, err := s.acquireModel(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer sm.release()
	sid, ok := s.ds.Train.Entities.Lookup(req.Subject)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown subject %q", req.Subject)
		return
	}
	rid, ok := s.ds.Train.Relations.Lookup(req.Relation)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown relation %q", req.Relation)
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k > sm.model.NumEntities() {
		k = sm.model.NumEntities()
	}
	key := s.cacheKey("query", sm.fingerprint, queryKey{S: kg.EntityID(sid), R: kg.RelationID(rid), K: k})
	if body, ok := s.cache.Get(key); ok {
		s.metrics.incCacheHit()
		w.Header().Set("X-Cache", "hit")
		writeJSONBody(w, http.StatusOK, body)
		return
	}
	s.metrics.incCacheMiss()
	body, err, joined := s.flight.Do(key, func() ([]byte, error) {
		return s.runQuery(sm, key, kg.EntityID(sid), kg.RelationID(rid), k)
	})
	if joined {
		s.metrics.incDedup()
		w.Header().Set("X-Cache", "dedup")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	writeJSONBody(w, http.StatusOK, body)
}

// runQuery performs one full object sweep for (s, r) against sm, renders the
// top-k answer body, and caches it tagged with rid (the response depends on
// the weights and on rid's membership only). The graph read and the cache
// add share one read-lock hold: a mutation can therefore never interleave
// between this body being rendered and it entering the cache, which would
// outlive the invalidation. The caller holds a reference on sm for the
// duration (single-flight waiters ride on the leader's reference).
func (s *Server) runQuery(sm *servedModel, key string, sid kg.EntityID, rid kg.RelationID, k int) ([]byte, error) {
	scores := sm.model.ScoreAllObjects(sid, rid, make([]float32, sm.model.NumEntities()))
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	s.kgMu.RLock()
	defer s.kgMu.RUnlock()
	answers := make([]queryAnswer, 0, k)
	for _, o := range order[:k] {
		t := kg.Triple{S: sid, R: rid, O: kg.EntityID(o)}
		answers = append(answers, queryAnswer{
			Object: s.ds.Train.Entities.Name(int32(o)),
			Score:  scores[o],
			Known:  s.all.Contains(t),
		})
	}
	b, err := json.Marshal(map[string]any{"answers": answers})
	if err == nil {
		s.cache.Add(key, b, []kg.RelationID{rid})
	}
	return b, err
}

type discoverRequest struct {
	Strategy      string   `json:"strategy"`
	TopN          int      `json:"top_n"`
	MaxCandidates int      `json:"max_candidates"`
	Relations     []string `json:"relations"`
	Limit         int      `json:"limit"`
	Seed          int64    `json:"seed"`
	Model         string   `json:"model"`
}

// discoverKey is the canonicalized form of a discover request: the strategy
// name normalized, relation labels resolved to IDs, defaults applied. Its
// JSON rendering (fixed field order) plus the weight fingerprint is the
// cache key.
type discoverKey struct {
	Strategy      string          `json:"strategy"`
	TopN          int             `json:"top_n"`
	MaxCandidates int             `json:"max_candidates"`
	Relations     []kg.RelationID `json:"relations"`
	Limit         int             `json:"limit"`
	Seed          int64           `json:"seed"`
}

type discoveredFact struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
	Rank     int    `json:"rank"`
}

// cacheKey derives the response-cache key: endpoint, the resolved model's
// canonical weight fingerprint (so entries are namespaced per model and a
// hot-swap can never serve stale answers), and the canonicalized request.
func (s *Server) cacheKey(endpoint, fingerprint string, canonical any) string {
	b, _ := json.Marshal(canonical)
	return endpoint + "\x00" + fingerprint + "\x00" + string(b)
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.TopN < 0 || req.MaxCandidates < 0 || req.Limit < 0 {
		writeError(w, http.StatusBadRequest,
			"top_n, max_candidates, and limit must be non-negative, got %d/%d/%d",
			req.TopN, req.MaxCandidates, req.Limit)
		return
	}
	if req.Strategy == "" {
		req.Strategy = "entity_frequency"
	}
	strategy, err := core.ExtendedStrategyByName(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sm, err := s.acquireModel(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer sm.release()
	var relations []kg.RelationID
	for _, name := range req.Relations {
		rid, ok := s.ds.Train.Relations.Lookup(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown relation %q", name)
			return
		}
		relations = append(relations, kg.RelationID(rid))
	}

	key := s.cacheKey("discover", sm.fingerprint, discoverKey{
		Strategy:      req.Strategy,
		TopN:          req.TopN,
		MaxCandidates: req.MaxCandidates,
		Relations:     relations,
		Limit:         req.Limit,
		Seed:          req.Seed,
	})
	if body, ok := s.cache.Get(key); ok {
		s.metrics.incCacheHit()
		w.Header().Set("X-Cache", "hit")
		writeJSONBody(w, http.StatusOK, body)
		return
	}
	s.metrics.incCacheMiss()
	// Relation tags (see lruEntry): only the pool-driven strategies produce
	// responses that depend solely on the requested relations' own data —
	// every node-statistic strategy reads entity statistics other relations'
	// mutations can move (mixed_exploration even renormalizes globally), so
	// their entries carry the nil tag and drop on any effective mutation.
	var tag []kg.RelationID
	switch req.Strategy {
	case "uniform_random", "entity_frequency":
		if len(relations) > 0 {
			tag = relations
		}
	}
	body, err, joined := s.flight.Do(key, func() ([]byte, error) {
		return s.runDiscover(sm, strategy, relations, req, key, tag)
	})
	if joined {
		s.metrics.incDedup()
		w.Header().Set("X-Cache", "dedup")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	switch {
	case err == nil:
		writeJSONBody(w, http.StatusOK, body)
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server is at its discovery concurrency limit, retry shortly")
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// Never partial facts: DiscoverFacts propagates cancellation as an
		// error instead of returning a truncated result set.
		writeError(w, http.StatusServiceUnavailable, "discovery timed out after %s", s.cfg.RequestTimeout)
	default:
		writeError(w, http.StatusInternalServerError, "discovery failed: %v", err)
	}
}

// runDiscover executes one discovery sweep against sm under the concurrency
// semaphore and renders the response body. It runs on a server-scoped
// context (with the same deadline as any request) rather than the leader
// request's context, so a single client disconnect cannot cancel a sweep
// that other coalesced requests are waiting on. The caller holds a
// reference on sm for the duration.
func (s *Server) runDiscover(sm *servedModel, strategy core.Strategy, relations []kg.RelationID, req discoverRequest, key string, tag []kg.RelationID) ([]byte, error) {
	select {
	case s.discoverSem <- struct{}{}:
	default:
		s.metrics.incRejected()
		return nil, errOverloaded
	}
	defer func() { <-s.discoverSem }()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	opts := core.Options{
		TopN:          req.TopN,
		MaxCandidates: req.MaxCandidates,
		Relations:     relations,
		Seed:          req.Seed,
	}
	s.applyPruneOptions(sm, &opts)
	// The sweep reads the live graph; excluding mutations for its duration
	// (and caching inside the same hold, so the entry can never slip in
	// after an invalidation it should have been covered by).
	s.kgMu.RLock()
	defer s.kgMu.RUnlock()
	res, err := s.discover(ctx, sm.model, s.ds.Train, strategy, opts)
	if err != nil {
		return nil, err
	}
	s.metrics.observeDiscovery(res.Stats)
	b, err := s.renderResult(res, req.Limit)
	if err == nil {
		s.cache.Add(key, b, tag)
	}
	return b, err
}
