package serve

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter records the status code and byte count a handler wrote, for
// metrics and access logging, and whether the header was sent at all (so
// the panic recovery middleware knows if a 500 can still be written).
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// wrap applies the per-route middleware stack to a handler: in-flight
// gauge, request-body size limit, per-request context deadline, panic
// recovery (500 + JSON error instead of a dropped connection), latency and
// status-code metrics, and a structured access log line.
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.startRequest(route)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		func() {
			defer func() {
				if p := recover(); p != nil {
					s.metrics.incPanic()
					s.cfg.Logger.Printf("kgserve: panic on %s: %v\n%s", route, p, debug.Stack())
					if !sw.wrote {
						writeError(sw, http.StatusInternalServerError, "internal error")
					}
				}
			}()
			h(sw, r)
		}()

		d := time.Since(start)
		s.metrics.endRequest(route, sw.code, d)
		s.cfg.Logger.Printf("kgserve: %s %s %d %dB %s %s", r.Method, r.URL.Path, sw.code, sw.bytes, d.Round(time.Microsecond), r.RemoteAddr)
	})
}
