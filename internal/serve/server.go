// Package serve implements the production HTTP serving layer over a trained
// KGE model and its knowledge graph: triple scoring (with calibrated
// probabilities), rank queries, link-prediction style object queries, and
// on-demand fact discovery.
//
// Beyond the handlers it provides the operational machinery a public
// endpoint needs: server-level read/header/write timeouts and graceful
// drain on shutdown, per-route panic recovery, request-body size limits,
// structured access logging, per-request context deadlines, a semaphore
// bounding concurrent discovery sweeps (overload → 429 + Retry-After), an
// LRU response cache keyed by the model's canonical weight fingerprint plus
// the canonicalized request (a KGE model is a deterministic function of its
// weights, so identical requests against identical weights have identical
// answers), single-flight deduplication so N concurrent identical requests
// trigger exactly one discovery run, and a stdlib-only Prometheus-text
// /metrics endpoint.
//
// Discovery sweeps too long for a synchronous request run through the async
// /jobs API instead (see jobs.go): submissions execute on an internal/jobs
// worker pool with per-relation progress, cancellation, bounded retention of
// results, and — when Config.JobDir is set — a per-job write-ahead journal
// that survives process crashes.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/mutate"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe. Default ":8080".
	Addr string
	// MaxDiscover bounds concurrent DiscoverFacts executions. Discovery
	// parallelizes internally across GOMAXPROCS workers, so a small number
	// of concurrent sweeps saturates the machine; excess requests are
	// refused with 429 + Retry-After. Default 4.
	MaxDiscover int
	// CacheSize is the LRU response-cache capacity in entries shared by
	// /discover and /query. Zero means the default 256; negative disables
	// caching.
	CacheSize int
	// RequestTimeout is the per-request context deadline; a /discover sweep
	// that exceeds it returns a 503 JSON error (never partial facts).
	// Default 2 minutes.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request-body size; larger bodies get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// ShutdownTimeout bounds the graceful drain of in-flight requests once
	// the serve context is cancelled. Default 10 seconds.
	ShutdownTimeout time.Duration
	// JobWorkers bounds concurrent async discovery jobs (the /jobs API).
	// Like MaxDiscover it multiplies against DiscoverFacts's internal
	// parallelism, so keep it small. Default 2.
	JobWorkers int
	// MaxJobs bounds how many finished jobs (and their result memory) the
	// server retains; the oldest are evicted beyond it. Default 64.
	MaxJobs int
	// JobTTL evicts finished jobs older than this. Default 1 hour.
	JobTTL time.Duration
	// JobDir, when set, journals every async job to a WAL under it so a
	// crashed server's completed relations survive into the next process.
	// Empty keeps jobs in memory only.
	JobDir string
	// Logger receives access logs, panics, and lifecycle messages.
	// Default log.Default().
	Logger *log.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiling endpoints expose stacks and heap contents, so
	// they are opt-in (kgserve -pprof) rather than always-on.
	EnablePprof bool
	// PruneMode selects the pruned ranking path for every discovery sweep
	// the server runs (synchronous /discover and async jobs): "" or "off"
	// (dense sweeps, the default), "exact" (byte-identical output), or
	// "approx" (see core.Options.PruneMode). With pruning enabled the index
	// is loaded from PruneIndexPath or built once at startup.
	PruneMode string
	// PruneCells overrides the prune index cell count; 0 means ⌈√|E|⌉.
	PruneCells int
	// PruneProbe caps cells visited per query in approx mode; ≤ 0 picks
	// ⌈cells/8⌉.
	PruneProbe int
	// PruneIndexPath, when set with pruning enabled, persists the prune
	// index sidecar there (and reuses it across restarts when it still
	// matches the weights). Empty builds in memory each startup.
	PruneIndexPath string
	// MaxMutationOps caps the ops in one POST /mutate batch; larger batches
	// get 413. Default 1000; negative disables the endpoint (503).
	MaxMutationOps int
	// MutationLog, when set, appends every applied mutation batch to an
	// fsync'd CRC-framed WAL at this path, and replays an existing log at
	// startup so the base dataset plus the log reconstruct the live graph.
	// Empty keeps mutations in memory only.
	MutationLog string
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxDiscover == 0 {
		c.MaxDiscover = 4
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownTimeout == 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.MaxMutationOps == 0 {
		c.MaxMutationOps = 1000
	}
}

// discoverFunc matches core.DiscoverFacts; tests substitute instrumented
// implementations to count executions and control timing.
type discoverFunc func(ctx context.Context, model kge.Model, g *kg.Graph, strategy core.Strategy, opts core.Options) (*core.Result, error)

// Server bundles the shared dataset, the model registry (see registry.go),
// and the serving machinery (cache, single-flight group, discovery
// semaphore, metrics).
type Server struct {
	ds *kg.Dataset

	// kgMu guards the mutable graph state: the train split, the shared
	// filter union `all`, and the mutation state. Every request path that
	// reads graph structure (membership, side tables, discovery sweeps,
	// filtered ranking) holds it for read; POST /mutate holds it for write,
	// so a batch applies atomically with respect to every reader.
	kgMu sync.RWMutex
	// all is the maintained train ∪ valid ∪ test union: the filter graph
	// for filtered ranking and "known" flags. Mutations co-maintain it, so
	// it is built once instead of merged per request.
	all *kg.Graph
	// mut owns mutation sequencing, the mutation log, and dirty tracking.
	mut *mutate.State

	// The fingerprint-keyed model registry. regMu guards the map and the
	// default pointer; per-model reference counts live on each servedModel.
	regMu     sync.RWMutex
	models    map[string]*servedModel
	defaultFP string

	cfg         Config
	cache       *lruCache
	flight      *flightGroup
	metrics     *metrics
	discoverSem chan struct{}
	discover    discoverFunc
	jobs        *jobs.Manager
	limits      jobLimits
	mutLog      *mutate.Log
	closeOnce   sync.Once
}

// New builds a Server over already-loaded artifacts, registering model as
// the default. The model must cover every entity of the dataset.
func New(ds *kg.Dataset, model kge.Trainable, cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		ds:          ds,
		models:      make(map[string]*servedModel),
		cfg:         cfg,
		flight:      newFlightGroup(),
		metrics:     newMetrics(),
		discoverSem: make(chan struct{}, cfg.MaxDiscover),
		discover:    core.DiscoverFacts,
	}
	s.cache = newLRUCache(cfg.CacheSize, s.metrics.incEviction)
	// Build the mutable graph state before any model registers: rankers and
	// calibrators are constructed against the shared filter union, and a
	// mutation log must replay before derived artifacts are built from the
	// graph. Replay happens via mutate.State, so side tables, the live
	// undirected projection, and the filter all absorb the logged batches.
	s.all = kg.Merge(ds.Train, ds.Valid, ds.Test)
	s.mut = mutate.NewState(ds.Train, s.all, kg.Merge(ds.Valid, ds.Test))
	if cfg.MutationLog != "" {
		mlog, batches, err := mutate.OpenLog(cfg.MutationLog, ds.Name)
		if err != nil {
			return nil, fmt.Errorf("serve: mutation log: %w", err)
		}
		if err := s.mut.Replay(batches); err != nil {
			mlog.Close()
			return nil, fmt.Errorf("serve: mutation log: %w", err)
		}
		if len(batches) > 0 {
			cfg.Logger.Printf("kgserve: replayed %d mutation batches from %s (seq %d)",
				len(batches), cfg.MutationLog, s.mut.Seq())
		}
		s.mut.AttachLog(mlog)
		s.mutLog = mlog
	}
	if _, err := s.addModel(model, nil, "memory", "", 0, cfg.PruneIndexPath, true); err != nil {
		if s.mutLog != nil {
			s.mutLog.Close()
		}
		return nil, err
	}
	// The forwarding closure reads s.discover at call time, so tests that
	// substitute an instrumented discover function cover async jobs too.
	s.jobs = jobs.NewManager(jobs.Config{
		Workers:      cfg.JobWorkers,
		MaxCompleted: cfg.MaxJobs,
		TTL:          cfg.JobTTL,
		Dir:          cfg.JobDir,
		Discover: func(ctx context.Context, m kge.Model, g *kg.Graph, strategy core.Strategy, opts core.Options) (*core.Result, error) {
			// Async sweeps read the live graph: exclude mutations for the
			// duration so a job never sees a half-applied batch.
			s.kgMu.RLock()
			defer s.kgMu.RUnlock()
			res, err := s.discover(ctx, m, g, strategy, opts)
			if err == nil {
				s.metrics.observeDiscovery(res.Stats)
			}
			return res, err
		},
	})
	return s, nil
}

// Load reads a dataset directory and a model checkpoint (flat or gob,
// sniffed from the file) from disk and builds a Server with it as the
// default model.
func Load(dataDir, modelPath string, cfg Config) (*Server, error) {
	cfg.setDefaults()
	ds, err := kg.LoadDataset(dataDir, dataDir)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m, mapped, format, err := kge.LoadAuto(modelPath)
	if err != nil {
		return nil, err
	}
	s, err := New(ds, m, cfg)
	if err != nil {
		if mapped != nil {
			mapped.Close()
		}
		return nil, err
	}
	// Patch the default entry's provenance: New registered it as an
	// in-memory model because it cannot know where the weights came from.
	if sm := s.defaultModel(); sm != nil {
		sm.mapped = mapped
		sm.format = format
		sm.path = modelPath
		sm.loadTime = time.Since(start)
		cfg.Logger.Printf("kgserve: loaded %s checkpoint %s (%s) in %s",
			format, modelPath, sm.fingerprint[:12], sm.loadTime.Round(time.Microsecond))
	}
	return s, nil
}

// applyPruneOptions copies one model's pruning configuration into one
// discovery run's options. The prebuilt index keeps DiscoverFacts from
// re-clustering the entity table on every request.
func (s *Server) applyPruneOptions(sm *servedModel, opts *core.Options) {
	if sm.pruneIndex == nil {
		return
	}
	opts.PruneMode = s.cfg.PruneMode
	opts.PruneProbe = s.cfg.PruneProbe
	opts.PruneIndex = sm.pruneIndex
}

// Fingerprint returns the default model's canonical weight digest, or ""
// when no default is set.
func (s *Server) Fingerprint() string {
	if sm := s.defaultModel(); sm != nil {
		return sm.fingerprint
	}
	return ""
}

// Model returns the default served model, or nil when no default is set.
func (s *Server) Model() kge.Trainable {
	if sm := s.defaultModel(); sm != nil {
		return sm.model
	}
	return nil
}

// Dataset returns the served dataset.
func (s *Server) Dataset() *kg.Dataset { return s.ds }

// Handler returns the full route table with per-route middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.wrap("/healthz", s.handleHealthz))
	mux.Handle("GET /stats", s.wrap("/stats", s.handleStats))
	mux.Handle("GET /metrics", s.wrap("/metrics", s.handleMetrics))
	mux.Handle("POST /score", s.wrap("/score", s.handleScore))
	mux.Handle("POST /rank", s.wrap("/rank", s.handleRank))
	mux.Handle("POST /query", s.wrap("/query", s.handleQuery))
	mux.Handle("POST /discover", s.wrap("/discover", s.handleDiscover))
	mux.Handle("POST /mutate", s.wrap("/mutate", s.handleMutate))
	mux.Handle("POST /jobs", s.wrap("/jobs", s.handleJobSubmit))
	mux.Handle("GET /jobs", s.wrap("/jobs", s.handleJobList))
	mux.Handle("GET /jobs/{id}", s.wrap("/jobs/{id}", s.handleJobStatus))
	mux.Handle("GET /jobs/{id}/result", s.wrap("/jobs/{id}/result", s.handleJobResult))
	mux.Handle("DELETE /jobs/{id}", s.wrap("/jobs/{id}", s.handleJobCancel))
	mux.Handle("GET /models", s.wrap("/models", s.handleModelList))
	mux.Handle("POST /models", s.wrap("/models", s.handleModelLoad))
	mux.Handle("DELETE /models/{fp}", s.wrap("/models/{fp}", s.handleModelUnload))
	if s.cfg.EnablePprof {
		// Mounted bare (no wrap): the profile handlers stream for seconds at
		// a time and must not show up in request-latency histograms or be
		// subject to body limits.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Close stops the async job machinery — pending and running jobs are
// cancelled and the worker pool drained — then retires every registered
// model, unmapping mmap-backed checkpoints. Serve calls it during shutdown;
// callers that only use Handler (tests, embedding) should call it
// themselves. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// Jobs first: draining the pool releases the model references jobs
		// hold, so the retire below can unmap immediately.
		s.jobs.Close()
		s.regMu.Lock()
		retired := make([]*servedModel, 0, len(s.models))
		for fp, sm := range s.models {
			retired = append(retired, sm)
			delete(s.models, fp)
		}
		s.defaultFP = ""
		s.regMu.Unlock()
		for _, sm := range retired {
			sm.retire()
		}
		if s.mutLog != nil {
			s.mutLog.Close()
		}
	})
}

// ListenAndServe listens on cfg.Addr and serves until ctx is cancelled,
// then drains gracefully. The bound address (useful with ":0") is logged as
// "listening on <addr>".
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then shuts down gracefully:
// in-flight requests are drained (bounded by cfg.ShutdownTimeout) while new
// connections are refused. Returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// WriteTimeout must outlast the request deadline or slow discovery
		// responses would be cut off mid-body.
		WriteTimeout: s.cfg.RequestTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     s.cfg.Logger,
	}
	s.cfg.Logger.Printf("kgserve: listening on %s", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-errc // hs.Serve has returned http.ErrServerClosed
		// Cancel async jobs only after the HTTP drain: in-flight /jobs
		// requests observe consistent manager state to the end.
		s.Close()
		if err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		s.cfg.Logger.Printf("kgserve: drained, shutdown complete")
		return nil
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeJSONBody replays pre-rendered response bytes (cache hits and
// single-flight results), so every path serves byte-identical bodies.
func writeJSONBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
