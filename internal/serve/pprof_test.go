package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPprofDisabledByDefault: the profiling endpoints expose stacks and heap
// contents, so they must 404 unless explicitly enabled.
func TestPprofDisabledByDefault(t *testing.T) {
	srv := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /debug/pprof/ with pprof disabled: code %d, want 404", rec.Code)
	}
}

func TestPprofEnabled(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.EnablePprof = true })
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: code %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index does not list profiles: %q", rec.Body.String()[:min(200, rec.Body.Len())])
	}

	// A named profile renders too (heap is always available).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/heap?debug=1", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/heap: code %d, want 200", rec.Code)
	}
}

// TestMetricsRankingCounters drives one synchronous /discover and checks the
// batch-ranking counters reach /metrics.
func TestMetricsRankingCounters(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	rec, out := doReq(t, h, "POST", "/discover", map[string]any{
		"top_n": 20, "max_candidates": 30, "seed": 7,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /discover: code %d body %v", rec.Code, out)
	}

	scrape := httptest.NewRecorder()
	h.ServeHTTP(scrape, httptest.NewRequest("GET", "/metrics", nil))
	body := scrape.Body.String()
	for _, name := range []string{
		"kgserve_ranking_score_sweeps_total",
		"kgserve_ranking_batched_sweeps_total",
		"kgserve_ranking_batch_rows_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics output missing %s", name)
			continue
		}
		if strings.Contains(body, name+" 0\n") {
			t.Errorf("%s still zero after a /discover sweep", name)
		}
	}
}
