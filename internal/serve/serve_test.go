package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
	"repro/internal/synth"
	"repro/internal/train"
)

// testArtifacts holds one trained tiny model shared by every test in the
// package; the dataset and model are read-only once trained.
var testArtifacts struct {
	once sync.Once
	ds   *kg.Dataset
	m    kge.Trainable
	err  error
}

func testModel(t testing.TB) (*kg.Dataset, kge.Trainable) {
	t.Helper()
	testArtifacts.once.Do(func() {
		ds, err := synth.Generate(synth.Tiny())
		if err != nil {
			testArtifacts.err = err
			return
		}
		m, err := kge.New("distmult", kge.Config{
			NumEntities:  ds.Train.Entities.Len(),
			NumRelations: ds.Train.Relations.Len(),
			Dim:          8,
			Seed:         1,
		})
		if err != nil {
			testArtifacts.err = err
			return
		}
		if _, err := train.Run(context.Background(), m, ds, train.Config{Epochs: 3, BatchSize: 64, Seed: 2}); err != nil {
			testArtifacts.err = err
			return
		}
		testArtifacts.ds, testArtifacts.m = ds, m
	})
	if testArtifacts.err != nil {
		t.Fatalf("building test artifacts: %v", testArtifacts.err)
	}
	return testArtifacts.ds, testArtifacts.m
}

// newTestServer builds a Server over the shared artifacts with access logs
// discarded; mut tweaks the config before construction.
func newTestServer(t testing.TB, mut func(*Config)) *Server {
	t.Helper()
	ds, m := testModel(t)
	cfg := Config{Logger: log.New(io.Discard, "", 0)}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(ds, m, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// doReq runs one request through the handler and decodes the JSON body.
func doReq(t testing.TB, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		switch b := body.(type) {
		case string:
			buf.WriteString(b)
		default:
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("invalid JSON response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, out
}

// stubResult is a minimal well-formed discovery result for stubbed
// discover functions.
func stubResult() *core.Result {
	return &core.Result{Facts: []core.Fact{{Triple: kg.Triple{S: 1, R: 0, O: 2}, Rank: 1}}}
}

const discoverBody = `{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":3}`

// TestSingleFlightDiscover hammers one cacheable /discover key with N
// concurrent requests and requires exactly one underlying DiscoverFacts
// execution: one leader, N-1 requests either coalesced onto its flight or
// served from the cache it populated, all with byte-identical bodies.
func TestSingleFlightDiscover(t *testing.T) {
	srv := newTestServer(t, nil)
	var execs atomic.Int64
	release := make(chan struct{})
	srv.discover = func(context.Context, kge.Model, *kg.Graph, core.Strategy, core.Options) (*core.Result, error) {
		execs.Add(1)
		<-release
		return stubResult(), nil
	}
	h := srv.Handler()

	const n = 24
	codes := make([]int, n)
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/discover", strings.NewReader(discoverBody))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.String()
		}(i)
	}

	// The leader blocks inside discover and the cache stays empty until it
	// finishes, so every other request must eventually coalesce onto the
	// flight. Wait for all of them before releasing the leader.
	deadline := time.Now().Add(10 * time.Second)
	for srv.flight.waiting.Load() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests coalesced", srv.flight.waiting.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("DiscoverFacts executed %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: code %d, want 200", i, codes[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	hits, misses, _, dedups, _ := srv.metrics.snapshotCounters()
	if hits+dedups != n-1 {
		t.Errorf("hits (%d) + dedups (%d) = %d, want %d", hits, dedups, hits+dedups, n-1)
	}
	if misses != dedups+1 {
		t.Errorf("misses = %d, want dedups+1 = %d", misses, dedups+1)
	}

	// A follow-up request is a pure cache hit: no new execution.
	rec, _ := doReq(t, h, "POST", "/discover", discoverBody)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("follow-up: code %d X-Cache %q, want 200/hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	if execs.Load() != 1 {
		t.Fatalf("follow-up re-executed discovery")
	}
}

// TestSemaphoreCapNeverExceeded mixes distinct /discover keys and asserts
// the concurrency semaphore holds: at most MaxDiscover executions run at
// once, and every overflow request is refused with 429 + Retry-After.
func TestSemaphoreCapNeverExceeded(t *testing.T) {
	const capacity = 2
	srv := newTestServer(t, func(c *Config) { c.MaxDiscover = capacity })
	var cur, peak atomic.Int64
	release := make(chan struct{})
	srv.discover = func(context.Context, kge.Model, *kg.Graph, core.Strategy, core.Options) (*core.Result, error) {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			m := peak.Load()
			if n <= m || peak.CompareAndSwap(m, n) {
				break
			}
		}
		<-release
		return stubResult(), nil
	}
	h := srv.Handler()

	const n = 12
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"strategy":"graph_degree","top_n":20,"max_candidates":30,"limit":5,"seed":%d}`, i)
			req := httptest.NewRequest("POST", "/discover", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			retryAfter[i] = rec.Header().Get("Retry-After")
		}(i)
	}

	// Exactly cap requests hold the semaphore (blocked in discover); the
	// other n-cap must be rejected. Wait until they all have been.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, _, _, rejected := srv.metrics.snapshotCounters()
		if rejected == n-capacity {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejected = %d, want %d", rejected, n-capacity)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := peak.Load(); got > capacity {
		t.Fatalf("observed %d concurrent discoveries, cap is %d", got, capacity)
	}
	var ok200, ok429 int
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			ok429++
			if retryAfter[i] == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected code %d", i, codes[i])
		}
	}
	if ok200 != capacity || ok429 != n-capacity {
		t.Fatalf("got %d×200 and %d×429, want %d and %d", ok200, ok429, capacity, n-capacity)
	}
}

// TestGracefulShutdown cancels the serve context while a /discover request
// is in flight: the in-flight request must complete with 200 while new
// connections are refused, and Serve must return nil after the drain.
func TestGracefulShutdown(t *testing.T) {
	srv := newTestServer(t, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.discover = func(context.Context, kge.Model, *kg.Graph, core.Strategy, core.Options) (*core.Result, error) {
		close(entered)
		<-release
		return stubResult(), nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	type result struct {
		code int
		body []byte
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/discover", "application/json", strings.NewReader(discoverBody))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: b}
	}()

	<-entered // the request is inside DiscoverFacts
	cancel()  // begin graceful shutdown

	// New connections must be refused once the listener closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after shutdown began")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release) // let the in-flight discovery finish
	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request: code %d, want 200", res.code)
	}
	var body map[string]any
	if err := json.Unmarshal(res.body, &body); err != nil || body["facts"] == nil {
		t.Fatalf("in-flight response not a full discovery body: %s", res.body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}
