package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
)

// secondModel builds a distmult with the same geometry as the shared test
// model but different weights, saves it as a flat checkpoint, and returns
// the path plus its fingerprint. Loading it through POST /models exercises
// the mmap path end to end.
func secondModel(t testing.TB, dir string, seed int64) (path, fingerprint string) {
	t.Helper()
	ds, _ := testModel(t)
	m, err := kge.New("distmult", kge.Config{
		NumEntities:  ds.Train.Entities.Len(),
		NumRelations: ds.Train.Relations.Len(),
		Dim:          8,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params().List() {
		for i := range p.M.Data {
			p.M.Data[i] = float32(rng.NormFloat64()) * 0.1
		}
	}
	path = filepath.Join(dir, fmt.Sprintf("second-%d.kgf", seed))
	if err := kge.SaveFlatFile(m, path); err != nil {
		t.Fatal(err)
	}
	return path, kge.Fingerprint(m)
}

func TestModelAdminEndpoints(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	path, fp := secondModel(t, t.TempDir(), 77)

	rec, body := doReq(t, h, "GET", "/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /models: %d %v", rec.Code, body)
	}
	if n := len(body["models"].([]any)); n != 1 {
		t.Fatalf("fresh server lists %d models, want 1", n)
	}

	rec, body = doReq(t, h, "POST", "/models", map[string]any{"path": path})
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /models: %d %v", rec.Code, body)
	}
	if body["fingerprint"] != fp {
		t.Errorf("loaded fingerprint %v, want %s", body["fingerprint"], fp)
	}
	if body["format"] != "flat" {
		t.Errorf("loaded format %v, want flat", body["format"])
	}
	if body["default"] != false {
		t.Errorf("non-default load became default")
	}
	if mb, _ := body["mapped_bytes"].(float64); mb <= 0 {
		t.Errorf("flat-loaded model reports mapped_bytes %v, want > 0", body["mapped_bytes"])
	}

	rec, body = doReq(t, h, "GET", "/models", nil)
	if n := len(body["models"].([]any)); n != 2 {
		t.Fatalf("after load, %d models listed, want 2", n)
	}

	// Loading the same checkpoint again is idempotent, not a duplicate.
	rec, _ = doReq(t, h, "POST", "/models", map[string]any{"path": path})
	if rec.Code != http.StatusCreated {
		t.Fatalf("re-POST /models: %d", rec.Code)
	}
	if _, body = doReq(t, h, "GET", "/models", nil); len(body["models"].([]any)) != 2 {
		t.Fatal("re-loading the same checkpoint duplicated the registry entry")
	}

	// Route a scoring request to the second model by fingerprint prefix; the
	// two models must disagree somewhere, proving per-model routing.
	ds := srv.ds
	var routed bool
	for i := 0; i < ds.Train.Entities.Len() && !routed; i++ {
		req := map[string]any{
			"subject":  ds.Train.Entities.Name(int32(i)),
			"relation": ds.Train.Relations.Name(0),
			"object":   ds.Train.Entities.Name(int32((i + 1) % ds.Train.Entities.Len())),
		}
		_, d := doReq(t, h, "POST", "/score", req)
		req["model"] = fp[:12]
		rec, b := doReq(t, h, "POST", "/score", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("score with model selector: %d %v", rec.Code, b)
		}
		if b["score"] != d["score"] {
			routed = true
		}
	}
	if !routed {
		t.Error("selector-routed scores identical to default model on every probe")
	}

	// Unknown and (post-unload) stale selectors 404.
	rec, _ = doReq(t, h, "POST", "/score", map[string]any{
		"subject": ds.Train.Entities.Name(0), "relation": ds.Train.Relations.Name(0),
		"object": ds.Train.Entities.Name(1), "model": "beef0000",
	})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown selector: %d, want 404", rec.Code)
	}

	rec, body = doReq(t, h, "DELETE", "/models/"+fp[:12], nil)
	if rec.Code != http.StatusOK || body["unloaded"] != fp {
		t.Fatalf("DELETE /models: %d %v", rec.Code, body)
	}
	rec, _ = doReq(t, h, "POST", "/score", map[string]any{
		"subject": ds.Train.Entities.Name(0), "relation": ds.Train.Relations.Name(0),
		"object": ds.Train.Entities.Name(1), "model": fp,
	})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unloaded fingerprint still routes: %d, want 404", rec.Code)
	}
	rec, _ = doReq(t, h, "DELETE", "/models/"+fp[:12], nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("double unload: %d, want 404", rec.Code)
	}
}

// TestModelDefaultSwap unloads the default model and promotes a replacement:
// selector-less requests must fail in between (never silently fall through
// to an arbitrary model) and recover once a new default is set.
func TestModelDefaultSwap(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	ds := srv.ds
	defaultFP := srv.Fingerprint()
	path, fp := secondModel(t, t.TempDir(), 79)

	scoreReq := map[string]any{
		"subject": ds.Train.Entities.Name(0), "relation": ds.Train.Relations.Name(0),
		"object": ds.Train.Entities.Name(1),
	}
	if rec, _ := doReq(t, h, "DELETE", "/models/"+defaultFP, nil); rec.Code != http.StatusOK {
		t.Fatalf("unload default: %d", rec.Code)
	}
	if rec, _ := doReq(t, h, "POST", "/score", scoreReq); rec.Code != http.StatusNotFound {
		t.Fatalf("selector-less request with no default: %d, want 404", rec.Code)
	}
	rec, body := doReq(t, h, "POST", "/models", map[string]any{"path": path, "default": true})
	if rec.Code != http.StatusCreated || body["default"] != true {
		t.Fatalf("promote replacement: %d %v", rec.Code, body)
	}
	if got := srv.Fingerprint(); got != fp {
		t.Fatalf("default fingerprint %s, want %s", got, fp)
	}
	if rec, _ := doReq(t, h, "POST", "/score", scoreReq); rec.Code != http.StatusOK {
		t.Fatalf("selector-less request after swap: %d, want 200", rec.Code)
	}
}

// TestRegistryHotSwapUnderDiscover is the race-detector stress test: one
// goroutine repeatedly loads and unloads an mmap-backed model while others
// hammer /discover (routed to it by fingerprint) and /score. The substituted
// discover function reads the routed model's weights on every call, so an
// unload that munmapped while a request held the model would fault; the
// refcount must make that impossible. Run with -race.
func TestRegistryHotSwapUnderDiscover(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.CacheSize = -1; c.MaxDiscover = 16 })
	srv.discover = func(_ context.Context, m kge.Model, g *kg.Graph, _ core.Strategy, _ core.Options) (*core.Result, error) {
		// Touch the weights the way a real sweep would.
		out := make([]float32, m.NumEntities())
		for r := 0; r < 3; r++ {
			m.ScoreAllObjects(0, kg.RelationID(r%g.Relations.Len()), out)
		}
		return &core.Result{}, nil
	}
	h := srv.Handler()
	path, fp := secondModel(t, t.TempDir(), 83)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the swapper
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec, body := doReq(t, h, "POST", "/models", map[string]any{"path": path})
			if rec.Code != http.StatusCreated {
				t.Errorf("swap %d load: %d %v", i, rec.Code, body)
				return
			}
			time.Sleep(time.Millisecond)
			if rec, _ := doReq(t, h, "DELETE", "/models/"+fp, nil); rec.Code != http.StatusOK {
				t.Errorf("swap %d unload: %d", i, rec.Code)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Against the swapped model: 200 when loaded, 404 in the gaps
				// — anything else is a routing bug.
				rec, body := doReq(t, h, "POST", "/discover", map[string]any{"model": fp, "seed": 3})
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					t.Errorf("discover vs swapped model: %d %v", rec.Code, body)
					return
				}
				// Against the default model: always 200.
				if rec, body := doReq(t, h, "POST", "/discover", map[string]any{"seed": 3}); rec.Code != http.StatusOK {
					t.Errorf("discover vs default model: %d %v", rec.Code, body)
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestJobHoldsModelAcrossUnload: an async job keeps its model mapped until
// the sweep finishes, even when the model is unloaded mid-run; afterwards
// the mapping is released.
func TestJobHoldsModelAcrossUnload(t *testing.T) {
	srv := newTestServer(t, nil)
	release := make(chan struct{})
	running := make(chan struct{}, 1)
	srv.discover = func(ctx context.Context, m kge.Model, _ *kg.Graph, _ core.Strategy, _ core.Options) (*core.Result, error) {
		running <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		// Read the weights after the unload happened: only the refcount
		// keeps these pages mapped.
		m.Score(kg.Triple{S: 0, R: 0, O: 1})
		return &core.Result{}, nil
	}
	h := srv.Handler()
	path, fp := secondModel(t, t.TempDir(), 89)
	if rec, body := doReq(t, h, "POST", "/models", map[string]any{"path": path}); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d %v", rec.Code, body)
	}
	srv.regMu.RLock()
	sm := srv.models[fp]
	srv.regMu.RUnlock()
	if sm == nil || sm.mapped == nil {
		t.Fatal("second model is not mmap-backed")
	}

	rec, body := doReq(t, h, "POST", "/jobs", map[string]any{"model": fp})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", rec.Code, body)
	}
	jobURL := body["url"].(string)
	<-running

	if rec, _ := doReq(t, h, "DELETE", "/models/"+fp, nil); rec.Code != http.StatusOK {
		t.Fatalf("unload while job runs: %d", rec.Code)
	}
	if sm.mapped.MappedBytes() == 0 {
		t.Fatal("model unmapped while a job still holds it")
	}
	close(release)

	deadline := time.After(5 * time.Second)
	for {
		_, body = doReq(t, h, "GET", jobURL, nil)
		if body["state"] == "done" {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job never finished: %v", body)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// OnFinish fires just after the terminal state becomes visible; settle
	// by joining the idempotent Close rather than polling internals.
	waitRelease := time.After(5 * time.Second)
	for {
		sm.mu.Lock()
		refs := sm.refs
		sm.mu.Unlock()
		if refs == 0 {
			break
		}
		select {
		case <-waitRelease:
			t.Fatalf("job finished but still holds %d refs", refs)
		case <-time.After(5 * time.Millisecond):
		}
	}
	sm.mapped.Close() // joins the in-flight close, if any; idempotent
	if sm.mapped.MappedBytes() != 0 {
		t.Fatal("retired model still mapped after its last reference was released")
	}
}
