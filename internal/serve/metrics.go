package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
)

// latencyBuckets are the upper bounds (in seconds) of the request-duration
// histogram. They straddle the two regimes the server actually sees:
// sub-millisecond cache hits and multi-second cold discovery sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// routeStats accumulates per-route request counters. All fields are guarded
// by the owning metrics mutex.
type routeStats struct {
	codes    map[int]uint64
	buckets  []uint64 // parallel to latencyBuckets; observations ≤ bound
	count    uint64
	sum      float64 // total seconds observed
	inFlight int64
}

// metrics aggregates server-wide counters and renders them in the Prometheus
// text exposition format. It is a deliberate stdlib-only stand-in for a
// metrics client library: a single mutex is ample for the counter update
// rates an HTTP handler sees, and the scrape path is read-only.
type metrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats

	// modelRequests counts requests routed to each model, by fingerprint.
	// Entries outlive unloads deliberately: counters are monotonic, and a
	// reload of the same weights continues its series.
	modelRequests map[string]uint64

	cacheHits      uint64
	cacheMisses    uint64
	cacheEvictions uint64
	dedups         uint64 // requests served by another request's in-flight run
	rejected       uint64 // /discover requests refused with 429 (semaphore full)
	panics         uint64 // handler panics converted to 500 by the recovery middleware

	// Mutation counters (POST /mutate).
	mutationBatches    uint64 // batches applied
	mutationAdds       uint64 // ops that inserted a triple not previously present
	mutationDeletes    uint64 // ops that removed a present triple
	mutationRejected   uint64 // batches refused: sequence gap, validation, size
	cacheInvalidations uint64 // cache entries dropped by mutation invalidation

	// Ranking counters, accumulated from every completed discovery run
	// (synchronous /discover and async jobs alike) via observeDiscovery.
	scoreSweeps   uint64 // score sweeps: one per distinct (s, r) candidate group
	batchedSweeps uint64 // relation-blocked batch dispatches (tiled matrix–matrix passes)
	batchRows     uint64 // query rows carried by those batches
	prunedCells   uint64 // IVF cells discarded by the pruned ranking path's score bounds
	prescreenRows uint64 // entity rows evaluated by the int8 prescreen filter
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeStats), modelRequests: make(map[string]uint64)}
}

func (m *metrics) incModelRequest(fingerprint string) {
	m.mu.Lock()
	m.modelRequests[fingerprint]++
	m.mu.Unlock()
}

// routeLocked returns the stats bucket for route, creating it on first use.
// The caller must hold m.mu.
func (m *metrics) routeLocked(route string) *routeStats {
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{codes: make(map[int]uint64), buckets: make([]uint64, len(latencyBuckets))}
		m.routes[route] = rs
	}
	return rs
}

func (m *metrics) startRequest(route string) {
	m.mu.Lock()
	m.routeLocked(route).inFlight++
	m.mu.Unlock()
}

func (m *metrics) endRequest(route string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	rs := m.routeLocked(route)
	rs.inFlight--
	rs.codes[code]++
	rs.count++
	rs.sum += secs
	for i, bound := range latencyBuckets {
		if secs <= bound {
			rs.buckets[i]++
		}
	}
	m.mu.Unlock()
}

func (m *metrics) add(field *uint64, n uint64) {
	m.mu.Lock()
	*field += n
	m.mu.Unlock()
}

// observeDiscovery folds one completed discovery run's ranking stats into
// the counters.
func (m *metrics) observeDiscovery(st core.Stats) {
	m.mu.Lock()
	m.scoreSweeps += uint64(st.ScoreSweeps)
	m.batchedSweeps += uint64(st.BatchedSweeps)
	m.batchRows += uint64(st.BatchRows)
	m.prunedCells += uint64(st.CellsPruned)
	m.prescreenRows += uint64(st.PrescreenRows)
	m.mu.Unlock()
}

// observeMutation folds one applied batch into the mutation counters.
func (m *metrics) observeMutation(adds, deletes, invalidated int) {
	m.mu.Lock()
	m.mutationBatches++
	m.mutationAdds += uint64(adds)
	m.mutationDeletes += uint64(deletes)
	m.cacheInvalidations += uint64(invalidated)
	m.mu.Unlock()
}

func (m *metrics) incCacheHit()  { m.add(&m.cacheHits, 1) }
func (m *metrics) incCacheMiss() { m.add(&m.cacheMisses, 1) }
func (m *metrics) incEviction()  { m.add(&m.cacheEvictions, 1) }
func (m *metrics) incDedup()     { m.add(&m.dedups, 1) }
func (m *metrics) incRejected()  { m.add(&m.rejected, 1) }
func (m *metrics) incPanic()     { m.add(&m.panics, 1) }

func (m *metrics) incMutationRejected() { m.add(&m.mutationRejected, 1) }

// snapshotCounters returns the cache/flight counters for tests.
func (m *metrics) snapshotCounters() (hits, misses, evictions, dedups, rejected uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses, m.cacheEvictions, m.dedups, m.rejected
}

// writeTo renders every metric in Prometheus text format (version 0.0.4)
// with deterministic ordering, so scrapes — and test assertions — are
// stable across runs.
func (m *metrics) writeTo(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	routes := make([]string, 0, len(m.routes))
	for r := range m.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintln(w, "# HELP kgserve_requests_total Requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE kgserve_requests_total counter")
	for _, r := range routes {
		rs := m.routes[r]
		codes := make([]int, 0, len(rs.codes))
		for c := range rs.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "kgserve_requests_total{route=%q,code=\"%d\"} %d\n", r, c, rs.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP kgserve_request_duration_seconds Request latency histogram, by route.")
	fmt.Fprintln(w, "# TYPE kgserve_request_duration_seconds histogram")
	for _, r := range routes {
		rs := m.routes[r]
		for i, bound := range latencyBuckets {
			fmt.Fprintf(w, "kgserve_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, bound, rs.buckets[i])
		}
		fmt.Fprintf(w, "kgserve_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, rs.count)
		fmt.Fprintf(w, "kgserve_request_duration_seconds_sum{route=%q} %g\n", r, rs.sum)
		fmt.Fprintf(w, "kgserve_request_duration_seconds_count{route=%q} %d\n", r, rs.count)
	}

	fmt.Fprintln(w, "# HELP kgserve_in_flight Requests currently being served, by route.")
	fmt.Fprintln(w, "# TYPE kgserve_in_flight gauge")
	for _, r := range routes {
		fmt.Fprintf(w, "kgserve_in_flight{route=%q} %d\n", r, m.routes[r].inFlight)
	}

	scalar := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	scalar("kgserve_cache_hits_total", "Responses served from the LRU cache.", m.cacheHits)
	scalar("kgserve_cache_misses_total", "Cacheable requests not found in the LRU cache.", m.cacheMisses)
	scalar("kgserve_cache_evictions_total", "Entries evicted from the LRU cache.", m.cacheEvictions)
	scalar("kgserve_singleflight_dedup_total", "Requests coalesced onto another request's in-flight execution.", m.dedups)
	scalar("kgserve_discover_rejected_total", "Discover requests refused with 429 because the concurrency limit was reached.", m.rejected)
	scalar("kgserve_panics_total", "Handler panics recovered and converted to 500 responses.", m.panics)
	scalar("kgserve_ranking_score_sweeps_total", "Score sweeps run while ranking discovery candidates (one per distinct subject-relation group).", m.scoreSweeps)
	scalar("kgserve_ranking_batched_sweeps_total", "Relation-blocked batch dispatches: tiled matrix-matrix passes over the entity table.", m.batchedSweeps)
	scalar("kgserve_ranking_batch_rows_total", "Query rows scored through batched passes; rows/dispatches is the amortization factor.", m.batchRows)
	scalar("kgserve_ranking_pruned_cells_total", "IVF cells discarded by the pruned ranking path without visiting their members.", m.prunedCells)
	scalar("kgserve_ranking_pruned_prescreen_rows_total", "Entity rows evaluated by the int8 prescreen filter inside visited cells.", m.prescreenRows)
	scalar("kgserve_mutation_batches_total", "Mutation batches applied by POST /mutate.", m.mutationBatches)
	scalar("kgserve_mutation_adds_total", "Mutation ops that inserted a new triple.", m.mutationAdds)
	scalar("kgserve_mutation_deletes_total", "Mutation ops that removed a present triple.", m.mutationDeletes)
	scalar("kgserve_mutation_rejected_total", "Mutation batches refused (sequence gap, validation failure, or size limit).", m.mutationRejected)
	scalar("kgserve_cache_invalidations_total", "Cache entries dropped because a mutation batch staled them.", m.cacheInvalidations)

	fmt.Fprintln(w, "# HELP kgserve_model_requests_total Requests routed to each model, by weight fingerprint.")
	fmt.Fprintln(w, "# TYPE kgserve_model_requests_total counter")
	fps := make([]string, 0, len(m.modelRequests))
	for fp := range m.modelRequests {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		fmt.Fprintf(w, "kgserve_model_requests_total{fingerprint=%q} %d\n", fp, m.modelRequests[fp])
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w)
	s.writeModelMetrics(w)
	s.writeJobMetrics(w)
}

// writeModelMetrics renders registry gauges from a live snapshot (the
// registry is the source of truth for what is loaded; scraping must not
// keep a second copy that can drift).
func (s *Server) writeModelMetrics(w io.Writer) {
	views := s.modelViews()
	fmt.Fprintln(w, "# HELP kgserve_models Models currently loaded in the registry.")
	fmt.Fprintln(w, "# TYPE kgserve_models gauge")
	fmt.Fprintf(w, "kgserve_models %d\n", len(views))
	fmt.Fprintln(w, "# HELP kgserve_model_info Loaded-model metadata; value is the checkpoint load time in seconds.")
	fmt.Fprintln(w, "# TYPE kgserve_model_info gauge")
	for _, v := range views {
		fmt.Fprintf(w, "kgserve_model_info{fingerprint=%q,model=%q,format=%q,default=\"%t\"} %g\n",
			v.Fingerprint, v.Model, v.Format, v.Default, v.LoadMS/1000)
	}
}

// writeJobMetrics renders the async-job gauges and counters. They come from
// a live jobs.Manager snapshot rather than the metrics struct: job state is
// already tracked there and scraping must not invent a second copy that can
// drift.
func (s *Server) writeJobMetrics(w io.Writer) {
	counts, counters := s.jobs.Snapshot()
	fmt.Fprintln(w, "# HELP kgserve_jobs Retained async discovery jobs, by state.")
	fmt.Fprintln(w, "# TYPE kgserve_jobs gauge")
	states := make([]string, 0, len(counts))
	for st := range counts {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "kgserve_jobs{state=%q} %d\n", st, counts[jobs.State(st)])
	}
	scalar := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	scalar("kgserve_jobs_submitted_total", "Async jobs accepted by POST /jobs.", counters.Submitted)
	scalar("kgserve_jobs_completed_total", "Async jobs that finished successfully.", counters.Completed)
	scalar("kgserve_jobs_failed_total", "Async jobs that finished with an error.", counters.Failed)
	scalar("kgserve_jobs_cancelled_total", "Async jobs cancelled before completing.", counters.Cancelled)
	scalar("kgserve_jobs_evicted_total", "Finished jobs evicted by the retention policy.", counters.Evicted)
}
