package serve

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPanicRecovery wraps a panicking handler in the middleware stack: the
// client must get a 500 JSON error, the panic counter must move, and the
// server must keep serving afterwards.
func TestPanicRecovery(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.wrap("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("panic response not error JSON: %q", rec.Body.String())
	}
	srv.metrics.mu.Lock()
	panics := srv.metrics.panics
	srv.metrics.mu.Unlock()
	if panics != 1 {
		t.Errorf("panics counter = %d, want 1", panics)
	}
	// The server stays up.
	rec2, body := doReq(t, srv.Handler(), "GET", "/healthz", nil)
	if rec2.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz after panic: %d %v", rec2.Code, body)
	}
}

// TestAccessLog checks the structured access-log line: method, path,
// status, and duration all present.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv := newTestServer(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	doReq(t, srv.Handler(), "GET", "/healthz", nil)
	line := buf.String()
	if !strings.Contains(line, "GET /healthz 200") {
		t.Errorf("access log missing method/path/code: %q", line)
	}
}

// TestMetricsEndpoint scrapes /metrics after known traffic and checks the
// Prometheus text rendering of every metric family.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	doReq(t, h, "GET", "/healthz", nil)
	doReq(t, h, "POST", "/score", `{"subject":"ghost","relation":"r0","object":"e2"}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`kgserve_requests_total{route="/healthz",code="200"} 1`,
		`kgserve_requests_total{route="/score",code="404"} 1`,
		`kgserve_request_duration_seconds_bucket{route="/healthz",le="+Inf"} 1`,
		`kgserve_request_duration_seconds_count{route="/healthz"} 1`,
		`kgserve_in_flight{route="/metrics"} 1`,
		"kgserve_cache_hits_total 0",
		"kgserve_cache_misses_total 0",
		"kgserve_cache_evictions_total 0",
		"kgserve_singleflight_dedup_total 0",
		"kgserve_discover_rejected_total 0",
		"kgserve_panics_total 0",
		"# TYPE kgserve_request_duration_seconds histogram",
		"# TYPE kgserve_in_flight gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type %q", ct)
	}
}
