package serve

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kg"
	"repro/internal/mutate"
)

// newMutableServer builds a Server over a deep copy of the shared dataset:
// mutation tests rewrite the training graph in place, and the package-wide
// artifacts must stay pristine for every other test.
func newMutableServer(t testing.TB, mut func(*Config)) *Server {
	t.Helper()
	ds, m := testModel(t)
	clone := &kg.Dataset{
		Name:  ds.Name,
		Train: ds.Train.Clone(),
		Valid: ds.Valid.Clone(),
		Test:  ds.Test.Clone(),
	}
	cfg := Config{Logger: log.New(io.Discard, "", 0)}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(clone, m, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// mutationOps builds n delete ops over distinct existing triples of g.
func mutationOps(g *kg.Graph, n int) []mutate.Op {
	ts := g.Triples()
	ops := make([]mutate.Op, 0, n)
	for i := 0; i < n && i < len(ts); i++ {
		ops = append(ops, mutate.Op{
			Kind: mutate.OpDelete,
			S:    g.Entities.Name(int32(ts[i].S)),
			R:    g.Relations.Name(int32(ts[i].R)),
			O:    g.Entities.Name(int32(ts[i].O)),
		})
	}
	return ops
}

func metricsBody(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return ""
}

// TestMutateEndpoint drives the full endpoint contract: a cached /query
// response for a mutated relation is invalidated while one for an untouched
// relation survives, the sequence advances, and the mutation counters land
// in /metrics.
func TestMutateEndpoint(t *testing.T) {
	srv := newMutableServer(t, nil)
	h := srv.Handler()
	g := srv.ds.Train

	// Find two relations and a subject for each so the two /query entries
	// are tagged with distinct relations.
	rels := g.RelationIDs()
	if len(rels) < 2 {
		t.Skip("need at least two relations")
	}
	victim, bystander := rels[0], rels[1]
	queryFor := func(r kg.RelationID) map[string]any {
		tr := g.RelationTriples(r)[0]
		return map[string]any{
			"subject":  g.Entities.Name(int32(tr.S)),
			"relation": g.Relations.Name(int32(r)),
			"k":        3,
		}
	}
	qVictim, qBystander := queryFor(victim), queryFor(bystander)

	// Prime both cache entries, then confirm they hit.
	for _, q := range []map[string]any{qVictim, qBystander} {
		if rec, _ := doReq(t, h, "POST", "/query", q); rec.Code != http.StatusOK {
			t.Fatalf("prime query: status %d body %s", rec.Code, rec.Body.String())
		}
	}
	for _, q := range []map[string]any{qVictim, qBystander} {
		rec, _ := doReq(t, h, "POST", "/query", q)
		if got := rec.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("primed query not cached: X-Cache=%q", got)
		}
	}

	// Mutate the victim relation only: delete one of its triples.
	tr := g.RelationTriples(victim)[0]
	batch := mutate.Batch{Seq: 1, Source: "test", Ops: []mutate.Op{{
		Kind: mutate.OpDelete,
		S:    g.Entities.Name(int32(tr.S)),
		R:    g.Relations.Name(int32(victim)),
		O:    g.Entities.Name(int32(tr.O)),
	}}}
	rec, out := doReq(t, h, "POST", "/mutate", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("/mutate status %d body %s", rec.Code, rec.Body.String())
	}
	if out["seq"].(float64) != 1 || out["deleted"].(float64) != 1 {
		t.Fatalf("unexpected mutate response %v", out)
	}
	if inv := out["invalidated"].(float64); inv < 1 {
		t.Fatalf("mutation invalidated %v cache entries, want >= 1", inv)
	}
	dirty := out["dirty_relations"].([]any)
	if len(dirty) != 1 || dirty[0] != g.Relations.Name(int32(victim)) {
		t.Fatalf("dirty_relations %v", dirty)
	}
	if srv.MutationSeq() != 1 {
		t.Fatalf("MutationSeq %d", srv.MutationSeq())
	}
	if g.Contains(tr) {
		t.Fatal("deleted triple still in graph")
	}

	// The victim's cache entry is gone; the bystander's survives.
	if rec, _ := doReq(t, h, "POST", "/query", qVictim); rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("victim query after mutate: X-Cache=%q, want miss", rec.Header().Get("X-Cache"))
	}
	if rec, _ := doReq(t, h, "POST", "/query", qBystander); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("bystander query after mutate: X-Cache=%q, want hit", rec.Header().Get("X-Cache"))
	}

	body := metricsBody(t, h)
	for name, want := range map[string]string{
		"kgserve_mutation_batches_total": "1",
		"kgserve_mutation_adds_total":    "0",
		"kgserve_mutation_deletes_total": "1",
	} {
		if got := metricValue(t, body, name); got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
	if got := metricValue(t, body, "kgserve_cache_invalidations_total"); got == "0" {
		t.Error("kgserve_cache_invalidations_total still 0 after invalidating mutation")
	}
}

func TestMutateSequenceGap(t *testing.T) {
	srv := newMutableServer(t, nil)
	h := srv.Handler()
	batch := mutate.Batch{Seq: 7, Ops: mutationOps(srv.ds.Train, 1)}
	rec, out := doReq(t, h, "POST", "/mutate", batch)
	if rec.Code != http.StatusConflict {
		t.Fatalf("gap status %d, want 409", rec.Code)
	}
	if out["expected_seq"].(float64) != 1 {
		t.Fatalf("expected_seq %v, want 1", out["expected_seq"])
	}
	if got := metricValue(t, metricsBody(t, h), "kgserve_mutation_rejected_total"); got != "1" {
		t.Fatalf("kgserve_mutation_rejected_total = %s, want 1", got)
	}
}

func TestMutateValidationAndLimits(t *testing.T) {
	srv := newMutableServer(t, func(c *Config) { c.MaxMutationOps = 2 })
	h := srv.Handler()
	g := srv.ds.Train

	// Unknown entity -> 400, nothing applied.
	bad := mutate.Batch{Seq: 1, Ops: []mutate.Op{{
		Kind: mutate.OpAdd, S: "no-such-entity",
		R: g.Relations.Name(0), O: g.Entities.Name(0),
	}}}
	if rec, _ := doReq(t, h, "POST", "/mutate", bad); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown entity: status %d, want 400", rec.Code)
	}
	// Empty batch -> 400.
	if rec, _ := doReq(t, h, "POST", "/mutate", mutate.Batch{Seq: 1}); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", rec.Code)
	}
	// Over the op limit -> 413.
	big := mutate.Batch{Seq: 1, Ops: mutationOps(g, 3)}
	if rec, _ := doReq(t, h, "POST", "/mutate", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", rec.Code)
	}
	// Malformed JSON -> 400 from the shared decoder.
	if rec, _ := doReq(t, h, "POST", "/mutate", `{"seq":`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", rec.Code)
	}
	if srv.MutationSeq() != 0 {
		t.Fatalf("rejected batches advanced seq to %d", srv.MutationSeq())
	}
}

func TestMutateDisabled(t *testing.T) {
	srv := newMutableServer(t, func(c *Config) { c.MaxMutationOps = -1 })
	h := srv.Handler()
	batch := mutate.Batch{Seq: 1, Ops: mutationOps(srv.ds.Train, 1)}
	if rec, _ := doReq(t, h, "POST", "/mutate", batch); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("disabled mutations: status %d, want 503", rec.Code)
	}
}

// TestMutationLogReplayOnStartup applies batches through one server, then
// builds a second server over the same pristine dataset and log path and
// requires it to come up at the same sequence with the same graph.
func TestMutationLogReplayOnStartup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	srv1 := newMutableServer(t, func(c *Config) { c.MutationLog = path })
	h := srv1.Handler()
	for seq, ops := range [][]mutate.Op{mutationOps(srv1.ds.Train, 2), mutationOps(srv1.ds.Train, 1)} {
		b := mutate.Batch{Seq: int64(seq + 1), Source: "test", Ops: ops}
		if rec, _ := doReq(t, h, "POST", "/mutate", b); rec.Code != http.StatusOK {
			t.Fatalf("batch %d: status %d body %s", seq+1, rec.Code, rec.Body.String())
		}
	}
	wantLen := srv1.ds.Train.Len()
	srv1.Close()

	srv2 := newMutableServer(t, func(c *Config) { c.MutationLog = path })
	if srv2.MutationSeq() != 2 {
		t.Fatalf("replayed MutationSeq %d, want 2", srv2.MutationSeq())
	}
	if got := srv2.ds.Train.Len(); got != wantLen {
		t.Fatalf("replayed graph has %d triples, want %d", got, wantLen)
	}
	// The replayed server keeps serving: next batch must be seq 3.
	h2 := srv2.Handler()
	rec, out := doReq(t, h2, "POST", "/mutate", mutate.Batch{Seq: 1, Ops: mutationOps(srv2.ds.Train, 1)})
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale seq after replay: status %d, want 409", rec.Code)
	}
	if want := fmt.Sprintf("%v", out["expected_seq"]); want != "3" {
		t.Fatalf("expected_seq after replay %v, want 3", out["expected_seq"])
	}
}
