package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/kge"
)

// discoverFunc matches core.DiscoverFacts; tests substitute instrumented
// implementations to control timing and count concurrency.
type discoverFunc func(ctx context.Context, model kge.Model, g *kg.Graph, strategy core.Strategy, opts core.Options) (*core.Result, error)

// Spec describes one discovery job: the artifacts, the algorithm options,
// and (optionally) a journal to checkpoint into.
type Spec struct {
	Model    kge.Model
	Graph    *kg.Graph
	Strategy core.Strategy
	Options  core.Options
	// Fingerprint is the model's canonical weight digest (kge.Fingerprint).
	// Required when Journal is set: it is what pins a checkpoint to its
	// weights. Leave empty for journal-less jobs.
	Fingerprint string
	// Journal is the WAL path; empty runs the job without checkpointing.
	Journal string
	// Resume permits continuing an existing journal at Journal. Without it
	// an existing file is an error (ErrCheckpointExists), so a typo'd path
	// cannot silently graft one run onto another.
	Resume bool
	// Label is a free-form description carried into status listings.
	Label string
	// OnProgress, when non-nil, is called after each relation completes
	// (journaled relations recovered during resume do not replay it).
	OnProgress func(Progress)
	// OnRelation, when non-nil, receives each freshly swept relation's wire
	// record (after it has been journaled, for journaled runs). Recovered
	// relations do not replay it. The fleet worker uses it to collect the
	// records a completed unit ships back to its coordinator.
	OnRelation func(RelationRecord)
	// OnFinish, when non-nil, is called exactly once when the job reaches a
	// terminal state (done, failed, or cancelled — including jobs cancelled
	// while still queued). Manager.Close drains the queue, so every accepted
	// job fires it. Callers use it to release resources the job pinned, e.g.
	// the serving layer's refcount on a memory-mapped model.
	OnFinish func(State)
}

// Progress is one per-relation progress tick.
type Progress struct {
	Relation  kg.RelationID
	Done      int // relations complete so far, including recovered ones
	Total     int
	Facts     int // facts this relation kept
	FactsSum  int // facts across the whole job so far
	SweepTime time.Duration
}

// RunInfo reports how a Run executed.
type RunInfo struct {
	// TotalRelations is the size of the job's relation list.
	TotalRelations int
	// Resumed counts relations recovered from the journal instead of swept.
	Resumed int
}

// OptionsHash canonicalizes the inputs that determine a discovery run's
// output — strategy name, thresholds, the (sorted) relation list, protocol
// flags, seed, and the shapes of the graph and filter — and returns the
// SHA-256 hex digest of their canonical JSON. Options.Workers is excluded
// deliberately: worker count never changes output. The calibrator function
// itself cannot be hashed; its presence and threshold are pinned, which is
// the best a checkpoint can check (documented in DESIGN.md §8).
func OptionsHash(strategyName string, g *kg.Graph, opts core.Options, relations []kg.RelationID) string {
	rels := append([]kg.RelationID(nil), relations...)
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	filterLen := 0
	if opts.Filter != nil {
		filterLen = opts.Filter.Len()
	}
	// Pruning fields join the hash only when pruning is enabled, and via
	// omitempty: runs with pruning off (including every journal written
	// before the pruned path existed) hash exactly as they always did, so
	// old checkpoints stay resumable. PruneExact is also output-identical to
	// pruning off by construction, but it changes how the output is computed,
	// so it is pinned rather than aliased — resuming a checkpoint under a
	// different ranking path is exactly the kind of drift the hash exists to
	// refuse.
	pruneMode := opts.PruneMode
	if pruneMode == core.PruneOff {
		pruneMode = ""
	}
	pruneCells, pruneProbe := 0, 0
	if pruneMode != "" {
		pruneCells = opts.PruneCells
		if pruneMode == core.PruneApprox {
			pruneProbe = opts.PruneProbe
		}
	}
	canonical := struct {
		Strategy       string          `json:"strategy"`
		TopN           int             `json:"top_n"`
		MaxCandidates  int             `json:"max_candidates"`
		MaxIterations  int             `json:"max_iterations"`
		Relations      []kg.RelationID `json:"relations"`
		RankFiltered   bool            `json:"rank_filtered"`
		Seed           int64           `json:"seed"`
		CacheWeights   bool            `json:"cache_weights"`
		HasCalibrator  bool            `json:"has_calibrator"`
		MinProbability float64         `json:"min_probability"`
		FilterLen      int             `json:"filter_len"`
		GraphTriples   int             `json:"graph_triples"`
		GraphEntities  int             `json:"graph_entities"`
		GraphRelations int             `json:"graph_relations"`
		PruneMode      string          `json:"prune_mode,omitempty"`
		PruneCells     int             `json:"prune_cells,omitempty"`
		PruneProbe     int             `json:"prune_probe,omitempty"`
	}{
		Strategy:       strategyName,
		TopN:           opts.TopN,
		MaxCandidates:  opts.MaxCandidates,
		MaxIterations:  opts.MaxIterations,
		Relations:      rels,
		RankFiltered:   opts.RankFiltered,
		Seed:           opts.Seed,
		CacheWeights:   opts.CacheWeights,
		HasCalibrator:  opts.Calibrator != nil,
		MinProbability: opts.MinProbability,
		FilterLen:      filterLen,
		GraphTriples:   g.Len(),
		GraphEntities:  g.NumEntities(),
		GraphRelations: g.NumRelations(),
		PruneMode:      pruneMode,
		PruneCells:     pruneCells,
		PruneProbe:     pruneProbe,
	}
	b, _ := json.Marshal(canonical)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Run executes one discovery job, journaling per-relation checkpoints when
// spec.Journal is set and resuming from them when spec.Resume permits it.
// The merged result is byte-identical (facts and ranks, in the canonical
// core.SortFactsByRank order) to an uninterrupted core.DiscoverFacts run
// with the same inputs: core seeds each relation's RNG stream independently,
// so already-journaled relations are simply skipped and their recorded facts
// spliced back in.
func Run(ctx context.Context, spec Spec) (*core.Result, RunInfo, error) {
	return run(ctx, spec, core.DiscoverFacts)
}

// NormalizeOptions applies the same defaulting core.DiscoverFacts would, so
// the options hash is identical whether the caller spelled defaults
// explicitly or left them zero.
func NormalizeOptions(o core.Options) core.Options {
	if o.TopN == 0 {
		o.TopN = 500
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 500
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 5
	}
	return o
}

func run(ctx context.Context, spec Spec, discover discoverFunc) (*core.Result, RunInfo, error) {
	opts := NormalizeOptions(spec.Options)
	relations := opts.Relations
	if relations == nil {
		relations = spec.Graph.RelationIDs()
	}
	info := RunInfo{TotalRelations: len(relations)}

	var (
		journal   *Journal
		recovered []RelationRecord
	)
	if spec.Journal != "" {
		if spec.Fingerprint == "" {
			return nil, info, fmt.Errorf("jobs: journaled runs require the model fingerprint")
		}
		hdr := Header{
			Fingerprint:    spec.Fingerprint,
			OptionsHash:    OptionsHash(spec.Strategy.Name(), spec.Graph, opts, relations),
			Strategy:       spec.Strategy.Name(),
			TotalRelations: len(relations),
		}
		var err error
		if spec.Resume {
			journal, recovered, err = Recover(spec.Journal, hdr)
		} else {
			journal, err = Create(spec.Journal, hdr)
		}
		if err != nil {
			return nil, info, err
		}
		defer journal.Close()
	}

	// Splice out the relations the journal already covers. Records for
	// relations outside the job's list cannot occur: the options hash pins
	// the relation list, so such a journal is rejected at Recover.
	inJob := make(map[kg.RelationID]bool, len(relations))
	for _, r := range relations {
		inJob[r] = true
	}
	done := make(map[kg.RelationID]bool, len(recovered))
	for _, rec := range recovered {
		if inJob[rec.Relation] {
			done[rec.Relation] = true
		}
	}
	remaining := make([]kg.RelationID, 0, len(relations))
	for _, r := range relations {
		if !done[r] {
			remaining = append(remaining, r)
		}
	}
	info.Resumed = len(relations) - len(remaining)

	start := time.Now()
	res := &core.Result{}
	factsSum := 0
	for _, rec := range recovered {
		if !inJob[rec.Relation] {
			continue
		}
		mergeRecord(res, rec)
		factsSum += len(rec.Facts)
	}

	if len(remaining) > 0 {
		runOpts := opts
		runOpts.Relations = remaining
		doneCount := info.Resumed
		var hookErr error
		runOpts.OnRelationDone = func(d core.RelationDone) {
			var rec RelationRecord
			if journal != nil || spec.OnRelation != nil {
				rec = RecordOf(d)
			}
			if journal != nil && hookErr == nil {
				hookErr = journal.Append(rec)
			}
			if spec.OnRelation != nil {
				spec.OnRelation(rec)
			}
			doneCount++
			factsSum += len(d.Facts)
			if spec.OnProgress != nil {
				spec.OnProgress(Progress{
					Relation:  d.Relation,
					Done:      doneCount,
					Total:     len(relations),
					Facts:     len(d.Facts),
					FactsSum:  factsSum,
					SweepTime: d.Stats.WeightTime + d.Stats.GenerateTime + d.Stats.RankTime,
				})
			}
		}
		swept, err := discover(ctx, spec.Model, spec.Graph, spec.Strategy, runOpts)
		if err != nil {
			return nil, info, err
		}
		if hookErr != nil {
			return nil, info, fmt.Errorf("jobs: journal append: %w", hookErr)
		}
		res.Facts = append(res.Facts, swept.Facts...)
		res.Stats.Relations += swept.Stats.Relations
		res.Stats.WeightTime += swept.Stats.WeightTime
		res.Stats.GenerateTime += swept.Stats.GenerateTime
		res.Stats.RankTime += swept.Stats.RankTime
		res.Stats.Generated += swept.Stats.Generated
		res.Stats.Iterations += swept.Stats.Iterations
		res.Stats.ScoreSweeps += swept.Stats.ScoreSweeps
		res.Stats.BatchedSweeps += swept.Stats.BatchedSweeps
		res.Stats.BatchRows += swept.Stats.BatchRows
		res.Stats.CellsPruned += swept.Stats.CellsPruned
		res.Stats.PrescreenRows += swept.Stats.PrescreenRows
		res.Stats.GroupedCandidates += swept.Stats.GroupedCandidates
		res.Stats.PerRelation = append(res.Stats.PerRelation, swept.Stats.PerRelation...)
	}

	core.SortFactsByRank(res.Facts)
	res.Stats.Total = time.Since(start)
	return res, info, nil
}

// mergeRecord folds one journaled (or wire-delivered) relation record into
// an accumulating result. GroupedCandidates is approximated by Generated:
// the per-relation wire format does not carry group counts, and for every
// path that produces records the two are equal in aggregate.
func mergeRecord(res *core.Result, rec RelationRecord) {
	st := relationStatsOf(rec)
	res.Stats.Relations++
	res.Stats.WeightTime += st.WeightTime
	res.Stats.GenerateTime += st.GenerateTime
	res.Stats.RankTime += st.RankTime
	res.Stats.Generated += st.Generated
	res.Stats.Iterations += st.Iterations
	res.Stats.ScoreSweeps += st.ScoreSweeps
	res.Stats.BatchedSweeps += st.BatchedSweeps
	res.Stats.BatchRows += st.BatchRows
	res.Stats.CellsPruned += st.CellsPruned
	res.Stats.PrescreenRows += st.PrescreenRows
	res.Stats.GroupedCandidates += st.Generated
	res.Stats.PerRelation = append(res.Stats.PerRelation, st)
	for _, f := range rec.Facts {
		res.Facts = append(res.Facts, core.Fact{Triple: kg.Triple{S: f.S, R: f.R, O: f.O}, Rank: f.Rank})
	}
}

// MergeRecords splices per-relation records — however they were produced:
// recovered from a journal, or completed by fleet workers in any order and
// any interleaving — into one Result in the canonical output order. Because
// each relation's sweep is a pure function of its inputs (per-relation RNG
// streams) and SortFactsByRank is a total order, the merged result is
// byte-identical to a single uninterrupted DiscoverFacts run over the same
// relations. Stats.Total is left zero; wall-clock belongs to the caller.
func MergeRecords(recs []RelationRecord) *core.Result {
	res := &core.Result{}
	for _, rec := range recs {
		mergeRecord(res, rec)
	}
	core.SortFactsByRank(res.Facts)
	return res
}
